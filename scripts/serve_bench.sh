#!/bin/sh
# serve_bench.sh — the serving-tier benchmark harness: train a smoke
# checkpoint, then drive the server with the loadgen at rising
# concurrency in two configurations — the serialized baseline
# (-batch-size 1, one model call per request, the old global-mutex
# behavior) and the coalescing default — appending every run to a single
# JSON array (BENCH_serve.json). Each configuration gets a fresh server
# process, so both sweep an identically cold sim cache. Run from the
# repository root:
#
#   sh scripts/serve_bench.sh [output.json]
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_serve.json}"
tmp="$(mktemp -d)"
server_pid=""
cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -TERM "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/stencilmart" ./cmd/stencilmart

echo "-- train (smoke preset) --"
"$tmp/stencilmart" train -preset smoke -out "$tmp/model.ckpt" >"$tmp/train.log" 2>&1 || {
    cat "$tmp/train.log"; echo "serve bench: train failed" >&2; exit 1
}

rm -f "$out"

wait_for_addr() {
    base=""
    i=0
    while [ $i -lt 100 ]; do
        base="$(sed -n 's/^serving on \(http:\/\/.*\)$/\1/p' "$tmp/serve.log" | head -n1)"
        [ -n "$base" ] && break
        if ! kill -0 "$server_pid" 2>/dev/null; then
            cat "$tmp/serve.log"; echo "serve bench: server exited early" >&2; exit 1
        fi
        i=$((i + 1))
        sleep 0.1
    done
    [ -n "$base" ] || { echo "serve bench: server never announced its address" >&2; exit 1; }
}

bench_mode() {
    # bench_mode <label> [serve flags...]
    label="$1"; shift
    echo "-- $label --"
    : >"$tmp/serve.log"
    "$tmp/stencilmart" serve -model "$tmp/model.ckpt" -addr 127.0.0.1:0 -max-inflight 256 "$@" \
        >"$tmp/serve.log" 2>&1 &
    server_pid=$!
    wait_for_addr
    for c in 1 8 32 64; do
        "$tmp/stencilmart" loadgen -url "$base" -clients "$c" -n 40 \
            -label "$label" -out "$out" -fail-on-error
    done
    kill -TERM "$server_pid"
    wait "$server_pid" || true
    server_pid=""
}

bench_mode serial -batch-size 1
bench_mode coalesced -batch-window 500us -batch-size 32

echo "serve bench written to $out"
