#!/bin/sh
# serve_bench.sh — the serving-tier benchmark harness: train a smoke
# checkpoint, then drive the server with the loadgen at rising
# concurrency in two configurations — the serialized baseline
# (-batch-size 1, one model call per request, the old global-mutex
# behavior) and the coalescing default — appending every run to a single
# JSON array (BENCH_serve.json). Each configuration gets a fresh server
# process, so both sweep an identically cold sim cache.
#
# A second sweep drives -distinct traffic (every request a unique
# stencil, so dedup and the sim memo cache cannot collapse the stream)
# through the f64 and f32 lanes — the honest model-throughput
# comparison the float32 lane exists for. That sweep uses the network
# checkpoint (ConvNet classifier + ConvMLP regressor), where inference
# is GEMM-bound and the lane choice dominates; on the tree checkpoint
# the per-request tuning search hides the scoring delta.
#
# Run from the repository root:
#
#   sh scripts/serve_bench.sh [output.json]
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_serve.json}"
tmp="$(mktemp -d)"
server_pid=""
cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -TERM "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/stencilmart" ./cmd/stencilmart

echo "-- train (smoke preset) --"
"$tmp/stencilmart" train -preset smoke -out "$tmp/model.ckpt" >"$tmp/train.log" 2>&1 || {
    cat "$tmp/train.log"; echo "serve bench: train failed" >&2; exit 1
}

echo "-- train (smoke preset, network models) --"
"$tmp/stencilmart" train -preset smoke -classifier ConvNet -regressor ConvMLP \
    -out "$tmp/model_nn.ckpt" >"$tmp/train_nn.log" 2>&1 || {
    cat "$tmp/train_nn.log"; echo "serve bench: network train failed" >&2; exit 1
}

rm -f "$out"

wait_for_addr() {
    base=""
    i=0
    while [ $i -lt 100 ]; do
        base="$(sed -n 's/^serving on \(http:\/\/.*\)$/\1/p' "$tmp/serve.log" | head -n1)"
        [ -n "$base" ] && break
        if ! kill -0 "$server_pid" 2>/dev/null; then
            cat "$tmp/serve.log"; echo "serve bench: server exited early" >&2; exit 1
        fi
        i=$((i + 1))
        sleep 0.1
    done
    [ -n "$base" ] || { echo "serve bench: server never announced its address" >&2; exit 1; }
}

bench_mode() {
    # bench_mode <label> <model> <loadgen extra flags> [serve flags...]
    label="$1"; model="$2"; lgflags="$3"; shift 3
    echo "-- $label --"
    : >"$tmp/serve.log"
    "$tmp/stencilmart" serve -model "$model" -addr 127.0.0.1:0 -max-inflight 256 "$@" \
        >"$tmp/serve.log" 2>&1 &
    server_pid=$!
    wait_for_addr
    for c in 1 8 32 64; do
        # $lgflags word-splits deliberately: it carries loadgen flags.
        "$tmp/stencilmart" loadgen -url "$base" -clients "$c" -n 40 $lgflags \
            -label "$label" -out "$out" -fail-on-error
    done
    kill -TERM "$server_pid"
    wait "$server_pid" || true
    server_pid=""
}

bench_mode serial "$tmp/model.ckpt" "" -batch-size 1
bench_mode coalesced "$tmp/model.ckpt" "" -batch-window 500us -batch-size 32

# Distinct-request sweep on the network checkpoint: dedup-proof traffic
# through the serialized baseline, the coalescing f64 lane, and the
# coalescing f32 lane.
bench_mode distinct-serial "$tmp/model_nn.ckpt" "-distinct" -batch-size 1
bench_mode distinct-f64 "$tmp/model_nn.ckpt" "-distinct" -batch-window 500us -batch-size 32
bench_mode distinct-f32 "$tmp/model_nn.ckpt" "-distinct -lane f32" -batch-window 500us -batch-size 32

echo "serve bench written to $out"
