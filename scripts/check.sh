#!/bin/sh
# check.sh — the full verification gate: build, vet, the regular test
# suite, and the race-detector run that guards the parallel pipeline's
# determinism contract. Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test (shuffled) =="
# -shuffle=on randomizes test and subtest order: tests that secretly
# depend on a sibling's side effects fail here instead of in CI later.
go test -shuffle=on ./...

echo "== go test -race =="
go test -race ./...

echo "== alloc gate (f32 lane + sim evaluator) =="
# The zero-allocation contracts: compiled tree/network scoring and the
# arena-backed serving encode path (f32 lane), and the simulator's
# compiled per-sample evaluation path — warm cache hits and
# cache-disabled evaluations alike. AllocsPerRun is meaningless under
# -race, so this is a separate plain run.
go test -run AllocGate ./internal/linalg/ ./internal/ml/tree/ ./internal/ml/nn/ ./internal/core/ ./internal/sim/

echo "== bench smoke (race) =="
# One iteration of every kernel/training benchmark under the race
# detector: proves the GEMM backbone, the nn layers, the histogram
# tree trainer, and the request coalescer execute their parallel paths
# cleanly, without paying for a full benchmark run.
go test -race -run='^$' -bench=. -benchtime=1x ./internal/linalg/ ./internal/ml/nn/ ./internal/ml/tree/ ./internal/serve/batch/

echo "== sim bench smoke =="
# One pass of the collection-throughput harness on the smoke preset:
# proves the compiled-evaluator and reference substrates both collect,
# and that the report pipeline (cells/sec, allocs/cell, speedup) works.
# The real before/after numbers live in BENCH_sim.json (make bench-sim).
sh scripts/sim_bench.sh /tmp/bench_sim_smoke.json smoke 1

echo "== serve smoke =="
# Train a tiny checkpoint, serve it on a random port, and exercise
# /healthz and /predict over real HTTP — the deploy path end to end.
sh scripts/serve_smoke.sh

echo "== serve chaos smoke =="
# Serve a checkpoint with the HTTP chaos injector armed: the scoring
# burst must trip the f32 breaker into degraded f64 fallbacks (zero
# failed requests from scoring), connection faults stay bounded, and a
# half-open probe recovers the lane after the cooldown.
sh scripts/serve_chaos_smoke.sh

echo "== chaos smoke =="
# Profile the smoke corpus cleanly and under deterministic fault
# injection; the two dataset files must be byte-identical.
sh scripts/chaos_smoke.sh

echo "== campaign smoke =="
# Distribute the smoke collection across a coordinator and three worker
# processes, SIGKILL one mid-shard, and require the merged dataset to be
# byte-identical to the serial run.
sh scripts/campaign_smoke.sh

echo "all checks passed"
