#!/bin/sh
# check.sh — the full verification gate: build, vet, the regular test
# suite, and the race-detector run that guards the parallel pipeline's
# determinism contract. Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "all checks passed"
