#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the train/serve pipeline:
# build the CLI, train a tiny checkpoint, start the HTTP service on a
# random port, hit /healthz and /predict, assert well-formed 200
# responses, and shut the server down. Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
server_pid=""
cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -TERM "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/stencilmart" ./cmd/stencilmart

echo "-- train (smoke preset) --"
"$tmp/stencilmart" train -preset smoke -out "$tmp/model.ckpt" >"$tmp/train.log" 2>&1 || {
    cat "$tmp/train.log"; echo "serve smoke: train failed" >&2; exit 1
}

echo "-- serve (random port) --"
"$tmp/stencilmart" serve -model "$tmp/model.ckpt" -addr 127.0.0.1:0 >"$tmp/serve.log" 2>&1 &
server_pid=$!

# Wait for the server to announce its address.
base=""
i=0
while [ $i -lt 100 ]; do
    base="$(sed -n 's/^serving on \(http:\/\/.*\)$/\1/p' "$tmp/serve.log" | head -n1)"
    [ -n "$base" ] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
        cat "$tmp/serve.log"; echo "serve smoke: server exited early" >&2; exit 1
    fi
    i=$((i + 1))
    sleep 0.1
done
if [ -z "$base" ]; then
    cat "$tmp/serve.log"; echo "serve smoke: server never announced its address" >&2; exit 1
fi

fetch() {
    # fetch <url-path> <output-file> [curl/wget POST body]
    path="$1"; out="$2"; body="${3:-}"
    if command -v curl >/dev/null 2>&1; then
        if [ -n "$body" ]; then
            curl -sS -o "$out" -w '%{http_code}' -H 'Content-Type: application/json' -d "$body" "$base$path"
        else
            curl -sS -o "$out" -w '%{http_code}' "$base$path"
        fi
    else
        if [ -n "$body" ]; then
            wget -q -O "$out" --server-response --header='Content-Type: application/json' \
                --post-data="$body" "$base$path" 2>&1 | sed -n 's/^  HTTP\/[0-9.]* \([0-9]*\).*/\1/p' | tail -n1
        else
            wget -q -O "$out" --server-response "$base$path" 2>&1 | sed -n 's/^  HTTP\/[0-9.]* \([0-9]*\).*/\1/p' | tail -n1
        fi
    fi
}

echo "-- /healthz --"
code="$(fetch /healthz "$tmp/healthz.json")"
[ "$code" = "200" ] || { echo "serve smoke: /healthz gave HTTP $code" >&2; exit 1; }
grep -q '"status":"ok"' "$tmp/healthz.json" || {
    cat "$tmp/healthz.json"; echo "serve smoke: /healthz body malformed" >&2; exit 1
}

echo "-- /predict --"
code="$(fetch /predict "$tmp/predict.json" '{"stencil":"star2d2r","gpu":"V100"}')"
[ "$code" = "200" ] || { cat "$tmp/predict.json"; echo "serve smoke: /predict gave HTTP $code" >&2; exit 1; }
for field in '"oc"' '"params"' '"predicted_seconds"' '"advice"'; do
    grep -q "$field" "$tmp/predict.json" || {
        cat "$tmp/predict.json"; echo "serve smoke: /predict body missing $field" >&2; exit 1
    }
done

echo "-- /modelz --"
code="$(fetch /modelz "$tmp/modelz.json")"
[ "$code" = "200" ] || { cat "$tmp/modelz.json"; echo "serve smoke: /modelz gave HTTP $code" >&2; exit 1; }
grep -q '"current":"v1"' "$tmp/modelz.json" || {
    cat "$tmp/modelz.json"; echo "serve smoke: /modelz does not list v1 as current" >&2; exit 1
}

echo "-- loadgen burst --"
# A concurrent burst through the coalescing lane; -fail-on-error turns
# any non-200 into a smoke failure.
"$tmp/stencilmart" loadgen -url "$base" -clients 8 -n 5 -fail-on-error >"$tmp/loadgen.log" 2>&1 || {
    cat "$tmp/loadgen.log"; echo "serve smoke: loadgen burst failed" >&2; exit 1
}

echo "-- /statsz quantiles --"
code="$(fetch /statsz "$tmp/statsz.json")"
[ "$code" = "200" ] || { cat "$tmp/statsz.json"; echo "serve smoke: /statsz gave HTTP $code" >&2; exit 1; }
for field in '"p50_millis"' '"p99_millis"' '"p999_millis"' '"batches"'; do
    grep -q "$field" "$tmp/statsz.json" || {
        cat "$tmp/statsz.json"; echo "serve smoke: /statsz missing $field" >&2; exit 1
    }
done

echo "-- shutdown --"
kill -TERM "$server_pid"
wait "$server_pid" || { echo "serve smoke: server exited non-zero on SIGTERM" >&2; exit 1; }
server_pid=""

echo "serve smoke passed"
