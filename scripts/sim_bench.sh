#!/bin/sh
# sim_bench.sh — the simulator-throughput benchmark harness: measure
# corpus-collection throughput (cells/sec, allocs/cell) on the
# pre-rewrite reference substrate and the compiled-evaluator substrate,
# serial and parallel, and write the comparison report. The compiled
# rows must clear >= 3x the reference cells/sec on the default preset —
# the bar BENCH_sim.json records.
#
# Run from the repository root:
#
#   sh scripts/sim_bench.sh [output.json] [preset] [reps]
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_sim.json}"
preset="${2:-default}"
reps="${3:-3}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT INT TERM

go build -o "$tmp/stencilmart" ./cmd/stencilmart
"$tmp/stencilmart" simbench -preset "$preset" -reps "$reps" -out "$out"
