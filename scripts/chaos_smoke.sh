#!/bin/sh
# chaos_smoke.sh — end-to-end proof of the fault-tolerance contract:
# profile the smoke corpus twice through the CLI, once cleanly and once
# under deterministic fault injection (-chaos), and require the two
# dataset files to be byte-identical. The injected faults (transient
# errors, panics, non-finite samples, timing spikes) must be fully
# absorbed by retries, median trials, and non-finite rejection.
# Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT INT TERM

go build -o "$tmp/stencilmart" ./cmd/stencilmart

echo "-- profile (clean) --"
"$tmp/stencilmart" profile -preset smoke -seed 7 -out "$tmp/clean.json" \
    -journal off >"$tmp/clean.log" 2>&1 || {
    cat "$tmp/clean.log"; echo "chaos smoke: clean profile failed" >&2; exit 1
}

echo "-- profile (chaos) --"
"$tmp/stencilmart" profile -preset smoke -seed 7 -out "$tmp/chaos.json" \
    -journal off -chaos >"$tmp/chaos.log" 2>&1 || {
    cat "$tmp/chaos.log"; echo "chaos smoke: chaos profile failed" >&2; exit 1
}

# The chaos run must actually have injected faults...
grep -q '^chaos: absorbed' "$tmp/chaos.log" || {
    cat "$tmp/chaos.log"; echo "chaos smoke: no fault report in chaos run" >&2; exit 1
}
grep '^chaos: absorbed' "$tmp/chaos.log" | grep -qv 'absorbed 0 ' || {
    cat "$tmp/chaos.log"; echo "chaos smoke: chaos run injected zero faults" >&2; exit 1
}

# ...and the datasets must still be byte-identical.
echo "-- compare --"
cmp "$tmp/clean.json" "$tmp/chaos.json" || {
    echo "chaos smoke: chaos dataset differs from the fault-free dataset" >&2; exit 1
}

grep '^chaos: absorbed' "$tmp/chaos.log"
echo "chaos smoke passed"
