#!/bin/sh
# serve_chaos_smoke.sh — the serving-tier resilience drill over real
# HTTP: train a tiny checkpoint, serve it on the f32 lane with the chaos
# injector armed (latency spikes, connection resets, truncated bodies,
# and a deterministic scoring-panic burst), then drive loadgen bursts
# through it and assert the resilience contract on /statsz:
#
#   - the scoring burst trips the (v1, f32) breaker, and every affected
#     request is served degraded by the f64 fallback (degraded > 0,
#     trips recorded) instead of failing;
#   - the error rate stays bounded — only connection-level faults fail
#     requests, and the per-site fault budget caps those;
#   - after the cooldown a half-open probe recovers the lane: no breaker
#     is left open;
#   - a request arriving with its deadline already spent is answered 504
#     before admission and counted in deadline_expired.
#
# Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
server_pid=""
cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -TERM "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/stencilmart" ./cmd/stencilmart

echo "-- train (smoke preset) --"
"$tmp/stencilmart" train -preset smoke -out "$tmp/model.ckpt" >"$tmp/train.log" 2>&1 || {
    cat "$tmp/train.log"; echo "serve chaos: train failed" >&2; exit 1
}

echo "-- serve (f32 lane, chaos armed) --"
# Batch size 4 keeps the f32 scoring-call count high enough that the
# injector's panic burst (calls 4-6 on site f32/v1) lands inside the
# first loadgen burst and trips the breaker deterministically.
"$tmp/stencilmart" serve -model "$tmp/model.ckpt" -addr 127.0.0.1:0 \
    -lane f32 -batch-size 4 -chaos -chaos-seed 7 \
    -breaker-threshold 3 -breaker-cooldown 500ms >"$tmp/serve.log" 2>&1 &
server_pid=$!

base=""
i=0
while [ $i -lt 100 ]; do
    base="$(sed -n 's/^serving on \(http:\/\/.*\)$/\1/p' "$tmp/serve.log" | head -n1)"
    [ -n "$base" ] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
        cat "$tmp/serve.log"; echo "serve chaos: server exited early" >&2; exit 1
    fi
    i=$((i + 1))
    sleep 0.1
done
if [ -z "$base" ]; then
    cat "$tmp/serve.log"; echo "serve chaos: server never announced its address" >&2; exit 1
fi
grep -q 'chaos drill armed' "$tmp/serve.log" || {
    cat "$tmp/serve.log"; echo "serve chaos: server did not arm the injector" >&2; exit 1
}

fetch() {
    # fetch <url-path> <output-file> [POST body] [extra header]
    path="$1"; out="$2"; body="${3:-}"; hdr="${4:-}"
    if command -v curl >/dev/null 2>&1; then
        set -- -sS -o "$out" -w '%{http_code}'
        [ -n "$hdr" ] && set -- "$@" -H "$hdr"
        if [ -n "$body" ]; then
            curl "$@" -H 'Content-Type: application/json' -d "$body" "$base$path"
        else
            curl "$@" "$base$path"
        fi
    else
        wargs="-q -O $out --server-response"
        [ -n "$hdr" ] && wargs="$wargs --header=$hdr"
        if [ -n "$body" ]; then
            # shellcheck disable=SC2086
            wget $wargs --header='Content-Type: application/json' --post-data="$body" "$base$path" 2>&1 |
                sed -n 's/^  HTTP\/[0-9.]* \([0-9]*\).*/\1/p' | tail -n1
        else
            # shellcheck disable=SC2086
            wget $wargs "$base$path" 2>&1 | sed -n 's/^  HTTP\/[0-9.]* \([0-9]*\).*/\1/p' | tail -n1
        fi
    fi
}

echo "-- expired deadline rejected at admission --"
code="$(fetch /predict "$tmp/expired.json" '{"stencil":"star2d1r","gpu":"V100"}' 'X-Deadline-Millis: 0')" || true
[ "$code" = "504" ] || {
    cat "$tmp/expired.json"; echo "serve chaos: expired deadline gave HTTP $code, want 504" >&2; exit 1
}

echo "-- loadgen burst 1 (trips the f32 breaker) --"
# No -fail-on-error: injected resets/truncations legitimately fail a
# bounded share of requests. The scoring panics must NOT fail anything —
# those requests degrade to the f64 lane.
"$tmp/stencilmart" loadgen -url "$base" -clients 8 -n 8 >"$tmp/loadgen1.log" 2>&1 || {
    cat "$tmp/loadgen1.log"; echo "serve chaos: loadgen burst 1 failed" >&2; exit 1
}
result="$(grep -o '{.*}' "$tmp/loadgen1.log" | head -n1)"
requests="$(printf '%s' "$result" | sed -n 's/.*"requests":\([0-9]*\).*/\1/p')"
errors="$(printf '%s' "$result" | sed -n 's/.*"errors":\([0-9]*\).*/\1/p')"
[ -n "$requests" ] && [ -n "$errors" ] || {
    cat "$tmp/loadgen1.log"; echo "serve chaos: cannot parse loadgen result" >&2; exit 1
}
# Bounded errors: well under half the burst even at ≥10% injected
# faults, because the per-site budget caps connection-level chaos.
if [ $((errors * 100)) -gt $((requests * 40)) ]; then
    cat "$tmp/loadgen1.log"
    echo "serve chaos: $errors/$requests requests failed — error rate unbounded" >&2
    exit 1
fi
echo "   $errors/$requests requests failed (bounded)"

echo "-- breaker tripped, fallbacks served --"
code="$(fetch /statsz "$tmp/statsz1.json")"
[ "$code" = "200" ] || { echo "serve chaos: /statsz gave HTTP $code" >&2; exit 1; }
grep -q '"trips":[1-9]' "$tmp/statsz1.json" || {
    cat "$tmp/statsz1.json"; echo "serve chaos: no breaker trip recorded" >&2; exit 1
}
grep -q '"degraded_requests":[1-9]' "$tmp/statsz1.json" || {
    cat "$tmp/statsz1.json"; echo "serve chaos: breaker tripped but no degraded fallbacks served" >&2; exit 1
}
grep -q '"deadline_expired":[1-9]' "$tmp/statsz1.json" || {
    cat "$tmp/statsz1.json"; echo "serve chaos: expired-deadline 504 not counted" >&2; exit 1
}

echo "-- cooldown, then burst 2 (half-open probe recovers) --"
sleep 1
"$tmp/stencilmart" loadgen -url "$base" -clients 4 -n 4 >"$tmp/loadgen2.log" 2>&1 || {
    cat "$tmp/loadgen2.log"; echo "serve chaos: loadgen burst 2 failed" >&2; exit 1
}
code="$(fetch /statsz "$tmp/statsz2.json")"
[ "$code" = "200" ] || { echo "serve chaos: /statsz gave HTTP $code" >&2; exit 1; }
grep -q '"state":"closed"' "$tmp/statsz2.json" || {
    cat "$tmp/statsz2.json"; echo "serve chaos: no closed breaker after recovery" >&2; exit 1
}
if grep -q '"state":"open"' "$tmp/statsz2.json"; then
    cat "$tmp/statsz2.json"; echo "serve chaos: a breaker is still open after the cooldown burst" >&2; exit 1
fi
grep -q '"probes":[1-9]' "$tmp/statsz2.json" || {
    cat "$tmp/statsz2.json"; echo "serve chaos: recovery happened without a half-open probe" >&2; exit 1
}

echo "-- shutdown --"
kill -TERM "$server_pid"
wait "$server_pid" || { echo "serve chaos: server exited non-zero on SIGTERM" >&2; exit 1; }
server_pid=""

echo "serve chaos smoke passed"
