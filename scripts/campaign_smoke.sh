#!/bin/sh
# campaign_smoke.sh — end-to-end proof of the distributed-collection
# contract: profile the smoke corpus serially through the CLI, then run
# the same collection as a campaign (coordinator + 3 local workers).
# One worker is a deterministic straggler (-stall-after): it makes a few
# cells durable, then hangs without heartbeating and is SIGKILLed
# mid-shard. Its lease must expire and re-dispatch, its durable cells
# must dedup at merge, and the merged dataset file must still be
# byte-identical to the serial one. Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
cleanup() {
    jobs="$(jobs -p)" || true
    [ -n "$jobs" ] && kill -9 $jobs 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/stencilmart" ./cmd/stencilmart

echo "-- profile (serial reference) --"
"$tmp/stencilmart" profile -preset smoke -seed 7 -out "$tmp/serial.json" \
    -journal off >"$tmp/serial.log" 2>&1 || {
    cat "$tmp/serial.log"; echo "campaign smoke: serial profile failed" >&2; exit 1
}

echo "-- campaign (coordinator + 3 workers, one killed mid-shard) --"
"$tmp/stencilmart" campaign coordinate -preset smoke -seed 7 \
    -out "$tmp/merged.json" -dir "$tmp/camp" -shards 6 \
    -listen 127.0.0.1:0 -lease 2s >"$tmp/coord.log" 2>&1 &
coord=$!

# Wait for the coordinator to publish its bound address.
addr=""
for _ in $(seq 1 100); do
    [ -s "$tmp/camp/coordinator.addr" ] && { addr="$(cat "$tmp/camp/coordinator.addr")"; break; }
    kill -0 "$coord" 2>/dev/null || { cat "$tmp/coord.log"; echo "campaign smoke: coordinator died" >&2; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { cat "$tmp/coord.log"; echo "campaign smoke: no coordinator address" >&2; exit 1; }

# The victim joins alone, makes 3 cells durable, then hangs without
# heartbeating; once it reports the stall we kill it the hard way.
"$tmp/stencilmart" campaign work -join "$addr" -id victim -workers 1 \
    -stall-after 3 >"$tmp/victim.log" 2>&1 &
victim=$!
for _ in $(seq 1 200); do
    grep -q 'stalling after' "$tmp/victim.log" && break
    kill -0 "$victim" 2>/dev/null || break
    sleep 0.05
done
grep -q 'stalling after' "$tmp/victim.log" || {
    cat "$tmp/victim.log"; echo "campaign smoke: victim never stalled" >&2; exit 1
}
kill -9 "$victim" 2>/dev/null || true

# Two healthy workers finish the pending shards, then pick up the
# victim's expired lease.
"$tmp/stencilmart" campaign work -join "$addr" -id w2 >"$tmp/w2.log" 2>&1 &
"$tmp/stencilmart" campaign work -join "$addr" -id w3 >"$tmp/w3.log" 2>&1 &

wait "$coord" || {
    cat "$tmp/coord.log"; echo "campaign smoke: coordinator failed" >&2; exit 1
}

# The dead worker's lease must have been re-dispatched and its durable
# cells deduped at merge.
grep -q 're-dispatched' "$tmp/coord.log" || {
    cat "$tmp/coord.log"; echo "campaign smoke: victim's lease was never re-dispatched" >&2; exit 1
}
grep '^merged' "$tmp/coord.log" | grep -qv ' 0 duplicate' || {
    cat "$tmp/coord.log"; echo "campaign smoke: no duplicate records deduped" >&2; exit 1
}

# The merged campaign dataset must match the serial run byte for byte —
# across worker death, lease re-dispatch, and duplicate cell records.
echo "-- compare --"
cmp "$tmp/serial.json" "$tmp/merged.json" || {
    cat "$tmp/coord.log"
    echo "campaign smoke: merged dataset differs from the serial dataset" >&2; exit 1
}

grep '^merged' "$tmp/coord.log"
echo "campaign smoke passed"
