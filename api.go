package stencilmart

import (
	"context"
	"io"
	"time"

	"stencilmart/internal/baseline"
	"stencilmart/internal/codegen"
	"stencilmart/internal/core"
	"stencilmart/internal/cpukernel"
	"stencilmart/internal/gen"
	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/profile"
	"stencilmart/internal/serve"
	"stencilmart/internal/sim"
	"stencilmart/internal/stencil"
	"stencilmart/internal/tensor"
	"stencilmart/internal/tuner"
)

// Stencil is an access pattern: the set of relative offsets a stencil
// computation reads to update one grid point.
type Stencil = stencil.Stencil

// Point is a relative grid offset.
type Point = stencil.Point

// Grid is a dense CPU grid for the reference executor.
type Grid = stencil.Grid

// Coefficients weight the stencil offsets in the reference executor.
type Coefficients = stencil.Coefficients

// Shape classifies classic stencil geometries.
type Shape = stencil.Shape

// Arch is a GPU architecture (Table III entry).
type Arch = gpu.Arch

// Opt is a bitmask of enabled stencil optimizations (Table I).
type Opt = opt.Opt

// Params is one tunable parameter setting for a kernel under an OC.
type Params = opt.Params

// Workload is one stencil execution problem on the simulated GPU.
type Workload = sim.Workload

// SimResult is one simulated kernel execution.
type SimResult = sim.Result

// Dataset is a profiled stencil corpus.
type Dataset = profile.Dataset

// Instance is one profiled (stencil, OC, params, GPU, time) sample.
type Instance = profile.Instance

// Config sizes the StencilMART pipeline.
type Config = core.Config

// Framework is a built StencilMART instance.
type Framework = core.Framework

// ClassifierKind selects an OC-selection mechanism (GBDT/ConvNet/FcNet).
type ClassifierKind = core.ClassifierKind

// RegressorKind selects a performance-prediction mechanism
// (GBRegressor/MLP/ConvMLP).
type RegressorKind = core.RegressorKind

// RentReport is the outcome of the cloud-rental case study.
type RentReport = core.RentReport

// Strategy is a baseline tuning framework (Artemis, AN5D).
type Strategy = baseline.Strategy

// Binary is the assigned binary tensor of a stencil (Fig. 6).
type Binary = tensor.Binary

// Optimization flags (Table I).
const (
	ST = opt.ST
	TB = opt.TB
	BM = opt.BM
	CM = opt.CM
	RT = opt.RT
	PR = opt.PR
)

// Classification mechanisms (Sec. IV-D).
const (
	ClassGBDT    = core.ClassGBDT
	ClassConvNet = core.ClassConvNet
	ClassFcNet   = core.ClassFcNet
)

// Regression mechanisms (Sec. IV-E).
const (
	RegGB      = core.RegGB
	RegMLP     = core.RegMLP
	RegConvMLP = core.RegConvMLP
)

// Classic shape constructors.
var (
	// Star builds the axis-aligned star stencil of the given
	// dimensionality (2 or 3) and order.
	Star = stencil.Star
	// Box builds the full Chebyshev-ball box stencil.
	Box = stencil.Box
	// Cross builds the diagonal cross stencil.
	Cross = stencil.Cross
	// StencilByName parses identifiers such as "star2d1r" or "box3d4r".
	StencilByName = stencil.ByName
	// NewStencil builds a canonicalized stencil from raw offsets.
	NewStencil = stencil.New
)

// Reference CPU execution of stencils on dense grids.
var (
	// NewGrid allocates a zeroed dense grid (nz == 1 for 2-D).
	NewGrid = stencil.NewGrid
	// Apply runs one serial stencil sweep.
	Apply = stencil.Apply
	// ApplyParallel runs one sweep split across CPU cores.
	ApplyParallel = stencil.ApplyParallel
	// ApplySteps runs multiple sweeps, ping-ponging buffers.
	ApplySteps = stencil.ApplySteps
	// UniformCoefficients returns the 1/n smoothing kernel.
	UniformCoefficients = stencil.UniformCoefficients
)

// GPUCatalog returns the four GPUs of Table III.
func GPUCatalog() []Arch { return gpu.Catalog() }

// GPUByName looks up a Table III GPU by name.
func GPUByName(name string) (Arch, error) { return gpu.ByName(name) }

// Combinations enumerates all 30 valid optimization combinations.
func Combinations() []Opt { return opt.Combinations() }

// ParseOC parses an OC name such as "ST_RT_PR" or "BASE".
func ParseOC(name string) (Opt, error) { return opt.Parse(name) }

// AssignTensor rasterizes a stencil into its binary tensor (Fig. 6).
func AssignTensor(s Stencil) (Binary, error) { return tensor.Assign(s) }

// Features extracts the Table II candidate feature set.
func Features(s Stencil) []float64 { return tensor.Features(s) }

// GenerateStencils produces n random neighbor-chained stencils
// (Algorithm 1) of the given dimensionality.
func GenerateStencils(dims, n, maxOrder int, seed int64) ([]Stencil, error) {
	g, err := gen.New(gen.Options{Dims: dims, MaxOrder: maxOrder}, seed)
	if err != nil {
		return nil, err
	}
	return g.Corpus(n), nil
}

// DefaultWorkload wraps a stencil with the paper's grid sizes (8192^2 or
// 512^3) and default sweep count.
func DefaultWorkload(s Stencil) Workload { return sim.DefaultWorkload(s) }

// Simulate runs one kernel configuration on the simulated architecture.
func Simulate(w Workload, oc Opt, p Params, arch Arch) (SimResult, error) {
	return sim.New().Run(w, oc, p, arch)
}

// DefaultConfig returns the seconds-scale pipeline configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// PaperConfig returns the larger laptop-scale preset.
func PaperConfig() Config { return core.PaperConfig() }

// Build runs corpus generation, profiling and OC merging, returning a
// framework ready for training and evaluation.
func Build(cfg Config) (*Framework, error) { return core.Build(context.Background(), cfg) }

// BuildContext is Build with cancellation: a cancelled ctx stops
// profiling after the in-flight cells finish.
func BuildContext(ctx context.Context, cfg Config) (*Framework, error) {
	return core.Build(ctx, cfg)
}

// FromDataset assembles a framework around a dataset loaded from disk.
func FromDataset(cfg Config, ds *Dataset) (*Framework, error) {
	return core.FromDataset(cfg, ds, nil)
}

// ReadDataset deserializes a profiled dataset.
func ReadDataset(r io.Reader) (*Dataset, error) { return profile.ReadJSON(r) }

// SmokeConfig returns the smallest useful preset — sized for CI smoke
// tests of the train/checkpoint/serve path.
func SmokeConfig() Config { return core.SmokeConfig() }

// ServePrediction is the one-shot inference result for an unseen
// stencil (class, tuned parameters, cross-GPU times, rent advice).
type ServePrediction = core.ServePrediction

// RentAdvice is the cross-GPU verdict attached to a ServePrediction.
type RentAdvice = core.RentAdvice

// LoadFramework rehydrates a checkpointed framework (see
// Framework.TrainAll and Framework.Save); the result predicts bitwise
// identically to the framework that saved it, without re-profiling.
func LoadFramework(r io.Reader) (*Framework, error) { return core.LoadFramework(r) }

// LoadFrameworkFile rehydrates a checkpoint from disk.
func LoadFrameworkFile(path string) (*Framework, error) { return core.LoadFrameworkFile(path) }

// PredictionServer serves a trained framework over HTTP (POST /predict,
// GET /healthz, GET /statsz).
type PredictionServer = serve.Server

// NewPredictionServer wraps a trained framework in an HTTP prediction
// service; timeout <= 0 selects the default per-request budget.
func NewPredictionServer(fw *Framework, timeout time.Duration) (*PredictionServer, error) {
	return serve.New(fw, timeout)
}

// Baseline strategies (Sec. V-B2).
var (
	// Artemis is the high-impact-first greedy tuner emulation.
	Artemis Strategy = baseline.Artemis{}
	// AN5D is the streaming + high-degree temporal blocking emulation.
	AN5D Strategy = baseline.AN5D{}
)

// Kernel is generated CUDA source for one configuration.
type Kernel = codegen.Kernel

// GenerateKernel emits CUDA C source for a stencil under an OC and
// parameter setting, making predictions actionable as code.
func GenerateKernel(s Stencil, oc Opt, p Params) (Kernel, error) {
	return codegen.Generate(s, oc, p)
}

// KernelVariant is a CPU-executable optimization scheme.
type KernelVariant = cpukernel.Variant

// KernelOptions tunes the transformed CPU loops.
type KernelOptions = cpukernel.Options

// CPU-executable optimization variants; each computes results identical
// to the naive executor (verified by the cpukernel tests).
const (
	VariantNaive        = cpukernel.VariantNaive
	VariantTiled        = cpukernel.VariantTiled
	VariantBlockMerged  = cpukernel.VariantBlockMerged
	VariantCyclicMerged = cpukernel.VariantCyclicMerged
	VariantStreaming    = cpukernel.VariantStreaming
	VariantTemporal     = cpukernel.VariantTemporal
)

// RunVariant executes sweeps of the stencil with the chosen CPU variant.
func RunVariant(v KernelVariant, s Stencil, coeffs Coefficients, in *Grid, steps int, opts KernelOptions) (*Grid, error) {
	return cpukernel.Run(v, s, coeffs, in, steps, opts)
}

// Tuner searches one OC's parameter space under an evaluation budget.
type Tuner = tuner.Tuner

// TuneResult is a parameter-search outcome.
type TuneResult = tuner.Result

// Parameter-search strategies: the paper pipeline's random search and a
// csTuner-style genetic algorithm (paper reference [25]).
var (
	RandomTuner  Tuner = tuner.Random{}
	GeneticTuner Tuner = tuner.Genetic{}
)
