package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"stencilmart/internal/gpu"
	"stencilmart/internal/stencil"
)

// LoadgenResult is one load-generation run's record: what was driven and
// what came back, in the shape BENCH_serve.json accumulates.
type LoadgenResult struct {
	Label    string `json:"label"`
	URL      string `json:"url"`
	Clients  int    `json:"clients"`
	Requests int    `json:"requests"`
	Errors   int    `json:"errors"`
	// P50/P99/P999Millis are exact quantiles over every request's
	// end-to-end latency (sorted, not interpolated from buckets).
	P50Millis  float64 `json:"p50_ms"`
	P99Millis  float64 `json:"p99_ms"`
	P999Millis float64 `json:"p999_ms"`
	// Throughput is completed requests per wall-clock second.
	Throughput float64 `json:"rps"`
	ElapsedSec float64 `json:"elapsed_s"`
}

// cmdLoadgen hammers a running prediction server with concurrent clients
// cycling through classic stencil shapes on every catalog GPU, then
// reports exact latency quantiles and throughput. With -out, the result
// is appended to a JSON array file so successive runs (serial baseline
// vs coalesced, rising concurrency) accumulate into one benchmark
// record. -distinct swaps the shape cycle for per-request unique
// stencils so server-side dedup and the sim memo cache cannot collapse
// the stream — the honest workload for comparing inference lanes.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:8080", "base URL of a running 'stencilmart serve'")
	clients := fs.Int("clients", 8, "concurrent clients")
	n := fs.Int("n", 50, "requests per client")
	shapes := fs.String("shapes", "star2d1r,star2d2r,box2d1r,star3d1r,star3d2r,box3d1r",
		"comma-separated classic stencil names to cycle through")
	distinct := fs.Bool("distinct", false, "make every request a unique stencil (defeats server-side dedup and sim-cache reuse)")
	lane := fs.String("lane", "", "route requests down this inference lane (f32, f64); empty = server default")
	label := fs.String("label", "", "label recorded with the result")
	out := fs.String("out", "", "append the result to this JSON array file")
	failOnError := fs.Bool("fail-on-error", false, "exit nonzero if any request fails")
	timeout := fs.Duration("timeout", 60*time.Second, "per-request client timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clients < 1 || *n < 1 {
		return fmt.Errorf("loadgen: -clients and -n must be positive")
	}
	if *lane != "" && *lane != "f32" && *lane != "f64" {
		return fmt.Errorf("loadgen: unknown lane %q (f32, f64)", *lane)
	}

	// Pre-build every request body: shapes x GPUs, validated up front so
	// a typo fails fast instead of as a thousand 400s.
	var bodies []string
	if *distinct {
		var err error
		if bodies, err = distinctBodies(*clients * *n); err != nil {
			return err
		}
	} else {
		for _, name := range strings.Split(*shapes, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, err := stencil.ByName(name); err != nil {
				return fmt.Errorf("loadgen: %w", err)
			}
			for _, arch := range gpu.Catalog() {
				bodies = append(bodies, fmt.Sprintf(`{"stencil":%q,"gpu":%q}`, name, arch.Name))
			}
		}
	}
	if len(bodies) == 0 {
		return fmt.Errorf("loadgen: no request shapes")
	}
	predictURL := *url + "/predict"
	if *lane != "" {
		predictURL += "?lane=" + *lane
	}

	client := &http.Client{Timeout: *timeout}
	total := *clients * *n
	latencies := make([]time.Duration, total)
	errs := make([]error, total)

	fmt.Printf("loadgen: %d clients x %d requests against %s (%d distinct shapes)\n",
		*clients, *n, *url, len(bodies))
	begin := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < *n; i++ {
				k := c**n + i
				body := bodies[k%len(bodies)]
				t0 := time.Now()
				resp, err := client.Post(predictURL, "application/json", strings.NewReader(body))
				if err == nil {
					// Read the body in full and require parseable JSON: a
					// connection reset or truncated response mid-body (the
					// chaos drill injects both) must count as a failure, not
					// a silently discarded success.
					data, rerr := io.ReadAll(resp.Body)
					resp.Body.Close()
					switch {
					case rerr != nil:
						err = fmt.Errorf("reading response for %s: %w", body, rerr)
					case resp.StatusCode != http.StatusOK:
						err = fmt.Errorf("status %d for %s", resp.StatusCode, body)
					case !json.Valid(data):
						err = fmt.Errorf("invalid JSON response for %s", body)
					}
				}
				latencies[k], errs[k] = time.Since(t0), err
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(begin)

	failed := 0
	var firstErr error
	for _, err := range errs {
		if err != nil {
			failed++
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	quantile := func(q float64) float64 {
		idx := int(q*float64(total)+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= total {
			idx = total - 1
		}
		return float64(latencies[idx].Nanoseconds()) / 1e6
	}
	res := LoadgenResult{
		Label:      *label,
		URL:        *url,
		Clients:    *clients,
		Requests:   total,
		Errors:     failed,
		P50Millis:  quantile(0.50),
		P99Millis:  quantile(0.99),
		P999Millis: quantile(0.999),
		Throughput: float64(total-failed) / elapsed.Seconds(),
		ElapsedSec: elapsed.Seconds(),
	}

	line, err := json.Marshal(res)
	if err != nil {
		return err
	}
	fmt.Println(string(line))
	if *out != "" {
		if err := appendResult(*out, res); err != nil {
			return err
		}
		fmt.Printf("appended to %s\n", *out)
	}
	if failed > 0 {
		fmt.Printf("loadgen: %d/%d requests failed (first: %v)\n", failed, total, firstErr)
		if *failOnError {
			return fmt.Errorf("loadgen: %d requests failed", failed)
		}
	}
	return nil
}

// distinctBodies builds one unique raw-offset request per slot: the
// star2d1r base pattern plus the k-th lexicographic pair of extra
// offsets from the order<=4 grid (76 candidates, C(76,2) = 2850
// pairings), on a rotating catalog GPU. Every request carries a unique
// name, so even past the pairing wrap the server's per-batch dedup key
// (stencil identity x GPU) never matches two requests — the stream
// stays full-width model work.
func distinctBodies(total int) ([]string, error) {
	base := []stencil.Point{{Dx: 1}, {Dx: -1}, {Dy: 1}, {Dy: -1}}
	inBase := func(p stencil.Point) bool {
		for _, b := range base {
			if p == b {
				return true
			}
		}
		return false
	}
	var extras []stencil.Point
	for dy := -stencil.MaxOrder; dy <= stencil.MaxOrder; dy++ {
		for dx := -stencil.MaxOrder; dx <= stencil.MaxOrder; dx++ {
			p := stencil.Point{Dx: dx, Dy: dy}
			if p.IsCenter() || inBase(p) {
				continue
			}
			extras = append(extras, p)
		}
	}
	pairs := len(extras) * (len(extras) - 1) / 2
	catalog := gpu.Catalog()
	bodies := make([]string, total)
	for k := 0; k < total; k++ {
		// Decode the k-th (i, j) pair with i < j in lexicographic order.
		i, rem := 0, k%pairs
		for rem >= len(extras)-1-i {
			rem -= len(extras) - 1 - i
			i++
		}
		points := append(append([]stencil.Point{{}}, base...), extras[i], extras[i+1+rem])
		name := fmt.Sprintf("d%05d", k)
		if _, err := stencil.New(name, 2, points); err != nil {
			return nil, fmt.Errorf("loadgen: %w", err)
		}
		req := struct {
			Name   string   `json:"name"`
			Dims   int      `json:"dims"`
			Points [][3]int `json:"points"`
			GPU    string   `json:"gpu"`
		}{Name: name, Dims: 2, GPU: catalog[k%len(catalog)].Name}
		for _, p := range points {
			req.Points = append(req.Points, [3]int{p.Dx, p.Dy, p.Dz})
		}
		body, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		bodies[k] = string(body)
	}
	return bodies, nil
}

// appendResult appends one run to a JSON array file, creating it when
// missing, so the benchmark record stays a single valid JSON document.
func appendResult(path string, res LoadgenResult) error {
	var runs []LoadgenResult
	if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
		if err := json.Unmarshal(data, &runs); err != nil {
			return fmt.Errorf("loadgen: %s is not a JSON array of results: %w", path, err)
		}
	}
	runs = append(runs, res)
	data, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
