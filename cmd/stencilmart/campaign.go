package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"stencilmart/internal/campaign"
	"stencilmart/internal/fault"
	"stencilmart/internal/gen"
	"stencilmart/internal/gpu"
)

// cmdCampaign dispatches the distributed-collection subcommands: a
// coordinator that leases shards of one collection's cell space, and
// workers that measure leased shards into WAL files the coordinator
// merges. The merged dataset is bitwise-identical to what a serial
// `stencilmart profile` of the same preset and seed writes.
func cmdCampaign(args []string) error {
	if len(args) < 1 {
		campaignUsage()
		return fmt.Errorf("campaign: missing subcommand")
	}
	switch args[0] {
	case "coordinate":
		return cmdCampaignCoordinate(args[1:])
	case "work":
		return cmdCampaignWork(args[1:])
	case "help", "-h", "--help":
		campaignUsage()
		return nil
	}
	campaignUsage()
	return fmt.Errorf("campaign: unknown subcommand %q", args[0])
}

func campaignUsage() {
	fmt.Fprintln(os.Stderr, `stencilmart campaign - distributed corpus profiling

subcommands:
  coordinate  partition the collection into shards, lease them to
              workers over HTTP, and merge the shard journals into the
              dataset once every cell is durable
  work        join a campaign: measure leased shards into WAL files on
              the shared filesystem until the coordinator reports done

the coordinator and its workers must share a filesystem: the protocol
carries control only, measurement data travels through shard journals.
a killed campaign resumes: rerun coordinate over the same -dir.

run 'stencilmart campaign <subcommand> -h' for flags`)
}

func cmdCampaignCoordinate(args []string) error {
	fs := flag.NewFlagSet("campaign coordinate", flag.ExitOnError)
	out := fs.String("out", "dataset.json", "output dataset path")
	dir := fs.String("dir", "", "campaign directory for shard journals (default <out>.campaign)")
	preset := fs.String("preset", "default", "pipeline preset (default, paper, smoke)")
	seed := fs.Int64("seed", 0, "override pipeline seed")
	shards := fs.Int("shards", 0, "shard count (default one shard per four uncovered cells)")
	listen := fs.String("listen", "127.0.0.1:0", "coordinator listen address")
	lease := fs.Duration("lease", campaign.DefaultLease, "heartbeat deadline before a shard is re-dispatched")
	chaos := fs.Bool("chaos", false, "have every worker inject deterministic measurement faults; the merged dataset must still match the fault-free serial run")
	chaosSeed := fs.Int64("chaos-seed", 99, "fault-injection seed")
	token := fs.String("token", "", "campaign auth token; workers must present it on /lease, /heartbeat, and /complete (empty = open)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := configFromPreset(*preset, *seed)
	if err != nil {
		return err
	}
	corpus, err := gen.MixedCorpus(cfg.Corpus2D, cfg.Corpus3D, cfg.MaxOrder, cfg.Seed)
	if err != nil {
		return err
	}
	// The spec mirrors what `stencilmart profile` measures serially: the
	// same corpus, catalog, samples, and profiler seed (cfg.Seed+1000) —
	// that identity is what makes the merged bytes comparable.
	spec := campaign.Spec{
		Stencils:     corpus,
		Archs:        gpu.Catalog(),
		SamplesPerOC: cfg.SamplesPerOC,
		Seed:         cfg.Seed + 1000,
	}
	if *chaos {
		cc := fault.DefaultConfig(*chaosSeed)
		spec.Chaos = &cc
		spec.Trials = 3
	}

	campDir := *dir
	if campDir == "" {
		campDir = *out + ".campaign"
	}
	if err := os.MkdirAll(campDir, 0o755); err != nil {
		return err
	}
	c, err := campaign.NewCoordinator(spec, campaign.Options{
		Shards: *shards,
		Lease:  *lease,
		Dir:    campDir,
		Token:  *token,
		// Publish the bound address so scripts (and humans) can point
		// workers at a :0 coordinator.
		OnListen: func(addr string) {
			path := filepath.Join(campDir, "coordinator.addr")
			if err := os.WriteFile(path, []byte("http://"+addr+"\n"), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "stencilmart: writing %s: %v\n", path, err)
			}
		},
	})
	if err != nil {
		return err
	}
	if st := c.Stats(); st.Covered > 0 {
		fmt.Printf("resuming campaign: %d/%d cells already durable in %s\n", st.Covered, st.Cells, campDir)
	}

	ctx, stop := signalContext()
	defer stop()
	logf := func(format string, a ...any) { fmt.Printf(format+"\n", a...) }
	ds, ms, err := c.Serve(ctx, *listen, logf)
	if err != nil {
		return err
	}
	fmt.Printf("merged %d shard journals: %d cells, %d duplicate records deduped\n", ms.Shards, ms.Cells, ms.Duplicates)
	st := c.Stats()
	for name, w := range st.Workers {
		fmt.Printf("  worker %-12s %d leases, %d completes, %d cells, %d faults absorbed\n",
			name, w.Leases, w.Completes, w.CellsDone, w.Faults)
	}
	if st.Redispatches > 0 {
		fmt.Printf("  re-dispatched %d expired leases\n", st.Redispatches)
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ds.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d stencils, %d instances\n", *out, len(ds.Stencils), len(ds.Instances))
	return nil
}

func cmdCampaignWork(args []string) error {
	fs := flag.NewFlagSet("campaign work", flag.ExitOnError)
	join := fs.String("join", "", "coordinator URL (e.g. http://127.0.0.1:8090, or the contents of <dir>/coordinator.addr)")
	id := fs.String("id", "", "worker id, unique in the campaign (default host:pid)")
	workers := fs.Int("workers", 0, "measurement goroutines per shard (0 = GOMAXPROCS)")
	poll := fs.Duration("poll", campaign.DefaultPoll, "wait between lease attempts when every shard is taken")
	stall := fs.Int("stall-after", 0, "straggler drill: hang without heartbeating after this many durable cells, until killed (0 = never)")
	token := fs.String("token", "", "campaign auth token matching the coordinator's -token")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *join == "" {
		return fmt.Errorf("campaign work: -join is required")
	}
	name := *id
	if name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	ctx, stop := signalContext()
	defer stop()
	logf := func(format string, a ...any) { fmt.Printf(format+"\n", a...) }
	start := time.Now()
	st, err := campaign.Work(ctx, *join, campaign.WorkerOptions{
		ID: name, Workers: *workers, Poll: *poll, Logf: logf, StallAfterCells: *stall, Token: *token,
	})
	if err != nil {
		return err
	}
	fmt.Printf("worker %s: %d shards, %d cells measured, %d resumed, %d leases abandoned, %d faults absorbed in %s\n",
		name, st.Shards, st.Measured, st.Resumed, st.Abandoned, st.Faults, time.Since(start).Round(time.Millisecond))
	return nil
}
