package main

import (
	"testing"

	"stencilmart/internal/core"
)

func TestConfigFromPreset(t *testing.T) {
	cfg, err := configFromPreset("default", 0)
	if err != nil || cfg.Corpus2D != core.DefaultConfig().Corpus2D {
		t.Errorf("default preset: %+v, %v", cfg, err)
	}
	cfg, err = configFromPreset("paper", 99)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Corpus2D != core.PaperConfig().Corpus2D {
		t.Errorf("paper preset corpus %d", cfg.Corpus2D)
	}
	if cfg.Seed != 99 {
		t.Errorf("seed override not applied: %d", cfg.Seed)
	}
	if _, err := configFromPreset("huge", 0); err == nil {
		t.Error("unknown preset accepted")
	}
	// Empty preset behaves like default.
	if _, err := configFromPreset("", 0); err != nil {
		t.Errorf("empty preset rejected: %v", err)
	}
}

func TestParseClassifier(t *testing.T) {
	cases := map[string]core.ClassifierKind{
		"GBDT": core.ClassGBDT, "ConvNet": core.ClassConvNet, "FcNet": core.ClassFcNet,
	}
	for name, want := range cases {
		got, err := parseClassifier(name)
		if err != nil || got != want {
			t.Errorf("parseClassifier(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseClassifier("SVM"); err == nil {
		t.Error("unknown classifier accepted")
	}
}
