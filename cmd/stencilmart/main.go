// Command stencilmart is the command-line interface to the StencilMART
// reproduction: random stencil generation, corpus profiling on the
// simulated GPUs, best-OC prediction, the cloud-rental advisor, and the
// paper's experiment suite.
//
// Usage:
//
//	stencilmart gen        -dims 2 -n 10 -seed 1
//	stencilmart profile    -out dataset.json [-preset paper]
//	stencilmart campaign   coordinate -out dataset.json -shards 8 [-listen 127.0.0.1:8090]
//	stencilmart campaign   work -join http://127.0.0.1:8090 [-id w1]
//	stencilmart train      -dataset dataset.json -out model.ckpt
//	stencilmart predict    -dataset dataset.json -stencil star2d2r -gpu V100
//	stencilmart predict    -model model.ckpt -stencil star2d2r -gpu V100
//	stencilmart serve      -model model.ckpt -addr :8080 [-batch-window 500us -batch-size 32 -lane f32]
//	stencilmart loadgen    -url http://127.0.0.1:8080 -clients 32 -n 50 [-distinct -lane f32] [-out BENCH_serve.json]
//	stencilmart rent       -dataset dataset.json -dims 2 [-cost]
//	stencilmart simulate   -stencil box3d2r -gpu A100 -oc ST_RT_PR
//	stencilmart simbench   -out BENCH_sim.json [-preset default]
//	stencilmart experiment -id fig9 [-preset paper]
//	stencilmart experiment -id all
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stencilmart/internal/codegen"
	"stencilmart/internal/core"
	"stencilmart/internal/experiments"
	"stencilmart/internal/fault"
	"stencilmart/internal/gen"
	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/profile"
	"stencilmart/internal/serve"
	"stencilmart/internal/sim"
	"stencilmart/internal/stencil"
	"stencilmart/internal/tensor"
	"stencilmart/internal/tuner"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "campaign":
		err = cmdCampaign(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "predict":
		err = cmdPredict(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "loadgen":
		err = cmdLoadgen(os.Args[2:])
	case "rent":
		err = cmdRent(os.Args[2:])
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "simbench":
		err = cmdSimBench(os.Args[2:])
	case "codegen":
		err = cmdCodegen(os.Args[2:])
	case "tune":
		err = cmdTune(os.Args[2:])
	case "experiment":
		err = cmdExperiment(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "stencilmart: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "stencilmart:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `stencilmart - optimization selection for stencil computations across GPUs

commands:
  gen         generate random neighbor-chained stencils (Algorithm 1)
  profile     profile a random corpus on every GPU and write the dataset
  campaign    distribute one profiling run across worker processes (coordinate, work)
  train       train every serving model and write a checkpoint
  predict     predict the best optimization combination for a stencil
  serve       serve predictions over HTTP from a trained checkpoint
  loadgen     drive a running server with concurrent clients and report latency quantiles
  rent        run the cloud-rental advisor (pure performance or cost)
  simulate    run one kernel configuration on the simulated GPU
  simbench    measure collection throughput: compiled evaluators vs the pre-rewrite path
  codegen     emit the CUDA kernel source for a stencil under an OC
  tune        search an OC's parameter space (random or genetic)
  experiment  regenerate a paper table/figure (table1-3, fig1-4, fig9-15, scale, all)

run 'stencilmart <command> -h' for command flags`)
}

// configFromPreset maps -preset to a pipeline configuration.
func configFromPreset(preset string, seed int64) (core.Config, error) {
	var cfg core.Config
	switch preset {
	case "default", "":
		cfg = core.DefaultConfig()
	case "paper":
		cfg = core.PaperConfig()
	case "smoke":
		cfg = core.SmokeConfig()
	default:
		return core.Config{}, fmt.Errorf("unknown preset %q (default, paper, smoke)", preset)
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	return cfg, nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	dims := fs.Int("dims", 2, "stencil dimensionality (2 or 3)")
	n := fs.Int("n", 10, "number of stencils")
	maxOrder := fs.Int("order", stencil.MaxOrder, "maximum stencil order")
	seed := fs.Int64("seed", 1, "generator seed")
	showTensor := fs.Bool("tensor", false, "print the assigned binary tensor")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := gen.New(gen.Options{Dims: *dims, MaxOrder: *maxOrder}, *seed)
	if err != nil {
		return err
	}
	for _, s := range g.Corpus(*n) {
		fmt.Printf("%s points=%v\n", s, s.Points)
		if *showTensor {
			printTensor(s)
		}
	}
	return nil
}

func printTensor(s stencil.Stencil) {
	b := tensor.MustAssign(s)
	if s.Dims == 3 {
		fmt.Println("  (3-D tensor; printing central z-plane)")
	}
	const side = tensor.Side
	zOff := 0
	if s.Dims == 3 {
		zOff = (side / 2) * side * side
	}
	for y := 0; y < side; y++ {
		fmt.Print("  ")
		for x := 0; x < side; x++ {
			if b.Data[zOff+y*side+x] != 0 {
				fmt.Print("# ")
			} else {
				fmt.Print(". ")
			}
		}
		fmt.Println()
	}
}

// signalContext returns a context cancelled on SIGINT/SIGTERM, so long
// pipeline runs flush their journal and exit cleanly instead of dying
// mid-write.
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	out := fs.String("out", "dataset.json", "output dataset path")
	preset := fs.String("preset", "default", "pipeline preset (default, paper)")
	seed := fs.Int64("seed", 0, "override pipeline seed")
	journal := fs.String("journal", "", "collection journal path for crash/interrupt resume (default <out>.journal, \"off\" disables)")
	chaos := fs.Bool("chaos", false, "inject deterministic measurement faults (transient errors, panics, outliers); the fault-tolerant pipeline must still produce the fault-free dataset")
	chaosSeed := fs.Int64("chaos-seed", 99, "fault-injection seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := configFromPreset(*preset, *seed)
	if err != nil {
		return err
	}
	corpus, err := gen.MixedCorpus(cfg.Corpus2D, cfg.Corpus3D, cfg.MaxOrder, cfg.Seed)
	if err != nil {
		return err
	}
	fmt.Printf("profiling %d stencils x %d GPUs x %d OCs x %d settings...\n",
		len(corpus), len(gpu.Catalog()), opt.NumCombinations, cfg.SamplesPerOC)
	p := profile.NewProfiler(cfg.SamplesPerOC, cfg.Seed+1000)
	var injector *fault.Injector
	if *chaos {
		injector = fault.Wrap(p.Model, fault.DefaultConfig(*chaosSeed))
		p.Runner = injector
		p.Trials = 3
		p.Retry = profile.RetryPolicy{MaxAttempts: 6, BaseDelay: 100 * time.Microsecond, MaxDelay: 2 * time.Millisecond}
	}

	jpath := *journal
	if jpath == "" {
		jpath = *out + ".journal"
	}
	ctx, stop := signalContext()
	defer stop()

	var ds *profile.Dataset
	if jpath == "off" {
		ds, err = p.Collect(ctx, corpus, gpu.Catalog())
	} else {
		var st profile.ResumeStats
		ds, st, err = p.CollectJournal(ctx, jpath, corpus, gpu.Catalog())
		if st.Resumed > 0 {
			fmt.Printf("resumed %d/%d cells from %s (re-measuring %d)\n", st.Resumed, st.Cells, jpath, st.Measured)
		}
		if st.RepairedBytes > 0 {
			fmt.Printf("journal had a damaged tail; dropped %d bytes and re-measured the affected cells\n", st.RepairedBytes)
		}
		if err != nil {
			return fmt.Errorf("%w\ncompleted cells are saved in %s — rerun the same command to resume", err, jpath)
		}
	}
	if err != nil {
		return err
	}
	if injector != nil {
		st := injector.Stats()
		fmt.Printf("chaos: absorbed %d injected faults over %d attempts (%d transient, %d panics, %d non-finite, %d spikes)\n",
			st.Total(), st.Attempts, st.Transients, st.Panics, st.NaNs+st.Infs, st.Spikes)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ds.WriteJSON(f); err != nil {
		return err
	}
	if jpath != "off" {
		// The dataset is durable; the journal has served its purpose.
		os.Remove(jpath)
	}
	fmt.Printf("wrote %s: %d stencils, %d instances\n", *out, len(ds.Stencils), len(ds.Instances))
	return nil
}

// loadFramework builds a framework from -dataset (or from scratch).
func loadFramework(ctx context.Context, path, preset string, seed int64) (*core.Framework, error) {
	cfg, err := configFromPreset(preset, seed)
	if err != nil {
		return nil, err
	}
	if path == "" {
		fmt.Println("no -dataset given; building a fresh corpus (this profiles everything)...")
		return core.Build(ctx, cfg)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ds, err := profile.ReadJSON(f)
	if err != nil {
		return nil, err
	}
	return core.FromDataset(cfg, ds, nil)
}

// cmdTrain trains every serving model on a profiled dataset and writes
// the checkpoint a later predict/serve rehydrates without re-profiling.
func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	dataset := fs.String("dataset", "", "profiled dataset (from 'profile'); empty = build fresh")
	out := fs.String("out", "model.ckpt", "checkpoint output path")
	mech := fs.String("classifier", "GBDT", "classifier (GBDT, ConvNet, FcNet)")
	regMech := fs.String("regressor", "GBRegressor", "regressor (GBRegressor, MLP, ConvMLP)")
	preset := fs.String("preset", "default", "pipeline preset (default, paper, smoke)")
	seed := fs.Int64("seed", 0, "override pipeline seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ck, err := parseClassifier(*mech)
	if err != nil {
		return err
	}
	rk, err := core.ParseRegressorKind(*regMech)
	if err != nil {
		return err
	}
	ctx, stop := signalContext()
	defer stop()
	fw, err := loadFramework(ctx, *dataset, *preset, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("training %s classifiers and %s regressors on %d stencils...\n",
		ck, rk, len(fw.Dataset.Stencils))
	if err := fw.TrainAll(ctx, ck, rk); err != nil {
		if ctx.Err() != nil {
			return fmt.Errorf("training interrupted: %w (rerun to train again; profiling is the expensive step, pass -dataset to reuse it)", err)
		}
		return err
	}
	if err := fw.SaveFile(*out); err != nil {
		return err
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, st.Size())
	return nil
}

// cmdServe loads a checkpoint and serves predictions over HTTP until
// SIGTERM/SIGINT.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	model := fs.String("model", "model.ckpt", "trained checkpoint (from 'train')")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for a random port)")
	timeout := fs.Duration("timeout", serve.DefaultTimeout, "per-request prediction timeout")
	maxInFlight := fs.Int("max-inflight", serve.DefaultMaxInFlight, "concurrent /predict requests admitted before shedding with 503")
	batchWindow := fs.Duration("batch-window", serve.DefaultBatchWindow, "how long a batch waits for more requests after its first (negative = no waiting)")
	batchSize := fs.Int("batch-size", serve.DefaultBatchSize, "max requests coalesced into one model call (1 = serial baseline)")
	laneName := fs.String("lane", "f64", "default inference lane (f32, f64); requests override with ?lane=")
	breakerThreshold := fs.Int("breaker-threshold", serve.DefaultBreakerThreshold, "consecutive scoring failures that trip a (version, lane) circuit breaker")
	breakerCooldown := fs.Duration("breaker-cooldown", serve.DefaultBreakerCooldown, "how long a tripped breaker stays open before a half-open probe")
	chaos := fs.Bool("chaos", false, "inject deterministic HTTP and scoring faults (latency spikes, connection resets, truncated bodies, scoring panics) — a resilience drill, never for production")
	chaosSeed := fs.Int64("chaos-seed", 7, "chaos fault-injection seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	lane, err := serve.ParseLane(*laneName)
	if err != nil {
		return err
	}
	fw, err := core.LoadFrameworkFile(*model)
	if err != nil {
		return err
	}
	opts := serve.Options{
		Timeout:          *timeout,
		MaxInFlight:      *maxInFlight,
		BatchWindow:      *batchWindow,
		BatchSize:        *batchSize,
		Lane:             lane,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
	}
	if *chaos {
		inj := fault.NewHTTPInjector(fault.DefaultHTTPConfig(*chaosSeed))
		opts.ScoreFaults = inj
		opts.Middleware = inj.Middleware
		fmt.Printf("chaos drill armed: seed %d (latency spikes, resets, truncation, scoring panics)\n", *chaosSeed)
	}
	srv, err := serve.NewWithOptions(fw, opts)
	if err != nil {
		return err
	}
	defer srv.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logf := func(format string, a ...any) { fmt.Printf(format+"\n", a...) }
	return srv.Run(ctx, *addr, logf)
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	dataset := fs.String("dataset", "", "profiled dataset (from 'profile'); empty = build fresh")
	model := fs.String("model", "", "trained checkpoint (from 'train'); skips retraining")
	name := fs.String("stencil", "star2d1r", "classic stencil name (e.g. box3d2r)")
	gpuName := fs.String("gpu", "V100", "target GPU")
	mech := fs.String("mechanism", "GBDT", "classifier (GBDT, ConvNet, FcNet)")
	preset := fs.String("preset", "default", "pipeline preset")
	seed := fs.Int64("seed", 0, "override pipeline seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := stencil.ByName(*name)
	if err != nil {
		return err
	}
	if *model != "" {
		return predictFromCheckpoint(*model, *gpuName, s)
	}
	ctx, stop := signalContext()
	defer stop()
	fw, err := loadFramework(ctx, *dataset, *preset, *seed)
	if err != nil {
		return err
	}
	kind, err := parseClassifier(*mech)
	if err != nil {
		return err
	}
	oc, err := fw.PredictBestOCForStencil(kind, *gpuName, s)
	if err != nil {
		return err
	}
	fmt.Printf("predicted best OC for %s on %s: %s\n", s, *gpuName, oc)

	// Show what the prediction achieves against the simulator.
	arch, err := gpu.ByName(*gpuName)
	if err != nil {
		return err
	}
	m := sim.New()
	w := sim.DefaultWorkload(s)
	rng := rand.New(rand.NewSource(7))
	var settings []opt.Params
	for i := 0; i < 32; i++ {
		settings = append(settings, opt.Sample(oc, s.Dims, rng))
	}
	best, bestP, err := m.BestOf(w, oc, settings, arch)
	if err != nil {
		return err
	}
	fmt.Printf("best sampled setting: %+v\n", bestP)
	fmt.Printf("simulated time for %d sweeps: %.3f ms (occupancy %.0f%%)\n",
		w.TimeSteps, best.Time*1e3, best.Occupancy*100)
	return nil
}

// predictFromCheckpoint runs the full serving path against a trained
// checkpoint: class, tuned parameters, cross-GPU times, rent advice.
func predictFromCheckpoint(path, gpuName string, s stencil.Stencil) error {
	fw, err := core.LoadFrameworkFile(path)
	if err != nil {
		return err
	}
	pred, err := fw.ServePredict(gpuName, s)
	if err != nil {
		return err
	}
	fmt.Printf("predicted best OC for %s on %s: %s (class %d)\n", s, gpuName, pred.OC, pred.Class)
	fmt.Printf("tuned params: %+v\n", pred.Params)
	fmt.Printf("simulated time on %s: %.3f ms\n", gpuName, pred.TunedSeconds*1e3)
	fmt.Println("predicted times across the catalog:")
	for i, name := range pred.ArchNames {
		fmt.Printf("  %-7s %.3f ms\n", name, pred.PredictedSeconds[i]*1e3)
	}
	adv := pred.Advice
	if adv.Rent {
		fmt.Printf("advice: rent %s (predicted %.2fx faster than %s)\n", adv.BestArch, adv.Speedup, adv.Target)
	} else {
		fmt.Printf("advice: stay on %s (predicted fastest)\n", adv.Target)
	}
	if adv.BestCostArch != "" {
		fmt.Printf("most cost-efficient rentable GPU: %s\n", adv.BestCostArch)
	}
	return nil
}

func parseClassifier(name string) (core.ClassifierKind, error) {
	return core.ParseClassifierKind(name)
}

func cmdRent(args []string) error {
	fs := flag.NewFlagSet("rent", flag.ExitOnError)
	dataset := fs.String("dataset", "", "profiled dataset; empty = build fresh")
	dims := fs.Int("dims", 2, "stencil dimensionality")
	cost := fs.Bool("cost", false, "optimize cost efficiency instead of pure performance")
	preset := fs.String("preset", "default", "pipeline preset")
	seed := fs.Int64("seed", 0, "override pipeline seed")
	evals := fs.Int("evals", 12, "evaluation instances per held-out stencil")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := signalContext()
	defer stop()
	fw, err := loadFramework(ctx, *dataset, *preset, *seed)
	if err != nil {
		return err
	}
	rep, err := fw.RentStudy(core.RegGB, *dims, *cost, *evals)
	if err != nil {
		return err
	}
	metric := "pure performance"
	if *cost {
		metric = "cost efficiency"
	}
	fmt.Printf("rental advisor (%d-D stencils, %s, %d instances):\n", *dims, metric, rep.Instances)
	for i, name := range rep.ArchNames {
		fmt.Printf("  %-7s wins %5.1f%% of instances (prediction accuracy %.0f%%)\n",
			name, rep.Share[i]*100, rep.Accuracy[i]*100)
	}
	fmt.Printf("overall winner-prediction accuracy: %.1f%%\n", rep.Overall*100)
	return nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	name := fs.String("stencil", "star2d1r", "classic stencil name")
	gpuName := fs.String("gpu", "V100", "target GPU")
	ocName := fs.String("oc", "ST", "optimization combination (e.g. ST_RT_PR, BASE)")
	samples := fs.Int("samples", 32, "random parameter settings to search")
	seed := fs.Int64("seed", 1, "sampling seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := stencil.ByName(*name)
	if err != nil {
		return err
	}
	arch, err := gpu.ByName(*gpuName)
	if err != nil {
		return err
	}
	oc, err := opt.Parse(*ocName)
	if err != nil {
		return err
	}
	if err := oc.ValidationError(); err != nil {
		return err
	}
	m := sim.New()
	w := sim.DefaultWorkload(s)
	rng := rand.New(rand.NewSource(*seed))
	var settings []opt.Params
	for i := 0; i < *samples; i++ {
		settings = append(settings, opt.Sample(oc, s.Dims, rng))
	}
	best, bestP, err := m.BestOf(w, oc, settings, arch)
	if err != nil {
		return fmt.Errorf("every sampled setting failed (OC crashes for this stencil): %w", err)
	}
	fmt.Printf("%s under %s on %s (%d sweeps of %dx%dx%d):\n",
		s, oc, arch.Name, w.TimeSteps, w.GridX, w.GridY, w.GridZ)
	fmt.Printf("  best of %d settings: %.3f ms\n", *samples, best.Time*1e3)
	fmt.Printf("  breakdown: compute=%.3fms memory=%.3fms sync=%.3fms launch=%.3fms\n",
		best.Compute*1e3, best.Memory*1e3, best.Sync*1e3, best.Launch*1e3)
	fmt.Printf("  occupancy=%.0f%% regs/thread=%.0f smem/block=%.1fKiB\n",
		best.Occupancy*100, best.RegsPerThread, best.SmemPerBlockKB)
	fmt.Printf("  winning params: %+v\n", bestP)
	return nil
}

func cmdCodegen(args []string) error {
	fs := flag.NewFlagSet("codegen", flag.ExitOnError)
	name := fs.String("stencil", "star2d1r", "classic stencil name")
	ocName := fs.String("oc", "ST", "optimization combination")
	seed := fs.Int64("seed", 1, "parameter sampling seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := stencil.ByName(*name)
	if err != nil {
		return err
	}
	oc, err := opt.Parse(*ocName)
	if err != nil {
		return err
	}
	if err := oc.ValidationError(); err != nil {
		return err
	}
	p := opt.Sample(oc, s.Dims, rand.New(rand.NewSource(*seed)))
	k, err := codegen.Generate(s, oc, p)
	if err != nil {
		return err
	}
	fmt.Printf("// launch: block (%d, %d), dynamic shared memory %d bytes\n",
		k.LaunchBounds[0], k.LaunchBounds[1], k.SmemBytes)
	fmt.Print(k.Source)
	return nil
}

func cmdTune(args []string) error {
	fs := flag.NewFlagSet("tune", flag.ExitOnError)
	name := fs.String("stencil", "box3d2r", "classic stencil name")
	gpuName := fs.String("gpu", "V100", "target GPU")
	ocName := fs.String("oc", "ST_TB", "optimization combination")
	budget := fs.Int("budget", 48, "evaluation budget")
	strategy := fs.String("strategy", "genetic", "search strategy (random, genetic)")
	seed := fs.Int64("seed", 1, "search seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := stencil.ByName(*name)
	if err != nil {
		return err
	}
	arch, err := gpu.ByName(*gpuName)
	if err != nil {
		return err
	}
	oc, err := opt.Parse(*ocName)
	if err != nil {
		return err
	}
	var tn tuner.Tuner
	switch *strategy {
	case "random":
		tn = tuner.Random{}
	case "genetic":
		tn = tuner.Genetic{}
	default:
		return fmt.Errorf("unknown strategy %q (random, genetic)", *strategy)
	}
	res, err := tn.Tune(sim.New(), sim.DefaultWorkload(s), oc, arch, *budget, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("%s tuner: %s under %s on %s\n", tn.Name(), s.Name, oc, arch.Name)
	fmt.Printf("  best time %.3f ms in %d evaluations\n", res.Time*1e3, res.Evaluations)
	fmt.Printf("  params: %+v\n", res.Params)
	return nil
}

func cmdExperiment(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	id := fs.String("id", "all", "experiment id (table1-3, fig1-4, fig9-15, scale, all)")
	preset := fs.String("preset", "default", "pipeline preset")
	seed := fs.Int64("seed", 0, "override pipeline seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Accept `experiment fig9` as well as `experiment -id fig9`: a
	// silently ignored positional id would fall back to the full (slow)
	// suite.
	if fs.NArg() > 1 {
		return fmt.Errorf("experiment: unexpected arguments %q", fs.Args()[1:])
	}
	if fs.NArg() == 1 {
		if *id != "all" && *id != fs.Arg(0) {
			return fmt.Errorf("experiment: both -id %s and positional id %s given", *id, fs.Arg(0))
		}
		*id = fs.Arg(0)
	}
	cfg, err := configFromPreset(*preset, *seed)
	if err != nil {
		return err
	}
	r := experiments.New(cfg, os.Stdout)
	if *id == "all" {
		return r.RunAll()
	}
	return r.Run(*id)
}
