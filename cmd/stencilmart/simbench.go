package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"stencilmart/internal/gen"
	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/profile"
	"stencilmart/internal/sim"
	"stencilmart/internal/stencil"
)

// simBenchRow is one measured collection configuration in BENCH_sim.json.
type simBenchRow struct {
	Substrate     string  `json:"substrate"` // "reference" (pre-rewrite) or "compiled"
	Mode          string  `json:"mode"`      // "serial" or "parallel"
	Preset        string  `json:"preset"`
	Stencils      int     `json:"stencils"`
	Archs         int     `json:"archs"`
	Cells         int     `json:"cells"`
	SamplesPerOC  int     `json:"samples_per_oc"`
	Instances     int     `json:"instances"`
	Workers       int     `json:"workers"`
	Reps          int     `json:"reps"`
	Seconds       float64 `json:"seconds"` // best rep, cold substrate each rep
	CellsPerSec   float64 `json:"cells_per_sec"`
	AllocsPerCell float64 `json:"allocs_per_cell"`
	KBPerCell     float64 `json:"kb_per_cell"`
}

// simBenchReport is the BENCH_sim.json document: the measured rows plus
// the compiled/reference throughput ratio per mode.
type simBenchReport struct {
	GeneratedAt string             `json:"generated_at"`
	GoMaxProcs  int                `json:"gomaxprocs"`
	Rows        []simBenchRow      `json:"rows"`
	Speedup     map[string]float64 `json:"speedup_cells_per_sec"`
}

// cmdSimBench measures corpus-collection throughput on the pre-rewrite
// reference substrate and the compiled-evaluator substrate, serial and
// parallel, and writes the comparison to a JSON report. Every rep builds
// a fresh profiler and substrate, so both sides sweep an identically cold
// memo cache and pay their full per-sample cost.
func cmdSimBench(args []string) error {
	fs := flag.NewFlagSet("simbench", flag.ExitOnError)
	out := fs.String("out", "BENCH_sim.json", "output report path")
	preset := fs.String("preset", "default", "pipeline preset sizing the corpus and search budget (default, paper, smoke)")
	seed := fs.Int64("seed", 0, "override pipeline seed")
	reps := fs.Int("reps", 3, "measurement repetitions; the fastest is recorded")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := configFromPreset(*preset, *seed)
	if err != nil {
		return err
	}
	corpus, err := gen.MixedCorpus(cfg.Corpus2D, cfg.Corpus3D, cfg.MaxOrder, cfg.Seed)
	if err != nil {
		return err
	}
	archs := gpu.Catalog()
	cells := len(corpus) * len(archs)
	fmt.Printf("sim bench: %d stencils x %d GPUs = %d cells, %d OCs x %d settings per cell, %d reps\n",
		len(corpus), len(archs), cells, opt.NumCombinations, cfg.SamplesPerOC, *reps)

	report := simBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Speedup:     map[string]float64{},
	}
	base := map[string]float64{}
	for _, mode := range []string{"serial", "parallel"} {
		for _, substrate := range []string{"reference", "compiled"} {
			row, err := runSimBench(substrate, mode, *preset, corpus, archs, cfg.SamplesPerOC, cfg.Seed+1000, *reps)
			if err != nil {
				return err
			}
			fmt.Printf("  %-9s %-8s %10.1f cells/sec  %8.0f allocs/cell  %8.1f KB/cell\n",
				substrate, mode, row.CellsPerSec, row.AllocsPerCell, row.KBPerCell)
			report.Rows = append(report.Rows, row)
			if substrate == "reference" {
				base[mode] = row.CellsPerSec
			} else if b := base[mode]; b > 0 {
				report.Speedup[mode] = row.CellsPerSec / b
			}
		}
	}
	for _, mode := range []string{"serial", "parallel"} {
		fmt.Printf("  speedup (%s): %.2fx\n", mode, report.Speedup[mode])
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	fmt.Printf("sim bench written to %s\n", *out)
	return nil
}

// runSimBench measures one (substrate, mode) configuration: reps cold
// collections, keeping the fastest wall time and the per-rep allocation
// deltas of that run.
func runSimBench(substrate, mode, preset string, corpus []stencil.Stencil, archs []gpu.Arch, samplesPerOC int, seed int64, reps int) (simBenchRow, error) {
	if reps < 1 {
		reps = 1
	}
	workers := 1
	if mode == "parallel" {
		workers = 0 // GOMAXPROCS
	}
	row := simBenchRow{
		Substrate:    substrate,
		Mode:         mode,
		Preset:       preset,
		Stencils:     len(corpus),
		Archs:        len(archs),
		Cells:        len(corpus) * len(archs),
		SamplesPerOC: samplesPerOC,
		Workers:      workers,
		Reps:         reps,
	}
	for r := 0; r < reps; r++ {
		p := &profile.Profiler{SamplesPerOC: samplesPerOC, Seed: seed, Workers: workers}
		if substrate == "reference" {
			p.Runner = sim.NewReference()
		} else {
			p.Model = sim.New()
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		ds, err := p.Collect(context.Background(), corpus, archs)
		elapsed := time.Since(start).Seconds()
		if err != nil {
			return simBenchRow{}, fmt.Errorf("simbench %s/%s: %w", substrate, mode, err)
		}
		runtime.ReadMemStats(&after)
		if r == 0 || elapsed < row.Seconds {
			row.Seconds = elapsed
			row.Instances = len(ds.Instances)
			row.CellsPerSec = float64(row.Cells) / elapsed
			row.AllocsPerCell = float64(after.Mallocs-before.Mallocs) / float64(row.Cells)
			row.KBPerCell = float64(after.TotalAlloc-before.TotalAlloc) / 1024 / float64(row.Cells)
		}
	}
	return row, nil
}
