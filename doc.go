// Package stencilmart is a pure-Go reproduction of "StencilMART:
// Predicting Optimization Selection for Stencil Computations across GPUs"
// (Sun et al., IPDPS 2022).
//
// StencilMART is an automatic optimization-selection framework for GPU
// stencil kernels. It represents stencil access patterns as binary
// tensors and engineered neighboring features, profiles randomly
// generated stencils under every valid optimization combination (OC) on
// several GPU architectures, merges near-equivalent OCs via Pearson
// correlation, and trains machine-learning models that
//
//   - select the best OC for a new stencil on a given GPU
//     (classification: GBDT, ConvNet, FcNet), and
//   - predict execution time across architectures from stencil, parameter
//     and hardware features (regression: GBRegressor, MLP, ConvMLP),
//     enabling the "rent or not rent a cloud GPU" case study.
//
// Because this reproduction has no CUDA hardware, the GPUs of the paper's
// Table III are simulated by an analytical performance model
// (internal/sim) with the same structural behaviors real stencil kernels
// exhibit; see DESIGN.md for the substitution argument.
//
// Quick start:
//
//	cfg := stencilmart.DefaultConfig()
//	fw, err := stencilmart.Build(cfg)           // generate + profile + merge
//	if err != nil { ... }
//	acc, err := fw.ClassifierAccuracy(stencilmart.ClassGBDT, "V100", 2)
//
// The examples/ directory contains runnable programs for OC selection,
// cross-architecture prediction and the rent advisor; cmd/stencilmart is
// the command-line interface; EXPERIMENTS.md records the paper-vs-
// reproduction comparison for every table and figure.
package stencilmart
