// OC selection: reproduce the end-user workflow of Sec. V-B on a real
// workload family — image-processing box filters (the paper's motivating
// application for box stencils).
//
// The example profiles the classic box/star/cross suite exhaustively on
// one GPU (ground truth), trains the GBDT and ConvNet classifiers on a
// random corpus, and reports where the predicted optimization
// combinations land relative to the true best and worst.
//
// Run with: go run ./examples/ocselect
package main

import (
	"fmt"
	"log"
	"math/rand"

	"stencilmart"
)

const gpuName = "V100"

func main() {
	cfg := stencilmart.DefaultConfig()
	cfg.Corpus2D, cfg.Corpus3D = 40, 20
	fmt.Println("building StencilMART (random corpus, all GPUs)...")
	fw, err := stencilmart.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	v100, err := stencilmart.GPUByName(gpuName)
	if err != nil {
		log.Fatal(err)
	}

	suite := []stencilmart.Stencil{
		stencilmart.Box(2, 1), stencilmart.Box(2, 2), stencilmart.Box(2, 4),
		stencilmart.Star(2, 3), stencilmart.Cross(2, 2),
		stencilmart.Box(3, 1), stencilmart.Star(3, 4), stencilmart.Cross(3, 2),
	}

	fmt.Printf("\n%-10s %-14s %10s %10s %10s  %s\n",
		"stencil", "predicted OC", "pred(ms)", "best(ms)", "worst(ms)", "quality")
	for _, s := range suite {
		oc, err := fw.PredictBestOCForStencil(stencilmart.ClassGBDT, gpuName, s)
		if err != nil {
			log.Fatal(err)
		}
		predT, bestT, worstT := groundTruth(s, oc, v100)
		quality := worstT / predT // how much of the tuning headroom we kept
		headroom := worstT / bestT
		fmt.Printf("%-10s %-14s %10.3f %10.3f %10.3f  %.1fx of %.1fx headroom\n",
			s.Name, oc, predT*1e3, bestT*1e3, worstT*1e3, quality, headroom)
	}
	fmt.Println("\nquality = worst/predicted; a perfect prediction matches the headroom column")
}

// groundTruth searches every OC with a fixed budget and returns the
// predicted OC's best time plus the global best and worst.
func groundTruth(s stencilmart.Stencil, predicted stencilmart.Opt, arch stencilmart.Arch) (pred, best, worst float64) {
	w := stencilmart.DefaultWorkload(s)
	rng := rand.New(rand.NewSource(11))
	best, worst = -1, -1
	for _, oc := range stencilmart.Combinations() {
		t := searchOC(w, oc, arch, rng)
		if t < 0 {
			continue // OC crashes for this stencil
		}
		if best < 0 || t < best {
			best = t
		}
		if t > worst {
			worst = t
		}
		if oc == predicted {
			pred = t
		}
	}
	return pred, best, worst
}

// searchOC random-searches one OC's parameter space (16 settings) and
// returns the best time, or -1 if nothing runs.
func searchOC(w stencilmart.Workload, oc stencilmart.Opt, arch stencilmart.Arch, rng *rand.Rand) float64 {
	best := -1.0
	for i := 0; i < 16; i++ {
		p := randomParams(oc, w.S.Dims, rng)
		r, err := stencilmart.Simulate(w, oc, p, arch)
		if err != nil {
			continue
		}
		if best < 0 || r.Time < best {
			best = r.Time
		}
	}
	return best
}

func randomParams(oc stencilmart.Opt, dims int, rng *rand.Rand) stencilmart.Params {
	pick := func(vals ...int) int { return vals[rng.Intn(len(vals))] }
	p := stencilmart.Params{BlockX: pick(16, 32, 64, 128), BlockY: pick(2, 4, 8), Merge: 1, Unroll: 1}
	if oc.Has(stencilmart.BM) || oc.Has(stencilmart.CM) {
		p.Merge = pick(2, 4, 8)
		p.MergeDim = 1 + rng.Intn(dims)
	}
	if oc.Has(stencilmart.ST) {
		p.StreamTile = pick(16, 32, 64, 128, 256)
		p.StreamDim = 2
		if dims == 3 {
			p.StreamDim = 1 + rng.Intn(3)
		}
		p.Unroll = pick(1, 2, 4)
		p.UseSmem = rng.Intn(2) == 1
	}
	if oc.Has(stencilmart.TB) {
		p.TBDepth = pick(2, 4)
	}
	if oc.Has(stencilmart.PR) {
		p.PrefetchDepth = 1 + rng.Intn(2)
	}
	return p
}
