// Cross-architecture prediction: estimate how a stencil kernel would
// perform on GPUs you cannot access (Sec. IV-E).
//
// The example trains the performance regressor on the profiled corpus,
// then — for a held-out configuration — predicts the execution time on
// every Table III GPU and compares against the simulation substrate's
// ground truth, mimicking a user who measured locally on one GPU and
// wants the others' numbers before renting.
//
// Run with: go run ./examples/crossarch
package main

import (
	"fmt"
	"log"
	"math"

	"stencilmart"
)

func main() {
	cfg := stencilmart.DefaultConfig()
	cfg.Corpus2D, cfg.Corpus3D = 35, 25
	fmt.Println("building StencilMART and training the GBRegressor on all GPUs' instances...")
	fw, err := stencilmart.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Train on every 2-D instance in the dataset.
	var train []stencilmart.Instance
	for _, in := range fw.Dataset.Instances {
		if fw.Dataset.Stencils[in.StencilIdx].Dims == 2 {
			train = append(train, in)
		}
	}
	if len(train) > 8000 {
		train = train[:8000]
	}
	reg, err := fw.TrainRegressor(stencilmart.RegGB, 2, train, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Pick a corpus stencil and a fresh configuration to "measure".
	si := fw.StencilIndices(2)[0]
	s := fw.Dataset.Stencils[si]
	oc, err := stencilmart.ParseOC("ST_RT_PR")
	if err != nil {
		log.Fatal(err)
	}
	p := stencilmart.Params{
		BlockX: 64, BlockY: 4, Merge: 1, Unroll: 2,
		StreamTile: 64, StreamDim: 2, UseSmem: true, PrefetchDepth: 1,
	}
	w := stencilmart.DefaultWorkload(s)

	fmt.Printf("\nstencil %s under %s, blocks %dx%d, tile %d:\n", s.Name, oc, p.BlockX, p.BlockY, p.StreamTile)
	fmt.Printf("%-8s %12s %12s %8s\n", "GPU", "predicted", "measured", "error")
	var errs []float64
	for _, arch := range stencilmart.GPUCatalog() {
		pred, err := reg.PredictSeconds(stencilmart.Instance{
			StencilIdx: si, OC: oc, Params: p, Arch: arch.Name,
		})
		if err != nil {
			log.Fatal(err)
		}
		truth, err := stencilmart.Simulate(w, oc, p, arch)
		if err != nil {
			fmt.Printf("%-8s %12s %12s %8s\n", arch.Name, fmtMS(pred), "crash", "-")
			continue
		}
		e := math.Abs(pred-truth.Time) / truth.Time
		errs = append(errs, e)
		fmt.Printf("%-8s %12s %12s %7.1f%%\n", arch.Name, fmtMS(pred), fmtMS(truth.Time), e*100)
	}
	var mean float64
	for _, e := range errs {
		mean += e
	}
	fmt.Printf("mean absolute percentage error: %.1f%%\n", mean/float64(len(errs))*100)

	// Use the predictions the way the paper's case study does: pick the
	// cheapest adequate GPU for a batch of 10k sweeps.
	fmt.Println("\ncost of 10,000 sweeps at cloud prices, by prediction:")
	for _, arch := range stencilmart.GPUCatalog() {
		if !arch.HasRental() {
			continue
		}
		pred, err := reg.PredictSeconds(stencilmart.Instance{StencilIdx: si, OC: oc, Params: p, Arch: arch.Name})
		if err != nil {
			log.Fatal(err)
		}
		hours := pred / float64(w.TimeSteps) * 10000 / 3600
		fmt.Printf("  %-7s %.2f hours -> $%.2f\n", arch.Name, hours, hours*arch.RentalPerHour)
	}
}

func fmtMS(sec float64) string { return fmt.Sprintf("%.3fms", sec*1e3) }
