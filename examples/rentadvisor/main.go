// Rent advisor: the paper's Sec. V-D case study as a decision tool.
//
// A researcher owns no data-center GPU and wants to run 3-D physical
// simulations (512^3 double-precision stencils). Should they rent a P100,
// V100 or A100 from the cloud — and does the answer change if they care
// about cost instead of wall-clock time? StencilMART answers with
// cross-architecture performance prediction: no execution on the
// candidate GPUs is needed once the model is trained.
//
// Run with: go run ./examples/rentadvisor
package main

import (
	"fmt"
	"log"

	"stencilmart"
)

func main() {
	cfg := stencilmart.DefaultConfig()
	cfg.Corpus2D, cfg.Corpus3D = 25, 35 // weight the corpus toward 3-D
	fmt.Println("building StencilMART and training the cross-architecture regressor...")
	fw, err := stencilmart.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n--- optimizing for pure performance (all four GPUs) ---")
	perf, err := fw.RentStudy(stencilmart.RegGB, 3, false, 12)
	if err != nil {
		log.Fatal(err)
	}
	printReport(perf)

	fmt.Println("\n--- optimizing for cost efficiency (rentable GPUs only) ---")
	cost, err := fw.RentStudy(stencilmart.RegGB, 3, true, 12)
	if err != nil {
		log.Fatal(err)
	}
	printReport(cost)

	fmt.Println("\nrental prices (Google Cloud, Oct 2021):")
	for _, a := range stencilmart.GPUCatalog() {
		if a.HasRental() {
			fmt.Printf("  %-7s $%.2f/hr\n", a.Name, a.RentalPerHour)
		}
	}
	best := argmaxShare(cost)
	fmt.Printf("\nadvice: rent the %s for cost-efficient 3-D stencils — it wins %.0f%% of instances\n",
		cost.ArchNames[best], cost.Share[best]*100)
}

func printReport(rep stencilmart.RentReport) {
	for i, name := range rep.ArchNames {
		bar := ""
		for j := 0; j < int(rep.Share[i]*40); j++ {
			bar += "#"
		}
		fmt.Printf("  %-7s %5.1f%% %s\n", name, rep.Share[i]*100, bar)
	}
	fmt.Printf("  winner-prediction accuracy: %.1f%% over %d instances\n", rep.Overall*100, rep.Instances)
}

func argmaxShare(rep stencilmart.RentReport) int {
	best := 0
	for i := range rep.Share {
		if rep.Share[i] > rep.Share[best] {
			best = i
		}
	}
	return best
}
