// Quickstart: the three-minute tour of the StencilMART library.
//
// It builds a stencil, runs it on the reference CPU executor, rasterizes
// it into the paper's binary-tensor representation, simulates it under a
// few optimization combinations on a V100, and finally asks a small
// trained framework which optimization combination to use.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"stencilmart"
)

func main() {
	// 1. A classic stencil: the 2-D order-2 star (9-point Laplacian-like).
	s := stencilmart.Star(2, 2)
	fmt.Println("stencil:", s)

	// 2. Reference CPU execution: smooth a small grid for 4 time steps.
	in := stencilmart.NewGrid(64, 64, 1)
	in.Set(32, 32, 0, 1000) // a heat spike in the middle
	out, err := stencilmart.ApplySteps(s, stencilmart.UniformCoefficients(s), in, 4, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 4 smoothing sweeps the spike diffused to %.3f at the center\n",
		out.At(32, 32, 0))

	// 3. The paper's representations: binary tensor + feature set.
	bin, err := stencilmart.AssignTensor(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("binary tensor: %d cells, %d non-zeros (sparsity %.3f)\n",
		len(bin.Data), bin.NNZ(), bin.Sparsity())
	fmt.Printf("feature vector: %v\n", stencilmart.Features(s))

	// 4. Simulate a few optimization combinations on the V100 substrate.
	v100, err := stencilmart.GPUByName("V100")
	if err != nil {
		log.Fatal(err)
	}
	w := stencilmart.DefaultWorkload(s)
	rng := rand.New(rand.NewSource(1))
	fmt.Printf("\nsimulated times on %s (%d sweeps of %dx%d):\n", v100, w.TimeSteps, w.GridX, w.GridY)
	for _, name := range []string{"BASE", "ST", "ST_RT_PR", "ST_TB"} {
		oc, err := stencilmart.ParseOC(name)
		if err != nil {
			log.Fatal(err)
		}
		best := -1.0
		for i := 0; i < 16; i++ {
			p := sampleParams(oc, s.Dims, rng)
			r, err := stencilmart.Simulate(w, oc, p, v100)
			if err != nil {
				continue
			}
			if best < 0 || r.Time < best {
				best = r.Time
			}
		}
		fmt.Printf("  %-9s best of 16 settings: %8.3f ms\n", name, best*1e3)
	}

	// 5. Train a small framework and ask it for the best OC.
	cfg := stencilmart.DefaultConfig()
	cfg.Corpus2D, cfg.Corpus3D = 30, 10 // keep the demo quick
	fmt.Println("\nbuilding a small StencilMART framework (profiling a random corpus)...")
	fw, err := stencilmart.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	oc, err := fw.PredictBestOCForStencil(stencilmart.ClassGBDT, "V100", s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("StencilMART predicts the best optimization combination: %s\n", oc)
}

// sampleParams draws a random valid parameter setting via the public
// Combinations/Params surface (the internal sampler is not exported, so
// the example rolls a small one).
func sampleParams(oc stencilmart.Opt, dims int, rng *rand.Rand) stencilmart.Params {
	pow2 := func(vals ...int) int { return vals[rng.Intn(len(vals))] }
	p := stencilmart.Params{
		BlockX: pow2(32, 64, 128), BlockY: pow2(2, 4, 8), Merge: 1, Unroll: 1,
	}
	if oc.Has(stencilmart.BM) || oc.Has(stencilmart.CM) {
		p.Merge = pow2(2, 4)
		p.MergeDim = 1 + rng.Intn(dims)
	}
	if oc.Has(stencilmart.ST) {
		p.StreamTile = pow2(32, 64, 128)
		p.StreamDim = 2
		if dims == 3 {
			p.StreamDim = 3
		}
		p.Unroll = pow2(1, 2)
		p.UseSmem = rng.Intn(2) == 1
	}
	if oc.Has(stencilmart.TB) {
		p.TBDepth = pow2(2, 4)
	}
	if oc.Has(stencilmart.PR) {
		p.PrefetchDepth = 1 + rng.Intn(2)
	}
	return p
}
