// Serving: the deploy-side half of train-once/predict-cheaply.
//
// It builds and trains a small framework, checkpoints it to disk,
// rehydrates the checkpoint (no re-profiling, no re-training), starts
// the HTTP prediction service on a random port, and queries it the way
// a deployment would — including a stencil the framework never saw.
//
// Run with: go run ./examples/serving
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"stencilmart"
)

func main() {
	// 1. Train once: every classifier (per GPU x dimensionality) and
	// every regressor (per dimensionality) on the full corpus.
	cfg := stencilmart.SmokeConfig()
	fmt.Println("building and training a smoke-sized framework...")
	fw, err := stencilmart.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := fw.TrainAll(context.Background(), stencilmart.ClassGBDT, stencilmart.RegGB); err != nil {
		log.Fatal(err)
	}

	// 2. Checkpoint: a versioned, checksummed, stdlib-JSON envelope.
	dir, err := os.MkdirTemp("", "stencilmart-serving-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "model.ckpt")
	if err := fw.SaveFile(ckpt); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(ckpt)
	fmt.Printf("checkpoint: %s (%d bytes)\n", ckpt, st.Size())

	// 3. Rehydrate: the loaded framework predicts bitwise identically to
	// the one that trained, with no profiling or training.
	loaded, err := stencilmart.LoadFrameworkFile(ckpt)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Serve over HTTP.
	srv, err := stencilmart.NewPredictionServer(loaded, 0)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan string, 1)
	go func() {
		logf := func(format string, args ...any) {
			line := fmt.Sprintf(format, args...)
			if strings.HasPrefix(line, "serving on ") {
				addrCh <- strings.TrimPrefix(line, "serving on ")
			}
		}
		if err := srv.Run(ctx, "127.0.0.1:0", logf); err != nil {
			log.Fatal(err)
		}
	}()
	base := <-addrCh
	fmt.Println("service at", base)

	// 5. Query it like a deployment would — a named classic stencil and
	// a custom pattern spelled as raw offsets.
	for _, body := range []string{
		`{"stencil":"star3d2r","gpu":"V100"}`,
		`{"name":"my-kernel","dims":2,"points":[[0,0,0],[2,0,0],[-2,0,0],[0,1,0],[0,-1,0],[1,1,0]],"gpu":"2080Ti"}`,
	} {
		resp, err := http.Post(base+"/predict", "application/json", bytes.NewBufferString(body))
		if err != nil {
			log.Fatal(err)
		}
		var pred stencilmart.ServePrediction
		if err := json.NewDecoder(resp.Body).Decode(&pred); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("\n%s on %s:\n", pred.Stencil, pred.GPU)
		fmt.Printf("  predicted OC: %s, tuned %.3f ms\n", pred.OC, pred.TunedSeconds*1e3)
		for i, name := range pred.ArchNames {
			fmt.Printf("  %-7s %.3f ms predicted\n", name, pred.PredictedSeconds[i]*1e3)
		}
		if pred.Advice.Rent {
			fmt.Printf("  advice: rent %s (%.2fx faster)\n", pred.Advice.BestArch, pred.Advice.Speedup)
		} else {
			fmt.Printf("  advice: stay on %s\n", pred.Advice.Target)
		}
	}

	// 6. The stats page shows the sim memo cache doing the serving work.
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		log.Fatal(err)
	}
	var stats map[string]any
	json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	fmt.Println("\n/statsz:", stats["sim_cache"])

	cancel()
	time.Sleep(100 * time.Millisecond) // let the shutdown line print
}
