package stencilmart_test

import (
	"bytes"
	"math"
	"testing"

	"stencilmart"
)

func TestPublicShapeConstructors(t *testing.T) {
	s := stencilmart.Star(2, 1)
	if s.NumPoints() != 5 {
		t.Errorf("star2d1r points = %d", s.NumPoints())
	}
	byName, err := stencilmart.StencilByName("box3d2r")
	if err != nil {
		t.Fatal(err)
	}
	if byName.Dims != 3 || byName.Order() != 2 {
		t.Errorf("ByName gave %v", byName)
	}
}

func TestPublicGPUAndOC(t *testing.T) {
	if len(stencilmart.GPUCatalog()) != 4 {
		t.Error("catalog size != 4")
	}
	v100, err := stencilmart.GPUByName("V100")
	if err != nil || v100.MemBWGBs != 900 {
		t.Errorf("V100 lookup: %v %v", v100, err)
	}
	if len(stencilmart.Combinations()) != 30 {
		t.Error("combinations != 30")
	}
	oc, err := stencilmart.ParseOC("ST_RT")
	if err != nil || !oc.Has(stencilmart.ST) || !oc.Has(stencilmart.RT) {
		t.Errorf("ParseOC: %v %v", oc, err)
	}
}

func TestPublicSimulate(t *testing.T) {
	s := stencilmart.Star(2, 1)
	w := stencilmart.DefaultWorkload(s)
	v100, _ := stencilmart.GPUByName("V100")
	r, err := stencilmart.Simulate(w, 0,
		stencilmart.Params{BlockX: 64, BlockY: 4, Merge: 1, Unroll: 1}, v100)
	if err != nil {
		t.Fatal(err)
	}
	if r.Time <= 0 {
		t.Errorf("time %g", r.Time)
	}
}

func TestPublicGenerateAndTensor(t *testing.T) {
	ss, err := stencilmart.GenerateStencils(3, 5, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 5 {
		t.Fatalf("%d stencils", len(ss))
	}
	for _, s := range ss {
		b, err := stencilmart.AssignTensor(s)
		if err != nil {
			t.Fatal(err)
		}
		if b.NNZ() != s.NumPoints() {
			t.Errorf("%s: tensor NNZ %d != points %d", s.Name, b.NNZ(), s.NumPoints())
		}
		f := stencilmart.Features(s)
		if len(f) == 0 || f[0] != float64(s.Order()) {
			t.Errorf("%s: features %v", s.Name, f)
		}
	}
}

func TestPublicReferenceExecution(t *testing.T) {
	s := stencilmart.Box(2, 1)
	in := stencilmart.NewGrid(16, 16, 1)
	in.Fill(func(x, y, z int) float64 { return 1 })
	out, err := stencilmart.ApplySteps(s, stencilmart.UniformCoefficients(s), in, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.At(8, 8, 0)-1) > 1e-12 {
		t.Errorf("uniform field drifted: %g", out.At(8, 8, 0))
	}
}

func TestPublicEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end build is slow")
	}
	cfg := stencilmart.DefaultConfig()
	cfg.Corpus2D, cfg.Corpus3D = 15, 10
	cfg.SamplesPerOC = 6
	cfg.MaxRegressionInstances = 800
	cfg.GBDT.Rounds = 15
	cfg.GBReg.Rounds = 25
	fw, err := stencilmart.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oc, err := fw.PredictBestOCForStencil(stencilmart.ClassGBDT, "V100", stencilmart.Star(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !oc.Valid() {
		t.Errorf("invalid OC %v", oc)
	}
	// Round-trip the dataset through the public serialization surface.
	var buf bytes.Buffer
	if err := fw.Dataset.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	ds, err := stencilmart.ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fw2, err := stencilmart.FromDataset(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if fw2.Grouping.NumClasses() != fw.Grouping.NumClasses() {
		t.Error("grouping changed after dataset round trip")
	}
}

func TestBaselinesExposed(t *testing.T) {
	if stencilmart.Artemis.Name() != "Artemis" || stencilmart.AN5D.Name() != "AN5D" {
		t.Error("baseline strategies misnamed")
	}
}
