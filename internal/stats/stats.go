// Package stats provides the statistical helpers the evaluation pipeline
// uses: Pearson correlation (OC merging, Sec. III-C), MAPE (regression
// error, Sec. V-C), classification accuracy and geometric-mean speedups.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples. It returns an error for mismatched lengths, fewer than two
// observations, or zero variance in either sample.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: pearson length mismatch %d vs %d", len(x), len(y))
	}
	n := float64(len(x))
	if n < 2 {
		return 0, fmt.Errorf("stats: pearson needs >= 2 observations, got %d", len(x))
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("stats: pearson undefined for zero-variance sample")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// MAPE returns the mean absolute percentage error of predictions against
// ground truth, as a fraction (0.062 = 6.2%). Zero-valued truths are
// rejected because the metric is undefined there.
func MAPE(truth, pred []float64) (float64, error) {
	if len(truth) != len(pred) {
		return 0, fmt.Errorf("stats: MAPE length mismatch %d vs %d", len(truth), len(pred))
	}
	if len(truth) == 0 {
		return 0, fmt.Errorf("stats: MAPE of empty sample")
	}
	var sum float64
	for i := range truth {
		if truth[i] == 0 {
			return 0, fmt.Errorf("stats: MAPE undefined for zero truth at index %d", i)
		}
		sum += math.Abs((pred[i] - truth[i]) / truth[i])
	}
	return sum / float64(len(truth)), nil
}

// Accuracy returns the fraction of positions where the predicted and true
// labels agree.
func Accuracy(truth, pred []int) (float64, error) {
	if len(truth) != len(pred) {
		return 0, fmt.Errorf("stats: accuracy length mismatch %d vs %d", len(truth), len(pred))
	}
	if len(truth) == 0 {
		return 0, fmt.Errorf("stats: accuracy of empty sample")
	}
	hits := 0
	for i := range truth {
		if truth[i] == pred[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(truth)), nil
}

// GeoMean returns the geometric mean of strictly positive values — the
// aggregation used for speedup figures.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: geomean of empty sample")
	}
	var s float64
	for i, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geomean requires positive values, got %g at %d", x, i)
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}

// Mean returns the arithmetic mean; it returns 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Quantiles returns the q-quantiles (e.g. 0.25, 0.5, 0.75) of the sample
// using linear interpolation on the sorted copy.
func Quantiles(xs []float64, qs ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("stats: quantiles of empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q < 0 || q > 1 {
			return nil, fmt.Errorf("stats: quantile %g outside [0,1]", q)
		}
		pos := q * float64(len(sorted)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		frac := pos - float64(lo)
		out[i] = sorted[lo]*(1-frac) + sorted[hi]*frac
	}
	return out, nil
}

// TopK returns the indices of the k largest values in descending order.
// k is clamped to len(xs).
func TopK(xs []float64, k int) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// ArgMin returns the index of the smallest value; -1 for empty input.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// ArgMax returns the index of the largest value; -1 for empty input.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
