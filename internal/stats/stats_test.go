package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	r, err := Pearson(x, y)
	if err != nil || !almost(r, 1) {
		t.Errorf("Pearson = %g, %v; want 1", r, err)
	}
	neg := []float64{8, 6, 4, 2}
	r, err = Pearson(x, neg)
	if err != nil || !almost(r, -1) {
		t.Errorf("Pearson = %g, %v; want -1", r, err)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("single observation accepted")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("zero variance accepted")
	}
}

// Property: |PCC| <= 1 and PCC is symmetric.
func TestQuickPearsonBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		a, err1 := Pearson(x, y)
		b, err2 := Pearson(y, x)
		if err1 != nil || err2 != nil {
			return true // degenerate draw
		}
		return math.Abs(a) <= 1+1e-12 && almost(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMAPE(t *testing.T) {
	m, err := MAPE([]float64{100, 200}, []float64{110, 180})
	if err != nil || !almost(m, 0.1) {
		t.Errorf("MAPE = %g, %v; want 0.1", m, err)
	}
	if _, err := MAPE([]float64{0}, []float64{1}); err == nil {
		t.Error("zero truth accepted")
	}
	if _, err := MAPE(nil, nil); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := MAPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestAccuracy(t *testing.T) {
	a, err := Accuracy([]int{1, 2, 3, 4}, []int{1, 2, 0, 4})
	if err != nil || !almost(a, 0.75) {
		t.Errorf("Accuracy = %g, %v; want 0.75", a, err)
	}
	if _, err := Accuracy(nil, nil); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4})
	if err != nil || !almost(g, 2) {
		t.Errorf("GeoMean = %g, %v; want 2", g, err)
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("negative value accepted")
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Error("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestQuantiles(t *testing.T) {
	qs, err := Quantiles([]float64{4, 1, 3, 2}, 0, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(qs[0], 1) || !almost(qs[1], 2.5) || !almost(qs[2], 4) {
		t.Errorf("Quantiles = %v", qs)
	}
	if _, err := Quantiles([]float64{1}, 1.5); err == nil {
		t.Error("out-of-range quantile accepted")
	}
	if _, err := Quantiles(nil, 0.5); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestTopKAndArg(t *testing.T) {
	xs := []float64{3, 9, 1, 7}
	top := TopK(xs, 2)
	if len(top) != 2 || top[0] != 1 || top[1] != 3 {
		t.Errorf("TopK = %v", top)
	}
	if got := TopK(xs, 99); len(got) != 4 {
		t.Errorf("TopK clamp failed: %v", got)
	}
	if ArgMin(xs) != 2 || ArgMax(xs) != 1 {
		t.Errorf("ArgMin/ArgMax = %d/%d", ArgMin(xs), ArgMax(xs))
	}
	if ArgMin(nil) != -1 || ArgMax(nil) != -1 {
		t.Error("empty Arg* != -1")
	}
}
