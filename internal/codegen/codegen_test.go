package codegen

import (
	"math/rand"
	"strings"
	"testing"

	"stencilmart/internal/opt"
	"stencilmart/internal/stencil"
)

func baseParams() opt.Params {
	return opt.Params{BlockX: 64, BlockY: 4, Merge: 1, Unroll: 1}
}

func TestGenerateBaseKernel(t *testing.T) {
	s := stencil.Star(2, 1)
	k, err := Generate(s, 0, baseParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"__global__", "__launch_bounds__(256)", "star2d1r_base_kernel",
		"#define ORDER 1", "double acc = 0.0;", "coeff[0]", "coeff[4]",
	} {
		if !strings.Contains(k.Source, want) {
			t.Errorf("source missing %q:\n%s", want, k.Source)
		}
	}
	if strings.Contains(k.Source, "__syncthreads") {
		t.Error("BASE kernel contains barriers")
	}
	if strings.Contains(k.Source, "__shared__") || k.SmemBytes != 0 {
		t.Error("BASE kernel uses shared memory")
	}
	if k.LaunchBounds != [2]int{64, 4} {
		t.Errorf("launch bounds %v", k.LaunchBounds)
	}
	// One accumulate line per stencil point.
	if got := strings.Count(k.Source, "acc += coeff["); got != s.NumPoints() {
		t.Errorf("%d accumulate lines for %d points", got, s.NumPoints())
	}
}

func TestGenerateStreamingSmemKernel(t *testing.T) {
	p := opt.Params{BlockX: 32, BlockY: 8, Merge: 1, Unroll: 2,
		StreamTile: 64, StreamDim: 3, UseSmem: true}
	k, err := Generate(stencil.Box(3, 2), opt.ST, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"extern __shared__ double plane[]",
		"__syncthreads()",
		"#pragma unroll 2",
		"for (int s = 0; s < 64; ++s)",
		"int nz",
	} {
		if !strings.Contains(k.Source, want) {
			t.Errorf("source missing %q", want)
		}
	}
	if k.SmemBytes == 0 {
		t.Error("smem kernel reports zero shared memory")
	}
}

func TestGenerateRegisterStreaming(t *testing.T) {
	p := opt.Params{BlockX: 64, BlockY: 2, Merge: 1, Unroll: 1,
		StreamTile: 32, StreamDim: 2}
	k, err := Generate(stencil.Star(2, 4), opt.ST, p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(k.Source, "double col[2 * ORDER + 1]") {
		t.Error("register column missing without smem")
	}
	if strings.Contains(k.Source, "__syncthreads") {
		t.Error("register streaming needs no barriers")
	}
	if k.SmemBytes != 0 {
		t.Errorf("register streaming smem = %d", k.SmemBytes)
	}
}

func TestGeneratePrefetchAndRetiming(t *testing.T) {
	p := opt.Params{BlockX: 64, BlockY: 4, Merge: 1, Unroll: 1,
		StreamTile: 32, StreamDim: 2, PrefetchDepth: 2}
	k, err := Generate(stencil.Star(2, 2), opt.ST|opt.PR|opt.RT, p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(k.Source, "prefetch[") {
		t.Error("PR double buffer missing")
	}
	if !strings.Contains(k.Source, "Retiming") {
		t.Error("RT annotation missing")
	}
}

func TestGenerateMergingVariants(t *testing.T) {
	bm := opt.Params{BlockX: 32, BlockY: 4, Merge: 4, MergeDim: 2, Unroll: 1}
	k, err := Generate(stencil.Box(2, 1), opt.BM, bm)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(k.Source, "Block merging") {
		t.Error("BM annotation missing")
	}
	if got := strings.Count(k.Source, "// merged point"); got != 4 {
		t.Errorf("%d merged-point bodies, want 4", got)
	}
	cm := opt.Params{BlockX: 32, BlockY: 4, Merge: 2, MergeDim: 1, Unroll: 1}
	k2, err := Generate(stencil.Box(2, 1), opt.CM, cm)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(k2.Source, "Cyclic merging") || !strings.Contains(k2.Source, "Stride") {
		t.Error("CM stride structure missing")
	}
}

func TestGenerateTemporalBlocking(t *testing.T) {
	p := opt.Params{BlockX: 32, BlockY: 4, Merge: 1, Unroll: 1, TBDepth: 2}
	k, err := Generate(stencil.Star(2, 1), opt.TB, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"#define TB_DEPTH 2", "extern __shared__ double tile[]", "__syncthreads()"} {
		if !strings.Contains(k.Source, want) {
			t.Errorf("source missing %q", want)
		}
	}
	if k.SmemBytes == 0 {
		t.Error("TB kernel reports zero shared memory")
	}
}

func TestGenerateRejectsInvalid(t *testing.T) {
	if _, err := Generate(stencil.Star(2, 1), opt.RT, baseParams()); err == nil {
		t.Error("invalid OC accepted")
	}
	if _, err := Generate(stencil.Star(2, 1), opt.ST, baseParams()); err == nil {
		t.Error("inconsistent params accepted")
	}
	bad := stencil.Stencil{Dims: 7}
	if _, err := Generate(bad, 0, baseParams()); err == nil {
		t.Error("invalid stencil accepted")
	}
}

// Property-style sweep: every valid OC generates compilable-looking
// source with balanced braces and the right kernel name.
func TestGenerateAllOCsStructural(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, oc := range opt.Combinations() {
		for _, s := range []stencil.Stencil{stencil.Star(2, 2), stencil.Box(3, 1)} {
			p := opt.Sample(oc, s.Dims, rng)
			k, err := Generate(s, oc, p)
			if err != nil {
				t.Fatalf("%s/%s: %v", s.Name, oc, err)
			}
			if strings.Count(k.Source, "{") != strings.Count(k.Source, "}") {
				t.Errorf("%s/%s: unbalanced braces", s.Name, oc)
			}
			if !strings.Contains(k.Source, k.Name) {
				t.Errorf("%s/%s: kernel name %q missing from source", s.Name, oc, k.Name)
			}
			hasBarrier := strings.Contains(k.Source, "__syncthreads")
			needsBarrier := (oc.Has(opt.ST) && p.UseSmem) || oc.Has(opt.TB)
			if hasBarrier != needsBarrier && !oc.Has(opt.ST) {
				t.Errorf("%s/%s: barrier presence %v, want %v", s.Name, oc, hasBarrier, needsBarrier)
			}
		}
	}
}
