package codegen

import (
	"math/rand"
	"testing"

	"stencilmart/internal/opt"
	"stencilmart/internal/stencil"
)

func BenchmarkGenerateStreamingKernel(b *testing.B) {
	s := stencil.Box(3, 2)
	rng := rand.New(rand.NewSource(1))
	p := opt.Sample(opt.ST|opt.TB|opt.PR, 3, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(s, opt.ST|opt.TB|opt.PR, p); err != nil {
			b.Fatal(err)
		}
	}
}
