package sim

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/stencil"
)

func v100(t *testing.T) gpu.Arch {
	t.Helper()
	a, err := gpu.ByName("V100")
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func baseParams() opt.Params {
	return opt.Params{BlockX: 64, BlockY: 4, Merge: 1, Unroll: 1}
}

func stParams() opt.Params {
	return opt.Params{BlockX: 64, BlockY: 4, Merge: 1, Unroll: 2,
		StreamTile: 64, StreamDim: 2, UseSmem: true}
}

func TestDefaultWorkloadSizes(t *testing.T) {
	w2 := DefaultWorkload(stencil.Star(2, 1))
	if w2.GridX != 8192 || w2.GridY != 8192 || w2.GridZ != 1 {
		t.Errorf("2-D workload grid %dx%dx%d", w2.GridX, w2.GridY, w2.GridZ)
	}
	w3 := DefaultWorkload(stencil.Star(3, 1))
	if w3.GridX != 512 || w3.GridY != 512 || w3.GridZ != 512 {
		t.Errorf("3-D workload grid %dx%dx%d", w3.GridX, w3.GridY, w3.GridZ)
	}
	if w3.Points() != 512*512*512 {
		t.Errorf("3-D points = %g", w3.Points())
	}
}

func TestRunDeterministic(t *testing.T) {
	m := New()
	w := DefaultWorkload(stencil.Box(2, 2))
	a, err := m.Run(w, opt.ST, stParams(), v100(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Run(w, opt.ST, stParams(), v100(t))
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time {
		t.Errorf("nondeterministic: %g vs %g", a.Time, b.Time)
	}
	if a.Time <= 0 {
		t.Errorf("non-positive time %g", a.Time)
	}
}

func TestNoiseKeyedByPatternNotName(t *testing.T) {
	m := New()
	s1 := stencil.Star(2, 1)
	s2 := stencil.MustNew("renamed", 2, s1.Points)
	r1, err := m.Run(DefaultWorkload(s1), 0, baseParams(), v100(t))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m.Run(DefaultWorkload(s2), 0, baseParams(), v100(t))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Time != r2.Time {
		t.Errorf("identical patterns timed differently: %g vs %g", r1.Time, r2.Time)
	}
}

func TestBreakdownPositive(t *testing.T) {
	m := New()
	r, err := m.Run(DefaultWorkload(stencil.Star(3, 2)), opt.ST|opt.PR,
		opt.Params{BlockX: 64, BlockY: 4, Merge: 1, Unroll: 1, StreamTile: 64,
			StreamDim: 3, UseSmem: true, PrefetchDepth: 2}, v100(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Compute <= 0 || r.Memory <= 0 || r.Launch <= 0 {
		t.Errorf("breakdown %+v has non-positive core terms", r)
	}
	if r.Occupancy <= 0 || r.Occupancy > 1 {
		t.Errorf("occupancy %g outside (0,1]", r.Occupancy)
	}
	if r.Sync < 0 {
		t.Errorf("negative sync %g", r.Sync)
	}
}

// TestStreamingBeatsNaiveHighOrder3D encodes the paper's headline
// mechanism: for high-order 3-D stencils, streaming with shared memory
// dramatically reduces memory traffic versus the naive kernel.
func TestStreamingBeatsNaiveHighOrder3D(t *testing.T) {
	m := New()
	w := DefaultWorkload(stencil.Box(3, 3))
	naive, err := m.Run(w, 0, baseParams(), v100(t))
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run(w, opt.ST, opt.Params{BlockX: 64, BlockY: 4, Merge: 1,
		Unroll: 1, StreamTile: 64, StreamDim: 3, UseSmem: true}, v100(t))
	if err != nil {
		t.Fatal(err)
	}
	if st.Time >= naive.Time {
		t.Errorf("ST (%.3gs) not faster than naive (%.3gs) for box3d3r", st.Time, naive.Time)
	}
	if naive.Time/st.Time < 2 {
		t.Errorf("ST speedup only %.2fx for box3d3r; model too flat", naive.Time/st.Time)
	}
}

// TestTBWithoutSTCrashesHighOrder3D encodes Sec. III-A: temporal blocking
// fails for 3-D order-4 stencils without streaming (V100-class smem).
func TestTBWithoutSTCrashesHighOrder3D(t *testing.T) {
	m := New()
	w := DefaultWorkload(stencil.Star(3, 4))
	rng := rand.New(rand.NewSource(1))
	var settings []opt.Params
	for i := 0; i < 64; i++ {
		settings = append(settings, opt.Sample(opt.TB, 3, rng))
	}
	_, _, err := m.BestOf(w, opt.TB, settings, v100(t))
	if err == nil {
		t.Fatal("TB without ST succeeded for star3d4r on V100")
	}
	if !errors.Is(err, ErrInvalidConfig) && !errors.Is(err, ErrCrash) {
		t.Errorf("unexpected error type: %v", err)
	}
	// With streaming enabled the same stencil must run.
	var stSettings []opt.Params
	for i := 0; i < 64; i++ {
		stSettings = append(stSettings, opt.Sample(opt.ST|opt.TB, 3, rng))
	}
	if _, _, err := m.BestOf(w, opt.ST|opt.TB, stSettings, v100(t)); err != nil {
		t.Errorf("ST_TB failed for star3d4r: %v", err)
	}
}

func TestBlockMergingXBreaksCoalescing(t *testing.T) {
	m := New()
	w := DefaultWorkload(stencil.Star(2, 1))
	px := opt.Params{BlockX: 64, BlockY: 4, Merge: 4, MergeDim: 1, Unroll: 1}
	py := opt.Params{BlockX: 64, BlockY: 4, Merge: 4, MergeDim: 2, Unroll: 1}
	rx, err := m.Run(w, opt.BM, px, v100(t))
	if err != nil {
		t.Fatal(err)
	}
	ry, err := m.Run(w, opt.BM, py, v100(t))
	if err != nil {
		t.Fatal(err)
	}
	if rx.Time <= ry.Time {
		t.Errorf("BM along x (%.3g) not slower than along y (%.3g)", rx.Time, ry.Time)
	}
}

func TestRetimingRelievesRegisterPressure(t *testing.T) {
	w := DefaultWorkload(stencil.Box(3, 4))
	p := stParams()
	p.StreamDim = 3
	without := resourceUsage(w, opt.ST, p, v100(t))
	with := resourceUsage(w, opt.ST|opt.RT, p, v100(t))
	if with.regs >= without.regs {
		t.Errorf("RT regs %.1f >= plain ST regs %.1f", with.regs, without.regs)
	}
}

func TestInvalidInputsRejected(t *testing.T) {
	m := New()
	w := DefaultWorkload(stencil.Star(2, 1))
	if _, err := m.Run(w, opt.RT, baseParams(), v100(t)); err == nil {
		t.Error("invalid OC accepted")
	}
	if _, err := m.Run(w, opt.ST, baseParams(), v100(t)); err == nil {
		t.Error("params inconsistent with OC accepted")
	}
	bad := w
	bad.TimeSteps = 0
	if _, err := m.Run(bad, 0, baseParams(), v100(t)); err == nil {
		t.Error("zero time steps accepted")
	}
	bad2 := w
	bad2.GridZ = 4
	if _, err := m.Run(bad2, 0, baseParams(), v100(t)); err == nil {
		t.Error("2-D stencil with 3-D grid accepted")
	}
}

func TestBestOfPicksMinimum(t *testing.T) {
	m := New()
	w := DefaultWorkload(stencil.Star(2, 2))
	rng := rand.New(rand.NewSource(7))
	var settings []opt.Params
	for i := 0; i < 20; i++ {
		settings = append(settings, opt.Sample(opt.ST, 2, rng))
	}
	best, bestP, err := m.BestOf(w, opt.ST, settings, v100(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range settings {
		r, err := m.Run(w, opt.ST, p, v100(t))
		if err != nil {
			continue
		}
		if r.Time < best.Time {
			t.Fatalf("BestOf missed faster setting %+v (%.3g < %.3g)", p, r.Time, best.Time)
		}
	}
	if err := bestP.Validate(opt.ST, 2); err != nil {
		t.Errorf("best params invalid: %v", err)
	}
}

func TestLineCounts(t *testing.T) {
	if got := lineCount(stencil.Star(2, 1)); got != 3 {
		t.Errorf("lineCount(star2d1r) = %d, want 3", got)
	}
	if got := lineCount(stencil.Box(2, 4)); got != 9 {
		t.Errorf("lineCount(box2d4r) = %d, want 9", got)
	}
	if got := lineCount(stencil.Box(3, 4)); got != 81 {
		t.Errorf("lineCount(box3d4r) = %d, want 81", got)
	}
	if got := planeLineCount(stencil.Box(3, 4), 3); got != 9 {
		t.Errorf("planeLineCount(box3d4r, z) = %d, want 9", got)
	}
	if got := planeLineCount(stencil.Star(3, 2), 3); got != 5 {
		t.Errorf("planeLineCount(star3d2r, z) = %d, want 5", got)
	}
}

// TestGapGrowsWithOrder checks Fig. 1's trend: the headroom over the
// unoptimized kernel grows with stencil order for a fixed shape. (The
// raw best/worst gap is confounded at high orders because the worst OCs
// crash there and drop out, as in the paper.)
func TestGapGrowsWithOrder(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(3))
	gap := func(s stencil.Stencil) float64 {
		w := DefaultWorkload(s)
		naive, err := m.Run(w, 0, baseParams(), v100(t))
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		best := math.Inf(1)
		for _, oc := range opt.Combinations() {
			var settings []opt.Params
			for i := 0; i < 24; i++ {
				settings = append(settings, opt.Sample(oc, s.Dims, rng))
			}
			r, _, err := m.BestOf(w, oc, settings, v100(t))
			if err == nil && r.Time < best {
				best = r.Time
			}
		}
		return naive.Time / best
	}
	g1 := gap(stencil.Box(3, 1))
	g4 := gap(stencil.Box(3, 4))
	if g4 <= g1 {
		t.Errorf("naive/best gap(box3d4r)=%.2f not larger than gap(box3d1r)=%.2f", g4, g1)
	}
}

// Property: any sampled valid configuration either errors or yields a
// strictly positive, finite time with a sane breakdown.
func TestQuickRunSane(t *testing.T) {
	m := New()
	archs := gpu.Catalog()
	combos := opt.Combinations()
	rng := rand.New(rand.NewSource(11))
	shapes := append(stencil.Representative(2), stencil.Representative(3)...)
	f := func(si, oi, ai uint8) bool {
		s := shapes[int(si)%len(shapes)]
		oc := combos[int(oi)%len(combos)]
		arch := archs[int(ai)%len(archs)]
		p := opt.Sample(oc, s.Dims, rng)
		r, err := m.Run(DefaultWorkload(s), oc, p, arch)
		if err != nil {
			return errors.Is(err, ErrCrash) || errors.Is(err, ErrInvalidConfig)
		}
		return r.Time > 0 && !math.IsInf(r.Time, 0) && !math.IsNaN(r.Time) &&
			r.Occupancy > 0 && r.Occupancy <= 1 &&
			r.Compute > 0 && r.Memory > 0 && r.Sync >= 0 && r.Launch > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
