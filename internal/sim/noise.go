package sim

import (
	"math"
	"sync"

	"stencilmart/internal/gen"
	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/stencil"
)

// NoiseConfig sets the standard deviations of the lognormal terms the
// model layers over the analytical time. Each term is deterministic in
// its key, so repeated simulations of the same configuration agree
// exactly (the substrate is a reproducible oracle).
//
// The stencil-dependent terms (StencilArch, StencilOC) are smooth random
// projections of the stencil's geometric features rather than hashes of
// its identity: real unmodeled microarchitectural effects are systematic
// functions of the access pattern, which is precisely what makes the
// paper's regressors able to predict them (6% MAPE) while still making
// "which GPU wins" stencil-dependent (Figs. 4, 14, 15).
type NoiseConfig struct {
	// Measurement varies with the full (stencil, OC, params, arch) key —
	// run-to-run measurement jitter, unpredictable by construction.
	Measurement float64
	// StencilArch scales a smooth per-architecture projection of the
	// stencil features — per-stencil architectural affinity beyond the
	// modeled mechanisms.
	StencilArch float64
	// StencilOC scales a smooth per-OC projection of the stencil
	// features — access-pattern/optimization interaction beyond the
	// modeled mechanisms; shared across architectures, which is what
	// makes pairwise-OC correlations portable between GPUs (Fig. 3).
	StencilOC float64
	// OCArch varies with (OC, arch) — per-architecture optimization
	// quirks (hash-keyed; with only 30x4 cells it is learnable from
	// training data regardless).
	OCArch float64
}

// DefaultNoise returns the calibrated noise configuration; see DESIGN.md
// section 5.
func DefaultNoise() NoiseConfig {
	return NoiseConfig{
		Measurement: 0.03,
		StencilArch: 0.18,
		StencilOC:   0.06,
		OCArch:      0.04,
	}
}

// factor returns the multiplicative noise for one simulated run.
func (n NoiseConfig) factor(s stencil.Stencil, oc opt.Opt, p opt.Params, arch gpu.Arch) float64 {
	key := patternKey(s)
	ocb := byte(oc)
	e := n.Measurement*gauss(key, ocb, paramsKey(p), arch.Name) +
		n.StencilArch*projection(s, "arch:"+arch.Name) +
		n.StencilOC*projection(s, "oc:"+string(ocb)) +
		n.OCArch*gauss("", ocb, "", arch.Name)
	return math.Exp(e)
}

// phi embeds a stencil into a standardized geometric feature vector: the
// raw material for the smooth affinity projections. Each component is
// centered and scaled by its population spread over random generator
// corpora (constants measured once over 600 mixed stencils), so the
// components have roughly zero mean and unit variance.
func phi(s stencil.Stencil) []float64 {
	n := float64(s.NumPoints())
	r := float64(s.Order())
	var sumD, maxD float64
	for _, p := range s.Points {
		d := p.Euclidean()
		sumD += d
		if d > maxD {
			maxD = d
		}
	}
	dims3 := -1.0
	if s.Dims == 3 {
		dims3 = 1
	}
	lines := float64(stencil.LineCount(s))
	shell := float64(len(s.PointsAtOrder(int(r)))) / n
	first := float64(len(s.PointsAtOrder(1))) / n
	return []float64{
		(r - 2.5) / 1.1,
		(math.Cbrt(n) - 2.6) / 1.0,
		(sumD/n - 2.0) / 0.9,
		(maxD - 3.3) / 1.5,
		dims3,
		(math.Log2(lines) - 2.5) / 1.5,
		(first - 0.45) / 0.25,
		(shell - 0.30) / 0.20,
	}
}

// rawProjection is w_key . phi(s) with w_key a deterministic
// pseudo-random unit direction per key.
func rawProjection(s stencil.Stencil, key string) float64 {
	f := phi(s)
	var z, norm float64
	for i := range f {
		w := gauss(key, byte(i), "", "")
		z += w * f[i]
		norm += w * w
	}
	return z / math.Sqrt(norm)
}

// refCorpus is a fixed mixed stencil population used to standardize each
// projection key: phi components are correlated, so the spread of a raw
// projection depends on its direction; dividing by the reference spread
// makes every key's affinity term comparable.
var (
	refOnce   sync.Once
	refPhi    []stencil.Stencil
	keyStats  sync.Map // key -> [2]float64{mean, std}
	refSeed   = int64(20220530)
	refCount2 = 200
	refCount3 = 200
)

func referenceCorpus() []stencil.Stencil {
	refOnce.Do(func() {
		corpus, err := gen.MixedCorpus(refCount2, refCount3, stencil.MaxOrder, refSeed)
		if err != nil {
			panic("sim: reference corpus generation failed: " + err.Error())
		}
		refPhi = corpus
	})
	return refPhi
}

// projection returns an approximately standard-normal smooth function of
// the stencil, standardized per key against the reference corpus.
func projection(s stencil.Stencil, key string) float64 {
	if v, ok := keyStats.Load(key); ok {
		st := v.([2]float64)
		return (rawProjection(s, key) - st[0]) / st[1]
	}
	corpus := referenceCorpus()
	var m, m2 float64
	for _, rs := range corpus {
		z := rawProjection(rs, key)
		m += z
		m2 += z * z
	}
	n := float64(len(corpus))
	mean := m / n
	std := math.Sqrt(m2/n - mean*mean)
	if std < 1e-9 {
		std = 1
	}
	keyStats.Store(key, [2]float64{mean, std})
	return (rawProjection(s, key) - mean) / std
}

// patternKey canonicalizes the access pattern so renamed but identical
// stencils receive identical noise.
func patternKey(s stencil.Stencil) string {
	b := make([]byte, 0, 1+3*len(s.Points))
	b = append(b, byte(s.Dims))
	for _, p := range s.Points {
		b = append(b, byte(int8(p.Dx)), byte(int8(p.Dy)), byte(int8(p.Dz)))
	}
	return string(b)
}

func paramsKey(p opt.Params) string {
	var b [10]byte
	vals := [...]int{p.BlockX, p.BlockY, p.Merge, p.MergeDim, p.StreamTile,
		p.StreamDim, p.Unroll, p.TBDepth, p.PrefetchDepth}
	for i, v := range vals {
		b[i] = byte(v)
	}
	if p.UseSmem {
		b[9] = 1
	}
	return string(b[:])
}

// FNV-1a 64-bit constants, inlined so the compiled evaluation path can
// hash without allocating a hash.Hash64 per lookup. fnv1aByte/fnv1aString
// advance a running state exactly as hash/fnv's sum64a.Write does, so any
// split of one byte sequence across calls produces the digest a single
// fnv.New64a().Write of the concatenation would.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv1aByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func fnv1aString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// boxMullerFrom turns a finished FNV-1a state into a standard-normal
// deviate: two uniforms from disjoint hash halves (the second re-hashed
// for independence), then the Box-Muller transform.
func boxMullerFrom(x uint64) float64 {
	h2 := uint64(fnvOffset64)
	for shift := uint(0); shift < 64; shift += 8 {
		h2 = fnv1aByte(h2, byte(x>>shift))
	}
	y := h2
	u1 := (float64(x>>11) + 0.5) / (1 << 53)
	u2 := (float64(y>>11) + 0.5) / (1 << 53)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// gauss maps a composite key to a standard-normal deviate via FNV-1a
// hashing and the Box-Muller transform.
func gauss(parts ...interface{}) float64 {
	h := uint64(fnvOffset64)
	for _, p := range parts {
		switch v := p.(type) {
		case string:
			h = fnv1aString(h, v)
			h = fnv1aByte(h, 0)
		case byte:
			h = fnv1aByte(h, v)
			h = fnv1aByte(h, 0)
		default:
			panic("sim: unsupported gauss key type")
		}
	}
	return boxMullerFrom(h)
}
