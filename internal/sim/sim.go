// Package sim is the GPU execution substrate of this reproduction: an
// analytical performance model that plays the role of the real
// P100/V100/2080Ti/A100 machines in the paper. Given a stencil, an
// optimization combination (OC), a parameter setting and a GPU
// architecture, it produces an execution time with the same structural
// dependencies real stencil kernels exhibit:
//
//   - memory traffic shaped by cache-line reuse, halo overheads, merging,
//     streaming, shared-memory tiling and temporal blocking;
//   - register and shared-memory pressure that throttles occupancy,
//     spills, or crashes the kernel outright;
//   - synchronization and kernel-launch overheads that prefetching and
//     temporal blocking amortize;
//   - deterministic "measurement" noise plus per-(stencil, architecture)
//     affinity noise standing in for unmodeled microarchitectural effects.
//
// Every downstream component — profiling, best-OC labeling, PCC merging,
// model training, baselines — consumes this substrate exactly as the
// paper's pipeline consumes real GPU measurements.
package sim

import (
	"errors"
	"fmt"
	"sync"

	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/stencil"
)

// ErrCrash reports that the kernel cannot execute at all under the given
// OC and setting (resource spilling beyond hard limits), matching the
// paper's observation that some OCs crash for some stencils.
var ErrCrash = errors.New("sim: kernel crash (intra-SM resource spilling)")

// ErrInvalidConfig reports that this particular parameter setting does not
// fit the architecture (e.g. shared-memory overflow); other settings of
// the same OC may still run.
var ErrInvalidConfig = errors.New("sim: parameter setting exceeds hardware limits")

// Workload is one stencil execution problem: the access pattern, the grid
// extents and the number of time steps measured.
type Workload struct {
	S stencil.Stencil
	// GridX, GridY, GridZ are the grid extents; GridZ is 1 for 2-D.
	GridX, GridY, GridZ int
	// TimeSteps is the number of sweeps timed.
	TimeSteps int
}

// DefaultSteps is the number of sweeps a default workload times.
const DefaultSteps = 8

// DefaultWorkload wraps a stencil with the paper's grid sizes: 8192^2 for
// 2-D stencils and 512^3 for 3-D.
func DefaultWorkload(s stencil.Stencil) Workload {
	w := Workload{S: s, TimeSteps: DefaultSteps}
	if s.Dims == 2 {
		w.GridX, w.GridY, w.GridZ = 8192, 8192, 1
	} else {
		w.GridX, w.GridY, w.GridZ = 512, 512, 512
	}
	return w
}

// Points returns the number of grid points per sweep.
func (w Workload) Points() float64 {
	return float64(w.GridX) * float64(w.GridY) * float64(w.GridZ)
}

// Validate checks the workload invariants.
func (w Workload) Validate() error {
	if err := w.S.Validate(); err != nil {
		return err
	}
	if w.GridX < 1 || w.GridY < 1 || w.GridZ < 1 {
		return fmt.Errorf("sim: invalid grid %dx%dx%d", w.GridX, w.GridY, w.GridZ)
	}
	if w.S.Dims == 2 && w.GridZ != 1 {
		return fmt.Errorf("sim: 2-D workload with gridZ=%d", w.GridZ)
	}
	if w.TimeSteps < 1 {
		return fmt.Errorf("sim: time steps %d < 1", w.TimeSteps)
	}
	return nil
}

// Result is one simulated execution.
type Result struct {
	// Time is the end-to-end execution time in seconds for all sweeps.
	Time float64
	// Compute, Memory, Sync and Launch break the noiseless time down into
	// its model terms (seconds).
	Compute, Memory, Sync, Launch float64
	// Occupancy is the achieved SM thread occupancy in [0, 1].
	Occupancy float64
	// RegsPerThread is the modeled register demand before capping.
	RegsPerThread float64
	// SmemPerBlockKB is the shared-memory demand per thread block.
	SmemPerBlockKB float64
	// SpillBytes is the per-thread register spill volume in bytes.
	SpillBytes float64
}

// Model evaluates workloads on simulated architectures. The zero value is
// not usable; construct with New. Models are safe for concurrent use:
// the memoization cache is sharded and the noise tables are lock-free.
//
// Evaluation compiles: the first touch of a (workload, stencil, arch)
// cell builds a CellEvaluator holding every sample-invariant precompute,
// and Run dispatches through it. Hot consumers skip even that dispatch by
// holding the evaluator (Model.Evaluator / Model.CellFn) across their
// sample loops.
type Model struct {
	noise NoiseConfig
	cache *runCache

	// evalMu guards the compiled-evaluator table and the cell id counter.
	evalMu   sync.Mutex
	evals    map[string]*CellEvaluator
	nextCell uint32
}

// New returns a model with the default noise configuration and a
// memoization cache of DefaultCacheEntries evaluations.
func New() *Model {
	return &Model{noise: DefaultNoise(), cache: newRunCache(DefaultCacheEntries)}
}

// NewWithNoise returns a model with a custom noise configuration; used by
// the noise-ablation benchmarks.
func NewWithNoise(n NoiseConfig) *Model {
	return &Model{noise: n, cache: newRunCache(DefaultCacheEntries)}
}

// EnableCache (re)installs a memoization cache bounded to roughly
// capacity entries, resetting the previous contents and counters.
// capacity < 1 selects DefaultCacheEntries.
func (m *Model) EnableCache(capacity int) { m.cache = newRunCache(capacity) }

// DisableCache removes the memoization cache; every Run recomputes.
func (m *Model) DisableCache() { m.cache = nil }

// CacheStats returns a snapshot of the memoization counters; the zero
// CacheStats when the cache is disabled.
func (m *Model) CacheStats() CacheStats {
	if m.cache == nil {
		return CacheStats{}
	}
	return m.cache.stats()
}

// Run simulates the workload under the OC and parameter setting on the
// architecture. It returns ErrCrash or ErrInvalidConfig (wrapped) when the
// kernel cannot run.
//
// Run is the compatibility entry point: it compiles (and caches) the
// cell's evaluator on first touch and dispatches the sample through it.
// Results are bitwise-identical to the pre-rewrite path (see Reference
// and the differential suite). Sample loops over a fixed cell should
// hold Model.Evaluator / Model.CellFn instead and skip the per-call cell
// resolution entirely.
func (m *Model) Run(w Workload, oc opt.Opt, p opt.Params, arch gpu.Arch) (Result, error) {
	ev, err := m.Evaluator(w, arch)
	if err != nil {
		return Result{}, err
	}
	return ev.Eval(oc, p)
}

// BestOf runs every setting and returns the shortest time, skipping
// invalid settings; it returns an error only if every setting fails —
// which profilers interpret as "this OC crashes for this stencil".
func (m *Model) BestOf(w Workload, oc opt.Opt, settings []opt.Params, arch gpu.Arch) (Result, opt.Params, error) {
	var (
		best    Result
		bestP   opt.Params
		found   bool
		lastErr error
	)
	eval := m.CellFn(w, arch)
	for _, p := range settings {
		r, err := eval(oc, p)
		if err != nil {
			lastErr = err
			continue
		}
		if !found || r.Time < best.Time {
			best, bestP, found = r, p, true
		}
	}
	if !found {
		if lastErr == nil {
			lastErr = fmt.Errorf("sim: no settings supplied for %s", oc)
		}
		return Result{}, opt.Params{}, lastErr
	}
	return best, bestP, nil
}
