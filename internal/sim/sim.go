// Package sim is the GPU execution substrate of this reproduction: an
// analytical performance model that plays the role of the real
// P100/V100/2080Ti/A100 machines in the paper. Given a stencil, an
// optimization combination (OC), a parameter setting and a GPU
// architecture, it produces an execution time with the same structural
// dependencies real stencil kernels exhibit:
//
//   - memory traffic shaped by cache-line reuse, halo overheads, merging,
//     streaming, shared-memory tiling and temporal blocking;
//   - register and shared-memory pressure that throttles occupancy,
//     spills, or crashes the kernel outright;
//   - synchronization and kernel-launch overheads that prefetching and
//     temporal blocking amortize;
//   - deterministic "measurement" noise plus per-(stencil, architecture)
//     affinity noise standing in for unmodeled microarchitectural effects.
//
// Every downstream component — profiling, best-OC labeling, PCC merging,
// model training, baselines — consumes this substrate exactly as the
// paper's pipeline consumes real GPU measurements.
package sim

import (
	"errors"
	"fmt"

	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/stencil"
)

// ErrCrash reports that the kernel cannot execute at all under the given
// OC and setting (resource spilling beyond hard limits), matching the
// paper's observation that some OCs crash for some stencils.
var ErrCrash = errors.New("sim: kernel crash (intra-SM resource spilling)")

// ErrInvalidConfig reports that this particular parameter setting does not
// fit the architecture (e.g. shared-memory overflow); other settings of
// the same OC may still run.
var ErrInvalidConfig = errors.New("sim: parameter setting exceeds hardware limits")

// Workload is one stencil execution problem: the access pattern, the grid
// extents and the number of time steps measured.
type Workload struct {
	S stencil.Stencil
	// GridX, GridY, GridZ are the grid extents; GridZ is 1 for 2-D.
	GridX, GridY, GridZ int
	// TimeSteps is the number of sweeps timed.
	TimeSteps int
}

// DefaultSteps is the number of sweeps a default workload times.
const DefaultSteps = 8

// DefaultWorkload wraps a stencil with the paper's grid sizes: 8192^2 for
// 2-D stencils and 512^3 for 3-D.
func DefaultWorkload(s stencil.Stencil) Workload {
	w := Workload{S: s, TimeSteps: DefaultSteps}
	if s.Dims == 2 {
		w.GridX, w.GridY, w.GridZ = 8192, 8192, 1
	} else {
		w.GridX, w.GridY, w.GridZ = 512, 512, 512
	}
	return w
}

// Points returns the number of grid points per sweep.
func (w Workload) Points() float64 {
	return float64(w.GridX) * float64(w.GridY) * float64(w.GridZ)
}

// Validate checks the workload invariants.
func (w Workload) Validate() error {
	if err := w.S.Validate(); err != nil {
		return err
	}
	if w.GridX < 1 || w.GridY < 1 || w.GridZ < 1 {
		return fmt.Errorf("sim: invalid grid %dx%dx%d", w.GridX, w.GridY, w.GridZ)
	}
	if w.S.Dims == 2 && w.GridZ != 1 {
		return fmt.Errorf("sim: 2-D workload with gridZ=%d", w.GridZ)
	}
	if w.TimeSteps < 1 {
		return fmt.Errorf("sim: time steps %d < 1", w.TimeSteps)
	}
	return nil
}

// Result is one simulated execution.
type Result struct {
	// Time is the end-to-end execution time in seconds for all sweeps.
	Time float64
	// Compute, Memory, Sync and Launch break the noiseless time down into
	// its model terms (seconds).
	Compute, Memory, Sync, Launch float64
	// Occupancy is the achieved SM thread occupancy in [0, 1].
	Occupancy float64
	// RegsPerThread is the modeled register demand before capping.
	RegsPerThread float64
	// SmemPerBlockKB is the shared-memory demand per thread block.
	SmemPerBlockKB float64
	// SpillBytes is the per-thread register spill volume in bytes.
	SpillBytes float64
}

// Model evaluates workloads on simulated architectures. The zero value is
// not usable; construct with New. Models are safe for concurrent use:
// the memoization cache is sharded and the noise tables are lock-free.
type Model struct {
	noise NoiseConfig
	cache *runCache
}

// New returns a model with the default noise configuration and a
// memoization cache of DefaultCacheEntries evaluations.
func New() *Model {
	return &Model{noise: DefaultNoise(), cache: newRunCache(DefaultCacheEntries)}
}

// NewWithNoise returns a model with a custom noise configuration; used by
// the noise-ablation benchmarks.
func NewWithNoise(n NoiseConfig) *Model {
	return &Model{noise: n, cache: newRunCache(DefaultCacheEntries)}
}

// EnableCache (re)installs a memoization cache bounded to roughly
// capacity entries, resetting the previous contents and counters.
// capacity < 1 selects DefaultCacheEntries.
func (m *Model) EnableCache(capacity int) { m.cache = newRunCache(capacity) }

// DisableCache removes the memoization cache; every Run recomputes.
func (m *Model) DisableCache() { m.cache = nil }

// CacheStats returns a snapshot of the memoization counters; the zero
// CacheStats when the cache is disabled.
func (m *Model) CacheStats() CacheStats {
	if m.cache == nil {
		return CacheStats{}
	}
	return m.cache.stats()
}

// Run simulates the workload under the OC and parameter setting on the
// architecture. It returns ErrCrash or ErrInvalidConfig (wrapped) when the
// kernel cannot run.
func (m *Model) Run(w Workload, oc opt.Opt, p opt.Params, arch gpu.Arch) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if err := oc.ValidationError(); err != nil {
		return Result{}, err
	}
	if err := p.Validate(oc, w.S.Dims); err != nil {
		return Result{}, err
	}

	var key string
	if m.cache != nil {
		key = runKey(w, oc, p, arch)
		if e, ok := m.cache.get(key); ok {
			return e.res, e.err
		}
	}

	res := resourceUsage(w, oc, p, arch)
	if err := res.check(arch, w, oc, p); err != nil {
		// Crashes are deterministic per cell and re-sampled constantly by
		// equal-budget searches, so they are worth memoizing too.
		if m.cache != nil {
			m.cache.put(key, cacheEntry{err: err})
		}
		return Result{}, err
	}

	occ := occupancy(res, p, arch)
	t := timeBreakdown(w, oc, p, arch, res, occ)

	r := Result{
		Compute:        t.compute,
		Memory:         t.memory,
		Sync:           t.sync,
		Launch:         t.launch,
		Occupancy:      occ,
		RegsPerThread:  res.regs,
		SmemPerBlockKB: res.smemBytes / 1024,
		SpillBytes:     res.spillBytes,
	}
	base := t.compute + t.memory + t.sync + t.launch
	r.Time = base * m.noise.factor(w.S, oc, p, arch)
	if m.cache != nil {
		m.cache.put(key, cacheEntry{res: r})
	}
	return r, nil
}

// BestOf runs every setting and returns the shortest time, skipping
// invalid settings; it returns an error only if every setting fails —
// which profilers interpret as "this OC crashes for this stencil".
func (m *Model) BestOf(w Workload, oc opt.Opt, settings []opt.Params, arch gpu.Arch) (Result, opt.Params, error) {
	var (
		best    Result
		bestP   opt.Params
		found   bool
		lastErr error
	)
	for _, p := range settings {
		r, err := m.Run(w, oc, p, arch)
		if err != nil {
			lastErr = err
			continue
		}
		if !found || r.Time < best.Time {
			best, bestP, found = r, p, true
		}
	}
	if !found {
		if lastErr == nil {
			lastErr = fmt.Errorf("sim: no settings supplied for %s", oc)
		}
		return Result{}, opt.Params{}, lastErr
	}
	return best, bestP, nil
}
