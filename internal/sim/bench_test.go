package sim

import (
	"math/rand"
	"testing"

	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/stencil"
)

// benchSamples builds a deterministic sample mix over several OCs, the
// shape of one profiling cell's random search.
func benchSamples(s stencil.Stencil) []struct {
	oc opt.Opt
	p  opt.Params
} {
	rng := rand.New(rand.NewSource(42))
	var out []struct {
		oc opt.Opt
		p  opt.Params
	}
	for _, oc := range []opt.Opt{0, opt.ST, opt.BM, opt.ST | opt.TB, opt.ST | opt.PR} {
		for k := 0; k < 16; k++ {
			out = append(out, struct {
				oc opt.Opt
				p  opt.Params
			}{oc, opt.Sample(oc, s.Dims, rng)})
		}
	}
	return out
}

func benchCell() (Workload, gpu.Arch) {
	archs := gpu.Catalog()
	return DefaultWorkload(stencil.Star(3, 2)), archs[1%len(archs)]
}

// BenchmarkModelRunCold prices fresh samples through the compatibility
// wrapper with the memo cache disabled: evaluator dispatch plus the full
// resource/time/noise arithmetic every call.
func BenchmarkModelRunCold(b *testing.B) {
	w, arch := benchCell()
	m := New()
	m.DisableCache()
	samples := benchSamples(w.S)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sm := samples[i%len(samples)]
		m.Run(w, sm.oc, sm.p, arch)
	}
}

// BenchmarkModelRunWarm re-prices a fixed sample mix with the cache on —
// the steady state of profiling sweeps and equal-budget searches.
func BenchmarkModelRunWarm(b *testing.B) {
	w, arch := benchCell()
	m := New()
	samples := benchSamples(w.S)
	for _, sm := range samples {
		m.Run(w, sm.oc, sm.p, arch)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sm := samples[i%len(samples)]
		m.Run(w, sm.oc, sm.p, arch)
	}
}

// BenchmarkEvaluatorEval is the compiled hot loop itself: a held
// evaluator, cache disabled, full recomputation per call.
func BenchmarkEvaluatorEval(b *testing.B) {
	w, arch := benchCell()
	m := New()
	m.DisableCache()
	ev, err := m.Evaluator(w, arch)
	if err != nil {
		b.Fatal(err)
	}
	samples := benchSamples(w.S)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sm := samples[i%len(samples)]
		ev.Eval(sm.oc, sm.p)
	}
}

// BenchmarkEvaluatorEvalWarm is the held-evaluator loop with the memo
// cache on: the zero-alloc steady state the AllocsPerRun gate enforces.
func BenchmarkEvaluatorEvalWarm(b *testing.B) {
	w, arch := benchCell()
	m := New()
	ev, err := m.Evaluator(w, arch)
	if err != nil {
		b.Fatal(err)
	}
	samples := benchSamples(w.S)
	for _, sm := range samples {
		ev.Eval(sm.oc, sm.p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sm := samples[i%len(samples)]
		ev.Eval(sm.oc, sm.p)
	}
}

// BenchmarkReferenceRunCold and BenchmarkReferenceRunWarm are the
// pre-rewrite baseline under the same sample mixes — the denominator of
// the speedups recorded in BENCH_sim.json.
func BenchmarkReferenceRunCold(b *testing.B) {
	w, arch := benchCell()
	ref := NewReference()
	ref.DisableCache()
	samples := benchSamples(w.S)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sm := samples[i%len(samples)]
		ref.Run(w, sm.oc, sm.p, arch)
	}
}

func BenchmarkReferenceRunWarm(b *testing.B) {
	w, arch := benchCell()
	ref := NewReference()
	samples := benchSamples(w.S)
	for _, sm := range samples {
		ref.Run(w, sm.oc, sm.p, arch)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sm := samples[i%len(samples)]
		ref.Run(w, sm.oc, sm.p, arch)
	}
}
