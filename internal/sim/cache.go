package sim

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"stencilmart/internal/opt"
)

// The model is a deterministic oracle: the same canonical
// (stencil pattern, workload extents, OC, params, arch) cell always
// prices to the same Result (or the same crash). Profiling, the
// baselines and the tuners keep re-evaluating identical cells — random
// parameter search over small power-of-two spaces collides constantly,
// and the equal-budget comparisons re-price the very points profiling
// already visited — so evaluations are memoized.
//
// The cache is a sharded, fixed-size open-addressed table keyed on a
// comparable packed struct: the compiled evaluator's cell id plus the
// (OC, params) sample packed into one uint64 (see packSample). Lookups
// hash with an inline integer mix — no per-lookup hasher object, no key
// string, no allocation of any kind — and inserts into a full probe
// window overwrite in place, so there is no map-iteration eviction and
// memory stays flat under corpus-scale sweeps. Sharding keeps concurrent
// profiling workers off a single lock.
//
// Caching is invisible to results by construction (values are exact
// first-computation bits and the model is deterministic), so eviction
// policy only affects the hit rate, never any dataset, label or
// prediction.

// DefaultCacheEntries is the total entry bound of a Model's cache.
const DefaultCacheEntries = 1 << 16

// cacheShards is the shard count; a power of two so the hash maps to a
// shard with a mask.
const cacheShards = 64

// probeWindow bounds the linear-probe distance of one lookup; an insert
// that finds the whole window occupied overwrites its first slot.
const probeWindow = 8

// CacheStats is a snapshot of a model cache's counters.
type CacheStats struct {
	// Hits and Misses count lookups since the cache was created.
	Hits, Misses uint64
	// Evictions counts entries dropped to respect the size bound.
	Evictions uint64
	// Entries is the current number of cached evaluations.
	Entries int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// cacheEntry is one memoized evaluation: the result, or the error the
// cell deterministically fails with.
type cacheEntry struct {
	res Result
	err error
}

// evalKey identifies one memoized evaluation: the compiled cell
// (evaluator) id and the packed (OC, params) sample. Comparable, 16
// bytes, no pointers.
type evalKey struct {
	sample uint64
	cell   uint32
}

// hash mixes the key into a well-distributed uint64 (the 64-bit
// finalizer from MurmurHash3, seeded with the cell id so samples of
// different cells land on different shards).
func (k evalKey) hash() uint64 {
	h := k.sample ^ (uint64(k.cell)+1)*0x9E3779B97F4A7C15
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	h *= 0xC4CEB9FE1A85EC53
	h ^= h >> 33
	return h
}

// packSample packs a validated (OC, params) pair into one uint64, or
// reports that the pair is outside the canonical encoding (in which case
// the caller bypasses the cache and computes directly — never a wrong
// result, only a forgone memoization).
//
// Layout, low to high: OC bitmask (8 bits, values < 64); then the six
// power-of-two-or-zero numeric parameters (BlockX, BlockY, Merge,
// StreamTile, Unroll, TBDepth) as 7-bit pow2 codes; then the three small
// enums (MergeDim, StreamDim, PrefetchDepth) as 2 bits each; then UseSmem
// as 1 bit — 57 bits total. Every field occupies a disjoint bit range and
// every per-field encoding is injective over the values opt.Params
// validation admits (pow2Code distinguishes 0 from 1 from every power of
// two up to 1<<62), so distinct valid samples always pack to distinct
// keys: the collision-freedom invariant the old string runKey documented
// survives the packing.
func packSample(oc opt.Opt, p opt.Params) (uint64, bool) {
	k := uint64(oc)
	shift := uint(8)
	for _, v := range [...]int{p.BlockX, p.BlockY, p.Merge, p.StreamTile, p.Unroll, p.TBDepth} {
		c, ok := pow2Code(v)
		if !ok {
			return 0, false
		}
		k |= uint64(c) << shift
		shift += 7
	}
	for _, v := range [...]int{p.MergeDim, p.StreamDim, p.PrefetchDepth} {
		if v < 0 || v > 3 {
			return 0, false
		}
		k |= uint64(v) << shift
		shift += 2
	}
	if p.UseSmem {
		k |= 1 << shift
	}
	return k, true
}

// pow2Code injectively encodes {0} ∪ {powers of two} into [0, 64]:
// 0 -> 0 and 1<<n -> n+1. Any other value is outside the canonical
// domain.
func pow2Code(v int) (int, bool) {
	if v == 0 {
		return 0, true
	}
	if v < 0 || v&(v-1) != 0 {
		return 0, false
	}
	return bits.TrailingZeros64(uint64(v)) + 1, true
}

// cacheSlot is one open-addressed table slot.
type cacheSlot struct {
	key  evalKey
	ent  cacheEntry
	used bool
}

type cacheShard struct {
	mu    sync.Mutex
	slots []cacheSlot // power-of-two length, preallocated
}

// runCache is the sharded, fixed-size open-addressed memoization table.
type runCache struct {
	hits, misses, evictRun atomic.Uint64
	entries                atomic.Int64
	shards                 [cacheShards]cacheShard
}

func newRunCache(capacity int) *runCache {
	if capacity < 1 {
		capacity = DefaultCacheEntries
	}
	per := capacity / cacheShards
	if per < 1 {
		per = 1
	}
	// Round the per-shard slot count up to a power of two so probe
	// positions mask instead of mod.
	slots := 1
	for slots < per {
		slots <<= 1
	}
	c := &runCache{}
	for i := range c.shards {
		c.shards[i].slots = make([]cacheSlot, slots)
	}
	return c
}

// probe computes the shard and first slot index for a key hash.
func (c *runCache) probe(h uint64) (*cacheShard, uint64) {
	return &c.shards[h&(cacheShards-1)], h >> 6
}

func (c *runCache) get(key evalKey) (cacheEntry, bool) {
	s, start := c.probe(key.hash())
	mask := uint64(len(s.slots) - 1)
	window := probeWindow
	if window > len(s.slots) {
		window = len(s.slots)
	}
	s.mu.Lock()
	for i := 0; i < window; i++ {
		sl := &s.slots[(start+uint64(i))&mask]
		if !sl.used {
			break
		}
		if sl.key == key {
			e := sl.ent
			s.mu.Unlock()
			c.hits.Add(1)
			return e, true
		}
	}
	s.mu.Unlock()
	c.misses.Add(1)
	return cacheEntry{}, false
}

func (c *runCache) put(key evalKey, e cacheEntry) {
	s, start := c.probe(key.hash())
	mask := uint64(len(s.slots) - 1)
	window := probeWindow
	if window > len(s.slots) {
		window = len(s.slots)
	}
	s.mu.Lock()
	for i := 0; i < window; i++ {
		sl := &s.slots[(start+uint64(i))&mask]
		if !sl.used {
			sl.key, sl.ent, sl.used = key, e, true
			s.mu.Unlock()
			c.entries.Add(1)
			return
		}
		if sl.key == key {
			s.mu.Unlock()
			return
		}
	}
	// Window full: overwrite the first probed slot in place. The evicted
	// value was a deterministic function of its key, so the choice
	// affects only the hit rate — never a computed result.
	sl := &s.slots[start&mask]
	sl.key, sl.ent = key, e
	s.mu.Unlock()
	c.evictRun.Add(1)
}

// stats snapshots the counters. Entries is maintained atomically on
// insert, so polling from /statsz is O(1) — no lock sweep over shards.
func (c *runCache) stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictRun.Load(),
		Entries:   int(c.entries.Load()),
	}
}
