package sim

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
)

// The model is a deterministic oracle: the same canonical
// (stencil pattern, workload extents, OC, params, arch) cell always
// prices to the same Result (or the same crash). Profiling, the
// baselines and the tuners keep re-evaluating identical cells — random
// parameter search over small power-of-two spaces collides constantly,
// and the equal-budget comparisons re-price the very points profiling
// already visited — so Model.Run memoizes evaluations in a sharded,
// size-bounded cache. Sharding keeps concurrent profiling workers off a
// single lock; the bound keeps memory flat under corpus-scale sweeps.
//
// Caching is invisible to results by construction (values are exact
// first-computation bits and the model is deterministic), so eviction
// policy only affects the hit rate, never any dataset, label or
// prediction.

// DefaultCacheEntries is the total entry bound of a Model's cache.
const DefaultCacheEntries = 1 << 16

// cacheShards is the shard count; a power of two so the hash maps to a
// shard with a mask.
const cacheShards = 64

// CacheStats is a snapshot of a model cache's counters.
type CacheStats struct {
	// Hits and Misses count lookups since the cache was created.
	Hits, Misses uint64
	// Evictions counts entries dropped to respect the size bound.
	Evictions uint64
	// Entries is the current number of cached evaluations.
	Entries int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// cacheEntry is one memoized evaluation: the result, or the error the
// cell deterministically fails with.
type cacheEntry struct {
	res Result
	err error
}

type cacheShard struct {
	mu sync.Mutex
	m  map[string]cacheEntry
}

// runCache is the sharded, size-bounded memoization table.
type runCache struct {
	perShard               int
	hits, misses, evictRun atomic.Uint64
	shards                 [cacheShards]cacheShard
}

func newRunCache(capacity int) *runCache {
	if capacity < 1 {
		capacity = DefaultCacheEntries
	}
	per := capacity / cacheShards
	if per < 1 {
		per = 1
	}
	c := &runCache{perShard: per}
	for i := range c.shards {
		c.shards[i].m = make(map[string]cacheEntry)
	}
	return c
}

func (c *runCache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()&(cacheShards-1)]
}

func (c *runCache) get(key string) (cacheEntry, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.m[key]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e, ok
}

func (c *runCache) put(key string, e cacheEntry) {
	s := c.shard(key)
	s.mu.Lock()
	if _, ok := s.m[key]; !ok {
		if len(s.m) >= c.perShard {
			// Evict an arbitrary entry (map iteration order). Values are
			// deterministic functions of their keys, so eviction choice
			// affects only the hit rate — never a computed result.
			for k := range s.m {
				delete(s.m, k)
				c.evictRun.Add(1)
				break
			}
		}
		s.m[key] = e
	}
	s.mu.Unlock()
}

func (c *runCache) stats() CacheStats {
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictRun.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.m)
		s.mu.Unlock()
	}
	return st
}

// archKeys caches the per-architecture key segment: gpu.Arch is a
// comparable value struct, so identical specs share one digest and a
// user-modified Arch (even one reusing a catalog name) keys separately.
var archKeys sync.Map // gpu.Arch -> string

func archKey(a gpu.Arch) string {
	if v, ok := archKeys.Load(a); ok {
		return v.(string)
	}
	b := make([]byte, 0, len(a.Name)+len(a.Generation)+2+11*8)
	b = append(b, a.Name...)
	b = append(b, 0)
	b = append(b, a.Generation...)
	b = append(b, 0)
	for _, f := range []float64{
		a.MemGB, a.MemBWGBs, float64(a.SMs), a.TFLOPS, a.RentalPerHour,
		float64(a.RegsPerSM), float64(a.SmemPerSMKB), float64(a.MaxThreadsPerSM),
		float64(a.MaxRegsPerThread), a.L2MB, a.ClockGHz,
	} {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		b = append(b, buf[:]...)
	}
	k := string(b)
	archKeys.Store(a, k)
	return k
}

// runKey canonicalizes one evaluation cell. Unlike the noise paramsKey
// (whose byte truncation only perturbs noise), every field here is
// encoded collision-free: a key collision would return a wrong result.
func runKey(w Workload, oc opt.Opt, p opt.Params, arch gpu.Arch) string {
	ak := archKey(arch)
	b := make([]byte, 0, 1+3*len(w.S.Points)+4*4+1+2*10+1+len(ak))
	b = append(b, patternKey(w.S)...)
	var u [4]byte
	for _, v := range [...]int{w.GridX, w.GridY, w.GridZ, w.TimeSteps} {
		binary.LittleEndian.PutUint32(u[:], uint32(v))
		b = append(b, u[:]...)
	}
	b = append(b, byte(oc))
	for _, v := range [...]int{p.BlockX, p.BlockY, p.Merge, p.MergeDim,
		p.StreamTile, p.StreamDim, p.Unroll, p.TBDepth, p.PrefetchDepth} {
		b = append(b, byte(v), byte(v>>8))
	}
	if p.UseSmem {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = append(b, ak...)
	return string(b)
}
