package sim

import (
	"errors"
	"math/rand"
	"testing"

	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/stencil"
)

func cacheArch(t *testing.T) gpu.Arch {
	t.Helper()
	a, err := gpu.ByName("V100")
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestCacheHitReturnsIdenticalResult(t *testing.T) {
	m := New()
	arch := cacheArch(t)
	s := stencil.Star(2, 2)
	w := DefaultWorkload(s)
	rng := rand.New(rand.NewSource(7))
	for _, oc := range opt.Combinations() {
		p := opt.Sample(oc, s.Dims, rng)
		r1, err1 := m.Run(w, oc, p, arch)
		r2, err2 := m.Run(w, oc, p, arch)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: cached error disagreement: %v vs %v", oc, err1, err2)
		}
		if err1 != nil {
			if err1.Error() != err2.Error() {
				t.Fatalf("%s: cached error %q != %q", oc, err2, err1)
			}
			continue
		}
		if r1 != r2 {
			t.Fatalf("%s: cached result differs: %+v vs %+v", oc, r2, r1)
		}
	}
	st := m.CacheStats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected both hits and misses, got %+v", st)
	}
}

func TestCacheMatchesUncachedModel(t *testing.T) {
	cached := New()
	plain := New()
	plain.DisableCache()
	arch := cacheArch(t)
	s := stencil.Box(3, 2)
	w := DefaultWorkload(s)
	rng := rand.New(rand.NewSource(11))
	for _, oc := range opt.Combinations() {
		for k := 0; k < 4; k++ {
			p := opt.Sample(oc, s.Dims, rng)
			rc, errC := cached.Run(w, oc, p, arch)
			ru, errU := plain.Run(w, oc, p, arch)
			if (errC == nil) != (errU == nil) {
				t.Fatalf("%s %+v: error disagreement: %v vs %v", oc, p, errC, errU)
			}
			if errC == nil && rc != ru {
				t.Fatalf("%s %+v: cached %+v != uncached %+v", oc, p, rc, ru)
			}
		}
	}
	if st := plain.CacheStats(); st != (CacheStats{}) {
		t.Fatalf("disabled cache reported stats %+v", st)
	}
}

func TestCacheMemoizesCrashes(t *testing.T) {
	m := New()
	arch := cacheArch(t)
	// TB without ST on a high-order 3-D stencil is the documented crash
	// condition; search until one errors, then confirm the cached replay.
	s := stencil.Box(3, 4)
	w := DefaultWorkload(s)
	rng := rand.New(rand.NewSource(3))
	for k := 0; k < 64; k++ {
		p := opt.Sample(opt.TB, s.Dims, rng)
		_, err := m.Run(w, opt.TB, p, arch)
		if err == nil {
			continue
		}
		_, err2 := m.Run(w, opt.TB, p, arch)
		if err2 == nil || err2.Error() != err.Error() {
			t.Fatalf("cached crash replay: %v vs %v", err2, err)
		}
		if !errors.Is(err2, ErrCrash) && !errors.Is(err2, ErrInvalidConfig) {
			t.Fatalf("cached crash lost its sentinel: %v", err2)
		}
		return
	}
	t.Skip("no crashing setting found in 64 samples")
}

func TestCacheSizeBound(t *testing.T) {
	m := New()
	m.EnableCache(cacheShards) // one entry per shard
	arch := cacheArch(t)
	rng := rand.New(rand.NewSource(5))
	s := stencil.Star(2, 1)
	w := DefaultWorkload(s)
	for k := 0; k < 500; k++ {
		p := opt.Sample(opt.ST, s.Dims, rng)
		w2 := w
		w2.TimeSteps = 1 + k // unique cell per iteration
		if _, err := m.Run(w2, opt.ST, p, arch); err != nil {
			t.Fatal(err)
		}
	}
	st := m.CacheStats()
	if st.Entries > cacheShards {
		t.Fatalf("cache grew to %d entries, bound %d", st.Entries, cacheShards)
	}
	if st.Evictions == 0 {
		t.Fatalf("expected evictions under pressure, got %+v", st)
	}
}

func TestRunKeyDistinguishesParams(t *testing.T) {
	arch := cacheArch(t)
	s := stencil.Star(2, 1)
	w := DefaultWorkload(s)
	// BlockX 256 and 512 truncate to the same byte; the cache key must
	// keep them distinct (the noise paramsKey may not — that only
	// perturbs noise, while a cache collision would corrupt results).
	a := opt.Params{BlockX: 256, BlockY: 4, Merge: 1, Unroll: 1}
	b := opt.Params{BlockX: 512, BlockY: 2, Merge: 1, Unroll: 1}
	if runKey(w, 0, a, arch) == runKey(w, 0, b, arch) {
		t.Fatal("runKey collision between distinct params")
	}
	w2 := w
	w2.GridX++
	if runKey(w, 0, a, arch) == runKey(w2, 0, a, arch) {
		t.Fatal("runKey ignores workload extents")
	}
	arch2 := arch
	arch2.MemBWGBs *= 2
	if runKey(w, 0, a, arch) == runKey(w, 0, a, arch2) {
		t.Fatal("runKey ignores architecture constants")
	}
}
