package sim

import (
	"encoding/binary"
	"math"

	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
)

// CellEvaluator is the compiled evaluation path for one
// (workload, stencil, architecture) cell. Construction precomputes
// everything invariant across the thousands of (OC, params) samples a
// cell evaluates — workload validation, the stencil's footprint geometry,
// the per-OC noise projections against the reference corpus, the per-OC
// FNV prefix of the measurement-noise key — so the per-sample hot loop
// does only the resource/time arithmetic plus precomputed-table noise
// lookups. Warm evaluations perform zero allocations (enforced by the
// AllocsPerRun gate in check.sh).
//
// Evaluators are obtained from Model.Evaluator (or implicitly through
// Model.Run / Model.CellFn) and are safe for concurrent use; results are
// bitwise-identical to the pre-rewrite Reference path, a property the
// differential suite asserts per run and per collected dataset.
type CellEvaluator struct {
	m    *Model
	id   uint32
	w    Workload
	arch gpu.Arch
	dims int
	g    geom

	// Noise precomputation. The pre-rewrite factor is
	//
	//   exp(Measurement*gauss(patternKey, oc, paramsKey, archName)
	//       + StencilArch*projection(s, "arch:"+archName)
	//       + StencilOC*projection(s, "oc:"+oc)
	//       + OCArch*gauss("", oc, "", archName))
	//
	// Only the first term varies with the sampled params; the rest are
	// per-(cell, OC) constants. The terms are stored (not pre-summed) and
	// added back in the original left-to-right order so the float result
	// is bit-identical. measPrefix is the running FNV-1a state after
	// (patternKey, 0, oc, 0) — the per-sample hash resumes from it.
	meas       float64
	archTerm   float64
	ocTerm     [64]float64
	ocArchTerm [64]float64
	measPrefix [64]uint64
}

// EvalFn evaluates one (OC, params) sample of a fixed cell. It is the
// shape hot consumers (profiler, tuners, baselines, prediction-time
// searches) hold in their inner loops.
type EvalFn func(oc opt.Opt, p opt.Params) (Result, error)

// maxEvaluators bounds the per-model compiled-evaluator table; real
// collections hold stencils x architectures evaluators, far below it.
// On overflow the table resets wholesale — recompilation is microseconds
// and ids stay unique, so stale run-cache entries simply never hit again.
const maxEvaluators = 4096

// Evaluator returns the compiled evaluator for the cell, compiling and
// caching it on first use. The workload is validated here, once per
// cell — never again per sample.
func (m *Model) Evaluator(w Workload, arch gpu.Arch) (*CellEvaluator, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	key := compileKey(w, arch)
	m.evalMu.Lock()
	if ev, ok := m.evals[key]; ok {
		m.evalMu.Unlock()
		return ev, nil
	}
	m.evalMu.Unlock()

	ev := m.compile(w, arch)

	m.evalMu.Lock()
	if cur, ok := m.evals[key]; ok {
		// A concurrent compile of the same cell won; every evaluator of a
		// cell computes identical bits, so either is correct — keep the
		// registered one so the cell id (and run-cache keys) stay stable.
		ev = cur
	} else {
		if m.evals == nil || len(m.evals) >= maxEvaluators {
			m.evals = make(map[string]*CellEvaluator)
		}
		m.nextCell++
		ev.id = m.nextCell
		m.evals[key] = ev
	}
	m.evalMu.Unlock()
	return ev, nil
}

// CellFn resolves the cell to its compiled evaluator's Eval. A workload
// that fails validation yields a function returning that error on every
// call — the per-call error contract of the pre-rewrite Run.
func (m *Model) CellFn(w Workload, arch gpu.Arch) EvalFn {
	ev, err := m.Evaluator(w, arch)
	if err != nil {
		return func(opt.Opt, opt.Params) (Result, error) { return Result{}, err }
	}
	return ev.Eval
}

// compileKey canonicalizes the cell identity: access pattern, grid
// extents, time steps, and the full architecture spec digest. Stencil
// names are deliberately absent — renamed but identical cells share one
// evaluator, exactly as they shared cache entries before.
func compileKey(w Workload, arch gpu.Arch) string {
	ak := archKey(arch)
	b := make([]byte, 0, 1+3*len(w.S.Points)+4*4+len(ak))
	b = append(b, patternKey(w.S)...)
	var u [4]byte
	for _, v := range [...]int{w.GridX, w.GridY, w.GridZ, w.TimeSteps} {
		binary.LittleEndian.PutUint32(u[:], uint32(v))
		b = append(b, u[:]...)
	}
	b = append(b, ak...)
	return string(b)
}

// compile precomputes the cell's invariants. It runs once per cell per
// model; all constants reuse the exact functions the reference path
// evaluates per run (projection, gauss), so the stored values carry the
// same bits the uncompiled path would recompute.
func (m *Model) compile(w Workload, arch gpu.Arch) *CellEvaluator {
	s := w.S
	n := m.noise
	e := &CellEvaluator{
		m:        m,
		w:        w,
		arch:     arch,
		dims:     s.Dims,
		g:        stencilGeom(s),
		meas:     n.Measurement,
		archTerm: n.StencilArch * projection(s, "arch:"+arch.Name),
	}
	pk := patternKey(s)
	base := fnv1aByte(fnv1aString(uint64(fnvOffset64), pk), 0)
	for _, oc := range opt.Combinations() {
		ocb := byte(oc)
		e.measPrefix[oc] = fnv1aByte(fnv1aByte(base, ocb), 0)
		e.ocTerm[oc] = n.StencilOC * projection(s, "oc:"+string(ocb))
		e.ocArchTerm[oc] = n.OCArch * gauss("", ocb, "", arch.Name)
	}
	return e
}

// Eval prices one (OC, params) sample of the compiled cell. It returns
// ErrCrash or ErrInvalidConfig (wrapped) when the kernel cannot run,
// with the same validation order and error text as the reference path.
func (e *CellEvaluator) Eval(oc opt.Opt, p opt.Params) (Result, error) {
	if err := oc.ValidationError(); err != nil {
		return Result{}, err
	}
	if err := p.Validate(oc, e.dims); err != nil {
		return Result{}, err
	}

	var key evalKey
	cache := e.m.cache
	sample, packable := packSample(oc, p)
	if !packable {
		// Outside the canonical packing (degenerate-but-valid values such
		// as a negative Merge without BM/CM): compute directly, uncached.
		cache = nil
	}
	if cache != nil {
		key = evalKey{sample: sample, cell: e.id}
		if ent, ok := cache.get(key); ok {
			return ent.res, ent.err
		}
	}

	res := resourceUsage(e.w, oc, p, e.arch)
	if err := res.check(e.arch, e.w, oc, p); err != nil {
		// Crashes are deterministic per cell and re-sampled constantly by
		// equal-budget searches, so they are worth memoizing too.
		if cache != nil {
			cache.put(key, cacheEntry{err: err})
		}
		return Result{}, err
	}

	occ := occupancy(res, p, e.arch)
	t := timeBreakdown(e.w, oc, p, e.arch, res, occ, e.g)

	r := Result{
		Compute:        t.compute,
		Memory:         t.memory,
		Sync:           t.sync,
		Launch:         t.launch,
		Occupancy:      occ,
		RegsPerThread:  res.regs,
		SmemPerBlockKB: res.smemBytes / 1024,
		SpillBytes:     res.spillBytes,
	}
	base := t.compute + t.memory + t.sync + t.launch
	r.Time = base * e.noiseFactor(oc, p)
	if cache != nil {
		cache.put(key, cacheEntry{res: r})
	}
	return r, nil
}

// noiseFactor is NoiseConfig.factor with every cell-invariant piece
// precomputed: the measurement gauss resumes from the per-OC FNV prefix
// and hashes only the 10 params bytes and the arch name inline; the three
// affinity terms come from the compile-time tables. The additions run in
// the reference order, so the factor is bit-identical.
func (e *CellEvaluator) noiseFactor(oc opt.Opt, p opt.Params) float64 {
	h := e.measPrefix[oc]
	// paramsKey(p), inlined into a stack buffer: same 10 bytes, no alloc.
	var pk [10]byte
	pk[0] = byte(p.BlockX)
	pk[1] = byte(p.BlockY)
	pk[2] = byte(p.Merge)
	pk[3] = byte(p.MergeDim)
	pk[4] = byte(p.StreamTile)
	pk[5] = byte(p.StreamDim)
	pk[6] = byte(p.Unroll)
	pk[7] = byte(p.TBDepth)
	pk[8] = byte(p.PrefetchDepth)
	if p.UseSmem {
		pk[9] = 1
	}
	for _, b := range pk {
		h = fnv1aByte(h, b)
	}
	h = fnv1aByte(h, 0)
	h = fnv1aString(h, e.arch.Name)
	h = fnv1aByte(h, 0)

	sum := e.meas*boxMullerFrom(h) + e.archTerm + e.ocTerm[oc] + e.ocArchTerm[oc]
	return math.Exp(sum)
}
