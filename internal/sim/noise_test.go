package sim

import (
	"math"
	"testing"
	"testing/quick"

	"stencilmart/internal/gen"
	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/stencil"
)

func TestGaussDeterministicAndDistributed(t *testing.T) {
	if gauss("a", byte(1), "b", "c") != gauss("a", byte(1), "b", "c") {
		t.Error("gauss not deterministic")
	}
	if gauss("a", byte(1), "b", "c") == gauss("a", byte(2), "b", "c") {
		t.Error("gauss ignores key component")
	}
	// Population moments over many keys should be ~N(0,1).
	var m, m2 float64
	const n = 4000
	for i := 0; i < n; i++ {
		z := gauss("key", byte(i%256), string(rune(i/256)), "")
		m += z
		m2 += z * z
	}
	mean := m / n
	std := math.Sqrt(m2/n - mean*mean)
	if math.Abs(mean) > 0.07 || math.Abs(std-1) > 0.07 {
		t.Errorf("gauss moments mean=%.3f std=%.3f", mean, std)
	}
}

func TestProjectionStandardized(t *testing.T) {
	corpus, err := gen.MixedCorpus(150, 150, stencil.MaxOrder, 77)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"arch:P100", "arch:A100", "oc:\x07", "oc:\x1f"} {
		var m, m2 float64
		for _, s := range corpus {
			z := projection(s, key)
			m += z
			m2 += z * z
		}
		n := float64(len(corpus))
		mean := m / n
		std := math.Sqrt(m2/n - mean*mean)
		if math.Abs(mean) > 0.35 || std < 0.6 || std > 1.6 {
			t.Errorf("projection %q: mean=%.3f std=%.3f outside calibrated band", key, mean, std)
		}
	}
}

func TestProjectionSmoothInFeatures(t *testing.T) {
	// Similar stencils must receive similar affinities: star2d3r is
	// geometrically closer to star2d4r than to box3d4r.
	a := projection(stencil.Star(2, 3), "arch:V100")
	b := projection(stencil.Star(2, 4), "arch:V100")
	c := projection(stencil.Box(3, 4), "arch:V100")
	if math.Abs(a-b) >= math.Abs(a-c) {
		t.Errorf("projection not smooth: |star3-star4|=%.3f >= |star3-box3d4|=%.3f",
			math.Abs(a-b), math.Abs(a-c))
	}
}

func TestNoiseFactorDeterministic(t *testing.T) {
	n := DefaultNoise()
	s := stencil.Cross(2, 2)
	arch, _ := gpu.ByName("P100")
	p := opt.Params{BlockX: 32, BlockY: 4, Merge: 1, Unroll: 1}
	f1 := n.factor(s, 0, p, arch)
	f2 := n.factor(s, 0, p, arch)
	if f1 != f2 {
		t.Errorf("noise factor nondeterministic: %g vs %g", f1, f2)
	}
	if f1 <= 0 {
		t.Errorf("noise factor %g", f1)
	}
}

// Property: the noise factor stays within lognormal plausibility for any
// configuration (no blowups from the projection terms).
func TestQuickNoiseFactorBounded(t *testing.T) {
	n := DefaultNoise()
	g, err := gen.New(gen.Options{Dims: 3}, 13)
	if err != nil {
		t.Fatal(err)
	}
	combos := opt.Combinations()
	archs := gpu.Catalog()
	f := func(oi, ai uint8) bool {
		s := g.Next()
		oc := combos[int(oi)%len(combos)]
		arch := archs[int(ai)%len(archs)]
		fac := n.factor(s, oc, opt.Params{BlockX: 64, BlockY: 2, Merge: 1, Unroll: 1}, arch)
		// 6 sigma of the combined ~0.21 lognormal is ~3.5x.
		return fac > 0.2 && fac < 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
