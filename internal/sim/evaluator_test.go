package sim

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/stencil"
)

// diffStencils is a small mixed population exercising both dims, star and
// box shapes, and every order the corpus generator emits.
func diffStencils(t *testing.T) []stencil.Stencil {
	t.Helper()
	return []stencil.Stencil{
		stencil.Star(2, 1), stencil.Star(2, 4), stencil.Box(2, 2),
		stencil.Star(3, 1), stencil.Star(3, 3), stencil.Box(3, 2), stencil.Box(3, 4),
	}
}

// TestEvaluatorMatchesReference is the per-run differential: for every
// catalog architecture, every valid OC and a spread of sampled settings,
// the compiled evaluator must reproduce the pre-rewrite Reference path
// bit for bit — Result fields compared as exact float bits, errors
// compared by sentinel and text.
func TestEvaluatorMatchesReference(t *testing.T) {
	m := New()
	ref := NewReference()
	rng := rand.New(rand.NewSource(20260808))
	for _, s := range diffStencils(t) {
		w := DefaultWorkload(s)
		for _, arch := range gpu.Catalog() {
			ev, err := m.Evaluator(w, arch)
			if err != nil {
				t.Fatalf("%s on %s: compile: %v", s.Name, arch.Name, err)
			}
			for _, oc := range opt.Combinations() {
				for k := 0; k < 6; k++ {
					p := opt.Sample(oc, s.Dims, rng)
					got, gotErr := ev.Eval(oc, p)
					want, wantErr := ref.Run(w, oc, p, arch)
					assertSameOutcome(t, s.Name, arch.Name, oc, got, gotErr, want, wantErr)
					// And through the compatibility wrapper.
					got2, gotErr2 := m.Run(w, oc, p, arch)
					assertSameOutcome(t, s.Name, arch.Name, oc, got2, gotErr2, want, wantErr)
				}
			}
		}
	}
}

func assertSameOutcome(t *testing.T, sname, aname string, oc opt.Opt, got Result, gotErr error, want Result, wantErr error) {
	t.Helper()
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("%s %s on %s: error disagreement: evaluator %v, reference %v", sname, oc, aname, gotErr, wantErr)
	}
	if wantErr != nil {
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("%s %s on %s: error text %q != %q", sname, oc, aname, gotErr, wantErr)
		}
		wantCrash := errors.Is(wantErr, ErrCrash)
		wantInvalid := errors.Is(wantErr, ErrInvalidConfig)
		if errors.Is(gotErr, ErrCrash) != wantCrash || errors.Is(gotErr, ErrInvalidConfig) != wantInvalid {
			t.Fatalf("%s %s on %s: error sentinel mismatch: %v vs %v", sname, oc, aname, gotErr, wantErr)
		}
		return
	}
	if got != want {
		t.Fatalf("%s %s on %s: result differs:\n evaluator %+v\n reference %+v", sname, oc, aname, got, want)
	}
	if math.Float64bits(got.Time) != math.Float64bits(want.Time) {
		t.Fatalf("%s %s on %s: time bits differ: %x vs %x", sname, oc, aname,
			math.Float64bits(got.Time), math.Float64bits(want.Time))
	}
}

// TestEvaluatorMatchesReferenceOffDefaultWorkloads varies grid extents
// and time steps: the compile key must separate cells that differ only in
// workload geometry.
func TestEvaluatorMatchesReferenceOffDefaultWorkloads(t *testing.T) {
	m := New()
	ref := NewReference()
	arch, err := gpu.ByName("A100")
	if err != nil {
		t.Fatal(err)
	}
	s := stencil.Star(3, 2)
	rng := rand.New(rand.NewSource(99))
	for _, w := range []Workload{
		{S: s, GridX: 256, GridY: 256, GridZ: 256, TimeSteps: 4},
		{S: s, GridX: 768, GridY: 256, GridZ: 128, TimeSteps: 1},
		{S: s, GridX: 512, GridY: 512, GridZ: 512, TimeSteps: 32},
	} {
		for _, oc := range []opt.Opt{0, opt.ST, opt.ST | opt.TB, opt.BM, opt.ST | opt.RT | opt.PR} {
			for k := 0; k < 4; k++ {
				p := opt.Sample(oc, s.Dims, rng)
				got, gotErr := m.Run(w, oc, p, arch)
				want, wantErr := ref.Run(w, oc, p, arch)
				assertSameOutcome(t, s.Name, arch.Name, oc, got, gotErr, want, wantErr)
			}
		}
	}
}

// TestEvaluatorValidationErrors: the compiled path must preserve the
// validation contract and ordering of the pre-rewrite Run — workload
// first, then OC, then params.
func TestEvaluatorValidationErrors(t *testing.T) {
	m := New()
	ref := NewReference()
	arch, err := gpu.ByName("V100")
	if err != nil {
		t.Fatal(err)
	}
	s := stencil.Star(2, 1)
	good := DefaultWorkload(s)
	badW := good
	badW.TimeSteps = 0
	okP := opt.Params{BlockX: 64, BlockY: 2, Merge: 1, Unroll: 1}

	cases := []struct {
		name string
		w    Workload
		oc   opt.Opt
		p    opt.Params
	}{
		{"bad workload", badW, 0, okP},
		{"bad oc", good, opt.RT, okP},
		{"bad params", good, 0, opt.Params{BlockX: 3, BlockY: 2, Merge: 1, Unroll: 1}},
		{"bad workload and oc", badW, opt.BM | opt.CM, okP},
	}
	for _, c := range cases {
		_, gotErr := m.Run(c.w, c.oc, c.p, arch)
		_, wantErr := ref.Run(c.w, c.oc, c.p, arch)
		if gotErr == nil || wantErr == nil {
			t.Fatalf("%s: expected errors, got evaluator=%v reference=%v", c.name, gotErr, wantErr)
		}
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("%s: error %q != reference %q", c.name, gotErr, wantErr)
		}
	}
}

// TestPackSampleInjective: distinct validated samples must pack to
// distinct keys (the collision-freedom invariant the string runKey
// documented, survived into the packing). Sampled pairs over every OC are
// compared pairwise via a map from packed key to sample identity.
func TestPackSampleInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type sample struct {
		oc opt.Opt
		p  opt.Params
	}
	seen := make(map[uint64]sample)
	for _, dims := range []int{2, 3} {
		for _, oc := range opt.Combinations() {
			for k := 0; k < 200; k++ {
				p := opt.Sample(oc, dims, rng)
				key, ok := packSample(oc, p)
				if !ok {
					t.Fatalf("sampled valid params not packable: %s %+v", oc, p)
				}
				if prev, dup := seen[key]; dup && (prev.oc != oc || prev.p != p) {
					t.Fatalf("pack collision: %s %+v and %s %+v -> %x", prev.oc, prev.p, oc, p, key)
				}
				seen[key] = sample{oc: oc, p: p}
			}
		}
	}
	if len(seen) < 1000 {
		t.Fatalf("sampling produced only %d distinct keys; test too weak", len(seen))
	}
}

// TestPackSampleRejectsNonCanonical: values the packing cannot represent
// are refused (and thus bypass the cache) rather than silently truncated.
func TestPackSampleRejectsNonCanonical(t *testing.T) {
	if _, ok := packSample(0, opt.Params{BlockX: 3}); ok {
		t.Fatal("non-power-of-two BlockX packed")
	}
	if _, ok := packSample(0, opt.Params{BlockX: 64, BlockY: 2, Merge: -5, Unroll: 1}); ok {
		t.Fatal("negative Merge packed")
	}
	if _, ok := packSample(opt.PR|opt.ST, opt.Params{BlockX: 64, BlockY: 2, Merge: 1, Unroll: 1, StreamTile: 32, StreamDim: 2, PrefetchDepth: 7}); ok {
		t.Fatal("out-of-range PrefetchDepth packed")
	}
	// Merge 0 and Merge 1 are distinct cells (their noise keys differ) and
	// must stay distinct after packing.
	a, okA := packSample(0, opt.Params{BlockX: 64, BlockY: 2, Merge: 0, Unroll: 1})
	b, okB := packSample(0, opt.Params{BlockX: 64, BlockY: 2, Merge: 1, Unroll: 1})
	if !okA || !okB || a == b {
		t.Fatalf("Merge 0 vs 1 not separated: %x vs %x (ok %v %v)", a, b, okA, okB)
	}
}

// TestInlineGaussMatchesReference: the inline FNV resume in noiseFactor
// must equal the variadic gauss the reference factor calls.
func TestInlineGaussMatchesReference(t *testing.T) {
	m := New()
	ref := NewReference()
	ref.DisableCache()
	m.DisableCache()
	arch, err := gpu.ByName("2080Ti")
	if err != nil {
		t.Fatal(err)
	}
	s := stencil.Box(3, 3)
	w := DefaultWorkload(s)
	rng := rand.New(rand.NewSource(13))
	ev, err := m.Evaluator(w, arch)
	if err != nil {
		t.Fatal(err)
	}
	for _, oc := range opt.Combinations() {
		for k := 0; k < 8; k++ {
			p := opt.Sample(oc, s.Dims, rng)
			got, gotErr := ev.Eval(oc, p)
			want, wantErr := ref.Run(w, oc, p, arch)
			assertSameOutcome(t, s.Name, arch.Name, oc, got, gotErr, want, wantErr)
		}
	}
}

// TestAllocGateEvaluator is the zero-allocation contract of the compiled
// per-sample path, enforced by check.sh: warm cache hits, cold cache
// misses, and cache-disabled direct evaluations must all run the sample
// loop without a single heap allocation.
func TestAllocGateEvaluator(t *testing.T) {
	arch, err := gpu.ByName("V100")
	if err != nil {
		t.Fatal(err)
	}
	s := stencil.Star(3, 2)
	w := DefaultWorkload(s)
	rng := rand.New(rand.NewSource(17))

	// A spread of non-crashing samples: sampled settings under BASE and ST
	// on a mid-order star never exceed V100 resources.
	type sample struct {
		oc opt.Opt
		p  opt.Params
	}
	var samples []sample
	for _, oc := range []opt.Opt{0, opt.ST, opt.BM, opt.ST | opt.PR} {
		for k := 0; k < 8; k++ {
			samples = append(samples, sample{oc: oc, p: opt.Sample(oc, s.Dims, rng)})
		}
	}

	m := New()
	ev, err := m.Evaluator(w, arch)
	if err != nil {
		t.Fatal(err)
	}
	for _, sm := range samples { // warm the cache; skip crashing samples
		if _, err := ev.Eval(sm.oc, sm.p); err != nil {
			t.Fatalf("alloc-gate sample crashed (%s %+v): %v", sm.oc, sm.p, err)
		}
	}
	i := 0
	if got := testing.AllocsPerRun(200, func() {
		sm := samples[i%len(samples)]
		i++
		ev.Eval(sm.oc, sm.p)
	}); got != 0 {
		t.Errorf("warm cache-hit Eval allocates %v allocs/op, want 0", got)
	}

	plain := New()
	plain.DisableCache()
	evPlain, err := plain.Evaluator(w, arch)
	if err != nil {
		t.Fatal(err)
	}
	i = 0
	if got := testing.AllocsPerRun(200, func() {
		sm := samples[i%len(samples)]
		i++
		evPlain.Eval(sm.oc, sm.p)
	}); got != 0 {
		t.Errorf("cache-disabled Eval allocates %v allocs/op, want 0", got)
	}
}
