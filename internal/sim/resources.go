package sim

import (
	"fmt"
	"math"

	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
)

// resources captures the per-thread and per-block resource demand of a
// kernel configuration.
type resources struct {
	// regs is the register demand per thread before hardware capping.
	regs float64
	// spillBytes is the per-thread spill volume once regs exceeds the
	// hardware per-thread ceiling.
	spillBytes float64
	// smemBytes is the shared-memory demand per thread block.
	smemBytes float64
	// threadsPerBlock is BlockX*BlockY.
	threadsPerBlock int
}

// Register-model constants. They encode the qualitative register-pressure
// claims of Sec. II-B: merging and temporal blocking multiply per-thread
// state, prefetching adds lookahead buffers, retiming homogenizes accesses
// and relieves pressure for high-order stencils.
const (
	baseRegs         = 18.0 // addressing, loop counters, accumulator
	regsPerPoint     = 0.85 // live coefficient/operand values per stencil point
	livePointCap     = 48.0 // compilers keep at most a window of operands live
	retimingRelief   = 0.55 // RT multiplier on per-point register cost
	mergeRegCostBM   = 0.80 // extra accumulators per merged point (block)
	mergeRegCostCM   = 0.70 // cyclic merging shares index math
	prefetchRegsBase = 5.0  // double-buffer pointers per lookahead step
	tbRegGrowth      = 0.60 // per fused time step of live state
	streamColumnCost = 2.0  // register column along the streaming dim
	unrollRegCost    = 0.30 // fraction of per-point state duplicated per unroll
)

// resourceUsage models register and shared-memory demand.
func resourceUsage(w Workload, oc opt.Opt, p opt.Params, arch gpu.Arch) resources {
	s := w.S
	n := math.Min(float64(s.NumPoints()), livePointCap)
	r := float64(s.Order())

	// Per-point register state: operands kept live while accumulating,
	// saturating at the compiler's live-value window.
	perPoint := regsPerPoint * n
	if oc.Has(opt.RT) {
		perPoint *= retimingRelief
	}

	regs := baseRegs + perPoint

	if oc.Has(opt.ST) {
		// Streaming holds a register column of 2r+1 planes' worth of
		// reused operands along the streaming dimension.
		regs += streamColumnCost * (2*r + 1)
		if p.Unroll > 1 {
			regs += perPoint * unrollRegCost * float64(p.Unroll-1)
		}
	}

	if merge := float64(p.Merge); merge > 1 {
		cost := mergeRegCostBM
		if oc.Has(opt.CM) {
			cost = mergeRegCostCM
		}
		regs += (baseRegs*0.3 + perPoint*cost) * (merge - 1)
	}

	if oc.Has(opt.PR) {
		d := float64(p.PrefetchDepth)
		regs += prefetchRegsBase*d + (2*r+1)*0.5*d
	}

	if oc.Has(opt.TB) {
		// Each fused time step keeps live state for its intermediate
		// results; without streaming the full dependency window lives in
		// registers/smem and the growth is much steeper.
		growth := tbRegGrowth
		if !oc.Has(opt.ST) {
			growth = 1.15
		}
		regs *= 1 + growth*float64(p.TBDepth-1)
	}

	res := resources{
		regs:            regs,
		threadsPerBlock: p.BlockX * p.BlockY,
		smemBytes:       smemDemand(w, oc, p),
	}
	limit := float64(arch.MaxRegsPerThread)
	if regs > limit {
		res.spillBytes = (regs - limit) * 4 // 4 bytes per spilled register
	}
	return res
}

// smemDemand models the per-block shared memory footprint in bytes.
func smemDemand(w Workload, oc opt.Opt, p opt.Params) float64 {
	s := w.S
	r := float64(s.Order())
	const elem = 8.0 // double precision

	switch {
	case oc.Has(opt.ST) && p.UseSmem:
		// 2.5-D blocking stages one (or, with TB, tbDepth+1) plane tiles
		// with halos in shared memory.
		tileX := float64(p.BlockX) + 2*r
		tileY := float64(p.BlockY)*float64(maxInt(p.Merge, 1)) + 2*r
		planes := 1.0
		if oc.Has(opt.TB) {
			planes = float64(p.TBDepth) + 1
		}
		return tileX * tileY * planes * elem
	case oc.Has(opt.TB):
		// Temporal blocking without streaming stages the full space-time
		// dependency window for the fused steps, double-buffered between
		// time levels. For 3-D order-4 stencils the window exceeds the
		// per-SM shared memory of every pre-Ampere part, reproducing the
		// paper's crash observation (Sec. III-A).
		halo := 2 * r * float64(p.TBDepth)
		tileX := float64(p.BlockX) + halo
		tileY := float64(p.BlockY) + halo
		depth := 1.0
		if s.Dims == 3 {
			depth = 2*r*float64(p.TBDepth) + 1
		}
		return tileX * tileY * depth * elem * 2
	default:
		return 0
	}
}

// check enforces hard resource limits: shared-memory overflow invalidates
// the setting, and register demand far beyond the spill ceiling crashes
// the kernel (the paper's "OC crashes under certain stencils" cases).
func (res resources) check(arch gpu.Arch, w Workload, oc opt.Opt, p opt.Params) error {
	if res.smemBytes > float64(arch.SmemPerSMKB)*1024 {
		return fmt.Errorf("%w: %s needs %.1f KiB shared memory, %s has %d KiB per SM",
			ErrInvalidConfig, oc, res.smemBytes/1024, arch.Name, arch.SmemPerSMKB)
	}
	if res.regs > 1.6*float64(arch.MaxRegsPerThread) {
		return fmt.Errorf("%w: %s demands %.0f registers/thread on %s (stencil %s)",
			ErrCrash, oc, res.regs, arch.Name, w.S.Name)
	}
	return nil
}

// occupancy returns the achieved thread occupancy per SM in (0, 1],
// jointly limited by the thread, register and shared-memory budgets.
func occupancy(res resources, p opt.Params, arch gpu.Arch) float64 {
	tpb := res.threadsPerBlock
	byThreads := arch.MaxThreadsPerSM / tpb

	regsPerThread := math.Min(res.regs, float64(arch.MaxRegsPerThread))
	byRegs := int(float64(arch.RegsPerSM) / (regsPerThread * float64(tpb)))

	bySmem := byThreads
	if res.smemBytes > 0 {
		bySmem = int(float64(arch.SmemPerSMKB) * 1024 / res.smemBytes)
	}

	blocks := minInt(byThreads, minInt(byRegs, bySmem))
	if blocks < 1 {
		blocks = 1
	}
	occ := float64(blocks*tpb) / float64(arch.MaxThreadsPerSM)
	return math.Min(occ, 1)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
