package sim

import (
	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
)

// Runner is the measurement abstraction the profiling pipeline consumes:
// anything that can execute one (workload, OC, parameter setting,
// architecture) cell and report a timed Result. *Model is the canonical
// implementation; the fault injector wraps one, and tests substitute
// doubles that count calls or fail on purpose.
type Runner interface {
	Run(w Workload, oc opt.Opt, p opt.Params, arch gpu.Arch) (Result, error)
}

// *Model implements Runner.
var _ Runner = (*Model)(nil)

// RunKey canonicalizes one measurement site to the same byte string the
// memoization cache keys evaluations with. Wrappers that need stable
// per-site identities across runs and worker schedules (the deterministic
// fault injector) hash this key rather than inventing their own encoding.
func RunKey(w Workload, oc opt.Opt, p opt.Params, arch gpu.Arch) string {
	return runKey(w, oc, p, arch)
}
