package sim

import (
	"math"

	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/stencil"
)

// breakdown holds the noiseless model time terms in seconds, already
// multiplied by the workload's time-step count.
type breakdown struct {
	compute, memory, sync, launch float64
}

// Traffic- and latency-model constants.
const (
	elemBytes = 8.0 // double precision

	// alphaBase2D/3D are the baseline cache-miss fractions per distinct
	// grid line touched by a naive kernel; 3-D stencils touch more planes
	// than the caches hold.
	alphaBase2D = 0.20
	alphaBase3D = 0.30
	// alphaOrderGrowth increases the miss fraction per stencil order: a
	// wider footprint evicts more of its own reuse window.
	alphaOrderGrowth = 0.12

	// mergeShareBM/CM are the per-merged-point fractions of line reuse
	// block and cyclic merging recover.
	mergeShareBM = 0.45
	mergeShareCM = 0.25
	// bmCoalescePenalty is the extra memory cost per merged point when
	// block merging runs along the innermost (x) dimension and disrupts
	// coalescing (Sec. II-B2).
	bmCoalescePenalty = 0.25
	// streamXPenalty throttles effective bandwidth when streaming along
	// the innermost dimension, which serializes coalesced rows.
	streamXPenalty = 0.55

	// noStreamTBTrafficMult penalizes temporal blocking without
	// streaming: the space-time halos are re-read from global memory.
	noStreamTBTrafficMult = 1.8

	barrierLatency  = 80e-9 // seconds per __syncthreads at 1.5 GHz
	launchLatency   = 4e-6  // seconds per kernel launch at 1.5 GHz
	prSyncResidual  = 0.35  // fraction of sync latency left under PR
	prMemBonus      = 0.04  // memory-latency hiding per prefetch depth
	rtFlopsOverhead = 1.05  // extra accumulation work under retiming
	archCompEff     = 0.75  // fraction of peak FLOPS sustained
)

// archCompBoost scales effective double-precision throughput per
// architecture. The 2080 Ti's Table III fp64 peak (0.41 TFLOPS) would
// leave every 3-D stencil hopelessly compute-bound, yet the paper reports
// it winning ~20% of 3-D instances (Fig. 14); its stencil kernels
// evidently sustain far more than the fp64-peak model predicts, so Turing
// gets an effective-throughput boost (see DESIGN.md substitutions).
func archCompBoost(arch gpu.Arch) float64 {
	if arch.Name == "2080Ti" {
		return 4.5
	}
	return 1.0
}

// archMemEff returns the calibrated fraction of peak bandwidth each
// architecture sustains on 2-D and 3-D stencil sweeps. These stand in for
// unmodeled DRAM/cache behavior and are the knobs that reproduce the
// paper's observation that stencil performance is not proportional to
// paper specs (Sec. III-D). A switch, not a map literal: this sits on the
// per-run hot path and must not allocate.
func archMemEff(arch gpu.Arch, dims int) float64 {
	switch arch.Name {
	case "P100":
		if dims == 2 {
			return 0.84
		}
		return 0.76
	case "V100":
		if dims == 2 {
			return 0.90
		}
		return 0.82
	case "2080Ti":
		if dims == 2 {
			return 0.85
		}
		return 1.02
	case "A100":
		return 0.50
	}
	return 0.8
}

// smallLineThreshold is the footprint (distinct grid lines) below which a
// stencil's reuse window sits comfortably in the L2 working set; Turing's
// high-clock GDDR6 subsystem disproportionately benefits there, which is
// how the model reproduces Fig. 4's "cross2d1r runs faster on the 2080 Ti
// than on V100" observation. The threshold is wider in 3-D because a
// 512-point row is 16x smaller than an 8192-point one, so more lines fit
// in cache.
func smallLineThreshold(dims int) int {
	if dims == 3 {
		return 13
	}
	return 5
}

// archCacheBoost is the small-footprint bandwidth boost per architecture.
func archCacheBoost(arch gpu.Arch) float64 {
	if arch.Name == "2080Ti" {
		return 1.30
	}
	return 1.0
}

// lineCount and planeLineCount alias the stencil-package footprint
// measures; the model and the regression features share one definition.
func lineCount(s stencil.Stencil) int { return stencil.LineCount(s) }

func planeLineCount(s stencil.Stencil, streamDim int) int {
	return stencil.PlaneLineCount(s, streamDim)
}

// geom is the stencil's footprint geometry, precomputed once per cell by
// the compiled evaluator (and on the fly by the reference path) so
// timeBreakdown never rescans the point set per sample. plane is indexed
// by the 1-based streaming dimension; index 0 is unused.
type geom struct {
	line  int
	plane [4]int
}

func stencilGeom(s stencil.Stencil) geom {
	g := geom{line: lineCount(s)}
	for d := 1; d <= 3; d++ {
		g.plane[d] = planeLineCount(s, d)
	}
	return g
}

// timeBreakdown computes the noiseless execution-time terms. The caller
// supplies the stencil geometry so compiled evaluators can amortize it
// across samples; both paths share this one arithmetic body, which is
// what makes the compiled results bitwise-identical by construction.
func timeBreakdown(w Workload, oc opt.Opt, p opt.Params, arch gpu.Arch, res resources, occ float64, g geom) breakdown {
	s := w.S
	points := w.Points()
	r := float64(s.Order())
	n := float64(s.NumPoints())
	tb := 1.0
	if oc.Has(opt.TB) {
		tb = float64(p.TBDepth)
	}
	mergeSpanY := float64(p.BlockY * maxInt(p.Merge, 1))

	// --- Memory traffic per sweep (bytes). ---
	alpha := alphaBase2D
	if s.Dims == 3 {
		alpha = alphaBase3D
	}
	alpha *= 1 + alphaOrderGrowth*(r-1)
	// Bigger L2 caches retain more of the reuse window.
	alpha *= clamp(math.Pow(6.0/arch.L2MB, 0.25), 0.6, 1.3)
	alpha = clamp(alpha, 0.05, 0.9)

	var readFactor float64
	switch {
	case oc.Has(opt.ST) && p.UseSmem:
		// Shared-memory 2.5-D blocking: each element is loaded once plus
		// the halo reloads at tile borders.
		readFactor = 1 + 2*r/float64(p.BlockX) + 2*r/mergeSpanY
	case oc.Has(opt.ST):
		// Register streaming without smem: the thread's own column is
		// reused; neighbor lines are re-fetched each plane at half the
		// naive miss cost (L1 catches the rest).
		pl := float64(g.plane[p.StreamDim])
		readFactor = 1 + 0.5*alpha*(pl-1)
	default:
		l := float64(g.line)
		if m := float64(p.Merge); m > 1 {
			share := mergeShareBM
			if oc.Has(opt.CM) {
				share = mergeShareCM
			}
			l = 1 + (l-1)/(1+share*(m-1))
		}
		readFactor = 1 + alpha*(l-1)
	}

	writeFactor := 1.0
	haloRedund := 1.0
	if oc.Has(opt.TB) {
		// Fusing tb steps removes tb-1 global round trips but re-reads
		// the expanded space-time halo. With streaming, the halo along
		// the streamed dimension amortizes over the stream tile (2.5-D
		// temporal blocking a la AN5D); without it, only the thread
		// block's own extent amortizes the halo.
		spanY := mergeSpanY
		if oc.Has(opt.ST) && float64(p.StreamTile) > spanY {
			spanY = float64(p.StreamTile)
		}
		haloRedund = (1 + 2*r*tb/float64(p.BlockX)) * (1 + 2*r*tb/spanY)
		if !oc.Has(opt.ST) {
			haloRedund *= noStreamTBTrafficMult
		}
		haloRedund = clamp(haloRedund, 1, 6)
		readFactor = (readFactor / tb) * haloRedund
		writeFactor = 1 / tb
	}

	spillFactor := 0.0
	if res.spillBytes > 0 {
		// Spilled registers are written and re-read per output point, but
		// spill slots are hot in L1/L2 — only a fraction reaches DRAM,
		// and the backend throttles unrolling before spills grow huge.
		spillFactor = clamp(0.25*res.spillBytes/elemBytes, 0, 8)
	}

	bytesPerSweep := points * elemBytes * (readFactor + writeFactor + spillFactor)

	// --- Effective bandwidth. ---
	memEff := archMemEff(arch, s.Dims) * (0.5 + 0.5*occ)
	if g.line <= smallLineThreshold(s.Dims) {
		memEff *= archCacheBoost(arch)
	}
	if oc.Has(opt.BM) && p.MergeDim == 1 {
		memEff /= 1 + bmCoalescePenalty*float64(p.Merge-1)
	}
	if oc.Has(opt.ST) && p.StreamDim == 1 {
		memEff *= streamXPenalty
	}
	if oc.Has(opt.PR) {
		memEff *= 1 + prMemBonus*float64(p.PrefetchDepth)
	}
	memEff *= parallelUtilization(w, oc, p, arch)

	memPerSweep := bytesPerSweep / (arch.MemBWGBs * 1e9 * memEff)

	// --- Compute. ---
	flopsPerPoint := 2*n - 1
	if oc.Has(opt.RT) {
		flopsPerPoint *= rtFlopsOverhead
	}
	computeRedund := 1.0
	if oc.Has(opt.TB) {
		computeRedund = haloRedund // halo points are recomputed
	}
	compEff := archCompEff * archCompBoost(arch) * (0.55 + 0.45*occ)
	compPerSweep := points * flopsPerPoint * computeRedund / (arch.TFLOPS * 1e12 * compEff)

	// --- Synchronization. ---
	clockScale := 1.5 / arch.ClockGHz
	var syncPerSweep float64
	if oc.Has(opt.ST) {
		barriers := float64(p.StreamTile) / float64(maxInt(p.Unroll, 1))
		if oc.Has(opt.TB) {
			barriers *= 2 // producer/consumer barriers per fused step
		}
		waves := kernelWaves(w, oc, p, arch, occ)
		lat := barrierLatency * clockScale
		if oc.Has(opt.PR) {
			lat *= prSyncResidual
		}
		syncPerSweep = barriers * waves * lat
	}

	// --- Launch. ---
	launchesPerSweep := 1.0 / tb
	launchPerSweep := launchesPerSweep * launchLatency * clockScale

	steps := float64(w.TimeSteps)
	return breakdown{
		compute: compPerSweep * steps,
		memory:  memPerSweep * steps,
		sync:    syncPerSweep * steps,
		launch:  launchPerSweep * steps,
	}
}

// totalThreads returns the number of threads the kernel launches: one per
// output point, divided by the per-thread coverage from merging, unrolling
// and streaming.
func totalThreads(w Workload, oc opt.Opt, p opt.Params) float64 {
	cover := float64(maxInt(p.Merge, 1)) * float64(maxInt(p.Unroll, 1))
	if oc.Has(opt.ST) {
		cover *= float64(p.StreamTile)
	}
	return math.Max(1, w.Points()/cover)
}

// parallelUtilization throttles bandwidth when the launch does not carry
// enough threads to fill the device (streaming's computation-granularity
// cost, Sec. II-B1). The square root models latency hiding partially
// compensating for low thread counts, and the floor reflects that even a
// sparse launch keeps a good fraction of DRAM channels busy.
func parallelUtilization(w Workload, oc opt.Opt, p opt.Params, arch gpu.Arch) float64 {
	threads := totalThreads(w, oc, p)
	needed := float64(arch.SMs*arch.MaxThreadsPerSM) * 1.5
	return clamp(math.Sqrt(threads/needed), 0.4, 1)
}

// kernelWaves returns how many waves of thread blocks a sweep issues.
func kernelWaves(w Workload, oc opt.Opt, p opt.Params, arch gpu.Arch, occ float64) float64 {
	tpb := float64(p.BlockX * p.BlockY)
	blocks := totalThreads(w, oc, p) / tpb
	concurrent := float64(arch.SMs) * float64(arch.MaxThreadsPerSM) * occ / tpb
	if concurrent < 1 {
		concurrent = 1
	}
	return math.Max(1, blocks/concurrent)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
