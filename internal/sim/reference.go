package sim

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
)

// Reference is the pre-rewrite evaluation path, preserved verbatim: full
// per-call validation, the string-keyed sharded map cache, a fresh noise
// projection per run. It exists so the compiled CellEvaluator path can be
// proven invisible — the differential suite asserts Model and Reference
// produce bitwise-identical Results, datasets and serve outputs — and so
// the collection-throughput benchmarks have an honest pre-rewrite
// baseline (cache included) to measure speedups against.
type Reference struct {
	noise NoiseConfig
	cache *legacyCache
}

// NewReference returns the pre-rewrite oracle with the default noise
// configuration and a string-keyed memoization cache of
// DefaultCacheEntries evaluations, exactly as Model.Run shipped before
// evaluator compilation.
func NewReference() *Reference {
	return &Reference{noise: DefaultNoise(), cache: newLegacyCache(DefaultCacheEntries)}
}

// NewReferenceWithNoise returns the pre-rewrite oracle with a custom
// noise configuration.
func NewReferenceWithNoise(n NoiseConfig) *Reference {
	return &Reference{noise: n, cache: newLegacyCache(DefaultCacheEntries)}
}

// DisableCache removes the memoization cache; every Run recomputes.
func (m *Reference) DisableCache() { m.cache = nil }

// Run is the pre-rewrite Model.Run, byte for byte: validate everything,
// consult the string-keyed cache, price the cell, layer noise computed
// from scratch. *Reference implements Runner.
func (m *Reference) Run(w Workload, oc opt.Opt, p opt.Params, arch gpu.Arch) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if err := oc.ValidationError(); err != nil {
		return Result{}, err
	}
	if err := p.Validate(oc, w.S.Dims); err != nil {
		return Result{}, err
	}

	var key string
	if m.cache != nil {
		key = runKey(w, oc, p, arch)
		if e, ok := m.cache.get(key); ok {
			return e.res, e.err
		}
	}

	res := resourceUsage(w, oc, p, arch)
	if err := res.check(arch, w, oc, p); err != nil {
		// Crashes are deterministic per cell and re-sampled constantly by
		// equal-budget searches, so they are worth memoizing too.
		if m.cache != nil {
			m.cache.put(key, cacheEntry{err: err})
		}
		return Result{}, err
	}

	occ := occupancy(res, p, arch)
	t := timeBreakdown(w, oc, p, arch, res, occ, stencilGeom(w.S))

	r := Result{
		Compute:        t.compute,
		Memory:         t.memory,
		Sync:           t.sync,
		Launch:         t.launch,
		Occupancy:      occ,
		RegsPerThread:  res.regs,
		SmemPerBlockKB: res.smemBytes / 1024,
		SpillBytes:     res.spillBytes,
	}
	base := t.compute + t.memory + t.sync + t.launch
	r.Time = base * m.noise.factor(w.S, oc, p, arch)
	if m.cache != nil {
		m.cache.put(key, cacheEntry{res: r})
	}
	return r, nil
}

var _ Runner = (*Reference)(nil)

// legacyShard and legacyCache are the pre-rewrite sharded map cache:
// string keys, one map per shard, an fnv.New32a hasher allocated per
// lookup, arbitrary map-iteration eviction. Kept only behind Reference.
type legacyShard struct {
	mu sync.Mutex
	m  map[string]cacheEntry
}

type legacyCache struct {
	perShard               int
	hits, misses, evictRun atomic.Uint64
	shards                 [cacheShards]legacyShard
}

func newLegacyCache(capacity int) *legacyCache {
	if capacity < 1 {
		capacity = DefaultCacheEntries
	}
	per := capacity / cacheShards
	if per < 1 {
		per = 1
	}
	c := &legacyCache{perShard: per}
	for i := range c.shards {
		c.shards[i].m = make(map[string]cacheEntry)
	}
	return c
}

func (c *legacyCache) shard(key string) *legacyShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()&(cacheShards-1)]
}

func (c *legacyCache) get(key string) (cacheEntry, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.m[key]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e, ok
}

func (c *legacyCache) put(key string, e cacheEntry) {
	s := c.shard(key)
	s.mu.Lock()
	if _, ok := s.m[key]; !ok {
		if len(s.m) >= c.perShard {
			// Evict an arbitrary entry (map iteration order). Values are
			// deterministic functions of their keys, so eviction choice
			// affects only the hit rate — never a computed result.
			for k := range s.m {
				delete(s.m, k)
				c.evictRun.Add(1)
				break
			}
		}
		s.m[key] = e
	}
	s.mu.Unlock()
}

// archKeys caches the per-architecture key segment: gpu.Arch is a
// comparable value struct, so identical specs share one digest and a
// user-modified Arch (even one reusing a catalog name) keys separately.
var archKeys sync.Map // gpu.Arch -> string

func archKey(a gpu.Arch) string {
	if v, ok := archKeys.Load(a); ok {
		return v.(string)
	}
	b := make([]byte, 0, len(a.Name)+len(a.Generation)+2+11*8)
	b = append(b, a.Name...)
	b = append(b, 0)
	b = append(b, a.Generation...)
	b = append(b, 0)
	for _, f := range []float64{
		a.MemGB, a.MemBWGBs, float64(a.SMs), a.TFLOPS, a.RentalPerHour,
		float64(a.RegsPerSM), float64(a.SmemPerSMKB), float64(a.MaxThreadsPerSM),
		float64(a.MaxRegsPerThread), a.L2MB, a.ClockGHz,
	} {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		b = append(b, buf[:]...)
	}
	k := string(b)
	archKeys.Store(a, k)
	return k
}

// runKey canonicalizes one evaluation cell. Unlike the noise paramsKey
// (whose byte truncation only perturbs noise), every field here is
// encoded collision-free: a key collision would return a wrong result.
// It remains the canonical per-site identity for wrappers that need
// stable string keys (the deterministic fault injector via RunKey); the
// run cache itself now keys on the packed evalKey.
func runKey(w Workload, oc opt.Opt, p opt.Params, arch gpu.Arch) string {
	ak := archKey(arch)
	b := make([]byte, 0, 1+3*len(w.S.Points)+4*4+1+2*10+1+len(ak))
	b = append(b, patternKey(w.S)...)
	var u [4]byte
	for _, v := range [...]int{w.GridX, w.GridY, w.GridZ, w.TimeSteps} {
		binary.LittleEndian.PutUint32(u[:], uint32(v))
		b = append(b, u[:]...)
	}
	b = append(b, byte(oc))
	for _, v := range [...]int{p.BlockX, p.BlockY, p.Merge, p.MergeDim,
		p.StreamTile, p.StreamDim, p.Unroll, p.TBDepth, p.PrefetchDepth} {
		b = append(b, byte(v), byte(v>>8))
	}
	if p.UseSmem {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = append(b, ak...)
	return string(b)
}
