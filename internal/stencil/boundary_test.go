package stencil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBoundaryString(t *testing.T) {
	names := map[Boundary]string{
		BoundaryCopy: "copy", BoundaryDirichlet: "dirichlet",
		BoundaryPeriodic: "periodic", BoundaryReflect: "reflect",
	}
	for b, want := range names {
		if b.String() != want {
			t.Errorf("%d.String() = %q, want %q", b, b.String(), want)
		}
	}
}

func TestResolvePeriodic(t *testing.T) {
	bs := BoundarySpec{Kind: BoundaryPeriodic}
	cases := map[int]int{-1: 9, -10: 0, 0: 0, 9: 9, 10: 0, 13: 3}
	for in, want := range cases {
		got, ok := bs.resolve(in, 10)
		if !ok || got != want {
			t.Errorf("periodic resolve(%d) = %d,%v want %d", in, got, ok, want)
		}
	}
}

func TestResolveReflect(t *testing.T) {
	bs := BoundarySpec{Kind: BoundaryReflect}
	cases := map[int]int{-1: 0, -2: 1, 0: 0, 9: 9, 10: 9, 11: 8}
	for in, want := range cases {
		got, ok := bs.resolve(in, 10)
		if !ok || got != want {
			t.Errorf("reflect resolve(%d) = %d,%v want %d", in, got, ok, want)
		}
	}
}

func TestApplyBoundaryDirichlet(t *testing.T) {
	s := Star(2, 1)
	in := NewGrid(4, 4, 1)
	in.Fill(func(x, y, z int) float64 { return 1 })
	out := NewGrid(4, 4, 1)
	// Out-of-grid values count as 5: corner point sees 2 interior-ish
	// neighbors + center (3 ones) and 2 Dirichlet fives.
	err := ApplyBoundary(s, UniformCoefficients(s), in, out, BoundarySpec{Kind: BoundaryDirichlet, Value: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := (3*1.0 + 2*5.0) / 5.0
	if got := out.At(0, 0, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("corner = %g, want %g", got, want)
	}
	// Interior unaffected by the boundary condition.
	if got := out.At(2, 2, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("interior = %g, want 1", got)
	}
}

func TestApplyBoundaryPeriodicConservesUniform(t *testing.T) {
	// On a torus a uniform field is exactly preserved by any averaging
	// stencil, including at the boundary.
	for _, s := range []Stencil{Star(2, 2), Box(2, 1), Cross(3, 1)} {
		nz := 1
		if s.Dims == 3 {
			nz = 8
		}
		in := NewGrid(8, 8, nz)
		in.Fill(func(x, y, z int) float64 { return 2.25 })
		out := NewGrid(8, 8, nz)
		if err := ApplyBoundary(s, UniformCoefficients(s), in, out, BoundarySpec{Kind: BoundaryPeriodic}); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		for i, v := range out.Data {
			if math.Abs(v-2.25) > 1e-9 {
				t.Fatalf("%s: point %d drifted to %g", s.Name, i, v)
			}
		}
	}
}

func TestApplyBoundaryReflectConservesUniform(t *testing.T) {
	s := Box(2, 2)
	in := NewGrid(9, 7, 1)
	in.Fill(func(x, y, z int) float64 { return -1.5 })
	out := NewGrid(9, 7, 1)
	if err := ApplyBoundary(s, UniformCoefficients(s), in, out, BoundarySpec{Kind: BoundaryReflect}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data {
		if math.Abs(v+1.5) > 1e-9 {
			t.Fatalf("point %d drifted to %g", i, v)
		}
	}
}

func TestApplyBoundaryCopyDelegates(t *testing.T) {
	s := Star(2, 1)
	in := NewGrid(6, 6, 1)
	in.Set(3, 3, 0, 9)
	viaBoundary := NewGrid(6, 6, 1)
	viaApply := NewGrid(6, 6, 1)
	if err := ApplyBoundary(s, UniformCoefficients(s), in, viaBoundary, BoundarySpec{Kind: BoundaryCopy}); err != nil {
		t.Fatal(err)
	}
	if err := Apply(s, UniformCoefficients(s), in, viaApply); err != nil {
		t.Fatal(err)
	}
	for i := range viaApply.Data {
		if viaApply.Data[i] != viaBoundary.Data[i] {
			t.Fatalf("copy boundary diverged from Apply at %d", i)
		}
	}
}

// Property: periodic and reflect resolutions always land inside the grid
// for arbitrary offsets.
func TestQuickResolveInGrid(t *testing.T) {
	f := func(c int8, kindBit bool, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		kind := BoundaryPeriodic
		if kindBit {
			kind = BoundaryReflect
		}
		idx, ok := BoundarySpec{Kind: kind}.resolve(int(c), n)
		return ok && idx >= 0 && idx < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoundaryFeature(t *testing.T) {
	f := BoundarySpec{Kind: BoundaryDirichlet, Value: 3.5}.BoundaryFeature()
	if len(f) != 2 || f[0] != float64(BoundaryDirichlet) || f[1] != 3.5 {
		t.Errorf("feature = %v", f)
	}
}
