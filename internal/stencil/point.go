// Package stencil defines stencil access patterns — the sets of neighbor
// offsets a stencil computation reads to update each grid point — together
// with classic shape constructors (star, box, cross), reference CPU
// execution on dense grids, and validation helpers.
//
// Throughout the package a stencil's order is the Chebyshev radius of its
// access pattern: the maximum of |dx|, |dy|, |dz| over all accessed offsets.
// This matches the paper's tensor representation, where a 2-D stencil with
// maximum order 4 rasterizes into a 9x9 binary tensor.
package stencil

import (
	"fmt"
	"math"
)

// MaxOrder is the maximum stencil order supported by the framework,
// matching the paper's evaluation setup (orders 1-4, 9^d tensors).
const MaxOrder = 4

// Point is a relative grid offset accessed by a stencil. For 2-D stencils
// Dz is always zero. The zero Point is the central point.
type Point struct {
	Dx, Dy, Dz int
}

// Order returns the Chebyshev distance of the point from the center, i.e.
// the neighbor order the point belongs to.
func (p Point) Order() int {
	return max3(abs(p.Dx), abs(p.Dy), abs(p.Dz))
}

// Manhattan returns the L1 distance of the point from the center.
func (p Point) Manhattan() int {
	return abs(p.Dx) + abs(p.Dy) + abs(p.Dz)
}

// Euclidean returns the L2 distance of the point from the center.
func (p Point) Euclidean() float64 {
	return math.Sqrt(float64(p.Dx*p.Dx + p.Dy*p.Dy + p.Dz*p.Dz))
}

// IsCenter reports whether p is the central point.
func (p Point) IsCenter() bool {
	return p.Dx == 0 && p.Dy == 0 && p.Dz == 0
}

// Less orders points lexicographically by (Dz, Dy, Dx); it provides the
// canonical ordering used by Stencil.Canonicalize.
func (p Point) Less(q Point) bool {
	if p.Dz != q.Dz {
		return p.Dz < q.Dz
	}
	if p.Dy != q.Dy {
		return p.Dy < q.Dy
	}
	return p.Dx < q.Dx
}

// String returns the offset as "(dx,dy)" for 2-D-looking points or
// "(dx,dy,dz)" otherwise.
func (p Point) String() string {
	if p.Dz == 0 {
		return fmt.Sprintf("(%d,%d)", p.Dx, p.Dy)
	}
	return fmt.Sprintf("(%d,%d,%d)", p.Dx, p.Dy, p.Dz)
}

// Neighbors returns the Chebyshev-adjacent offsets of p in the given
// dimensionality: 8 neighbors for dims == 2, 26 for dims == 3. The result
// excludes p itself. Points are emitted in canonical (Dz, Dy, Dx) order.
func (p Point) Neighbors(dims int) []Point {
	zr := 0
	if dims == 3 {
		zr = 1
	}
	out := make([]Point, 0, 26)
	for dz := -zr; dz <= zr; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				out = append(out, Point{p.Dx + dx, p.Dy + dy, p.Dz + dz})
			}
		}
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func max3(a, b, c int) int {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}
