package stencil

import "fmt"

// Boundary selects how the reference executor treats accesses that fall
// outside the grid. The paper's evaluation uses interior-only sweeps
// (boundary points copied unchanged); handling boundary conditions is
// its stated future work (Sec. VII), implemented here so workloads with
// physical boundaries can be expressed.
type Boundary int

const (
	// BoundaryCopy leaves the halo ring unchanged — the paper's setup.
	BoundaryCopy Boundary = iota
	// BoundaryDirichlet treats out-of-grid values as a constant.
	BoundaryDirichlet
	// BoundaryPeriodic wraps accesses around the grid torus.
	BoundaryPeriodic
	// BoundaryReflect mirrors accesses at the faces (even symmetry).
	BoundaryReflect
)

// String returns the boundary-condition name.
func (b Boundary) String() string {
	switch b {
	case BoundaryCopy:
		return "copy"
	case BoundaryDirichlet:
		return "dirichlet"
	case BoundaryPeriodic:
		return "periodic"
	case BoundaryReflect:
		return "reflect"
	default:
		return fmt.Sprintf("Boundary(%d)", int(b))
	}
}

// BoundarySpec couples a boundary condition with its parameter.
type BoundarySpec struct {
	Kind Boundary
	// Value is the Dirichlet constant; ignored otherwise.
	Value float64
}

// resolve maps a possibly out-of-range coordinate into the grid, or
// reports that the Dirichlet constant applies.
func (bs BoundarySpec) resolve(c, n int) (idx int, inGrid bool) {
	if c >= 0 && c < n {
		return c, true
	}
	switch bs.Kind {
	case BoundaryPeriodic:
		c %= n
		if c < 0 {
			c += n
		}
		return c, true
	case BoundaryReflect:
		for c < 0 || c >= n {
			if c < 0 {
				c = -c - 1
			}
			if c >= n {
				c = 2*n - c - 1
			}
		}
		return c, true
	default: // Dirichlet
		return 0, false
	}
}

// ApplyBoundary runs one serial sweep over the full grid, resolving
// out-of-grid accesses with the given boundary condition. BoundaryCopy
// delegates to Apply (interior sweep, halo copied).
func ApplyBoundary(s Stencil, coeffs Coefficients, in, out *Grid, bs BoundarySpec) error {
	if bs.Kind == BoundaryCopy {
		return Apply(s, coeffs, in, out)
	}
	if err := checkApply(s, coeffs, in, out); err != nil {
		return err
	}
	nx, ny, nz := in.Nx, in.Ny, in.Nz
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				acc := 0.0
				for i, p := range s.Points {
					xi, okX := bs.resolve(x+p.Dx, nx)
					yi, okY := bs.resolve(y+p.Dy, ny)
					zi, okZ := bs.resolve(z+p.Dz, nz)
					if okX && okY && okZ {
						acc += coeffs[i] * in.Data[(zi*ny+yi)*nx+xi]
					} else {
						acc += coeffs[i] * bs.Value
					}
				}
				out.Data[(z*ny+y)*nx+x] = acc
			}
		}
	}
	return nil
}

// BoundaryFeature parameterizes the boundary condition as model input
// (the paper's future-work plan: "parameterize them as model input").
// The encoding is the enum index plus the Dirichlet value.
func (bs BoundarySpec) BoundaryFeature() []float64 {
	return []float64{float64(bs.Kind), bs.Value}
}
