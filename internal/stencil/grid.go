package stencil

import (
	"context"
	"fmt"

	"stencilmart/internal/par"
)

// Grid is a dense row-major float64 grid used by the reference CPU
// executor. 2-D grids have Nz == 1. Index layout: data[(z*Ny+y)*Nx+x].
type Grid struct {
	Nx, Ny, Nz int
	Data       []float64
}

// NewGrid allocates a zeroed grid. For 2-D grids pass nz == 1.
func NewGrid(nx, ny, nz int) *Grid {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("stencil: invalid grid dims %dx%dx%d", nx, ny, nz))
	}
	return &Grid{Nx: nx, Ny: ny, Nz: nz, Data: make([]float64, nx*ny*nz)}
}

// At returns the value at (x, y, z).
func (g *Grid) At(x, y, z int) float64 { return g.Data[(z*g.Ny+y)*g.Nx+x] }

// Set stores v at (x, y, z).
func (g *Grid) Set(x, y, z int, v float64) { g.Data[(z*g.Ny+y)*g.Nx+x] = v }

// Len returns the number of grid points.
func (g *Grid) Len() int { return g.Nx * g.Ny * g.Nz }

// Fill sets every point to f(x, y, z).
func (g *Grid) Fill(f func(x, y, z int) float64) {
	i := 0
	for z := 0; z < g.Nz; z++ {
		for y := 0; y < g.Ny; y++ {
			for x := 0; x < g.Nx; x++ {
				g.Data[i] = f(x, y, z)
				i++
			}
		}
	}
}

// Clone returns a deep copy of the grid.
func (g *Grid) Clone() *Grid {
	out := &Grid{Nx: g.Nx, Ny: g.Ny, Nz: g.Nz, Data: make([]float64, len(g.Data))}
	copy(out.Data, g.Data)
	return out
}

// Coefficients assigns a weight to every stencil offset. The reference
// executor computes out[p] = sum_i w_i * in[p+offset_i].
type Coefficients []float64

// UniformCoefficients returns 1/n weights for a stencil with n points,
// the smoothing kernel used by the examples.
func UniformCoefficients(s Stencil) Coefficients {
	c := make(Coefficients, len(s.Points))
	w := 1.0 / float64(len(s.Points))
	for i := range c {
		c[i] = w
	}
	return c
}

// Apply runs one serial time step of the stencil over the interior of in,
// writing results to out. Boundary points (within s.Order() of any face)
// are copied unchanged, matching the paper's scope of stencils without
// boundary-condition handling. in and out must have identical dimensions,
// and coeffs must have one weight per stencil point.
func Apply(s Stencil, coeffs Coefficients, in, out *Grid) error {
	if err := checkApply(s, coeffs, in, out); err != nil {
		return err
	}
	copy(out.Data, in.Data)
	r := s.Order()
	z0, z1 := bounds(s.Dims, r, in.Nz)
	for z := z0; z < z1; z++ {
		applyPlane(s, coeffs, in, out, z, r)
	}
	return nil
}

// ApplyParallel runs one time step of the stencil, splitting interior
// z-planes across the par worker pool. Each plane writes a disjoint slice
// of out, so it computes identical results to Apply.
func ApplyParallel(s Stencil, coeffs Coefficients, in, out *Grid) error {
	if err := checkApply(s, coeffs, in, out); err != nil {
		return err
	}
	copy(out.Data, in.Data)
	r := s.Order()
	z0, z1 := bounds(s.Dims, r, in.Nz)
	par.ForEach(context.Background(), z1-z0, 0, func(i int) error {
		applyPlane(s, coeffs, in, out, z0+i, r)
		return nil
	})
	return nil
}

// ApplySteps runs t time steps, ping-ponging between two buffers, and
// returns the grid holding the final state. parallel selects the executor.
func ApplySteps(s Stencil, coeffs Coefficients, in *Grid, steps int, parallel bool) (*Grid, error) {
	cur := in.Clone()
	next := NewGrid(in.Nx, in.Ny, in.Nz)
	for t := 0; t < steps; t++ {
		var err error
		if parallel {
			err = ApplyParallel(s, coeffs, cur, next)
		} else {
			err = Apply(s, coeffs, cur, next)
		}
		if err != nil {
			return nil, err
		}
		cur, next = next, cur
	}
	return cur, nil
}

func applyPlane(s Stencil, coeffs Coefficients, in, out *Grid, z, r int) {
	nx, ny := in.Nx, in.Ny
	for y := r; y < ny-r; y++ {
		base := (z*ny + y) * nx
		for x := r; x < nx-r; x++ {
			acc := 0.0
			for i, p := range s.Points {
				acc += coeffs[i] * in.Data[((z+p.Dz)*ny+(y+p.Dy))*nx+(x+p.Dx)]
			}
			out.Data[base+x] = acc
		}
	}
}

func bounds(dims, r, nz int) (int, int) {
	if dims == 2 {
		return 0, nz // 2-D grids have nz == 1 and no z halo
	}
	return r, nz - r
}

func checkApply(s Stencil, coeffs Coefficients, in, out *Grid) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if len(coeffs) != len(s.Points) {
		return fmt.Errorf("stencil %q: %d coefficients for %d points", s.Name, len(coeffs), len(s.Points))
	}
	if in.Nx != out.Nx || in.Ny != out.Ny || in.Nz != out.Nz {
		return fmt.Errorf("stencil %q: grid dims mismatch in=%dx%dx%d out=%dx%dx%d",
			s.Name, in.Nx, in.Ny, in.Nz, out.Nx, out.Ny, out.Nz)
	}
	if s.Dims == 2 && in.Nz != 1 {
		return fmt.Errorf("stencil %q: 2-D stencil applied to 3-D grid (nz=%d)", s.Name, in.Nz)
	}
	r := s.Order()
	if in.Nx < 2*r+1 || in.Ny < 2*r+1 || (s.Dims == 3 && in.Nz < 2*r+1) {
		return fmt.Errorf("stencil %q: grid %dx%dx%d too small for order %d",
			s.Name, in.Nx, in.Ny, in.Nz, r)
	}
	return nil
}
