package stencil

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointOrder(t *testing.T) {
	cases := []struct {
		p    Point
		want int
	}{
		{Point{}, 0},
		{Point{1, 0, 0}, 1},
		{Point{-1, 0, 0}, 1},
		{Point{2, 1, 0}, 2},
		{Point{-3, 3, -2}, 3},
		{Point{0, 0, 4}, 4},
	}
	for _, c := range cases {
		if got := c.p.Order(); got != c.want {
			t.Errorf("Order(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestPointDistances(t *testing.T) {
	p := Point{3, -4, 0}
	if got := p.Manhattan(); got != 7 {
		t.Errorf("Manhattan = %d, want 7", got)
	}
	if got := p.Euclidean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Euclidean = %g, want 5", got)
	}
}

func TestPointNeighborsCount(t *testing.T) {
	if got := len(Point{}.Neighbors(2)); got != 8 {
		t.Errorf("2-D neighbors = %d, want 8", got)
	}
	if got := len(Point{}.Neighbors(3)); got != 26 {
		t.Errorf("3-D neighbors = %d, want 26", got)
	}
	for _, n := range (Point{1, 1, 0}).Neighbors(2) {
		if n.Dz != 0 {
			t.Errorf("2-D neighbor %v has nonzero dz", n)
		}
	}
}

func TestClassicShapeSizes(t *testing.T) {
	cases := []struct {
		s    Stencil
		want int
	}{
		{Star(2, 1), 5},
		{Star(2, 4), 17},
		{Star(3, 1), 7},
		{Star(3, 4), 25},
		{Box(2, 1), 9},
		{Box(2, 4), 81},
		{Box(3, 1), 27},
		{Box(3, 2), 125},
		{Cross(2, 1), 5},
		{Cross(2, 2), 9},
		{Cross(3, 1), 9},
	}
	for _, c := range cases {
		if got := c.s.NumPoints(); got != c.want {
			t.Errorf("%s: NumPoints = %d, want %d", c.s.Name, got, c.want)
		}
	}
}

func TestClassify(t *testing.T) {
	for dims := 2; dims <= 3; dims++ {
		for order := 1; order <= MaxOrder; order++ {
			if got := Star(dims, order).Classify(); got != ShapeStar {
				t.Errorf("star %dd%dr classified as %v", dims, order, got)
			}
			if got := Box(dims, order).Classify(); got != ShapeBox {
				t.Errorf("box %dd%dr classified as %v", dims, order, got)
			}
			if got := Cross(dims, order).Classify(); got != ShapeCross {
				t.Errorf("cross %dd%dr classified as %v", dims, order, got)
			}
		}
	}
	free := MustNew("free", 2, []Point{{1, 0, 0}, {0, 2, 0}})
	if got := free.Classify(); got != ShapeFree {
		t.Errorf("free stencil classified as %v", got)
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("box3d2r")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if s.Dims != 3 || s.Order() != 2 || s.Classify() != ShapeBox {
		t.Errorf("ByName(box3d2r) = %v", s)
	}
	for _, bad := range []string{"blob2d1r", "star4d1r", "star2d9r", "star", ""} {
		if _, err := ByName(bad); err == nil {
			t.Errorf("ByName(%q) succeeded, want error", bad)
		}
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New("bad", 4, nil); err == nil {
		t.Error("dims=4 accepted")
	}
	if _, err := New("bad", 2, []Point{{0, 0, 1}}); err == nil {
		t.Error("2-D stencil with dz accepted")
	}
	if _, err := New("bad", 2, []Point{{5, 0, 0}}); err == nil {
		t.Error("order-5 point accepted")
	}
}

func TestCanonicalization(t *testing.T) {
	s := MustNew("dup", 2, []Point{{1, 0, 0}, {1, 0, 0}, {-1, 0, 0}})
	if s.NumPoints() != 3 { // center added, duplicate removed
		t.Fatalf("NumPoints = %d, want 3", s.NumPoints())
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !s.Contains(Point{}) {
		t.Error("center missing after canonicalization")
	}
	if s.Contains(Point{2, 2, 0}) {
		t.Error("Contains reports absent point")
	}
}

func TestRepresentativeSuite(t *testing.T) {
	all := RepresentativeAll()
	if len(all) != 24 {
		t.Fatalf("RepresentativeAll: %d stencils, want 24", len(all))
	}
	seen := map[string]bool{}
	for _, s := range all {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate stencil %s", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestFLOPsPerPoint(t *testing.T) {
	if got := Star(2, 1).FLOPsPerPoint(); got != 9 {
		t.Errorf("star2d1r FLOPs = %d, want 9", got)
	}
}

// TestApplyLaplacianStar checks the executor against a hand-computed
// 5-point average on a small grid.
func TestApplyLaplacianStar(t *testing.T) {
	s := Star(2, 1)
	in := NewGrid(5, 5, 1)
	in.Set(2, 2, 0, 5)
	out := NewGrid(5, 5, 1)
	if err := Apply(s, UniformCoefficients(s), in, out); err != nil {
		t.Fatal(err)
	}
	if got := out.At(2, 2, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("center = %g, want 1", got)
	}
	if got := out.At(2, 1, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("neighbor = %g, want 1", got)
	}
	if got := out.At(1, 1, 0); got != 0 {
		t.Errorf("diagonal = %g, want 0", got)
	}
	// Boundary copied unchanged.
	if got := out.At(0, 0, 0); got != 0 {
		t.Errorf("boundary = %g, want 0", got)
	}
}

func TestApplyParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, s := range []Stencil{Star(2, 2), Box(2, 1), Cross(3, 1), Star(3, 4), Box(3, 2)} {
		nx, ny, nz := 20, 18, 1
		if s.Dims == 3 {
			nz = 16
		}
		in := NewGrid(nx, ny, nz)
		for i := range in.Data {
			in.Data[i] = rng.Float64()
		}
		coeffs := make(Coefficients, s.NumPoints())
		for i := range coeffs {
			coeffs[i] = rng.Float64() - 0.5
		}
		a := NewGrid(nx, ny, nz)
		b := NewGrid(nx, ny, nz)
		if err := Apply(s, coeffs, in, a); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if err := ApplyParallel(s, coeffs, in, b); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("%s: serial/parallel mismatch at %d: %g vs %g",
					s.Name, i, a.Data[i], b.Data[i])
			}
		}
	}
}

func TestApplyStepsConservesUniformField(t *testing.T) {
	// A uniform field is a fixed point of any averaging stencil.
	s := Box(2, 2)
	in := NewGrid(12, 12, 1)
	in.Fill(func(x, y, z int) float64 { return 3.5 })
	out, err := ApplySteps(s, UniformCoefficients(s), in, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data {
		if math.Abs(v-3.5) > 1e-9 {
			t.Fatalf("point %d drifted to %g", i, v)
		}
	}
}

func TestApplyErrors(t *testing.T) {
	s := Star(2, 1)
	in := NewGrid(5, 5, 1)
	out := NewGrid(6, 5, 1)
	if err := Apply(s, UniformCoefficients(s), in, out); err == nil {
		t.Error("dims mismatch accepted")
	}
	if err := Apply(s, Coefficients{1}, in, in.Clone()); err == nil {
		t.Error("coefficient count mismatch accepted")
	}
	tiny := NewGrid(2, 2, 1)
	if err := Apply(s, UniformCoefficients(s), tiny, tiny.Clone()); err == nil {
		t.Error("too-small grid accepted")
	}
	g3 := NewGrid(5, 5, 5)
	if err := Apply(s, UniformCoefficients(s), g3, g3.Clone()); err == nil {
		t.Error("2-D stencil on 3-D grid accepted")
	}
}

// Property: canonicalization is idempotent and always yields a valid
// stencil containing the center, for arbitrary in-range offsets.
func TestQuickCanonicalValid(t *testing.T) {
	f := func(raw []int8, threeD bool) bool {
		dims := 2
		if threeD {
			dims = 3
		}
		var pts []Point
		for i := 0; i+2 < len(raw); i += 3 {
			p := Point{
				Dx: int(raw[i])%(MaxOrder+1) - MaxOrder/2,
				Dy: int(raw[i+1])%(MaxOrder+1) - MaxOrder/2,
			}
			if dims == 3 {
				p.Dz = int(raw[i+2])%(MaxOrder+1) - MaxOrder/2
			}
			if p.Order() <= MaxOrder {
				pts = append(pts, p)
			}
		}
		s, err := New("q", dims, pts)
		if err != nil {
			return false
		}
		if s.Validate() != nil || !s.Contains(Point{}) {
			return false
		}
		s2, err := New("q", dims, s.Points)
		if err != nil || len(s2.Points) != len(s.Points) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: order equals the max point order and PointsAtOrder partitions
// the point set.
func TestQuickOrderPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var pts []Point
		for i := 0; i < 1+rng.Intn(20); i++ {
			pts = append(pts, Point{
				Dx: rng.Intn(2*MaxOrder+1) - MaxOrder,
				Dy: rng.Intn(2*MaxOrder+1) - MaxOrder,
			})
		}
		s, err := New("q", 2, pts)
		if err != nil {
			return false
		}
		total := 0
		for o := 0; o <= MaxOrder; o++ {
			total += len(s.PointsAtOrder(o))
		}
		return total == s.NumPoints()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
