package stencil

import "fmt"

// Star returns the classic star stencil: the center plus the 2·dims·order
// axis-aligned offsets, e.g. the 5-point Laplacian for dims=2, order=1.
func Star(dims, order int) Stencil {
	return MustNew(shapeName(ShapeStar, dims, order), dims, classicPoints(ShapeStar, dims, order))
}

// Box returns the classic box stencil: every offset with Chebyshev distance
// at most order, e.g. the 9-point Moore neighborhood for dims=2, order=1.
func Box(dims, order int) Stencil {
	return MustNew(shapeName(ShapeBox, dims, order), dims, classicPoints(ShapeBox, dims, order))
}

// Cross returns the classic cross stencil: the center plus the diagonal
// arms (an "X" in 2-D, the four space diagonals in 3-D). The star shape
// already covers the axis-aligned "+" pattern, so cross is kept disjoint
// from star and box at every order.
func Cross(dims, order int) Stencil {
	return MustNew(shapeName(ShapeCross, dims, order), dims, classicPoints(ShapeCross, dims, order))
}

// ByName constructs a classic stencil from identifiers of the form
// "<shape><dims>d<order>r", e.g. "star2d1r", "box3d4r", "cross2d2r".
func ByName(name string) (Stencil, error) {
	var shapeStr string
	var dims, order int
	for _, sh := range []Shape{ShapeStar, ShapeBox, ShapeCross} {
		prefix := sh.String()
		if len(name) > len(prefix) && name[:len(prefix)] == prefix {
			shapeStr = prefix
			if _, err := fmt.Sscanf(name[len(prefix):], "%dd%dr", &dims, &order); err != nil {
				return Stencil{}, fmt.Errorf("stencil name %q: %w", name, err)
			}
			switch sh {
			case ShapeStar:
				return checkedClassic(Star, name, dims, order)
			case ShapeBox:
				return checkedClassic(Box, name, dims, order)
			case ShapeCross:
				return checkedClassic(Cross, name, dims, order)
			}
		}
	}
	_ = shapeStr
	return Stencil{}, fmt.Errorf("stencil name %q: unknown shape prefix", name)
}

func checkedClassic(f func(int, int) Stencil, name string, dims, order int) (Stencil, error) {
	if dims != 2 && dims != 3 {
		return Stencil{}, fmt.Errorf("stencil name %q: dims must be 2 or 3", name)
	}
	if order < 1 || order > MaxOrder {
		return Stencil{}, fmt.Errorf("stencil name %q: order must be in [1,%d]", name, MaxOrder)
	}
	return f(dims, order), nil
}

// Representative returns the benchmark suite used throughout the paper's
// motivation study: star, box and cross shapes, orders 1-4, in the given
// dimensionality (16 stencils total per the paper; here 12 per dims —
// 3 shapes x 4 orders — with both dims giving the full matrix).
func Representative(dims int) []Stencil {
	var out []Stencil
	for order := 1; order <= MaxOrder; order++ {
		out = append(out, Star(dims, order), Box(dims, order), Cross(dims, order))
	}
	return out
}

// RepresentativeAll returns the representative suite for both 2-D and 3-D.
func RepresentativeAll() []Stencil {
	return append(Representative(2), Representative(3)...)
}

func shapeName(sh Shape, dims, order int) string {
	return fmt.Sprintf("%s%dd%dr", sh, dims, order)
}

// classicPoints enumerates the offsets of a classic shape in canonical
// order (center included via New's canonicalization; here emitted directly).
func classicPoints(sh Shape, dims, order int) []Point {
	var pts []Point
	add := func(p Point) { pts = append(pts, p) }
	switch sh {
	case ShapeStar:
		add(Point{})
		for o := 1; o <= order; o++ {
			add(Point{Dx: o})
			add(Point{Dx: -o})
			add(Point{Dy: o})
			add(Point{Dy: -o})
			if dims == 3 {
				add(Point{Dz: o})
				add(Point{Dz: -o})
			}
		}
	case ShapeBox:
		zr := 0
		if dims == 3 {
			zr = order
		}
		for dz := -zr; dz <= zr; dz++ {
			for dy := -order; dy <= order; dy++ {
				for dx := -order; dx <= order; dx++ {
					add(Point{dx, dy, dz})
				}
			}
		}
	case ShapeCross:
		add(Point{})
		for o := 1; o <= order; o++ {
			if dims == 2 {
				add(Point{Dx: o, Dy: o})
				add(Point{Dx: o, Dy: -o})
				add(Point{Dx: -o, Dy: o})
				add(Point{Dx: -o, Dy: -o})
			} else {
				for _, sx := range []int{-1, 1} {
					for _, sy := range []int{-1, 1} {
						for _, sz := range []int{-1, 1} {
							add(Point{Dx: sx * o, Dy: sy * o, Dz: sz * o})
						}
					}
				}
			}
		}
	}
	return pts
}
