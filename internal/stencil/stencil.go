package stencil

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Shape classifies the geometry of a stencil's access pattern.
type Shape int

// Classic stencil shapes. Random stencils that match none of the classic
// geometries are classified as ShapeFree.
const (
	ShapeFree Shape = iota
	ShapeStar
	ShapeBox
	ShapeCross
)

// String returns the lowercase shape name used in stencil identifiers
// (e.g. "star" in "star2d1r").
func (s Shape) String() string {
	switch s {
	case ShapeStar:
		return "star"
	case ShapeBox:
		return "box"
	case ShapeCross:
		return "cross"
	default:
		return "free"
	}
}

// Stencil is an immutable-by-convention stencil access pattern: the set of
// relative offsets read to update one output point. All constructors and
// the random generator produce canonicalized stencils (sorted, deduplicated,
// center included).
type Stencil struct {
	// Name identifies the stencil, e.g. "star2d1r" or "rand3d-42".
	Name string
	// Dims is the grid dimensionality, 2 or 3.
	Dims int
	// Points holds the accessed offsets in canonical order, always
	// including the central point.
	Points []Point
}

// New builds a canonicalized stencil from the given offsets. The central
// point is added if absent. New returns an error if dims is not 2 or 3, if
// any point exceeds MaxOrder, or if a 2-D stencil has a nonzero Dz offset.
func New(name string, dims int, points []Point) (Stencil, error) {
	if dims != 2 && dims != 3 {
		return Stencil{}, fmt.Errorf("stencil %q: dims must be 2 or 3, got %d", name, dims)
	}
	for _, p := range points {
		if dims == 2 && p.Dz != 0 {
			return Stencil{}, fmt.Errorf("stencil %q: 2-D stencil has offset %v with dz != 0", name, p)
		}
		if p.Order() > MaxOrder {
			return Stencil{}, fmt.Errorf("stencil %q: offset %v exceeds max order %d", name, p, MaxOrder)
		}
	}
	s := Stencil{Name: name, Dims: dims, Points: append([]Point(nil), points...)}
	s.canonicalize()
	return s, nil
}

// MustNew is New, panicking on error. It is intended for statically known
// shapes (package-level tables, tests).
func MustNew(name string, dims int, points []Point) Stencil {
	s, err := New(name, dims, points)
	if err != nil {
		panic(err)
	}
	return s
}

// canonicalize sorts points, removes duplicates and inserts the center.
func (s *Stencil) canonicalize() {
	pts := s.Points
	pts = append(pts, Point{}) // ensure center
	sort.Slice(pts, func(i, j int) bool { return pts[i].Less(pts[j]) })
	out := pts[:0]
	for i, p := range pts {
		if i > 0 && p == pts[i-1] {
			continue
		}
		out = append(out, p)
	}
	s.Points = out
}

// Order returns the stencil order: the maximum Chebyshev distance over all
// accessed offsets. The empty stencil has order 0.
func (s Stencil) Order() int {
	o := 0
	for _, p := range s.Points {
		if po := p.Order(); po > o {
			o = po
		}
	}
	return o
}

// NumPoints returns the number of accessed offsets, center included.
func (s Stencil) NumPoints() int { return len(s.Points) }

// PointsAtOrder returns the accessed offsets whose Chebyshev distance from
// the center equals order.
func (s Stencil) PointsAtOrder(order int) []Point {
	var out []Point
	for _, p := range s.Points {
		if p.Order() == order {
			out = append(out, p)
		}
	}
	return out
}

// Contains reports whether the stencil accesses the given offset.
func (s Stencil) Contains(p Point) bool {
	// Points is sorted by Less; binary search.
	i := sort.Search(len(s.Points), func(i int) bool { return !s.Points[i].Less(p) })
	return i < len(s.Points) && s.Points[i] == p
}

// Validate checks the structural invariants every canonical stencil must
// satisfy. It is used by property tests and by consumers of deserialized
// stencils.
func (s Stencil) Validate() error {
	if s.Dims != 2 && s.Dims != 3 {
		return fmt.Errorf("stencil %q: invalid dims %d", s.Name, s.Dims)
	}
	if len(s.Points) == 0 {
		return errors.New("stencil has no points")
	}
	hasCenter := false
	for i, p := range s.Points {
		if i > 0 && !s.Points[i-1].Less(p) {
			return fmt.Errorf("stencil %q: points not in canonical order at index %d", s.Name, i)
		}
		if s.Dims == 2 && p.Dz != 0 {
			return fmt.Errorf("stencil %q: 2-D stencil accesses %v", s.Name, p)
		}
		if p.Order() > MaxOrder {
			return fmt.Errorf("stencil %q: point %v exceeds max order", s.Name, p)
		}
		if p.IsCenter() {
			hasCenter = true
		}
	}
	if !hasCenter {
		return fmt.Errorf("stencil %q: central point missing", s.Name)
	}
	return nil
}

// Classify reports which classic shape the access pattern matches exactly,
// or ShapeFree if none.
func (s Stencil) Classify() Shape {
	order := s.Order()
	if order == 0 {
		return ShapeFree
	}
	for _, sh := range []Shape{ShapeStar, ShapeBox, ShapeCross} {
		ref := Stencil{Dims: s.Dims, Points: classicPoints(sh, s.Dims, order)}
		ref.canonicalize()
		if samePoints(s.Points, ref.Points) {
			return sh
		}
	}
	return ShapeFree
}

// FLOPsPerPoint returns the floating-point operations performed per output
// point: one multiply per accessed offset (coefficient scaling) plus the
// additions accumulating them.
func (s Stencil) FLOPsPerPoint() int {
	n := len(s.Points)
	if n == 0 {
		return 0
	}
	return 2*n - 1
}

// String renders a compact description such as
// "star2d1r (2D, order 1, 5 points, star)".
func (s Stencil) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%dD, order %d, %d points, %s)",
		s.Name, s.Dims, s.Order(), len(s.Points), s.Classify())
	return b.String()
}

func samePoints(a, b []Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
