package stencil

// LineCount returns the number of distinct grid lines (fixed dy, dz; the
// x extent is contiguous) the stencil touches per output point. It is the
// footprint measure driving cache behavior in the performance model and
// the engineered regression features.
func LineCount(s Stencil) int {
	type line struct{ dy, dz int }
	seen := make(map[line]bool)
	for _, p := range s.Points {
		seen[line{p.Dy, p.Dz}] = true
	}
	return len(seen)
}

// PlaneLineCount returns the distinct in-plane lines once the given
// streaming dimension (1=x, 2=y, 3=z) is collapsed: the per-plane miss
// footprint of a register-streaming kernel.
func PlaneLineCount(s Stencil, streamDim int) int {
	seen := make(map[int]bool)
	for _, p := range s.Points {
		switch streamDim {
		case 3: // stream z: plane (x, y), lines along x -> distinct dy
			seen[p.Dy] = true
		default: // stream x or y: remaining lines differ by dz
			seen[p.Dz] = true
		}
	}
	return len(seen)
}
