package stencil

// lineSide is the extent of one offset axis: offsets live in
// [-MaxOrder, MaxOrder], so a fixed mark array replaces a map and the
// counters stay allocation-free on serving hot paths.
const lineSide = 2*MaxOrder + 1

// LineCount returns the number of distinct grid lines (fixed dy, dz; the
// x extent is contiguous) the stencil touches per output point. It is the
// footprint measure driving cache behavior in the performance model and
// the engineered regression features.
func LineCount(s Stencil) int {
	var seen [lineSide * lineSide]bool
	n := 0
	for _, p := range s.Points {
		i := (p.Dy+MaxOrder)*lineSide + (p.Dz + MaxOrder)
		if !seen[i] {
			seen[i] = true
			n++
		}
	}
	return n
}

// PlaneLineCount returns the distinct in-plane lines once the given
// streaming dimension (1=x, 2=y, 3=z) is collapsed: the per-plane miss
// footprint of a register-streaming kernel.
func PlaneLineCount(s Stencil, streamDim int) int {
	var seen [lineSide]bool
	n := 0
	for _, p := range s.Points {
		d := p.Dz
		if streamDim == 3 { // stream z: plane (x, y), lines along x -> distinct dy
			d = p.Dy
		}
		if !seen[d+MaxOrder] {
			seen[d+MaxOrder] = true
			n++
		}
	}
	return n
}
