// Package gpu describes the GPU architectures the paper evaluates on
// (Table III) plus the microarchitectural parameters the analytical
// performance model in internal/sim needs. The four catalog entries carry
// the paper's published specs verbatim; per-SM resources come from the
// vendor whitepapers for each generation.
package gpu

import "fmt"

// Arch describes one GPU architecture.
type Arch struct {
	// Name is the marketing name used throughout the paper ("V100", ...).
	Name string
	// Generation is the architecture family ("Pascal", "Volta", ...).
	Generation string
	// MemGB is the device memory capacity in gigabytes.
	MemGB float64
	// MemBWGBs is the peak device memory bandwidth in GB/s.
	MemBWGBs float64
	// SMs is the number of streaming multiprocessors.
	SMs int
	// TFLOPS is the peak double-precision throughput in TFLOP/s as listed
	// in Table III.
	TFLOPS float64
	// RentalPerHour is the Google Cloud rental price in USD/hour
	// (October 2021, us-central1); zero when not rentable (2080 Ti).
	RentalPerHour float64

	// Microarchitectural parameters used by the performance model.

	// RegsPerSM is the register-file size per SM in 32-bit registers.
	RegsPerSM int
	// SmemPerSMKB is the maximum shared memory per SM in KiB.
	SmemPerSMKB int
	// MaxThreadsPerSM is the hardware thread-residency limit per SM.
	MaxThreadsPerSM int
	// MaxRegsPerThread is the per-thread register ceiling before spilling.
	MaxRegsPerThread int
	// L2MB is the L2 cache size in MiB.
	L2MB float64
	// ClockGHz is the boost clock in GHz; it scales fixed-latency costs
	// such as kernel launch and barrier synchronization.
	ClockGHz float64
}

// HasRental reports whether the GPU is available for cloud rental.
func (a Arch) HasRental() bool { return a.RentalPerHour > 0 }

// String returns the architecture name.
func (a Arch) String() string { return a.Name }

// FeatureNames lists the hardware feature vector layout used as regressor
// input, mirroring the paper's choice of memory capacity/bandwidth, SM
// count, and peak FLOPS.
var FeatureNames = []string{"memGB", "memBWGBs", "sms", "tflops"}

// Features returns the hardware characteristics attached to regression
// inputs (Sec. IV-E): memory capacity and bandwidth, SM count, peak FLOPS.
func (a Arch) Features() []float64 {
	out := make([]float64, len(FeatureNames))
	a.FeaturesInto(out)
	return out
}

// FeaturesInto writes Features into dst (len(FeatureNames)) without
// allocating, for callers encoding into arena scratch.
func (a Arch) FeaturesInto(dst []float64) {
	if len(dst) != len(FeatureNames) {
		panic(fmt.Sprintf("gpu: features dst %d, want %d", len(dst), len(FeatureNames)))
	}
	dst[0] = a.MemGB
	dst[1] = a.MemBWGBs
	dst[2] = float64(a.SMs)
	dst[3] = a.TFLOPS
}

// Catalog returns the four GPUs of Table III in the paper's order.
// P100/V100/A100 carry their rental prices; the 2080 Ti is not rentable.
func Catalog() []Arch {
	return []Arch{
		{
			Name: "P100", Generation: "Pascal",
			MemGB: 16, MemBWGBs: 720, SMs: 56, TFLOPS: 5.3, RentalPerHour: 1.46,
			RegsPerSM: 65536, SmemPerSMKB: 64, MaxThreadsPerSM: 2048,
			MaxRegsPerThread: 255, L2MB: 4, ClockGHz: 1.30,
		},
		{
			Name: "V100", Generation: "Volta",
			MemGB: 32, MemBWGBs: 900, SMs: 80, TFLOPS: 7.8, RentalPerHour: 2.48,
			RegsPerSM: 65536, SmemPerSMKB: 96, MaxThreadsPerSM: 2048,
			MaxRegsPerThread: 255, L2MB: 6, ClockGHz: 1.53,
		},
		{
			Name: "2080Ti", Generation: "Turing",
			MemGB: 11, MemBWGBs: 616, SMs: 68, TFLOPS: 0.41, RentalPerHour: 0,
			RegsPerSM: 65536, SmemPerSMKB: 64, MaxThreadsPerSM: 1024,
			MaxRegsPerThread: 255, L2MB: 5.5, ClockGHz: 1.635,
		},
		{
			Name: "A100", Generation: "Ampere",
			MemGB: 40, MemBWGBs: 1555, SMs: 108, TFLOPS: 9.7, RentalPerHour: 2.93,
			RegsPerSM: 65536, SmemPerSMKB: 164, MaxThreadsPerSM: 2048,
			MaxRegsPerThread: 255, L2MB: 40, ClockGHz: 1.41,
		},
	}
}

// ByName looks up a catalog architecture by its Table III name.
func ByName(name string) (Arch, error) {
	for _, a := range Catalog() {
		if a.Name == name {
			return a, nil
		}
	}
	return Arch{}, fmt.Errorf("gpu: unknown architecture %q", name)
}

// Rentable returns the catalog entries with a cloud rental price, in
// catalog order (P100, V100, A100) — the set compared in the paper's
// cost-efficiency case study.
func Rentable() []Arch {
	var out []Arch
	for _, a := range Catalog() {
		if a.HasRental() {
			out = append(out, a)
		}
	}
	return out
}
