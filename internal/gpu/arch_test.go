package gpu

import "testing"

func TestCatalogMatchesTableIII(t *testing.T) {
	cat := Catalog()
	if len(cat) != 4 {
		t.Fatalf("catalog has %d entries, want 4", len(cat))
	}
	want := []struct {
		name     string
		memGB    float64
		bw       float64
		sms      int
		tflops   float64
		rentable bool
	}{
		{"P100", 16, 720, 56, 5.3, true},
		{"V100", 32, 900, 80, 7.8, true},
		{"2080Ti", 11, 616, 68, 0.41, false},
		{"A100", 40, 1555, 108, 9.7, true},
	}
	for i, w := range want {
		a := cat[i]
		if a.Name != w.name || a.MemGB != w.memGB || a.MemBWGBs != w.bw ||
			a.SMs != w.sms || a.TFLOPS != w.tflops || a.HasRental() != w.rentable {
			t.Errorf("catalog[%d] = %+v, want %+v", i, a, w)
		}
	}
}

func TestByName(t *testing.T) {
	a, err := ByName("A100")
	if err != nil || a.Generation != "Ampere" {
		t.Errorf("ByName(A100) = %v, %v", a, err)
	}
	if _, err := ByName("H100"); err == nil {
		t.Error("unknown GPU accepted")
	}
}

func TestRentable(t *testing.T) {
	r := Rentable()
	if len(r) != 3 {
		t.Fatalf("%d rentable GPUs, want 3", len(r))
	}
	for _, a := range r {
		if !a.HasRental() {
			t.Errorf("%s listed rentable without a price", a.Name)
		}
		if a.Name == "2080Ti" {
			t.Error("2080Ti must not be rentable")
		}
	}
}

func TestFeaturesLayout(t *testing.T) {
	a, _ := ByName("V100")
	f := a.Features()
	if len(f) != len(FeatureNames) {
		t.Fatalf("feature length %d != names %d", len(f), len(FeatureNames))
	}
	if f[0] != 32 || f[1] != 900 || f[2] != 80 || f[3] != 7.8 {
		t.Errorf("V100 features = %v", f)
	}
}

func TestMicroarchSanity(t *testing.T) {
	for _, a := range Catalog() {
		if a.RegsPerSM <= 0 || a.SmemPerSMKB <= 0 || a.MaxThreadsPerSM <= 0 ||
			a.MaxRegsPerThread <= 0 || a.L2MB <= 0 || a.ClockGHz <= 0 {
			t.Errorf("%s has non-positive microarch parameter: %+v", a.Name, a)
		}
		if a.String() != a.Name {
			t.Errorf("String() = %q, want %q", a.String(), a.Name)
		}
	}
}
