// Package testutil holds the shared fixtures and assertion helpers of
// the differential determinism suite: seeded corpora, byte-level dataset
// golden comparisons, and GOMAXPROCS manipulation. Tests that compare a
// parallel path against its serial reference build both inputs here so
// every package checks the same property the same way.
package testutil

import (
	"bytes"
	"runtime"
	"testing"

	"stencilmart/internal/gen"
	"stencilmart/internal/gpu"
	"stencilmart/internal/profile"
	"stencilmart/internal/stencil"
)

// CorpusSeed is the fixed seed for the differential-suite corpus, chosen
// once so goldens stay comparable across tests and packages.
const CorpusSeed = 424242

// SmallCorpus returns the suite's deterministic 12-stencil corpus
// (6 two-dimensional + 6 three-dimensional, orders up to 3).
func SmallCorpus(t testing.TB) []stencil.Stencil {
	t.Helper()
	corpus, err := gen.MixedCorpus(6, 6, 3, CorpusSeed)
	if err != nil {
		t.Fatalf("testutil: corpus generation: %v", err)
	}
	return corpus
}

// AllArchs returns the full Table III architecture catalog.
func AllArchs(t testing.TB) []gpu.Arch {
	t.Helper()
	archs := gpu.Catalog()
	if len(archs) == 0 {
		t.Fatal("testutil: empty GPU catalog")
	}
	return archs
}

// DatasetJSON serializes a dataset to its canonical JSON bytes. Two
// datasets are considered identical exactly when these bytes match.
func DatasetJSON(t testing.TB, d *profile.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatalf("testutil: dataset serialization: %v", err)
	}
	return buf.Bytes()
}

// AssertSameBytes fails the test when two byte strings differ, reporting
// the first divergence with surrounding context rather than dumping both.
func AssertSameBytes(t testing.TB, label string, want, got []byte) {
	t.Helper()
	if bytes.Equal(want, got) {
		return
	}
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	at := n
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			at = i
			break
		}
	}
	lo := at - 40
	if lo < 0 {
		lo = 0
	}
	snip := func(b []byte) string {
		hi := at + 40
		if hi > len(b) {
			hi = len(b)
		}
		if lo >= len(b) {
			return ""
		}
		return string(b[lo:hi])
	}
	t.Fatalf("%s: outputs differ at byte %d (want %d bytes, got %d)\nwant ...%s...\ngot  ...%s...",
		label, at, len(want), len(got), snip(want), snip(got))
}

// WithGOMAXPROCS runs fn with the given GOMAXPROCS, restoring the prior
// value afterwards even if fn fails the test.
func WithGOMAXPROCS(t testing.TB, n int, fn func()) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(prev)
	fn()
}
