package gen

import (
	"testing"
	"testing/quick"

	"stencilmart/internal/stencil"
)

func mustGen(t *testing.T, opts Options, seed int64) *Generator {
	t.Helper()
	g, err := New(opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(Options{Dims: 4}, 1); err == nil {
		t.Error("dims=4 accepted")
	}
	if _, err := New(Options{Dims: 2, MaxOrder: 9}, 1); err == nil {
		t.Error("max order 9 accepted")
	}
	if _, err := New(Options{Dims: 2, KeepProb: 1.5}, 1); err == nil {
		t.Error("keep prob 1.5 accepted")
	}
}

func TestNextWithOrderExact(t *testing.T) {
	for _, dims := range []int{2, 3} {
		g := mustGen(t, Options{Dims: dims}, 11)
		for order := 1; order <= stencil.MaxOrder; order++ {
			for i := 0; i < 20; i++ {
				s := g.NextWithOrder(order)
				if s.Order() != order {
					t.Fatalf("dims=%d: wanted order %d, got %d (%s)", dims, order, s.Order(), s.Name)
				}
				if err := s.Validate(); err != nil {
					t.Fatalf("dims=%d: %v", dims, err)
				}
				if s.Dims != dims {
					t.Fatalf("dims=%d: generated dims %d", dims, s.Dims)
				}
			}
		}
	}
}

// TestNeighborChaining verifies the Algorithm 1 invariant: every point of
// order k is Chebyshev-adjacent to some selected point of order k-1 (or to
// the center for k == 1).
func TestNeighborChaining(t *testing.T) {
	g := mustGen(t, Options{Dims: 3}, 5)
	for i := 0; i < 50; i++ {
		s := g.Next()
		for o := 1; o <= s.Order(); o++ {
			prev := s.PointsAtOrder(o - 1)
			for _, p := range s.PointsAtOrder(o) {
				adjacent := false
				for _, n := range p.Neighbors(s.Dims) {
					for _, q := range prev {
						if n == q {
							adjacent = true
						}
					}
				}
				if !adjacent {
					t.Fatalf("%s: order-%d point %v not adjacent to any order-%d point",
						s.Name, o, p, o-1)
				}
			}
			if len(s.PointsAtOrder(o)) == 0 {
				t.Fatalf("%s: empty order-%d shell below stencil order %d", s.Name, o, s.Order())
			}
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := mustGen(t, Options{Dims: 2}, 99).Corpus(10)
	b := mustGen(t, Options{Dims: 2}, 99).Corpus(10)
	for i := range a {
		if len(a[i].Points) != len(b[i].Points) {
			t.Fatalf("corpus %d differs across identical seeds", i)
		}
		for j := range a[i].Points {
			if a[i].Points[j] != b[i].Points[j] {
				t.Fatalf("corpus %d point %d differs across identical seeds", i, j)
			}
		}
	}
	c := mustGen(t, Options{Dims: 2}, 100).Corpus(10)
	same := true
	for i := range a {
		if len(a[i].Points) != len(c[i].Points) {
			same = false
		}
	}
	if same {
		t.Log("warning: different seeds produced size-identical corpus (possible but unlikely)")
	}
}

func TestCorpusDistinctPatterns(t *testing.T) {
	g := mustGen(t, Options{Dims: 2}, 3)
	corpus := g.Corpus(60)
	if len(corpus) != 60 {
		t.Fatalf("corpus size %d, want 60", len(corpus))
	}
	seen := map[string]int{}
	for _, s := range corpus {
		seen[patternKey(s)]++
	}
	dups := 0
	for _, c := range seen {
		if c > 1 {
			dups += c - 1
		}
	}
	// Bounded retries allow rare duplicates; they must stay rare.
	if dups > 3 {
		t.Errorf("%d duplicate patterns in corpus of 60", dups)
	}
}

func TestMixedCorpus(t *testing.T) {
	corpus, err := MixedCorpus(8, 6, stencil.MaxOrder, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != 14 {
		t.Fatalf("mixed corpus size %d, want 14", len(corpus))
	}
	n2, n3 := 0, 0
	for _, s := range corpus {
		switch s.Dims {
		case 2:
			n2++
		case 3:
			n3++
		}
	}
	if n2 != 8 || n3 != 6 {
		t.Errorf("mixed corpus split %d/%d, want 8/6", n2, n3)
	}
}

// Property: generated stencils are always valid and within MaxOrder,
// whatever the seed and keep probability.
func TestQuickGeneratedValid(t *testing.T) {
	f := func(seed int64, probByte uint8, threeD bool) bool {
		dims := 2
		if threeD {
			dims = 3
		}
		prob := 0.05 + float64(probByte)/255*0.9
		g, err := New(Options{Dims: dims, KeepProb: prob}, seed)
		if err != nil {
			return false
		}
		for i := 0; i < 5; i++ {
			s := g.Next()
			if s.Validate() != nil || s.Order() > stencil.MaxOrder || s.Order() < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
