// Package gen implements the paper's random stencil generator
// (Algorithm 1): stencils are grown outward order by order, sampling each
// order's points only from the neighbors of the points selected at the
// previous order, so every generated pattern obeys the neighbor-chained
// access structure of real stencil computations.
package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"stencilmart/internal/stencil"
)

// Options configures the generator.
type Options struct {
	// Dims is the stencil dimensionality, 2 or 3.
	Dims int
	// MaxOrder bounds the generated stencil order; each stencil draws its
	// target order uniformly from [1, MaxOrder]. Defaults to
	// stencil.MaxOrder when zero.
	MaxOrder int
	// KeepProb is the probability of keeping each candidate neighbor at
	// every order (at least one is always kept). Defaults to 0.35.
	KeepProb float64
}

func (o *Options) setDefaults() error {
	if o.Dims != 2 && o.Dims != 3 {
		return fmt.Errorf("gen: dims must be 2 or 3, got %d", o.Dims)
	}
	if o.MaxOrder == 0 {
		o.MaxOrder = stencil.MaxOrder
	}
	if o.MaxOrder < 1 || o.MaxOrder > stencil.MaxOrder {
		return fmt.Errorf("gen: max order must be in [1,%d], got %d", stencil.MaxOrder, o.MaxOrder)
	}
	if o.KeepProb == 0 {
		o.KeepProb = 0.35
	}
	if o.KeepProb < 0 || o.KeepProb > 1 {
		return fmt.Errorf("gen: keep probability %g outside [0,1]", o.KeepProb)
	}
	return nil
}

// Generator produces random neighbor-chained stencils. It is not safe for
// concurrent use; create one generator per goroutine.
type Generator struct {
	opts Options
	rng  *rand.Rand
	n    int // stencils produced, used for naming
}

// New returns a generator with the given options and deterministic seed.
func New(opts Options, seed int64) (*Generator, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	return &Generator{opts: opts, rng: rand.New(rand.NewSource(seed))}, nil
}

// Next generates one random stencil of a random order in [1, MaxOrder].
func (g *Generator) Next() stencil.Stencil {
	order := 1 + g.rng.Intn(g.opts.MaxOrder)
	return g.NextWithOrder(order)
}

// NextWithOrder generates one random stencil of exactly the given order.
// It implements Algorithm 1 of the paper: the order-k point set is sampled
// from the neighbors of the order-(k-1) selection, discarding any
// candidate that does not lie at Chebyshev distance k (the "delete sampled
// low-order neighbor points" steps).
func (g *Generator) NextWithOrder(order int) stencil.Stencil {
	if order < 1 || order > g.opts.MaxOrder {
		panic(fmt.Sprintf("gen: order %d outside [1,%d]", order, g.opts.MaxOrder))
	}
	npList := []stencil.Point{{}} // center
	selected := []stencil.Point{{}}
	for o := 1; o <= order; o++ {
		candidates := g.orderCandidates(selected, o)
		picked := g.sample(candidates)
		npList = append(npList, picked...)
		selected = picked
	}
	g.n++
	name := fmt.Sprintf("rand%dd-%d", g.opts.Dims, g.n)
	s, err := stencil.New(name, g.opts.Dims, npList)
	if err != nil {
		// Unreachable by construction: all candidates are within MaxOrder
		// and match the generator dimensionality.
		panic(fmt.Sprintf("gen: generated invalid stencil: %v", err))
	}
	return s
}

// orderCandidates collects the deduplicated neighbors of the previous
// selection that lie exactly at Chebyshev distance o from the center.
func (g *Generator) orderCandidates(selected []stencil.Point, o int) []stencil.Point {
	seen := make(map[stencil.Point]bool)
	for _, p := range selected {
		for _, n := range p.Neighbors(g.opts.Dims) {
			if n.Order() == o {
				seen[n] = true
			}
		}
	}
	out := make([]stencil.Point, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// sample keeps each candidate with probability KeepProb and guarantees a
// nonempty result so the growth chain never stalls below the target order.
func (g *Generator) sample(candidates []stencil.Point) []stencil.Point {
	if len(candidates) == 0 {
		return nil
	}
	var out []stencil.Point
	for _, p := range candidates {
		if g.rng.Float64() < g.opts.KeepProb {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		out = append(out, candidates[g.rng.Intn(len(candidates))])
	}
	return out
}

// Corpus generates n distinct random stencils. Duplicate access patterns
// are regenerated (bounded retries) so the training corpus does not
// contain repeated patterns under different names.
func (g *Generator) Corpus(n int) []stencil.Stencil {
	seen := make(map[string]bool, n)
	out := make([]stencil.Stencil, 0, n)
	const maxRetries = 64
	for len(out) < n {
		s := g.Next()
		key := patternKey(s)
		retries := 0
		for seen[key] && retries < maxRetries {
			s = g.Next()
			key = patternKey(s)
			retries++
		}
		seen[key] = true
		out = append(out, s)
	}
	return out
}

// MixedCorpus generates n2d 2-D and n3d 3-D stencils with the same
// MaxOrder and KeepProb, seeding the two sub-generators from seed.
func MixedCorpus(n2d, n3d int, maxOrder int, seed int64) ([]stencil.Stencil, error) {
	g2, err := New(Options{Dims: 2, MaxOrder: maxOrder}, seed)
	if err != nil {
		return nil, err
	}
	g3, err := New(Options{Dims: 3, MaxOrder: maxOrder}, seed+1)
	if err != nil {
		return nil, err
	}
	out := g2.Corpus(n2d)
	return append(out, g3.Corpus(n3d)...), nil
}

func patternKey(s stencil.Stencil) string {
	key := fmt.Sprintf("%dd:", s.Dims)
	for _, p := range s.Points {
		key += p.String()
	}
	return key
}
