package baseline

import (
	"testing"

	"stencilmart/internal/gpu"
	"stencilmart/internal/sim"
	"stencilmart/internal/testutil"
)

// tuneCorpus runs both baseline strategies over the suite corpus on one
// model — the equal-budget comparison of the evaluation figures, which
// re-prices many identical (stencil, OC, params, arch) cells.
func tuneCorpus(t testing.TB, m *sim.Model, arch gpu.Arch) {
	t.Helper()
	for si, s := range testutil.SmallCorpus(t) {
		w := sim.DefaultWorkload(s)
		for _, strat := range []Strategy{AN5D{}, Artemis{}} {
			if _, err := strat.Tune(m, w, arch, 12, int64(si)); err != nil {
				t.Logf("%s on %s: %v", strat.Name(), s.Name, err)
			}
		}
	}
}

// TestBaselineTuningHitsCache asserts the memo cache actually absorbs
// repeated work in the equal-budget baseline comparison: running the same
// tuning twice must produce hits the second time (the ISSUE's hit-rate
// acceptance criterion).
func TestBaselineTuningHitsCache(t *testing.T) {
	m := sim.New()
	arch, err := gpu.ByName("P100")
	if err != nil {
		t.Fatal(err)
	}
	tuneCorpus(t, m, arch)
	tuneCorpus(t, m, arch)
	st := m.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("no cache hits after repeated equal-budget tuning: %+v", st)
	}
	if st.HitRate() <= 0 {
		t.Fatalf("hit rate %v, want > 0 (%+v)", st.HitRate(), st)
	}
}

// BenchmarkBaselineTuneCached measures the equal-budget comparison with
// the memo cache warm, reporting the achieved hit rate.
func BenchmarkBaselineTuneCached(b *testing.B) {
	m := sim.New()
	arch, err := gpu.ByName("P100")
	if err != nil {
		b.Fatal(err)
	}
	tuneCorpus(b, m, arch) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tuneCorpus(b, m, arch)
	}
	b.StopTimer()
	b.ReportMetric(m.CacheStats().HitRate(), "hit-rate")
}

// BenchmarkBaselineTuneUncached is the same workload with the cache off —
// the before side of the EXPERIMENTS.md comparison.
func BenchmarkBaselineTuneUncached(b *testing.B) {
	m := sim.New()
	m.DisableCache()
	arch, err := gpu.ByName("P100")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tuneCorpus(b, m, arch)
	}
}
