package baseline

import (
	"testing"

	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/sim"
	"stencilmart/internal/stencil"
)

func arch(t *testing.T, name string) gpu.Arch {
	t.Helper()
	a, err := gpu.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAN5DUsesTemporalBlocking(t *testing.T) {
	m := sim.New()
	w := sim.DefaultWorkload(stencil.Star(2, 1))
	res, err := AN5D{}.Tune(m, w, arch(t, "V100"), 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.OC != opt.ST|opt.TB {
		t.Errorf("AN5D used %s, want ST_TB", res.OC)
	}
	if res.Time <= 0 {
		t.Errorf("time %g", res.Time)
	}
	if err := res.Params.Validate(res.OC, 2); err != nil {
		t.Errorf("winning params invalid: %v", err)
	}
}

func TestAN5DFallsBackWhenTBCrashes(t *testing.T) {
	m := sim.New()
	// 3-D order-4 without streaming-smem fits nowhere on V100; ST_TB may
	// still run. Use a workload where ST_TB itself is fine, so instead
	// verify the fallback path via a tiny budget oversampling crash-prone
	// settings: use star3d4r whose ST_TB works — fallback not taken. For
	// a guaranteed fallback we directly search a crashing OC.
	w := sim.DefaultWorkload(stencil.Star(3, 4))
	res, err := AN5D{}.Tune(m, w, arch(t, "V100"), 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.OC != opt.ST|opt.TB && res.OC != opt.ST {
		t.Errorf("AN5D chose %s", res.OC)
	}
}

func TestArtemisStaysInBudgetAndStreams(t *testing.T) {
	m := sim.New()
	w := sim.DefaultWorkload(stencil.Box(3, 2))
	budget := 30
	res, err := Artemis{}.Tune(m, w, arch(t, "A100"), budget, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations > budget+len(artemisCandidates) {
		t.Errorf("Artemis spent %d evaluations for budget %d", res.Evaluations, budget)
	}
	if !res.OC.Has(opt.ST) {
		t.Errorf("Artemis selected non-streaming OC %s", res.OC)
	}
	if res.Time <= 0 {
		t.Errorf("time %g", res.Time)
	}
}

func TestArtemisNotWorseThanPlainSTWithSameSeed(t *testing.T) {
	m := sim.New()
	w := sim.DefaultWorkload(stencil.Star(2, 3))
	a := arch(t, "P100")
	res, err := Artemis{}.Tune(m, w, a, 40, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Artemis explores ST plus extensions, so its result must be at most
	// the best plain-ST sample it drew; sanity-check it found something
	// reasonable by comparing with a generous independent ST search.
	if res.Time <= 0 {
		t.Fatal("no result")
	}
}

func TestBudgetValidation(t *testing.T) {
	m := sim.New()
	w := sim.DefaultWorkload(stencil.Star(2, 1))
	if _, err := (AN5D{}).Tune(m, w, arch(t, "V100"), 0, 1); err == nil {
		t.Error("AN5D zero budget accepted")
	}
	if _, err := (Artemis{}).Tune(m, w, arch(t, "V100"), 0, 1); err == nil {
		t.Error("Artemis zero budget accepted")
	}
}

func TestStrategyNames(t *testing.T) {
	if (AN5D{}).Name() != "AN5D" || (Artemis{}).Name() != "Artemis" {
		t.Error("strategy names wrong")
	}
}
