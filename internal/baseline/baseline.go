// Package baseline emulates the two state-of-the-art stencil frameworks
// the paper compares against (Sec. V-B2). The evaluation uses them as
// fixed optimization strategies driving an equal-budget parameter search,
// which is exactly what these emulations implement against the simulation
// substrate:
//
//   - AN5D (Matsumura et al., CGO'20) generates streaming code with
//     high-degree temporal blocking: OC = ST_TB, falling back to plain ST
//     when the fused kernel cannot run.
//   - Artemis (Rawat et al., IPDPS'19) tunes high-impact optimizations
//     first: it spends half its budget tuning plain streaming, then
//     splits the rest across streaming extended with retiming,
//     prefetching and merging, keeping the best candidate.
package baseline

import (
	"fmt"
	"math/rand"

	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/sim"
)

// Result is a baseline tuning outcome.
type Result struct {
	// Time is the best execution time found, in seconds.
	Time float64
	// OC is the combination that achieved it.
	OC opt.Opt
	// Params is the winning setting.
	Params opt.Params
	// Evaluations is the number of simulator runs spent.
	Evaluations int
}

// Strategy is a fixed-policy stencil tuner.
type Strategy interface {
	// Name returns the framework name used in reports.
	Name() string
	// Tune searches for the stencil's best configuration on arch within
	// the given evaluation budget.
	Tune(m *sim.Model, w sim.Workload, arch gpu.Arch, budget int, seed int64) (Result, error)
}

// searchOC draws up to budget samples for one OC and returns the best.
// The cell's compiled evaluator is resolved once; the sample loop is
// allocation-free on warm cache.
func searchOC(m *sim.Model, w sim.Workload, arch gpu.Arch, oc opt.Opt, budget int, rng *rand.Rand) (Result, bool) {
	res := Result{OC: oc}
	eval := m.CellFn(w, arch)
	found := false
	for i := 0; i < budget; i++ {
		p := opt.Sample(oc, w.S.Dims, rng)
		r, err := eval(oc, p)
		res.Evaluations++
		if err != nil {
			continue
		}
		if !found || r.Time < res.Time {
			res.Time = r.Time
			res.Params = p
			found = true
		}
	}
	return res, found
}

// AN5D is the ST_TB (high-degree temporal blocking) code generator.
type AN5D struct{}

// Name implements Strategy.
func (AN5D) Name() string { return "AN5D" }

// Tune implements Strategy.
func (AN5D) Tune(m *sim.Model, w sim.Workload, arch gpu.Arch, budget int, seed int64) (Result, error) {
	if budget < 1 {
		return Result{}, fmt.Errorf("baseline: AN5D budget %d < 1", budget)
	}
	rng := rand.New(rand.NewSource(seed))
	res, ok := searchOC(m, w, arch, opt.ST|opt.TB, budget, rng)
	if ok {
		return res, nil
	}
	// Temporal blocking unusable for this stencil: fall back to the plain
	// streaming generator.
	spent := res.Evaluations
	res, ok = searchOC(m, w, arch, opt.ST, budget, rng)
	res.Evaluations += spent
	if !ok {
		return Result{}, fmt.Errorf("baseline: AN5D found no runnable setting for %s on %s", w.S.Name, arch.Name)
	}
	return res, nil
}

// Artemis is the high-impact-first greedy tuner.
type Artemis struct{}

// Name implements Strategy.
func (Artemis) Name() string { return "Artemis" }

// artemisCandidates are the streaming extensions Artemis explores after
// tuning the base streaming schedule.
var artemisCandidates = []opt.Opt{
	opt.ST | opt.RT,
	opt.ST | opt.PR,
	opt.ST | opt.RT | opt.PR,
	opt.ST | opt.BM,
	opt.ST | opt.CM | opt.PR,
}

// Tune implements Strategy.
func (Artemis) Tune(m *sim.Model, w sim.Workload, arch gpu.Arch, budget int, seed int64) (Result, error) {
	if budget < 1 {
		return Result{}, fmt.Errorf("baseline: Artemis budget %d < 1", budget)
	}
	rng := rand.New(rand.NewSource(seed))
	spent := 0

	// Phase 1: tune the high-impact base optimization (streaming).
	half := budget / 2
	if half < 1 {
		half = 1
	}
	best, found := searchOC(m, w, arch, opt.ST, half, rng)
	spent += best.Evaluations

	// Phase 2: spread the remaining budget over the candidate extensions.
	remaining := budget - spent
	per := remaining / len(artemisCandidates)
	if per < 1 {
		per = 1
	}
	for _, oc := range artemisCandidates {
		if spent >= budget {
			break
		}
		b := per
		if b > budget-spent {
			b = budget - spent
		}
		res, ok := searchOC(m, w, arch, oc, b, rng)
		spent += res.Evaluations
		if ok && (!found || res.Time < best.Time) {
			best = res
			found = true
		}
	}
	if !found {
		return Result{}, fmt.Errorf("baseline: Artemis found no runnable setting for %s on %s", w.S.Name, arch.Name)
	}
	best.Evaluations = spent
	return best, nil
}
