// Package merge implements the paper's OC-grouping step (Secs. III-C and
// IV-D): optimization combinations whose per-stencil best times are highly
// Pearson-correlated behave interchangeably, so they are merged—via
// union-find over the most correlated pairs—until a target number of
// prediction classes (5 in the paper) remains. Each class elects the OC
// that wins most stencils as its representative prediction target.
package merge

import (
	"context"
	"fmt"
	"math"
	"sort"

	"stencilmart/internal/opt"
	"stencilmart/internal/par"
	"stencilmart/internal/stats"
)

// Pair is a correlated OC pair.
type Pair struct {
	// A and B index opt.Combinations, with A < B.
	A, B int
	// PCC is the absolute Pearson correlation of the two OCs' best-time
	// vectors over the stencil corpus.
	PCC float64
}

// minCommon is the minimum number of stencils two OCs must both run on
// for their correlation to count.
const minCommon = 3

// PCCMatrix computes the NaN-aware absolute pairwise Pearson correlations
// among the OC rows of a best-time matrix ([ocIdx][stencilIdx], NaN for
// crashes). Each stencil column is first normalized to log2(time/best)
// — the relative slowdown against the stencil's fastest OC — so the
// correlation captures "the effect of pairwise OCs on stencil computation
// is similar" (Sec. III-C) rather than the stencils' intrinsic
// magnitudes, which would otherwise correlate every OC pair near 1.
// Entries with too few common stencils or degenerate variance are NaN.
func PCCMatrix(best [][]float64) [][]float64 {
	n := len(best)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			out[i][j] = math.NaN()
		}
		out[i][i] = 1
	}
	if n == 0 {
		return out
	}
	// Per-stencil best over non-crashed OCs.
	nStencils := len(best[0])
	colBest := make([]float64, nStencils)
	for s := range colBest {
		colBest[s] = math.Inf(1)
		for i := range best {
			if v := best[i][s]; !math.IsNaN(v) && v < colBest[s] {
				colBest[s] = v
			}
		}
	}
	// Rows compute in parallel: row i owns out[i][j] and out[j][i] for all
	// j > i, and no other row writes those cells, so the matrix is
	// identical to the serial double loop.
	par.ForEach(context.Background(), n, 0, func(i int) error {
		for j := i + 1; j < n; j++ {
			var xs, ys []float64
			for s := range best[i] {
				if !math.IsNaN(best[i][s]) && !math.IsNaN(best[j][s]) {
					xs = append(xs, math.Log2(best[i][s]/colBest[s]))
					ys = append(ys, math.Log2(best[j][s]/colBest[s]))
				}
			}
			if len(xs) < minCommon {
				continue
			}
			r, err := stats.Pearson(xs, ys)
			if err != nil {
				continue
			}
			out[i][j] = math.Abs(r)
			out[j][i] = out[i][j]
		}
		return nil
	})
	return out
}

// TopPairs returns the k most correlated OC pairs in descending PCC
// order, skipping NaN entries. Fewer than k pairs may be returned.
func TopPairs(pcc [][]float64, k int) []Pair {
	var pairs []Pair
	for i := range pcc {
		for j := i + 1; j < len(pcc); j++ {
			if !math.IsNaN(pcc[i][j]) {
				pairs = append(pairs, Pair{A: i, B: j, PCC: pcc[i][j]})
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].PCC != pairs[b].PCC {
			return pairs[a].PCC > pairs[b].PCC
		}
		if pairs[a].A != pairs[b].A {
			return pairs[a].A < pairs[b].A
		}
		return pairs[a].B < pairs[b].B
	})
	if k < len(pairs) {
		pairs = pairs[:k]
	}
	return pairs
}

// BestCounts returns, per OC, the number of stencils for which that OC
// achieves the minimum time (Fig. 2's distribution).
func BestCounts(best [][]float64) []int {
	counts := make([]int, len(best))
	if len(best) == 0 {
		return counts
	}
	for s := range best[0] {
		winner, wt := -1, math.Inf(1)
		for ci := range best {
			t := best[ci][s]
			if !math.IsNaN(t) && t < wt {
				winner, wt = ci, t
			}
		}
		if winner >= 0 {
			counts[winner]++
		}
	}
	return counts
}

// IntersectionFraction computes the size of the intersection of the
// per-architecture top-k pair sets relative to k (the Fig. 3 "28% of the
// total" statistic).
func IntersectionFraction(matrices [][][]float64, k int) (float64, error) {
	if len(matrices) == 0 {
		return 0, fmt.Errorf("merge: no matrices")
	}
	type key struct{ a, b int }
	common := map[key]int{}
	for _, m := range matrices {
		for _, p := range TopPairs(PCCMatrix(m), k) {
			common[key{p.A, p.B}]++
		}
	}
	inter := 0
	for _, c := range common {
		if c == len(matrices) {
			inter++
		}
	}
	return float64(inter) / float64(k), nil
}

// Grouping maps OCs to merged prediction classes.
type Grouping struct {
	// GroupOf maps an OC index (into opt.Combinations) to its class.
	GroupOf []int
	// Groups lists member OC indices per class.
	Groups [][]int
	// Reps holds the representative OC index per class: the member that
	// wins the most stencils across architectures.
	Reps []int
}

// NumClasses returns the number of merged classes.
func (g Grouping) NumClasses() int { return len(g.Groups) }

// RepOC returns the representative OC of a class.
func (g Grouping) RepOC(class int) opt.Opt { return opt.Combinations()[g.Reps[class]] }

// Build merges the OCs down to target classes using the average pairwise
// PCC across all architectures' best-time matrices, unioning the most
// correlated pairs first. Representatives are elected by summed
// best-stencil counts across architectures.
func Build(matrices [][][]float64, target int) (Grouping, error) {
	if len(matrices) == 0 {
		return Grouping{}, fmt.Errorf("merge: no matrices")
	}
	n := len(matrices[0])
	if target < 1 || target > n {
		return Grouping{}, fmt.Errorf("merge: target %d outside [1,%d]", target, n)
	}

	// Average the per-architecture PCCs, NaN-aware.
	avg := make([][]float64, n)
	cnt := make([][]int, n)
	for i := range avg {
		avg[i] = make([]float64, n)
		cnt[i] = make([]int, n)
	}
	for _, m := range matrices {
		if len(m) != n {
			return Grouping{}, fmt.Errorf("merge: matrix OC count %d != %d", len(m), n)
		}
		pcc := PCCMatrix(m)
		for i := range pcc {
			for j := range pcc[i] {
				if !math.IsNaN(pcc[i][j]) {
					avg[i][j] += pcc[i][j]
					cnt[i][j]++
				}
			}
		}
	}
	for i := range avg {
		for j := range avg[i] {
			if cnt[i][j] > 0 {
				avg[i][j] /= float64(cnt[i][j])
			} else {
				avg[i][j] = math.NaN()
			}
		}
	}

	// Average-linkage agglomerative clustering: repeatedly merge the two
	// clusters with the highest mean cross-pair correlation, skipping
	// pairs whose PCC is undefined (crash-dominated OCs). Average linkage
	// keeps genuinely interchangeable OC families (e.g. the ST_TB
	// variants) in one class without the chaining a single-linkage
	// union-find exhibits, so every class retains "sufficient data
	// objects" to train on (Sec. IV-D).
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	linkage := func(a, b []int) float64 {
		var sum float64
		cnt := 0
		for _, i := range a {
			for _, j := range b {
				if v := avg[i][j]; !math.IsNaN(v) {
					sum += v
					cnt++
				}
			}
		}
		if cnt == 0 {
			return math.Inf(-1) // uncorrelatable: merge only as a last resort
		}
		return sum / float64(cnt)
	}
	for len(clusters) > target {
		bi, bj, best := -1, -1, math.Inf(-1)
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if l := linkage(clusters[i], clusters[j]); l > best {
					best, bi, bj = l, i, j
				}
			}
		}
		clusters[bi] = append(clusters[bi], clusters[bj]...)
		clusters = append(clusters[:bj], clusters[bj+1:]...)
	}

	// Assign dense class ids; sort members for deterministic output.
	g := Grouping{GroupOf: make([]int, n)}
	for c, members := range clusters {
		sort.Ints(members)
		g.Groups = append(g.Groups, members)
		for _, m := range members {
			g.GroupOf[m] = c
		}
	}

	// Elect representatives by pooled best counts.
	total := make([]int, n)
	for _, m := range matrices {
		for ci, c := range BestCounts(m) {
			total[ci] += c
		}
	}
	g.Reps = make([]int, len(g.Groups))
	for c, members := range g.Groups {
		best := members[0]
		for _, m := range members[1:] {
			if total[m] > total[best] {
				best = m
			}
		}
		g.Reps[c] = best
	}
	return g, nil
}

// Validate checks grouping invariants against the OC universe.
func (g Grouping) Validate() error {
	if len(g.GroupOf) != opt.NumCombinations {
		return fmt.Errorf("merge: grouping covers %d OCs, want %d", len(g.GroupOf), opt.NumCombinations)
	}
	seen := make([]bool, len(g.GroupOf))
	for c, members := range g.Groups {
		if len(members) == 0 {
			return fmt.Errorf("merge: empty class %d", c)
		}
		repOK := false
		for _, m := range members {
			if seen[m] {
				return fmt.Errorf("merge: OC %d in two classes", m)
			}
			seen[m] = true
			if g.GroupOf[m] != c {
				return fmt.Errorf("merge: OC %d groupOf mismatch", m)
			}
			if m == g.Reps[c] {
				repOK = true
			}
		}
		if !repOK {
			return fmt.Errorf("merge: class %d representative not a member", c)
		}
	}
	for i, s := range seen {
		if !s {
			return fmt.Errorf("merge: OC %d unassigned", i)
		}
	}
	return nil
}
