package merge

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"stencilmart/internal/opt"
	"stencilmart/internal/testutil"
)

// synthBest builds a best-time matrix with a realistic share of NaN
// (crashed) cells.
func synthBest(seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	m := make([][]float64, opt.NumCombinations)
	for i := range m {
		m[i] = make([]float64, 24)
		for j := range m[i] {
			if rng.Float64() < 0.15 {
				m[i][j] = math.NaN()
				continue
			}
			m[i][j] = math.Exp(rng.NormFloat64()) * 1e-3
		}
	}
	return m
}

// TestPCCMatrixDeterministicUnderGOMAXPROCS is the differential check
// for the row-parallel correlation matrix: results must be bit-identical
// to the single-proc run.
func TestPCCMatrixDeterministicUnderGOMAXPROCS(t *testing.T) {
	best := synthBest(31)
	var serial, parallel [][]float64
	testutil.WithGOMAXPROCS(t, 1, func() { serial = PCCMatrix(best) })
	testutil.WithGOMAXPROCS(t, runtime.NumCPU(), func() { parallel = PCCMatrix(best) })
	for i := range serial {
		for j := range serial[i] {
			if math.Float64bits(serial[i][j]) != math.Float64bits(parallel[i][j]) {
				t.Fatalf("pcc[%d][%d]: serial %v != parallel %v", i, j, serial[i][j], parallel[i][j])
			}
		}
	}
}

// TestPCCMatrixSymmetric checks the invariant the row-parallel writes
// rely on: out[i][j] and out[j][i] are written once, by row min(i,j).
func TestPCCMatrixSymmetric(t *testing.T) {
	pcc := PCCMatrix(synthBest(77))
	for i := range pcc {
		if pcc[i][i] != 1 {
			t.Fatalf("diagonal [%d] = %v, want 1", i, pcc[i][i])
		}
		for j := range pcc[i] {
			a, b := pcc[i][j], pcc[j][i]
			if math.IsNaN(a) != math.IsNaN(b) || (!math.IsNaN(a) && a != b) {
				t.Fatalf("pcc[%d][%d]=%v but pcc[%d][%d]=%v", i, j, a, j, i, b)
			}
		}
	}
}
