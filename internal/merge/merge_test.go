package merge

import (
	"context"
	"math"
	"testing"

	"stencilmart/internal/gen"
	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/profile"
	"stencilmart/internal/stencil"
)

func TestPCCMatrixBasics(t *testing.T) {
	nan := math.NaN()
	best := [][]float64{
		{1, 2, 3, 4},
		{2, 4, 6, 8},     // perfectly correlated with row 0
		{4, 3, 2, 1},     // perfectly anti-correlated; |PCC| = 1
		{nan, nan, 1, 2}, // too few common points
	}
	pcc := PCCMatrix(best)
	// Row 1 is exactly 2x row 0: in relative-slowdown space their columns
	// differ by a constant, so the correlation is exactly 1.
	if math.Abs(pcc[0][1]-1) > 1e-9 {
		t.Errorf("pcc[0][1] = %g, want 1", pcc[0][1])
	}
	// Anti-correlated raw rows remain correlated in |PCC| but not
	// perfectly once normalized; the value must be finite and in (0, 1].
	if math.IsNaN(pcc[0][2]) || pcc[0][2] <= 0 || pcc[0][2] > 1 {
		t.Errorf("|pcc[0][2]| = %g outside (0,1]", pcc[0][2])
	}
	if !math.IsNaN(pcc[0][3]) {
		t.Errorf("pcc with <3 common stencils = %g, want NaN", pcc[0][3])
	}
	if pcc[1][0] != pcc[0][1] {
		t.Error("matrix not symmetric")
	}
	if pcc[2][2] != 1 {
		t.Error("diagonal != 1")
	}
}

func TestTopPairsOrderAndLimit(t *testing.T) {
	best := [][]float64{
		{1, 2, 3, 4, 5},
		{1.1, 2.2, 2.9, 4.2, 5.1},
		{5, 1, 4, 2, 3},
	}
	pairs := TopPairs(PCCMatrix(best), 2)
	if len(pairs) != 2 {
		t.Fatalf("%d pairs", len(pairs))
	}
	if pairs[0].PCC < pairs[1].PCC {
		t.Error("pairs not in descending PCC order")
	}
	if pairs[0].A != 0 || pairs[0].B != 1 {
		t.Errorf("top pair = (%d,%d), want (0,1)", pairs[0].A, pairs[0].B)
	}
}

func TestBestCounts(t *testing.T) {
	nan := math.NaN()
	best := [][]float64{
		{1, 5, nan},
		{2, 4, 7},
		{3, nan, 6},
	}
	counts := BestCounts(best)
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 1 {
		t.Errorf("counts = %v", counts)
	}
	allNaN := [][]float64{{nan}, {nan}}
	if c := BestCounts(allNaN); c[0] != 0 || c[1] != 0 {
		t.Errorf("all-NaN counts = %v", c)
	}
}

func realMatrices(t *testing.T) ([][][]float64, *profile.Dataset) {
	t.Helper()
	corpus, err := gen.MixedCorpus(10, 8, stencil.MaxOrder, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := profile.NewProfiler(6, 11)
	d, err := p.Collect(context.Background(), corpus, gpu.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	var ms [][][]float64
	for ai := range d.Archs {
		ms = append(ms, d.BestTimeMatrix(ai))
	}
	return ms, d
}

func TestBuildGroupingOnRealData(t *testing.T) {
	ms, _ := realMatrices(t)
	g, err := Build(ms, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumClasses() != 5 {
		t.Fatalf("%d classes, want 5", g.NumClasses())
	}
	total := 0
	for _, members := range g.Groups {
		total += len(members)
	}
	if total != opt.NumCombinations {
		t.Fatalf("classes cover %d OCs, want %d", total, opt.NumCombinations)
	}
	for c := range g.Groups {
		if !g.RepOC(c).Valid() {
			t.Errorf("class %d rep OC invalid", c)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, 5); err == nil {
		t.Error("no matrices accepted")
	}
	ms, _ := realMatrices(t)
	if _, err := Build(ms, 0); err == nil {
		t.Error("target 0 accepted")
	}
	if _, err := Build(ms, 10_000); err == nil {
		t.Error("absurd target accepted")
	}
}

func TestIntersectionFraction(t *testing.T) {
	ms, _ := realMatrices(t)
	frac, err := IntersectionFraction(ms, 100)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0 || frac > 1 {
		t.Fatalf("fraction %g outside [0,1]", frac)
	}
	// The StencilOC noise term is shared across architectures, so a
	// sizeable intersection must exist (paper reports 28%).
	if frac < 0.05 {
		t.Errorf("intersection fraction %.2f implausibly low", frac)
	}
	same, err := IntersectionFraction([][][]float64{ms[0], ms[0]}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if same != 1 {
		t.Errorf("self-intersection = %g, want 1", same)
	}
	if _, err := IntersectionFraction(nil, 10); err == nil {
		t.Error("empty input accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	ms, _ := realMatrices(t)
	g, err := Build(ms, 5)
	if err != nil {
		t.Fatal(err)
	}
	bad := g
	bad.Reps = append([]int(nil), g.Reps...)
	bad.Reps[0] = -1
	if err := bad.Validate(); err == nil {
		t.Error("corrupted representative accepted")
	}
}
