package persist

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const (
	testWALKind    = "test-journal"
	testWALVersion = 3
)

type walMeta struct {
	Seed  int64 `json:"seed"`
	Cells int   `json:"cells"`
}

type walCell struct {
	Index int     `json:"index"`
	Value float64 `json:"value"`
}

// openTestWAL opens/creates a log and fails the test on error.
func openTestWAL(t *testing.T, path string) (*WAL, *WALReplay) {
	t.Helper()
	w, replay, err := OpenWAL(path, testWALKind, testWALVersion, walMeta{Seed: 9, Cells: 4})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	return w, replay
}

func appendCells(t *testing.T, w *WAL, idx ...int) {
	t.Helper()
	for _, i := range idx {
		if err := w.Append(walCell{Index: i, Value: float64(i) * 1.5}); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
}

func decodeCells(t *testing.T, replay *WALReplay) []walCell {
	t.Helper()
	out := make([]walCell, len(replay.Records))
	for i, raw := range replay.Records {
		if err := json.Unmarshal(raw, &out[i]); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	return out
}

// TestWALRoundTrip appends, reopens, and replays every record plus the
// original meta.
func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	w, replay := openTestWAL(t, path)
	if len(replay.Records) != 0 || replay.TruncatedBytes != 0 {
		t.Fatalf("fresh log replayed %+v", replay)
	}
	appendCells(t, w, 0, 1, 2)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2, replay2 := openTestWAL(t, path)
	defer w2.Close()
	var meta walMeta
	if err := json.Unmarshal(replay2.Meta, &meta); err != nil || meta.Seed != 9 || meta.Cells != 4 {
		t.Fatalf("meta %+v (err %v), want seed 9 cells 4", meta, err)
	}
	cells := decodeCells(t, replay2)
	if len(cells) != 3 || cells[2].Index != 2 || cells[2].Value != 3.0 {
		t.Fatalf("replayed %+v", cells)
	}
	if replay2.TruncatedBytes != 0 {
		t.Fatalf("clean log reported %d truncated bytes", replay2.TruncatedBytes)
	}

	// Appending after a resume extends the same log.
	appendCells(t, w2, 3)
	w2.Close()
	_, replay3 := openTestWAL(t, path)
	if got := len(replay3.Records); got != 4 {
		t.Fatalf("after resumed append: %d records, want 4", got)
	}
}

// TestWALTruncatedTail simulates a kill mid-append: the partial final
// line is dropped and physically truncated, earlier records survive.
func TestWALTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	w, _ := openTestWAL(t, path)
	appendCells(t, w, 0, 1, 2)
	w.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := raw[:len(raw)-7] // chop into the last record
	if err := os.WriteFile(path, cut, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, replay := openTestWAL(t, path)
	w2.Close()
	if len(replay.Records) != 2 {
		t.Fatalf("replayed %d records, want 2 intact", len(replay.Records))
	}
	if replay.TruncatedBytes == 0 {
		t.Fatal("truncation went unreported")
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len(cut)) - replay.TruncatedBytes; st.Size() != want {
		t.Fatalf("file is %d bytes after tail truncation, want %d", st.Size(), want)
	}
}

// TestWALCorruptRecord flips payload bytes mid-log: the checksum catches
// it and the damaged record plus everything after it is dropped.
func TestWALCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	w, _ := openTestWAL(t, path)
	appendCells(t, w, 0, 1, 2, 3)
	w.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	// lines[0] is the header; corrupt record 1 (lines[2]) in-place without
	// breaking its JSON framing: flip a digit inside the payload.
	lines[2] = strings.Replace(lines[2], `"value"`, `"vAlue"`, 1)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	w2, replay := openTestWAL(t, path)
	defer w2.Close()
	cells := decodeCells(t, replay)
	if len(cells) != 1 || cells[0].Index != 0 {
		t.Fatalf("replayed %+v, want only record 0 before the damage", cells)
	}
	if replay.TruncatedBytes == 0 {
		t.Fatal("corrupt record not counted as truncated tail")
	}

	// The log must stay usable: re-append the dropped tail and replay all.
	appendCells(t, w2, 1, 2, 3)
	w2.Close()
	_, replay2 := openTestWAL(t, path)
	if got := len(replay2.Records); got != 4 {
		t.Fatalf("after repair: %d records, want 4", got)
	}
}

// TestWALVersionMismatch rejects logs written by another format version
// with the persist version error class.
func TestWALVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	w, _ := openTestWAL(t, path)
	w.Close()

	_, _, err := OpenWAL(path, testWALKind, testWALVersion+1, walMeta{})
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("got %v, want *VersionError", err)
	}
	_, _, err = OpenWAL(path, "other-kind", testWALVersion, walMeta{})
	var ke *KindError
	if !errors.As(err, &ke) {
		t.Fatalf("got %v, want *KindError", err)
	}
}

// TestWALHeaderCorrupt rejects a log whose header line is damaged.
func TestWALHeaderCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	if err := os.WriteFile(path, []byte(`{"magic":"stencilmart-checkpo`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenWAL(path, testWALKind, testWALVersion, walMeta{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}
