package persist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// This file implements the append-only write-ahead log the resumable
// profiling journal rides on. The format is line-oriented JSON:
//
//	header line: {"magic", "kind", "version", "checksum", "payload": meta}
//	record line: {"checksum": sha256(payload), "payload": {...}}
//
// The header reuses the checkpoint envelope, so magic/kind/version
// verification and its error classes are shared. Each record carries its
// own payload checksum; a record is appended with one Write call ending
// in '\n', so a crash mid-append leaves at most one partial final line.
// Replay verifies records in order and stops at the first damaged one,
// reporting the byte offset of the good prefix — the caller truncates
// there and re-does only the damaged tail.

// walRecord frames one appended payload.
type walRecord struct {
	Checksum string          `json:"checksum"`
	Payload  json.RawMessage `json:"payload"`
}

// WALReplay is what OpenWAL recovered from an existing log.
type WALReplay struct {
	// Meta is the header payload exactly as first written.
	Meta json.RawMessage
	// Records holds every intact record payload in append order.
	Records []json.RawMessage
	// TruncatedBytes counts bytes dropped from a damaged tail (0 for a
	// clean log).
	TruncatedBytes int64
}

// WAL is an open, append-position write-ahead log. Append is safe for
// concurrent use.
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenWAL opens (or creates) the log at path. On creation the header is
// written with the given meta payload and the replay is empty. On an
// existing log the header's magic, kind, and version are verified
// (ErrMagic, *KindError, *VersionError, ErrCorrupt), intact records are
// replayed, and a damaged tail — a corrupt, tampered, or partially
// written suffix — is physically truncated away so appends continue from
// the last good record. Callers are responsible for comparing the
// replayed Meta against their own before trusting the records.
func OpenWAL(path, kind string, version int, meta any) (*WAL, *WALReplay, error) {
	st, err := os.Stat(path)
	exists := err == nil && st.Size() > 0
	if !exists {
		return createWAL(path, kind, version, meta)
	}

	replay, goodBytes, err := replayWAL(path, kind, version)
	if err != nil {
		return nil, nil, err
	}
	if replay.TruncatedBytes > 0 {
		if err := os.Truncate(path, goodBytes); err != nil {
			return nil, nil, fmt.Errorf("persist: truncate damaged wal tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &WAL{f: f, path: path}, replay, nil
}

// ReadWAL replays the log at path without opening it for append and
// without truncating a damaged tail — the read-only path merge steps
// use to inspect shard journals they do not own. Header verification
// and record recovery match OpenWAL exactly; a damaged tail is reported
// in TruncatedBytes but left on disk.
func ReadWAL(path, kind string, version int) (*WALReplay, error) {
	replay, _, err := replayWAL(path, kind, version)
	return replay, err
}

// createWAL starts a fresh log with a header line.
func createWAL(path, kind string, version int, meta any) (*WAL, *WALReplay, error) {
	var buf bytes.Buffer
	if err := Write(&buf, kind, version, meta); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, nil, err
	}
	raw, err := json.Marshal(meta)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return &WAL{f: f, path: path}, &WALReplay{Meta: raw}, nil
}

// replayWAL reads the header and every intact record, returning the byte
// length of the good prefix.
func replayWAL(path, kind string, version int) (*WALReplay, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()

	r := bufio.NewReader(f)
	header, err := r.ReadBytes('\n')
	if err != nil {
		// A log without even a complete header line is corrupt outright.
		return nil, 0, fmt.Errorf("%w: wal header: truncated", ErrCorrupt)
	}
	var meta json.RawMessage
	if err := Read(bytes.NewReader(header), kind, version, &meta); err != nil {
		return nil, 0, err
	}
	replay := &WALReplay{Meta: meta}
	good := int64(len(header))

	for {
		line, err := r.ReadBytes('\n')
		if len(line) == 0 && err == io.EOF {
			return replay, good, nil
		}
		// err != nil here means EOF with a partial (unterminated) line.
		if err != nil || !intactRecord(line, replay) {
			tail := int64(len(line)) + remaining(r)
			replay.TruncatedBytes = tail
			return replay, good, nil
		}
		good += int64(len(line))
	}
}

// intactRecord decodes and checksum-verifies one record line, appending
// its payload to the replay on success.
func intactRecord(line []byte, replay *WALReplay) bool {
	var rec walRecord
	if err := json.Unmarshal(line, &rec); err != nil {
		return false
	}
	if len(rec.Payload) == 0 || checksum(rec.Payload) != rec.Checksum {
		return false
	}
	replay.Records = append(replay.Records, rec.Payload)
	return true
}

// remaining counts the bytes left unread after a damaged record: they are
// all part of the tail being dropped.
func remaining(r *bufio.Reader) int64 {
	n, _ := io.Copy(io.Discard, r)
	return n
}

// Append marshals payload and appends one checksummed record, synced to
// disk before returning — a record that Append acknowledged survives a
// kill.
func (w *WAL) Append(payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("persist: marshal wal record: %w", err)
	}
	line, err := json.Marshal(walRecord{Checksum: checksum(raw), Payload: raw})
	if err != nil {
		return fmt.Errorf("persist: frame wal record: %w", err)
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(line); err != nil {
		return fmt.Errorf("persist: append wal record: %w", err)
	}
	return w.f.Sync()
}

// Close releases the underlying file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }
