// Package persist implements the versioned, checksummed checkpoint
// envelope every trained-model artifact uses. The format is stdlib-only
// JSON: a small envelope carrying a magic string, an artifact kind, a
// format version, and the SHA-256 of the payload bytes, with the payload
// embedded verbatim. Corrupt, truncated, or wrong-version files fail
// loudly at read time — the envelope is rejected before any payload field
// is interpreted, so a damaged checkpoint can never rehydrate into a
// silently-wrong predictor.
//
// Versioning policy: Version identifies the payload schema for a given
// Kind. Readers accept exactly the version they were built for; schema
// evolution bumps the version and (when needed) ships a migration reader.
// Unknown payload fields are ignored on read, so additive changes may
// keep the version; field renames, type changes, or semantic changes must
// bump it.
package persist

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Magic identifies a StencilMART checkpoint envelope.
const Magic = "stencilmart-checkpoint"

// Sentinel errors for the failure classes callers branch on.
var (
	// ErrMagic marks a file that is not a StencilMART checkpoint.
	ErrMagic = errors.New("persist: bad magic (not a stencilmart checkpoint)")
	// ErrChecksum marks a payload whose bytes do not hash to the recorded
	// checksum (bit rot, truncation inside the payload, hand edits).
	ErrChecksum = errors.New("persist: payload checksum mismatch")
	// ErrCorrupt marks an envelope that does not even decode (truncated
	// or garbage bytes).
	ErrCorrupt = errors.New("persist: corrupt or truncated checkpoint")
)

// VersionError reports a format-version mismatch.
type VersionError struct {
	Kind      string
	Got, Want int
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("persist: %s checkpoint version %d, this build reads version %d", e.Kind, e.Got, e.Want)
}

// KindError reports an artifact-kind mismatch (e.g. a dataset checkpoint
// fed to the framework loader).
type KindError struct {
	Got, Want string
}

func (e *KindError) Error() string {
	return fmt.Sprintf("persist: checkpoint holds %q, want %q", e.Got, e.Want)
}

// envelope is the on-disk frame around every payload.
type envelope struct {
	Magic    string          `json:"magic"`
	Kind     string          `json:"kind"`
	Version  int             `json:"version"`
	Checksum string          `json:"checksum"` // sha256 hex of Payload bytes
	Payload  json.RawMessage `json:"payload"`
}

// checksum hashes payload bytes to the envelope's hex digest.
func checksum(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// Write marshals payload and frames it in a checksummed envelope.
func Write(w io.Writer, kind string, version int, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("persist: marshal %s payload: %w", kind, err)
	}
	env := envelope{Magic: Magic, Kind: kind, Version: version, Checksum: checksum(raw), Payload: raw}
	enc := json.NewEncoder(w)
	if err := enc.Encode(env); err != nil {
		return fmt.Errorf("persist: write %s envelope: %w", kind, err)
	}
	return nil
}

// Read decodes an envelope, verifies magic, kind, version, and checksum
// in that order, and unmarshals the payload into out. Every verification
// failure maps to a distinct error (ErrMagic, *KindError, *VersionError,
// ErrChecksum, ErrCorrupt) so callers and tests can tell the failure
// classes apart.
func Read(r io.Reader, kind string, version int, out any) error {
	var env envelope
	dec := json.NewDecoder(r)
	if err := dec.Decode(&env); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if env.Magic != Magic {
		return ErrMagic
	}
	if env.Kind != kind {
		return &KindError{Got: env.Kind, Want: kind}
	}
	if env.Version != version {
		return &VersionError{Kind: kind, Got: env.Version, Want: version}
	}
	if checksum(env.Payload) != env.Checksum {
		return ErrChecksum
	}
	if err := json.Unmarshal(env.Payload, out); err != nil {
		return fmt.Errorf("%w: payload: %v", ErrCorrupt, err)
	}
	return nil
}

// WriteFile writes a checkpoint atomically: the envelope lands in a
// temporary sibling first and renames into place, so a crash mid-write
// never leaves a half-written file at the destination.
func WriteFile(path, kind string, version int, payload any) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ckpt-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := Write(tmp, kind, version, payload); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile reads a checkpoint from disk.
func ReadFile(path, kind string, version int, out any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Read(f, kind, version, out)
}
