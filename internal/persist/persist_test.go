package persist

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	Name  string    `json:"name"`
	Vals  []float64 `json:"vals"`
	Count int       `json:"count"`
}

func testPayload() payload {
	return payload{Name: "probe", Vals: []float64{1.5, -2.25, 0.0078125}, Count: 3}
}

func encode(t *testing.T, kind string, version int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, kind, version, testPayload()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	raw := encode(t, "test-kind", 3)
	var got payload
	if err := Read(bytes.NewReader(raw), "test-kind", 3, &got); err != nil {
		t.Fatal(err)
	}
	want := testPayload()
	if got.Name != want.Name || got.Count != want.Count || len(got.Vals) != len(want.Vals) {
		t.Fatalf("round trip got %+v, want %+v", got, want)
	}
	for i := range want.Vals {
		if got.Vals[i] != want.Vals[i] {
			t.Fatalf("val %d: %g != %g", i, got.Vals[i], want.Vals[i])
		}
	}
}

func TestTruncatedFileFails(t *testing.T) {
	raw := encode(t, "test-kind", 1)
	for _, cut := range []int{0, 1, len(raw) / 2, len(raw) - 2} {
		var got payload
		err := Read(bytes.NewReader(raw[:cut]), "test-kind", 1, &got)
		if err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(raw))
		}
	}
}

func TestBadMagicFails(t *testing.T) {
	raw := bytes.Replace(encode(t, "test-kind", 1), []byte(Magic), []byte("not-a-checkpoint-nope"), 1)
	var got payload
	if err := Read(bytes.NewReader(raw), "test-kind", 1, &got); !errors.Is(err, ErrMagic) {
		t.Fatalf("bad magic gave %v, want ErrMagic", err)
	}
}

func TestWrongVersionFails(t *testing.T) {
	raw := encode(t, "test-kind", 1)
	var got payload
	err := Read(bytes.NewReader(raw), "test-kind", 2, &got)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("version mismatch gave %v, want *VersionError", err)
	}
	if ve.Got != 1 || ve.Want != 2 || ve.Kind != "test-kind" {
		t.Fatalf("version error fields %+v", ve)
	}
}

func TestWrongKindFails(t *testing.T) {
	raw := encode(t, "dataset", 1)
	var got payload
	err := Read(bytes.NewReader(raw), "framework", 1, &got)
	var ke *KindError
	if !errors.As(err, &ke) {
		t.Fatalf("kind mismatch gave %v, want *KindError", err)
	}
	if ke.Got != "dataset" || ke.Want != "framework" {
		t.Fatalf("kind error fields %+v", ke)
	}
}

func TestTamperedPayloadFailsChecksum(t *testing.T) {
	raw := encode(t, "test-kind", 1)
	// Flip a value inside the payload without touching the envelope: the
	// recorded checksum no longer matches.
	tampered := bytes.Replace(raw, []byte(`"count":3`), []byte(`"count":4`), 1)
	if bytes.Equal(tampered, raw) {
		t.Fatal("tamper target not found")
	}
	var got payload
	if err := Read(bytes.NewReader(tampered), "test-kind", 1, &got); !errors.Is(err, ErrChecksum) {
		t.Fatalf("tampered payload gave %v, want ErrChecksum", err)
	}
}

func TestGarbageFailsCorrupt(t *testing.T) {
	for _, data := range [][]byte{[]byte("not json at all"), []byte(`[1,2,3]` + "garbage")} {
		var got payload
		err := Read(bytes.NewReader(data), "test-kind", 1, &got)
		if err == nil {
			t.Fatalf("garbage %q accepted", data)
		}
	}
	var got payload
	if err := Read(strings.NewReader("{{{"), "test-kind", 1, &got); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unparsable envelope gave %v, want ErrCorrupt", err)
	}
}

func TestPayloadTypeMismatchFails(t *testing.T) {
	// A decodable envelope whose payload does not match the target type
	// must fail as corrupt, not partially populate.
	env := envelope{Magic: Magic, Kind: "test-kind", Version: 1, Payload: json.RawMessage(`{"count":"not-a-number"}`)}
	env.Checksum = checksum(env.Payload)
	raw, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := Read(bytes.NewReader(raw), "test-kind", 1, &got); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("type mismatch gave %v, want ErrCorrupt", err)
	}
}

func TestWriteFileAtomicAndReadable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "probe.ckpt")
	if err := WriteFile(path, "test-kind", 1, testPayload()); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := ReadFile(path, "test-kind", 1, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "probe" || got.Count != 3 {
		t.Fatalf("file round trip got %+v", got)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d directory entries after WriteFile, want 1", len(entries))
	}
}
