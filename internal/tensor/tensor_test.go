package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"stencilmart/internal/gen"
	"stencilmart/internal/stencil"
)

func TestAssignStar2D(t *testing.T) {
	b := MustAssign(stencil.Star(2, 1))
	if b.Dims != 2 || len(b.Data) != Side*Side {
		t.Fatalf("bad tensor shape: dims=%d len=%d", b.Dims, len(b.Data))
	}
	if b.NNZ() != 5 {
		t.Errorf("NNZ = %d, want 5", b.NNZ())
	}
	if b.At(stencil.Point{}) != 1 {
		t.Error("center cell not set")
	}
	if b.At(stencil.Point{Dx: 1}) != 1 || b.At(stencil.Point{Dy: -1}) != 1 {
		t.Error("axis cells not set")
	}
	if b.At(stencil.Point{Dx: 1, Dy: 1}) != 0 {
		t.Error("diagonal cell set for star stencil")
	}
}

func TestAssign3DVolume(t *testing.T) {
	b := MustAssign(stencil.Box(3, 1))
	if len(b.Data) != Side*Side*Side {
		t.Fatalf("3-D tensor length %d, want %d", len(b.Data), Side*Side*Side)
	}
	if b.NNZ() != 27 {
		t.Errorf("NNZ = %d, want 27", b.NNZ())
	}
	want := 27.0 / float64(Side*Side*Side)
	if s := b.Sparsity(); math.Abs(s-want) > 1e-12 {
		t.Errorf("Sparsity = %g, want %g", s, want)
	}
}

func TestRoundTrip(t *testing.T) {
	for _, s := range stencil.RepresentativeAll() {
		b := MustAssign(s)
		back, err := b.Stencil(s.Name)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if back.NumPoints() != s.NumPoints() {
			t.Fatalf("%s: round trip lost points: %d -> %d", s.Name, s.NumPoints(), back.NumPoints())
		}
		for i := range s.Points {
			if s.Points[i] != back.Points[i] {
				t.Fatalf("%s: point %d differs after round trip", s.Name, i)
			}
		}
	}
}

func TestQuickRoundTripRandom(t *testing.T) {
	g2, _ := gen.New(gen.Options{Dims: 2}, 17)
	g3, _ := gen.New(gen.Options{Dims: 3}, 18)
	f := func(threeD bool) bool {
		g := g2
		if threeD {
			g = g3
		}
		s := g.Next()
		b := MustAssign(s)
		back, err := b.Stencil(s.Name)
		if err != nil || back.NumPoints() != s.NumPoints() {
			return false
		}
		for i := range s.Points {
			if s.Points[i] != back.Points[i] {
				return false
			}
		}
		return b.NNZ() == s.NumPoints()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFeaturesStar(t *testing.T) {
	f := Features(stencil.Star(2, 2))
	if len(f) != NumFeatures {
		t.Fatalf("feature length %d, want %d", len(f), NumFeatures)
	}
	if f[0] != 2 {
		t.Errorf("order feature = %g, want 2", f[0])
	}
	if f[1] != 9 {
		t.Errorf("nnz feature = %g, want 9", f[1])
	}
	if f[3] != 4 || f[4] != 4 || f[5] != 0 {
		t.Errorf("per-order nnz = %g,%g,%g want 4,4,0", f[3], f[4], f[5])
	}
	if math.Abs(f[7]-4.0/9) > 1e-12 {
		t.Errorf("nnzRatio_order1 = %g, want %g", f[7], 4.0/9)
	}
	if f[11] != 0 {
		t.Errorf("dims3 = %g for 2-D stencil", f[11])
	}
	if f[13] != 2 {
		t.Errorf("maxDist = %g, want 2", f[13])
	}
}

func TestFeaturesDims3Flag(t *testing.T) {
	if f := Features(stencil.Star(3, 1)); f[11] != 1 {
		t.Errorf("dims3 = %g for 3-D stencil", f[11])
	}
}

// Property: per-order ratios sum to (nnz-1)/nnz — everything except the
// central point — for any generated stencil.
func TestQuickRatioSum(t *testing.T) {
	g, _ := gen.New(gen.Options{Dims: 3}, 23)
	f := func(uint8) bool {
		s := g.Next()
		feats := Features(s)
		sum := feats[7] + feats[8] + feats[9] + feats[10]
		want := (feats[1] - 1) / feats[1]
		return math.Abs(sum-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestNormalizeColumns(t *testing.T) {
	rows := [][]float64{{2, 10, 0}, {4, 5, 0}, {1, 20, 0}}
	scale := NormalizeColumns(rows)
	if scale[0] != 4 || scale[1] != 20 || scale[2] != 1 {
		t.Fatalf("scale = %v", scale)
	}
	if rows[0][0] != 0.5 || rows[2][1] != 1 {
		t.Errorf("normalized rows = %v", rows)
	}
	for _, r := range rows {
		for _, v := range r {
			if v < 0 || v > 1 {
				t.Fatalf("value %g outside [0,1]", v)
			}
		}
	}
	applied := ApplyScale([]float64{2, 10, 7}, scale)
	if applied[0] != 0.5 || applied[1] != 0.5 || applied[2] != 7 {
		t.Errorf("ApplyScale = %v", applied)
	}
}

func TestNormalizeColumnsEmpty(t *testing.T) {
	if scale := NormalizeColumns(nil); scale != nil {
		t.Errorf("scale for empty input = %v, want nil", scale)
	}
}
