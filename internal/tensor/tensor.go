// Package tensor implements the paper's stencil representations: binary
// sparse tensors (Fig. 6 tensor assignment, consumed by the convolutional
// models) and the hand-engineered neighboring feature set (Table II,
// consumed by the gradient-boosted models and the MLP regressor).
package tensor

import (
	"fmt"

	"stencilmart/internal/stencil"
)

// Side is the edge length of the assigned tensor: 2*MaxOrder+1 cells per
// dimension, so a 2-D stencil becomes a 9x9 tensor and a 3-D stencil a
// 9x9x9 tensor.
const Side = 2*stencil.MaxOrder + 1

// Binary is the assigned binary tensor of a stencil's access pattern.
// Values are stored as float64 so the tensor feeds directly into the
// neural-network input layer; each cell is 0 or 1.
type Binary struct {
	// Dims is 2 or 3, matching the source stencil.
	Dims int
	// Data holds Side^Dims cells in row-major order, indexed as
	// [(z*Side+y)*Side+x] with the stencil center at the middle cell.
	Data []float64
}

// VolumeLen is the flat cell count of an assigned tensor: Side^dims.
func VolumeLen(dims int) int {
	size := Side * Side
	if dims == 3 {
		size *= Side
	}
	return size
}

// Assign rasterizes the stencil's access pattern into a binary tensor with
// the central point at the middle cell, per Fig. 6 of the paper.
func Assign(s stencil.Stencil) (Binary, error) {
	b := Binary{Dims: s.Dims, Data: make([]float64, VolumeLen(s.Dims))}
	if err := AssignInto(s, b.Data); err != nil {
		return Binary{}, err
	}
	return b, nil
}

// AssignInto rasterizes the stencil into dst (len VolumeLen(s.Dims)),
// zeroing it first, without allocating — the arena-backed counterpart of
// Assign for the serving hot path.
func AssignInto(s stencil.Stencil, dst []float64) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("tensor: %w", err)
	}
	if len(dst) != VolumeLen(s.Dims) {
		return fmt.Errorf("tensor: assign dst %d, want %d", len(dst), VolumeLen(s.Dims))
	}
	for i := range dst {
		dst[i] = 0
	}
	b := Binary{Dims: s.Dims}
	for _, p := range s.Points {
		dst[b.index(p)] = 1
	}
	return nil
}

// MustAssign is Assign, panicking on error; for statically valid stencils.
func MustAssign(s stencil.Stencil) Binary {
	b, err := Assign(s)
	if err != nil {
		panic(err)
	}
	return b
}

// index maps a stencil offset to its tensor cell.
func (b Binary) index(p stencil.Point) int {
	const c = stencil.MaxOrder
	x, y, z := p.Dx+c, p.Dy+c, p.Dz+c
	if b.Dims == 2 {
		return y*Side + x
	}
	return (z*Side+y)*Side + x
}

// At returns the cell value for a stencil offset.
func (b Binary) At(p stencil.Point) float64 { return b.Data[b.index(p)] }

// NNZ returns the number of non-zero cells.
func (b Binary) NNZ() int {
	n := 0
	for _, v := range b.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Sparsity returns the density of non-zeros: NNZ over the tensor volume.
func (b Binary) Sparsity() float64 {
	return float64(b.NNZ()) / float64(len(b.Data))
}

// Stencil reconstructs the access pattern encoded by the tensor. It is the
// inverse of Assign and is used by round-trip property tests.
func (b Binary) Stencil(name string) (stencil.Stencil, error) {
	const c = stencil.MaxOrder
	var pts []stencil.Point
	zs := 1
	if b.Dims == 3 {
		zs = Side
	}
	for z := 0; z < zs; z++ {
		for y := 0; y < Side; y++ {
			for x := 0; x < Side; x++ {
				i := (z*Side+y)*Side + x
				if b.Dims == 2 {
					i = y*Side + x
				}
				if b.Data[i] != 0 {
					p := stencil.Point{Dx: x - c, Dy: y - c}
					if b.Dims == 3 {
						p.Dz = z - c
					}
					pts = append(pts, p)
				}
			}
		}
	}
	return stencil.New(name, b.Dims, pts)
}
