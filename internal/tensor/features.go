package tensor

import (
	"fmt"
	"math"

	"stencilmart/internal/stencil"
)

// FeatureNames lists the Table II candidate feature set in vector order:
// order, nnz, sparsity, then nnz and nnzRatio per neighbor order 1..4,
// followed by geometric extensions that encode what the binary tensor
// carries implicitly: a dims indicator, mean and max Euclidean distance
// of accessed neighbors, and the memory-footprint line counts (distinct
// grid lines touched per output point, and per plane once the default
// streaming dimension is collapsed) that govern how profitable streaming
// and temporal blocking are.
var FeatureNames = []string{
	"order", "nnz", "sparsity",
	"nnz_order1", "nnz_order2", "nnz_order3", "nnz_order4",
	"nnzRatio_order1", "nnzRatio_order2", "nnzRatio_order3", "nnzRatio_order4",
	"dims3", "meanDist", "maxDist",
	"lines", "planeLines",
}

// NumFeatures is the length of the Table II feature vector.
var NumFeatures = len(FeatureNames)

// Features extracts the Table II candidate feature set from a stencil.
// All counts are raw; ratios are relative to the total non-zero count.
func Features(s stencil.Stencil) []float64 {
	f := make([]float64, NumFeatures)
	FeaturesInto(s, f)
	return f
}

// FeaturesInto writes Features into f (len NumFeatures) without
// allocating, for serving-path callers encoding into arena scratch. Like
// Features it panics on an invalid stencil. Sparsity comes from the point
// count directly — Validate guarantees the canonical point set is
// duplicate-free, so it equals the assigned tensor's NNZ without
// materializing the tensor — and the per-order counts are tallied in one
// pass instead of through PointsAtOrder's filtered copies. Every value is
// the same float64 Features has always produced.
func FeaturesInto(s stencil.Stencil, f []float64) {
	if len(f) != NumFeatures {
		panic(fmt.Sprintf("tensor: features dst %d, want %d", len(f), NumFeatures))
	}
	if err := s.Validate(); err != nil {
		panic(fmt.Errorf("tensor: %w", err))
	}
	nnz := float64(s.NumPoints())
	f[0] = float64(s.Order())
	f[1] = nnz
	f[2] = nnz / float64(VolumeLen(s.Dims))
	var orders [stencil.MaxOrder + 1]float64
	var sum, maxd float64
	for _, p := range s.Points {
		orders[p.Order()]++
		d := p.Euclidean()
		sum += d
		if d > maxd {
			maxd = d
		}
	}
	for o := 1; o <= stencil.MaxOrder; o++ {
		f[2+o] = orders[o]
		f[6+o] = orders[o] / nnz
	}
	f[11] = 0
	if s.Dims == 3 {
		f[11] = 1
	}
	f[12] = sum / nnz
	f[13] = maxd
	f[14] = float64(stencil.LineCount(s))
	f[15] = float64(stencil.PlaneLineCount(s, 3))
}

// NormalizeColumns scales every column of a feature matrix to [0, 1] by
// dividing by the column maximum (the paper's normalization for MLP and
// ConvMLP inputs). Columns whose maximum is zero are left untouched. The
// returned scale slice allows applying the same normalization to test
// data: normalized[j] = raw[j] / scale[j].
func NormalizeColumns(rows [][]float64) (scale []float64) {
	if len(rows) == 0 {
		return nil
	}
	n := len(rows[0])
	scale = make([]float64, n)
	for _, r := range rows {
		for j, v := range r {
			if a := math.Abs(v); a > scale[j] {
				scale[j] = a
			}
		}
	}
	for j := range scale {
		if scale[j] == 0 {
			scale[j] = 1
		}
	}
	for _, r := range rows {
		for j := range r {
			r[j] /= scale[j]
		}
	}
	return scale
}

// ApplyScale normalizes a single feature vector with a scale previously
// returned by NormalizeColumns.
func ApplyScale(row, scale []float64) []float64 {
	out := make([]float64, len(row))
	for j, v := range row {
		out[j] = v / scale[j]
	}
	return out
}
