package tensor

import (
	"math"

	"stencilmart/internal/stencil"
)

// FeatureNames lists the Table II candidate feature set in vector order:
// order, nnz, sparsity, then nnz and nnzRatio per neighbor order 1..4,
// followed by geometric extensions that encode what the binary tensor
// carries implicitly: a dims indicator, mean and max Euclidean distance
// of accessed neighbors, and the memory-footprint line counts (distinct
// grid lines touched per output point, and per plane once the default
// streaming dimension is collapsed) that govern how profitable streaming
// and temporal blocking are.
var FeatureNames = []string{
	"order", "nnz", "sparsity",
	"nnz_order1", "nnz_order2", "nnz_order3", "nnz_order4",
	"nnzRatio_order1", "nnzRatio_order2", "nnzRatio_order3", "nnzRatio_order4",
	"dims3", "meanDist", "maxDist",
	"lines", "planeLines",
}

// NumFeatures is the length of the Table II feature vector.
var NumFeatures = len(FeatureNames)

// Features extracts the Table II candidate feature set from a stencil.
// All counts are raw; ratios are relative to the total non-zero count.
func Features(s stencil.Stencil) []float64 {
	f := make([]float64, NumFeatures)
	nnz := float64(s.NumPoints())
	f[0] = float64(s.Order())
	f[1] = nnz
	f[2] = MustAssign(s).Sparsity()
	for o := 1; o <= stencil.MaxOrder; o++ {
		cnt := float64(len(s.PointsAtOrder(o)))
		f[2+o] = cnt
		f[6+o] = cnt / nnz
	}
	if s.Dims == 3 {
		f[11] = 1
	}
	var sum, maxd float64
	for _, p := range s.Points {
		d := p.Euclidean()
		sum += d
		if d > maxd {
			maxd = d
		}
	}
	f[12] = sum / nnz
	f[13] = maxd
	f[14] = float64(stencil.LineCount(s))
	f[15] = float64(stencil.PlaneLineCount(s, 3))
	return f
}

// NormalizeColumns scales every column of a feature matrix to [0, 1] by
// dividing by the column maximum (the paper's normalization for MLP and
// ConvMLP inputs). Columns whose maximum is zero are left untouched. The
// returned scale slice allows applying the same normalization to test
// data: normalized[j] = raw[j] / scale[j].
func NormalizeColumns(rows [][]float64) (scale []float64) {
	if len(rows) == 0 {
		return nil
	}
	n := len(rows[0])
	scale = make([]float64, n)
	for _, r := range rows {
		for j, v := range r {
			if a := math.Abs(v); a > scale[j] {
				scale[j] = a
			}
		}
	}
	for j := range scale {
		if scale[j] == 0 {
			scale[j] = 1
		}
	}
	for _, r := range rows {
		for j := range r {
			r[j] /= scale[j]
		}
	}
	return scale
}

// ApplyScale normalizes a single feature vector with a scale previously
// returned by NormalizeColumns.
func ApplyScale(row, scale []float64) []float64 {
	out := make([]float64, len(row))
	for j, v := range row {
		out[j] = v / scale[j]
	}
	return out
}
