// Package par is the shared concurrency layer of the reproduction: a
// bounded worker pool whose results are collected in job-index order and
// whose errors aggregate deterministically, so every parallelized path
// (profiling, cross-validation training, boosting, PCC merging, the
// experiment runners) produces output byte-identical to its serial
// counterpart under any GOMAXPROCS or worker count. Workers pull the
// next job index from an atomic counter, which bounds goroutines without
// a job channel; determinism comes from jobs writing only to their own
// index and from sorting the error aggregate by index afterward.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 mean
// GOMAXPROCS, and the result is clamped to [1, jobs].
func Workers(requested, jobs int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// PanicError is a job panic converted to an error: the pool recovers
// panics in workers so one bad job cannot crash the whole process, and
// surfaces them through the same IndexedError aggregation as ordinary
// failures. Value is the recovered panic value and Stack the goroutine
// stack captured at recovery.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Transient marks recovered panics as retryable to retry layers that
// classify with a Transient() method: a panicking measurement is a fault
// to re-attempt, not a verdict about the cell.
func (e *PanicError) Transient() bool { return true }

// safeCall invokes fn(i), converting a panic into a *PanicError.
func safeCall(fn func(i int) error, i int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// IndexedError ties one job failure to the index it occurred at.
type IndexedError struct {
	Index int
	Err   error
}

// Error implements error.
func (e IndexedError) Error() string { return fmt.Sprintf("job %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e IndexedError) Unwrap() error { return e.Err }

// Errors aggregates every job failure of one pool run, sorted by job
// index — the same aggregate regardless of worker scheduling. The pool
// never returns an empty Errors value.
type Errors []IndexedError

// Error implements error, rendering the first failure and the total.
func (e Errors) Error() string {
	if len(e) == 1 {
		return e[0].Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d jobs failed: %v", len(e), e[0])
	if len(e) > 1 {
		fmt.Fprintf(&b, " (and %d more)", len(e)-1)
	}
	return b.String()
}

// Unwrap exposes the underlying errors to errors.Is/As.
func (e Errors) Unwrap() []error {
	out := make([]error, len(e))
	for i, ie := range e {
		out[i] = ie
	}
	return out
}

// First returns the failure with the lowest job index — the error a
// serial loop would have hit first.
func (e Errors) First() error { return e[0].Err }

// ForEach runs fn(i) for every i in [0, n) on at most `workers`
// goroutines (Workers semantics for workers <= 0). Every job runs even
// if earlier jobs fail; failures are aggregated into an Errors value
// ordered by index. A panicking job is recovered rather than crashing
// the process and surfaces as an IndexedError wrapping a *PanicError.
// Cancelling ctx stops new jobs from being dispatched and returns
// ctx.Err(); in-flight jobs complete first.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	w := Workers(workers, n)
	var errs Errors
	if w == 1 {
		// Serial fast path — identical semantics, no goroutines. This is
		// also the reference ordering the differential tests compare
		// parallel runs against.
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if err := safeCall(fn, i); err != nil {
				errs = append(errs, IndexedError{Index: i, Err: err})
			}
		}
		if len(errs) == 0 {
			return nil
		}
		return errs
	}

	var (
		next int64 = -1
		mu   sync.Mutex
		wg   sync.WaitGroup
	)
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			var local Errors
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n || ctx.Err() != nil {
					break
				}
				if err := safeCall(fn, i); err != nil {
					local = append(local, IndexedError{Index: i, Err: err})
				}
			}
			if len(local) > 0 {
				mu.Lock()
				errs = append(errs, local...)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(errs) == 0 {
		return nil
	}
	sort.Slice(errs, func(a, b int) bool { return errs[a].Index < errs[b].Index })
	return errs
}

// Map runs fn over [0, n) on the bounded pool and returns the results
// in index order. On any failure (or cancellation) the partial results
// are discarded and the aggregated error is returned.
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
