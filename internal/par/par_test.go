package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	cases := []struct {
		requested, jobs, want int
	}{
		{0, 100, runtime.GOMAXPROCS(0)},
		{-3, 100, runtime.GOMAXPROCS(0)},
		{4, 2, 2},
		{4, 100, 4},
		{1, 0, 1},
		{0, 1, 1},
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.jobs); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.jobs, got, c.want)
		}
	}
}

func TestMapIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		got, err := Map(context.Background(), 100, workers, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 0, 4, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("Map over 0 jobs = (%v, %v), want (nil, nil)", got, err)
	}
}

func TestForEachRunsEveryJobOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		const n = 257
		var counts [n]int32
		if err := ForEach(context.Background(), n, workers, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestErrorAggregationDeterministic(t *testing.T) {
	fail := map[int]bool{3: true, 41: true, 7: true}
	var want error
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(context.Background(), 50, workers, func(i int) error {
			if fail[i] {
				return fmt.Errorf("boom %d", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		var errs Errors
		if !errors.As(err, &errs) {
			t.Fatalf("workers=%d: error type %T", workers, err)
		}
		if len(errs) != len(fail) {
			t.Fatalf("workers=%d: %d errors, want %d", workers, len(errs), len(fail))
		}
		for k := 1; k < len(errs); k++ {
			if errs[k-1].Index >= errs[k].Index {
				t.Fatalf("workers=%d: errors not index-sorted: %v", workers, errs)
			}
		}
		if errs.First().Error() != "boom 3" {
			t.Fatalf("workers=%d: First() = %v, want boom 3", workers, errs.First())
		}
		if want == nil {
			want = err
		} else if err.Error() != want.Error() {
			t.Fatalf("workers=%d: aggregate %q differs from %q", workers, err, want)
		}
	}
}

func TestForEachAllJobsRunDespiteErrors(t *testing.T) {
	var ran int32
	err := ForEach(context.Background(), 20, 4, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i%2 == 0 {
			return errors.New("even")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected aggregate error")
	}
	if ran != 20 {
		t.Fatalf("ran %d jobs, want 20 (errors must not abort remaining work)", ran)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started int32
	err := ForEach(ctx, 1000, 2, func(i int) error {
		if atomic.AddInt32(&started, 1) == 4 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt32(&started); n >= 1000 {
		t.Fatalf("cancellation did not stop dispatch (%d jobs started)", n)
	}
}

func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := ForEach(ctx, 10, 4, func(i int) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("job ran despite pre-cancelled context")
	}
}

func TestIndexedErrorUnwrap(t *testing.T) {
	sentinel := errors.New("sentinel")
	err := ForEach(context.Background(), 5, 2, func(i int) error {
		if i == 2 {
			return fmt.Errorf("wrapped: %w", sentinel)
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is failed to find sentinel through %v", err)
	}
}

// TestPanicRecoveredSerial is the regression for the satellite fix: a
// panicking job on the serial fast path must surface as an IndexedError
// wrapping *PanicError instead of crashing the process.
func TestPanicRecoveredSerial(t *testing.T) {
	err := ForEach(context.Background(), 5, 1, func(i int) error {
		if i == 3 {
			panic("boom-serial")
		}
		return nil
	})
	assertPanicErr(t, err, 3, "boom-serial")
}

// TestPanicRecoveredParallel checks the same on the worker-pool path,
// and that remaining jobs still run.
func TestPanicRecoveredParallel(t *testing.T) {
	var ran int32
	err := ForEach(context.Background(), 64, 8, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 17 {
			panic(fmt.Sprintf("boom-%d", i))
		}
		return nil
	})
	assertPanicErr(t, err, 17, "boom-17")
	if n := atomic.LoadInt32(&ran); n != 64 {
		t.Fatalf("%d jobs ran, want all 64 despite the panic", n)
	}
}

// TestPanicRecoveredMap checks Map discards partials and aggregates the
// panic like any other failure.
func TestPanicRecoveredMap(t *testing.T) {
	out, err := Map(context.Background(), 8, 4, func(i int) (int, error) {
		if i == 5 {
			panic(errors.New("boom-map"))
		}
		return i, nil
	})
	if out != nil {
		t.Fatalf("partial results %v survived a panic", out)
	}
	assertPanicErr(t, err, 5, "boom-map")
}

// assertPanicErr unpacks the Errors aggregate down to the *PanicError
// and checks index, value rendering, and a captured stack.
func assertPanicErr(t *testing.T, err error, index int, want string) {
	t.Helper()
	if err == nil {
		t.Fatal("panic was swallowed: nil error")
	}
	var errs Errors
	if !errors.As(err, &errs) {
		t.Fatalf("err %T is not Errors: %v", err, err)
	}
	if len(errs) != 1 || errs[0].Index != index {
		t.Fatalf("aggregate %v, want single failure at index %d", errs, index)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("no *PanicError in chain: %v", err)
	}
	if got := fmt.Sprint(pe.Value); got != want {
		t.Fatalf("panic value %q, want %q", got, want)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("no stack captured at recovery")
	}
	if !pe.Transient() {
		t.Fatal("recovered panic must classify as transient")
	}
}
