package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	cases := []struct {
		requested, jobs, want int
	}{
		{0, 100, runtime.GOMAXPROCS(0)},
		{-3, 100, runtime.GOMAXPROCS(0)},
		{4, 2, 2},
		{4, 100, 4},
		{1, 0, 1},
		{0, 1, 1},
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.jobs); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.jobs, got, c.want)
		}
	}
}

func TestMapIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		got, err := Map(context.Background(), 100, workers, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 0, 4, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("Map over 0 jobs = (%v, %v), want (nil, nil)", got, err)
	}
}

func TestForEachRunsEveryJobOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		const n = 257
		var counts [n]int32
		if err := ForEach(context.Background(), n, workers, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestErrorAggregationDeterministic(t *testing.T) {
	fail := map[int]bool{3: true, 41: true, 7: true}
	var want error
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(context.Background(), 50, workers, func(i int) error {
			if fail[i] {
				return fmt.Errorf("boom %d", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		var errs Errors
		if !errors.As(err, &errs) {
			t.Fatalf("workers=%d: error type %T", workers, err)
		}
		if len(errs) != len(fail) {
			t.Fatalf("workers=%d: %d errors, want %d", workers, len(errs), len(fail))
		}
		for k := 1; k < len(errs); k++ {
			if errs[k-1].Index >= errs[k].Index {
				t.Fatalf("workers=%d: errors not index-sorted: %v", workers, errs)
			}
		}
		if errs.First().Error() != "boom 3" {
			t.Fatalf("workers=%d: First() = %v, want boom 3", workers, errs.First())
		}
		if want == nil {
			want = err
		} else if err.Error() != want.Error() {
			t.Fatalf("workers=%d: aggregate %q differs from %q", workers, err, want)
		}
	}
}

func TestForEachAllJobsRunDespiteErrors(t *testing.T) {
	var ran int32
	err := ForEach(context.Background(), 20, 4, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i%2 == 0 {
			return errors.New("even")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected aggregate error")
	}
	if ran != 20 {
		t.Fatalf("ran %d jobs, want 20 (errors must not abort remaining work)", ran)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started int32
	err := ForEach(ctx, 1000, 2, func(i int) error {
		if atomic.AddInt32(&started, 1) == 4 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt32(&started); n >= 1000 {
		t.Fatalf("cancellation did not stop dispatch (%d jobs started)", n)
	}
}

func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := ForEach(ctx, 10, 4, func(i int) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("job ran despite pre-cancelled context")
	}
}

func TestIndexedErrorUnwrap(t *testing.T) {
	sentinel := errors.New("sentinel")
	err := ForEach(context.Background(), 5, 2, func(i int) error {
		if i == 2 {
			return fmt.Errorf("wrapped: %w", sentinel)
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is failed to find sentinel through %v", err)
	}
}
