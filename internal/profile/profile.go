// Package profile implements the paper's training-data collection
// pipeline (Fig. 5): every stencil in a corpus is executed under every
// valid optimization combination (OC) with randomly searched parameter
// settings on every target GPU; the best time per OC labels the stencil,
// and every individual (setting, time) pair is retained as a regression
// instance for cross-architecture performance prediction.
package profile

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/par"
	"stencilmart/internal/sim"
	"stencilmart/internal/stencil"
)

// OCResult is the outcome of the random parameter search for one OC on
// one (stencil, architecture) pair.
type OCResult struct {
	// OC is the optimization combination.
	OC opt.Opt
	// Crashed reports that no sampled setting could run (the paper's
	// "OC crashes under certain stencils" case).
	Crashed bool
	// Time is the best execution time in seconds over the sampled
	// settings; NaN when Crashed.
	Time float64
	// Params is the setting achieving Time.
	Params opt.Params
}

// ocResultJSON mirrors OCResult with an omittable time, because JSON has
// no NaN; crashed results serialize without a time.
type ocResultJSON struct {
	OC      opt.Opt    `json:"oc"`
	Crashed bool       `json:"crashed,omitempty"`
	Time    *float64   `json:"time,omitempty"`
	Params  opt.Params `json:"params"`
}

// MarshalJSON implements json.Marshaler.
func (r OCResult) MarshalJSON() ([]byte, error) {
	out := ocResultJSON{OC: r.OC, Crashed: r.Crashed, Params: r.Params}
	if !r.Crashed {
		t := r.Time
		out.Time = &t
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *OCResult) UnmarshalJSON(b []byte) error {
	var in ocResultJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	r.OC, r.Crashed, r.Params = in.OC, in.Crashed, in.Params
	if in.Time != nil {
		r.Time = *in.Time
	} else {
		r.Time = math.NaN()
		r.Crashed = true
	}
	return nil
}

// Profile aggregates the per-OC results for one stencil on one GPU.
type Profile struct {
	// StencilIdx indexes the dataset's stencil corpus.
	StencilIdx int
	// Arch is the GPU name (Table III).
	Arch string
	// Results holds one entry per valid OC, ordered as opt.Combinations.
	Results []OCResult
	// BestOC is the fastest non-crashed OC.
	BestOC opt.Opt
	// BestTime is the execution time of BestOC.
	BestTime float64
}

// Instance is one regression sample: a parameter setting of an OC for a
// stencil on an architecture, and its measured time.
type Instance struct {
	StencilIdx int
	OC         opt.Opt
	Params     opt.Params
	Arch       string
	Time       float64
}

// Profiler drives data collection against the simulation substrate,
// absorbing the measurement faults real profiling campaigns hit:
// transient errors and panics retry with capped backoff, non-finite
// samples are rejected at the source, and repeated trials vote out
// timing outliers by median.
type Profiler struct {
	// Model is the GPU substrate; nil uses sim.New().
	Model *sim.Model
	// Runner overrides the measurement path; nil measures on Model.
	// The fault injector and test doubles hook in here — Model stays
	// the clean substrate prediction-time consumers share.
	Runner sim.Runner
	// SamplesPerOC is the number of random parameter settings searched
	// per OC (the paper's random search budget).
	SamplesPerOC int
	// Seed makes collection deterministic; every (stencil, arch, OC)
	// cell derives its own rng from it, so worker scheduling cannot
	// change results.
	Seed int64
	// Workers bounds the profiling goroutines; 0 uses GOMAXPROCS.
	Workers int
	// Retry governs transient-fault retries per measurement.
	Retry RetryPolicy
	// Trials is the number of repeated measurements per sampled setting;
	// the median time is recorded. <= 1 measures once. Use an odd count:
	// the median of an odd trial set is an observed value, bitwise, so
	// determinism survives outlier rejection.
	Trials int
	// CellTimeout bounds one (stencil, arch) cell's wall-clock time;
	// 0 means no per-cell deadline.
	CellTimeout time.Duration

	// modelMu guards the lazy Model initialization: ProfileOne may be
	// called concurrently from Collect's worker pool (or by users), and
	// an unguarded nil-check-then-assign on Model is a data race.
	modelMu sync.Mutex

	// faults counts transient measurement faults absorbed by retries.
	faults atomic.Uint64
}

// FaultsAbsorbed reports how many transient measurement faults the
// retry layer has absorbed so far — campaign workers surface it in
// their heartbeats so a coordinator can see a flaky substrate.
func (p *Profiler) FaultsAbsorbed() uint64 { return p.faults.Load() }

// NewProfiler returns a profiler with the given search budget and seed.
func NewProfiler(samplesPerOC int, seed int64) *Profiler {
	return &Profiler{Model: sim.New(), SamplesPerOC: samplesPerOC, Seed: seed}
}

func (p *Profiler) model() *sim.Model {
	p.modelMu.Lock()
	defer p.modelMu.Unlock()
	if p.Model == nil {
		p.Model = sim.New()
	}
	return p.Model
}

// cellFn resolves the measurement path for one (workload, arch) cell: a
// generic closure over an installed Runner (fault injectors, test
// doubles), or the model's compiled evaluator — resolved once per cell so
// the sample loop skips per-call cell lookup and workload validation.
func (p *Profiler) cellFn(w sim.Workload, arch gpu.Arch) sim.EvalFn {
	if run := p.Runner; run != nil {
		return func(oc opt.Opt, pp opt.Params) (sim.Result, error) {
			return run.Run(w, oc, pp, arch)
		}
	}
	return p.model().CellFn(w, arch)
}

// ProfileOne profiles a single stencil on a single architecture.
// Transient measurement faults are retried per the profiler's policy; a
// measurement that exhausts its retries, or a cancelled/expired ctx,
// fails the cell.
func (p *Profiler) ProfileOne(ctx context.Context, stencilIdx int, s stencil.Stencil, arch gpu.Arch) (Profile, []Instance, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if p.SamplesPerOC < 1 {
		return Profile{}, nil, fmt.Errorf("profile: samples per OC %d < 1", p.SamplesPerOC)
	}
	w := sim.DefaultWorkload(s)
	eval := p.cellFn(w, arch)
	combos := opt.Combinations()
	prof := Profile{
		StencilIdx: stencilIdx,
		Arch:       arch.Name,
		Results:    make([]OCResult, len(combos)),
		BestTime:   math.Inf(1),
	}
	// Every sample that measures cleanly becomes an instance; size for the
	// no-crash case so the append loop never regrows.
	instances := make([]Instance, 0, len(combos)*p.SamplesPerOC)
	found := false
	// One rng reused across OCs: re-seeding replays the exact stream a
	// fresh rand.New(rand.NewSource(seed)) would produce, without
	// allocating (and zeroing) a 5-KiB generator state per OC.
	rng := rand.New(rand.NewSource(1))
	for ci, oc := range combos {
		rng.Seed(cellSeed(p.Seed, stencilIdx, arch.Name, ci))
		res := OCResult{OC: oc, Time: math.NaN(), Crashed: true}
		for k := 0; k < p.SamplesPerOC; k++ {
			params := opt.Sample(oc, s.Dims, rng)
			r, err := p.measure(ctx, eval, oc, params)
			if err != nil {
				if cellFailure(err) {
					return Profile{}, nil, fmt.Errorf("profile: stencil %q %s on %s: %w", s.Name, oc, arch.Name, err)
				}
				// Permanent outcome (crash, invalid setting): the paper's
				// "OC crashes under certain stencils" case — skip the sample.
				continue
			}
			instances = append(instances, Instance{
				StencilIdx: stencilIdx, OC: oc, Params: params,
				Arch: arch.Name, Time: r.Time,
			})
			if res.Crashed || r.Time < res.Time {
				res.Crashed = false
				res.Time = r.Time
				res.Params = params
			}
		}
		prof.Results[ci] = res
		if !res.Crashed && res.Time < prof.BestTime {
			prof.BestTime = res.Time
			prof.BestOC = oc
			found = true
		}
	}
	if !found {
		return Profile{}, nil, fmt.Errorf("profile: stencil %q crashed under every OC on %s", s.Name, arch.Name)
	}
	return prof, instances, nil
}

// profileCell measures one (stencil, architecture) cell, applying the
// profiler's per-cell deadline if one is configured.
func (p *Profiler) profileCell(ctx context.Context, i int, stencils []stencil.Stencil, archs []gpu.Arch) (Profile, []Instance, error) {
	nS := len(stencils)
	if p.CellTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.CellTimeout)
		defer cancel()
	}
	return p.ProfileOne(ctx, i%nS, stencils[i%nS], archs[i/nS])
}

// Collect profiles the full corpus on every architecture, in parallel
// across (stencil, architecture) cells on the shared par worker pool,
// and assembles the dataset. Each cell derives its own rng from Seed and
// results are collected in cell-index order, so the dataset is
// byte-identical for any worker count (the serial reference is
// Workers == 1) — the property the differential suite enforces.
// Cancelling ctx stops dispatch after in-flight cells finish; for a
// collection that survives kills, see CollectJournal.
func (p *Profiler) Collect(ctx context.Context, stencils []stencil.Stencil, archs []gpu.Arch) (*Dataset, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(stencils) == 0 || len(archs) == 0 {
		return nil, fmt.Errorf("profile: empty corpus (%d stencils, %d archs)", len(stencils), len(archs))
	}
	p.model() // resolve the lazy model before workers race to do it
	d := &Dataset{Stencils: stencils, Archs: make([]gpu.Arch, len(archs))}
	copy(d.Archs, archs)
	d.Profiles = make([][]Profile, len(archs))
	for ai := range archs {
		d.Profiles[ai] = make([]Profile, len(stencils))
	}

	type cell struct {
		prof Profile
		inst []Instance
	}
	nS := len(stencils)
	cells, err := par.Map(ctx, len(archs)*nS, p.Workers, func(i int) (cell, error) {
		prof, inst, err := p.profileCell(ctx, i, stencils, archs)
		if err != nil {
			return cell{}, err
		}
		return cell{prof: prof, inst: inst}, nil
	})
	if err != nil {
		var errs par.Errors
		if errors.As(err, &errs) {
			// The serial loop would have surfaced the lowest-index failure.
			return nil, errs.First()
		}
		return nil, err
	}
	total := 0
	for _, c := range cells {
		total += len(c.inst)
	}
	d.Instances = make([]Instance, 0, total)
	for i, c := range cells {
		d.Profiles[i/nS][i%nS] = c.prof
		d.Instances = append(d.Instances, c.inst...)
	}
	return d, nil
}

// cellSeed derives a deterministic seed for one (stencil, arch, OC) cell.
func cellSeed(base int64, stencilIdx int, arch string, ocIdx int) int64 {
	h := base
	for _, c := range arch {
		h = h*1000003 + int64(c)
	}
	h = h*1000003 + int64(stencilIdx)
	h = h*1000003 + int64(ocIdx)
	if h == 0 {
		h = 1
	}
	return h
}
