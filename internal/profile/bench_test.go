package profile_test

import (
	"context"
	"testing"

	"stencilmart/internal/profile"
	"stencilmart/internal/sim"
	"stencilmart/internal/testutil"
)

// BenchmarkProfileCell measures one (stencil, arch) cell — the unit of
// work Collect fans out — on the compiled substrate with a shared warm
// model, the steady state of a corpus sweep.
func BenchmarkProfileCell(b *testing.B) {
	corpus := testutil.SmallCorpus(b)
	archs := testutil.AllArchs(b)
	p := profile.NewProfiler(12, testutil.CorpusSeed+1)
	s, arch := corpus[0], archs[0]
	if _, _, err := p.ProfileOne(context.Background(), 0, s, arch); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.ProfileOne(context.Background(), 0, s, arch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileCellReference is the same cell on the pre-rewrite
// substrate (string-keyed cache, per-call validation) for comparison.
func BenchmarkProfileCellReference(b *testing.B) {
	corpus := testutil.SmallCorpus(b)
	archs := testutil.AllArchs(b)
	p := &profile.Profiler{Runner: sim.NewReference(), SamplesPerOC: 12, Seed: testutil.CorpusSeed + 1}
	s, arch := corpus[0], archs[0]
	if _, _, err := p.ProfileOne(context.Background(), 0, s, arch); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.ProfileOne(context.Background(), 0, s, arch); err != nil {
			b.Fatal(err)
		}
	}
}
