package profile

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"stencilmart/internal/gpu"
	"stencilmart/internal/par"
	"stencilmart/internal/persist"
	"stencilmart/internal/stencil"
)

// Sharded collection splits one collection's cell-index space across
// journal shards that different worker processes write independently.
// A shard journal is framed exactly like a full-collection journal —
// same kind, version, and identity meta; shard boundaries are not part
// of the identity — so shards, serial journals, and re-sharded resumes
// are interchangeable inputs to MergeJournals, and a merged campaign
// assembles the same bytes a serial CollectJournal run would.

// ErrJournalIncomplete reports a merge over shards that do not cover
// every cell of the collection — the campaign is not finished yet.
var ErrJournalIncomplete = errors.New("profile: journals do not cover every cell of the collection")

// ShardStats reports what one CollectShard call recovered versus
// measured.
type ShardStats struct {
	// Assigned is how many distinct cells the shard was asked to cover.
	Assigned int
	// Resumed cells were already durable in the shard journal.
	Resumed int
	// Measured cells were measured and appended this run.
	Measured int
	// RepairedBytes counts journal bytes dropped from a damaged tail.
	RepairedBytes int64
}

// CollectShard measures the assigned cells of the collection into the
// WAL shard at path, resuming any cells the shard already holds. Cell
// indices are global — cell i is (stencils[i%len(stencils)],
// archs[i/len(stencils)]) — and every measurement derives its rng from
// the profiler seed alone, so two workers assigned overlapping cells
// append byte-identical records and the merge step can dedup them
// safely. onCell, when non-nil, is invoked after each newly measured
// cell is durably appended; it is called from the measuring goroutines
// and must be safe for concurrent use.
func (p *Profiler) CollectShard(ctx context.Context, path string, stencils []stencil.Stencil, archs []gpu.Arch, assigned []int, onCell func(index int)) (ShardStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var stats ShardStats
	if len(stencils) == 0 || len(archs) == 0 {
		return stats, fmt.Errorf("profile: empty corpus (%d stencils, %d archs)", len(stencils), len(archs))
	}
	meta, err := p.journalMeta(stencils, archs)
	if err != nil {
		return stats, err
	}
	for _, i := range assigned {
		if i < 0 || i >= meta.Cells {
			return stats, fmt.Errorf("profile: assigned cell %d outside [0,%d)", i, meta.Cells)
		}
	}

	wal, replay, err := persist.OpenWAL(path, JournalKind, JournalVersion, meta)
	if err != nil {
		return stats, err
	}
	defer wal.Close()
	if err := matchMeta(replay.Meta, meta, path); err != nil {
		return stats, err
	}
	stats.RepairedBytes = replay.TruncatedBytes

	cells := newCellSet(meta.Cells)
	if _, err := cells.absorb(replay.Records, path); err != nil {
		return stats, err
	}

	var remaining []int
	seen := make(map[int]bool, len(assigned))
	for _, i := range assigned {
		if seen[i] {
			continue
		}
		seen[i] = true
		stats.Assigned++
		if cells.done[i] != nil {
			stats.Resumed++
			continue
		}
		remaining = append(remaining, i)
	}
	stats.Measured = len(remaining)

	p.model() // resolve the lazy model before workers race to do it
	err = par.ForEach(ctx, len(remaining), p.Workers, func(j int) error {
		i := remaining[j]
		prof, inst, err := p.profileCell(ctx, i, stencils, archs)
		if err != nil {
			return err
		}
		if err := wal.Append(&journalCell{Index: i, Profile: prof, Instances: inst}); err != nil {
			return err
		}
		if onCell != nil {
			onCell(i)
		}
		return nil
	})
	if err != nil {
		var errs par.Errors
		if errors.As(err, &errs) {
			return stats, errs.First()
		}
		return stats, err
	}
	return stats, nil
}

// MergeStats reports what MergeJournals assembled.
type MergeStats struct {
	// Shards is the number of journals read.
	Shards int
	// Cells is the collection's total cell count.
	Cells int
	// Duplicates counts byte-identical duplicate records tolerated
	// across (and within) shards — re-dispatched work, not corruption.
	Duplicates int
	// TruncatedBytes totals damaged tail bytes ignored across shards.
	TruncatedBytes int64
}

// MergeJournals validates every journal's identity against this
// profiler+corpus, dedups overlapping cells (byte-identical duplicates
// are re-dispatched work and are tolerated; divergent duplicates fail
// with ErrJournalMismatch), and assembles the covered cells into a
// dataset in cell-index order — bitwise-identical to a serial
// CollectJournal (or Collect) of the same collection. Shards that do
// not cover every cell fail with ErrJournalIncomplete; the journals are
// read-only inputs and are never modified.
func (p *Profiler) MergeJournals(paths []string, stencils []stencil.Stencil, archs []gpu.Arch) (*Dataset, MergeStats, error) {
	cells, stats, err := p.readJournals(paths, stencils, archs)
	if err != nil {
		return nil, stats, err
	}
	if missing := cells.missing(); len(missing) > 0 {
		return nil, stats, fmt.Errorf("%w: %d of %d cells missing (first: %d)",
			ErrJournalIncomplete, len(missing), stats.Cells, missing[0])
	}
	return assembleDataset(stencils, archs, cells.done), stats, nil
}

// JournalCoverage reports which cells of the collection the given
// journals already hold, under the same identity validation and
// duplicate-divergence checks as MergeJournals. A campaign coordinator
// uses it to resume a half-finished campaign: only uncovered cells are
// re-dispatched.
func (p *Profiler) JournalCoverage(paths []string, stencils []stencil.Stencil, archs []gpu.Arch) ([]bool, error) {
	cells, _, err := p.readJournals(paths, stencils, archs)
	if err != nil {
		return nil, err
	}
	covered := make([]bool, len(cells.done))
	for i, c := range cells.done {
		covered[i] = c != nil
	}
	return covered, nil
}

// readJournals validates and dedups every journal into one cell set.
func (p *Profiler) readJournals(paths []string, stencils []stencil.Stencil, archs []gpu.Arch) (*cellSet, MergeStats, error) {
	var stats MergeStats
	if len(stencils) == 0 || len(archs) == 0 {
		return nil, stats, fmt.Errorf("profile: empty corpus (%d stencils, %d archs)", len(stencils), len(archs))
	}
	meta, err := p.journalMeta(stencils, archs)
	if err != nil {
		return nil, stats, err
	}
	stats.Cells = meta.Cells
	cells := newCellSet(meta.Cells)
	for _, path := range paths {
		replay, err := persist.ReadWAL(path, JournalKind, JournalVersion)
		if err != nil {
			return nil, stats, fmt.Errorf("profile: shard %s: %w", path, err)
		}
		if err := matchMeta(replay.Meta, meta, path); err != nil {
			return nil, stats, err
		}
		fresh, err := cells.absorb(replay.Records, path)
		if err != nil {
			return nil, stats, err
		}
		stats.Shards++
		stats.Duplicates += len(replay.Records) - fresh
		stats.TruncatedBytes += replay.TruncatedBytes
	}
	return cells, stats, nil
}

// matchMeta compares a replayed journal identity against ours.
func matchMeta(raw json.RawMessage, want journalMeta, path string) error {
	var got journalMeta
	if err := json.Unmarshal(raw, &got); err != nil {
		return fmt.Errorf("%w: %s: unreadable journal meta: %v", ErrJournalMismatch, path, err)
	}
	if got != want {
		return fmt.Errorf("%w: %s holds %+v, this collection is %+v", ErrJournalMismatch, path, got, want)
	}
	return nil
}
