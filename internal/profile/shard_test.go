package profile_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"stencilmart/internal/gpu"
	"stencilmart/internal/profile"
	"stencilmart/internal/sim"
	"stencilmart/internal/stencil"
	"stencilmart/internal/testutil"
)

// shardRanges partitions [0, n) into k contiguous cell-index lists.
func shardRanges(n, k int) [][]int {
	out := make([][]int, k)
	for i := 0; i < n; i++ {
		s := i * k / n
		out[s] = append(out[s], i)
	}
	return out
}

// collectShards runs one CollectShard per partition into its own WAL
// file and returns the shard paths.
func collectShards(t *testing.T, dir string, stencils []stencil.Stencil, archs []gpu.Arch, parts [][]int) []string {
	t.Helper()
	var paths []string
	for si, cells := range parts {
		path := filepath.Join(dir, "shard-"+string(rune('a'+si))+".wal")
		p := journalProfiler()
		if _, err := p.CollectShard(context.Background(), path, stencils, archs, cells, nil); err != nil {
			t.Fatalf("shard %d: %v", si, err)
		}
		paths = append(paths, path)
	}
	return paths
}

// TestMergeShardsIdenticalToSerial: splitting the cell space across
// shard journals written by independent profilers and merging them
// assembles the exact bytes of a serial CollectJournal run — at
// GOMAXPROCS 1 and 4.
func TestMergeShardsIdenticalToSerial(t *testing.T) {
	stencils, archs := journalFixture(t)
	want := baselineBytes(t, stencils, archs)
	for _, procs := range []int{1, 4} {
		testutil.WithGOMAXPROCS(t, procs, func() {
			dir := t.TempDir()
			paths := collectShards(t, dir, stencils, archs, shardRanges(len(stencils)*len(archs), 3))
			ds, stats, err := journalProfiler().MergeJournals(paths, stencils, archs)
			if err != nil {
				t.Fatalf("GOMAXPROCS %d: merge: %v", procs, err)
			}
			if stats.Shards != 3 || stats.Cells != 8 || stats.Duplicates != 0 {
				t.Fatalf("GOMAXPROCS %d: merge stats %+v", procs, stats)
			}
			testutil.AssertSameBytes(t, "merged dataset", want, testutil.DatasetJSON(t, ds))
		})
	}
}

// TestMergeOverlappingShards: overlapping shard assignments (the
// straggler-re-dispatch case: two workers measured the same cells)
// produce byte-identical duplicate records, which the merge dedups.
func TestMergeOverlappingShards(t *testing.T) {
	stencils, archs := journalFixture(t)
	want := baselineBytes(t, stencils, archs)
	parts := [][]int{{0, 1, 2, 3}, {3, 4, 5, 6}, {6, 7, 0}}
	paths := collectShards(t, t.TempDir(), stencils, archs, parts)
	ds, stats, err := journalProfiler().MergeJournals(paths, stencils, archs)
	if err != nil {
		t.Fatalf("merge overlapping shards: %v", err)
	}
	if stats.Duplicates != 3 {
		t.Fatalf("merge stats %+v, want 3 tolerated duplicates (cells 3, 6, 0)", stats)
	}
	testutil.AssertSameBytes(t, "overlap-merged dataset", want, testutil.DatasetJSON(t, ds))
}

// TestMergeKilledWorkerShard: a worker killed mid-shard leaves a partial
// shard journal; re-dispatching the whole shard to a fresh worker (new
// attempt file) and merging everything — including the dead worker's
// partial shard — still assembles the serial bytes.
func TestMergeKilledWorkerShard(t *testing.T) {
	stencils, archs := journalFixture(t)
	want := baselineBytes(t, stencils, archs)
	dir := t.TempDir()
	parts := shardRanges(len(stencils)*len(archs), 2)

	// Shard 0 completes normally.
	okPath := filepath.Join(dir, "shard-0-a1.wal")
	if _, err := journalProfiler().CollectShard(context.Background(), okPath, stencils, archs, parts[0], nil); err != nil {
		t.Fatal(err)
	}

	// Shard 1's first attempt dies after its first completed cell.
	deadPath := filepath.Join(dir, "shard-1-a1.wal")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p1 := journalProfiler()
	p1.Runner = &countingRunner{model: sim.New()}
	var completed int
	_, err := p1.CollectShard(ctx, deadPath, stencils, archs, parts[1], func(int) {
		completed++
		if completed == 1 {
			cancel() // the kill lands mid-shard, after one durable cell
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("killed shard attempt returned %v, want context.Canceled", err)
	}

	// The lease expires and the whole shard is re-dispatched to a fresh
	// worker writing its own attempt file.
	retryPath := filepath.Join(dir, "shard-1-a2.wal")
	if _, err := journalProfiler().CollectShard(context.Background(), retryPath, stencils, archs, parts[1], nil); err != nil {
		t.Fatalf("re-dispatched shard: %v", err)
	}

	ds, stats, err := journalProfiler().MergeJournals([]string{okPath, deadPath, retryPath}, stencils, archs)
	if err != nil {
		t.Fatalf("merge with killed worker: %v", err)
	}
	if stats.Shards != 3 || stats.Duplicates == 0 {
		t.Fatalf("merge stats %+v, want the dead worker's cells deduped", stats)
	}
	testutil.AssertSameBytes(t, "killed-worker merged dataset", want, testutil.DatasetJSON(t, ds))
}

// TestCollectShardResume: re-running an interrupted shard against its
// own journal resumes the completed cells instead of re-measuring.
func TestCollectShardResume(t *testing.T) {
	stencils, archs := journalFixture(t)
	path := filepath.Join(t.TempDir(), "shard.wal")
	cells := []int{2, 3, 4, 5}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p1 := journalProfiler()
	var completed int
	_, err := p1.CollectShard(ctx, path, stencils, archs, cells, func(int) {
		completed++
		if completed == 2 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted shard returned %v, want context.Canceled", err)
	}

	st, err := journalProfiler().CollectShard(context.Background(), path, stencils, archs, cells, nil)
	if err != nil {
		t.Fatalf("shard resume: %v", err)
	}
	if st.Assigned != 4 || st.Resumed < 2 || st.Resumed+st.Measured != 4 {
		t.Fatalf("shard resume stats %+v, want >= 2 resumed of 4", st)
	}
}

// TestMergeIncomplete: merging shards that do not cover the whole cell
// space reports ErrJournalIncomplete (the campaign is still running),
// not a bogus dataset.
func TestMergeIncomplete(t *testing.T) {
	stencils, archs := journalFixture(t)
	parts := shardRanges(len(stencils)*len(archs), 3)
	paths := collectShards(t, t.TempDir(), stencils, archs, parts[:2])
	_, _, err := journalProfiler().MergeJournals(paths, stencils, archs)
	if !errors.Is(err, profile.ErrJournalIncomplete) {
		t.Fatalf("partial merge returned %v, want ErrJournalIncomplete", err)
	}
}

// TestMergeRejectsForeignShard: a shard collected under a different
// profiler identity (seed) must not merge into this campaign.
func TestMergeRejectsForeignShard(t *testing.T) {
	stencils, archs := journalFixture(t)
	dir := t.TempDir()
	parts := shardRanges(len(stencils)*len(archs), 2)
	paths := collectShards(t, dir, stencils, archs, parts)

	foreign := journalProfiler()
	foreign.Seed = 999
	foreignPath := filepath.Join(dir, "foreign.wal")
	if _, err := foreign.CollectShard(context.Background(), foreignPath, stencils, archs, parts[0], nil); err != nil {
		t.Fatal(err)
	}
	_, _, err := journalProfiler().MergeJournals(append(paths, foreignPath), stencils, archs)
	if !errors.Is(err, profile.ErrJournalMismatch) {
		t.Fatalf("foreign shard merged with %v, want ErrJournalMismatch", err)
	}
}
