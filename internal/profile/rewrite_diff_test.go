package profile_test

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"stencilmart/internal/fault"
	"stencilmart/internal/gpu"
	"stencilmart/internal/profile"
	"stencilmart/internal/sim"
	"stencilmart/internal/testutil"
)

// The rewrite differential: the compiled-evaluator substrate must be
// invisible at dataset granularity. A collection measured on
// sim.NewReference() — the pre-rewrite path kept verbatim: per-call
// validation, string-keyed map cache, noise from scratch — is the oracle;
// collections on the default compiled Model must reproduce its bytes
// exactly, serial and parallel, journaled and not, chaos-injected and
// clean.

// referenceCollect collects the suite corpus on the pre-rewrite path.
func referenceCollect(t testing.TB, workers int) []byte {
	t.Helper()
	p := &profile.Profiler{
		Runner:       sim.NewReference(),
		SamplesPerOC: 4,
		Seed:         testutil.CorpusSeed + 1,
		Workers:      workers,
	}
	d, err := p.Collect(context.Background(), testutil.SmallCorpus(t), testutil.AllArchs(t))
	if err != nil {
		t.Fatalf("reference Collect (workers=%d): %v", workers, err)
	}
	return testutil.DatasetJSON(t, d)
}

// compiledCollect collects the same corpus on the compiled Model path.
func compiledCollect(t testing.TB, workers int) []byte {
	t.Helper()
	p := profile.NewProfiler(4, testutil.CorpusSeed+1)
	p.Workers = workers
	d, err := p.Collect(context.Background(), testutil.SmallCorpus(t), testutil.AllArchs(t))
	if err != nil {
		t.Fatalf("compiled Collect (workers=%d): %v", workers, err)
	}
	return testutil.DatasetJSON(t, d)
}

// TestCollectMatchesReference: compiled vs pre-rewrite dataset bytes, at
// GOMAXPROCS 1 and 4, serial and parallel pools.
func TestCollectMatchesReference(t *testing.T) {
	oracle := referenceCollect(t, 1)
	for _, procs := range []int{1, 4} {
		testutil.WithGOMAXPROCS(t, procs, func() {
			testutil.AssertSameBytes(t, "compiled serial vs reference", oracle, compiledCollect(t, 1))
			testutil.AssertSameBytes(t, "compiled parallel vs reference", oracle, compiledCollect(t, 0))
		})
	}
	// And the reference path itself is scheduling-invariant, so the oracle
	// is well-defined.
	testutil.AssertSameBytes(t, "reference parallel vs serial", oracle, referenceCollect(t, 4))
}

// TestCollectJournalMatchesReference: the journaled (WAL) collection on
// the compiled substrate reproduces the reference bytes too.
func TestCollectJournalMatchesReference(t *testing.T) {
	oracle := referenceCollect(t, 1)
	p := profile.NewProfiler(4, testutil.CorpusSeed+1)
	path := filepath.Join(t.TempDir(), "collect.journal")
	d, _, err := p.CollectJournal(context.Background(), path, testutil.SmallCorpus(t), testutil.AllArchs(t))
	if err != nil {
		t.Fatalf("CollectJournal: %v", err)
	}
	testutil.AssertSameBytes(t, "journaled compiled vs reference", oracle, testutil.DatasetJSON(t, d))
}

// TestChaosMatchesReferenceChaos: fault injection composes identically
// over both substrates. The injector keys its deterministic fault plan on
// the run-site string identity (sim.RunKey), which the rewrite preserved,
// so chaos over the compiled model and chaos over the reference path must
// absorb the same faults and emit the same bytes.
func TestChaosMatchesReferenceChaos(t *testing.T) {
	corpus := testutil.SmallCorpus(t)
	archs := gpu.Catalog()[:2]
	collectOn := func(sub sim.Runner) []byte {
		t.Helper()
		p := &profile.Profiler{
			Runner:       fault.Wrap(sub, fault.DefaultConfig(99)),
			SamplesPerOC: 3,
			Seed:         21,
			Workers:      4,
			Trials:       3,
			Retry: profile.RetryPolicy{
				MaxAttempts: 6,
				Sleep:       func(time.Duration) {},
			},
		}
		d, err := p.Collect(context.Background(), corpus, archs)
		if err != nil {
			t.Fatalf("chaos Collect: %v", err)
		}
		return testutil.DatasetJSON(t, d)
	}
	testutil.AssertSameBytes(t, "chaos over compiled vs chaos over reference",
		collectOn(sim.NewReference()), collectOn(sim.New()))
}
