package profile

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"time"

	"stencilmart/internal/fault"
	"stencilmart/internal/opt"
	"stencilmart/internal/par"
	"stencilmart/internal/sim"
)

// Retry defaults: measurement faults only exist on real (or
// fault-injected) substrates, so the defaults favor quick recovery —
// a handful of attempts with millisecond-scale capped backoff.
const (
	DefaultMaxAttempts = 4
	DefaultBaseDelay   = 5 * time.Millisecond
	DefaultMaxDelay    = 250 * time.Millisecond
)

// RetryPolicy governs how one measurement attempt is retried after a
// transient fault (injected errors, recovered panics, non-finite
// samples). Permanent outcomes — kernel crashes and invalid settings —
// are never retried; they are real profiling results.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts per measurement (first try
	// included); <= 0 selects DefaultMaxAttempts.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// retry up to MaxDelay. <= 0 selects the defaults.
	BaseDelay, MaxDelay time.Duration
	// Sleep is the injectable clock; nil means time.Sleep. Tests install
	// a fake to count and inspect backoff without waiting.
	Sleep func(time.Duration)
}

func (rp RetryPolicy) maxAttempts() int {
	if rp.MaxAttempts > 0 {
		return rp.MaxAttempts
	}
	return DefaultMaxAttempts
}

// Backoff returns the capped exponential delay before retry number
// `retry` (1-based): base, 2*base, 4*base, ... capped at MaxDelay.
func (rp RetryPolicy) Backoff(retry int) time.Duration {
	base, lim := rp.BaseDelay, rp.MaxDelay
	if base <= 0 {
		base = DefaultBaseDelay
	}
	if lim <= 0 {
		lim = DefaultMaxDelay
	}
	d := base
	for i := 1; i < retry; i++ {
		// Clamp before doubling: once d passes lim/2 the next doubling
		// would exceed the cap — or, for extreme bases, wrap a
		// time.Duration negative and return a bogus delay.
		if d > lim/2 {
			return lim
		}
		d *= 2
	}
	if d > lim {
		return lim
	}
	return d
}

func (rp RetryPolicy) sleep(d time.Duration) {
	if rp.Sleep != nil {
		rp.Sleep(d)
		return
	}
	time.Sleep(d)
}

// NonFiniteError rejects a NaN or Inf sample at the source: a non-finite
// time is a measurement fault, never a profiling result, so it is
// retried like a transient error and can never reach the dataset.
type NonFiniteError struct {
	Time float64
}

// Error implements error.
func (e *NonFiniteError) Error() string {
	return fmt.Sprintf("profile: non-finite measured time %v", e.Time)
}

// Transient marks the sample as retryable.
func (e *NonFiniteError) Transient() bool { return true }

// GiveUpError reports that every retry attempt of one measurement
// faulted; Last is the final attempt's fault.
type GiveUpError struct {
	Attempts int
	Last     error
}

// Error implements error.
func (e *GiveUpError) Error() string {
	return fmt.Sprintf("profile: gave up after %d attempts: %v", e.Attempts, e.Last)
}

// Unwrap exposes the final fault to errors.Is/As.
func (e *GiveUpError) Unwrap() error { return e.Last }

// runRecover executes one measurement attempt, converting a panic in the
// substrate into a retryable *par.PanicError instead of unwinding the
// worker. The measurement path is a per-cell eval closure: the profiler
// resolves the (workload, arch) cell once and the sample loop carries
// only (OC, params).
func runRecover(eval sim.EvalFn, oc opt.Opt, p opt.Params) (res sim.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &par.PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return eval(oc, p)
}

// measureAttempts is the retry loop around one (setting, trial)
// measurement: transient faults back off and retry up to the policy's
// attempt budget; permanent outcomes return immediately.
func (p *Profiler) measureAttempts(ctx context.Context, eval sim.EvalFn, oc opt.Opt, params opt.Params) (sim.Result, error) {
	pol := p.Retry
	attempts := pol.maxAttempts()
	var last error
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			return sim.Result{}, err
		}
		if a > 0 {
			pol.sleep(pol.Backoff(a))
		}
		r, err := runRecover(eval, oc, params)
		if err == nil && !finite(r.Time) {
			err = &NonFiniteError{Time: r.Time}
		}
		if err == nil {
			return r, nil
		}
		if !fault.IsTransient(err) {
			return sim.Result{}, err
		}
		p.faults.Add(1)
		last = err
	}
	return sim.Result{}, &GiveUpError{Attempts: attempts, Last: last}
}

// measure runs the configured number of repeated trials of one setting
// and keeps the median time — a single latency spike that slips past
// the error path cannot move the recorded value as long as a majority
// of trials are clean. The returned Result is the first trial's
// breakdown with Time replaced by the median. The single-trial default
// skips the trial buffer entirely, keeping the per-sample path
// allocation-free on the compiled substrate.
func (p *Profiler) measure(ctx context.Context, eval sim.EvalFn, oc opt.Opt, params opt.Params) (sim.Result, error) {
	k := p.Trials
	if k < 1 {
		k = 1
	}
	if k == 1 {
		return p.measureAttempts(ctx, eval, oc, params)
	}
	var rep sim.Result
	times := make([]float64, k)
	for t := 0; t < k; t++ {
		r, err := p.measureAttempts(ctx, eval, oc, params)
		if err != nil {
			return sim.Result{}, err
		}
		if t == 0 {
			rep = r
		}
		times[t] = r.Time
	}
	rep.Time = medianTimes(times)
	return rep, nil
}

// cellFailure classifies a measurement error as fatal for the cell:
// exhausted retries and cancellation fail the cell, while permanent
// simulator outcomes (crashes, invalid settings) are ordinary profiling
// results the sample loop skips.
func cellFailure(err error) bool {
	var give *GiveUpError
	return errors.As(err, &give) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// medianTimes returns the median of the measured trial times.
func medianTimes(ts []float64) float64 {
	if len(ts) == 1 {
		return ts[0]
	}
	s := append([]float64(nil), ts...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}
