package profile

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"stencilmart/internal/gpu"
	"stencilmart/internal/par"
	"stencilmart/internal/persist"
	"stencilmart/internal/stencil"
)

// The collection journal is an append-only WAL of completed (stencil,
// architecture) cells. A killed or faulted Collect loses at most its
// in-flight cells: rerunning against the same journal replays the
// completed ones and re-measures only what is missing. The WAL layer
// (internal/persist) detects corrupt or truncated tails and drops them,
// so damage costs exactly the damaged cells. Because every cell derives
// its rng from the profiler seed alone, a resumed collection assembles a
// dataset bitwise-identical to an uninterrupted run.
const (
	// JournalKind and JournalVersion frame the journal in the persist
	// envelope; version bumps whenever journalCell or journalMeta change
	// incompatibly.
	JournalKind    = "stencilmart-profile-journal"
	JournalVersion = 1
)

// ErrJournalMismatch reports a journal written by a different collection
// — another corpus, seed, search budget, or trial count. Resuming it
// would splice incompatible measurements into one dataset, so the caller
// must delete the journal (or restore the matching configuration).
var ErrJournalMismatch = errors.New("profile: journal does not match this collection")

// journalMeta pins the collection identity a journal belongs to.
type journalMeta struct {
	Seed         int64  `json:"seed"`
	SamplesPerOC int    `json:"samples_per_oc"`
	Trials       int    `json:"trials"`
	Corpus       string `json:"corpus"` // sha256 of the stencil corpus + arch names
	Cells        int    `json:"cells"`
}

// journalCell is one completed cell's record.
type journalCell struct {
	Index     int        `json:"index"`
	Profile   Profile    `json:"profile"`
	Instances []Instance `json:"instances"`
}

// ResumeStats reports what CollectJournal recovered versus re-measured.
type ResumeStats struct {
	// Cells is the total cell count of the collection.
	Cells int
	// Resumed cells were replayed from the journal.
	Resumed int
	// Measured cells were (re-)measured this run.
	Measured int
	// RepairedBytes counts journal bytes dropped from a damaged tail.
	RepairedBytes int64
}

// journalMeta computes this profiler+corpus identity.
func (p *Profiler) journalMeta(stencils []stencil.Stencil, archs []gpu.Arch) (journalMeta, error) {
	trials := p.Trials
	if trials < 1 {
		trials = 1
	}
	names := make([]string, len(archs))
	for i, a := range archs {
		names[i] = a.Name
	}
	raw, err := json.Marshal(struct {
		Stencils []stencil.Stencil `json:"stencils"`
		Archs    []string          `json:"archs"`
	}{stencils, names})
	if err != nil {
		return journalMeta{}, err
	}
	sum := sha256.Sum256(raw)
	return journalMeta{
		Seed:         p.Seed,
		SamplesPerOC: p.SamplesPerOC,
		Trials:       trials,
		Corpus:       hex.EncodeToString(sum[:]),
		Cells:        len(stencils) * len(archs),
	}, nil
}

// CollectJournal is Collect with crash resumption: completed cells are
// appended to the journal at path as they finish, and an existing
// journal's cells are replayed instead of re-measured. The assembled
// dataset is bitwise-identical to an uninterrupted Collect. On failure
// (cancellation, a cell exhausting its retries) the journal keeps every
// completed cell; rerun with the same arguments to resume.
func (p *Profiler) CollectJournal(ctx context.Context, path string, stencils []stencil.Stencil, archs []gpu.Arch) (*Dataset, ResumeStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var stats ResumeStats
	if len(stencils) == 0 || len(archs) == 0 {
		return nil, stats, fmt.Errorf("profile: empty corpus (%d stencils, %d archs)", len(stencils), len(archs))
	}
	meta, err := p.journalMeta(stencils, archs)
	if err != nil {
		return nil, stats, err
	}
	wal, replay, err := persist.OpenWAL(path, JournalKind, JournalVersion, meta)
	if err != nil {
		return nil, stats, err
	}
	defer wal.Close()

	var got journalMeta
	if err := json.Unmarshal(replay.Meta, &got); err != nil {
		return nil, stats, fmt.Errorf("%w: unreadable journal meta: %v", ErrJournalMismatch, err)
	}
	if got != meta {
		return nil, stats, fmt.Errorf("%w: journal holds %+v, this collection is %+v", ErrJournalMismatch, got, meta)
	}

	n := meta.Cells
	stats.Cells = n
	stats.RepairedBytes = replay.TruncatedBytes
	done := make([]*journalCell, n)
	for _, raw := range replay.Records {
		var c journalCell
		if err := json.Unmarshal(raw, &c); err != nil {
			return nil, stats, fmt.Errorf("%w: journal record: %v", ErrJournalMismatch, err)
		}
		if c.Index < 0 || c.Index >= n {
			return nil, stats, fmt.Errorf("%w: journal cell index %d outside [0,%d)", ErrJournalMismatch, c.Index, n)
		}
		if done[c.Index] == nil {
			stats.Resumed++
		}
		cell := c
		done[c.Index] = &cell
	}

	var remaining []int
	for i := range done {
		if done[i] == nil {
			remaining = append(remaining, i)
		}
	}
	stats.Measured = len(remaining)

	p.model() // resolve the lazy model before workers race to do it
	err = par.ForEach(ctx, len(remaining), p.Workers, func(j int) error {
		i := remaining[j]
		prof, inst, err := p.profileCell(ctx, i, stencils, archs)
		if err != nil {
			return err
		}
		c := &journalCell{Index: i, Profile: prof, Instances: inst}
		if err := wal.Append(c); err != nil {
			return err
		}
		done[i] = c
		return nil
	})
	if err != nil {
		var errs par.Errors
		if errors.As(err, &errs) {
			return nil, stats, errs.First()
		}
		return nil, stats, err
	}

	// Assemble in cell-index order — the same order Collect uses, so the
	// resumed dataset is byte-identical to an uninterrupted one.
	d := &Dataset{Stencils: stencils}
	d.Archs = append(d.Archs, archs...)
	d.Profiles = make([][]Profile, len(archs))
	nS := len(stencils)
	for ai := range archs {
		d.Profiles[ai] = make([]Profile, nS)
	}
	for i, c := range done {
		d.Profiles[i/nS][i%nS] = c.Profile
		d.Instances = append(d.Instances, c.Instances...)
	}
	return d, stats, nil
}
