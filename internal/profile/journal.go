package profile

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"stencilmart/internal/gpu"
	"stencilmart/internal/par"
	"stencilmart/internal/persist"
	"stencilmart/internal/stencil"
)

// The collection journal is an append-only WAL of completed (stencil,
// architecture) cells. A killed or faulted Collect loses at most its
// in-flight cells: rerunning against the same journal replays the
// completed ones and re-measures only what is missing. The WAL layer
// (internal/persist) detects corrupt or truncated tails and drops them,
// so damage costs exactly the damaged cells. Because every cell derives
// its rng from the profiler seed alone, a resumed collection assembles a
// dataset bitwise-identical to an uninterrupted run.
const (
	// JournalKind and JournalVersion frame the journal in the persist
	// envelope; version bumps whenever journalCell or journalMeta change
	// incompatibly.
	JournalKind    = "stencilmart-profile-journal"
	JournalVersion = 1
)

// ErrJournalMismatch reports a journal written by a different collection
// — another corpus, seed, search budget, or trial count. Resuming it
// would splice incompatible measurements into one dataset, so the caller
// must delete the journal (or restore the matching configuration).
var ErrJournalMismatch = errors.New("profile: journal does not match this collection")

// journalMeta pins the collection identity a journal belongs to.
type journalMeta struct {
	Seed         int64  `json:"seed"`
	SamplesPerOC int    `json:"samples_per_oc"`
	Trials       int    `json:"trials"`
	Corpus       string `json:"corpus"` // sha256 of the stencil corpus + full arch specs
	Cells        int    `json:"cells"`
}

// journalCell is one completed cell's record.
type journalCell struct {
	Index     int        `json:"index"`
	Profile   Profile    `json:"profile"`
	Instances []Instance `json:"instances"`
}

// cellSet accumulates replayed cells across one or more journals,
// keeping each cell's raw record bytes so duplicate indices can be
// compared bitwise.
type cellSet struct {
	done []*journalCell
	raw  []json.RawMessage
}

func newCellSet(n int) *cellSet {
	return &cellSet{done: make([]*journalCell, n), raw: make([]json.RawMessage, n)}
}

// absorb decodes records into the set and returns how many previously
// unseen cells they contributed. A duplicate index is tolerated only
// when its record bytes are identical to the first occurrence —
// deterministic collection means an honestly re-measured cell (a
// re-dispatched shard, a doubly-appended record) reproduces the exact
// bytes, so divergence is corruption or a foreign journal, and
// last-write-wins would silently pick one of two conflicting
// measurements.
func (cs *cellSet) absorb(records []json.RawMessage, source string) (fresh int, err error) {
	n := len(cs.done)
	for _, raw := range records {
		var c journalCell
		if err := json.Unmarshal(raw, &c); err != nil {
			return fresh, fmt.Errorf("%w: %s: journal record: %v", ErrJournalMismatch, source, err)
		}
		if c.Index < 0 || c.Index >= n {
			return fresh, fmt.Errorf("%w: %s: journal cell index %d outside [0,%d)", ErrJournalMismatch, source, c.Index, n)
		}
		if prev := cs.raw[c.Index]; prev != nil {
			if !bytes.Equal(prev, raw) {
				return fresh, fmt.Errorf("%w: %s: divergent duplicate records for cell %d", ErrJournalMismatch, source, c.Index)
			}
			continue
		}
		cell := c
		cs.done[c.Index] = &cell
		cs.raw[c.Index] = raw
		fresh++
	}
	return fresh, nil
}

// missing lists the cell indices not yet absorbed, in ascending order.
func (cs *cellSet) missing() []int {
	var out []int
	for i := range cs.done {
		if cs.done[i] == nil {
			out = append(out, i)
		}
	}
	return out
}

// ResumeStats reports what CollectJournal recovered versus re-measured.
type ResumeStats struct {
	// Cells is the total cell count of the collection.
	Cells int
	// Resumed cells were replayed from the journal.
	Resumed int
	// Measured cells were (re-)measured this run.
	Measured int
	// RepairedBytes counts journal bytes dropped from a damaged tail.
	RepairedBytes int64
}

// journalMeta computes this profiler+corpus identity. The corpus hash
// covers the full gpu.Arch specs, not just the names: two catalogs that
// share names but differ in any microarchitectural parameter measure
// different times, and resuming across them would silently splice
// incompatible measurements into one dataset.
func (p *Profiler) journalMeta(stencils []stencil.Stencil, archs []gpu.Arch) (journalMeta, error) {
	trials := p.Trials
	if trials < 1 {
		trials = 1
	}
	raw, err := json.Marshal(struct {
		Stencils []stencil.Stencil `json:"stencils"`
		Archs    []gpu.Arch        `json:"archs"`
	}{stencils, archs})
	if err != nil {
		return journalMeta{}, err
	}
	sum := sha256.Sum256(raw)
	return journalMeta{
		Seed:         p.Seed,
		SamplesPerOC: p.SamplesPerOC,
		Trials:       trials,
		Corpus:       hex.EncodeToString(sum[:]),
		Cells:        len(stencils) * len(archs),
	}, nil
}

// CollectJournal is Collect with crash resumption: completed cells are
// appended to the journal at path as they finish, and an existing
// journal's cells are replayed instead of re-measured. The assembled
// dataset is bitwise-identical to an uninterrupted Collect. On failure
// (cancellation, a cell exhausting its retries) the journal keeps every
// completed cell; rerun with the same arguments to resume.
func (p *Profiler) CollectJournal(ctx context.Context, path string, stencils []stencil.Stencil, archs []gpu.Arch) (*Dataset, ResumeStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var stats ResumeStats
	if len(stencils) == 0 || len(archs) == 0 {
		return nil, stats, fmt.Errorf("profile: empty corpus (%d stencils, %d archs)", len(stencils), len(archs))
	}
	meta, err := p.journalMeta(stencils, archs)
	if err != nil {
		return nil, stats, err
	}
	wal, replay, err := persist.OpenWAL(path, JournalKind, JournalVersion, meta)
	if err != nil {
		return nil, stats, err
	}
	defer wal.Close()

	if err := matchMeta(replay.Meta, meta, path); err != nil {
		return nil, stats, err
	}

	n := meta.Cells
	stats.Cells = n
	stats.RepairedBytes = replay.TruncatedBytes
	cells := newCellSet(n)
	fresh, err := cells.absorb(replay.Records, path)
	if err != nil {
		return nil, stats, err
	}
	stats.Resumed = fresh
	done := cells.done

	remaining := cells.missing()
	stats.Measured = len(remaining)

	p.model() // resolve the lazy model before workers race to do it
	err = par.ForEach(ctx, len(remaining), p.Workers, func(j int) error {
		i := remaining[j]
		prof, inst, err := p.profileCell(ctx, i, stencils, archs)
		if err != nil {
			return err
		}
		c := &journalCell{Index: i, Profile: prof, Instances: inst}
		if err := wal.Append(c); err != nil {
			return err
		}
		done[i] = c
		return nil
	})
	if err != nil {
		var errs par.Errors
		if errors.As(err, &errs) {
			return nil, stats, errs.First()
		}
		return nil, stats, err
	}

	return assembleDataset(stencils, archs, done), stats, nil
}

// assembleDataset lays completed cells into a dataset in cell-index
// order — the same order Collect uses, so resumed or merged datasets
// are byte-identical to an uninterrupted serial run. Every entry of
// done must be non-nil.
func assembleDataset(stencils []stencil.Stencil, archs []gpu.Arch, done []*journalCell) *Dataset {
	d := &Dataset{Stencils: stencils}
	d.Archs = append(d.Archs, archs...)
	d.Profiles = make([][]Profile, len(archs))
	nS := len(stencils)
	for ai := range archs {
		d.Profiles[ai] = make([]Profile, nS)
	}
	for i, c := range done {
		d.Profiles[i/nS][i%nS] = c.Profile
		d.Instances = append(d.Instances, c.Instances...)
	}
	return d
}
