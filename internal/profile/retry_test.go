package profile_test

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"stencilmart/internal/fault"
	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/par"
	"stencilmart/internal/profile"
	"stencilmart/internal/sim"
	"stencilmart/internal/stencil"
)

// scriptedRunner is a measurement double: per site (canonical run key)
// it fails the first failsPerSite attempts the scripted way, then
// returns a clean fixed time. It also counts attempts per site.
type scriptedRunner struct {
	failsPerSite int
	mode         string // "transient", "crash", "nan", "panic"
	time         float64

	mu       sync.Mutex
	attempts map[string]int
}

func (r *scriptedRunner) Run(w sim.Workload, oc opt.Opt, p opt.Params, arch gpu.Arch) (sim.Result, error) {
	key := sim.RunKey(w, oc, p, arch)
	r.mu.Lock()
	if r.attempts == nil {
		r.attempts = make(map[string]int)
	}
	n := r.attempts[key]
	r.attempts[key] = n + 1
	r.mu.Unlock()
	if n < r.failsPerSite {
		switch r.mode {
		case "transient":
			return sim.Result{}, &fault.TransientError{Site: 1, Attempt: n}
		case "crash":
			return sim.Result{}, sim.ErrCrash
		case "nan":
			return sim.Result{Time: math.NaN()}, nil
		case "panic":
			panic("scripted measurement panic")
		}
	}
	return sim.Result{Time: r.time}, nil
}

// attemptCounts snapshots per-site attempt counts.
func (r *scriptedRunner) attemptCounts() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, 0, len(r.attempts))
	for _, n := range r.attempts {
		out = append(out, n)
	}
	return out
}

// retryProfiler builds a single-sample profiler over the given runner
// with a fake clock that records backoff delays.
func retryProfiler(runner sim.Runner, maxAttempts int, slept *[]time.Duration) *profile.Profiler {
	var mu sync.Mutex
	return &profile.Profiler{
		Runner:       runner,
		SamplesPerOC: 1,
		Seed:         7,
		Retry: profile.RetryPolicy{
			MaxAttempts: maxAttempts,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    40 * time.Millisecond,
			Sleep: func(d time.Duration) {
				mu.Lock()
				*slept = append(*slept, d)
				mu.Unlock()
			},
		},
	}
}

// TestRetryRecoversTransients is the core retry contract: transient
// faults back off, retry, and the clean measurement lands in the
// profile with the exact attempt count and backoff schedule.
func TestRetryRecoversTransients(t *testing.T) {
	runner := &scriptedRunner{failsPerSite: 3, mode: "transient", time: 2.5}
	var slept []time.Duration
	p := retryProfiler(runner, 5, &slept)
	arch := gpu.Catalog()[0]
	prof, inst, err := p.ProfileOne(context.Background(), 0, stencil.Star(2, 1), arch)
	if err != nil {
		t.Fatalf("ProfileOne under transient faults: %v", err)
	}
	if prof.BestTime != 2.5 || len(inst) != opt.NumCombinations {
		t.Fatalf("best %v with %d instances, want 2.5 with %d", prof.BestTime, len(inst), opt.NumCombinations)
	}
	for _, n := range runner.attemptCounts() {
		if n != 4 {
			t.Fatalf("site saw %d attempts, want 3 failures + 1 success", n)
		}
	}
	// Capped exponential backoff: 10ms, 20ms, 40ms per measurement.
	if len(slept) != 3*opt.NumCombinations {
		t.Fatalf("%d sleeps, want 3 per OC site", len(slept))
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	for i, d := range slept[:3] {
		if d != want[i] {
			t.Fatalf("backoff %d = %v, want %v", i+1, d, want[i])
		}
	}
}

// TestRetryGiveUpClassification exhausts the attempt budget and checks
// the error class: a *GiveUpError carrying the final transient fault.
func TestRetryGiveUpClassification(t *testing.T) {
	runner := &scriptedRunner{failsPerSite: 1 << 30, mode: "transient"}
	var slept []time.Duration
	p := retryProfiler(runner, 3, &slept)
	_, _, err := p.ProfileOne(context.Background(), 0, stencil.Star(2, 1), gpu.Catalog()[0])
	if err == nil {
		t.Fatal("permanently-transient runner did not fail the cell")
	}
	var give *profile.GiveUpError
	if !errors.As(err, &give) {
		t.Fatalf("error %v is not a GiveUpError", err)
	}
	if give.Attempts != 3 {
		t.Fatalf("gave up after %d attempts, budget was 3", give.Attempts)
	}
	if !fault.IsTransient(give.Last) {
		t.Fatalf("give-up cause %v should classify transient", give.Last)
	}
	// The first site exhausted the budget: exactly MaxAttempts attempts.
	for _, n := range runner.attemptCounts() {
		if n != 3 {
			t.Fatalf("site saw %d attempts, want exactly the budget of 3", n)
		}
	}
}

// TestPermanentOutcomesNotRetried keeps real profiling results out of
// the retry loop: a deterministic kernel crash is measured once and
// never slept on.
func TestPermanentOutcomesNotRetried(t *testing.T) {
	runner := &scriptedRunner{failsPerSite: 1 << 30, mode: "crash"}
	var slept []time.Duration
	p := retryProfiler(runner, 5, &slept)
	_, _, err := p.ProfileOne(context.Background(), 0, stencil.Star(2, 1), gpu.Catalog()[0])
	if err == nil || len(slept) != 0 {
		t.Fatalf("crash handling wrong: err=%v sleeps=%d (want every-OC-crashed error, 0 sleeps)", err, len(slept))
	}
	for _, n := range runner.attemptCounts() {
		if n != 1 {
			t.Fatalf("crashing site saw %d attempts, want 1 (no retries)", n)
		}
	}
}

// TestNonFiniteRejectedAtSource: a NaN sample never reaches the
// dataset — it retries and the recovered finite value is recorded.
func TestNonFiniteRejectedAtSource(t *testing.T) {
	runner := &scriptedRunner{failsPerSite: 1, mode: "nan", time: 1.25}
	var slept []time.Duration
	p := retryProfiler(runner, 4, &slept)
	prof, inst, err := p.ProfileOne(context.Background(), 0, stencil.Star(2, 1), gpu.Catalog()[0])
	if err != nil {
		t.Fatalf("ProfileOne under NaN injection: %v", err)
	}
	for _, in := range inst {
		if math.IsNaN(in.Time) || math.IsInf(in.Time, 0) {
			t.Fatalf("non-finite time %v reached the dataset", in.Time)
		}
	}
	if prof.BestTime != 1.25 {
		t.Fatalf("best time %v, want the clean 1.25", prof.BestTime)
	}

	// And when NaN persists past the budget, the give-up wraps the
	// non-finite rejection.
	always := &scriptedRunner{failsPerSite: 1 << 30, mode: "nan"}
	p2 := retryProfiler(always, 2, &slept)
	_, _, err = p2.ProfileOne(context.Background(), 0, stencil.Star(2, 1), gpu.Catalog()[0])
	var nf *profile.NonFiniteError
	if !errors.As(err, &nf) {
		t.Fatalf("error %v does not carry the NonFiniteError cause", err)
	}
}

// TestMeasurementPanicRetried: a panic in the substrate is recovered
// inside the measurement (not just the worker pool) and retried like a
// transient fault.
func TestMeasurementPanicRetried(t *testing.T) {
	runner := &scriptedRunner{failsPerSite: 2, mode: "panic", time: 3.0}
	var slept []time.Duration
	p := retryProfiler(runner, 4, &slept)
	prof, _, err := p.ProfileOne(context.Background(), 0, stencil.Star(2, 1), gpu.Catalog()[0])
	if err != nil {
		t.Fatalf("ProfileOne under panics: %v", err)
	}
	if prof.BestTime != 3.0 {
		t.Fatalf("best time %v, want 3.0", prof.BestTime)
	}

	// A panic that persists past the budget surfaces as a give-up whose
	// cause is the recovered panic.
	always := &scriptedRunner{failsPerSite: 1 << 30, mode: "panic"}
	p2 := retryProfiler(always, 2, &slept)
	_, _, err = p2.ProfileOne(context.Background(), 0, stencil.Star(2, 1), gpu.Catalog()[0])
	var pe *par.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not carry the recovered panic", err)
	}
}

// TestBackoffSchedule pins the capped-exponential shape directly.
func TestBackoffSchedule(t *testing.T) {
	rp := profile.RetryPolicy{BaseDelay: 3 * time.Millisecond, MaxDelay: 20 * time.Millisecond}
	want := []time.Duration{3, 6, 12, 20, 20}
	for i, w := range want {
		if got := rp.Backoff(i + 1); got != w*time.Millisecond {
			t.Fatalf("Backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	// Zero-valued policy falls back to the documented defaults.
	var zero profile.RetryPolicy
	if zero.Backoff(1) != profile.DefaultBaseDelay {
		t.Fatalf("default first backoff %v", zero.Backoff(1))
	}
}

// TestBackoffOverflow: extreme policies must clamp, not wrap. Doubling
// a huge BaseDelay used to overflow time.Duration negative and return a
// bogus (negative or tiny) delay instead of MaxDelay.
func TestBackoffOverflow(t *testing.T) {
	huge := time.Duration(1) << 62
	cases := []profile.RetryPolicy{
		{BaseDelay: huge, MaxDelay: huge},
		{BaseDelay: huge / 3, MaxDelay: huge},
		{BaseDelay: time.Nanosecond, MaxDelay: huge},
		{BaseDelay: huge, MaxDelay: time.Second},
		{BaseDelay: 5 * time.Millisecond, MaxDelay: 250 * time.Millisecond},
	}
	for ci, rp := range cases {
		prev := time.Duration(0)
		for retry := 1; retry <= 70; retry++ {
			d := rp.Backoff(retry)
			if d <= 0 || d > rp.MaxDelay {
				t.Fatalf("case %d: Backoff(%d) = %v outside (0, %v]", ci, retry, d, rp.MaxDelay)
			}
			if d < prev {
				t.Fatalf("case %d: Backoff(%d) = %v shrank from %v", ci, retry, d, prev)
			}
			prev = d
		}
		if got := rp.Backoff(70); got != rp.MaxDelay {
			t.Fatalf("case %d: deep retry Backoff = %v, want the %v cap", ci, got, rp.MaxDelay)
		}
	}
}

// TestCellTimeout bounds one cell's wall-clock: a runner that stalls
// trips the per-cell deadline instead of hanging Collect.
func TestCellTimeout(t *testing.T) {
	stall := runnerFunc(func(w sim.Workload, oc opt.Opt, p opt.Params, arch gpu.Arch) (sim.Result, error) {
		time.Sleep(5 * time.Millisecond)
		return sim.Result{Time: 1}, nil
	})
	p := &profile.Profiler{Runner: stall, SamplesPerOC: 2, Seed: 1, CellTimeout: time.Millisecond, Workers: 1}
	corpus := []stencil.Stencil{stencil.Star(2, 1)}
	_, err := p.Collect(context.Background(), corpus, gpu.Catalog()[:1])
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want the cell deadline to fire", err)
	}
}

// runnerFunc adapts a function to sim.Runner.
type runnerFunc func(sim.Workload, opt.Opt, opt.Params, gpu.Arch) (sim.Result, error)

func (f runnerFunc) Run(w sim.Workload, oc opt.Opt, p opt.Params, arch gpu.Arch) (sim.Result, error) {
	return f(w, oc, p, arch)
}
