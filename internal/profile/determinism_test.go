package profile_test

import (
	"context"
	"runtime"
	"testing"

	"stencilmart/internal/gpu"
	"stencilmart/internal/profile"
	"stencilmart/internal/sim"
	"stencilmart/internal/stencil"
	"stencilmart/internal/testutil"
)

// collect profiles the suite corpus on every catalog arch with the given
// worker bound and a fresh model, returning the canonical dataset bytes.
func collect(t testing.TB, corpus []stencil.Stencil, archs []gpu.Arch, workers int) []byte {
	t.Helper()
	p := profile.NewProfiler(4, testutil.CorpusSeed+1)
	p.Workers = workers
	d, err := p.Collect(context.Background(), corpus, archs)
	if err != nil {
		t.Fatalf("collect (workers=%d): %v", workers, err)
	}
	return testutil.DatasetJSON(t, d)
}

// TestCollectWorkerCountInvariance is the differential check of the
// ISSUE: the parallel Collect must be byte-identical to the serial
// reference (Workers == 1) for any pool size.
func TestCollectWorkerCountInvariance(t *testing.T) {
	corpus := testutil.SmallCorpus(t)
	archs := testutil.AllArchs(t)
	serial := collect(t, corpus, archs, 1)
	for _, w := range []int{2, 3, runtime.NumCPU(), 2 * runtime.NumCPU()} {
		if w < 2 {
			continue
		}
		testutil.AssertSameBytes(t, "Collect", serial, collect(t, corpus, archs, w))
	}
}

// TestCollectGOMAXPROCSInvariance pins the whole runtime to one proc and
// compares against the machine's default — the scheduler itself must not
// be able to change the dataset.
func TestCollectGOMAXPROCSInvariance(t *testing.T) {
	corpus := testutil.SmallCorpus(t)
	archs := testutil.AllArchs(t)
	var one, many []byte
	testutil.WithGOMAXPROCS(t, 1, func() {
		one = collect(t, corpus, archs, 0)
	})
	testutil.WithGOMAXPROCS(t, runtime.NumCPU(), func() {
		many = collect(t, corpus, archs, 0)
	})
	testutil.AssertSameBytes(t, "Collect under GOMAXPROCS", one, many)
}

// TestCollectMatchesProfileOneLoop checks Collect against the primitive
// it is built from: a hand-rolled serial ProfileOne loop in cell order.
func TestCollectMatchesProfileOneLoop(t *testing.T) {
	corpus := testutil.SmallCorpus(t)
	archs := testutil.AllArchs(t)

	ref := &profile.Dataset{Stencils: corpus, Archs: archs}
	ref.Profiles = make([][]profile.Profile, len(archs))
	p := profile.NewProfiler(4, testutil.CorpusSeed+1)
	for ai, a := range archs {
		ref.Profiles[ai] = make([]profile.Profile, len(corpus))
		for si, s := range corpus {
			prof, inst, err := p.ProfileOne(context.Background(), si, s, a)
			if err != nil {
				t.Fatalf("ProfileOne(%d, %s): %v", si, a.Name, err)
			}
			ref.Profiles[ai][si] = prof
			ref.Instances = append(ref.Instances, inst...)
		}
	}
	want := testutil.DatasetJSON(t, ref)
	testutil.AssertSameBytes(t, "Collect vs ProfileOne loop", want, collect(t, corpus, archs, 0))
}

// benchCollect measures full-corpus collection with a fresh profiler and
// model (cold cache) per iteration, so parallel and serial runs price the
// same amount of real work.
func benchCollect(b *testing.B, workers int) {
	corpus := testutil.SmallCorpus(b)
	archs := testutil.AllArchs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := profile.NewProfiler(4, testutil.CorpusSeed+1)
		p.Model = sim.New()
		p.Workers = workers
		if _, err := p.Collect(context.Background(), corpus, archs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollectSerial(b *testing.B)   { benchCollect(b, 1) }
func BenchmarkCollectParallel(b *testing.B) { benchCollect(b, 0) }
