package profile_test

import (
	"bytes"
	"context"
	"testing"

	"stencilmart/internal/profile"
	"stencilmart/internal/testutil"
)

// validDatasetBytes builds a real collected dataset to seed the fuzzer
// with a structurally correct input.
func validDatasetBytes(t testing.TB) []byte {
	t.Helper()
	p := profile.NewProfiler(2, testutil.CorpusSeed+1)
	corpus := testutil.SmallCorpus(t)
	d, err := p.Collect(context.Background(), corpus[:3], testutil.AllArchs(t)[:1])
	if err != nil {
		t.Fatalf("seed dataset: %v", err)
	}
	return testutil.DatasetJSON(t, d)
}

// FuzzDatasetRoundTrip feeds arbitrary bytes through ReadJSON. Malformed
// data must produce an error — never a panic — and anything that decodes
// must survive a WriteJSON → ReadJSON round trip byte-identically.
func FuzzDatasetRoundTrip(f *testing.F) {
	f.Add(validDatasetBytes(f))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"stencils":[],"archs":[],"profiles":[],"instances":[]}`))
	f.Add([]byte(`{"stencils":[{"name":"x","dims":2,"points":[0,0,0]}],"archs":["V100"]}`))
	f.Add([]byte(`{"archs":["NoSuchGPU"]}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"profiles":[[{"results":[{"oc":999}]}]]}`))
	// Infinite / out-of-range times in a hand-edited dataset must be
	// rejected, not silently accepted as labels: JSON cannot spell +Inf,
	// so a corrupt file carries an overflowing literal (decodes to +Inf
	// in lenient parsers) or an instance time that Validate must refuse.
	f.Add([]byte(`{"stencils":[{"name":"x","dims":2,"points":[0,0,0,1,0,0]}],"archs":["V100"],` +
		`"profiles":[[{"StencilIdx":0,"Arch":"V100","Results":[{"oc":0,"time":1e999,"params":{}}]}]]}`))
	f.Add([]byte(`{"stencils":[{"name":"x","dims":2,"points":[0,0,0,1,0,0]}],"archs":["V100"],` +
		`"profiles":[],"instances":[{"StencilIdx":0,"OC":0,"Arch":"V100","Time":1e999}]}`))
	f.Add([]byte(`{"stencils":[{"name":"x","dims":2,"points":[0,0,0,1,0,0]}],"archs":["V100"],` +
		`"profiles":[],"instances":[{"StencilIdx":0,"OC":0,"Arch":"V100","Time":-1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := profile.ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		// Accepted datasets must satisfy their own invariants...
		if err := d.Validate(); err != nil {
			t.Fatalf("ReadJSON accepted a dataset its own Validate rejects: %v", err)
		}
		// ...and round-trip losslessly.
		var buf bytes.Buffer
		if err := d.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON on accepted dataset: %v", err)
		}
		first := append([]byte(nil), buf.Bytes()...)
		d2, err := profile.ReadJSON(bytes.NewReader(first))
		if err != nil {
			t.Fatalf("re-read of written dataset: %v", err)
		}
		buf.Reset()
		if err := d2.WriteJSON(&buf); err != nil {
			t.Fatalf("second WriteJSON: %v", err)
		}
		testutil.AssertSameBytes(t, "dataset round trip", first, buf.Bytes())
	})
}
