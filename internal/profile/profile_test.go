package profile

import (
	"bytes"
	"context"
	"math"
	"testing"

	"stencilmart/internal/gen"
	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/stencil"
)

func smallDataset(t *testing.T) *Dataset {
	t.Helper()
	corpus, err := gen.MixedCorpus(6, 4, stencil.MaxOrder, 7)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProfiler(8, 42)
	archs := gpu.Catalog()[:2]
	d, err := p.Collect(context.Background(), corpus, archs)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestProfileOne(t *testing.T) {
	p := NewProfiler(6, 1)
	arch, _ := gpu.ByName("V100")
	prof, inst, err := p.ProfileOne(context.Background(), 0, stencil.Star(2, 1), arch)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Results) != opt.NumCombinations {
		t.Fatalf("results per OC = %d, want %d", len(prof.Results), opt.NumCombinations)
	}
	if prof.BestTime <= 0 || !prof.BestOC.Valid() {
		t.Errorf("bad best: %v %g", prof.BestOC, prof.BestTime)
	}
	if len(inst) == 0 {
		t.Fatal("no instances recorded")
	}
	// Best time is the minimum over non-crashed OC results.
	for _, r := range prof.Results {
		if !r.Crashed && r.Time < prof.BestTime {
			t.Errorf("OC %s beat recorded best (%g < %g)", r.OC, r.Time, prof.BestTime)
		}
		if r.Crashed && !math.IsNaN(r.Time) {
			t.Errorf("crashed OC %s has numeric time", r.OC)
		}
	}
	// Instances only contain successful runs.
	for _, in := range inst {
		if in.Time <= 0 || in.Arch != "V100" {
			t.Errorf("bad instance %+v", in)
		}
	}
}

func TestProfileDeterministicAcrossWorkers(t *testing.T) {
	corpus, err := gen.MixedCorpus(4, 2, stencil.MaxOrder, 3)
	if err != nil {
		t.Fatal(err)
	}
	archs := gpu.Catalog()[:2]
	p1 := NewProfiler(5, 9)
	p1.Workers = 1
	d1, err := p1.Collect(context.Background(), corpus, archs)
	if err != nil {
		t.Fatal(err)
	}
	p2 := NewProfiler(5, 9)
	p2.Workers = 8
	d2, err := p2.Collect(context.Background(), corpus, archs)
	if err != nil {
		t.Fatal(err)
	}
	for ai := range d1.Profiles {
		for si := range d1.Profiles[ai] {
			a, b := d1.Profiles[ai][si], d2.Profiles[ai][si]
			if a.BestOC != b.BestOC || a.BestTime != b.BestTime {
				t.Fatalf("worker count changed profile [%d][%d]: %v/%g vs %v/%g",
					ai, si, a.BestOC, a.BestTime, b.BestOC, b.BestTime)
			}
		}
	}
	if len(d1.Instances) != len(d2.Instances) {
		t.Fatalf("instance counts differ: %d vs %d", len(d1.Instances), len(d2.Instances))
	}
}

func TestCollectValidates(t *testing.T) {
	d := smallDataset(t)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Instances) == 0 {
		t.Fatal("no instances")
	}
	byArch := d.InstancesByArch()
	if len(byArch) != 2 {
		t.Fatalf("instances span %d archs, want 2", len(byArch))
	}
}

func TestBestTimeMatrixAndLabels(t *testing.T) {
	d := smallDataset(t)
	m := d.BestTimeMatrix(0)
	if len(m) != opt.NumCombinations || len(m[0]) != len(d.Stencils) {
		t.Fatalf("matrix shape %dx%d", len(m), len(m[0]))
	}
	labels := d.Labels(0)
	for si, l := range labels {
		if l < 0 || l >= opt.NumCombinations {
			t.Fatalf("label %d out of range", l)
		}
		// The labeled OC's matrix cell must equal the best time.
		if math.Abs(m[l][si]-d.Profiles[0][si].BestTime) > 1e-15 {
			t.Fatalf("label/matrix mismatch at stencil %d", si)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := smallDataset(t)
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Stencils) != len(d.Stencils) || len(back.Instances) != len(d.Instances) {
		t.Fatalf("round trip lost data: %d/%d stencils, %d/%d instances",
			len(back.Stencils), len(d.Stencils), len(back.Instances), len(d.Instances))
	}
	for ai := range d.Profiles {
		for si := range d.Profiles[ai] {
			if back.Profiles[ai][si].BestTime != d.Profiles[ai][si].BestTime {
				t.Fatalf("best time changed in round trip at [%d][%d]", ai, si)
			}
		}
	}
	if back.Archs[0].MemBWGBs != d.Archs[0].MemBWGBs {
		t.Error("arch specs not rehydrated from catalog")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"archs":["NoSuchGPU"],"stencils":[{"name":"x","dims":2,"points":[0,0,0]}]}`)); err == nil {
		t.Error("unknown arch accepted")
	}
}

func TestFolds(t *testing.T) {
	folds, err := Folds(23, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("%d folds", len(folds))
	}
	seen := map[int]bool{}
	total := 0
	for _, f := range folds {
		total += len(f)
		if len(f) < 4 || len(f) > 5 {
			t.Errorf("fold size %d outside [4,5]", len(f))
		}
		for _, i := range f {
			if seen[i] {
				t.Errorf("index %d in two folds", i)
			}
			seen[i] = true
		}
	}
	if total != 23 {
		t.Errorf("folds cover %d items, want 23", total)
	}
	train, test := TrainTest(folds, 2)
	if len(train)+len(test) != 23 || len(test) != len(folds[2]) {
		t.Errorf("train/test split %d/%d", len(train), len(test))
	}
	if _, err := Folds(3, 5, 1); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := Folds(10, 1, 1); err == nil {
		t.Error("k = 1 accepted")
	}
}

func TestProfilerErrors(t *testing.T) {
	p := NewProfiler(0, 1)
	arch, _ := gpu.ByName("V100")
	if _, _, err := p.ProfileOne(context.Background(), 0, stencil.Star(2, 1), arch); err == nil {
		t.Error("zero samples accepted")
	}
	p2 := NewProfiler(4, 1)
	if _, err := p2.Collect(context.Background(), nil, gpu.Catalog()); err == nil {
		t.Error("empty corpus accepted")
	}
}

// medianDataset builds a minimal hand-rolled dataset whose instances give
// one (OC, stencil) cell a controlled sample list.
func medianDataset(t *testing.T, times []float64) *Dataset {
	t.Helper()
	s, err := stencil.New("probe", 2, []stencil.Point{{Dx: 0, Dy: 0}, {Dx: 1, Dy: 0}})
	if err != nil {
		t.Fatal(err)
	}
	arch, err := gpu.ByName("V100")
	if err != nil {
		t.Fatal(err)
	}
	d := &Dataset{Stencils: []stencil.Stencil{s}, Archs: []gpu.Arch{arch}}
	oc := opt.Combinations()[0]
	for _, tm := range times {
		d.Instances = append(d.Instances, Instance{StencilIdx: 0, OC: oc, Arch: arch.Name, Time: tm})
	}
	return d
}

// TestMedianTimeMatrixTrueMedian covers both parities: the old
// ts[len/2] picked the upper-middle element for even sample counts.
func TestMedianTimeMatrixTrueMedian(t *testing.T) {
	cases := []struct {
		times []float64
		want  float64
	}{
		{[]float64{3, 1, 2}, 2},      // odd: middle element
		{[]float64{4, 1, 3, 2}, 2.5}, // even: mean of the two middle
		{[]float64{10, 2}, 6},        // even, n=2
		{[]float64{5}, 5},            // single sample
	}
	for _, c := range cases {
		d := medianDataset(t, c.times)
		m := d.MedianTimeMatrix(0)
		if got := m[0][0]; got != c.want {
			t.Errorf("median of %v = %g, want %g", c.times, got, c.want)
		}
	}
	// Cells with no samples stay NaN.
	d := medianDataset(t, []float64{1})
	if v := d.MedianTimeMatrix(0)[1][0]; !math.IsNaN(v) {
		t.Errorf("empty cell median = %g, want NaN", v)
	}
}

// TestValidateRejectsInfiniteResultTime guards the per-OC result check:
// instances were IsInf-checked but Profile.Results entries were not, so a
// corrupt dataset with an infinite time validated cleanly.
func TestValidateRejectsInfiniteResultTime(t *testing.T) {
	d := smallDataset(t)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	save := d.Profiles[0][0].Results[0]
	d.Profiles[0][0].Results[0].Crashed = false
	d.Profiles[0][0].Results[0].Time = math.Inf(1)
	if err := d.Validate(); err == nil {
		t.Fatal("dataset with +Inf result time validated cleanly")
	}
	d.Profiles[0][0].Results[0] = save

	// Same for an infinite per-stencil best time.
	d.Profiles[0][0].BestTime = math.Inf(1)
	if err := d.Validate(); err == nil {
		t.Fatal("dataset with +Inf best time validated cleanly")
	}
}
