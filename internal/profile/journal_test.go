package profile_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"stencilmart/internal/fault"
	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/persist"
	"stencilmart/internal/profile"
	"stencilmart/internal/sim"
	"stencilmart/internal/stencil"
	"stencilmart/internal/testutil"
)

// journalFixture is the shared small collection the resume tests run:
// 4 stencils x 2 architectures = 8 cells, 2 samples per OC.
func journalFixture(t *testing.T) ([]stencil.Stencil, []gpu.Arch) {
	t.Helper()
	return testutil.SmallCorpus(t)[:4], gpu.Catalog()[:2]
}

func journalProfiler() *profile.Profiler {
	return &profile.Profiler{Model: sim.New(), SamplesPerOC: 2, Seed: 11, Workers: 1}
}

// countingRunner counts Run calls through to the clean model.
type countingRunner struct {
	model *sim.Model
	calls atomic.Int64
	// cancelAfter, when > 0, cancels the attached context once that many
	// calls have been observed — simulating a kill mid-collection.
	cancelAfter int64
	cancel      context.CancelFunc
}

func (c *countingRunner) Run(w sim.Workload, oc opt.Opt, p opt.Params, arch gpu.Arch) (sim.Result, error) {
	n := c.calls.Add(1)
	if c.cancelAfter > 0 && n == c.cancelAfter && c.cancel != nil {
		c.cancel()
	}
	return c.model.Run(w, oc, p, arch)
}

// baselineBytes is the uninterrupted Collect reference the resumed runs
// must match bitwise.
func baselineBytes(t *testing.T, stencils []stencil.Stencil, archs []gpu.Arch) []byte {
	t.Helper()
	ds, err := journalProfiler().Collect(context.Background(), stencils, archs)
	if err != nil {
		t.Fatalf("baseline Collect: %v", err)
	}
	return testutil.DatasetJSON(t, ds)
}

// TestCollectJournalFreshMatchesCollect: with no prior journal, the
// journaled path is plain Collect plus a WAL — same bytes out.
func TestCollectJournalFreshMatchesCollect(t *testing.T) {
	stencils, archs := journalFixture(t)
	want := baselineBytes(t, stencils, archs)
	path := filepath.Join(t.TempDir(), "collect.journal")
	ds, stats, err := journalProfiler().CollectJournal(context.Background(), path, stencils, archs)
	if err != nil {
		t.Fatalf("CollectJournal: %v", err)
	}
	if stats.Resumed != 0 || stats.Measured != 8 || stats.Cells != 8 || stats.RepairedBytes != 0 {
		t.Fatalf("fresh-run stats %+v", stats)
	}
	testutil.AssertSameBytes(t, "fresh journaled dataset", want, testutil.DatasetJSON(t, ds))
}

// TestJournalResumeAfterCellFailure: a run in which every cell of one
// architecture exhausts its retries keeps the completed cells in the
// journal; the rerun re-measures only the failed cells and assembles the
// exact uninterrupted dataset.
func TestJournalResumeAfterCellFailure(t *testing.T) {
	stencils, archs := journalFixture(t)
	want := baselineBytes(t, stencils, archs)
	path := filepath.Join(t.TempDir(), "collect.journal")

	// Run 1: arch[1] measurements always fault transiently.
	model := sim.New()
	failing := runnerFunc(func(w sim.Workload, oc opt.Opt, p opt.Params, arch gpu.Arch) (sim.Result, error) {
		if arch.Name == archs[1].Name {
			return sim.Result{}, &fault.TransientError{}
		}
		return model.Run(w, oc, p, arch)
	})
	p1 := journalProfiler()
	p1.Runner = failing
	p1.Retry = profile.RetryPolicy{MaxAttempts: 2, Sleep: func(time.Duration) {}}
	_, _, err := p1.CollectJournal(context.Background(), path, stencils, archs)
	var give *profile.GiveUpError
	if !errors.As(err, &give) {
		t.Fatalf("faulted run returned %v, want a give-up", err)
	}

	// Run 2: clean substrate, same collection identity.
	counting := &countingRunner{model: sim.New()}
	p2 := journalProfiler()
	p2.Runner = counting
	ds, stats, err := p2.CollectJournal(context.Background(), path, stencils, archs)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if stats.Resumed != 4 || stats.Measured != 4 {
		t.Fatalf("resume stats %+v, want 4 resumed + 4 measured", stats)
	}
	// Only the 4 failed cells are re-measured: 30 OCs x 2 samples each.
	if got, wantCalls := counting.calls.Load(), int64(4*opt.NumCombinations*2); got != wantCalls {
		t.Fatalf("resume measured %d samples, want exactly %d (the missing cells)", got, wantCalls)
	}
	testutil.AssertSameBytes(t, "resumed dataset", want, testutil.DatasetJSON(t, ds))
}

// TestJournalResumeAfterCancel: cancelling mid-collection (the SIGINT /
// kill path) loses at most the in-flight cells; the rerun resumes the
// journaled prefix and completes to identical bytes.
func TestJournalResumeAfterCancel(t *testing.T) {
	stencils, archs := journalFixture(t)
	want := baselineBytes(t, stencils, archs)
	path := filepath.Join(t.TempDir(), "collect.journal")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel 10 samples into the second cell: cell 0 is journaled, cell 1
	// is in-flight and lost.
	interrupting := &countingRunner{model: sim.New(), cancelAfter: int64(opt.NumCombinations*2 + 10), cancel: cancel}
	p1 := journalProfiler()
	p1.Runner = interrupting
	_, _, err := p1.CollectJournal(ctx, path, stencils, archs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}

	counting := &countingRunner{model: sim.New()}
	p2 := journalProfiler()
	p2.Runner = counting
	ds, stats, err := p2.CollectJournal(context.Background(), path, stencils, archs)
	if err != nil {
		t.Fatalf("resume after cancel: %v", err)
	}
	if stats.Resumed != 1 || stats.Measured != 7 {
		t.Fatalf("resume stats %+v, want exactly the completed cell resumed", stats)
	}
	testutil.AssertSameBytes(t, "post-interrupt dataset", want, testutil.DatasetJSON(t, ds))
}

// TestJournalTruncatedTail: a journal whose final record was half-written
// (kill mid-append) resumes by re-measuring only the damaged cell.
func TestJournalTruncatedTail(t *testing.T) {
	stencils, archs := journalFixture(t)
	want := baselineBytes(t, stencils, archs)
	path := filepath.Join(t.TempDir(), "collect.journal")
	if _, _, err := journalProfiler().CollectJournal(context.Background(), path, stencils, archs); err != nil {
		t.Fatalf("initial CollectJournal: %v", err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	counting := &countingRunner{model: sim.New()}
	p := journalProfiler()
	p.Runner = counting
	ds, stats, err := p.CollectJournal(context.Background(), path, stencils, archs)
	if err != nil {
		t.Fatalf("resume over truncated tail: %v", err)
	}
	if stats.Resumed != 7 || stats.Measured != 1 || stats.RepairedBytes == 0 {
		t.Fatalf("truncation stats %+v, want 7 resumed + 1 re-measured + repaired bytes", stats)
	}
	if got, wantCalls := counting.calls.Load(), int64(opt.NumCombinations*2); got != wantCalls {
		t.Fatalf("re-measured %d samples, want exactly one cell's %d", got, wantCalls)
	}
	testutil.AssertSameBytes(t, "repaired dataset", want, testutil.DatasetJSON(t, ds))
}

// TestJournalCorruptRecord: flipping one byte inside a middle record
// invalidates that record and everything after it (append-only logs have
// no authority past the first damage), and the resume re-measures exactly
// that tail.
func TestJournalCorruptRecord(t *testing.T) {
	stencils, archs := journalFixture(t)
	want := baselineBytes(t, stencils, archs)
	path := filepath.Join(t.TempDir(), "collect.journal")
	if _, _, err := journalProfiler().CollectJournal(context.Background(), path, stencils, archs); err != nil {
		t.Fatalf("initial CollectJournal: %v", err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Lines: [0] header, [1..8] one record per cell in completion order
	// (Workers == 1 completes cells in index order).
	lines := bytes.SplitAfter(raw, []byte("\n"))
	if len(lines) < 9 {
		t.Fatalf("journal has %d lines, want header + 8 records", len(lines))
	}
	target := lines[6] // cell index 5
	idx := bytes.Index(target, []byte(`"checksum":"`))
	if idx < 0 {
		t.Fatalf("record line holds no checksum: %q", target[:60])
	}
	at := idx + len(`"checksum":"`)
	if target[at] == '0' { // flip one hex digit of the stored checksum
		target[at] = '1'
	} else {
		target[at] = '0'
	}
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	counting := &countingRunner{model: sim.New()}
	p := journalProfiler()
	p.Runner = counting
	ds, stats, err := p.CollectJournal(context.Background(), path, stencils, archs)
	if err != nil {
		t.Fatalf("resume over corrupt record: %v", err)
	}
	if stats.Resumed != 5 || stats.Measured != 3 || stats.RepairedBytes == 0 {
		t.Fatalf("corruption stats %+v, want 5 resumed + 3 re-measured + repaired bytes", stats)
	}
	testutil.AssertSameBytes(t, "post-corruption dataset", want, testutil.DatasetJSON(t, ds))
}

// TestJournalVersionMismatch: a journal from an incompatible schema
// version is refused with the persist version error, not misread.
func TestJournalVersionMismatch(t *testing.T) {
	stencils, archs := journalFixture(t)
	path := filepath.Join(t.TempDir(), "collect.journal")
	w, _, err := persist.OpenWAL(path, profile.JournalKind, profile.JournalVersion+1, struct{}{})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, _, err = journalProfiler().CollectJournal(context.Background(), path, stencils, archs)
	var ve *persist.VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("got %v, want a persist.VersionError", err)
	}
}

// TestJournalArchSpecMismatch: the journal identity must cover the full
// architecture specs, not just their names. A catalog entry whose spec
// changed (here: memory bandwidth) measures different times, so resuming
// a journal collected under the old spec would silently splice
// incompatible measurements — it must be refused.
func TestJournalArchSpecMismatch(t *testing.T) {
	stencils, archs := journalFixture(t)
	path := filepath.Join(t.TempDir(), "collect.journal")
	if _, _, err := journalProfiler().CollectJournal(context.Background(), path, stencils, archs); err != nil {
		t.Fatalf("initial CollectJournal: %v", err)
	}
	modified := append([]gpu.Arch(nil), archs...)
	modified[1].MemBWGBs += 100 // same Name, different hardware
	_, _, err := journalProfiler().CollectJournal(context.Background(), path, stencils, modified)
	if !errors.Is(err, profile.ErrJournalMismatch) {
		t.Fatalf("resume against a changed arch spec returned %v, want ErrJournalMismatch", err)
	}
}

// journalLines splits a journal file into its header + record lines.
func journalLines(t *testing.T, path string) [][]byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	return lines
}

func writeJournalLines(t *testing.T, path string, lines [][]byte) {
	t.Helper()
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestJournalDuplicateIdentical: a byte-identical duplicate record (a
// re-dispatched shard, a doubly-flushed append) is tolerated — the
// duplicate is counted once and the assembled dataset is unchanged.
func TestJournalDuplicateIdentical(t *testing.T) {
	stencils, archs := journalFixture(t)
	want := baselineBytes(t, stencils, archs)
	path := filepath.Join(t.TempDir(), "collect.journal")
	if _, _, err := journalProfiler().CollectJournal(context.Background(), path, stencils, archs); err != nil {
		t.Fatalf("initial CollectJournal: %v", err)
	}

	lines := journalLines(t, path)
	if len(lines) != 9 {
		t.Fatalf("journal has %d lines, want header + 8 records", len(lines))
	}
	dup := append([][]byte{}, lines...)
	dup = append(dup, lines[3]) // duplicate cell index 2, byte-identical
	writeJournalLines(t, path, dup)

	ds, stats, err := journalProfiler().CollectJournal(context.Background(), path, stencils, archs)
	if err != nil {
		t.Fatalf("resume over identical duplicate: %v", err)
	}
	if stats.Resumed != 8 || stats.Measured != 0 {
		t.Fatalf("duplicate stats %+v, want all 8 unique cells resumed", stats)
	}
	testutil.AssertSameBytes(t, "deduped dataset", want, testutil.DatasetJSON(t, ds))
}

// TestJournalDuplicateDivergent: two records claiming the same cell with
// different bytes cannot both be right; last-write-wins used to silently
// pick one. The replay must fail with ErrJournalMismatch instead.
func TestJournalDuplicateDivergent(t *testing.T) {
	stencils, archs := journalFixture(t)
	path := filepath.Join(t.TempDir(), "collect.journal")
	p := journalProfiler()
	if _, _, err := p.CollectJournal(context.Background(), path, stencils, archs); err != nil {
		t.Fatalf("initial CollectJournal: %v", err)
	}

	// Append a validly-checksummed record for an already-present index
	// whose payload differs from the original measurement.
	meta := struct{}{}
	w, _, err := persist.OpenWAL(path, profile.JournalKind, profile.JournalVersion, meta)
	if err != nil {
		t.Fatal(err)
	}
	forged := struct {
		Index int `json:"index"`
	}{Index: 5}
	if err := w.Append(forged); err != nil {
		t.Fatal(err)
	}
	w.Close()

	_, _, err = p.CollectJournal(context.Background(), path, stencils, archs)
	if !errors.Is(err, profile.ErrJournalMismatch) {
		t.Fatalf("divergent duplicate returned %v, want ErrJournalMismatch", err)
	}
	if !strings.Contains(err.Error(), "divergent duplicate") {
		t.Fatalf("mismatch error %q does not name the divergent duplicate", err)
	}
}

// TestResumeStatsDamagedTailWithDuplicates: the accounting must stay
// exact when a journal holds both a duplicated record and a damaged
// tail — Resumed counts unique cells, Measured counts the re-measured
// remainder, and RepairedBytes reports the dropped tail.
func TestResumeStatsDamagedTailWithDuplicates(t *testing.T) {
	stencils, archs := journalFixture(t)
	want := baselineBytes(t, stencils, archs)
	path := filepath.Join(t.TempDir(), "collect.journal")
	if _, _, err := journalProfiler().CollectJournal(context.Background(), path, stencils, archs); err != nil {
		t.Fatalf("initial CollectJournal: %v", err)
	}

	lines := journalLines(t, path)
	if len(lines) != 9 {
		t.Fatalf("journal has %d lines, want header + 8 records", len(lines))
	}
	// Rebuild as: header, r0..r4, dup(r2), r5, r6, then a half-written r7.
	var out [][]byte
	out = append(out, lines[:6]...)   // header + r0..r4
	out = append(out, lines[3])       // duplicate of cell 2
	out = append(out, lines[6:8]...)  // r5, r6
	tail := lines[8][:len(lines[8])/2] // r7 cut mid-line
	out = append(out, tail)
	writeJournalLines(t, path, out)

	counting := &countingRunner{model: sim.New()}
	p := journalProfiler()
	p.Runner = counting
	ds, stats, err := p.CollectJournal(context.Background(), path, stencils, archs)
	if err != nil {
		t.Fatalf("resume over duplicate + damaged tail: %v", err)
	}
	if stats.Cells != 8 || stats.Resumed != 7 || stats.Measured != 1 {
		t.Fatalf("stats %+v, want 7 unique resumed + 1 re-measured of 8", stats)
	}
	if stats.RepairedBytes != int64(len(tail)) {
		t.Fatalf("RepairedBytes = %d, want the %d dropped tail bytes", stats.RepairedBytes, len(tail))
	}
	if got, wantCalls := counting.calls.Load(), int64(opt.NumCombinations*2); got != wantCalls {
		t.Fatalf("re-measured %d samples, want exactly one cell's %d", got, wantCalls)
	}
	testutil.AssertSameBytes(t, "repaired deduped dataset", want, testutil.DatasetJSON(t, ds))
}

// TestJournalMetaMismatch: a journal written under a different seed (or
// corpus, budget, trial count) must not be spliced into this collection.
func TestJournalMetaMismatch(t *testing.T) {
	stencils, archs := journalFixture(t)
	path := filepath.Join(t.TempDir(), "collect.journal")
	if _, _, err := journalProfiler().CollectJournal(context.Background(), path, stencils, archs); err != nil {
		t.Fatalf("initial CollectJournal: %v", err)
	}
	other := journalProfiler()
	other.Seed = 12
	_, _, err := other.CollectJournal(context.Background(), path, stencils, archs)
	if !errors.Is(err, profile.ErrJournalMismatch) {
		t.Fatalf("got %v, want ErrJournalMismatch", err)
	}
	if !strings.Contains(err.Error(), "journal") {
		t.Fatalf("mismatch error %q does not mention the journal", err)
	}
}
