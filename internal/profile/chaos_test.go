package profile_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"stencilmart/internal/core"
	"stencilmart/internal/fault"
	"stencilmart/internal/gpu"
	"stencilmart/internal/profile"
	"stencilmart/internal/sim"
	"stencilmart/internal/stencil"
	"stencilmart/internal/testutil"
)

// chaosProfiler builds the fault-tolerant collection stack the chaos
// smoke run uses: the default injector config (15% transient errors plus
// panics, NaN/Inf samples, and timing spikes) wrapped by retries and
// median-of-3 trials.
func chaosProfiler(workers int) (*profile.Profiler, *fault.Injector) {
	injector := fault.Wrap(sim.New(), fault.DefaultConfig(99))
	p := &profile.Profiler{
		Runner:       injector,
		SamplesPerOC: 3,
		Seed:         21,
		Workers:      workers,
		Trials:       3,
		Retry: profile.RetryPolicy{
			MaxAttempts: 6,
			Sleep:       func(time.Duration) {},
		},
	}
	return p, injector
}

// TestChaosDifferential is the fault-tolerance acceptance test: a
// collection run under deterministic fault injection — transient errors
// on >10% of sites, at least one injected panic, non-finite samples, and
// timing spikes — must produce a dataset bitwise-identical to a
// fault-free run, and a framework trained on it must serve bitwise-
// identical predictions.
func TestChaosDifferential(t *testing.T) {
	corpus := testutil.SmallCorpus(t)
	archs := gpu.Catalog()[:2]

	clean := &profile.Profiler{Model: sim.New(), SamplesPerOC: 3, Seed: 21, Workers: 1}
	cleanDS, err := clean.Collect(context.Background(), corpus, archs)
	if err != nil {
		t.Fatalf("clean Collect: %v", err)
	}
	cleanBytes := testutil.DatasetJSON(t, cleanDS)

	chaos, injector := chaosProfiler(4)
	chaosDS, err := chaos.Collect(context.Background(), corpus, archs)
	if err != nil {
		t.Fatalf("Collect under injection: %v", err)
	}
	chaosBytes := testutil.DatasetJSON(t, chaosDS)
	testutil.AssertSameBytes(t, "chaos vs clean dataset", cleanBytes, chaosBytes)

	// The run must actually have been chaotic: every fault class fired,
	// panics included, and transient errors hit >= 10% of sites.
	st := injector.Stats()
	t.Logf("injected faults: %+v (total %d over %d sites)", st, st.Total(), st.Sites)
	if st.Panics < 1 {
		t.Errorf("no panic was injected (stats %+v)", st)
	}
	if st.Sites == 0 || st.Transients < st.Sites/10 {
		t.Errorf("transient errors hit %d of %d sites, want >= 10%%", st.Transients, st.Sites)
	}
	for name, n := range map[string]uint64{
		"nan": st.NaNs, "inf": st.Infs, "spike": st.Spikes,
	} {
		if n < 1 {
			t.Errorf("fault class %s never fired (stats %+v)", name, st)
		}
	}

	// Worker scheduling must not interact with injection: a serial chaos
	// run (fresh injector, same seed) produces the same bytes.
	serialChaos, _ := chaosProfiler(1)
	serialDS, err := serialChaos.Collect(context.Background(), corpus, archs)
	if err != nil {
		t.Fatalf("serial Collect under injection: %v", err)
	}
	testutil.AssertSameBytes(t, "serial vs parallel chaos dataset", cleanBytes, testutil.DatasetJSON(t, serialDS))

	// End-to-end: frameworks trained on the clean and chaos-collected
	// datasets serve identical predictions. Both datasets are re-read from
	// their serialized bytes — the exact artifact a collection run leaves
	// behind.
	cfg := core.SmokeConfig()
	cfg.GBDT.Rounds = 5
	cfg.GBReg.Rounds = 10
	probes := []stencil.Stencil{stencil.Star(2, 2), stencil.Box(3, 1)}
	predict := func(raw []byte) []byte {
		t.Helper()
		ds, err := profile.ReadJSON(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("re-read dataset: %v", err)
		}
		fw, err := core.FromDataset(cfg, ds, nil)
		if err != nil {
			t.Fatalf("FromDataset: %v", err)
		}
		if err := fw.TrainAll(context.Background(), core.ClassGBDT, core.RegGB); err != nil {
			t.Fatalf("TrainAll: %v", err)
		}
		var out bytes.Buffer
		for _, s := range probes {
			pred, err := fw.ServePredict(archs[0].Name, s)
			if err != nil {
				t.Fatalf("ServePredict(%s): %v", s.Name, err)
			}
			raw, err := json.Marshal(pred)
			if err != nil {
				t.Fatal(err)
			}
			out.Write(raw)
			out.WriteByte('\n')
		}
		return out.Bytes()
	}
	testutil.AssertSameBytes(t, "chaos vs clean predictions", predict(cleanBytes), predict(chaosBytes))
}
