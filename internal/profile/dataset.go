package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/stencil"
)

// Dataset is the profiled stencil corpus: every stencil's per-OC best
// times on every architecture, plus the flat instance list for regression.
type Dataset struct {
	Stencils  []stencil.Stencil
	Archs     []gpu.Arch
	Profiles  [][]Profile // [archIdx][stencilIdx]
	Instances []Instance
}

// ArchIndex returns the position of the named architecture, or an error.
func (d *Dataset) ArchIndex(name string) (int, error) {
	for i, a := range d.Archs {
		if a.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("profile: architecture %q not in dataset", name)
}

// BestTimeMatrix returns, for one architecture, the per-OC best times as
// a [ocIdx][stencilIdx] matrix with NaN for crashed cells — the input to
// pairwise-OC correlation (Sec. III-C).
func (d *Dataset) BestTimeMatrix(archIdx int) [][]float64 {
	nOC := opt.NumCombinations
	m := make([][]float64, nOC)
	for ci := range m {
		m[ci] = make([]float64, len(d.Stencils))
		for si := range d.Stencils {
			res := d.Profiles[archIdx][si].Results[ci]
			if res.Crashed {
				m[ci][si] = math.NaN()
			} else {
				m[ci][si] = res.Time
			}
		}
	}
	return m
}

// MedianTimeMatrix returns, for one architecture, the per-OC *median*
// sampled time as a [ocIdx][stencilIdx] matrix with NaN where no sample
// ran. The median is a far more stable statistic of an OC's behavior
// than the best-of-N minimum, so the PCC-based OC merging correlates
// medians while best-OC labels keep using the minimum.
func (d *Dataset) MedianTimeMatrix(archIdx int) [][]float64 {
	arch := d.Archs[archIdx].Name
	samples := make([][][]float64, opt.NumCombinations)
	for ci := range samples {
		samples[ci] = make([][]float64, len(d.Stencils))
	}
	for _, in := range d.Instances {
		if in.Arch != arch {
			continue
		}
		ci := opt.Index(in.OC)
		samples[ci][in.StencilIdx] = append(samples[ci][in.StencilIdx], in.Time)
	}
	m := make([][]float64, opt.NumCombinations)
	for ci := range m {
		m[ci] = make([]float64, len(d.Stencils))
		for si := range d.Stencils {
			ts := samples[ci][si]
			if len(ts) == 0 {
				m[ci][si] = math.NaN()
				continue
			}
			sort.Float64s(ts)
			// True median: the middle element for odd counts, the mean of
			// the two middle elements for even counts (ts[n/2] alone would
			// be the upper-middle value).
			if n := len(ts); n%2 == 1 {
				m[ci][si] = ts[n/2]
			} else {
				m[ci][si] = (ts[n/2-1] + ts[n/2]) / 2
			}
		}
	}
	return m
}

// Labels returns the best-OC index (into opt.Combinations) per stencil on
// one architecture — the classification ground truth.
func (d *Dataset) Labels(archIdx int) []int {
	out := make([]int, len(d.Stencils))
	for si := range d.Stencils {
		out[si] = opt.Index(d.Profiles[archIdx][si].BestOC)
	}
	return out
}

// InstancesByArch partitions the instance list by architecture name.
func (d *Dataset) InstancesByArch() map[string][]Instance {
	out := make(map[string][]Instance, len(d.Archs))
	for _, in := range d.Instances {
		out[in.Arch] = append(out[in.Arch], in)
	}
	return out
}

// Validate checks dataset structural invariants; used after
// deserialization.
func (d *Dataset) Validate() error {
	if len(d.Archs) == 0 || len(d.Stencils) == 0 {
		return fmt.Errorf("profile: empty dataset")
	}
	if len(d.Profiles) != len(d.Archs) {
		return fmt.Errorf("profile: %d profile rows for %d archs", len(d.Profiles), len(d.Archs))
	}
	combos := opt.Combinations()
	for ai, row := range d.Profiles {
		if len(row) != len(d.Stencils) {
			return fmt.Errorf("profile: arch %s has %d profiles for %d stencils",
				d.Archs[ai].Name, len(row), len(d.Stencils))
		}
		for si, p := range row {
			if p.StencilIdx != si {
				return fmt.Errorf("profile: arch %s profile %d indexes stencil %d", d.Archs[ai].Name, si, p.StencilIdx)
			}
			if len(p.Results) != opt.NumCombinations {
				return fmt.Errorf("profile: arch %s stencil %d has %d OC results", d.Archs[ai].Name, si, len(p.Results))
			}
			// Results must follow the canonical OC order: downstream code
			// indexes Results[ci] by position in opt.Combinations.
			for ci, res := range p.Results {
				if res.OC != combos[ci] {
					return fmt.Errorf("profile: arch %s stencil %d result %d holds OC %s, want %s",
						d.Archs[ai].Name, si, ci, res.OC, combos[ci])
				}
				// Infinite times must be rejected alongside NaN: an +Inf
				// result in a hand-edited or corrupt dataset would
				// otherwise validate cleanly and poison the best-OC labels.
				if !res.Crashed && (res.Time <= 0 || math.IsNaN(res.Time) || math.IsInf(res.Time, 0)) {
					return fmt.Errorf("profile: arch %s stencil %d OC %s has non-positive or non-finite time", d.Archs[ai].Name, si, res.OC)
				}
			}
			if !p.BestOC.Valid() || p.BestTime <= 0 || math.IsNaN(p.BestTime) || math.IsInf(p.BestTime, 0) {
				return fmt.Errorf("profile: arch %s stencil %d has invalid best OC/time", d.Archs[ai].Name, si)
			}
		}
	}
	archNames := make(map[string]bool, len(d.Archs))
	for _, a := range d.Archs {
		archNames[a.Name] = true
	}
	for i, in := range d.Instances {
		if in.StencilIdx < 0 || in.StencilIdx >= len(d.Stencils) {
			return fmt.Errorf("profile: instance %d references stencil %d", i, in.StencilIdx)
		}
		if !archNames[in.Arch] {
			return fmt.Errorf("profile: instance %d references unknown arch %q", i, in.Arch)
		}
		// An invalid OC would index opt.Combinations at -1 downstream
		// (MedianTimeMatrix); reject it here instead of panicking there.
		if !in.OC.Valid() {
			return fmt.Errorf("profile: instance %d has invalid OC %#x", i, int(in.OC))
		}
		if in.Time <= 0 || math.IsNaN(in.Time) || math.IsInf(in.Time, 0) {
			return fmt.Errorf("profile: instance %d has non-positive time", i)
		}
	}
	return nil
}

// datasetJSON is the serialization schema. Stencil points flatten into
// triplets; architectures serialize by name and are rehydrated from the
// catalog so microarchitectural constants stay in code.
type datasetJSON struct {
	Stencils []stencilJSON `json:"stencils"`
	Archs    []string      `json:"archs"`
	Profiles [][]Profile   `json:"profiles"`
	Inst     []Instance    `json:"instances"`
}

type stencilJSON struct {
	Name   string `json:"name"`
	Dims   int    `json:"dims"`
	Points []int  `json:"points"` // dx,dy,dz triplets
}

// WriteJSON serializes the dataset.
func (d *Dataset) WriteJSON(w io.Writer) error {
	out := datasetJSON{Profiles: d.Profiles, Inst: d.Instances}
	for _, s := range d.Stencils {
		sj := stencilJSON{Name: s.Name, Dims: s.Dims}
		for _, p := range s.Points {
			sj.Points = append(sj.Points, p.Dx, p.Dy, p.Dz)
		}
		out.Stencils = append(out.Stencils, sj)
	}
	for _, a := range d.Archs {
		out.Archs = append(out.Archs, a.Name)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadJSON deserializes and validates a dataset.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var in datasetJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("profile: decode dataset: %w", err)
	}
	d := &Dataset{Profiles: in.Profiles, Instances: in.Inst}
	for _, sj := range in.Stencils {
		if len(sj.Points)%3 != 0 {
			return nil, fmt.Errorf("profile: stencil %q has %d point coords", sj.Name, len(sj.Points))
		}
		var pts []stencil.Point
		for i := 0; i+2 < len(sj.Points); i += 3 {
			pts = append(pts, stencil.Point{Dx: sj.Points[i], Dy: sj.Points[i+1], Dz: sj.Points[i+2]})
		}
		s, err := stencil.New(sj.Name, sj.Dims, pts)
		if err != nil {
			return nil, err
		}
		d.Stencils = append(d.Stencils, s)
	}
	for _, name := range in.Archs {
		a, err := gpu.ByName(name)
		if err != nil {
			return nil, err
		}
		d.Archs = append(d.Archs, a)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// Folds splits n items into k cross-validation folds of near-equal size
// after a seeded shuffle, returning the item indices per fold (the 5-fold
// protocol of Sec. V-A3).
func Folds(n, k int, seed int64) ([][]int, error) {
	if k < 2 || k > n {
		return nil, fmt.Errorf("profile: cannot split %d items into %d folds", n, k)
	}
	idx := rand.New(rand.NewSource(seed)).Perm(n)
	out := make([][]int, k)
	for i, v := range idx {
		out[i%k] = append(out[i%k], v)
	}
	return out, nil
}

// TrainTest returns the train and test index sets for the given fold.
func TrainTest(folds [][]int, fold int) (train, test []int) {
	for i, f := range folds {
		if i == fold {
			test = append(test, f...)
		} else {
			train = append(train, f...)
		}
	}
	return train, test
}
