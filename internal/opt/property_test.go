package opt

import "testing"

// constraintsHold re-states the Table I rules independently of Valid so
// the property test cannot share a bug with the implementation: BM and CM
// are mutually exclusive, and RT and PR each require ST.
func constraintsHold(o Opt) bool {
	bm, cm := o&BM != 0, o&CM != 0
	st, rt, pr := o&ST != 0, o&RT != 0, o&PR != 0
	if bm && cm {
		return false
	}
	if (rt || pr) && !st {
		return false
	}
	return true
}

// TestCombinationsExactlyTheValidMasks walks the entire 6-flag universe:
// every constraint-satisfying mask appears in Combinations exactly once,
// in ascending order, and no violating mask appears at all.
func TestCombinationsExactlyTheValidMasks(t *testing.T) {
	combos := Combinations()
	if len(combos) != NumCombinations {
		t.Fatalf("Combinations returned %d OCs, NumCombinations says %d", len(combos), NumCombinations)
	}
	inCombos := map[Opt]int{}
	for _, oc := range combos {
		inCombos[oc]++
	}
	validCount := 0
	for mask := Opt(0); mask < 1<<6; mask++ {
		want := constraintsHold(mask)
		if got := mask.Valid(); got != want {
			t.Errorf("%s: Valid()=%v, independent constraints say %v", mask, got, want)
		}
		if want {
			validCount++
			if inCombos[mask] != 1 {
				t.Errorf("%s: appears %d times in Combinations, want exactly once", mask, inCombos[mask])
			}
			if (mask.ValidationError() == nil) != want {
				t.Errorf("%s: ValidationError disagrees with constraints", mask)
			}
		} else {
			if inCombos[mask] != 0 {
				t.Errorf("%s: invalid mask present in Combinations", mask)
			}
			if mask.ValidationError() == nil {
				t.Errorf("%s: invalid mask has nil ValidationError", mask)
			}
		}
	}
	if validCount != NumCombinations {
		t.Fatalf("universe holds %d valid masks, NumCombinations says %d", validCount, NumCombinations)
	}
	for i := 1; i < len(combos); i++ {
		if combos[i-1] >= combos[i] {
			t.Fatalf("Combinations not in ascending order at %d: %s >= %s", i, combos[i-1], combos[i])
		}
	}
}

// TestIndexRoundTrip checks Index against Combinations over the whole
// universe: valid masks round-trip to their position, invalid ones map
// to -1.
func TestIndexRoundTrip(t *testing.T) {
	combos := Combinations()
	for i, oc := range combos {
		if got := Index(oc); got != i {
			t.Errorf("Index(%s)=%d, want %d", oc, got, i)
		}
	}
	for mask := Opt(0); mask < 1<<6; mask++ {
		if !constraintsHold(mask) {
			if got := Index(mask); got != -1 {
				t.Errorf("Index(%s)=%d for invalid mask, want -1", mask, got)
			}
		}
	}
}

// TestParseStringRoundTrip checks that every valid OC's rendered name
// parses back to the same mask.
func TestParseStringRoundTrip(t *testing.T) {
	for _, oc := range Combinations() {
		back, err := Parse(oc.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", oc.String(), err)
		}
		if back != oc {
			t.Fatalf("Parse(%q)=%s, want %s", oc.String(), back, oc)
		}
	}
}
