package opt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidConstraints(t *testing.T) {
	cases := []struct {
		oc   Opt
		want bool
	}{
		{0, true},
		{ST, true},
		{TB, true},
		{BM | CM, false},
		{RT, false},
		{PR, false},
		{ST | RT, true},
		{ST | PR, true},
		{ST | RT | PR | BM | TB, true},
		{ST | RT | PR | BM | CM, false},
		{TB | CM, true},
		{TB | RT, false},
	}
	for _, c := range cases {
		if got := c.oc.Valid(); got != c.want {
			t.Errorf("Valid(%s) = %v, want %v", c.oc, got, c.want)
		}
		if err := c.oc.ValidationError(); (err == nil) != c.want {
			t.Errorf("ValidationError(%s) = %v, valid=%v", c.oc, err, c.want)
		}
	}
}

func TestCombinationsCount(t *testing.T) {
	combos := Combinations()
	if len(combos) != NumCombinations {
		t.Fatalf("Combinations() = %d, want %d", len(combos), NumCombinations)
	}
	seen := map[Opt]bool{}
	for i, oc := range combos {
		if !oc.Valid() {
			t.Errorf("invalid OC %s in enumeration", oc)
		}
		if seen[oc] {
			t.Errorf("duplicate OC %s", oc)
		}
		seen[oc] = true
		if got := Index(oc); got != i {
			t.Errorf("Index(%s) = %d, want %d", oc, got, i)
		}
	}
	if Index(BM|CM) != -1 {
		t.Error("Index of invalid OC != -1")
	}
}

func TestStringAndParse(t *testing.T) {
	cases := map[Opt]string{
		0:                 "BASE",
		ST:                "ST",
		TB | CM:           "TB_CM",
		TB | BM:           "TB_BM",
		ST | TB | RT:      "ST_TB_RT",
		ST | BM | RT | PR: "ST_BM_RT_PR",
	}
	for oc, want := range cases {
		if got := oc.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", oc, got, want)
		}
		back, err := Parse(want)
		if err != nil || back != oc {
			t.Errorf("Parse(%q) = %v, %v; want %v", want, back, err, oc)
		}
	}
	if _, err := Parse("ST_XX"); err == nil {
		t.Error("Parse accepted unknown abbreviation")
	}
}

func TestParseRoundTripAll(t *testing.T) {
	for _, oc := range Combinations() {
		back, err := Parse(oc.String())
		if err != nil {
			t.Fatalf("%s: %v", oc, err)
		}
		if back != oc {
			t.Fatalf("round trip %s -> %s", oc, back)
		}
	}
}

func TestFlagVector(t *testing.T) {
	v := (ST | PR).FlagVector()
	want := []float64{1, 0, 0, 0, 0, 1}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("FlagVector = %v, want %v", v, want)
		}
	}
	if len(FlagNames) != len(v) {
		t.Fatalf("FlagNames length %d != vector length %d", len(FlagNames), len(v))
	}
}

func TestSampleAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, oc := range Combinations() {
		for _, dims := range []int{2, 3} {
			for i := 0; i < 50; i++ {
				p := Sample(oc, dims, rng)
				if err := p.Validate(oc, dims); err != nil {
					t.Fatalf("oc=%s dims=%d: %v (params %+v)", oc, dims, err, p)
				}
			}
		}
	}
}

func TestValidateRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := Sample(ST, 2, rng)
	if err := p.Validate(0, 2); err == nil {
		t.Error("streaming params accepted under BASE")
	}
	q := Sample(0, 2, rng)
	q.BlockX = 48
	if err := q.Validate(0, 2); err == nil {
		t.Error("non-pow2 block accepted")
	}
	q = Sample(0, 2, rng)
	q.Merge = 4
	if err := q.Validate(0, 2); err == nil {
		t.Error("merge factor accepted without BM/CM")
	}
	q = Sample(TB, 2, rng)
	q.TBDepth = 3
	if err := q.Validate(TB, 2); err == nil {
		t.Error("non-pow2 TB depth accepted")
	}
}

func TestEncodeWidthAndLog2(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := Sample(ST|BM|TB|PR, 3, rng)
	v := p.Encode()
	if len(v) != len(ParamFeatureNames) {
		t.Fatalf("encoded width %d, want %d", len(v), len(ParamFeatureNames))
	}
	if v[0] != log2f(p.BlockX) || v[2] != log2f(p.Merge) {
		t.Error("log2 encoding mismatch")
	}
	base := Params{BlockX: 32, BlockY: 4, Merge: 1, Unroll: 1}
	e := base.Encode()
	if e[2] != 0 || e[4] != 0 || e[8] != 0 {
		t.Errorf("neutral values must encode to 0: %v", e)
	}
}

func TestSpaceContents(t *testing.T) {
	sp := Space(ST|BM|TB|PR, 3)
	for _, key := range []string{"blockX", "blockY", "merge", "mergeDim", "streamTile", "streamDim", "unroll", "useSmem", "tbDepth", "prefetchDepth"} {
		if len(sp[key]) == 0 {
			t.Errorf("space missing %q", key)
		}
	}
	if _, ok := Space(0, 2)["streamTile"]; ok {
		t.Error("BASE space includes streaming parameters")
	}
	if _, ok := Space(ST, 2)["streamDim"]; ok {
		t.Error("2-D space includes streamDim enum")
	}
}

// Property: String/Parse round-trips for arbitrary valid bitmasks.
func TestQuickStringParse(t *testing.T) {
	f := func(raw uint8) bool {
		oc := Opt(raw) & (ST | TB | BM | CM | RT | PR)
		if !oc.Valid() {
			return true
		}
		back, err := Parse(oc.String())
		return err == nil && back == oc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: sampled params encode to finite values with the fixed width.
func TestQuickEncodeFixedWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	combos := Combinations()
	f := func(i uint8, threeD bool) bool {
		oc := combos[int(i)%len(combos)]
		dims := 2
		if threeD {
			dims = 3
		}
		p := Sample(oc, dims, rng)
		v := p.Encode()
		if len(v) != len(ParamFeatureNames) {
			return false
		}
		for _, x := range v {
			if x < 0 || x > 12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
