// Package opt models the six stencil optimizations of Table I, the
// constraints that govern how they combine, the enumeration of all valid
// optimization combinations (OCs), and each OC's tunable parameter space
// (numeric power-of-two, Boolean and enumeration parameters, Sec. IV-E).
package opt

import (
	"fmt"
	"strings"
)

// Opt is a bitmask of enabled optimizations.
type Opt uint8

// The six optimizations of Table I.
const (
	// ST is streaming: 2.5-D spatial blocking over a streaming dimension
	// with concurrent tile traversal and loop unrolling.
	ST Opt = 1 << iota
	// TB is temporal blocking: fusing time steps with redundant halo loads.
	TB
	// BM is block merging: each thread computes a block of adjacent
	// output points.
	BM
	// CM is cyclic merging: each thread computes points separated by a
	// fixed stride.
	CM
	// RT is retiming: decomposing the stencil into accumulating
	// sub-computations to homogenize register pressure (requires ST).
	RT
	// PR is prefetching: overlapping next-iteration loads with current
	// computation (requires ST).
	PR
)

// All lists the individual optimizations in canonical naming order.
var All = []Opt{ST, TB, BM, CM, RT, PR}

// abbrev maps each optimization to its Table I abbreviation.
var abbrev = map[Opt]string{ST: "ST", TB: "TB", BM: "BM", CM: "CM", RT: "RT", PR: "PR"}

// Has reports whether all optimizations in mask are enabled.
func (o Opt) Has(mask Opt) bool { return o&mask == mask }

// String renders the OC name by joining enabled abbreviations with
// underscores in canonical order; the empty combination renders as "BASE"
// (the unoptimized one-thread-per-point kernel).
func (o Opt) String() string {
	if o == 0 {
		return "BASE"
	}
	var parts []string
	for _, opt := range All {
		if o.Has(opt) {
			parts = append(parts, abbrev[opt])
		}
	}
	return strings.Join(parts, "_")
}

// Parse converts an OC name produced by String back into a bitmask.
func Parse(name string) (Opt, error) {
	if name == "BASE" {
		return 0, nil
	}
	var o Opt
	for _, part := range strings.Split(name, "_") {
		found := false
		for opt, ab := range abbrev {
			if ab == part {
				o |= opt
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("opt: unknown optimization %q in %q", part, name)
		}
	}
	return o, nil
}

// Valid reports whether the combination satisfies the Table I constraints:
// BM and CM are mutually exclusive, and RT and PR require ST.
func (o Opt) Valid() bool {
	if o.Has(BM) && o.Has(CM) {
		return false
	}
	if o.Has(RT) && !o.Has(ST) {
		return false
	}
	if o.Has(PR) && !o.Has(ST) {
		return false
	}
	return true
}

// ValidationError explains why an OC violates Table I, or returns nil.
func (o Opt) ValidationError() error {
	switch {
	case o.Has(BM) && o.Has(CM):
		return fmt.Errorf("opt: %s: BM and CM are mutually exclusive", o)
	case o.Has(RT) && !o.Has(ST):
		return fmt.Errorf("opt: %s: RT is only valid with ST enabled", o)
	case o.Has(PR) && !o.Has(ST):
		return fmt.Errorf("opt: %s: PR is only valid with ST enabled", o)
	default:
		return nil
	}
}

// Combinations enumerates every valid OC (including BASE) in ascending
// bitmask order. With six optimizations and the Table I constraints there
// are exactly 30 valid combinations.
func Combinations() []Opt {
	var out []Opt
	for o := Opt(0); o < 1<<6; o++ {
		if o.Valid() {
			out = append(out, o)
		}
	}
	return out
}

// NumCombinations is len(Combinations()), kept as a named constant for
// sizing arrays indexed by OC.
const NumCombinations = 30

// Index returns the position of the OC within Combinations(), or -1 if
// the combination is invalid.
func Index(o Opt) int {
	if !o.Valid() {
		return -1
	}
	idx := 0
	for c := Opt(0); c < o; c++ {
		if c.Valid() {
			idx++
		}
	}
	return idx
}

// FlagVector encodes the OC as six 0/1 features in All order, used as
// model input alongside the parameter setting.
func (o Opt) FlagVector() []float64 {
	v := make([]float64, len(All))
	o.FlagVectorInto(v)
	return v
}

// FlagVectorInto writes FlagVector's features into dst (len(All)) without
// allocating, for callers encoding into arena scratch.
func (o Opt) FlagVectorInto(dst []float64) {
	if len(dst) != len(All) {
		panic(fmt.Sprintf("opt: flag dst %d, want %d", len(dst), len(All)))
	}
	for i, opt := range All {
		if o.Has(opt) {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
}

// FlagNames lists the OC flag feature names in FlagVector order.
var FlagNames = []string{"st", "tb", "bm", "cm", "rt", "pr"}
