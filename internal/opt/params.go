package opt

import (
	"fmt"
	"math"
	"math/rand"
)

// Params is one parameter setting for a stencil kernel under an OC.
// Numeric parameters are restricted to powers of two, Boolean parameters
// to {0,1}, and enumeration parameters start at 1 with unit stride,
// following Sec. IV-E. Fields irrelevant to the OC are held at their
// neutral values so every setting encodes into a fixed-width vector.
type Params struct {
	// BlockX and BlockY are the thread-block dimensions (powers of two).
	BlockX, BlockY int
	// Merge is the block/cyclic merging factor (power of two, 1 = off).
	Merge int
	// MergeDim is the merged dimension as a 1-based enum (1=x, 2=y, 3=z);
	// 0 when merging is off.
	MergeDim int
	// StreamTile is the concurrent-streaming tile length along the
	// streaming dimension (power of two); 0 when ST is off.
	StreamTile int
	// StreamDim is the streaming dimension as a 1-based enum; 0 when ST
	// is off. 2-D stencils always stream dimension 2 (y).
	StreamDim int
	// Unroll is the register-reuse unroll factor under ST (power of two).
	Unroll int
	// UseSmem selects shared-memory tiling under ST.
	UseSmem bool
	// TBDepth is the temporal-blocking degree (power of two >= 2); 0 when
	// TB is off.
	TBDepth int
	// PrefetchDepth is the PR lookahead as an enum (1 or 2); 0 when PR is
	// off.
	PrefetchDepth int
}

// Candidate values for each tunable. Block sizes keep BlockX*BlockY within
// the 1024-thread block limit; Space filters invalid pairs.
var (
	blockXVals   = []int{16, 32, 64, 128}
	blockYVals   = []int{1, 2, 4, 8, 16}
	mergeVals    = []int{2, 4, 8}
	streamVals   = []int{16, 32, 64, 128, 256}
	unrollVals   = []int{1, 2, 4}
	tbDepthVals  = []int{2, 4}
	prefetchVals = []int{1, 2}
)

// Space enumerates candidate values per tunable for the OC in a stencil of
// the given dimensionality, as (name, values) pairs in encoding order. It
// exists for documentation and exhaustive-search tooling; random sampling
// uses Sample.
func Space(oc Opt, dims int) map[string][]int {
	sp := map[string][]int{
		"blockX": blockXVals,
		"blockY": blockYVals,
	}
	if oc.Has(BM) || oc.Has(CM) {
		sp["merge"] = mergeVals
		sp["mergeDim"] = enumRange(dims)
	}
	if oc.Has(ST) {
		sp["streamTile"] = streamVals
		if dims == 3 {
			sp["streamDim"] = enumRange(3)
		}
		sp["unroll"] = unrollVals
		sp["useSmem"] = []int{0, 1}
	}
	if oc.Has(TB) {
		sp["tbDepth"] = tbDepthVals
	}
	if oc.Has(PR) {
		sp["prefetchDepth"] = prefetchVals
	}
	return sp
}

func enumRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// Sample draws one random valid parameter setting for the OC.
func Sample(oc Opt, dims int, rng *rand.Rand) Params {
	var p Params
	for {
		p.BlockX = pick(blockXVals, rng)
		p.BlockY = pick(blockYVals, rng)
		if p.BlockX*p.BlockY <= 1024 && p.BlockX*p.BlockY >= 32 {
			break
		}
	}
	if oc.Has(BM) || oc.Has(CM) {
		p.Merge = pick(mergeVals, rng)
		p.MergeDim = 1 + rng.Intn(dims)
	} else {
		p.Merge = 1
	}
	if oc.Has(ST) {
		p.StreamTile = pick(streamVals, rng)
		if dims == 3 {
			p.StreamDim = 1 + rng.Intn(3)
		} else {
			p.StreamDim = 2
		}
		p.Unroll = pick(unrollVals, rng)
		p.UseSmem = rng.Intn(2) == 1
	} else {
		p.Unroll = 1
	}
	if oc.Has(TB) {
		p.TBDepth = pick(tbDepthVals, rng)
	}
	if oc.Has(PR) {
		p.PrefetchDepth = pick(prefetchVals, rng)
	}
	return p
}

func pick(vals []int, rng *rand.Rand) int { return vals[rng.Intn(len(vals))] }

// Validate checks that the setting is consistent with the OC and the
// Sec. IV-E parameter-type rules.
func (p Params) Validate(oc Opt, dims int) error {
	if !isPow2(p.BlockX) || !isPow2(p.BlockY) {
		return fmt.Errorf("opt: block %dx%d not powers of two", p.BlockX, p.BlockY)
	}
	if t := p.BlockX * p.BlockY; t < 32 || t > 1024 {
		return fmt.Errorf("opt: block size %d outside [32,1024]", t)
	}
	merging := oc.Has(BM) || oc.Has(CM)
	if merging {
		if p.Merge < 2 || !isPow2(p.Merge) {
			return fmt.Errorf("opt: merge factor %d invalid under %s", p.Merge, oc)
		}
		if p.MergeDim < 1 || p.MergeDim > dims {
			return fmt.Errorf("opt: merge dim %d outside [1,%d]", p.MergeDim, dims)
		}
	} else if p.Merge > 1 || p.MergeDim != 0 {
		return fmt.Errorf("opt: merge parameters set without BM/CM in %s", oc)
	}
	if oc.Has(ST) {
		if p.StreamTile < 1 || !isPow2(p.StreamTile) {
			return fmt.Errorf("opt: stream tile %d invalid", p.StreamTile)
		}
		if p.StreamDim < 1 || p.StreamDim > dims {
			return fmt.Errorf("opt: stream dim %d outside [1,%d]", p.StreamDim, dims)
		}
		if p.Unroll < 1 || !isPow2(p.Unroll) {
			return fmt.Errorf("opt: unroll %d invalid", p.Unroll)
		}
	} else if p.StreamTile != 0 || p.StreamDim != 0 || p.UseSmem || p.Unroll > 1 {
		return fmt.Errorf("opt: streaming parameters set without ST in %s", oc)
	}
	if oc.Has(TB) {
		if p.TBDepth < 2 || !isPow2(p.TBDepth) {
			return fmt.Errorf("opt: TB depth %d invalid", p.TBDepth)
		}
	} else if p.TBDepth != 0 {
		return fmt.Errorf("opt: TB depth set without TB in %s", oc)
	}
	if oc.Has(PR) {
		if p.PrefetchDepth < 1 || p.PrefetchDepth > 2 {
			return fmt.Errorf("opt: prefetch depth %d outside [1,2]", p.PrefetchDepth)
		}
	} else if p.PrefetchDepth != 0 {
		return fmt.Errorf("opt: prefetch depth set without PR in %s", oc)
	}
	return nil
}

// ParamFeatureNames lists the encoded parameter feature layout. Numeric
// power-of-two parameters are log2-transformed for training stability
// (Sec. IV-E); Booleans are 0/1; enums keep their 1-based values.
var ParamFeatureNames = []string{
	"log2BlockX", "log2BlockY", "log2Merge", "mergeDim",
	"log2StreamTile", "streamDim", "log2Unroll", "useSmem",
	"log2TBDepth", "prefetchDepth",
}

// Encode converts the setting into the fixed-width feature vector.
func (p Params) Encode() []float64 {
	out := make([]float64, len(ParamFeatureNames))
	p.EncodeInto(out)
	return out
}

// EncodeInto writes Encode's feature vector into dst
// (len(ParamFeatureNames)) without allocating, for callers encoding into
// arena scratch on the serving hot path.
func (p Params) EncodeInto(dst []float64) {
	if len(dst) != len(ParamFeatureNames) {
		panic(fmt.Sprintf("opt: encode dst %d, want %d", len(dst), len(ParamFeatureNames)))
	}
	dst[0] = log2f(p.BlockX)
	dst[1] = log2f(p.BlockY)
	dst[2] = log2f(p.Merge)
	dst[3] = float64(p.MergeDim)
	dst[4] = log2f(p.StreamTile)
	dst[5] = float64(p.StreamDim)
	dst[6] = log2f(p.Unroll)
	dst[7] = boolf(p.UseSmem)
	dst[8] = log2f(p.TBDepth)
	dst[9] = float64(p.PrefetchDepth)
}

func log2f(v int) float64 {
	if v <= 0 {
		return 0
	}
	return math.Log2(float64(v))
}

func boolf(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }
