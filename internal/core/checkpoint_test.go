package core

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"

	"stencilmart/internal/ml"
	"stencilmart/internal/persist"
	"stencilmart/internal/stencil"
)

// ckptFramework builds one smoke-sized framework shared by the
// checkpoint tests; TrainAll re-runs per mechanism pair on top of it.
var (
	ckptOnce sync.Once
	ckptInst *Framework
	ckptErr  error
)

func ckptFramework(t *testing.T) *Framework {
	t.Helper()
	ckptOnce.Do(func() {
		ckptInst, ckptErr = Build(context.Background(), SmokeConfig())
	})
	if ckptErr != nil {
		t.Fatal(ckptErr)
	}
	return ckptInst
}

// ckptProbes are unseen stencils (not generated corpus members) the
// differential tests predict for.
func ckptProbes() []stencil.Stencil {
	return []stencil.Stencil{
		stencil.Star(2, 2),
		stencil.Box(2, 1),
		stencil.Star(3, 3),
		stencil.Box(3, 1),
	}
}

func ckptSameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func ckptSameBitsSlice(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !ckptSameBits(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TestSaveLoadBitwiseIdentical is the differential round-trip check the
// checkpoint format promises: for every classifier and regressor
// mechanism, a saved-then-loaded framework must reproduce the full
// serving path — class, probabilities, tuned parameters, and cross-GPU
// times — bitwise.
func TestSaveLoadBitwiseIdentical(t *testing.T) {
	fw := ckptFramework(t)
	pairs := []struct {
		ck ClassifierKind
		rk RegressorKind
	}{
		{ClassGBDT, RegGB},
		{ClassConvNet, RegMLP},
		{ClassFcNet, RegConvMLP},
	}
	for _, pair := range pairs {
		t.Run(pair.ck.String()+"_"+pair.rk.String(), func(t *testing.T) {
			if err := fw.TrainAll(context.Background(), pair.ck, pair.rk); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := fw.Save(&buf); err != nil {
				t.Fatal(err)
			}
			lf, err := LoadFramework(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range ckptProbes() {
				for _, a := range fw.Dataset.Archs {
					p1, err := fw.ServePredict(a.Name, s)
					if err != nil {
						t.Fatalf("%s on %s (original): %v", s.Name, a.Name, err)
					}
					p2, err := lf.ServePredict(a.Name, s)
					if err != nil {
						t.Fatalf("%s on %s (loaded): %v", s.Name, a.Name, err)
					}
					if p1.Class != p2.Class || p1.OC != p2.OC || p1.Params != p2.Params {
						t.Fatalf("%s on %s: decision drift after reload:\n%+v\n%+v", s.Name, a.Name, p1, p2)
					}
					if !ckptSameBitsSlice(p1.Proba, p2.Proba) {
						t.Fatalf("%s on %s: proba drift %v vs %v", s.Name, a.Name, p1.Proba, p2.Proba)
					}
					if !ckptSameBits(p1.TunedSeconds, p2.TunedSeconds) {
						t.Fatalf("%s on %s: tuned time drift %g vs %g", s.Name, a.Name, p1.TunedSeconds, p2.TunedSeconds)
					}
					if !ckptSameBitsSlice(p1.PredictedSeconds, p2.PredictedSeconds) {
						t.Fatalf("%s on %s: predicted times drift %v vs %v", s.Name, a.Name, p1.PredictedSeconds, p2.PredictedSeconds)
					}
					if p1.Advice != p2.Advice {
						t.Fatalf("%s on %s: advice drift %+v vs %+v", s.Name, a.Name, p1.Advice, p2.Advice)
					}
				}
			}
		})
	}
}

// tamperCheckpoint saves fw, applies mutate to the decoded payload, and
// re-wraps it in a valid envelope (fresh checksum), so the failure under
// test is the payload validation — not the checksum.
func tamperCheckpoint(t *testing.T, fw *Framework, mutate func(*checkpointPayload)) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := fw.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var payload checkpointPayload
	if err := persist.Read(bytes.NewReader(buf.Bytes()), CheckpointKind, CheckpointVersion, &payload); err != nil {
		t.Fatal(err)
	}
	mutate(&payload)
	var out bytes.Buffer
	if err := persist.Write(&out, CheckpointKind, CheckpointVersion, payload); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

func TestLoadRejectsTamperedCheckpoints(t *testing.T) {
	fw := ckptFramework(t)
	if err := fw.TrainAll(context.Background(), ClassGBDT, RegGB); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*checkpointPayload)
		want   string
	}{
		{
			name:   "schema width drift",
			mutate: func(p *checkpointPayload) { p.Schema[0].ClassWidth++ },
			want:   "feature schema mismatch",
		},
		{
			name: "gbdt round missing a class tree",
			mutate: func(p *checkpointPayload) {
				st := p.Classifiers[0].Model.GBDT
				st.Trees[0] = st.Trees[0][:len(st.Trees[0])-1]
			},
			want: "trees",
		},
		{
			name: "gbdt tree child out of bounds",
			mutate: func(p *checkpointPayload) {
				nodes := p.Classifiers[0].Model.GBDT.Trees[0][0]
				for i := range nodes {
					if nodes[i].Left >= 0 {
						nodes[i].Left = len(nodes) + 7
						return
					}
				}
				t.Fatal("no internal node to corrupt")
			},
			want: "outside",
		},
		{
			name:   "classifier kind/state disagreement",
			mutate: func(p *checkpointPayload) { p.Classifiers[0].Model.Kind = "nn" },
			want:   "want gbdt",
		},
		{
			name:   "unknown classifier mechanism",
			mutate: func(p *checkpointPayload) { p.ClassifierKind = "XGBoost" },
			want:   "unknown classifier",
		},
		{
			name:   "missing regressor",
			mutate: func(p *checkpointPayload) { p.Regressors = p.Regressors[:1] },
			want:   "missing",
		},
		{
			name:   "duplicate classifier cell",
			mutate: func(p *checkpointPayload) { p.Classifiers = append(p.Classifiers, p.Classifiers[0]) },
			want:   "duplicate",
		},
		{
			name: "dataset corrupted",
			mutate: func(p *checkpointPayload) {
				p.Dataset = json.RawMessage(`[1,2,3]`)
			},
			want: "dataset",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := tamperCheckpoint(t, fw, tc.mutate)
			_, err := LoadFramework(bytes.NewReader(raw))
			if err == nil {
				t.Fatal("tampered checkpoint loaded cleanly")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestLoadRejectsWrongNNShapes corrupts a network checkpoint's weight
// blocks: a payload whose layer shapes disagree with the architecture
// the config declares must fail at load, not mispredict.
func TestLoadRejectsWrongNNShapes(t *testing.T) {
	fw := ckptFramework(t)
	if err := fw.TrainAll(context.Background(), ClassConvNet, RegMLP); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*checkpointPayload)
	}{
		{
			name: "classifier block truncated",
			mutate: func(p *checkpointPayload) {
				nn := p.Classifiers[0].Model.NN
				nn[0] = nn[0][:len(nn[0])-1]
			},
		},
		{
			name: "classifier block count wrong",
			mutate: func(p *checkpointPayload) {
				p.Classifiers[0].Model.NN = p.Classifiers[0].Model.NN[:1]
			},
		},
		{
			name: "regressor block padded",
			mutate: func(p *checkpointPayload) {
				nn := p.Regressors[0].Model.NN
				nn[len(nn)-1] = append(nn[len(nn)-1], 0.5)
			},
		},
		{
			name: "regressor scaler width wrong",
			mutate: func(p *checkpointPayload) {
				p.Regressors[0].XScale = p.Regressors[0].XScale[:3]
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := tamperCheckpoint(t, fw, tc.mutate)
			if _, err := LoadFramework(bytes.NewReader(raw)); err == nil {
				t.Fatal("shape-corrupted checkpoint loaded cleanly")
			}
		})
	}
}

func TestTruncatedCheckpointFails(t *testing.T) {
	fw := ckptFramework(t)
	if err := fw.TrainAll(context.Background(), ClassGBDT, RegGB); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fw.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{0, len(raw) / 3, len(raw) - 10} {
		if _, err := LoadFramework(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(raw))
		}
	}
}

func TestServeRequiresTraining(t *testing.T) {
	fw := ckptFramework(t)
	saved := fw.Trained
	fw.Trained = nil
	defer func() { fw.Trained = saved }()
	if _, _, err := fw.PredictClassTrained("V100", stencil.Star(2, 1)); err == nil {
		t.Error("PredictClassTrained worked without training")
	}
	if _, err := fw.ServePredict("V100", stencil.Star(2, 1)); err == nil {
		t.Error("ServePredict worked without training")
	}
	if err := fw.Save(&bytes.Buffer{}); err == nil {
		t.Error("Save worked without training")
	}
}

// TestSaveLoadBatchedTreePredictions extends the round-trip differential
// to the tree ensembles' batched entry points: after Save → LoadFramework
// the GBDT classifier's PredictProbaBatch and the GBRegressor-backed
// batch regression must be bitwise identical to the original models' —
// and to their own row-at-a-time paths.
func TestSaveLoadBatchedTreePredictions(t *testing.T) {
	fw := ckptFramework(t)
	if err := fw.TrainAll(context.Background(), ClassGBDT, RegGB); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fw.Save(&buf); err != nil {
		t.Fatal(err)
	}
	lf, err := LoadFramework(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	for arch, byDims := range fw.Trained.Classifiers {
		for dims, cls := range byDims {
			bc, ok := cls.(ml.BatchClassifier)
			if !ok {
				t.Fatalf("%s/%dD: trained GBDT does not implement BatchClassifier", arch, dims)
			}
			lbc, ok := lf.Trained.Classifiers[arch][dims].(ml.BatchClassifier)
			if !ok {
				t.Fatalf("%s/%dD: loaded GBDT does not implement BatchClassifier", arch, dims)
			}
			var rows [][]float64
			for _, s := range ckptProbes() {
				if s.Dims == dims {
					rows = append(rows, classEncode(fw.Trained.ClassifierKind, s))
				}
			}
			if len(rows) == 0 {
				continue
			}
			orig := bc.PredictProbaBatch(rows)
			loaded := lbc.PredictProbaBatch(rows)
			for i := range rows {
				if !ckptSameBitsSlice(orig[i], loaded[i]) {
					t.Fatalf("%s/%dD row %d: batch proba drift after reload: %v vs %v", arch, dims, i, orig[i], loaded[i])
				}
				if !ckptSameBitsSlice(orig[i], cls.PredictProba(rows[i])) {
					t.Fatalf("%s/%dD row %d: batch proba differs from single-row path", arch, dims, i)
				}
			}
		}
	}

	for dims, reg := range fw.Trained.Regressors {
		if _, ok := reg.model.(ml.BatchRegressor); !ok {
			t.Fatalf("%dD: trained GBRegressor does not implement BatchRegressor", dims)
		}
		ins := fw.dimsInstances(dims)
		if len(ins) > 32 {
			ins = ins[:32]
		}
		orig, err := reg.PredictSecondsBatch(ins)
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := lf.Trained.Regressors[dims].PredictSecondsBatch(ins)
		if err != nil {
			t.Fatal(err)
		}
		if !ckptSameBitsSlice(orig, loaded) {
			t.Fatalf("%dD: batch regression drift after reload", dims)
		}
		for i, in := range ins {
			single, err := reg.PredictSeconds(in)
			if err != nil {
				t.Fatal(err)
			}
			if !ckptSameBits(orig[i], single) {
				t.Fatalf("%dD instance %d: batch %v != single %v", dims, i, orig[i], single)
			}
		}
	}
}
