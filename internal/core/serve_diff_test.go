package core_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"stencilmart/internal/core"
	"stencilmart/internal/gpu"
	"stencilmart/internal/profile"
	"stencilmart/internal/sim"
	"stencilmart/internal/stencil"
	"stencilmart/internal/testutil"
)

// TestServePredictMatchesReferenceSubstrate is the end-to-end leg of the
// rewrite differential: a framework trained on a dataset collected by the
// pre-rewrite substrate (sim.Reference) serves byte-identical predictions
// to one trained on the compiled-evaluator collection, at GOMAXPROCS 1
// and 4. Together with the tuner and per-run differentials this pins the
// whole predict path: classification inputs, tuned OC and params, and
// batched regressor outputs all carry pre-rewrite bits.
func TestServePredictMatchesReferenceSubstrate(t *testing.T) {
	corpus := testutil.SmallCorpus(t)
	archs := gpu.Catalog()[:2]

	collect := func(runner sim.Runner) *profile.Dataset {
		t.Helper()
		p := &profile.Profiler{SamplesPerOC: 3, Seed: 21, Workers: 0}
		if runner != nil {
			p.Runner = runner
		} else {
			p.Model = sim.New()
		}
		d, err := p.Collect(context.Background(), corpus, archs)
		if err != nil {
			t.Fatalf("Collect: %v", err)
		}
		return d
	}

	cfg := core.SmokeConfig()
	cfg.GBDT.Rounds = 5
	cfg.GBReg.Rounds = 10
	probes := []stencil.Stencil{stencil.Star(2, 2), stencil.Box(3, 1), stencil.Star(3, 3)}
	serve := func(ds *profile.Dataset) []byte {
		t.Helper()
		fw, err := core.FromDataset(cfg, ds, nil)
		if err != nil {
			t.Fatalf("FromDataset: %v", err)
		}
		if err := fw.TrainAll(context.Background(), core.ClassGBDT, core.RegGB); err != nil {
			t.Fatalf("TrainAll: %v", err)
		}
		var out bytes.Buffer
		for _, s := range probes {
			pred, err := fw.ServePredict(archs[0].Name, s)
			if err != nil {
				t.Fatalf("ServePredict(%s): %v", s.Name, err)
			}
			raw, err := json.Marshal(pred)
			if err != nil {
				t.Fatal(err)
			}
			out.Write(raw)
			out.WriteByte('\n')
		}
		return out.Bytes()
	}

	oracle := serve(collect(sim.NewReference()))
	for _, procs := range []int{1, 4} {
		testutil.WithGOMAXPROCS(t, procs, func() {
			testutil.AssertSameBytes(t, "ServePredict compiled vs reference substrate",
				oracle, serve(collect(nil)))
		})
	}
}
