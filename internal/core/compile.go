package core

import (
	"fmt"
	"math"

	"stencilmart/internal/gpu"
	"stencilmart/internal/ml"
	"stencilmart/internal/ml/nn"
	"stencilmart/internal/ml/tree"
	"stencilmart/internal/opt"
	"stencilmart/internal/stencil"
	"stencilmart/internal/tensor"
)

// This file builds the float32 inference lane over a trained framework:
// every checkpointed model compiles once — tree ensembles quantize into
// SoA flat-node arrays, networks snapshot into f32 forward passes — and
// the row encoders gain allocation-free Into variants writing into arena
// scratch. Features are computed in float64 exactly as the reference
// lane computes them (including input scaling), then converted once per
// element, so the only f64→f32 rounding in the whole pipeline happens at
// compile time (weights) and at the row boundary (inputs) — never
// twice.

// classWidth is the classifier input width for a mechanism and
// dimensionality.
func classWidth(kind ClassifierKind, dims int) int {
	switch kind {
	case ClassGBDT:
		return tensor.NumFeatures
	case ClassConvNet:
		return tensor.VolumeLen(dims)
	default:
		return tensor.VolumeLen(dims) + tensor.NumFeatures
	}
}

// classRowInto is classEncode writing into dst (classWidth wide) without
// allocating. The stencil must already be validated — the serving path
// admits before encoding.
func classRowInto(kind ClassifierKind, s stencil.Stencil, dst []float64) {
	switch kind {
	case ClassGBDT:
		tensor.FeaturesInto(s, dst)
	case ClassConvNet:
		if err := tensor.AssignInto(s, dst); err != nil {
			panic(err)
		}
	default:
		vol := tensor.VolumeLen(s.Dims)
		if err := tensor.AssignInto(s, dst[:vol]); err != nil {
			panic(err)
		}
		tensor.FeaturesInto(s, dst[vol:])
	}
}

// regTailRowInto is regTailRow writing into dst (regTailWidth wide)
// without allocating; every arithmetic expression matches the reference
// encoder operation for operation, so the float64 values are identical.
func regTailRowInto(s stencil.Stencil, oc opt.Opt, p opt.Params, arch gpu.Arch, dst []float64) {
	nf := len(opt.FlagNames)
	np := len(opt.ParamFeatureNames)
	ng := len(gpu.FeatureNames)
	oc.FlagVectorInto(dst[:nf])
	p.EncodeInto(dst[nf : nf+np])
	arch.FeaturesInto(dst[nf+np : nf+np+ng])

	order := float64(s.Order())
	cover := math.Log2(float64(maxi(p.Merge, 1)) * float64(maxi(p.Unroll, 1)) * float64(maxi(p.StreamTile, 1)))
	haloX := order / float64(p.BlockX)
	haloY := order / float64(p.BlockY*maxi(p.Merge, 1))
	bmX := 0.0
	if oc.Has(opt.BM) && p.MergeDim == 1 {
		bmX = float64(p.Merge)
	}
	stX := 0.0
	if oc.Has(opt.ST) && p.StreamDim == 1 {
		stX = 1
	}
	lines := float64(stencil.LineCount(s))
	streamDim := p.StreamDim
	if streamDim == 0 {
		streamDim = 3
	}
	planeLines := float64(stencil.PlaneLineCount(s, streamDim))
	tbHalo := 0.0
	if oc.Has(opt.TB) {
		tbHalo = order * float64(p.TBDepth)
	}
	tail := dst[nf+np+ng:]
	tail[0], tail[1], tail[2], tail[3] = cover, haloX, haloY, bmX
	tail[4], tail[5], tail[6], tail[7] = stX, lines, planeLines, tbHalo
}

// regWidthFor is the regressor input width for a mechanism and
// dimensionality.
func regWidthFor(kind RegressorKind, dims int) int {
	if kind.usesTensor() {
		return tensor.VolumeLen(dims) + regTailWidth
	}
	return tensor.NumFeatures + regTailWidth
}

// regRowInto is regFeatureRow/regTensorRow writing into dst
// (regWidthFor wide) without allocating.
func regRowInto(kind RegressorKind, s stencil.Stencil, oc opt.Opt, p opt.Params, arch gpu.Arch, dst []float64) {
	var head int
	if kind.usesTensor() {
		head = tensor.VolumeLen(s.Dims)
		if err := tensor.AssignInto(s, dst[:head]); err != nil {
			panic(err)
		}
	} else {
		head = tensor.NumFeatures
		tensor.FeaturesInto(s, dst[:head])
	}
	regTailRowInto(s, oc, p, arch, dst[head:])
}

// CompiledRegressorF32 couples a compiled f32 regressor with the input
// scaling and target inversion of its float64 source.
type CompiledRegressorF32 struct {
	kind   RegressorKind
	model  ml.RegressorF32
	xScale []float64 // nil when the mechanism skips input scaling
	yScale targetScaler
}

// encodeRowF32 builds one scaled f32 input row: features encode in f64
// scratch exactly as the reference lane, scaling divides in f64, and the
// result converts element-wise — one rounding, at the boundary.
func (r *CompiledRegressorF32) encodeRowF32(s stencil.Stencil, oc opt.Opt, p opt.Params, arch gpu.Arch, scratch []float64, dst []float32) {
	regRowInto(r.kind, s, oc, p, arch, scratch)
	if r.xScale != nil {
		for j := range scratch {
			scratch[j] /= r.xScale[j]
		}
	}
	for j, v := range scratch {
		dst[j] = float32(v)
	}
}

// invertSecondsF32 converts raw f32 model outputs to float64 seconds,
// undoing target scaling and the log2 transform in float64 — the heap
// result outlives the arena's next Reset.
func (r *CompiledRegressorF32) invertSecondsF32(vals []float32) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		x := float64(v)
		if r.kind.usesScaling() {
			x = r.yScale.invert(x)
		}
		out[i] = regInvert(x)
	}
	return out
}

// CompiledTrained is the f32 inference lane of a Trained set: the same
// (GPU, dims) classifier and dims regressor coverage, every model in its
// compiled form.
type CompiledTrained struct {
	ClassifierKind ClassifierKind
	RegressorKind  RegressorKind
	classifiers    map[string]map[int]ml.ClassifierF32
	regressors     map[int]*CompiledRegressorF32
}

// classifierFor mirrors Trained.classifierFor over the compiled set.
func (ct *CompiledTrained) classifierFor(archName string, dims int) (ml.ClassifierF32, error) {
	byDims, ok := ct.classifiers[archName]
	if !ok {
		return nil, fmt.Errorf("core: no trained classifier for GPU %q", archName)
	}
	cls, ok := byDims[dims]
	if !ok {
		return nil, fmt.Errorf("core: no trained %d-D classifier for GPU %q", dims, archName)
	}
	return cls, nil
}

// compileClassifierF32 quantizes one trained classifier.
func compileClassifierF32(cls ml.Classifier) (ml.ClassifierF32, error) {
	switch m := cls.(type) {
	case *tree.GBDT:
		return m.Compile()
	case *nn.Classifier:
		return m.CompileF32()
	default:
		return nil, fmt.Errorf("core: classifier %T has no f32 lane", cls)
	}
}

// compileRegressorF32 quantizes one trained regressor with its scalers.
func compileRegressorF32(reg *TrainedRegressor) (*CompiledRegressorF32, error) {
	out := &CompiledRegressorF32{kind: reg.kind, xScale: reg.xScale.scale, yScale: reg.yScale}
	switch m := reg.model.(type) {
	case *tree.GBRegressor:
		c, err := m.Compile()
		if err != nil {
			return nil, err
		}
		out.model = c
	case *nn.Regressor:
		c, err := m.CompileF32()
		if err != nil {
			return nil, err
		}
		out.model = c
	default:
		return nil, fmt.Errorf("core: regressor %T has no f32 lane", reg.model)
	}
	return out, nil
}

// compileTrained builds the full compiled set, failing if any model has
// no f32 form.
func compileTrained(tr *Trained) (*CompiledTrained, error) {
	ct := &CompiledTrained{
		ClassifierKind: tr.ClassifierKind,
		RegressorKind:  tr.RegressorKind,
		classifiers:    make(map[string]map[int]ml.ClassifierF32),
		regressors:     make(map[int]*CompiledRegressorF32),
	}
	for arch, byDims := range tr.Classifiers {
		for dims, cls := range byDims {
			c, err := compileClassifierF32(cls)
			if err != nil {
				return nil, fmt.Errorf("core: compiling %d-D classifier for %s: %w", dims, arch, err)
			}
			if ct.classifiers[arch] == nil {
				ct.classifiers[arch] = make(map[int]ml.ClassifierF32)
			}
			ct.classifiers[arch][dims] = c
		}
	}
	for dims, reg := range tr.Regressors {
		c, err := compileRegressorF32(reg)
		if err != nil {
			return nil, fmt.Errorf("core: compiling %d-D regressor: %w", dims, err)
		}
		ct.regressors[dims] = c
	}
	return ct, nil
}

// CompiledF32 returns the framework's f32 inference lane, compiling the
// trained set on first use and caching the result until TrainAll swaps
// in a new set. The registry compiles at publish time so serving never
// pays the build; compiled models are not safe for concurrent use — the
// serving layer's single scoring lane serializes, like the f64 models.
func (f *Framework) CompiledF32() (*CompiledTrained, error) {
	tr, err := f.requireTrained()
	if err != nil {
		return nil, err
	}
	f.compileMu.Lock()
	defer f.compileMu.Unlock()
	if f.compiled != nil && f.compiledFor == tr {
		return f.compiled, nil
	}
	ct, err := compileTrained(tr)
	if err != nil {
		return nil, err
	}
	f.compiled, f.compiledFor = ct, tr
	return ct, nil
}
