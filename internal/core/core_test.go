package core

import (
	"context"
	"math"
	"sync"
	"testing"

	"stencilmart/internal/baseline"
	"stencilmart/internal/opt"
	"stencilmart/internal/stencil"
)

// testFramework builds one small shared framework for the package tests;
// building profiles the whole corpus, so tests share it read-only.
var (
	fwOnce sync.Once
	fwInst *Framework
	fwErr  error
)

func testFramework(t *testing.T) *Framework {
	t.Helper()
	fwOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.Corpus2D, cfg.Corpus3D = 25, 20
		cfg.SamplesPerOC = 8
		cfg.MaxRegressionInstances = 1500
		cfg.GBDT.Rounds = 25
		cfg.GBReg.Rounds = 50
		cfg.ConvNetTrain.Epochs = 10
		cfg.FcNetTrain.Epochs = 10
		cfg.MLPTrain.Epochs = 8
		cfg.ConvMLPTrain.Epochs = 4
		fwInst, fwErr = Build(context.Background(), cfg)
	})
	if fwErr != nil {
		t.Fatal(fwErr)
	}
	return fwInst
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Corpus2D, c.Corpus3D = 1, 1 },
		func(c *Config) { c.MaxOrder = 0 },
		func(c *Config) { c.SamplesPerOC = 0 },
		func(c *Config) { c.Classes = 1 },
		func(c *Config) { c.Folds = 1 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestBuildProducesValidFramework(t *testing.T) {
	fw := testFramework(t)
	if err := fw.Dataset.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := fw.Grouping.Validate(); err != nil {
		t.Fatal(err)
	}
	if fw.Grouping.NumClasses() != fw.Cfg.Classes {
		t.Errorf("classes = %d, want %d", fw.Grouping.NumClasses(), fw.Cfg.Classes)
	}
	if n2, n3 := len(fw.StencilIndices(2)), len(fw.StencilIndices(3)); n2 != 25 || n3 != 20 {
		t.Errorf("corpus split %d/%d, want 25/20", n2, n3)
	}
}

func TestClassLabelsInRange(t *testing.T) {
	fw := testFramework(t)
	for ai := range fw.Dataset.Archs {
		for _, si := range fw.StencilIndices(2) {
			l := fw.ClassLabel(ai, si)
			if l < 0 || l >= fw.Grouping.NumClasses() {
				t.Fatalf("label %d out of range", l)
			}
		}
	}
}

func TestClassifierAccuracyAllKinds(t *testing.T) {
	fw := testFramework(t)
	for _, kind := range ClassifierKinds {
		acc, err := fw.ClassifierAccuracy(kind, "V100", 2)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if acc < 0.2 || acc > 1 {
			t.Errorf("%s accuracy %.3f implausible", kind, acc)
		}
		t.Logf("%s 2-D V100 accuracy: %.3f", kind, acc)
	}
	if _, err := fw.ClassifierAccuracy(ClassGBDT, "NoSuchGPU", 2); err == nil {
		t.Error("unknown GPU accepted")
	}
}

func TestSpeedupVsBaselines(t *testing.T) {
	fw := testFramework(t)
	for _, strat := range []baseline.Strategy{baseline.Artemis{}, baseline.AN5D{}} {
		sp, err := fw.SpeedupVsBaseline(ClassGBDT, "V100", 2, strat)
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		if sp < 0.5 || sp > 20 {
			t.Errorf("speedup vs %s = %.2f implausible", strat.Name(), sp)
		}
		t.Logf("GBDT vs %s: %.2fx", strat.Name(), sp)
	}
}

func TestRegressorMAPEAllKinds(t *testing.T) {
	fw := testFramework(t)
	for _, kind := range []RegressorKind{RegGB, RegMLP} {
		per, overall, err := fw.RegressorMAPE(kind, 2)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if overall <= 0 || overall > 2 {
			t.Errorf("%s overall MAPE %.3f implausible", kind, overall)
		}
		if len(per) == 0 {
			t.Errorf("%s produced no per-arch MAPE", kind)
		}
		t.Logf("%s 2-D MAPE: %.3f", kind, overall)
	}
}

func TestTrainedRegressorPredictsPositive(t *testing.T) {
	fw := testFramework(t)
	instances := fw.dimsInstances(3)
	if len(instances) < 20 {
		t.Fatal("too few instances")
	}
	tr, err := fw.TrainRegressor(RegGB, 3, instances[:len(instances)/2], 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range instances[len(instances)/2 : len(instances)/2+10] {
		v, err := tr.PredictSeconds(in)
		if err != nil {
			t.Fatal(err)
		}
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("prediction %g for %+v", v, in)
		}
	}
}

func TestPredictBestOCForStencil(t *testing.T) {
	fw := testFramework(t)
	oc, err := fw.PredictBestOCForStencil(ClassGBDT, "A100", stencil.Star(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !oc.Valid() {
		t.Errorf("predicted invalid OC %s", oc)
	}
	// The representative OC of any class must be one of the grouping reps.
	found := false
	for c := 0; c < fw.Grouping.NumClasses(); c++ {
		if fw.Grouping.RepOC(c) == oc {
			found = true
		}
	}
	if !found {
		t.Errorf("predicted OC %s is not a class representative", oc)
	}
	bad := stencil.Stencil{Dims: 5}
	if _, err := fw.PredictBestOCForStencil(ClassGBDT, "A100", bad); err == nil {
		t.Error("invalid stencil accepted")
	}
}

func TestRentStudyBothMetrics(t *testing.T) {
	fw := testFramework(t)
	for _, cost := range []bool{false, true} {
		rep, err := fw.RentStudy(RegGB, 2, cost, 4)
		if err != nil {
			t.Fatalf("cost=%v: %v", cost, err)
		}
		wantArchs := 4
		if cost {
			wantArchs = 3 // the 2080 Ti is not rentable
		}
		if len(rep.ArchNames) != wantArchs {
			t.Fatalf("cost=%v: %d archs, want %d", cost, len(rep.ArchNames), wantArchs)
		}
		var total float64
		for _, s := range rep.Share {
			if s < 0 || s > 1 {
				t.Errorf("share %g outside [0,1]", s)
			}
			total += s
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("shares sum to %g", total)
		}
		if rep.Overall < 0 || rep.Overall > 1 {
			t.Errorf("overall accuracy %g", rep.Overall)
		}
	}
	if _, err := fw.RentStudy(RegGB, 2, false, 0); err == nil {
		t.Error("zero evals accepted")
	}
}

func TestMLPSweepShape(t *testing.T) {
	fw := testFramework(t)
	points, err := fw.MLPSweep(2, []int{2, 3}, []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("%d sweep points, want 4", len(points))
	}
	for _, p := range points {
		if p.MAPE <= 0 || math.IsNaN(p.MAPE) {
			t.Errorf("sweep point %+v has bad MAPE", p)
		}
	}
	// The framework config must be restored after the sweep.
	if fw.Cfg.MLPLayers != DefaultConfig().MLPLayers {
		t.Error("MLPSweep leaked config mutation")
	}
}

func TestPredictedTimeFallsBackOnCrashes(t *testing.T) {
	fw := testFramework(t)
	// For every stencil and arch, predictedTime must return a finite time
	// whenever at least one class representative did not crash.
	archIdx := 0
	trainIdx := fw.StencilIndices(3)
	cls, enc, err := fw.TrainClassifier(ClassGBDT, archIdx, 3, trainIdx, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, si := range trainIdx {
		tm := fw.predictedTime(cls.PredictProba(enc(si)), archIdx, si)
		anyAlive := false
		for c := 0; c < fw.Grouping.NumClasses(); c++ {
			if !fw.Dataset.Profiles[archIdx][si].Results[fw.Grouping.Reps[c]].Crashed {
				anyAlive = true
			}
		}
		if anyAlive && math.IsInf(tm, 1) {
			t.Fatalf("stencil %d: predictedTime Inf with live representatives", si)
		}
	}
}

func TestFeatureRowWidths(t *testing.T) {
	s := stencil.Box(3, 2)
	oc := opt.ST | opt.PR
	p := opt.Params{BlockX: 64, BlockY: 4, Merge: 1, Unroll: 2,
		StreamTile: 64, StreamDim: 3, UseSmem: true, PrefetchDepth: 1}
	fw := testFramework(t)
	_, arch, err := fw.ArchByName("P100")
	if err != nil {
		t.Fatal(err)
	}
	row := regFeatureRow(s, oc, p, arch)
	wantTail := regTailWidth
	if len(row) != len(classFeatureRow(s))+wantTail {
		t.Errorf("feature row width %d", len(row))
	}
	trow := regTensorRow(s, oc, p, arch)
	if len(trow) != len(classTensorRow(s))+wantTail {
		t.Errorf("tensor row width %d", len(trow))
	}
}
