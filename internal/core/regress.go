package core

import (
	"context"
	"fmt"
	"math/rand"

	"stencilmart/internal/ml"
	"stencilmart/internal/ml/nn"
	"stencilmart/internal/ml/tree"
	"stencilmart/internal/par"
	"stencilmart/internal/profile"
	"stencilmart/internal/stats"
)

// RegressorKind selects one of the paper's performance-prediction
// mechanisms (Sec. IV-E).
type RegressorKind int

// The three regression mechanisms of Fig. 12.
const (
	RegGB RegressorKind = iota
	RegMLP
	RegConvMLP
)

// String returns the paper's mechanism name.
func (k RegressorKind) String() string {
	switch k {
	case RegGB:
		return "GBRegressor"
	case RegMLP:
		return "MLP"
	case RegConvMLP:
		return "ConvMLP"
	default:
		return fmt.Sprintf("RegressorKind(%d)", int(k))
	}
}

// RegressorKinds lists all mechanisms in report order.
var RegressorKinds = []RegressorKind{RegConvMLP, RegMLP, RegGB}

// usesTensor reports whether the mechanism consumes the assigned tensor
// rather than the Table II features.
func (k RegressorKind) usesTensor() bool { return k == RegConvMLP }

// usesScaling reports whether inputs are normalized to [0,1] (network
// mechanisms only, per Sec. IV-E).
func (k RegressorKind) usesScaling() bool { return k != RegGB }

// TrainedRegressor couples a fitted regressor with its input encoding and
// scaling so predictions can be made for arbitrary instances.
type TrainedRegressor struct {
	kind   RegressorKind
	model  ml.Regressor
	xScale columnScaler
	yScale targetScaler
	f      *Framework
}

// dimsInstances returns the regression instances whose stencil has the
// given dimensionality, subsampled to MaxRegressionInstances.
func (f *Framework) dimsInstances(dims int) []profile.Instance {
	var out []profile.Instance
	for _, in := range f.Dataset.Instances {
		if f.Dataset.Stencils[in.StencilIdx].Dims == dims {
			out = append(out, in)
		}
	}
	limit := f.Cfg.MaxRegressionInstances
	if limit > 0 && len(out) > limit {
		rng := rand.New(rand.NewSource(f.Cfg.Seed + 31))
		perm := rng.Perm(len(out))
		sub := make([]profile.Instance, limit)
		for i := 0; i < limit; i++ {
			sub[i] = out[perm[i]]
		}
		out = sub
	}
	return out
}

// newRegressor constructs an untrained mechanism.
func (f *Framework) newRegressor(kind RegressorKind, dims, inDim int, seed int64) (ml.Regressor, error) {
	switch kind {
	case RegGB:
		cfg := f.Cfg.GBReg
		cfg.Seed = seed
		return tree.NewGBRegressor(cfg), nil
	case RegMLP:
		cfg := f.Cfg.MLPTrain
		cfg.Seed = seed
		return nn.NewMLP(inDim, f.Cfg.MLPLayers, f.Cfg.MLPWidth, cfg, seed)
	case RegConvMLP:
		cfg := f.Cfg.ConvMLPTrain
		cfg.Seed = seed
		return nn.NewConvMLP(dims, regTailWidth, cfg, seed)
	default:
		return nil, fmt.Errorf("core: unknown regressor kind %d", kind)
	}
}

// TrainRegressor fits a mechanism on the given instances.
func (f *Framework) TrainRegressor(kind RegressorKind, dims int, instances []profile.Instance, seed int64) (*TrainedRegressor, error) {
	if len(instances) == 0 {
		return nil, fmt.Errorf("core: no instances to train %s", kind)
	}
	x := make([][]float64, len(instances))
	y := make([]float64, len(instances))
	for i, in := range instances {
		row, err := f.instanceRow(in, kind.usesTensor())
		if err != nil {
			return nil, err
		}
		x[i] = row
		y[i] = regTarget(in.Time)
	}
	tr := &TrainedRegressor{kind: kind, f: f}
	if kind.usesScaling() {
		tr.xScale = fitScaler(x)
		tr.yScale = fitTargetScaler(y)
	}
	model, err := f.newRegressor(kind, dims, len(x[0]), seed)
	if err != nil {
		return nil, err
	}
	if err := model.FitRegressor(x, y); err != nil {
		return nil, err
	}
	tr.model = model
	return tr, nil
}

// PredictSeconds predicts the execution time of an instance in seconds.
func (t *TrainedRegressor) PredictSeconds(in profile.Instance) (float64, error) {
	out, err := t.PredictSecondsBatch([]profile.Instance{in})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// PredictSecondsBatch predicts execution times for many instances at
// once, encoding all rows up front so batch-capable models score the
// whole set in one pass — a single batched forward for the nn
// regressors, one streamed traversal per tree for GBRegressor.
func (t *TrainedRegressor) PredictSecondsBatch(ins []profile.Instance) ([]float64, error) {
	rows := make([][]float64, len(ins))
	for i, in := range ins {
		row, err := t.f.instanceRow(in, t.kind.usesTensor())
		if err != nil {
			return nil, err
		}
		rows[i] = t.xScale.apply(row)
	}
	vals := ml.PredictValueAll(t.model, rows)
	for i, v := range vals {
		if t.kind.usesScaling() {
			v = t.yScale.invert(v)
		}
		vals[i] = regInvert(v)
	}
	return vals, nil
}

// RegressorMAPE runs the k-fold protocol for one mechanism over the
// instances of one dimensionality and returns the mean test MAPE per
// architecture plus the overall mean (Fig. 12).
func (f *Framework) RegressorMAPE(kind RegressorKind, dims int) (map[string]float64, float64, error) {
	instances := f.dimsInstances(dims)
	if len(instances) < f.Cfg.Folds {
		return nil, 0, fmt.Errorf("core: %d instances cannot form %d folds", len(instances), f.Cfg.Folds)
	}
	folds, err := profile.Folds(len(instances), f.Cfg.Folds, f.Cfg.Seed+13)
	if err != nil {
		return nil, 0, err
	}
	// Folds train concurrently; each returns its test predictions in
	// testPos order and the per-arch series merge in fold order, so the
	// MAPEs are bit-identical to the serial loop.
	type foldPreds struct {
		archs []string
		truth []float64
		pred  []float64
	}
	perFold, err := par.Map(context.Background(), len(folds), 0, func(fi int) (foldPreds, error) {
		trainPos, testPos := profile.TrainTest(folds, fi)
		train := make([]profile.Instance, len(trainPos))
		for i, p := range trainPos {
			train[i] = instances[p]
		}
		tr, err := f.TrainRegressor(kind, dims, train, f.Cfg.Seed+int64(fi))
		if err != nil {
			return foldPreds{}, err
		}
		test := make([]profile.Instance, len(testPos))
		for i, p := range testPos {
			test[i] = instances[p]
		}
		preds, err := tr.PredictSecondsBatch(test)
		if err != nil {
			return foldPreds{}, err
		}
		fp := foldPreds{pred: preds}
		for _, in := range test {
			fp.archs = append(fp.archs, in.Arch)
			fp.truth = append(fp.truth, in.Time)
		}
		return fp, nil
	})
	if err != nil {
		return nil, 0, err
	}
	truthByArch := map[string][]float64{}
	predByArch := map[string][]float64{}
	var allTruth, allPred []float64
	for _, fp := range perFold {
		for i, arch := range fp.archs {
			truthByArch[arch] = append(truthByArch[arch], fp.truth[i])
			predByArch[arch] = append(predByArch[arch], fp.pred[i])
			allTruth = append(allTruth, fp.truth[i])
			allPred = append(allPred, fp.pred[i])
		}
	}
	out := make(map[string]float64, len(truthByArch))
	for arch, truth := range truthByArch {
		m, err := stats.MAPE(truth, predByArch[arch])
		if err != nil {
			return nil, 0, err
		}
		out[arch] = m
	}
	overall, err := stats.MAPE(allTruth, allPred)
	if err != nil {
		return nil, 0, err
	}
	return out, overall, nil
}

// MLPSweepPoint is one cell of the Fig. 13 sensitivity study.
type MLPSweepPoint struct {
	Layers int
	Width  int
	MAPE   float64
}

// MLPSweep trains MLPs across the hidden-layer and width grid on one
// train/test split and reports test MAPE per cell (Fig. 13).
func (f *Framework) MLPSweep(dims int, layerCounts, widths []int) ([]MLPSweepPoint, error) {
	instances := f.dimsInstances(dims)
	if len(instances) < 10 {
		return nil, fmt.Errorf("core: %d instances too few for the MLP sweep", len(instances))
	}
	folds, err := profile.Folds(len(instances), 5, f.Cfg.Seed+17)
	if err != nil {
		return nil, err
	}
	trainPos, testPos := profile.TrainTest(folds, 0)
	train := make([]profile.Instance, len(trainPos))
	for i, p := range trainPos {
		train[i] = instances[p]
	}
	test := make([]profile.Instance, len(testPos))
	truth := make([]float64, len(testPos))
	for i, p := range testPos {
		test[i] = instances[p]
		truth[i] = instances[p].Time
	}
	// The sweep mutates f.Cfg per cell, so it stays serial; the training
	// inside each cell already uses the nn batch parallelism.
	var out []MLPSweepPoint
	saveLayers, saveWidth := f.Cfg.MLPLayers, f.Cfg.MLPWidth
	defer func() { f.Cfg.MLPLayers, f.Cfg.MLPWidth = saveLayers, saveWidth }()
	for _, l := range layerCounts {
		for _, w := range widths {
			f.Cfg.MLPLayers, f.Cfg.MLPWidth = l, w
			tr, err := f.TrainRegressor(RegMLP, dims, train, f.Cfg.Seed+int64(l*10000+w))
			if err != nil {
				return nil, err
			}
			pred, err := tr.PredictSecondsBatch(test)
			if err != nil {
				return nil, err
			}
			m, err := stats.MAPE(truth, pred)
			if err != nil {
				return nil, err
			}
			out = append(out, MLPSweepPoint{Layers: l, Width: w, MAPE: m})
		}
	}
	return out, nil
}
