package core

import (
	"math"
	"runtime"
	"testing"

	"stencilmart/internal/baseline"
	"stencilmart/internal/testutil"
)

// sameBits fails unless two floats are bit-identical — the determinism
// contract is exact equality, not tolerance.
func sameBits(t *testing.T, label string, a, b float64) {
	t.Helper()
	if math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("%s: %v != %v under different GOMAXPROCS", label, a, b)
	}
}

// TestClassifierAccuracyDeterministicUnderGOMAXPROCS checks the
// fold-parallel CV protocol end to end: same accuracy bits on one proc
// and on all of them.
func TestClassifierAccuracyDeterministicUnderGOMAXPROCS(t *testing.T) {
	fw := testFramework(t)
	var one, many float64
	testutil.WithGOMAXPROCS(t, 1, func() {
		acc, err := fw.ClassifierAccuracy(ClassGBDT, "V100", 2)
		if err != nil {
			t.Fatal(err)
		}
		one = acc
	})
	testutil.WithGOMAXPROCS(t, runtime.NumCPU(), func() {
		acc, err := fw.ClassifierAccuracy(ClassGBDT, "V100", 2)
		if err != nil {
			t.Fatal(err)
		}
		many = acc
	})
	sameBits(t, "GBDT CV accuracy", one, many)
}

// TestRegressorMAPEDeterministicUnderGOMAXPROCS does the same for the
// fold-parallel regression protocol, per architecture and overall.
func TestRegressorMAPEDeterministicUnderGOMAXPROCS(t *testing.T) {
	fw := testFramework(t)
	run := func() (map[string]float64, float64) {
		per, overall, err := fw.RegressorMAPE(RegGB, 3)
		if err != nil {
			t.Fatal(err)
		}
		return per, overall
	}
	var per1, perN map[string]float64
	var o1, oN float64
	testutil.WithGOMAXPROCS(t, 1, func() { per1, o1 = run() })
	testutil.WithGOMAXPROCS(t, runtime.NumCPU(), func() { perN, oN = run() })
	sameBits(t, "overall MAPE", o1, oN)
	if len(per1) != len(perN) {
		t.Fatalf("per-arch map sizes differ: %d vs %d", len(per1), len(perN))
	}
	for arch, v := range per1 {
		sameBits(t, "MAPE "+arch, v, perN[arch])
	}
}

// TestSpeedupDeterministicUnderGOMAXPROCS covers the tuning path, which
// additionally shares the simulator's memo cache across fold goroutines.
func TestSpeedupDeterministicUnderGOMAXPROCS(t *testing.T) {
	fw := testFramework(t)
	run := func() float64 {
		sp, err := fw.SpeedupVsBaseline(ClassGBDT, "A100", 2, baseline.Artemis{})
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}
	var one, many float64
	testutil.WithGOMAXPROCS(t, 1, func() { one = run() })
	testutil.WithGOMAXPROCS(t, runtime.NumCPU(), func() { many = run() })
	sameBits(t, "speedup vs Artemis", one, many)
}
