package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"stencilmart/internal/baseline"
	"stencilmart/internal/gpu"
	"stencilmart/internal/ml"
	"stencilmart/internal/ml/nn"
	"stencilmart/internal/ml/tree"
	"stencilmart/internal/opt"
	"stencilmart/internal/par"
	"stencilmart/internal/sim"
	"stencilmart/internal/stats"
	"stencilmart/internal/stencil"
)

// trainTestSplit partitions fold index sets into the train and test
// corpus indices for one held-out fold.
func trainTestSplit(folds [][]int, fi int) (trainIdx, testIdx []int) {
	for fj, fold := range folds {
		if fj == fi {
			testIdx = append(testIdx, fold...)
		} else {
			trainIdx = append(trainIdx, fold...)
		}
	}
	return trainIdx, testIdx
}

// ClassifierKind selects one of the paper's OC-selection mechanisms.
type ClassifierKind int

// The three classification mechanisms of Sec. IV-D.
const (
	ClassGBDT ClassifierKind = iota
	ClassConvNet
	ClassFcNet
)

// String returns the paper's mechanism name.
func (k ClassifierKind) String() string {
	switch k {
	case ClassGBDT:
		return "GBDT"
	case ClassConvNet:
		return "ConvNet"
	case ClassFcNet:
		return "FcNet"
	default:
		return fmt.Sprintf("ClassifierKind(%d)", int(k))
	}
}

// ClassifierKinds lists all mechanisms in report order.
var ClassifierKinds = []ClassifierKind{ClassConvNet, ClassFcNet, ClassGBDT}

// classEncode encodes one stencil for a mechanism.
func classEncode(kind ClassifierKind, s stencil.Stencil) []float64 {
	switch kind {
	case ClassGBDT:
		return classFeatureRow(s)
	case ClassConvNet:
		return classTensorRow(s)
	default:
		return classMixedRow(s)
	}
}

// classInput builds the corpus-index encoder for a mechanism.
func (f *Framework) classInput(kind ClassifierKind) func(si int) []float64 {
	return func(si int) []float64 { return classEncode(kind, f.Dataset.Stencils[si]) }
}

// newClassifier constructs an untrained mechanism for the given
// dimensionality.
func (f *Framework) newClassifier(kind ClassifierKind, dims int, seed int64) (ml.Classifier, error) {
	classes := f.Grouping.NumClasses()
	switch kind {
	case ClassGBDT:
		cfg := f.Cfg.GBDT
		cfg.Seed = seed
		return tree.NewGBDT(cfg), nil
	case ClassConvNet:
		cfg := f.Cfg.ConvNetTrain
		cfg.Seed = seed
		return nn.NewConvNet(dims, classes, cfg, seed)
	case ClassFcNet:
		cfg := f.Cfg.FcNetTrain
		cfg.Seed = seed
		sample := f.classInput(ClassFcNet)
		indices := f.StencilIndices(dims)
		if len(indices) == 0 {
			return nil, fmt.Errorf("core: no %d-D stencils in corpus", dims)
		}
		return nn.NewFcNet(len(sample(indices[0])), classes, f.Cfg.FcNetLayers, f.Cfg.FcNetWidth, cfg, seed)
	default:
		return nil, fmt.Errorf("core: unknown classifier kind %d", kind)
	}
}

// TrainClassifier fits a mechanism on the given stencil indices for one
// architecture's labels, returning the trained model and its input
// encoder.
func (f *Framework) TrainClassifier(kind ClassifierKind, archIdx, dims int, trainIdx []int, seed int64) (ml.Classifier, func(int) []float64, error) {
	cls, err := f.newClassifier(kind, dims, seed)
	if err != nil {
		return nil, nil, err
	}
	enc := f.classInput(kind)
	x := make([][]float64, len(trainIdx))
	for i, si := range trainIdx {
		x[i] = enc(si)
	}
	y := f.classLabels(archIdx, trainIdx)
	if err := cls.FitClassifier(x, y, f.Grouping.NumClasses()); err != nil {
		return nil, nil, err
	}
	return cls, enc, nil
}

// ClassifierAccuracy runs the k-fold protocol for one mechanism on one
// GPU and dimensionality, returning mean test accuracy (Fig. 9).
func (f *Framework) ClassifierAccuracy(kind ClassifierKind, archName string, dims int) (float64, error) {
	archIdx, _, err := f.ArchByName(archName)
	if err != nil {
		return 0, err
	}
	folds, _, err := f.stencilFolds(dims)
	if err != nil {
		return 0, err
	}
	// Folds train independently (each builds its own model from its own
	// seed), so they run concurrently on the shared pool; accuracies
	// collect in fold order, keeping the mean bit-identical to a serial
	// loop under any GOMAXPROCS.
	accs, err := par.Map(context.Background(), len(folds), 0, func(fi int) (float64, error) {
		trainIdx, testIdx := trainTestSplit(folds, fi)
		cls, enc, err := f.TrainClassifier(kind, archIdx, dims, trainIdx, f.Cfg.Seed+int64(fi))
		if err != nil {
			return 0, err
		}
		truth := f.classLabels(archIdx, testIdx)
		probas := ml.PredictProbaAll(cls, encodeAll(enc, testIdx))
		pred := make([]int, len(testIdx))
		for i := range testIdx {
			pred[i] = ml.ArgMax(probas[i])
		}
		return stats.Accuracy(truth, pred)
	})
	if err != nil {
		return 0, err
	}
	return stats.Mean(accs), nil
}

// encodeAll encodes every corpus index into a row set, the unit the
// batched predictors consume.
func encodeAll(enc func(int) []float64, indices []int) [][]float64 {
	rows := make([][]float64, len(indices))
	for i, si := range indices {
		rows[i] = enc(si)
	}
	return rows
}

// predictedTime returns the execution time StencilMART achieves for a
// test stencil: the profiled best time of the representative OC of the
// class predicted by proba (the same SamplesPerOC search budget as the
// baselines). If that OC crashed for the stencil, lower-probability
// classes are tried in order; math.Inf(1) is returned only if every
// class crashes.
func (f *Framework) predictedTime(proba []float64, archIdx, si int) float64 {
	for _, class := range classOrder(proba) {
		ocIdx := f.Grouping.Reps[class]
		res := f.Dataset.Profiles[archIdx][si].Results[ocIdx]
		if !res.Crashed {
			return res.Time
		}
	}
	return math.Inf(1)
}

// classOrder ranks classes by descending predicted probability.
func classOrder(proba []float64) []int {
	order := make([]int, len(proba))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return proba[order[a]] > proba[order[b]] })
	return order
}

// contextReps elects, from the training stencils only, the top class
// members for one (architecture, dimensionality) context: within each
// class, members are ranked by how many training stencils they win.
// A single global representative underserves broad classes (the ST
// family has 12 members); contextual reps recover most of the gap to the
// true best OC while still being derived purely from training data.
func (f *Framework) contextReps(archIdx int, trainIdx []int, perClass int) [][]opt.Opt {
	combos := opt.Combinations()
	wins := make([]int, len(combos))
	labels := f.Dataset.Labels(archIdx)
	for _, si := range trainIdx {
		wins[labels[si]]++
	}
	out := make([][]opt.Opt, f.Grouping.NumClasses())
	for c, members := range f.Grouping.Groups {
		ranked := append([]int(nil), members...)
		sort.Slice(ranked, func(a, b int) bool {
			if wins[ranked[a]] != wins[ranked[b]] {
				return wins[ranked[a]] > wins[ranked[b]]
			}
			return ranked[a] < ranked[b]
		})
		n := perClass
		if n > len(ranked) {
			n = len(ranked)
		}
		for _, m := range ranked[:n] {
			out[c] = append(out[c], combos[m])
		}
	}
	return out
}

// searchPredicted tunes a test stencil the way a deployed StencilMART
// would: the SamplesPerOC budget is split between the top two members of
// the most probable class (2:1) and the runner-up class's best member
// (hedging against mispredictions exactly as Artemis hedges across its
// candidate extensions). The total budget matches the baselines'.
func (f *Framework) searchPredicted(proba []float64, archIdx, si int, arch gpu.Arch, reps [][]opt.Opt) float64 {
	order := classOrder(proba)
	budget := f.Cfg.SamplesPerOC

	var ocs []opt.Opt
	if len(order) > 0 {
		top := reps[order[0]]
		ocs = append(ocs, top...)
		if len(ocs) > 2 {
			ocs = ocs[:2]
		}
	}
	if len(order) > 1 && len(reps[order[1]]) > 0 {
		ocs = append(ocs, reps[order[1]][0])
	}
	if len(ocs) == 0 {
		return math.Inf(1)
	}
	// Budget split: half to the top candidate, the rest spread evenly.
	splits := make([]int, len(ocs))
	splits[0] = (budget + 1) / 2
	rest := budget - splits[0]
	for i := 1; i < len(splits); i++ {
		splits[i] = rest / (len(splits) - 1)
	}

	w := sim.DefaultWorkload(f.Dataset.Stencils[si])
	eval := f.Model.CellFn(w, arch)
	best := math.Inf(1)
	for rank, oc := range ocs {
		if splits[rank] < 1 {
			continue
		}
		rng := rand.New(rand.NewSource(f.Cfg.Seed + int64(si)*131 + int64(archIdx)*7 + int64(rank)))
		for i := 0; i < splits[rank]; i++ {
			p := opt.Sample(oc, w.S.Dims, rng)
			r, err := eval(oc, p)
			if err != nil {
				continue
			}
			if r.Time < best {
				best = r.Time
			}
		}
	}
	return best
}

// SpeedupVsBaseline evaluates a trained mechanism against a baseline
// strategy under equal parameter-search budgets, returning the geometric
// mean of baselineTime/stencilmartTime over held-out stencils across all
// folds (Figs. 10 and 11).
func (f *Framework) SpeedupVsBaseline(kind ClassifierKind, archName string, dims int, strat baseline.Strategy) (float64, error) {
	archIdx, arch, err := f.ArchByName(archName)
	if err != nil {
		return 0, err
	}
	folds, _, err := f.stencilFolds(dims)
	if err != nil {
		return 0, err
	}
	// Per-fold tuning shares f.Model across goroutines: the simulator's
	// memo cache is sharded, and identical (stencil, OC, params, arch)
	// cells price identically whether cached or recomputed, so ratios
	// match the serial loop exactly; fold order is restored on merge.
	perFold, err := par.Map(context.Background(), len(folds), 0, func(fi int) ([]float64, error) {
		trainIdx, testIdx := trainTestSplit(folds, fi)
		cls, enc, err := f.TrainClassifier(kind, archIdx, dims, trainIdx, f.Cfg.Seed+int64(fi))
		if err != nil {
			return nil, err
		}
		reps := f.contextReps(archIdx, trainIdx, 2)
		// One batched forward scores the whole held-out fold before tuning.
		probas := ml.PredictProbaAll(cls, encodeAll(enc, testIdx))
		var ratios []float64
		for ti, si := range testIdx {
			w := sim.DefaultWorkload(f.Dataset.Stencils[si])
			base, err := strat.Tune(f.Model, w, arch, f.Cfg.SamplesPerOC, f.Cfg.Seed+int64(si))
			if err != nil {
				continue // baseline has no runnable configuration
			}
			mine := f.searchPredicted(probas[ti], archIdx, si, arch, reps)
			if math.IsInf(mine, 1) {
				continue
			}
			ratios = append(ratios, base.Time/mine)
		}
		return ratios, nil
	})
	if err != nil {
		return 0, err
	}
	var ratios []float64
	for _, r := range perFold {
		ratios = append(ratios, r...)
	}
	if len(ratios) == 0 {
		return 0, fmt.Errorf("core: no comparable stencils for %s vs %s", kind, strat.Name())
	}
	return stats.GeoMean(ratios)
}

// PredictBestOC trains on the full corpus of the stencil's dimensionality
// (minus the stencil itself) and predicts the best OC for a corpus
// stencil on the named GPU.
func (f *Framework) PredictBestOC(kind ClassifierKind, archName string, sidx int) (opt.Opt, error) {
	archIdx, _, err := f.ArchByName(archName)
	if err != nil {
		return 0, err
	}
	s := f.Dataset.Stencils[sidx]
	var trainIdx []int
	for _, si := range f.StencilIndices(s.Dims) {
		if si != sidx {
			trainIdx = append(trainIdx, si)
		}
	}
	cls, enc, err := f.TrainClassifier(kind, archIdx, s.Dims, trainIdx, f.Cfg.Seed)
	if err != nil {
		return 0, err
	}
	class := cls.PredictClass(enc(sidx))
	return f.Grouping.RepOC(class), nil
}

// PredictBestOCForStencil trains on the whole corpus of the stencil's
// dimensionality and predicts the best OC for an arbitrary (possibly
// unseen) stencil on the named GPU — the end-user entry point.
func (f *Framework) PredictBestOCForStencil(kind ClassifierKind, archName string, s stencil.Stencil) (opt.Opt, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	archIdx, _, err := f.ArchByName(archName)
	if err != nil {
		return 0, err
	}
	trainIdx := f.StencilIndices(s.Dims)
	if len(trainIdx) == 0 {
		return 0, fmt.Errorf("core: corpus has no %d-D stencils to train on", s.Dims)
	}
	cls, _, err := f.TrainClassifier(kind, archIdx, s.Dims, trainIdx, f.Cfg.Seed)
	if err != nil {
		return 0, err
	}
	class := cls.PredictClass(classEncode(kind, s))
	return f.Grouping.RepOC(class), nil
}
