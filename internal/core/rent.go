package core

import (
	"fmt"
	"math"
	"math/rand"

	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/profile"
	"stencilmart/internal/sim"
)

// RentReport is the outcome of the "to rent or not to rent" case study
// (Sec. V-D): per GPU, the fraction of stencil instances it truly wins and
// the prediction accuracy among those instances, for pure performance
// (Fig. 14) or cost efficiency (Fig. 15).
type RentReport struct {
	// Dims is the stencil dimensionality studied.
	Dims int
	// CostBased selects time x rental price as the metric; otherwise pure
	// execution time.
	CostBased bool
	// ArchNames lists the GPUs compared (rentable subset when CostBased).
	ArchNames []string
	// Share is the ground-truth winning fraction per GPU.
	Share []float64
	// Accuracy is the winner-prediction accuracy among the instances each
	// GPU truly wins; NaN when that GPU wins nothing.
	Accuracy []float64
	// Overall is the overall winner-prediction accuracy.
	Overall float64
	// Instances is the evaluation-set size.
	Instances int
}

// RentStudy trains a cross-architecture regressor on the training
// stencils' instances, then — for held-out stencils — samples fresh
// (OC, parameter) instances, measures them on every candidate GPU for
// ground truth, and checks whether the regressor picks the same winner.
func (f *Framework) RentStudy(kind RegressorKind, dims int, costBased bool, evalPerStencil int) (RentReport, error) {
	if evalPerStencil < 1 {
		return RentReport{}, fmt.Errorf("core: evalPerStencil %d < 1", evalPerStencil)
	}
	var archs []gpu.Arch
	if costBased {
		for _, a := range f.Dataset.Archs {
			if a.HasRental() {
				archs = append(archs, a)
			}
		}
	} else {
		archs = f.Dataset.Archs
	}
	if len(archs) < 2 {
		return RentReport{}, fmt.Errorf("core: need >= 2 candidate GPUs, have %d", len(archs))
	}

	folds, _, err := f.stencilFolds(dims)
	if err != nil {
		return RentReport{}, err
	}
	testSet := map[int]bool{}
	for _, si := range folds[0] {
		testSet[si] = true
	}

	// Train on the instances of the training stencils only.
	var train []profile.Instance
	for _, in := range f.dimsInstances(dims) {
		if !testSet[in.StencilIdx] {
			train = append(train, in)
		}
	}
	tr, err := f.TrainRegressor(kind, dims, train, f.Cfg.Seed+23)
	if err != nil {
		return RentReport{}, err
	}

	report := RentReport{Dims: dims, CostBased: costBased}
	for _, a := range archs {
		report.ArchNames = append(report.ArchNames, a.Name)
	}
	wins := make([]int, len(archs))
	hits := make([]int, len(archs))
	combos := opt.Combinations()
	rng := rand.New(rand.NewSource(f.Cfg.Seed + 29))
	metric := func(a gpu.Arch, seconds float64) float64 {
		if costBased {
			return seconds * a.RentalPerHour
		}
		return seconds
	}

	// Iterate the held-out fold in its stored order (not map order) so the
	// rng consumption — and thus the whole study — is deterministic.
	for _, si := range folds[0] {
		s := f.Dataset.Stencils[si]
		w := sim.DefaultWorkload(s)
		// One compiled evaluator per competing GPU, resolved once per
		// stencil instead of once per (evaluation, GPU).
		evals := make([]sim.EvalFn, len(archs))
		for ai, a := range archs {
			evals[ai] = f.Model.CellFn(w, a)
		}
		for e := 0; e < evalPerStencil; e++ {
			oc := combos[rng.Intn(len(combos))]
			params := opt.Sample(oc, s.Dims, rng)
			truthBest, predBest := -1, -1
			truthVal, predVal := math.Inf(1), math.Inf(1)
			// Measure ground truth on every GPU first; only the GPUs whose
			// simulation succeeds compete, exactly as before.
			alive := make([]int, 0, len(archs))
			times := make([]float64, 0, len(archs))
			for ai := range archs {
				r, err := evals[ai](oc, params)
				if err != nil {
					continue
				}
				alive = append(alive, ai)
				times = append(times, r.Time)
			}
			// One batched forward ranks all surviving GPUs.
			ins := make([]profile.Instance, len(alive))
			for i, ai := range alive {
				ins[i] = profile.Instance{
					StencilIdx: si, OC: oc, Params: params, Arch: archs[ai].Name,
				}
			}
			preds, err := tr.PredictSecondsBatch(ins)
			if err != nil {
				return RentReport{}, err
			}
			for i, ai := range alive {
				a := archs[ai]
				if tv := metric(a, times[i]); tv < truthVal {
					truthVal, truthBest = tv, ai
				}
				if pv := metric(a, preds[i]); pv < predVal {
					predVal, predBest = pv, ai
				}
			}
			if len(alive) < 2 {
				continue // not a meaningful comparison
			}
			report.Instances++
			wins[truthBest]++
			if predBest == truthBest {
				hits[truthBest]++
			}
		}
	}
	if report.Instances == 0 {
		return RentReport{}, fmt.Errorf("core: rent study produced no comparable instances")
	}
	total := 0
	for ai := range archs {
		report.Share = append(report.Share, float64(wins[ai])/float64(report.Instances))
		if wins[ai] > 0 {
			report.Accuracy = append(report.Accuracy, float64(hits[ai])/float64(wins[ai]))
		} else {
			report.Accuracy = append(report.Accuracy, math.NaN())
		}
		total += hits[ai]
	}
	report.Overall = float64(total) / float64(report.Instances)
	return report, nil
}
