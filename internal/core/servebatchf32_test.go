package core

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"stencilmart/internal/stencil"
	"stencilmart/internal/testutil"
)

// laneTieEps is the documented tie-epsilon of the f32 lane's decision
// contract: wherever the float64 lane's top-2 probability gap is at
// least this wide, the f32 lane must pick the same class; inside the
// band either decision is acceptable (the reference lane itself is one
// rounding away from flipping).
const laneTieEps = 1e-6

// laneRelTol is the documented relative tolerance on predicted seconds
// when both lanes agree on the class (and therefore tuned the same OC).
const laneRelTol = 5e-3

// laneProbaTol bounds per-class probability drift between the lanes.
const laneProbaTol = 2e-3

// lanesFramework shares the checkpoint tests' smoke framework.
func lanesFramework(tb testing.TB) *Framework {
	tb.Helper()
	ckptOnce.Do(func() {
		ckptInst, ckptErr = Build(context.Background(), SmokeConfig())
	})
	if ckptErr != nil {
		tb.Fatal(ckptErr)
	}
	return ckptInst
}

// top2Gap returns the difference between the largest and second-largest
// probabilities.
func top2Gap(p []float64) float64 {
	best, second := math.Inf(-1), math.Inf(-1)
	for _, v := range p {
		switch {
		case v > best:
			best, second = v, best
		case v > second:
			second = v
		}
	}
	return best - second
}

// sameClassOrder reports whether both probability vectors sort their
// classes identically — the condition under which tuning (which walks
// classes in descending-probability order) behaves identically.
func sameClassOrder(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	oa, ob := classOrder(a), classOrder(b)
	for i := range oa {
		if oa[i] != ob[i] {
			return false
		}
	}
	return true
}

// assertLaneOutcome checks one f32 outcome against its f64 twin under
// the lane contract: identical errors, identical decisions away from
// ties, close probabilities, and — when the tuned OC is forced to agree
// — bitwise-equal tuning and predicted seconds within laneRelTol.
func assertLaneOutcome(t *testing.T, label string, ref, got ServeOutcome) {
	t.Helper()
	if (ref.Err == nil) != (got.Err == nil) {
		t.Fatalf("%s: f64 err %v, f32 err %v", label, ref.Err, got.Err)
	}
	if ref.Err != nil {
		if ref.Err.Error() != got.Err.Error() {
			t.Fatalf("%s: error drift:\nf64: %v\nf32: %v", label, ref.Err, got.Err)
		}
		return
	}
	rp, gp := ref.Prediction, got.Prediction
	if rp.Stencil != gp.Stencil || rp.GPU != gp.GPU {
		t.Fatalf("%s: identity drift: %s/%s vs %s/%s", label, rp.Stencil, rp.GPU, gp.Stencil, gp.GPU)
	}
	if len(rp.Proba) != len(gp.Proba) {
		t.Fatalf("%s: proba width %d vs %d", label, len(rp.Proba), len(gp.Proba))
	}
	for k := range rp.Proba {
		if d := math.Abs(rp.Proba[k] - gp.Proba[k]); d > laneProbaTol {
			t.Fatalf("%s: class %d proba f64 %g vs f32 %g", label, k, rp.Proba[k], gp.Proba[k])
		}
	}
	if top2Gap(rp.Proba) >= laneTieEps && rp.Class != gp.Class {
		t.Fatalf("%s: decision drift: f64 class %d (gap %g) vs f32 class %d",
			label, rp.Class, top2Gap(rp.Proba), gp.Class)
	}
	if !sameClassOrder(rp.Proba, gp.Proba) {
		return // sub-leading tie: tuning may legitimately pick another rep OC
	}
	// Same class order means identical tuning: the tuner is a
	// deterministic float64 function of (request, class order).
	if rp.OC != gp.OC {
		t.Fatalf("%s: OC drift: %s vs %s", label, rp.OC, gp.OC)
	}
	if rp.Params != gp.Params {
		t.Fatalf("%s: params drift: %+v vs %+v", label, rp.Params, gp.Params)
	}
	if rp.TunedSeconds != gp.TunedSeconds {
		t.Fatalf("%s: tuned-seconds drift: %g vs %g", label, rp.TunedSeconds, gp.TunedSeconds)
	}
	for i := range rp.PredictedSeconds {
		r, g := rp.PredictedSeconds[i], gp.PredictedSeconds[i]
		if math.Abs(g-r) > laneRelTol*math.Max(math.Abs(r), 1e-12) {
			t.Fatalf("%s: %s predicted %g (f64) vs %g (f32), rel %g",
				label, rp.ArchNames[i], r, g, math.Abs(g-r)/math.Abs(r))
		}
	}
}

// TestServeLaneDifferential is the end-to-end differential contract of
// the f32 serving lane across every compilable mechanism pair: on the
// full probe-x-GPU corpus (plus duplicate and failing requests), class
// decisions match the reference lane away from documented ties, errors
// are identical, and predicted seconds agree within laneRelTol.
func TestServeLaneDifferential(t *testing.T) {
	fw := lanesFramework(t)
	pairs := []struct {
		ck ClassifierKind
		rk RegressorKind
	}{
		{ClassGBDT, RegGB},
		{ClassFcNet, RegMLP},
		{ClassConvNet, RegConvMLP},
	}
	for _, pair := range pairs {
		t.Run(pair.ck.String()+"_"+pair.rk.String(), func(t *testing.T) {
			if err := fw.TrainAll(context.Background(), pair.ck, pair.rk); err != nil {
				t.Fatal(err)
			}
			reqs := batchRequests(fw)
			refs := fw.ServePredictBatch(context.Background(), reqs)
			arena := NewServeArena()
			outs := fw.ServePredictBatchF32(context.Background(), reqs, arena)
			if len(outs) != len(reqs) {
				t.Fatalf("%d outcomes for %d requests", len(outs), len(reqs))
			}
			for i, req := range reqs {
				assertLaneOutcome(t, req.Stencil.Name+" on "+req.GPU, refs[i], outs[i])
			}
		})
	}
}

// TestServeLaneF32Stable pins bitwise reproducibility of the f32 lane:
// rerunning the same batch — with a reused arena, a fresh arena, and
// under different GOMAXPROCS — must produce byte-identical predictions.
// The f32 kernels are serial and tuning is seeded per request, so
// scheduler parallelism has nothing to perturb.
func TestServeLaneF32Stable(t *testing.T) {
	fw := lanesFramework(t)
	if err := fw.TrainAll(context.Background(), ClassGBDT, RegGB); err != nil {
		t.Fatal(err)
	}
	reqs := batchRequests(fw)
	arena := NewServeArena()
	marshal := func(outs []ServeOutcome) []byte {
		var buf []byte
		for _, o := range outs {
			if o.Err != nil {
				buf = append(buf, o.Err.Error()...)
				continue
			}
			j, err := json.Marshal(o.Prediction)
			if err != nil {
				t.Fatal(err)
			}
			buf = append(buf, j...)
		}
		return buf
	}
	var ref []byte
	testutil.WithGOMAXPROCS(t, 1, func() {
		ref = marshal(fw.ServePredictBatchF32(context.Background(), reqs, arena))
	})
	testutil.WithGOMAXPROCS(t, 1, func() {
		testutil.AssertSameBytes(t, "warm arena rerun", ref, marshal(fw.ServePredictBatchF32(context.Background(), reqs, arena)))
	})
	testutil.WithGOMAXPROCS(t, 4, func() {
		testutil.AssertSameBytes(t, "GOMAXPROCS=4", ref, marshal(fw.ServePredictBatchF32(context.Background(), reqs, nil)))
	})
}

// TestServeLaneF32DedupAndUntrained mirrors the f64 edge cases: a
// duplicate request copies its primary's outcome, empty batches return
// empty, and an untrained framework fails every slot.
func TestServeLaneF32DedupAndUntrained(t *testing.T) {
	fw := lanesFramework(t)
	if err := fw.TrainAll(context.Background(), ClassGBDT, RegGB); err != nil {
		t.Fatal(err)
	}
	probe := stencil.Star(2, 2)
	name := fw.Dataset.Archs[0].Name
	reqs := []ServeRequest{
		{GPU: name, Stencil: probe},
		{GPU: name, Stencil: probe},
	}
	outs := fw.ServePredictBatchF32(context.Background(), reqs, nil)
	if outs[0].Err != nil || outs[1].Err != nil {
		t.Fatalf("dedup batch failed: %v / %v", outs[0].Err, outs[1].Err)
	}
	if outs[0].Prediction != outs[1].Prediction {
		t.Error("duplicate should share its primary's prediction")
	}
	if outs := fw.ServePredictBatchF32(context.Background(), nil, nil); len(outs) != 0 {
		t.Fatalf("nil batch gave %d outcomes", len(outs))
	}
	bare := &Framework{}
	bad := bare.ServePredictBatchF32(context.Background(), reqs, nil)
	if bad[0].Err == nil || bad[1].Err == nil {
		t.Error("untrained framework must fail every slot")
	}
}

// TestCompiledF32CacheInvalidation pins the publish-time compile
// contract: the compiled lane is cached per Trained set and rebuilt only
// when TrainAll swaps in a new one.
func TestCompiledF32CacheInvalidation(t *testing.T) {
	fw := lanesFramework(t)
	if err := fw.TrainAll(context.Background(), ClassGBDT, RegGB); err != nil {
		t.Fatal(err)
	}
	a, err := fw.CompiledF32()
	if err != nil {
		t.Fatal(err)
	}
	b, err := fw.CompiledF32()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second CompiledF32 should return the cached lane")
	}
	if err := fw.TrainAll(context.Background(), ClassGBDT, RegGB); err != nil {
		t.Fatal(err)
	}
	c, err := fw.CompiledF32()
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("retraining must invalidate the compiled cache")
	}
}

// TestAllocGateCoreScoringF32 pins the zero-allocation contract of the
// serving lane's scoring path: with a warm arena and compiled models,
// encoding a request's classifier and regressor rows and scoring them
// performs zero heap allocations. (The outcome assembly outside this
// boundary intentionally heap-copies probabilities and times — see
// DESIGN.md §11.)
func TestAllocGateCoreScoringF32(t *testing.T) {
	fw := lanesFramework(t)
	if err := fw.TrainAll(context.Background(), ClassGBDT, RegGB); err != nil {
		t.Fatal(err)
	}
	ct, err := fw.CompiledF32()
	if err != nil {
		t.Fatal(err)
	}
	probe := stencil.Star(2, 2)
	name := fw.Dataset.Archs[0].Name
	_, arch, err := fw.ArchByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cls, err := ct.classifierFor(name, probe.Dims)
	if err != nil {
		t.Fatal(err)
	}
	reg, ok := ct.regressors[probe.Dims]
	if !ok {
		t.Fatal("no compiled 2-D regressor")
	}
	proba := make([]float64, fw.Grouping.NumClasses())
	proba[0] = 1
	oc, res, err := fw.tuneForClass(name, probe, arch, proba)
	if err != nil {
		t.Fatal(err)
	}
	archs := fw.Dataset.Archs
	arena := NewServeArena()
	cw := classWidth(ct.ClassifierKind, probe.Dims)
	rw := regWidthFor(ct.RegressorKind, probe.Dims)
	scoring := func() {
		arena.Reset()
		scratch := arena.F64(cw)
		rows := arena.Rows(1)
		row := arena.F32(cw)
		classRowInto(ct.ClassifierKind, probe, scratch)
		for j, v := range scratch {
			row[j] = float32(v)
		}
		rows[0] = row
		pout := arena.F32(cls.Classes())
		cls.PredictProbaBatchF32(rows, pout)

		rscratch := arena.F64(rw)
		rrows := arena.Rows(len(archs))
		for ai, a := range archs {
			rr := arena.F32(rw)
			reg.encodeRowF32(probe, oc, res.Params, a, rscratch, rr)
			rrows[ai] = rr
		}
		vout := arena.F32(len(rrows))
		reg.model.PredictValueBatchF32(rrows, vout)
	}
	scoring() // warm the arena slabs and any compiled-layer scratch
	if n := testing.AllocsPerRun(20, scoring); n != 0 {
		t.Errorf("warm f32 scoring path allocs/op = %g, want 0", n)
	}
}

// FuzzLaneDifferential feeds arbitrary stencils through both lanes and
// holds the differential contract on whatever survives admission: the
// checked-in seed corpus covers both dimensionalities and every catalog
// GPU index class.
func FuzzLaneDifferential(f *testing.F) {
	fw := lanesFramework(f)
	if err := fw.TrainAll(context.Background(), ClassGBDT, RegGB); err != nil {
		f.Fatal(err)
	}
	f.Add(uint8(0), false, []byte{0x01, 0x10, 0x30, 0x62})
	f.Add(uint8(1), true, []byte{0x05, 0x21, 0x13, 0x44, 0x36, 0x57})
	f.Add(uint8(3), false, []byte{})
	arena := NewServeArena()
	f.Fuzz(func(t *testing.T, gpuIdx uint8, is3D bool, data []byte) {
		archs := fw.Dataset.Archs
		name := archs[int(gpuIdx)%len(archs)].Name
		dims := 2
		if is3D {
			dims = 3
		}
		if len(data) > 48 {
			data = data[:48]
		}
		var pts []stencil.Point
		for i := 0; i+1 < len(data); i += 2 {
			p := stencil.Point{
				Dx: int(data[i]%9) - 4,
				Dy: int(data[i+1]%9) - 4,
			}
			if is3D && i+2 < len(data) {
				p.Dz = int(data[i+2]%9) - 4
			}
			pts = append(pts, p)
		}
		s, err := stencil.New("fuzz", dims, pts)
		if err != nil {
			t.Skip() // not an admissible stencil; both lanes reject at Validate
		}
		req := ServeRequest{GPU: name, Stencil: s}
		ref := fw.ServePredictBatch(context.Background(), []ServeRequest{req})[0]
		got := fw.ServePredictBatchF32(context.Background(), []ServeRequest{req}, arena)[0]
		assertLaneOutcome(t, s.String(), ref, got)
	})
}
