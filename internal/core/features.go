package core

import (
	"math"

	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/profile"
	"stencilmart/internal/stencil"
	"stencilmart/internal/tensor"
)

// classFeatureRow returns the Table II feature vector for a stencil — the
// GBDT classifier input.
func classFeatureRow(s stencil.Stencil) []float64 {
	return tensor.Features(s)
}

// classTensorRow returns the flattened assigned tensor — the ConvNet
// input.
func classTensorRow(s stencil.Stencil) []float64 {
	return tensor.MustAssign(s).Data
}

// classMixedRow returns tensor followed by features — the FcNet input.
func classMixedRow(s stencil.Stencil) []float64 {
	t := classTensorRow(s)
	f := classFeatureRow(s)
	out := make([]float64, 0, len(t)+len(f))
	out = append(out, t...)
	return append(out, f...)
}

// regTailRow encodes the non-stencil part of a regression input: OC
// flags, the log2/enum-encoded parameter setting, the GPU hardware
// characteristics (Sec. IV-E), and a block of engineered interaction
// features. The interactions mirror the first-order structure of stencil
// kernels — per-thread coverage, tile halo ratios, coalescing breakers,
// per-line footprint — and are the kind of feature engineering the paper
// cites as standard practice for regression tasks (Sec. IV-C, [28]).
func regTailRow(s stencil.Stencil, oc opt.Opt, p opt.Params, arch gpu.Arch) []float64 {
	out := oc.FlagVector()
	out = append(out, p.Encode()...)
	out = append(out, arch.Features()...)

	order := float64(s.Order())
	cover := math.Log2(float64(maxi(p.Merge, 1)) * float64(maxi(p.Unroll, 1)) * float64(maxi(p.StreamTile, 1)))
	haloX := order / float64(p.BlockX)
	haloY := order / float64(p.BlockY*maxi(p.Merge, 1))
	bmX := 0.0
	if oc.Has(opt.BM) && p.MergeDim == 1 {
		bmX = float64(p.Merge)
	}
	stX := 0.0
	if oc.Has(opt.ST) && p.StreamDim == 1 {
		stX = 1
	}
	lines := float64(stencil.LineCount(s))
	streamDim := p.StreamDim
	if streamDim == 0 {
		streamDim = 3
	}
	planeLines := float64(stencil.PlaneLineCount(s, streamDim))
	tbHalo := 0.0
	if oc.Has(opt.TB) {
		tbHalo = order * float64(p.TBDepth)
	}
	return append(out, cover, haloX, haloY, bmX, stX, lines, planeLines, tbHalo)
}

// regInteractionNames lists the engineered tail features in order.
var regInteractionNames = []string{
	"log2Cover", "haloX", "haloY", "bmXMerge", "streamX", "lines", "planeLines", "tbHalo",
}

// regTailWidth is the width of regTailRow.
var regTailWidth = len(opt.FlagNames) + len(opt.ParamFeatureNames) + len(gpu.FeatureNames) + len(regInteractionNames)

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// regFeatureRow is the MLP/GBRegressor input: Table II stencil features
// followed by the tail.
func regFeatureRow(s stencil.Stencil, oc opt.Opt, p opt.Params, arch gpu.Arch) []float64 {
	out := classFeatureRow(s)
	return append(out, regTailRow(s, oc, p, arch)...)
}

// regTensorRow is the ConvMLP input: assigned tensor followed by the
// tail.
func regTensorRow(s stencil.Stencil, oc opt.Opt, p opt.Params, arch gpu.Arch) []float64 {
	out := classTensorRow(s)
	return append(out, regTailRow(s, oc, p, arch)...)
}

// regTarget converts an instance time to the training target. Regressors
// fit log2(time) (DESIGN.md decision 2); predictions invert with
// regInvert.
func regTarget(seconds float64) float64 { return math.Log2(seconds) }

// regInvert converts a predicted target back to seconds.
func regInvert(target float64) float64 { return math.Exp2(target) }

// instanceRow builds the regression input row for a profiled instance.
func (f *Framework) instanceRow(in profile.Instance, tensorInput bool) ([]float64, error) {
	_, arch, err := f.ArchByName(in.Arch)
	if err != nil {
		return nil, err
	}
	s := f.Dataset.Stencils[in.StencilIdx]
	if tensorInput {
		return regTensorRow(s, in.OC, in.Params, arch), nil
	}
	return regFeatureRow(s, in.OC, in.Params, arch), nil
}

// columnScaler rescales feature columns to [0, 1] by the training maxima
// — the paper's normalization for network inputs. Tree models skip it.
type columnScaler struct {
	scale []float64
}

// fitScaler computes column maxima over training rows and normalizes them
// in place.
func fitScaler(rows [][]float64) columnScaler {
	return columnScaler{scale: tensor.NormalizeColumns(rows)}
}

// apply normalizes one row with the fitted maxima.
func (c columnScaler) apply(row []float64) []float64 {
	if c.scale == nil {
		return row
	}
	return tensor.ApplyScale(row, c.scale)
}

// targetScaler standardizes regression targets for network training.
type targetScaler struct {
	mean, std float64
}

func fitTargetScaler(y []float64) targetScaler {
	var m float64
	for _, v := range y {
		m += v
	}
	m /= float64(len(y))
	var s float64
	for _, v := range y {
		s += (v - m) * (v - m)
	}
	s = math.Sqrt(s / float64(len(y)))
	if s == 0 {
		s = 1
	}
	for i := range y {
		y[i] = (y[i] - m) / s
	}
	return targetScaler{mean: m, std: s}
}

func (t targetScaler) invert(v float64) float64 {
	if t.std == 0 {
		return v
	}
	return v*t.std + t.mean
}
