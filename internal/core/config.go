// Package core assembles the full StencilMART pipeline (Fig. 5): random
// stencil generation, profiling on the simulated GPUs, PCC-based OC
// merging, classifier training for OC selection, regressor training for
// cross-architecture performance prediction, and the cloud-rental case
// study.
package core

import (
	"fmt"

	"stencilmart/internal/ml/nn"
	"stencilmart/internal/ml/tree"
)

// Config sizes the pipeline. The paper's scale (500+500 stencils, tens of
// thousands of instances, TensorFlow/XGBoost training) is out of reach for
// seconds-scale pure-Go tests, so everything is a knob; DefaultConfig is
// test-sized and PaperConfig approaches the paper's proportions.
type Config struct {
	// Corpus2D and Corpus3D are the random stencil counts per
	// dimensionality.
	Corpus2D, Corpus3D int
	// MaxOrder bounds generated stencil order (paper: 4).
	MaxOrder int
	// SamplesPerOC is the random parameter-search budget per OC during
	// profiling and at prediction time (equal budgets, Sec. V-A).
	SamplesPerOC int
	// Classes is the merged OC class count (paper: 5).
	Classes int
	// Folds is the cross-validation fold count (paper: 5).
	Folds int
	// MaxRegressionInstances subsamples the instance dataset before
	// regression training; 0 keeps everything.
	MaxRegressionInstances int
	// Seed drives every random choice in the pipeline.
	Seed int64

	// GBDT and GBReg configure the boosted-tree models.
	GBDT  tree.BoostConfig
	GBReg tree.BoostConfig
	// ConvNetTrain and FcNetTrain configure classifier network training
	// (paper: Adam, lr 1e-4, batch 50 — defaults scaled for speed).
	ConvNetTrain nn.TrainConfig
	FcNetTrain   nn.TrainConfig
	// MLPTrain and ConvMLPTrain configure regressor network training
	// (paper: Adam, lr 5e-4, batch 256).
	MLPTrain     nn.TrainConfig
	ConvMLPTrain nn.TrainConfig
	// FcNetLayers/FcNetWidth shape FcNet; MLPLayers/MLPWidth shape the
	// MLP regressor (paper: seven hidden layers).
	FcNetLayers, FcNetWidth int
	MLPLayers, MLPWidth     int
}

// DefaultConfig returns a seconds-scale configuration for tests and the
// quickstart example.
func DefaultConfig() Config {
	return Config{
		Corpus2D: 40, Corpus3D: 30,
		MaxOrder:               4,
		SamplesPerOC:           12,
		Classes:                5,
		Folds:                  5,
		MaxRegressionInstances: 6000,
		Seed:                   1,
		GBDT:                   tree.BoostConfig{Rounds: 40, LearningRate: 0.15, Tree: tree.TreeConfig{MaxDepth: 4}},
		GBReg:                  tree.BoostConfig{Rounds: 150, LearningRate: 0.1, Tree: tree.TreeConfig{MaxDepth: 7, MinLeaf: 3}},
		ConvNetTrain:           nn.TrainConfig{Epochs: 40, Batch: 16, LR: 2e-3},
		FcNetTrain:             nn.TrainConfig{Epochs: 40, Batch: 16, LR: 2e-3},
		MLPTrain:               nn.TrainConfig{Epochs: 30, Batch: 64, LR: 2e-3},
		ConvMLPTrain:           nn.TrainConfig{Epochs: 15, Batch: 64, LR: 2e-3},
		FcNetLayers:            3, FcNetWidth: 64,
		MLPLayers: 4, MLPWidth: 64,
	}
}

// PaperConfig returns a configuration approaching the paper's scale while
// remaining runnable on a laptop: a larger corpus, deeper search, and the
// paper's seven-layer MLP.
func PaperConfig() Config {
	cfg := DefaultConfig()
	cfg.Corpus2D, cfg.Corpus3D = 150, 120
	cfg.SamplesPerOC = 16
	cfg.MaxRegressionInstances = 8000
	cfg.GBDT.Rounds = 80
	cfg.GBReg.Rounds = 120
	cfg.ConvNetTrain.Epochs = 80
	cfg.FcNetTrain.Epochs = 80
	cfg.MLPTrain.Epochs = 60
	cfg.ConvMLPTrain.Epochs = 25
	cfg.MLPLayers, cfg.MLPWidth = 7, 128
	return cfg
}

// SmokeConfig returns the smallest useful configuration — sized for CI
// smoke tests that must build, train, checkpoint, and serve a framework
// in a few seconds.
func SmokeConfig() Config {
	cfg := DefaultConfig()
	cfg.Corpus2D, cfg.Corpus3D = 12, 8
	cfg.SamplesPerOC = 6
	cfg.MaxRegressionInstances = 400
	cfg.GBDT.Rounds = 10
	cfg.GBReg.Rounds = 20
	cfg.ConvNetTrain.Epochs = 3
	cfg.FcNetTrain.Epochs = 3
	cfg.MLPTrain.Epochs = 3
	cfg.ConvMLPTrain.Epochs = 2
	return cfg
}

// Validate checks the configuration invariants.
func (c Config) Validate() error {
	if c.Corpus2D < 0 || c.Corpus3D < 0 || c.Corpus2D+c.Corpus3D < c.Folds {
		return fmt.Errorf("core: corpus %d+%d too small for %d folds", c.Corpus2D, c.Corpus3D, c.Folds)
	}
	if c.MaxOrder < 1 {
		return fmt.Errorf("core: max order %d < 1", c.MaxOrder)
	}
	if c.SamplesPerOC < 1 {
		return fmt.Errorf("core: samples per OC %d < 1", c.SamplesPerOC)
	}
	if c.Classes < 2 {
		return fmt.Errorf("core: %d classes < 2", c.Classes)
	}
	if c.Folds < 2 {
		return fmt.Errorf("core: %d folds < 2", c.Folds)
	}
	return nil
}
