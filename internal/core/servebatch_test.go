package core

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"stencilmart/internal/ml"
	"stencilmart/internal/stencil"
	"stencilmart/internal/testutil"
)

// batchRequests builds the differential workload: every probe on every
// catalog GPU, plus a duplicate (coalesced traffic repeats shapes) and
// requests that must fail (unknown GPU, invalid stencil).
func batchRequests(fw *Framework) []ServeRequest {
	var reqs []ServeRequest
	for _, s := range ckptProbes() {
		for _, a := range fw.Dataset.Archs {
			reqs = append(reqs, ServeRequest{GPU: a.Name, Stencil: s})
		}
	}
	reqs = append(reqs,
		reqs[0], // duplicate: identical requests must produce identical bytes
		ServeRequest{GPU: "NoSuchGPU", Stencil: stencil.Star(2, 1)},
		ServeRequest{GPU: fw.Dataset.Archs[0].Name, Stencil: stencil.Stencil{Name: "empty", Dims: 2}},
	)
	return reqs
}

// assertBatchMatchesSerial checks every batched outcome against its
// serial ServePredict twin: identical JSON bytes for successes, identical
// error text for failures.
func assertBatchMatchesSerial(t *testing.T, fw *Framework, reqs []ServeRequest, outs []ServeOutcome) {
	t.Helper()
	if len(outs) != len(reqs) {
		t.Fatalf("%d outcomes for %d requests", len(outs), len(reqs))
	}
	for i, req := range reqs {
		want, wantErr := fw.ServePredict(req.GPU, req.Stencil)
		got, gotErr := outs[i].Prediction, outs[i].Err
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("req %d (%s on %s): serial err %v, batched err %v",
				i, req.Stencil.Name, req.GPU, wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("req %d: error drift:\nserial:  %v\nbatched: %v", i, wantErr, gotErr)
			}
			continue
		}
		wantJSON, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		testutil.AssertSameBytes(t, req.Stencil.Name+" on "+req.GPU, wantJSON, gotJSON)
	}
}

// TestServePredictBatchMatchesSerial is the core determinism contract of
// the coalescing tier: a batched call must be bitwise indistinguishable
// from one ServePredict per request — same JSON bytes, same errors —
// regardless of scheduler parallelism during the tuning fan-out.
func TestServePredictBatchMatchesSerial(t *testing.T) {
	fw := ckptFramework(t)
	pairs := []struct {
		ck ClassifierKind
		rk RegressorKind
	}{
		{ClassGBDT, RegGB},
		{ClassFcNet, RegMLP},
	}
	for _, pair := range pairs {
		t.Run(pair.ck.String()+"_"+pair.rk.String(), func(t *testing.T) {
			if err := fw.TrainAll(context.Background(), pair.ck, pair.rk); err != nil {
				t.Fatal(err)
			}
			reqs := batchRequests(fw)
			for _, procs := range []int{1, 4} {
				t.Run(map[int]string{1: "GOMAXPROCS1", 4: "GOMAXPROCS4"}[procs], func(t *testing.T) {
					testutil.WithGOMAXPROCS(t, procs, func() {
						outs := fw.ServePredictBatch(context.Background(), reqs)
						assertBatchMatchesSerial(t, fw, reqs, outs)
					})
				})
			}
		})
	}
}

func TestServePredictBatchEmptyAndUntrained(t *testing.T) {
	fw := ckptFramework(t)
	if err := fw.TrainAll(context.Background(), ClassGBDT, RegGB); err != nil {
		t.Fatal(err)
	}
	if outs := fw.ServePredictBatch(context.Background(), nil); len(outs) != 0 {
		t.Fatalf("nil batch gave %d outcomes", len(outs))
	}
	bare := &Framework{}
	outs := bare.ServePredictBatch(context.Background(), []ServeRequest{{GPU: "x", Stencil: stencil.Star(2, 1)}})
	if len(outs) != 1 || outs[0].Err == nil ||
		!strings.Contains(outs[0].Err.Error(), "no trained models") {
		t.Fatalf("untrained batch gave %+v", outs)
	}
}

// panickyClassifier wraps a real classifier and panics on one poisoned
// row: in the batched path whenever the batch contains it, in the
// row-at-a-time path only for the row itself. It models a model bug one
// request triggers, to prove the batch pipeline retries per item and
// quarantines the failure.
type panickyClassifier struct {
	inner  ml.Classifier
	poison []float64
}

func rowsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (p *panickyClassifier) FitClassifier(x [][]float64, y []int, k int) error {
	return p.inner.FitClassifier(x, y, k)
}
func (p *panickyClassifier) PredictClass(row []float64) int { return p.inner.PredictClass(row) }
func (p *panickyClassifier) PredictProba(row []float64) []float64 {
	if rowsEqual(row, p.poison) {
		panic("poisoned row")
	}
	return p.inner.PredictProba(row)
}
func (p *panickyClassifier) PredictProbaBatch(rows [][]float64) [][]float64 {
	for _, r := range rows {
		if rowsEqual(r, p.poison) {
			panic("poisoned batch")
		}
	}
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = p.inner.PredictProba(r)
	}
	return out
}

// TestServePredictBatchIsolatesPoisonedRow: when the batched classifier
// call panics, only the request that triggers the panic may fail — its
// batchmates must still return predictions identical to serial calls.
func TestServePredictBatchIsolatesPoisonedRow(t *testing.T) {
	fw := ckptFramework(t)
	if err := fw.TrainAll(context.Background(), ClassGBDT, RegGB); err != nil {
		t.Fatal(err)
	}
	gpuName := fw.Dataset.Archs[0].Name
	good1, poisoned, good2 := stencil.Star(2, 2), stencil.Box(2, 1), stencil.Star(2, 3)

	// Serial expectations, computed before the stub goes in.
	wantGood1, err := fw.ServePredict(gpuName, good1)
	if err != nil {
		t.Fatal(err)
	}
	wantGood2, err := fw.ServePredict(gpuName, good2)
	if err != nil {
		t.Fatal(err)
	}

	real := fw.Trained.Classifiers[gpuName][2]
	fw.Trained.Classifiers[gpuName][2] = &panickyClassifier{
		inner:  real,
		poison: classEncode(fw.Trained.ClassifierKind, poisoned),
	}
	defer func() { fw.Trained.Classifiers[gpuName][2] = real }()

	outs := fw.ServePredictBatch(context.Background(), []ServeRequest{
		{GPU: gpuName, Stencil: good1},
		{GPU: gpuName, Stencil: poisoned},
		{GPU: gpuName, Stencil: good2},
	})
	if outs[1].Err == nil || !strings.Contains(outs[1].Err.Error(), "classify panicked") {
		t.Fatalf("poisoned request gave %+v, want classify panic error", outs[1])
	}
	for i, want := range map[int]*ServePrediction{0: wantGood1, 2: wantGood2} {
		if outs[i].Err != nil {
			t.Fatalf("batchmate %d failed: %v", i, outs[i].Err)
		}
		wantJSON, _ := json.Marshal(want)
		gotJSON, _ := json.Marshal(outs[i].Prediction)
		testutil.AssertSameBytes(t, outs[i].Prediction.Stencil, wantJSON, gotJSON)
	}
}

// panickyRegressor fails every multi-item batched call but serves
// per-item row counts, forcing the pipeline onto its per-item regression
// fallback — whose results must still match serial calls bitwise.
type panickyRegressor struct {
	inner   ml.Regressor
	rowsCap int
}

func (p *panickyRegressor) FitRegressor(x [][]float64, y []float64) error {
	return p.inner.FitRegressor(x, y)
}
func (p *panickyRegressor) PredictValue(row []float64) float64 { return p.inner.PredictValue(row) }
func (p *panickyRegressor) PredictValueBatch(rows [][]float64) []float64 {
	if len(rows) > p.rowsCap {
		panic("batch too large")
	}
	return ml.PredictValueAll(p.inner, rows)
}

// TestServePredictBatchRegressionFallback: a panicking grouped regression
// call must degrade to per-item scoring with no observable difference
// from serial ServePredict.
func TestServePredictBatchRegressionFallback(t *testing.T) {
	fw := ckptFramework(t)
	if err := fw.TrainAll(context.Background(), ClassGBDT, RegGB); err != nil {
		t.Fatal(err)
	}
	reqs := []ServeRequest{}
	for _, a := range fw.Dataset.Archs {
		reqs = append(reqs, ServeRequest{GPU: a.Name, Stencil: stencil.Star(2, 2)})
		reqs = append(reqs, ServeRequest{GPU: a.Name, Stencil: stencil.Box(2, 2)})
	}
	want := make([]*ServePrediction, len(reqs))
	for i, req := range reqs {
		p, err := fw.ServePredict(req.GPU, req.Stencil)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = p
	}

	reg := fw.Trained.Regressors[2]
	realModel := reg.model
	// Allow exactly one item's worth of rows (the per-item fallback and
	// serial ServePredict both score len(archs) rows per call).
	reg.model = &panickyRegressor{inner: realModel, rowsCap: len(fw.Dataset.Archs)}
	defer func() { reg.model = realModel }()

	outs := fw.ServePredictBatch(context.Background(), reqs)
	for i := range reqs {
		if outs[i].Err != nil {
			t.Fatalf("req %d failed under fallback: %v", i, outs[i].Err)
		}
		wantJSON, _ := json.Marshal(want[i])
		gotJSON, _ := json.Marshal(outs[i].Prediction)
		testutil.AssertSameBytes(t, want[i].Stencil+" on "+want[i].GPU, wantJSON, gotJSON)
	}
}
