package core

import (
	"context"
	"fmt"
	"sync"

	"stencilmart/internal/gen"
	"stencilmart/internal/gpu"
	"stencilmart/internal/merge"
	"stencilmart/internal/profile"
	"stencilmart/internal/sim"
)

// Framework is a built StencilMART instance: a profiled corpus plus the
// merged OC classes, ready to train and evaluate predictors.
type Framework struct {
	Cfg      Config
	Dataset  *profile.Dataset
	Grouping merge.Grouping
	Model    *sim.Model
	// Trained holds the deployed full-corpus models after TrainAll or
	// LoadFramework; nil until then. See checkpoint.go.
	Trained *Trained

	// compiled caches the f32 inference lane built by CompiledF32 for the
	// exact Trained set it was compiled from; TrainAll swapping Trained
	// invalidates it by pointer identity. See compile.go.
	compileMu   sync.Mutex
	compiled    *CompiledTrained
	compiledFor *Trained
}

// Build runs the data-collection half of the pipeline: generate the
// random corpus, profile it on every catalog GPU, and merge the OCs into
// prediction classes. Cancelling ctx (e.g. on SIGINT) stops profiling
// after in-flight cells finish.
func Build(ctx context.Context, cfg Config) (*Framework, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	corpus, err := gen.MixedCorpus(cfg.Corpus2D, cfg.Corpus3D, cfg.MaxOrder, cfg.Seed)
	if err != nil {
		return nil, err
	}
	model := sim.New()
	prof := profile.NewProfiler(cfg.SamplesPerOC, cfg.Seed+1000)
	prof.Model = model
	ds, err := prof.Collect(ctx, corpus, gpu.Catalog())
	if err != nil {
		return nil, err
	}
	return FromDataset(cfg, ds, model)
}

// FromDataset assembles a framework around an existing dataset (e.g. one
// loaded from disk by the CLI), running only the OC-merging step.
func FromDataset(cfg Config, ds *profile.Dataset, model *sim.Model) (*Framework, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if model == nil {
		model = sim.New()
	}
	// Merge on median per-OC times (a stable statistic of each OC's
	// behavior); best-OC labels keep using the best-of-search minimum.
	matrices := make([][][]float64, len(ds.Archs))
	for ai := range ds.Archs {
		matrices[ai] = ds.MedianTimeMatrix(ai)
	}
	grouping, err := merge.Build(matrices, cfg.Classes)
	if err != nil {
		return nil, err
	}
	if err := grouping.Validate(); err != nil {
		return nil, err
	}
	return &Framework{Cfg: cfg, Dataset: ds, Grouping: grouping, Model: model}, nil
}

// StencilIndices returns the corpus indices of the given dimensionality.
func (f *Framework) StencilIndices(dims int) []int {
	var out []int
	for i, s := range f.Dataset.Stencils {
		if s.Dims == dims {
			out = append(out, i)
		}
	}
	return out
}

// ClassLabel returns the merged-class label of the best OC for stencil si
// on architecture archIdx.
func (f *Framework) ClassLabel(archIdx, si int) int {
	return f.Grouping.GroupOf[f.Dataset.Labels(archIdx)[si]]
}

// classLabels returns merged-class labels for a set of stencil indices.
func (f *Framework) classLabels(archIdx int, indices []int) []int {
	all := f.Dataset.Labels(archIdx)
	out := make([]int, len(indices))
	for i, si := range indices {
		out[i] = f.Grouping.GroupOf[all[si]]
	}
	return out
}

// ArchByName resolves a Table III GPU from the dataset.
func (f *Framework) ArchByName(name string) (int, gpu.Arch, error) {
	ai, err := f.Dataset.ArchIndex(name)
	if err != nil {
		return 0, gpu.Arch{}, err
	}
	return ai, f.Dataset.Archs[ai], nil
}

// stencilFolds returns fold index sets over the stencils of one
// dimensionality.
func (f *Framework) stencilFolds(dims int) ([][]int, [][]int, error) {
	indices := f.StencilIndices(dims)
	if len(indices) < f.Cfg.Folds {
		return nil, nil, fmt.Errorf("core: %d %d-D stencils cannot form %d folds", len(indices), dims, f.Cfg.Folds)
	}
	folds, err := profile.Folds(len(indices), f.Cfg.Folds, f.Cfg.Seed+7)
	if err != nil {
		return nil, nil, err
	}
	// Map positions back to corpus indices.
	mapped := make([][]int, len(folds))
	for fi, fold := range folds {
		for _, pos := range fold {
			mapped[fi] = append(mapped[fi], indices[pos])
		}
	}
	return mapped, folds, nil
}
