package core

// ServeArena is grow-only per-batch scratch for the f32 serving lane:
// the serving tier owns one arena per scoring lane, calls Reset at the
// start of every coalesced flush, and every row/output buffer the batch
// needs is carved from three reusable slabs. Slabs only ever grow — a
// request for more than the remaining capacity allocates a larger
// replacement slab (outstanding slices keep the old one alive until the
// batch ends) — so once the slabs have warmed to the steady-state batch
// shape, a flush performs zero heap allocations in the scoring path.
// Hand-outs are zeroed, keeping batch results independent of what the
// previous flush wrote. An arena is not safe for concurrent use; the
// serving layer's single scoring lane serializes access.
type ServeArena struct {
	f64  []float64
	f32  []float32
	rows [][]float32

	f64Off, f32Off, rowsOff int
}

// NewServeArena returns an empty arena; slabs grow on first use.
func NewServeArena() *ServeArena { return &ServeArena{} }

// Reset recycles every slab for the next batch. Buffers handed out
// before Reset must no longer be referenced.
func (a *ServeArena) Reset() {
	a.f64Off, a.f32Off, a.rowsOff = 0, 0, 0
}

// arenaMinSlab is the initial slab element count; big enough that tiny
// first batches don't trigger a growth ladder.
const arenaMinSlab = 1024

func grownCap(have, need int) int {
	size := have * 2
	if size < need {
		size = need
	}
	if size < arenaMinSlab {
		size = arenaMinSlab
	}
	return size
}

// F64 hands out a zeroed []float64 of length n from the slab.
func (a *ServeArena) F64(n int) []float64 {
	if a.f64Off+n > len(a.f64) {
		a.f64 = make([]float64, grownCap(len(a.f64), n))
		a.f64Off = 0
	}
	s := a.f64[a.f64Off : a.f64Off+n : a.f64Off+n]
	a.f64Off += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// F32 hands out a zeroed []float32 of length n from the slab.
func (a *ServeArena) F32(n int) []float32 {
	if a.f32Off+n > len(a.f32) {
		a.f32 = make([]float32, grownCap(len(a.f32), n))
		a.f32Off = 0
	}
	s := a.f32[a.f32Off : a.f32Off+n : a.f32Off+n]
	a.f32Off += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// Rows hands out a nil-cleared [][]float32 of length n from the slab.
func (a *ServeArena) Rows(n int) [][]float32 {
	if a.rowsOff+n > len(a.rows) {
		a.rows = make([][]float32, grownCap(len(a.rows), n))
		a.rowsOff = 0
	}
	s := a.rows[a.rowsOff : a.rowsOff+n : a.rowsOff+n]
	a.rowsOff += n
	for i := range s {
		s[i] = nil
	}
	return s
}
