package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"

	"stencilmart/internal/gpu"
	"stencilmart/internal/merge"
	"stencilmart/internal/ml"
	"stencilmart/internal/ml/nn"
	"stencilmart/internal/ml/tree"
	"stencilmart/internal/opt"
	"stencilmart/internal/par"
	"stencilmart/internal/persist"
	"stencilmart/internal/profile"
	"stencilmart/internal/sim"
	"stencilmart/internal/stencil"
	"stencilmart/internal/tuner"
)

// CheckpointKind and CheckpointVersion frame the framework checkpoint in
// the persist envelope. Version bumps whenever the payload schema below
// changes incompatibly (see the persist package's versioning policy).
const (
	CheckpointKind    = "stencilmart-framework"
	CheckpointVersion = 1
)

// ParseClassifierKind resolves a mechanism name (GBDT, ConvNet, FcNet).
func ParseClassifierKind(name string) (ClassifierKind, error) {
	for _, k := range ClassifierKinds {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("core: unknown classifier %q (GBDT, ConvNet, FcNet)", name)
}

// ParseRegressorKind resolves a mechanism name (GBRegressor, MLP, ConvMLP).
func ParseRegressorKind(name string) (RegressorKind, error) {
	for _, k := range RegressorKinds {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("core: unknown regressor %q (GBRegressor, MLP, ConvMLP)", name)
}

// Trained holds the full-corpus models TrainAll fits: one classifier per
// (catalog GPU, dimensionality) and one regressor per dimensionality.
// These are the deployed models a checkpoint persists — the train-once
// half of the paper's train-once/predict-cheaply contract.
type Trained struct {
	ClassifierKind ClassifierKind
	RegressorKind  RegressorKind
	// Classifiers maps arch name → dims → fitted model.
	Classifiers map[string]map[int]ml.Classifier
	// Regressors maps dims → fitted cross-architecture regressor.
	Regressors map[int]*TrainedRegressor
}

// trainDims lists the dimensionalities with corpus support.
func (f *Framework) trainDims() []int {
	var out []int
	for _, d := range []int{2, 3} {
		if len(f.StencilIndices(d)) > 0 {
			out = append(out, d)
		}
	}
	return out
}

// classifierSeed derives the deterministic training seed for one
// (arch, dims) classifier.
func (f *Framework) classifierSeed(archIdx, dims int) int64 {
	return f.Cfg.Seed + 10000 + int64(archIdx)*100 + int64(dims)
}

// regressorSeed derives the deterministic training seed for one dims
// regressor.
func (f *Framework) regressorSeed(dims int) int64 {
	return f.Cfg.Seed + 20000 + int64(dims)
}

// TrainAll fits the serving models on the full corpus: the chosen
// classifier mechanism for every (catalog GPU, dimensionality) pair and
// the chosen regressor mechanism per dimensionality, stored on the
// framework for ServePredict and Save. Cells train concurrently on the
// shared pool; each owns its model and derives its own seed, so the
// fitted set is identical to a serial loop under any GOMAXPROCS.
// Cancelling ctx abandons training and leaves Trained nil.
func (f *Framework) TrainAll(ctx context.Context, ck ClassifierKind, rk RegressorKind) error {
	if ctx == nil {
		ctx = context.Background()
	}
	dims := f.trainDims()
	if len(dims) == 0 {
		return fmt.Errorf("core: empty corpus, nothing to train")
	}
	f.Trained = nil // invalidate any previous set while retraining
	tr := &Trained{
		ClassifierKind: ck,
		RegressorKind:  rk,
		Classifiers:    make(map[string]map[int]ml.Classifier),
		Regressors:     make(map[int]*TrainedRegressor),
	}

	type cell struct{ archIdx, dims int }
	var cells []cell
	for ai := range f.Dataset.Archs {
		for _, d := range dims {
			cells = append(cells, cell{ai, d})
		}
	}
	classifiers, err := par.Map(ctx, len(cells), 0, func(i int) (ml.Classifier, error) {
		c := cells[i]
		cls, _, err := f.TrainClassifier(ck, c.archIdx, c.dims, f.StencilIndices(c.dims), f.classifierSeed(c.archIdx, c.dims))
		return cls, err
	})
	if err != nil {
		return err
	}
	for i, c := range cells {
		name := f.Dataset.Archs[c.archIdx].Name
		if tr.Classifiers[name] == nil {
			tr.Classifiers[name] = make(map[int]ml.Classifier)
		}
		tr.Classifiers[name][c.dims] = classifiers[i]
	}

	regressors, err := par.Map(ctx, len(dims), 0, func(i int) (*TrainedRegressor, error) {
		d := dims[i]
		return f.TrainRegressor(rk, d, f.dimsInstances(d), f.regressorSeed(d))
	})
	if err != nil {
		return err
	}
	for i, d := range dims {
		tr.Regressors[d] = regressors[i]
	}
	f.Trained = tr
	return nil
}

// requireTrained returns the trained set or a descriptive error.
func (f *Framework) requireTrained() (*Trained, error) {
	if f.Trained == nil {
		return nil, fmt.Errorf("core: framework has no trained models (run TrainAll or load a checkpoint)")
	}
	return f.Trained, nil
}

// classifierFor resolves the trained classifier serving (archName, dims),
// with the error messages the serving layer maps to 400s.
func (tr *Trained) classifierFor(archName string, dims int) (ml.Classifier, error) {
	byDims, ok := tr.Classifiers[archName]
	if !ok {
		return nil, fmt.Errorf("core: no trained classifier for GPU %q", archName)
	}
	cls, ok := byDims[dims]
	if !ok {
		return nil, fmt.Errorf("core: no trained %d-D classifier for GPU %q", dims, archName)
	}
	return cls, nil
}

// PredictClassTrained scores an arbitrary stencil with the checkpointed
// classifier for the named GPU, returning the merged class and the
// per-class probabilities. No training runs. Callers sharing a framework
// across goroutines must serialize calls (nn models reuse forward
// scratch).
func (f *Framework) PredictClassTrained(archName string, s stencil.Stencil) (int, []float64, error) {
	tr, err := f.requireTrained()
	if err != nil {
		return 0, nil, err
	}
	if err := s.Validate(); err != nil {
		return 0, nil, err
	}
	cls, err := tr.classifierFor(archName, s.Dims)
	if err != nil {
		return 0, nil, err
	}
	row := classEncode(tr.ClassifierKind, s)
	proba := ml.PredictProbaAll(cls, [][]float64{row})[0]
	return ml.ArgMax(proba), proba, nil
}

// PredictStencilSeconds predicts execution times for one (stencil, OC,
// params) triple on every given architecture in a single batched forward
// pass — the cross-GPU query behind the rent advisor. Rows build directly
// from the stencil, so unseen stencils (not in the training dataset) are
// first-class inputs.
func (t *TrainedRegressor) PredictStencilSeconds(s stencil.Stencil, oc opt.Opt, p opt.Params, archs []gpu.Arch) []float64 {
	rows := t.stencilRows(s, oc, p, archs)
	vals := ml.PredictValueAll(t.model, rows)
	t.invertSeconds(vals)
	return vals
}

// stencilRows encodes and scales the regressor inputs for one (stencil,
// OC, params) triple on every given architecture.
func (t *TrainedRegressor) stencilRows(s stencil.Stencil, oc opt.Opt, p opt.Params, archs []gpu.Arch) [][]float64 {
	rows := make([][]float64, len(archs))
	for i, a := range archs {
		var row []float64
		if t.kind.usesTensor() {
			row = regTensorRow(s, oc, p, a)
		} else {
			row = regFeatureRow(s, oc, p, a)
		}
		rows[i] = t.xScale.apply(row)
	}
	return rows
}

// invertSeconds converts raw model outputs to seconds in place, undoing
// target scaling and the log2 transform.
func (t *TrainedRegressor) invertSeconds(vals []float64) {
	for i, v := range vals {
		if t.kind.usesScaling() {
			v = t.yScale.invert(v)
		}
		vals[i] = regInvert(v)
	}
}

// RentAdvice is the cross-GPU verdict for one prediction: which catalog
// GPU the regressor expects to run the tuned kernel fastest, and which
// rentable GPU minimizes time x rental price (the Figs. 14-15 metrics).
type RentAdvice struct {
	// Target echoes the requested GPU and its predicted seconds.
	Target        string  `json:"target"`
	TargetSeconds float64 `json:"target_seconds"`
	// BestArch is the predicted-fastest GPU across the catalog.
	BestArch    string  `json:"best_arch"`
	BestSeconds float64 `json:"best_seconds"`
	// Speedup is TargetSeconds / BestSeconds (1 means the target already
	// wins).
	Speedup float64 `json:"speedup"`
	// BestCostArch minimizes seconds x $/hr among rentable GPUs; empty
	// when no catalog GPU has a rental price.
	BestCostArch string `json:"best_cost_arch,omitempty"`
	// BestCostValue is that minimal seconds x $/hr product.
	BestCostValue float64 `json:"best_cost_value,omitempty"`
	// Rent is the verdict: true when a different GPU than the target is
	// predicted to be faster.
	Rent bool `json:"rent"`
}

// ServePrediction is the one-shot inference result for an unseen stencil:
// everything the prediction service returns from a single request.
type ServePrediction struct {
	Stencil string    `json:"stencil"`
	GPU     string    `json:"gpu"`
	Class   int       `json:"class"`
	Proba   []float64 `json:"proba"`
	// OC is the representative optimization combination of the predicted
	// class (after crash fallback across classes).
	OC string `json:"oc"`
	// Params is the best parameter setting found for OC on the target GPU
	// under the configured search budget.
	Params opt.Params `json:"params"`
	// TunedSeconds is the simulated execution time of (OC, Params) on the
	// target GPU.
	TunedSeconds float64 `json:"tuned_seconds"`
	// ArchNames and PredictedSeconds are the regressor's cross-GPU times
	// for the tuned kernel, index-aligned.
	ArchNames        []string   `json:"arch_names"`
	PredictedSeconds []float64  `json:"predicted_seconds"`
	Advice           RentAdvice `json:"advice"`
}

// requestSeed derives a deterministic tuning seed from the request so
// identical requests tune identically (and hit the sim memo cache).
func requestSeed(base int64, archName string, s stencil.Stencil) int64 {
	h := fnv.New64a()
	io.WriteString(h, archName)
	io.WriteString(h, s.Name)
	for _, p := range s.Points {
		fmt.Fprintf(h, "|%d,%d,%d", p.Dx, p.Dy, p.Dz)
	}
	return base + int64(h.Sum64()&0x7fffffff)
}

// ServePredict runs the full predict-cheaply path against the trained
// models: classify the stencil, tune the predicted class's representative
// OC on the target GPU (falling back through lower-probability classes if
// every setting of a representative crashes), predict the tuned kernel's
// time on every catalog GPU in one batched regressor pass, and derive the
// rent-or-not verdict. Not safe for concurrent use on one framework — the
// serving layer serializes.
func (f *Framework) ServePredict(archName string, s stencil.Stencil) (*ServePrediction, error) {
	tr, err := f.requireTrained()
	if err != nil {
		return nil, err
	}
	_, arch, err := f.ArchByName(archName)
	if err != nil {
		return nil, err
	}
	class, proba, err := f.PredictClassTrained(archName, s)
	if err != nil {
		return nil, err
	}
	reg, ok := tr.Regressors[s.Dims]
	if !ok {
		return nil, fmt.Errorf("core: no trained %d-D regressor", s.Dims)
	}

	chosen, best, err := f.tuneForClass(archName, s, arch, proba)
	if err != nil {
		return nil, err
	}

	archs := f.Dataset.Archs
	times := reg.PredictStencilSeconds(s, chosen, best.Params, archs)
	names := make([]string, len(archs))
	for i, a := range archs {
		names[i] = a.Name
	}

	return &ServePrediction{
		Stencil:          s.Name,
		GPU:              archName,
		Class:            class,
		Proba:            proba,
		OC:               chosen.String(),
		Params:           best.Params,
		TunedSeconds:     best.Time,
		ArchNames:        names,
		PredictedSeconds: times,
		Advice:           rentAdvice(archName, archs, times),
	}, nil
}

// tuneForClass tunes the representative OC of the most probable class on
// the target GPU, falling back through the class order when every sampled
// setting of a representative crashes. The tuning seed derives from the
// request, so identical requests tune identically (and hit the sim memo
// cache) no matter which batch or goroutine carries them.
func (f *Framework) tuneForClass(archName string, s stencil.Stencil, arch gpu.Arch, proba []float64) (opt.Opt, tuner.Result, error) {
	w := sim.DefaultWorkload(s)
	seed := requestSeed(f.Cfg.Seed, archName, s)
	for _, c := range classOrder(proba) {
		oc := f.Grouping.RepOC(c)
		res, err := (tuner.Random{}).Tune(f.Model, w, oc, arch, f.Cfg.SamplesPerOC, seed)
		if err == nil {
			return oc, res, nil
		}
	}
	return 0, tuner.Result{}, fmt.Errorf("core: no runnable OC for %s on %s", s.Name, archName)
}

// rentAdvice derives the cross-GPU verdict from index-aligned predicted
// times.
func rentAdvice(target string, archs []gpu.Arch, times []float64) RentAdvice {
	adv := RentAdvice{Target: target, BestCostValue: math.Inf(1)}
	best := math.Inf(1)
	for i, a := range archs {
		if a.Name == target {
			adv.TargetSeconds = times[i]
		}
		if times[i] < best {
			best = times[i]
			adv.BestArch = a.Name
			adv.BestSeconds = times[i]
		}
		if a.HasRental() {
			if v := times[i] * a.RentalPerHour; v < adv.BestCostValue {
				adv.BestCostValue = v
				adv.BestCostArch = a.Name
			}
		}
	}
	if math.IsInf(adv.BestCostValue, 1) {
		adv.BestCostValue = 0
	}
	if adv.BestSeconds > 0 {
		adv.Speedup = adv.TargetSeconds / adv.BestSeconds
	}
	adv.Rent = adv.BestArch != "" && adv.BestArch != target
	return adv
}

// --- checkpoint serialization ---------------------------------------------

// savedModel is the tagged union of serialized model states. Exactly one
// branch is set, named by Kind.
type savedModel struct {
	Kind  string                 `json:"kind"` // "gbdt", "gbreg", or "nn"
	GBDT  *tree.GBDTState        `json:"gbdt,omitempty"`
	GBReg *tree.GBRegressorState `json:"gbreg,omitempty"`
	// NN holds the flat weight blocks of a network model; the
	// architecture itself is rebuilt deterministically from Config, so
	// the checkpoint stays free of layer-graph encodings.
	NN [][]float64 `json:"nn,omitempty"`
}

type savedClassifier struct {
	Arch  string     `json:"arch"`
	Dims  int        `json:"dims"`
	Model savedModel `json:"model"`
}

type savedRegressor struct {
	Dims   int        `json:"dims"`
	XScale []float64  `json:"xscale,omitempty"`
	YMean  float64    `json:"ymean"`
	YStd   float64    `json:"ystd"`
	Model  savedModel `json:"model"`
}

// schemaEntry records the input-row widths the models were trained
// against for one dimensionality. Load recomputes the widths from the
// current encoders and refuses checkpoints that disagree — feature-set
// drift between builds must fail loudly, not mispredict.
type schemaEntry struct {
	Dims       int `json:"dims"`
	ClassWidth int `json:"class_width"`
	RegWidth   int `json:"reg_width"`
}

// checkpointPayload is the version-1 framework checkpoint schema.
type checkpointPayload struct {
	Config         Config            `json:"config"`
	Dataset        json.RawMessage   `json:"dataset"`
	Grouping       merge.Grouping    `json:"grouping"`
	Schema         []schemaEntry     `json:"schema"`
	ClassifierKind string            `json:"classifier_kind"`
	RegressorKind  string            `json:"regressor_kind"`
	Classifiers    []savedClassifier `json:"classifiers"`
	Regressors     []savedRegressor  `json:"regressors"`
}

// featureSchema computes the current encoders' row widths per trained
// dimensionality.
func (f *Framework) featureSchema(ck ClassifierKind, rk RegressorKind) []schemaEntry {
	var out []schemaEntry
	for _, d := range f.trainDims() {
		probe := f.Dataset.Stencils[f.StencilIndices(d)[0]]
		e := schemaEntry{Dims: d, ClassWidth: len(classEncode(ck, probe))}
		if rk.usesTensor() {
			e.RegWidth = len(classTensorRow(probe)) + regTailWidth
		} else {
			e.RegWidth = len(classFeatureRow(probe)) + regTailWidth
		}
		out = append(out, e)
	}
	return out
}

// snapshotClassifier serializes one fitted classifier.
func snapshotClassifier(cls ml.Classifier) (savedModel, error) {
	switch m := cls.(type) {
	case *tree.GBDT:
		st := m.State()
		return savedModel{Kind: "gbdt", GBDT: &st}, nil
	case *nn.Classifier:
		return savedModel{Kind: "nn", NN: m.Net.WeightSnapshot()}, nil
	default:
		return savedModel{}, fmt.Errorf("core: classifier %T cannot be serialized", cls)
	}
}

// snapshotRegressor serializes one fitted regressor model.
func snapshotRegressor(reg ml.Regressor) (savedModel, error) {
	switch m := reg.(type) {
	case *tree.GBRegressor:
		st := m.State()
		return savedModel{Kind: "gbreg", GBReg: &st}, nil
	case *nn.Regressor:
		return savedModel{Kind: "nn", NN: m.Net.WeightSnapshot()}, nil
	default:
		return savedModel{}, fmt.Errorf("core: regressor %T cannot be serialized", reg)
	}
}

// Save checkpoints the framework — configuration, dataset, OC grouping,
// feature schema, and every trained model — inside a versioned,
// checksummed persist envelope. The framework must have been trained
// (TrainAll) first. A saved-then-loaded framework predicts bitwise
// identically to the in-memory one.
func (f *Framework) Save(w io.Writer) error {
	tr, err := f.requireTrained()
	if err != nil {
		return err
	}
	var dsBuf bytes.Buffer
	if err := f.Dataset.WriteJSON(&dsBuf); err != nil {
		return err
	}
	payload := checkpointPayload{
		Config:         f.Cfg,
		Dataset:        dsBuf.Bytes(),
		Grouping:       f.Grouping,
		Schema:         f.featureSchema(tr.ClassifierKind, tr.RegressorKind),
		ClassifierKind: tr.ClassifierKind.String(),
		RegressorKind:  tr.RegressorKind.String(),
	}
	// Serialize in deterministic order: dataset arch order, dims ascending.
	for _, a := range f.Dataset.Archs {
		for _, d := range f.trainDims() {
			cls, ok := tr.Classifiers[a.Name][d]
			if !ok {
				return fmt.Errorf("core: trained set missing %d-D classifier for %s", d, a.Name)
			}
			sm, err := snapshotClassifier(cls)
			if err != nil {
				return err
			}
			payload.Classifiers = append(payload.Classifiers, savedClassifier{Arch: a.Name, Dims: d, Model: sm})
		}
	}
	for _, d := range f.trainDims() {
		reg, ok := tr.Regressors[d]
		if !ok {
			return fmt.Errorf("core: trained set missing %d-D regressor", d)
		}
		sm, err := snapshotRegressor(reg.model)
		if err != nil {
			return err
		}
		payload.Regressors = append(payload.Regressors, savedRegressor{
			Dims:   d,
			XScale: reg.xScale.scale,
			YMean:  reg.yScale.mean,
			YStd:   reg.yScale.std,
			Model:  sm,
		})
	}
	return persist.Write(w, CheckpointKind, CheckpointVersion, payload)
}

// restoreClassifier rehydrates one classifier, validating that the stored
// model matches the declared mechanism and the grouping's class count.
func (f *Framework) restoreClassifier(ck ClassifierKind, sc savedClassifier) (ml.Classifier, error) {
	classes := f.Grouping.NumClasses()
	if ck == ClassGBDT {
		if sc.Model.Kind != "gbdt" || sc.Model.GBDT == nil {
			return nil, fmt.Errorf("core: %s/%d-D classifier holds %q state, want gbdt", sc.Arch, sc.Dims, sc.Model.Kind)
		}
		g, err := tree.GBDTFromState(*sc.Model.GBDT)
		if err != nil {
			return nil, fmt.Errorf("core: %s/%d-D classifier: %w", sc.Arch, sc.Dims, err)
		}
		if g.NumClasses() != classes {
			return nil, fmt.Errorf("core: %s/%d-D classifier has %d classes, grouping has %d", sc.Arch, sc.Dims, g.NumClasses(), classes)
		}
		return g, nil
	}
	if sc.Model.Kind != "nn" || sc.Model.NN == nil {
		return nil, fmt.Errorf("core: %s/%d-D classifier holds %q state, want nn", sc.Arch, sc.Dims, sc.Model.Kind)
	}
	archIdx, err := f.Dataset.ArchIndex(sc.Arch)
	if err != nil {
		return nil, err
	}
	cls, err := f.newClassifier(ck, sc.Dims, f.classifierSeed(archIdx, sc.Dims))
	if err != nil {
		return nil, err
	}
	c, ok := cls.(*nn.Classifier)
	if !ok {
		return nil, fmt.Errorf("core: %s rebuilt as %T, want *nn.Classifier", ck, cls)
	}
	if err := c.Net.LoadWeights(sc.Model.NN); err != nil {
		return nil, fmt.Errorf("core: %s/%d-D classifier: %w", sc.Arch, sc.Dims, err)
	}
	c.SetClasses(classes)
	return c, nil
}

// restoreRegressor rehydrates one regressor with its scalers.
func (f *Framework) restoreRegressor(rk RegressorKind, sr savedRegressor, regWidth int) (*TrainedRegressor, error) {
	tr := &TrainedRegressor{
		kind:   rk,
		f:      f,
		xScale: columnScaler{scale: sr.XScale},
		yScale: targetScaler{mean: sr.YMean, std: sr.YStd},
	}
	if rk.usesScaling() && len(sr.XScale) != regWidth {
		return nil, fmt.Errorf("core: %d-D regressor has %d-column scaler, schema width is %d", sr.Dims, len(sr.XScale), regWidth)
	}
	if rk == RegGB {
		if sr.Model.Kind != "gbreg" || sr.Model.GBReg == nil {
			return nil, fmt.Errorf("core: %d-D regressor holds %q state, want gbreg", sr.Dims, sr.Model.Kind)
		}
		g, err := tree.GBRegressorFromState(*sr.Model.GBReg)
		if err != nil {
			return nil, fmt.Errorf("core: %d-D regressor: %w", sr.Dims, err)
		}
		tr.model = g
		return tr, nil
	}
	if sr.Model.Kind != "nn" || sr.Model.NN == nil {
		return nil, fmt.Errorf("core: %d-D regressor holds %q state, want nn", sr.Dims, sr.Model.Kind)
	}
	model, err := f.newRegressor(rk, sr.Dims, regWidth, f.regressorSeed(sr.Dims))
	if err != nil {
		return nil, err
	}
	r, ok := model.(*nn.Regressor)
	if !ok {
		return nil, fmt.Errorf("core: %s rebuilt as %T, want *nn.Regressor", rk, model)
	}
	if err := r.Net.LoadWeights(sr.Model.NN); err != nil {
		return nil, fmt.Errorf("core: %d-D regressor: %w", sr.Dims, err)
	}
	tr.model = r
	return tr, nil
}

// LoadFramework rehydrates a checkpointed framework: envelope checks
// (magic, kind, version, checksum) happen first in the persist layer,
// then the dataset, grouping, config, feature schema, and every model
// shape are validated before any prediction can run. The returned
// framework predicts bitwise identically to the one that saved the
// checkpoint, without re-profiling or re-training.
func LoadFramework(r io.Reader) (*Framework, error) {
	var payload checkpointPayload
	if err := persist.Read(r, CheckpointKind, CheckpointVersion, &payload); err != nil {
		return nil, err
	}
	ds, err := profile.ReadJSON(bytes.NewReader(payload.Dataset))
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint dataset: %w", err)
	}
	if err := payload.Config.Validate(); err != nil {
		return nil, fmt.Errorf("core: checkpoint config: %w", err)
	}
	if err := payload.Grouping.Validate(); err != nil {
		return nil, fmt.Errorf("core: checkpoint grouping: %w", err)
	}
	ck, err := ParseClassifierKind(payload.ClassifierKind)
	if err != nil {
		return nil, err
	}
	rk, err := ParseRegressorKind(payload.RegressorKind)
	if err != nil {
		return nil, err
	}
	f := &Framework{Cfg: payload.Config, Dataset: ds, Grouping: payload.Grouping, Model: sim.New()}

	// The checkpoint's recorded feature widths must match this build's
	// encoders exactly.
	schema := f.featureSchema(ck, rk)
	if len(schema) != len(payload.Schema) {
		return nil, fmt.Errorf("core: checkpoint schema covers %d dims, this build has %d", len(payload.Schema), len(schema))
	}
	regWidth := make(map[int]int)
	for i, e := range schema {
		if payload.Schema[i] != e {
			return nil, fmt.Errorf("core: feature schema mismatch for %d-D: checkpoint %+v, this build %+v",
				e.Dims, payload.Schema[i], e)
		}
		regWidth[e.Dims] = e.RegWidth
	}

	tr := &Trained{
		ClassifierKind: ck,
		RegressorKind:  rk,
		Classifiers:    make(map[string]map[int]ml.Classifier),
		Regressors:     make(map[int]*TrainedRegressor),
	}
	for _, sc := range payload.Classifiers {
		if _, err := ds.ArchIndex(sc.Arch); err != nil {
			return nil, err
		}
		cls, err := f.restoreClassifier(ck, sc)
		if err != nil {
			return nil, err
		}
		if tr.Classifiers[sc.Arch] == nil {
			tr.Classifiers[sc.Arch] = make(map[int]ml.Classifier)
		}
		if _, dup := tr.Classifiers[sc.Arch][sc.Dims]; dup {
			return nil, fmt.Errorf("core: duplicate %d-D classifier for %s", sc.Dims, sc.Arch)
		}
		tr.Classifiers[sc.Arch][sc.Dims] = cls
	}
	for _, sr := range payload.Regressors {
		w, ok := regWidth[sr.Dims]
		if !ok {
			return nil, fmt.Errorf("core: checkpoint regressor for unknown dims %d", sr.Dims)
		}
		reg, err := f.restoreRegressor(rk, sr, w)
		if err != nil {
			return nil, err
		}
		if _, dup := tr.Regressors[sr.Dims]; dup {
			return nil, fmt.Errorf("core: duplicate %d-D regressor", sr.Dims)
		}
		tr.Regressors[sr.Dims] = reg
	}
	// Coverage: every (arch, dims) cell and every dims regressor present.
	for _, a := range ds.Archs {
		for _, d := range f.trainDims() {
			if tr.Classifiers[a.Name][d] == nil {
				return nil, fmt.Errorf("core: checkpoint missing %d-D classifier for %s", d, a.Name)
			}
		}
	}
	for _, d := range f.trainDims() {
		if tr.Regressors[d] == nil {
			return nil, fmt.Errorf("core: checkpoint missing %d-D regressor", d)
		}
	}
	f.Trained = tr
	return f, nil
}

// SaveFile checkpoints the framework to a file atomically: the envelope
// lands in a temporary sibling and renames into place.
func (f *Framework) SaveFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ckpt-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := f.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFrameworkFile rehydrates a checkpoint from disk.
func LoadFrameworkFile(path string) (*Framework, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return LoadFramework(fh)
}
