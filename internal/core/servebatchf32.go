package core

import (
	"context"
	"fmt"

	"stencilmart/internal/ml"
)

// ServePredictBatchF32 is ServePredictBatch on the float32 inference
// lane: the same admit -> dedup -> classify -> tune -> regress -> rent
// pipeline, but classification and regression score through the
// compiled f32 models with every row and output buffer carved from the
// caller's arena. The scoring path proper — row encoding into arena
// scratch plus the compiled batch predictions — performs zero heap
// allocations once the arena and compiled-layer scratch are warm; the
// per-item probability and time vectors are deliberate heap copies
// because outcomes outlive the arena's next Reset (the serving tier
// marshals them after this call returns). Tuning is lane-independent
// (simulator-bound, float64) and shared with the reference pipeline.
//
// The context carries the batch deadline with the same stage-boundary
// and mid-tune semantics as the f64 lane (see ServePredictBatch).
//
// A nil arena gets a private one, trading the reuse away for
// convenience. Like the f64 lane, the method is not safe for concurrent
// use on one framework; the serving layer serializes batch calls
// through a single lane per arena.
func (f *Framework) ServePredictBatchF32(ctx context.Context, reqs []ServeRequest, arena *ServeArena) []ServeOutcome {
	if ctx == nil {
		ctx = context.Background()
	}
	outs := make([]ServeOutcome, len(reqs))
	if len(reqs) == 0 {
		return outs
	}
	tr, err := f.requireTrained()
	if err != nil {
		for i := range outs {
			outs[i].Err = err
		}
		return outs
	}
	ct, err := f.CompiledF32()
	if err != nil {
		for i := range outs {
			outs[i].Err = err
		}
		return outs
	}
	if arena == nil {
		arena = NewServeArena()
	}
	arena.Reset()

	items := f.admitServeItems(tr, reqs, outs)

	// Duplicate collapse, identical to the f64 lane: dedup keys only on
	// (GPU, stencil) identity, which both lanes share.
	seen := make(map[string]*serveItem, len(items))
	var primaries []*serveItem
	var dups []*serveItem
	for _, it := range items {
		if it.out.Err != nil {
			continue
		}
		k := serveKey(it.req)
		if p, ok := seen[k]; ok {
			it.primary = p
			dups = append(dups, it)
			continue
		}
		seen[k] = it
		primaries = append(primaries, it)
	}

	if err := ctx.Err(); err != nil {
		failLive(primaries, err)
	} else {
		f.classifyServeItemsF32(ct, primaries, arena)
		f.tuneServeItems(ctx, primaries)
		if err := ctx.Err(); err != nil {
			failLive(primaries, err)
		} else {
			f.regressServeItemsF32(primaries, arena)
		}
	}

	for _, it := range live(primaries) {
		outs[it.idx] = ServeOutcome{Prediction: it.assemble(f)}
	}
	for _, it := range dups {
		outs[it.idx] = outs[it.primary.idx]
	}
	return outs
}

// classifyServeItemsF32 mirrors classifyServeItems over the compiled
// classifiers: items group per compiled (GPU, dims) model, rows encode
// in arena float64 scratch (the reference encoder bit for bit) and
// convert once into arena float32 rows, and the group scores through
// one PredictProbaBatchF32 call into an arena output block. The
// regressor resolves right after a group's probabilities land,
// preserving the f64 lane's error precedence. A panicking batched call
// falls back to scoring that group row by row.
func (f *Framework) classifyServeItemsF32(ct *CompiledTrained, items []*serveItem, arena *ServeArena) {
	type clsGroup struct {
		cls   ml.ClassifierF32
		items []*serveItem
	}
	groups := make(map[ml.ClassifierF32]*clsGroup)
	var order []ml.ClassifierF32
	for _, it := range live(items) {
		cls, err := ct.classifierFor(it.req.GPU, it.req.Stencil.Dims)
		if err != nil {
			it.fail(err)
			continue
		}
		g := groups[cls]
		if g == nil {
			g = &clsGroup{cls: cls}
			groups[cls] = g
			order = append(order, cls)
		}
		g.items = append(g.items, it)
	}
	for _, key := range order {
		g := groups[key]
		// One classifier serves one (GPU, dims) pair, so the group's row
		// width is uniform.
		width := classWidth(ct.ClassifierKind, g.items[0].req.Stencil.Dims)
		classes := g.cls.Classes()
		rows := arena.Rows(len(g.items))
		scratch := arena.F64(width)
		for i, it := range g.items {
			row := arena.F32(width)
			classRowInto(ct.ClassifierKind, it.req.Stencil, scratch)
			for j, v := range scratch {
				row[j] = float32(v)
			}
			rows[i] = row
		}
		out := arena.F32(len(g.items) * classes)
		if err := safeProbaBatchF32(g.cls, rows, out); err != nil {
			// Batched path poisoned: retry row by row so only the bad
			// request fails.
			for i, it := range g.items {
				rowOut := out[i*classes : (i+1)*classes]
				if rowErr := safeProbaBatchF32(g.cls, rows[i:i+1], rowOut); rowErr != nil {
					it.fail(rowErr)
					continue
				}
				it.class, it.proba = ml.ArgMaxF32(rowOut), probaCopy(rowOut)
			}
		} else {
			for i, it := range g.items {
				rowOut := out[i*classes : (i+1)*classes]
				it.class, it.proba = ml.ArgMaxF32(rowOut), probaCopy(rowOut)
			}
		}
		for _, it := range g.items {
			if it.out.Err != nil {
				continue
			}
			reg, ok := ct.regressors[it.req.Stencil.Dims]
			if !ok {
				it.fail(fmt.Errorf("core: no trained %d-D regressor", it.req.Stencil.Dims))
				continue
			}
			it.regF32 = reg
		}
	}
}

// probaCopy lifts an arena probability row to a float64 heap copy that
// survives the arena's next Reset.
func probaCopy(p []float32) []float64 {
	out := make([]float64, len(p))
	for k, v := range p {
		out[k] = float64(v)
	}
	return out
}

func safeProbaBatchF32(cls ml.ClassifierF32, rows [][]float32, out []float32) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("core: batched f32 classify panicked: %v", v)
		}
	}()
	cls.PredictProbaBatchF32(rows, out)
	return nil
}

// regressServeItemsF32 mirrors regressServeItems over the compiled
// regressors: each dims group's items contribute len(archs) arena rows
// (encoded and scaled in float64 scratch, converted once), the group
// scores through one PredictValueBatchF32 call, and each item's slice
// inverts to float64 seconds on the heap. A panicking batched call
// falls back to per-item scoring over the already-encoded rows.
func (f *Framework) regressServeItemsF32(items []*serveItem, arena *ServeArena) {
	archs := f.Dataset.Archs
	type regGroup struct {
		reg   *CompiledRegressorF32
		items []*serveItem
	}
	groups := make(map[*CompiledRegressorF32]*regGroup)
	var order []*CompiledRegressorF32
	for _, it := range live(items) {
		g := groups[it.regF32]
		if g == nil {
			g = &regGroup{reg: it.regF32}
			groups[it.regF32] = g
			order = append(order, it.regF32)
		}
		g.items = append(g.items, it)
	}
	for _, key := range order {
		g := groups[key]
		// One compiled regressor serves one dimensionality, so the
		// group's row width is uniform.
		width := regWidthFor(g.reg.kind, g.items[0].req.Stencil.Dims)
		rows := arena.Rows(len(g.items) * len(archs))
		scratch := arena.F64(width)
		for i, it := range g.items {
			for ai, arch := range archs {
				row := arena.F32(width)
				g.reg.encodeRowF32(it.req.Stencil, it.oc, it.tuned.Params, arch, scratch, row)
				rows[i*len(archs)+ai] = row
			}
		}
		out := arena.F32(len(rows))
		if err := safeValueBatchF32(g.reg.model, rows, out); err != nil {
			for i, it := range g.items {
				lo, hi := i*len(archs), (i+1)*len(archs)
				if rowErr := safeValueBatchF32(g.reg.model, rows[lo:hi], out[lo:hi]); rowErr != nil {
					it.fail(rowErr)
					continue
				}
				it.times = g.reg.invertSecondsF32(out[lo:hi])
			}
			continue
		}
		for i, it := range g.items {
			it.times = g.reg.invertSecondsF32(out[i*len(archs) : (i+1)*len(archs)])
		}
	}
}

func safeValueBatchF32(reg ml.RegressorF32, rows [][]float32, out []float32) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("core: batched f32 regression panicked: %v", v)
		}
	}()
	reg.PredictValueBatchF32(rows, out)
	return nil
}
