package core

import (
	"context"
	"fmt"
	"strings"

	"stencilmart/internal/gpu"
	"stencilmart/internal/ml"
	"stencilmart/internal/opt"
	"stencilmart/internal/par"
	"stencilmart/internal/stencil"
	"stencilmart/internal/tuner"
)

// ServeRequest is one item of a batched serving call: the same inputs
// ServePredict takes positionally.
type ServeRequest struct {
	GPU     string
	Stencil stencil.Stencil
}

// ServeOutcome is one request's result slot in a batch: a prediction or
// an error, never both.
type ServeOutcome struct {
	Prediction *ServePrediction
	Err        error
}

// ServePredictBatch runs the classify -> tune -> regress -> rent pipeline
// of ServePredict over many requests at once, returning one outcome per
// request, index-aligned. Coalescing pays off twice. First, identical
// requests inside a batch collapse to one pipeline pass — the whole
// serving path is a deterministic function of (GPU, stencil), so
// duplicates (concurrent clients asking about the same hot stencil, the
// common case the serving tier batches for) share a single classify +
// tune + regress and receive the same prediction. Second, the surviving
// distinct requests group their model calls: classification batches per
// (GPU, dims) classifier and cross-GPU regression batches per dims, so
// per-call model overhead is paid once per group, while tuning
// (simulator-bound, concurrency-safe) runs across items in parallel.
// Because every batched model path scores rows independently and
// duplicates are exact, the outcomes are bitwise identical to calling
// ServePredict once per request — the serving tier's differential tests
// hold this invariant.
//
// The context carries the batch's deadline (the earliest deadline among
// the coalesced requests): each pipeline stage checks it at entry, and
// tuning — the simulator-bound stage — observes it mid-flight, so an
// expired batch fails its remaining items with the context error instead
// of burning simulator time nobody will wait for. A nil or
// never-expiring context reproduces the unbounded behavior exactly.
//
// Like ServePredict, the method is not safe for concurrent use on one
// framework (nn models reuse forward scratch); the serving layer
// serializes batch calls through a single lane.
func (f *Framework) ServePredictBatch(ctx context.Context, reqs []ServeRequest) []ServeOutcome {
	if ctx == nil {
		ctx = context.Background()
	}
	outs := make([]ServeOutcome, len(reqs))
	if len(reqs) == 0 {
		return outs
	}
	tr, err := f.requireTrained()
	if err != nil {
		for i := range outs {
			outs[i].Err = err
		}
		return outs
	}

	items := f.admitServeItems(tr, reqs, outs)

	// Collapse duplicates: the first item with a given (GPU, stencil)
	// identity is the primary that rides the pipeline; the rest copy its
	// outcome at the end. Items that already failed admission keep their
	// own (identical) errors.
	seen := make(map[string]*serveItem, len(items))
	var primaries []*serveItem
	var dups []*serveItem
	for _, it := range items {
		if it.out.Err != nil {
			continue
		}
		k := serveKey(it.req)
		if p, ok := seen[k]; ok {
			it.primary = p
			dups = append(dups, it)
			continue
		}
		seen[k] = it
		primaries = append(primaries, it)
	}

	if err := ctx.Err(); err != nil {
		failLive(primaries, err)
	} else {
		f.classifyServeItems(tr, primaries)
		f.tuneServeItems(ctx, primaries)
		if err := ctx.Err(); err != nil {
			failLive(primaries, err)
		} else {
			f.regressServeItems(primaries)
		}
	}

	for _, it := range live(primaries) {
		outs[it.idx] = ServeOutcome{Prediction: it.assemble(f)}
	}
	for _, it := range dups {
		outs[it.idx] = outs[it.primary.idx]
	}
	return outs
}

// serveKey canonicalizes a request's full identity — target GPU plus the
// stencil's name, dimensionality, and exact point set — the inputs the
// serving pipeline is a deterministic function of.
func serveKey(r ServeRequest) string {
	var b strings.Builder
	b.WriteString(r.GPU)
	b.WriteByte(0)
	b.WriteString(r.Stencil.Name)
	fmt.Fprintf(&b, "\x00%d", r.Stencil.Dims)
	for _, p := range r.Stencil.Points {
		fmt.Fprintf(&b, "|%d,%d,%d", p.Dx, p.Dy, p.Dz)
	}
	return b.String()
}

// serveItem carries one request through the batch pipeline. A stage that
// fails an item records the error in its outcome slot and later stages
// skip it.
type serveItem struct {
	idx int
	req ServeRequest
	out *ServeOutcome

	// primary points at the first batchmate with the same (GPU, stencil)
	// identity; a non-nil primary means this item skips the pipeline and
	// copies the primary's outcome.
	primary *serveItem

	arch gpu.Arch
	cls  ml.Classifier
	reg  *TrainedRegressor
	// regF32 replaces reg when the item rides the f32 lane (servebatchf32.go).
	regF32 *CompiledRegressorF32
	class  int
	proba  []float64
	oc     opt.Opt
	tuned  tuner.Result
	// tunedDone marks that the tuning worker actually ran for this item;
	// after a context-cancelled tune pass it separates items with real
	// results from items the pool never dispatched.
	tunedDone bool
	times     []float64
}

func (it *serveItem) fail(err error) { it.out.Err = err }

// failLive records err on every item that has not already failed.
func failLive(items []*serveItem, err error) {
	for _, it := range live(items) {
		it.fail(err)
	}
}

// live filters the items that have not failed yet.
func live(items []*serveItem) []*serveItem {
	out := items[:0:0]
	for _, it := range items {
		if it.out.Err == nil {
			out = append(out, it)
		}
	}
	return out
}

// admitServeItems resolves per-request lookups (GPU, stencil validity,
// classifier, regressor) in ServePredict's exact check order, so a
// request failing several ways reports the same error it would serially.
func (f *Framework) admitServeItems(tr *Trained, reqs []ServeRequest, outs []ServeOutcome) []*serveItem {
	items := make([]*serveItem, 0, len(reqs))
	for i, req := range reqs {
		it := &serveItem{idx: i, req: req, out: &outs[i]}
		items = append(items, it)
		_, arch, err := f.ArchByName(req.GPU)
		if err != nil {
			it.fail(err)
			continue
		}
		if err := req.Stencil.Validate(); err != nil {
			it.fail(err)
			continue
		}
		cls, err := tr.classifierFor(req.GPU, req.Stencil.Dims)
		if err != nil {
			it.fail(err)
			continue
		}
		it.arch, it.cls = arch, cls
	}
	return items
}

// classifyServeItems scores each (GPU, dims) group's stencils through one
// batched classifier call. The regressor is resolved right after a
// group's probabilities land, preserving ServePredict's error precedence
// (classifier errors before regressor errors). A panicking batched call
// falls back to scoring that group row by row, isolating a poisoned row
// to its own outcome.
func (f *Framework) classifyServeItems(tr *Trained, items []*serveItem) {
	type clsGroup struct {
		cls   ml.Classifier
		items []*serveItem
	}
	groups := make(map[ml.Classifier]*clsGroup)
	var order []ml.Classifier
	for _, it := range live(items) {
		g := groups[it.cls]
		if g == nil {
			g = &clsGroup{cls: it.cls}
			groups[it.cls] = g
			order = append(order, it.cls)
		}
		g.items = append(g.items, it)
	}
	for _, key := range order {
		g := groups[key]
		rows := make([][]float64, len(g.items))
		for i, it := range g.items {
			rows[i] = classEncode(tr.ClassifierKind, it.req.Stencil)
		}
		probas, err := safeProbaBatch(g.cls, rows)
		if err != nil {
			// Batched path poisoned: retry row by row so only the bad
			// request fails.
			for i, it := range g.items {
				proba, rowErr := safeProbaRow(g.cls, rows[i])
				if rowErr != nil {
					it.fail(rowErr)
					continue
				}
				it.class, it.proba = ml.ArgMax(proba), proba
			}
		} else {
			for i, it := range g.items {
				it.class, it.proba = ml.ArgMax(probas[i]), probas[i]
			}
		}
		for _, it := range g.items {
			if it.out.Err != nil {
				continue
			}
			reg, ok := f.Trained.Regressors[it.req.Stencil.Dims]
			if !ok {
				it.fail(fmt.Errorf("core: no trained %d-D regressor", it.req.Stencil.Dims))
				continue
			}
			it.reg = reg
		}
	}
}

func safeProbaBatch(cls ml.Classifier, rows [][]float64) (probas [][]float64, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("core: batched classify panicked: %v", v)
		}
	}()
	probas = ml.PredictProbaAll(cls, rows)
	if len(probas) != len(rows) {
		return nil, fmt.Errorf("core: batched classify returned %d rows for %d", len(probas), len(rows))
	}
	return probas, nil
}

func safeProbaRow(cls ml.Classifier, row []float64) (proba []float64, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("core: classify panicked: %v", v)
		}
	}()
	return cls.PredictProba(row), nil
}

// tuneServeItems tunes every live item's representative OC concurrently.
// The simulator layer is concurrency-safe (memoized behind a lock) and
// each item's tuning seed derives from its request, so parallel tuning
// returns exactly what serial tuning would. Errors land in item slots;
// the worker fn never fails, so with a live context ForEach runs every
// item. A context that expires mid-pass stops dispatch (in-flight items
// finish and keep their results); items the pool never reached fail with
// the context error.
func (f *Framework) tuneServeItems(ctx context.Context, items []*serveItem) {
	todo := live(items)
	if len(todo) == 0 {
		return
	}
	_ = par.ForEach(ctx, len(todo), 0, func(i int) error {
		it := todo[i]
		it.tunedDone = true
		defer func() {
			if v := recover(); v != nil {
				it.fail(fmt.Errorf("core: tuning panicked: %v", v))
			}
		}()
		oc, res, err := f.tuneForClass(it.req.GPU, it.req.Stencil, it.arch, it.proba)
		if err != nil {
			it.fail(err)
			return nil
		}
		it.oc, it.tuned = oc, res
		return nil
	})
	if err := ctx.Err(); err != nil {
		for _, it := range todo {
			if it.out.Err == nil && !it.tunedDone {
				it.fail(err)
			}
		}
	}
}

// regressServeItems predicts cross-GPU times with one batched regressor
// call per dims group: each item contributes len(archs) rows, the group
// scores in a single pass, and the flat output is sliced back per item.
// Row independence of the batched paths makes the slices identical to
// per-item PredictStencilSeconds calls; a panicking batched call falls
// back to exactly those per-item calls.
func (f *Framework) regressServeItems(items []*serveItem) {
	archs := f.Dataset.Archs
	type regGroup struct {
		reg   *TrainedRegressor
		items []*serveItem
	}
	groups := make(map[*TrainedRegressor]*regGroup)
	var order []*TrainedRegressor
	for _, it := range live(items) {
		g := groups[it.reg]
		if g == nil {
			g = &regGroup{reg: it.reg}
			groups[it.reg] = g
			order = append(order, it.reg)
		}
		g.items = append(g.items, it)
	}
	for _, key := range order {
		g := groups[key]
		rows := make([][]float64, 0, len(g.items)*len(archs))
		for _, it := range g.items {
			rows = append(rows, g.reg.stencilRows(it.req.Stencil, it.oc, it.tuned.Params, archs)...)
		}
		vals, err := safeValueBatch(g.reg, rows)
		if err != nil {
			for _, it := range g.items {
				times, rowErr := safeStencilSeconds(g.reg, it, archs)
				if rowErr != nil {
					it.fail(rowErr)
					continue
				}
				it.times = times
			}
			continue
		}
		g.reg.invertSeconds(vals)
		for i, it := range g.items {
			it.times = vals[i*len(archs) : (i+1)*len(archs) : (i+1)*len(archs)]
		}
	}
}

func safeValueBatch(reg *TrainedRegressor, rows [][]float64) (vals []float64, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("core: batched regression panicked: %v", v)
		}
	}()
	vals = ml.PredictValueAll(reg.model, rows)
	if len(vals) != len(rows) {
		return nil, fmt.Errorf("core: batched regression returned %d values for %d rows", len(vals), len(rows))
	}
	return vals, nil
}

func safeStencilSeconds(reg *TrainedRegressor, it *serveItem, archs []gpu.Arch) (times []float64, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("core: regression panicked: %v", v)
		}
	}()
	return reg.PredictStencilSeconds(it.req.Stencil, it.oc, it.tuned.Params, archs), nil
}

// assemble builds the item's ServePrediction with the exact field set
// ServePredict returns.
func (it *serveItem) assemble(f *Framework) *ServePrediction {
	archs := f.Dataset.Archs
	names := make([]string, len(archs))
	for i, a := range archs {
		names[i] = a.Name
	}
	return &ServePrediction{
		Stencil:          it.req.Stencil.Name,
		GPU:              it.req.GPU,
		Class:            it.class,
		Proba:            it.proba,
		OC:               it.oc.String(),
		Params:           it.tuned.Params,
		TunedSeconds:     it.tuned.Time,
		ArchNames:        names,
		PredictedSeconds: it.times,
		Advice:           rentAdvice(it.req.GPU, archs, it.times),
	}
}
