package fault

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/sim"
	"stencilmart/internal/stencil"
)

// stub is a Runner double returning a fixed clean time.
type stub struct {
	time  float64
	calls int
}

func (s *stub) Run(sim.Workload, opt.Opt, opt.Params, gpu.Arch) (sim.Result, error) {
	s.calls++
	return sim.Result{Time: s.time}, nil
}

func testCell(t *testing.T, i int) (sim.Workload, opt.Opt, opt.Params, gpu.Arch) {
	t.Helper()
	s, err := stencil.ByName("star2d1r")
	if err != nil {
		t.Fatalf("stencil: %v", err)
	}
	arch := gpu.Catalog()[0]
	w := sim.DefaultWorkload(s)
	// Vary the setting to vary the site identity.
	p := opt.Params{BlockX: 8 + i, BlockY: 8}
	return w, opt.Opt(0), p, arch
}

// run one attempt, converting an injected panic into a sentinel error.
func attempt(in *Injector, w sim.Workload, oc opt.Opt, p opt.Params, a gpu.Arch) (r sim.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("panic: %v", v)
		}
	}()
	return in.Run(w, oc, p, a)
}

// TestDeterministicSequence is the injector's core contract: the fault
// outcome of (site, attempt) is identical across injector instances.
func TestDeterministicSequence(t *testing.T) {
	cfg := Config{Seed: 42, PanicRate: 0.1, TransientRate: 0.3, NaNRate: 0.1, InfRate: 0.05, SpikeRate: 0.2, MaxFaultsPerSite: 100}
	trace := func() []string {
		in := Wrap(&stub{time: 2.0}, cfg)
		var out []string
		for site := 0; site < 16; site++ {
			w, oc, p, a := testCell(t, site)
			for k := 0; k < 6; k++ {
				r, err := attempt(in, w, oc, p, a)
				out = append(out, fmt.Sprintf("%d/%d %v %v", site, k, r.Time, err))
			}
		}
		return out
	}
	a, b := trace(), trace()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d diverged:\n  %s\n  %s", i, a[i], b[i])
		}
	}
}

// TestFaultBudget caps injection per site: after MaxFaultsPerSite faults,
// every further attempt at the site is clean.
func TestFaultBudget(t *testing.T) {
	cfg := Config{Seed: 7, TransientRate: 0.9, MaxFaultsPerSite: 2}
	in := Wrap(&stub{time: 3.5}, cfg)
	w, oc, p, a := testCell(t, 0)
	faults := 0
	for k := 0; k < 50; k++ {
		r, err := attempt(in, w, oc, p, a)
		if err != nil {
			faults++
			continue
		}
		if r.Time != 3.5 {
			t.Fatalf("attempt %d: clean time corrupted to %v", k, r.Time)
		}
	}
	if faults != 2 {
		t.Fatalf("injected %d faults at one site, budget is 2", faults)
	}
	if got := in.Stats().Transients; got != 2 {
		t.Fatalf("stats report %d transients, want 2", got)
	}
}

// TestFaultClasses drives enough attempts that every configured class
// fires, and checks each corrupts the measurement the advertised way.
func TestFaultClasses(t *testing.T) {
	cfg := Config{Seed: 3, PanicRate: 0.05, TransientRate: 0.1, NaNRate: 0.1, InfRate: 0.1, SpikeRate: 0.1,
		SpikeFactor: 10, MaxFaultsPerSite: 1}
	in := Wrap(&stub{time: 1.0}, cfg)
	var sawNaN, sawInf, sawSpike, sawPanic, sawTransient bool
	for site := 0; site < 400; site++ {
		w, oc, p, a := testCell(t, site)
		r, err := attempt(in, w, oc, p, a)
		switch {
		case err != nil && IsTransient(err):
			sawTransient = true
		case err != nil:
			sawPanic = true
		case math.IsNaN(r.Time):
			sawNaN = true
		case math.IsInf(r.Time, 1):
			sawInf = true
		case r.Time == 10.0:
			sawSpike = true
		case r.Time != 1.0:
			t.Fatalf("site %d: unexpected time %v", site, r.Time)
		}
	}
	if !sawPanic || !sawTransient || !sawNaN || !sawInf || !sawSpike {
		t.Fatalf("not every class fired: panic=%v transient=%v nan=%v inf=%v spike=%v",
			sawPanic, sawTransient, sawNaN, sawInf, sawSpike)
	}
	st := in.Stats()
	if st.Total() == 0 || st.Attempts != 400 || st.Sites != 400 {
		t.Fatalf("stats off: %+v", st)
	}
}

// TestPermanentErrorsPassThrough keeps real simulator outcomes out of the
// chaos: crash errors from the wrapped runner are returned untouched.
func TestPermanentErrorsPassThrough(t *testing.T) {
	in := Wrap(failRunner{}, Config{Seed: 1})
	w, oc, p, a := testCell(t, 0)
	_, err := in.Run(w, oc, p, a)
	if !errors.Is(err, sim.ErrCrash) {
		t.Fatalf("got %v, want ErrCrash", err)
	}
	if IsTransient(err) {
		t.Fatal("crash classified transient")
	}
}

type failRunner struct{}

func (failRunner) Run(sim.Workload, opt.Opt, opt.Params, gpu.Arch) (sim.Result, error) {
	return sim.Result{}, sim.ErrCrash
}

// TestIsTransientUnwraps classifies wrapped transient errors.
func TestIsTransientUnwraps(t *testing.T) {
	err := fmt.Errorf("cell 3: %w", &TransientError{Site: 1, Attempt: 0})
	if !IsTransient(err) {
		t.Fatal("wrapped transient not classified")
	}
	if IsTransient(errors.New("plain")) {
		t.Fatal("plain error classified transient")
	}
	if IsTransient(nil) {
		t.Fatal("nil classified transient")
	}
}

// TestConfigValidate rejects out-of-range and over-unity rates.
func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{TransientRate: -0.1},
		{TransientRate: 1.0},
		{PanicRate: 0.5, TransientRate: 0.6},
		{NaNRate: math.NaN()},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d validated: %+v", i, c)
		}
	}
	if err := DefaultConfig(1).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}
