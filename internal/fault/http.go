package fault

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// HTTPConfig sets the serving-tier chaos rates. The middleware faults are
// drawn per (seed, site, attempt) exactly like the sim injector — a site
// is the hash of one request's method, path, and body, so a client
// retrying the same request walks a deterministic attempt sequence — and
// a per-site budget guarantees bounded retries always reach a clean
// response. The scoring-path faults are a separate deterministic burst:
// per scoring site (a "lane/version" string), calls ScorePanicAfter
// through ScorePanicAfter+ScorePanicBurst-1 panic, which is exactly the
// shape that drills a consecutive-failure circuit breaker.
type HTTPConfig struct {
	// Seed drives every middleware injection decision.
	Seed int64 `json:"seed"`
	// LatencyRate is the probability an attempt is delayed by
	// LatencySpike before being served normally.
	LatencyRate float64 `json:"latency_rate"`
	// LatencySpike is the injected delay; <= 0 selects
	// DefaultLatencySpike.
	LatencySpike time.Duration `json:"latency_spike,omitempty"`
	// ResetRate is the probability the connection is reset before any
	// response bytes are written (the client sees a closed connection).
	ResetRate float64 `json:"reset_rate"`
	// TruncateRate is the probability the response body is cut off after
	// TruncateBytes and the connection aborted mid-stream.
	TruncateRate float64 `json:"truncate_rate"`
	// TruncateBytes is how much of the body a truncated response keeps;
	// <= 0 selects DefaultTruncateBytes.
	TruncateBytes int `json:"truncate_bytes,omitempty"`
	// MaxFaultsPerSite caps middleware faults per request site; <= 0
	// selects DefaultMaxHTTPFaultsPerSite.
	MaxFaultsPerSite int `json:"max_faults_per_site,omitempty"`
	// ScorePanicAfter and ScorePanicBurst shape the scoring-path drill:
	// per scoring site, the burst of ScorePanicBurst consecutive calls
	// starting at call number ScorePanicAfter (0-based) panics. A zero
	// burst disables scoring faults.
	ScorePanicAfter int `json:"score_panic_after,omitempty"`
	ScorePanicBurst int `json:"score_panic_burst,omitempty"`
	// ScorePanicSite, when non-empty, restricts the burst to one scoring
	// site ("lane/version"), so a drill tripping the f32 lane leaves its
	// f64 fallback path clean. Empty targets every site independently.
	ScorePanicSite string `json:"score_panic_site,omitempty"`
}

// DefaultLatencySpike is the injected latency delay.
const DefaultLatencySpike = 20 * time.Millisecond

// DefaultTruncateBytes keeps less than any /predict response body, so a
// truncated response is always detectable as invalid JSON or a read
// error.
const DefaultTruncateBytes = 20

// DefaultMaxHTTPFaultsPerSite keeps every request site recoverable
// within three attempts.
const DefaultMaxHTTPFaultsPerSite = 2

// DefaultHTTPConfig is the serve-chaos drill: ≥10% connection-level
// faults plus a scoring-panic burst sized to trip a default-threshold
// breaker (DefaultBreakerThreshold consecutive failures) and then let a
// half-open probe observe recovery.
func DefaultHTTPConfig(seed int64) HTTPConfig {
	return HTTPConfig{
		Seed:            seed,
		LatencyRate:     0.05,
		ResetRate:       0.04,
		TruncateRate:    0.04,
		ScorePanicAfter: 4,
		ScorePanicBurst: 3,
		// Target the f32 lane of the first published version: the
		// standard chaos drill serves one checkpoint with -lane f32, so
		// the sick lane has the same version's f64 path as a clean
		// fallback.
		ScorePanicSite: "f32/v1",
	}
}

func (c HTTPConfig) latencySpike() time.Duration {
	if c.LatencySpike > 0 {
		return c.LatencySpike
	}
	return DefaultLatencySpike
}

func (c HTTPConfig) truncateBytes() int {
	if c.TruncateBytes > 0 {
		return c.TruncateBytes
	}
	return DefaultTruncateBytes
}

func (c HTTPConfig) budget() int {
	if c.MaxFaultsPerSite > 0 {
		return c.MaxFaultsPerSite
	}
	return DefaultMaxHTTPFaultsPerSite
}

// Validate checks the rates form a proper sub-distribution and the burst
// shape is sane.
func (c HTTPConfig) Validate() error {
	total := 0.0
	for _, r := range []float64{c.LatencyRate, c.ResetRate, c.TruncateRate} {
		if r < 0 || r >= 1 || math.IsNaN(r) {
			return fmt.Errorf("fault: http rate %v outside [0, 1)", r)
		}
		total += r
	}
	if total >= 1 {
		return fmt.Errorf("fault: http rates sum to %v >= 1", total)
	}
	if c.ScorePanicAfter < 0 || c.ScorePanicBurst < 0 {
		return fmt.Errorf("fault: negative score-panic shape (%d, %d)", c.ScorePanicAfter, c.ScorePanicBurst)
	}
	return nil
}

// HTTPStats counts injected serving faults, read with HTTPInjector.Stats.
type HTTPStats struct {
	Requests    uint64 `json:"requests"`
	Sites       uint64 `json:"sites"`
	Latencies   uint64 `json:"latencies"`
	Resets      uint64 `json:"resets"`
	Truncates   uint64 `json:"truncates"`
	ScorePanics uint64 `json:"score_panics"`
}

// Total returns the number of injected faults of every class.
func (s HTTPStats) Total() uint64 {
	return s.Latencies + s.Resets + s.Truncates + s.ScorePanics
}

// HTTPInjector is the serving tier's chaos source: an HTTP middleware
// injecting connection-level faults, plus the scoring-path panic hook the
// serve package consults (serve.ScorePanicker). Safe for concurrent use;
// determinism holds per site because a client retries one request
// sequentially.
type HTTPInjector struct {
	cfg HTTPConfig

	mu         sync.Mutex
	sites      map[uint64]*siteState
	scoreSites map[string]int

	requests, latencies, resets, truncates, scorePanics atomic.Uint64
}

// NewHTTPInjector builds an injector, panicking on an invalid config —
// like the sim injector, it only exists in tests and chaos drills where a
// bad configuration is a programming error.
func NewHTTPInjector(cfg HTTPConfig) *HTTPInjector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &HTTPInjector{
		cfg:        cfg,
		sites:      make(map[uint64]*siteState),
		scoreSites: make(map[string]int),
	}
}

// Stats snapshots the injection counters.
func (in *HTTPInjector) Stats() HTTPStats {
	in.mu.Lock()
	sites := uint64(len(in.sites))
	in.mu.Unlock()
	return HTTPStats{
		Requests:    in.requests.Load(),
		Sites:       sites,
		Latencies:   in.latencies.Load(),
		Resets:      in.resets.Load(),
		Truncates:   in.truncates.Load(),
		ScorePanics: in.scorePanics.Load(),
	}
}

// httpOutcome is one request attempt's injected fault class.
type httpOutcome int

const (
	httpOK httpOutcome = iota
	injectLatency
	injectReset
	injectTruncate
)

// siteOf canonicalizes a request's identity — method, path, and body —
// into a site ID. The body is consumed and restored, so the wrapped
// handler reads it untouched.
func (in *HTTPInjector) siteOf(r *http.Request) uint64 {
	h := fnv.New64a()
	io.WriteString(h, r.Method)
	h.Write([]byte{0})
	io.WriteString(h, r.URL.Path)
	h.Write([]byte{0})
	if r.Body != nil && r.Body != http.NoBody {
		body, _ := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		r.Body.Close()
		h.Write(body)
		r.Body = io.NopCloser(bytes.NewReader(body))
	}
	return h.Sum64()
}

// beginHTTP records one attempt at the site and returns the attempt
// number and whether the budget still has room; spendHTTP consumes one
// unit of it.
func (in *HTTPInjector) beginHTTP(site uint64) (attempt int, budgetLeft bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.sites[site]
	if st == nil {
		st = &siteState{}
		in.sites[site] = st
	}
	attempt = st.attempt
	st.attempt++
	return attempt, st.faults < in.cfg.budget()
}

func (in *HTTPInjector) spendHTTP(site uint64) {
	in.mu.Lock()
	in.sites[site].faults++
	in.mu.Unlock()
}

// decideHTTP maps (seed, site, attempt) to a fault class, drawing and
// partitioning exactly like the sim injector.
func (in *HTTPInjector) decideHTTP(site uint64, attempt int) httpOutcome {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(in.cfg.Seed))
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], site)
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(attempt))
	h.Write(b[:])
	u := float64(h.Sum64()>>11) / (1 << 53)

	c := in.cfg
	for _, class := range []struct {
		rate float64
		out  httpOutcome
	}{
		{c.LatencyRate, injectLatency},
		{c.ResetRate, injectReset},
		{c.TruncateRate, injectTruncate},
	} {
		if u < class.rate {
			return class.out
		}
		u -= class.rate
	}
	return httpOK
}

// Middleware wraps next with connection-level chaos. It must sit outside
// any panic-recovery layer: resets and truncations abort the connection
// by panicking with http.ErrAbortHandler, which net/http treats as a
// deliberate quiet abort — converting it to a 500 would turn "connection
// died" into "server answered", which is not the failure being drilled.
func (in *HTTPInjector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		in.requests.Add(1)
		site := in.siteOf(r)
		attempt, budgetLeft := in.beginHTTP(site)
		out := httpOK
		if budgetLeft {
			out = in.decideHTTP(site, attempt)
		}
		switch out {
		case injectLatency:
			in.spendHTTP(site)
			in.latencies.Add(1)
			time.Sleep(in.cfg.latencySpike())
			next.ServeHTTP(w, r)
		case injectReset:
			in.spendHTTP(site)
			in.resets.Add(1)
			panic(http.ErrAbortHandler)
		case injectTruncate:
			in.spendHTTP(site)
			in.truncates.Add(1)
			tw := &truncatingWriter{ResponseWriter: w, keep: in.cfg.truncateBytes()}
			next.ServeHTTP(tw, r)
			tw.flush()
			panic(http.ErrAbortHandler)
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// ScorePanic implements the serve package's scoring-fault hook: per
// site, the configured burst of consecutive calls answers true (panic),
// everything else false. The call ordinal — not the wall clock — indexes
// the burst, so breaker trips and recoveries replay identically across
// runs and GOMAXPROCS settings.
func (in *HTTPInjector) ScorePanic(site string) bool {
	if in.cfg.ScorePanicBurst <= 0 {
		return false
	}
	if in.cfg.ScorePanicSite != "" && site != in.cfg.ScorePanicSite {
		return false
	}
	in.mu.Lock()
	n := in.scoreSites[site]
	in.scoreSites[site] = n + 1
	in.mu.Unlock()
	if n >= in.cfg.ScorePanicAfter && n < in.cfg.ScorePanicAfter+in.cfg.ScorePanicBurst {
		in.scorePanics.Add(1)
		return true
	}
	return false
}

// truncatingWriter forwards the status and headers but only the first
// keep bytes of the body; the rest is swallowed. The middleware aborts
// the connection after the handler returns, so the client observes a
// well-formed response head with a body that dies mid-stream.
type truncatingWriter struct {
	http.ResponseWriter
	keep    int
	written int
}

func (t *truncatingWriter) Write(p []byte) (int, error) {
	n := len(p)
	if room := t.keep - t.written; room < n {
		if room > 0 {
			t.ResponseWriter.Write(p[:room])
			t.written = t.keep
		}
		// Report full writes so the wrapped handler never sees an error.
		return n, nil
	}
	t.written += n
	return t.ResponseWriter.Write(p)
}

// flush pushes the truncated prefix onto the wire before the abort, so
// the client reliably observes the cut body rather than an empty reply.
func (t *truncatingWriter) flush() {
	if f, ok := t.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
