// Package fault is the chaos source of the reproduction: a deterministic,
// seeded injector that wraps the sim measurement path and corrupts it the
// way real profiling campaigns get corrupted — transient driver errors,
// latency spikes, non-finite samples, and outright crashes (panics).
//
// Determinism is the design constraint: whether a given measurement
// attempt faults is a pure function of (injector seed, measurement site,
// attempt number), where a site is the canonical sim.RunKey of the cell.
// Worker scheduling therefore cannot change which attempts fault, and a
// profiling run under injection that retries faulted attempts produces a
// dataset bitwise-identical to a fault-free run — the property the
// differential chaos suite enforces.
//
// A per-site fault budget (Config.MaxFaultsPerSite) bounds how many
// attempts at one site may fault, so bounded retries and median-of-k
// trials are guaranteed to recover the clean measurement.
package fault

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/sim"
)

// Config sets the per-attempt fault rates. Each rate is a probability in
// [0, 1); on one attempt at most one fault fires, drawn by partitioning
// the unit interval in the order panic, transient, NaN, Inf, spike.
type Config struct {
	// Seed drives every injection decision.
	Seed int64 `json:"seed"`
	// PanicRate is the probability an attempt panics mid-measurement.
	PanicRate float64 `json:"panic_rate"`
	// TransientRate is the probability an attempt fails with a
	// *TransientError (the "driver hiccup" class a retry cures).
	TransientRate float64 `json:"transient_rate"`
	// NaNRate and InfRate are the probabilities a successful measurement
	// reports a non-finite time.
	NaNRate float64 `json:"nan_rate"`
	InfRate float64 `json:"inf_rate"`
	// SpikeRate is the probability a successful measurement's time is
	// multiplied by SpikeFactor (a timing outlier).
	SpikeRate float64 `json:"spike_rate"`
	// SpikeFactor scales spiked times; <= 1 selects DefaultSpikeFactor.
	SpikeFactor float64 `json:"spike_factor,omitempty"`
	// MaxFaultsPerSite caps the total faults injected at one measurement
	// site, guaranteeing retries eventually observe the clean value;
	// <= 0 selects DefaultMaxFaultsPerSite.
	MaxFaultsPerSite int `json:"max_faults_per_site,omitempty"`
}

// DefaultSpikeFactor is the timing-outlier multiplier.
const DefaultSpikeFactor = 25.0

// DefaultMaxFaultsPerSite keeps every site recoverable by a single retry
// or a median over 3 trials.
const DefaultMaxFaultsPerSite = 1

// DefaultConfig returns the chaos-smoke configuration: a ≥10% transient
// error rate plus occasional panics, non-finite samples, and spikes —
// every fault class the tolerant profiler must absorb.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		PanicRate:     0.02,
		TransientRate: 0.15,
		NaNRate:       0.04,
		InfRate:       0.02,
		SpikeRate:     0.05,
	}
}

func (c Config) spikeFactor() float64 {
	if c.SpikeFactor > 1 {
		return c.SpikeFactor
	}
	return DefaultSpikeFactor
}

func (c Config) budget() int {
	if c.MaxFaultsPerSite > 0 {
		return c.MaxFaultsPerSite
	}
	return DefaultMaxFaultsPerSite
}

// Validate checks the rates sum to a proper sub-distribution.
func (c Config) Validate() error {
	total := 0.0
	for _, r := range []float64{c.PanicRate, c.TransientRate, c.NaNRate, c.InfRate, c.SpikeRate} {
		if r < 0 || r >= 1 || math.IsNaN(r) {
			return fmt.Errorf("fault: rate %v outside [0, 1)", r)
		}
		total += r
	}
	if total >= 1 {
		return fmt.Errorf("fault: rates sum to %v >= 1", total)
	}
	return nil
}

// TransientError is the injected "driver hiccup": an error a retry is
// expected to cure. It implements the Transient() classification the
// profiler's retry layer keys on.
type TransientError struct {
	Site    uint64
	Attempt int
}

// Error implements error.
func (e *TransientError) Error() string {
	return fmt.Sprintf("fault: injected transient error (site %x, attempt %d)", e.Site, e.Attempt)
}

// Transient marks the error as retryable.
func (e *TransientError) Transient() bool { return true }

// IsTransient reports whether err self-classifies as retryable via a
// `Transient() bool` method anywhere in its chain.
func IsTransient(err error) bool {
	for err != nil {
		if t, ok := err.(interface{ Transient() bool }); ok && t.Transient() {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// InjectedPanic is the value the injector panics with; the profiler's
// recovery layer surfaces it inside a panic-classifying error.
type InjectedPanic struct {
	Site    uint64
	Attempt int
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("fault: injected panic (site %x, attempt %d)", p.Site, p.Attempt)
}

// Stats counts injected faults and attempts, read with Injector.Stats.
type Stats struct {
	Attempts   uint64 `json:"attempts"`
	Sites      uint64 `json:"sites"`
	Transients uint64 `json:"transients"`
	Panics     uint64 `json:"panics"`
	NaNs       uint64 `json:"nans"`
	Infs       uint64 `json:"infs"`
	Spikes     uint64 `json:"spikes"`
}

// Total returns the number of injected faults of every class.
func (s Stats) Total() uint64 {
	return s.Transients + s.Panics + s.NaNs + s.Infs + s.Spikes
}

// Injector wraps a sim.Runner with deterministic fault injection. It is
// safe for concurrent use; per-site attempt sequences stay deterministic
// because one site is only ever measured sequentially (retries and trials
// of a cell run on the cell's own worker).
type Injector struct {
	cfg  Config
	next sim.Runner

	mu    sync.Mutex
	sites map[uint64]*siteState

	attempts, transients, panics, nans, infs, spikes atomic.Uint64
}

type siteState struct {
	attempt int // attempts observed so far
	faults  int // faults already injected at this site
}

// Wrap returns an injector around next. It panics on an invalid config —
// the injector only exists in tests and chaos smoke runs, where a bad
// configuration is a programming error.
func Wrap(next sim.Runner, cfg Config) *Injector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if next == nil {
		panic("fault: nil runner")
	}
	return &Injector{cfg: cfg, next: next, sites: make(map[uint64]*siteState)}
}

// Stats snapshots the injection counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	sites := uint64(len(in.sites))
	in.mu.Unlock()
	return Stats{
		Attempts:   in.attempts.Load(),
		Sites:      sites,
		Transients: in.transients.Load(),
		Panics:     in.panics.Load(),
		NaNs:       in.nans.Load(),
		Infs:       in.infs.Load(),
		Spikes:     in.spikes.Load(),
	}
}

// outcome is one attempt's injected fault class.
type outcome int

const (
	ok outcome = iota
	injectPanic
	injectTransient
	injectNaN
	injectInf
	injectSpike
)

// begin records one attempt at the site and returns the attempt number
// and whether the site's fault budget still has room.
func (in *Injector) begin(site uint64) (attempt int, budgetLeft bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.sites[site]
	if st == nil {
		st = &siteState{}
		in.sites[site] = st
	}
	attempt = st.attempt
	st.attempt++
	return attempt, st.faults < in.cfg.budget()
}

// spend consumes one unit of the site's fault budget.
func (in *Injector) spend(site uint64) {
	in.mu.Lock()
	in.sites[site].faults++
	in.mu.Unlock()
}

// decide maps (seed, site, attempt) to a fault class by hashing into a
// uniform draw on [0, 1) and partitioning by the configured rates.
func (in *Injector) decide(site uint64, attempt int) outcome {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(in.cfg.Seed))
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], site)
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(attempt))
	h.Write(b[:])
	// 53 mantissa bits of the hash give a uniform draw in [0, 1).
	u := float64(h.Sum64()>>11) / (1 << 53)

	c := in.cfg
	for _, class := range []struct {
		rate float64
		out  outcome
	}{
		{c.PanicRate, injectPanic},
		{c.TransientRate, injectTransient},
		{c.NaNRate, injectNaN},
		{c.InfRate, injectInf},
		{c.SpikeRate, injectSpike},
	} {
		if u < class.rate {
			return class.out
		}
		u -= class.rate
	}
	return ok
}

// siteID hashes the canonical run key of one measurement cell.
func siteID(w sim.Workload, oc opt.Opt, p opt.Params, arch gpu.Arch) uint64 {
	h := fnv.New64a()
	h.Write([]byte(sim.RunKey(w, oc, p, arch)))
	return h.Sum64()
}

// Run implements sim.Runner: it may fault instead of (or on top of) the
// wrapped measurement. Permanent simulator errors (crashes, invalid
// settings) pass through untouched — they are real profiling outcomes,
// not faults.
func (in *Injector) Run(w sim.Workload, oc opt.Opt, p opt.Params, arch gpu.Arch) (sim.Result, error) {
	in.attempts.Add(1)
	site := siteID(w, oc, p, arch)
	attempt, budgetLeft := in.begin(site)
	out := ok
	if budgetLeft {
		out = in.decide(site, attempt)
	}

	switch out {
	case injectPanic:
		in.spend(site)
		in.panics.Add(1)
		panic(InjectedPanic{Site: site, Attempt: attempt})
	case injectTransient:
		in.spend(site)
		in.transients.Add(1)
		return sim.Result{}, &TransientError{Site: site, Attempt: attempt}
	}

	r, err := in.next.Run(w, oc, p, arch)
	if err != nil {
		return r, err
	}
	switch out {
	case injectNaN:
		in.spend(site)
		in.nans.Add(1)
		r.Time = math.NaN()
	case injectInf:
		in.spend(site)
		in.infs.Add(1)
		r.Time = math.Inf(1)
	case injectSpike:
		in.spend(site)
		in.spikes.Add(1)
		r.Time *= in.cfg.spikeFactor()
	}
	return r, nil
}

var _ sim.Runner = (*Injector)(nil)
