package fault

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHTTPDecideDeterminism: the fault class of (site, attempt) is a pure
// function of the seed — two injectors with the same config agree on
// every draw, and a different seed disagrees somewhere.
func TestHTTPDecideDeterminism(t *testing.T) {
	cfg := HTTPConfig{Seed: 42, LatencyRate: 0.1, ResetRate: 0.1, TruncateRate: 0.1}
	a, b := NewHTTPInjector(cfg), NewHTTPInjector(cfg)
	cfg.Seed = 43
	c := NewHTTPInjector(cfg)
	differs := false
	for site := uint64(0); site < 10; site++ {
		for attempt := 0; attempt < 10; attempt++ {
			av, bv, cv := a.decideHTTP(site, attempt), b.decideHTTP(site, attempt), c.decideHTTP(site, attempt)
			if av != bv {
				t.Fatalf("same seed disagrees at (site %d, attempt %d): %v vs %v", site, attempt, av, bv)
			}
			if av != cv {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical draws on 100 attempts")
	}
}

// TestHTTPSiteOfBodyRestored: hashing a request's site consumes the body
// but restores it byte for byte for the wrapped handler.
func TestHTTPSiteOfBodyRestored(t *testing.T) {
	in := NewHTTPInjector(HTTPConfig{Seed: 1})
	const body = `{"stencil":"star2d1r","gpu":"V100"}`
	r := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(body))
	s1 := in.siteOf(r)
	got, err := io.ReadAll(r.Body)
	if err != nil || string(got) != body {
		t.Fatalf("body after siteOf = %q, %v; want original", got, err)
	}
	// Same request, same site; different body, different site.
	r2 := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(body))
	if s2 := in.siteOf(r2); s2 != s1 {
		t.Fatalf("identical requests hash to different sites: %x vs %x", s1, s2)
	}
	r3 := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(body+" "))
	if s3 := in.siteOf(r3); s3 == s1 {
		t.Fatal("different bodies hash to the same site")
	}
}

// TestHTTPMiddlewareFaultClasses drives a real server through the
// middleware under aggressive rates: resets surface as transport errors,
// truncations as cut bodies, and the injector's counters match what the
// client observed.
func TestHTTPMiddlewareFaultClasses(t *testing.T) {
	const body = `{"ok":true,"pad":"0123456789012345678901234567890123456789"}`
	in := NewHTTPInjector(HTTPConfig{
		Seed: 7, LatencyRate: 0.1, ResetRate: 0.35, TruncateRate: 0.35,
		LatencySpike: time.Millisecond, MaxFaultsPerSite: 1 << 30,
	})
	h := in.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, body)
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	var clean, broken int
	for i := 0; i < 40; i++ {
		resp, err := srv.Client().Post(srv.URL+"/predict", "application/json", strings.NewReader(`{"q":1}`))
		if err != nil {
			broken++
			continue
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil || string(data) != body {
			broken++
			continue
		}
		clean++
	}
	st := in.Stats()
	if st.Requests != 40 {
		t.Fatalf("injector saw %d requests, want 40", st.Requests)
	}
	if st.Resets == 0 || st.Truncates == 0 || st.Latencies == 0 {
		t.Fatalf("stats %+v: expected every middleware fault class to fire at these rates", st)
	}
	if uint64(broken) != st.Resets+st.Truncates {
		t.Fatalf("client observed %d broken responses, injector says %d resets + %d truncates",
			broken, st.Resets, st.Truncates)
	}
	if clean == 0 {
		t.Fatal("no clean responses survived")
	}
}

// TestHTTPFaultBudget: one site can only fault MaxFaultsPerSite times;
// after the budget is spent every attempt is served clean, so a client
// with bounded retries always recovers.
func TestHTTPFaultBudget(t *testing.T) {
	const body = `{"ok":true}`
	in := NewHTTPInjector(HTTPConfig{
		Seed: 3, ResetRate: 0.9, MaxFaultsPerSite: 2,
	})
	h := in.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	var clean int
	for i := 0; i < 30; i++ {
		resp, err := srv.Client().Post(srv.URL+"/predict", "application/json", strings.NewReader(`{"q":1}`))
		if err != nil {
			continue
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && string(data) == body {
			clean++
		}
	}
	st := in.Stats()
	if got := st.Total(); got != 2 {
		t.Fatalf("injected %d faults at one site, want exactly the budget of 2", got)
	}
	if clean != 28 {
		t.Fatalf("%d clean responses, want 28 (30 attempts - 2 budgeted faults)", clean)
	}
}

// TestScorePanicBurst: the scoring-path drill panics exactly the
// configured window of consecutive calls per site, independently across
// sites.
func TestScorePanicBurst(t *testing.T) {
	in := NewHTTPInjector(HTTPConfig{Seed: 1, ScorePanicAfter: 2, ScorePanicBurst: 3})
	want := []bool{false, false, true, true, true, false, false, false}
	for i, w := range want {
		if got := in.ScorePanic("f32/v1"); got != w {
			t.Fatalf("f32/v1 call %d: panic=%v, want %v", i, got, w)
		}
	}
	// A different site has its own ordinal sequence.
	if in.ScorePanic("f64/v1") {
		t.Fatal("fresh site panicked on call 0")
	}
	if st := in.Stats(); st.ScorePanics != 3 {
		t.Fatalf("score panics %d, want 3", st.ScorePanics)
	}
	// Burst disabled entirely.
	off := NewHTTPInjector(HTTPConfig{Seed: 1})
	for i := 0; i < 10; i++ {
		if off.ScorePanic("f32/v1") {
			t.Fatal("zero-burst injector panicked")
		}
	}
}
