package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"stencilmart/internal/profile"
)

// WorkerOptions tunes one worker process.
type WorkerOptions struct {
	// ID names the worker in leases and /statsz; it must be unique in
	// the campaign (two workers sharing an id would share WAL files).
	ID string
	// Workers is the local measurement parallelism per shard; 0 uses
	// GOMAXPROCS.
	Workers int
	// Poll is how long to wait between lease attempts when every shard
	// is taken; <= 0 selects DefaultPoll.
	Poll time.Duration
	// Client is the HTTP client; nil uses a default with sane timeouts.
	Client *http.Client
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
	// StallAfterCells is a straggler drill: after this many durable
	// cells the worker logs, stops heartbeating, and hangs until killed
	// from outside — the lease must expire and re-dispatch. 0 disables.
	StallAfterCells int
	// Token is sent in the TokenHeader header on every request; it must
	// match the coordinator's token when one is set.
	Token string
}

// WorkStats summarizes one worker's campaign contribution.
type WorkStats struct {
	// Shards is how many shard leases the worker completed.
	Shards int
	// Measured and Resumed count cells measured versus replayed from a
	// prior attempt's shard journal.
	Measured, Resumed int
	// Abandoned counts leases the coordinator revoked mid-shard
	// (expiry re-dispatch won the race).
	Abandoned int
	// Faults is the final absorbed-transient-fault count.
	Faults uint64
}

// Work joins the campaign at coordURL and measures leased shards until
// the coordinator reports the campaign done or ctx is cancelled. The
// worker heartbeats after every durable cell; when a heartbeat reports
// the lease revoked, the shard is abandoned mid-flight (its durable
// cells still merge) and the worker asks for new work.
func Work(ctx context.Context, coordURL string, opts WorkerOptions) (WorkStats, error) {
	var stats WorkStats
	if opts.ID == "" {
		return stats, fmt.Errorf("campaign: worker needs an id")
	}
	if opts.Poll <= 0 {
		opts.Poll = DefaultPoll
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 30 * time.Second}
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	coordURL = strings.TrimSuffix(coordURL, "/")

	var spec Spec
	if err := getJSON(ctx, opts.Client, coordURL+"/spec", opts.Token, &spec); err != nil {
		return stats, fmt.Errorf("campaign: fetching spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return stats, err
	}
	prof := spec.NewProfiler(opts.Workers)
	logf("campaign: worker %s joined %s: %d stencils x %d archs", opts.ID, coordURL, len(spec.Stencils), len(spec.Archs))

	var totalCells atomic.Int64
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		var lease LeaseResponse
		err := postJSON(ctx, opts.Client, coordURL+"/lease", opts.Token, leaseRequest{Worker: opts.ID}, &lease)
		if err != nil {
			if stats.Shards > 0 && isConnectionError(err) {
				// The coordinator merged and exited while we polled; the
				// campaign is over and our shards are durable.
				logf("campaign: worker %s: coordinator gone after %d shards, exiting", opts.ID, stats.Shards)
				return stats, nil
			}
			return stats, fmt.Errorf("campaign: lease: %w", err)
		}
		switch {
		case lease.Done:
			stats.Faults = prof.FaultsAbsorbed()
			logf("campaign: worker %s done: %d shards, %d cells measured, %d resumed, %d faults absorbed",
				opts.ID, stats.Shards, stats.Measured, stats.Resumed, stats.Faults)
			return stats, nil
		case lease.Wait:
			select {
			case <-ctx.Done():
				return stats, ctx.Err()
			case <-time.After(opts.Poll):
			}
			continue
		}

		revoked, st, err := workShard(ctx, opts, prof, spec, coordURL, lease, &totalCells, logf)
		stats.Measured += st.Measured
		stats.Resumed += st.Resumed
		stats.Faults = prof.FaultsAbsorbed()
		switch {
		case revoked:
			stats.Abandoned++
			logf("campaign: worker %s: shard %d lease revoked, abandoning", opts.ID, lease.Shard)
			continue
		case err != nil:
			return stats, err
		}
		stats.Shards++
		logf("campaign: worker %s: shard %d complete (%d measured, %d resumed)",
			opts.ID, lease.Shard, st.Measured, st.Resumed)
	}
}

// workShard measures one leased shard, heartbeating per durable cell,
// and reports completion. revoked is true when the coordinator
// re-dispatched the lease out from under us.
func workShard(ctx context.Context, opts WorkerOptions, prof *profile.Profiler, spec Spec, coordURL string, lease LeaseResponse, totalCells *atomic.Int64, logf func(string, ...any)) (revoked bool, st shardWork, err error) {
	shardCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var cellsDone atomic.Int64
	var cancelled atomic.Bool
	onCell := func(int) {
		if opts.StallAfterCells > 0 && totalCells.Add(1) == int64(opts.StallAfterCells) {
			logf("campaign: worker %s stalling after %d cells (straggler drill)", opts.ID, opts.StallAfterCells)
			select {} // hang without heartbeating until killed from outside
		}
		n := int(cellsDone.Add(1))
		var hb heartbeatResponse
		hbErr := postJSON(ctx, opts.Client, coordURL+"/heartbeat", opts.Token, heartbeatRequest{
			Worker: opts.ID, Shard: lease.Shard, Attempt: lease.Attempt,
			CellsDone: n, Faults: prof.FaultsAbsorbed(),
		}, &hb)
		// Treat an unreachable coordinator like a revocation: stop
		// spending effort on a lease nobody is tracking. The durable
		// cells keep their value either way.
		if hbErr != nil || hb.Cancelled {
			cancelled.Store(true)
			cancel()
		}
	}

	stats, err := prof.CollectShard(shardCtx, lease.Path, spec.Stencils, spec.Archs, lease.Cells, onCell)
	st = shardWork{Measured: int(cellsDone.Load()), Resumed: stats.Resumed}
	if err != nil {
		if cancelled.Load() && ctx.Err() == nil {
			return true, st, nil
		}
		return false, st, err
	}
	if err := postJSON(ctx, opts.Client, coordURL+"/complete", opts.Token, completeRequest{
		Worker: opts.ID, Shard: lease.Shard, Attempt: lease.Attempt,
		Faults: prof.FaultsAbsorbed(),
	}, &struct{}{}); err != nil {
		return false, st, fmt.Errorf("campaign: reporting shard %d complete: %w", lease.Shard, err)
	}
	return false, st, nil
}

// shardWork counts one shard attempt's contribution.
type shardWork struct {
	Measured, Resumed int
}

// getJSON GETs url into out, attaching the campaign token when set.
func getJSON(ctx context.Context, client *http.Client, url, token string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	if token != "" {
		req.Header.Set(TokenHeader, token)
	}
	return doJSON(client, req, out)
}

// postJSON POSTs body to url and decodes the response into out,
// attaching the campaign token when set.
func postJSON(ctx context.Context, client *http.Client, url, token string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set(TokenHeader, token)
	}
	return doJSON(client, req, out)
}

func doJSON(client *http.Client, req *http.Request, out any) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("%s %s: %s: %s", req.Method, req.URL.Path, resp.Status, bytes.TrimSpace(snippet))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// isConnectionError reports a transport-level failure (refused, reset,
// closed) as opposed to an HTTP-level error response.
func isConnectionError(err error) bool {
	return err != nil && !errors.Is(err, context.Canceled) &&
		(strings.Contains(err.Error(), "connection refused") ||
			strings.Contains(err.Error(), "connection reset") ||
			strings.Contains(err.Error(), "EOF"))
}
