// Package campaign promotes the resumable profiling journal into a
// distributed collection subsystem: a coordinator partitions the cell
// index space [0, len(stencils)*len(archs)) of one collection into
// shards and leases them to worker processes over plain HTTP; each
// worker measures its leased cells into its own checksummed WAL shard
// (internal/persist) and heartbeats per-cell progress back. Leases that
// expire — a worker died, hung, or straggles — are re-dispatched to the
// next worker that asks, and a final merge step validates every shard's
// collection identity, dedups the byte-identical records overlapping
// attempts produce, and assembles one dataset bitwise-identical to a
// serial CollectJournal run of the same collection.
//
// The protocol carries control only; measurement data travels through
// the shard WALs, so coordinator and workers must share a filesystem
// (one machine, or a shared mount). Everything that matters for
// correctness is already guaranteed below this layer: cell measurements
// are pure functions of the collection seed, shard journals carry the
// full collection identity, and divergent duplicate cells fail the
// merge instead of silently last-winning.
package campaign

import (
	"fmt"
	"time"

	"stencilmart/internal/fault"
	"stencilmart/internal/gpu"
	"stencilmart/internal/profile"
	"stencilmart/internal/sim"
	"stencilmart/internal/stencil"
)

// DefaultLease is how long a worker may sit on a shard without a
// heartbeat before the shard is re-dispatched. Heartbeats arrive per
// completed cell, so the lease must exceed the worst-case time of one
// cell, not of one shard.
const DefaultLease = 30 * time.Second

// DefaultPoll is how long a worker waits before re-asking for work when
// every shard is leased out.
const DefaultPoll = 250 * time.Millisecond

// Spec is the collection identity a coordinator publishes and every
// worker profiles under. It carries exactly the inputs that determine
// the dataset bytes: the corpus, the architecture specs, and the
// profiler knobs that enter the journal identity.
type Spec struct {
	Stencils     []stencil.Stencil `json:"stencils"`
	Archs        []gpu.Arch        `json:"archs"`
	SamplesPerOC int               `json:"samples_per_oc"`
	Seed         int64             `json:"seed"`
	Trials       int               `json:"trials"`
	// Chaos, when set, has every worker wrap its substrate in the
	// deterministic fault injector — the campaign-wide chaos drill. The
	// fault-tolerant measurement path must still produce the clean
	// dataset.
	Chaos *fault.Config `json:"chaos,omitempty"`
}

// Cells is the size of the campaign's cell-index space.
func (s Spec) Cells() int { return len(s.Stencils) * len(s.Archs) }

// Validate checks the spec describes a non-empty collection.
func (s Spec) Validate() error {
	if len(s.Stencils) == 0 || len(s.Archs) == 0 {
		return fmt.Errorf("campaign: empty spec (%d stencils, %d archs)", len(s.Stencils), len(s.Archs))
	}
	if s.SamplesPerOC < 1 {
		return fmt.Errorf("campaign: samples per OC %d < 1", s.SamplesPerOC)
	}
	if s.Chaos != nil {
		if err := s.Chaos.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// NewProfiler builds the profiler this spec's measurements run on,
// wiring in the chaos injector (and the retry budget that absorbs it)
// when the spec asks for one. Workers is the local measurement
// parallelism; 0 uses GOMAXPROCS.
func (s Spec) NewProfiler(workers int) *profile.Profiler {
	p := &profile.Profiler{
		Model:        sim.New(),
		SamplesPerOC: s.SamplesPerOC,
		Seed:         s.Seed,
		Trials:       s.Trials,
		Workers:      workers,
	}
	if s.Chaos != nil {
		p.Runner = fault.Wrap(p.Model, *s.Chaos)
		p.Retry = profile.RetryPolicy{MaxAttempts: 6, BaseDelay: 100 * time.Microsecond, MaxDelay: 2 * time.Millisecond}
	}
	return p
}

// Wire types of the coordinator protocol. Every body is small JSON;
// the shard payloads themselves never cross HTTP.

// leaseRequest asks for a shard.
type leaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse answers a lease request: exactly one of Done, Wait, or
// a shard assignment.
type LeaseResponse struct {
	// Done reports the campaign has no work left (merge is next).
	Done bool `json:"done,omitempty"`
	// Wait reports every shard is currently leased; poll again.
	Wait bool `json:"wait,omitempty"`
	// Shard and Attempt identify the lease for heartbeats/completion.
	Shard   int `json:"shard"`
	Attempt int `json:"attempt"`
	// Cells are the global cell indices to measure.
	Cells []int `json:"cells,omitempty"`
	// Path is the WAL shard file to write (coordinator-chosen so every
	// attempt gets its own single-writer file).
	Path string `json:"path,omitempty"`
	// LeaseMillis is how often the worker must heartbeat to keep the
	// shard.
	LeaseMillis int64 `json:"lease_millis,omitempty"`
}

// heartbeatRequest renews a lease and reports progress.
type heartbeatRequest struct {
	Worker  string `json:"worker"`
	Shard   int    `json:"shard"`
	Attempt int    `json:"attempt"`
	// CellsDone is the cumulative count of cells this attempt has made
	// durable.
	CellsDone int `json:"cells_done"`
	// Faults is the worker's cumulative absorbed-fault counter.
	Faults uint64 `json:"faults"`
}

// heartbeatResponse tells a straggler whose lease was re-dispatched to
// abandon the shard (its durable cells are kept and deduped at merge).
type heartbeatResponse struct {
	Cancelled bool `json:"cancelled,omitempty"`
}

// completeRequest reports a fully measured shard.
type completeRequest struct {
	Worker  string `json:"worker"`
	Shard   int    `json:"shard"`
	Attempt int    `json:"attempt"`
	Faults  uint64 `json:"faults"`
}
