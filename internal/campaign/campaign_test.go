package campaign_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stencilmart/internal/campaign"
	"stencilmart/internal/fault"
	"stencilmart/internal/gpu"
	"stencilmart/internal/profile"
	"stencilmart/internal/testutil"
)

// campaignSpec is the shared small collection: 4 stencils x 2
// architectures = 8 cells, the same shape the journal resume tests use.
func campaignSpec(t *testing.T) campaign.Spec {
	t.Helper()
	return campaign.Spec{
		Stencils:     testutil.SmallCorpus(t)[:4],
		Archs:        gpu.Catalog()[:2],
		SamplesPerOC: 2,
		Seed:         11,
	}
}

// serialBytes is the serial CollectJournal-equivalent reference every
// campaign merge must match bitwise: a plain fault-free Collect under
// the spec's identity.
func serialBytes(t *testing.T, spec campaign.Spec) []byte {
	t.Helper()
	clean := spec
	clean.Chaos = nil
	ds, err := clean.NewProfiler(1).Collect(context.Background(), spec.Stencils, spec.Archs)
	if err != nil {
		t.Fatalf("serial reference Collect: %v", err)
	}
	return testutil.DatasetJSON(t, ds)
}

// newCampaign builds a coordinator over dir and serves its API from an
// httptest server.
func newCampaign(t *testing.T, spec campaign.Spec, dir string, shards int, lease time.Duration) (*campaign.Coordinator, *httptest.Server) {
	t.Helper()
	c, err := campaign.NewCoordinator(spec, campaign.Options{Shards: shards, Lease: lease, Dir: dir})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return c, srv
}

// runWorkers joins n workers to the campaign and waits for all of them.
func runWorkers(t *testing.T, url, prefix string, n int) []campaign.WorkStats {
	t.Helper()
	stats := make([]campaign.WorkStats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stats[i], errs[i] = campaign.Work(context.Background(), url, campaign.WorkerOptions{
				ID: fmt.Sprintf("%s%d", prefix, i), Workers: 2, Poll: 5 * time.Millisecond,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %s%d: %v", prefix, i, err)
		}
	}
	return stats
}

// TestCampaignMergedIdenticalToSerial: three workers splitting the cell
// space over leased shards assemble, after the merge, the exact bytes a
// serial run produces — at GOMAXPROCS 1 and 4.
func TestCampaignMergedIdenticalToSerial(t *testing.T) {
	spec := campaignSpec(t)
	want := serialBytes(t, spec)
	for _, procs := range []int{1, 4} {
		testutil.WithGOMAXPROCS(t, procs, func() {
			c, srv := newCampaign(t, spec, t.TempDir(), 3, 0)
			workers := runWorkers(t, srv.URL, "w", 3)
			if !c.Done() {
				t.Fatalf("GOMAXPROCS %d: campaign not done after all workers exited", procs)
			}
			var measured int
			for _, ws := range workers {
				measured += ws.Measured
			}
			if measured != spec.Cells() {
				t.Fatalf("GOMAXPROCS %d: workers measured %d cells, want %d", procs, measured, spec.Cells())
			}
			ds, ms, err := c.Merge()
			if err != nil {
				t.Fatalf("GOMAXPROCS %d: merge: %v", procs, err)
			}
			if ms.Shards != 3 || ms.Cells != 8 || ms.Duplicates != 0 {
				t.Fatalf("GOMAXPROCS %d: merge stats %+v", procs, ms)
			}
			testutil.AssertSameBytes(t, "campaign dataset", want, testutil.DatasetJSON(t, ds))
		})
	}
}

// TestCampaignStatsz: /statsz exposes per-worker progress and fault
// counters plus shard states.
func TestCampaignStatsz(t *testing.T) {
	spec := campaignSpec(t)
	_, srv := newCampaign(t, spec, t.TempDir(), 2, 0)
	runWorkers(t, srv.URL, "w", 2)

	resp, err := http.Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatalf("GET /statsz: %v", err)
	}
	defer resp.Body.Close()
	var st campaign.StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding /statsz: %v", err)
	}
	if !st.Done || st.Cells != 8 || len(st.Shards) != 2 {
		t.Fatalf("statsz %+v, want done with 8 cells in 2 shards", st)
	}
	for _, sh := range st.Shards {
		if sh.State != "done" || sh.Done != sh.Cells {
			t.Fatalf("shard snapshot %+v, want done with all cells reported", sh)
		}
	}
	var leases, cellsDone int
	for _, w := range st.Workers {
		leases += w.Leases
		cellsDone += w.CellsDone
	}
	if leases < 2 || cellsDone != 8 {
		t.Fatalf("worker counters: %d leases, %d cells done (want >= 2, 8): %+v", leases, cellsDone, st.Workers)
	}
}

// killAfter cancels a context once limit requests to path have completed
// — the harness that "kills" a worker mid-shard from the outside.
type killAfter struct {
	base  http.RoundTripper
	path  string
	limit int32
	seen  atomic.Int32
	kill  context.CancelFunc
}

func (k *killAfter) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := k.base.RoundTrip(req)
	if err == nil && req.URL.Path == k.path && k.seen.Add(1) == k.limit {
		k.kill()
	}
	return resp, err
}

// TestCampaignKilledWorkerDifferential is the chaos acceptance test: a
// campaign run under deterministic fault injection, with one worker
// killed mid-shard and its expired lease re-dispatched to rescuers,
// still merges to the exact bytes of a clean serial run.
func TestCampaignKilledWorkerDifferential(t *testing.T) {
	spec := campaignSpec(t)
	spec.Trials = 3
	chaos := fault.DefaultConfig(99)
	spec.Chaos = &chaos
	want := serialBytes(t, spec)

	dir := t.TempDir()
	c, srv := newCampaign(t, spec, dir, 2, 150*time.Millisecond)

	// The victim dies right after its first heartbeat: one durable cell,
	// three left on its shard, no /complete.
	victimCtx, kill := context.WithCancel(context.Background())
	defer kill()
	client := &http.Client{Transport: &killAfter{
		base: http.DefaultTransport, path: "/heartbeat", limit: 1, kill: kill,
	}}
	_, err := campaign.Work(victimCtx, srv.URL, campaign.WorkerOptions{
		ID: "victim", Workers: 1, Poll: 5 * time.Millisecond, Client: client,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("killed worker returned %v, want context.Canceled", err)
	}
	if c.Done() {
		t.Fatal("campaign done with a killed worker's shard outstanding")
	}

	// Rescue workers take the pending shard, then the expired lease.
	runWorkers(t, srv.URL, "rescue", 2)
	if !c.Done() {
		t.Fatal("campaign not done after rescue workers exited")
	}
	if st := c.Stats(); st.Redispatches < 1 {
		t.Fatalf("stats %+v, want the victim's lease re-dispatched", st)
	}
	ds, ms, err := c.Merge()
	if err != nil {
		t.Fatalf("merge after kill: %v", err)
	}
	if ms.Duplicates < 1 {
		t.Fatalf("merge stats %+v, want the victim's durable cell deduped", ms)
	}
	testutil.AssertSameBytes(t, "killed-worker campaign dataset", want, testutil.DatasetJSON(t, ds))
}

// TestCampaignResume: a campaign abandoned half-merged — one shard
// complete, one partially durable — resumes under a fresh coordinator
// that dispatches only the uncovered cells, and still merges to the
// serial bytes.
func TestCampaignResume(t *testing.T) {
	spec := campaignSpec(t)
	want := serialBytes(t, spec)
	dir := t.TempDir()

	// Campaign #1: a lone worker killed after three durable cells —
	// shard 0 (2 cells) completed, shard 1 half done.
	_, srv1 := newCampaign(t, spec, dir, 4, time.Hour)
	ctx1, kill := context.WithCancel(context.Background())
	defer kill()
	client := &http.Client{Transport: &killAfter{
		base: http.DefaultTransport, path: "/heartbeat", limit: 3, kill: kill,
	}}
	_, err := campaign.Work(ctx1, srv1.URL, campaign.WorkerOptions{
		ID: "casualty", Workers: 1, Poll: 5 * time.Millisecond, Client: client,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("campaign #1 worker returned %v, want context.Canceled", err)
	}
	srv1.Close()

	// Campaign #2 over the same directory resumes from coverage.
	c2, srv2 := newCampaign(t, spec, dir, 4, 0)
	st := c2.Stats()
	if st.Covered != 3 {
		t.Fatalf("resumed campaign covered %d cells at start, want 3: %+v", st.Covered, st)
	}
	var pending int
	for _, sh := range st.Shards {
		pending += sh.Cells
	}
	if pending != spec.Cells()-3 {
		t.Fatalf("resumed campaign dispatches %d cells, want %d", pending, spec.Cells()-3)
	}
	runWorkers(t, srv2.URL, "fresh", 2)
	if !c2.Done() {
		t.Fatal("resumed campaign not done")
	}
	ds, _, err := c2.Merge()
	if err != nil {
		t.Fatalf("merge of resumed campaign: %v", err)
	}
	testutil.AssertSameBytes(t, "resumed campaign dataset", want, testutil.DatasetJSON(t, ds))

	// Campaign #3 over the finished directory is born complete.
	c3, err := campaign.NewCoordinator(spec, campaign.Options{Dir: dir})
	if err != nil {
		t.Fatalf("coordinator over finished campaign: %v", err)
	}
	if !c3.Done() {
		t.Fatal("coordinator over a fully covered directory is not born complete")
	}
	ds3, _, err := c3.Merge()
	if err != nil {
		t.Fatalf("merge of finished campaign: %v", err)
	}
	testutil.AssertSameBytes(t, "born-complete campaign dataset", want, testutil.DatasetJSON(t, ds3))
}

// TestCoordinatorServe: the Serve convenience (real TCP listener, merge
// on completion) returns the serial bytes end to end.
func TestCoordinatorServe(t *testing.T) {
	spec := campaignSpec(t)
	want := serialBytes(t, spec)
	addrCh := make(chan string, 1)
	c, err := campaign.NewCoordinator(spec, campaign.Options{
		Shards: 2, Dir: t.TempDir(), OnListen: func(addr string) { addrCh <- addr },
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	type result struct {
		ds  *profile.Dataset
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		ds, _, err := c.Serve(context.Background(), "127.0.0.1:0", nil)
		resCh <- result{ds, err}
	}()
	addr := <-addrCh
	runWorkers(t, "http://"+addr, "w", 2)
	res := <-resCh
	if res.err != nil {
		t.Fatalf("Serve: %v", res.err)
	}
	testutil.AssertSameBytes(t, "served campaign dataset", want, testutil.DatasetJSON(t, res.ds))
}

// TestCampaignRejectsForeignDirectory: a coordinator must refuse a
// campaign directory holding shards of a different collection identity.
func TestCampaignRejectsForeignDirectory(t *testing.T) {
	spec := campaignSpec(t)
	dir := t.TempDir()
	_, srv := newCampaign(t, spec, dir, 2, 0)
	runWorkers(t, srv.URL, "w", 1)

	foreign := spec
	foreign.Seed = 999
	if _, err := campaign.NewCoordinator(foreign, campaign.Options{Dir: dir}); !errors.Is(err, profile.ErrJournalMismatch) {
		t.Fatalf("foreign coordinator returned %v, want ErrJournalMismatch", err)
	}
}

// TestCampaignAuthToken: with a coordinator token set, tokenless and
// wrong-token workers are refused with 401 on the mutating endpoints
// (counted on /statsz), while tokened workers run the campaign to the
// same bytes as ever.
func TestCampaignAuthToken(t *testing.T) {
	spec := campaignSpec(t)
	want := serialBytes(t, spec)
	dir := t.TempDir()
	const token = "swordfish"
	c, err := campaign.NewCoordinator(spec, campaign.Options{
		Shards: 4, Lease: time.Minute, Dir: dir, Token: token,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// A tokenless worker and a wrong-token worker both die on their first
	// lease call with a 401.
	for _, w := range []campaign.WorkerOptions{
		{ID: "gatecrasher", Workers: 1},
		{ID: "mistyped", Workers: 1, Token: "sw0rdfish"},
	} {
		_, err := campaign.Work(context.Background(), srv.URL, w)
		if err == nil || !strings.Contains(err.Error(), "401") {
			t.Fatalf("worker %s without valid token: err = %v, want 401", w.ID, err)
		}
	}
	// The read-only spec endpoint stays open: both rejects got past it,
	// so exactly two unauthorized requests were counted.
	if got := c.Stats().Unauthorized; got != 2 {
		t.Fatalf("unauthorized count %d, want 2", got)
	}

	// Tokened workers complete the campaign, and the merge still matches
	// the serial reference bitwise.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = campaign.Work(context.Background(), srv.URL, campaign.WorkerOptions{
				ID: fmt.Sprintf("authed%d", i), Workers: 2, Poll: 5 * time.Millisecond, Token: token,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("authed worker %d: %v", i, err)
		}
	}
	if !c.Done() {
		t.Fatal("campaign not done after authed workers finished")
	}
	ds, _, err := c.Merge()
	if err != nil {
		t.Fatal(err)
	}
	testutil.AssertSameBytes(t, "authed campaign merge", want, testutil.DatasetJSON(t, ds))
	if got := c.Stats().Unauthorized; got != 2 {
		t.Fatalf("unauthorized count drifted to %d during the authed run", got)
	}
}
