package campaign

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stencilmart/internal/profile"
)

// TokenHeader carries a worker's campaign auth token.
const TokenHeader = "X-Campaign-Token"

// Options tunes a coordinator.
type Options struct {
	// Shards is how many shards the uncovered cell space is partitioned
	// into; <= 0 selects one shard per four cells (min 1). More shards
	// than workers keeps every worker busy and bounds what one dead
	// worker's lease expiry re-dispatches.
	Shards int
	// Lease is the heartbeat deadline before a shard is re-dispatched;
	// <= 0 selects DefaultLease. It must exceed the worst-case time of
	// one cell — heartbeats arrive per completed cell.
	Lease time.Duration
	// Dir is the campaign directory every shard WAL lives in. The
	// coordinator scans it at startup, so a restarted campaign resumes
	// from whatever previous workers made durable.
	Dir string
	// OnListen, when set, receives the bound address once Serve is
	// accepting requests (used to publish the join URL).
	OnListen func(addr string)
	// Token, when non-empty, gates the mutating endpoints (/lease,
	// /heartbeat, /complete): workers must send it in the TokenHeader
	// header or get 401. The read-only endpoints (/spec, /statsz) stay
	// open. Empty disables auth — the single-machine default.
	Token string
}

// shardState is a shard's lease lifecycle.
type shardState int

const (
	shardPending shardState = iota
	shardLeased
	shardDone
)

func (s shardState) String() string {
	switch s {
	case shardPending:
		return "pending"
	case shardLeased:
		return "leased"
	case shardDone:
		return "done"
	}
	return "unknown"
}

// shardInfo is the coordinator-side state of one shard.
type shardInfo struct {
	id       int
	cells    []int
	state    shardState
	worker   string
	attempt  int
	expiry   time.Time
	done     int // cells reported durable by the current attempt
	paths    []string
}

// workerInfo aggregates per-worker progress and fault counters.
type workerInfo struct {
	leases    int
	completes int
	cellsDone int
	faults    uint64
	lastSeen  time.Time
}

// Coordinator runs one campaign: it publishes the spec, leases shards,
// re-dispatches expired leases, and merges the shard journals once
// every shard completes.
type Coordinator struct {
	spec Spec
	opts Options
	prof *profile.Profiler // identity + merge profiler (never measures)

	mu           sync.Mutex
	shards       []*shardInfo
	workers      map[string]*workerInfo
	preCovered   int // cells already durable when the campaign started
	redispatches int
	unauthorized atomic.Uint64
	doneOnce     sync.Once
	doneCh       chan struct{}
}

// NewCoordinator scans opts.Dir for shard journals left by earlier
// campaign runs, validates them against the spec identity, and
// partitions the uncovered cells into shards. A campaign whose cells
// are all covered already is born complete — Wait returns immediately
// and Merge assembles the dataset.
func NewCoordinator(spec Spec, opts Options) (*Coordinator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("campaign: coordinator needs a campaign directory")
	}
	if opts.Lease <= 0 {
		opts.Lease = DefaultLease
	}
	c := &Coordinator{
		spec:    spec,
		opts:    opts,
		prof:    spec.NewProfiler(1),
		workers: make(map[string]*workerInfo),
		doneCh:  make(chan struct{}),
	}

	paths, err := c.shardFiles()
	if err != nil {
		return nil, err
	}
	missing := make([]int, 0, spec.Cells())
	if len(paths) > 0 {
		covered, err := c.prof.JournalCoverage(paths, spec.Stencils, spec.Archs)
		if err != nil {
			return nil, fmt.Errorf("campaign: scanning %s: %w", opts.Dir, err)
		}
		for i, ok := range covered {
			if ok {
				c.preCovered++
			} else {
				missing = append(missing, i)
			}
		}
	} else {
		for i := 0; i < spec.Cells(); i++ {
			missing = append(missing, i)
		}
	}

	nShards := opts.Shards
	if nShards <= 0 {
		nShards = (len(missing) + 3) / 4
	}
	if nShards > len(missing) {
		nShards = len(missing)
	}
	if nShards < 1 {
		nShards = 0 // nothing left to dispatch
	}
	for s := 0; s < nShards; s++ {
		lo, hi := s*len(missing)/nShards, (s+1)*len(missing)/nShards
		c.shards = append(c.shards, &shardInfo{id: s, cells: missing[lo:hi]})
	}
	if len(c.shards) == 0 {
		c.doneOnce.Do(func() { close(c.doneCh) })
	}
	return c, nil
}

// shardFiles lists every WAL file in the campaign directory, sorted for
// deterministic scan and merge order.
func (c *Coordinator) shardFiles() ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(c.opts.Dir, "*.wal"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// Done reports whether every shard has completed.
func (c *Coordinator) Done() bool {
	select {
	case <-c.doneCh:
		return true
	default:
		return false
	}
}

// Wait blocks until the campaign completes or ctx is cancelled.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.doneCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Merge assembles every shard journal in the campaign directory into
// the dataset — bitwise-identical to a serial CollectJournal of the
// same collection. It validates shard identities, dedups re-dispatched
// work, and fails with profile.ErrJournalIncomplete when cells are
// still missing.
func (c *Coordinator) Merge() (*profile.Dataset, profile.MergeStats, error) {
	paths, err := c.shardFiles()
	if err != nil {
		return nil, profile.MergeStats{}, err
	}
	return c.prof.MergeJournals(paths, c.spec.Stencils, c.spec.Archs)
}

// Handler returns the coordinator's HTTP API:
//
//	GET  /spec      the collection identity workers profile under
//	POST /lease     acquire (or re-acquire an expired) shard
//	POST /heartbeat renew a lease with per-cell progress
//	POST /complete  report a fully measured shard
//	GET  /statsz    shard/worker progress and fault counters
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/spec", c.handleSpec)
	mux.HandleFunc("/lease", c.authed(c.handleLease))
	mux.HandleFunc("/heartbeat", c.authed(c.handleHeartbeat))
	mux.HandleFunc("/complete", c.authed(c.handleComplete))
	mux.HandleFunc("/statsz", c.handleStatsz)
	return mux
}

// authed gates a mutating endpoint behind the campaign token. The
// comparison is constant-time so the token cannot be guessed
// byte-by-byte off response timing.
func (c *Coordinator) authed(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if c.opts.Token != "" &&
			subtle.ConstantTimeCompare([]byte(r.Header.Get(TokenHeader)), []byte(c.opts.Token)) != 1 {
			c.unauthorized.Add(1)
			writeJSON(w, http.StatusUnauthorized, errorBody{Error: "missing or invalid campaign token"})
			return
		}
		next(w, r)
	}
}

func (c *Coordinator) handleSpec(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.spec)
}

// touch updates (creating if needed) a worker's liveness entry. Callers
// hold c.mu.
func (c *Coordinator) touch(name string) *workerInfo {
	wi := c.workers[name]
	if wi == nil {
		wi = &workerInfo{}
		c.workers[name] = wi
	}
	wi.lastSeen = time.Now()
	return wi
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Worker == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "lease request without a worker id"})
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	wi := c.touch(req.Worker)

	grant := func(sh *shardInfo) {
		sh.state = shardLeased
		sh.worker = req.Worker
		sh.attempt++
		sh.expiry = time.Now().Add(c.opts.Lease)
		sh.done = 0
		path := filepath.Join(c.opts.Dir, fmt.Sprintf("shard-%03d-a%03d.wal", sh.id, sh.attempt))
		sh.paths = append(sh.paths, path)
		wi.leases++
		writeJSON(w, http.StatusOK, LeaseResponse{
			Shard:       sh.id,
			Attempt:     sh.attempt,
			Cells:       sh.cells,
			Path:        path,
			LeaseMillis: c.opts.Lease.Milliseconds(),
		})
	}

	for _, sh := range c.shards {
		if sh.state == shardPending {
			grant(sh)
			return
		}
	}
	// No pending shard: reclaim the most-expired lease, if any — the
	// straggler re-dispatch path. The dead attempt's partial WAL stays;
	// its cells merge as byte-identical duplicates.
	var expired *shardInfo
	now := time.Now()
	for _, sh := range c.shards {
		if sh.state == shardLeased && now.After(sh.expiry) {
			if expired == nil || sh.expiry.Before(expired.expiry) {
				expired = sh
			}
		}
	}
	if expired != nil {
		c.redispatches++
		grant(expired)
		return
	}
	if c.allDoneLocked() {
		writeJSON(w, http.StatusOK, LeaseResponse{Done: true})
		return
	}
	writeJSON(w, http.StatusOK, LeaseResponse{Wait: true})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	wi := c.touch(req.Worker)
	wi.faults = req.Faults
	sh := c.shard(req.Shard)
	if sh == nil || sh.state != shardLeased || sh.worker != req.Worker || sh.attempt != req.Attempt {
		// The lease moved on (expiry re-dispatch) or the shard finished
		// elsewhere: tell the straggler to abandon its attempt.
		writeJSON(w, http.StatusOK, heartbeatResponse{Cancelled: true})
		return
	}
	sh.expiry = time.Now().Add(c.opts.Lease)
	if req.CellsDone > sh.done {
		wi.cellsDone += req.CellsDone - sh.done
		sh.done = req.CellsDone
	}
	writeJSON(w, http.StatusOK, heartbeatResponse{})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	wi := c.touch(req.Worker)
	wi.faults = req.Faults
	sh := c.shard(req.Shard)
	if sh == nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("unknown shard %d", req.Shard)})
		return
	}
	// A stale complete (the shard was re-dispatched and the original
	// worker finished anyway) is still a completion: its WAL covers the
	// whole shard and deduplication makes the overlap harmless.
	if sh.state != shardDone {
		sh.state = shardDone
		sh.done = len(sh.cells)
		wi.completes++
	}
	if c.allDoneLocked() {
		c.doneOnce.Do(func() { close(c.doneCh) })
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (c *Coordinator) shard(id int) *shardInfo {
	if id < 0 || id >= len(c.shards) {
		return nil
	}
	return c.shards[id]
}

func (c *Coordinator) allDoneLocked() bool {
	for _, sh := range c.shards {
		if sh.state != shardDone {
			return false
		}
	}
	return true
}

// ShardSnapshot is one shard's state on /statsz.
type ShardSnapshot struct {
	ID      int    `json:"id"`
	State   string `json:"state"`
	Worker  string `json:"worker,omitempty"`
	Attempt int    `json:"attempt"`
	Cells   int    `json:"cells"`
	Done    int    `json:"done"`
}

// WorkerSnapshot is one worker's counters on /statsz.
type WorkerSnapshot struct {
	Leases        int    `json:"leases"`
	Completes     int    `json:"completes"`
	CellsDone     int    `json:"cells_done"`
	Faults        uint64 `json:"faults"`
	LastSeenMilli int64  `json:"last_seen_millis"`
}

// StatsSnapshot is the /statsz body.
type StatsSnapshot struct {
	Cells        int                       `json:"cells"`
	Covered      int                       `json:"covered_at_start"`
	Redispatches int                       `json:"redispatches"`
	Unauthorized uint64                    `json:"unauthorized"`
	Done         bool                      `json:"done"`
	Shards       []ShardSnapshot           `json:"shards"`
	Workers      map[string]WorkerSnapshot `json:"workers"`
}

// Stats snapshots campaign progress.
func (c *Coordinator) Stats() StatsSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := StatsSnapshot{
		Cells:        c.spec.Cells(),
		Covered:      c.preCovered,
		Redispatches: c.redispatches,
		Unauthorized: c.unauthorized.Load(),
		Done:         c.Done(),
		Workers:      make(map[string]WorkerSnapshot, len(c.workers)),
	}
	for _, sh := range c.shards {
		out.Shards = append(out.Shards, ShardSnapshot{
			ID: sh.id, State: sh.state.String(), Worker: sh.worker,
			Attempt: sh.attempt, Cells: len(sh.cells), Done: sh.done,
		})
	}
	now := time.Now()
	for name, wi := range c.workers {
		out.Workers[name] = WorkerSnapshot{
			Leases: wi.leases, Completes: wi.completes, CellsDone: wi.cellsDone,
			Faults: wi.faults, LastSeenMilli: now.Sub(wi.lastSeen).Milliseconds(),
		}
	}
	return out
}

func (c *Coordinator) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Stats())
}

// Serve runs the coordinator HTTP API on addr until the campaign
// completes (or ctx is cancelled), then merges the shard journals and
// returns the assembled dataset. Pass ":0" to bind a random port;
// opts.OnListen receives the bound address.
func (c *Coordinator) Serve(ctx context.Context, addr string, logf func(format string, args ...any)) (*profile.Dataset, profile.MergeStats, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, profile.MergeStats{}, err
	}
	srv := &http.Server{Handler: c.Handler(), ReadHeaderTimeout: 5 * time.Second}
	logf("campaign: coordinating %d cells in %d shards on http://%s", c.spec.Cells()-c.preCovered, len(c.shards), ln.Addr())
	if c.opts.OnListen != nil {
		c.opts.OnListen(ln.Addr().String())
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	waitErr := c.Wait(ctx)
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return nil, profile.MergeStats{}, err
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return nil, profile.MergeStats{}, err
	}
	if waitErr != nil {
		return nil, profile.MergeStats{}, fmt.Errorf("campaign interrupted: %w (shard journals stay in %s; rerun to resume)", waitErr, c.opts.Dir)
	}
	logf("campaign: all shards complete, merging")
	return c.Merge()
}

// writeJSON writes a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// errorBody is the uniform error response shape.
type errorBody struct {
	Error string `json:"error"`
}

// readJSON decodes a request body, answering 400 on garbage.
func readJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(into); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	return true
}
