package nn

import (
	"fmt"
	"math/rand"
)

// Dense is a fully connected layer: out = x*W + b.
type Dense struct {
	in, out int
	w, b    *Param
	lastX   [][]float64
}

// NewDense builds a dense layer with He initialization.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{in: in, out: out, w: newParam(in * out), b: newParam(out)}
	heInit(d.w.W, in, rng)
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x [][]float64) [][]float64 {
	d.lastX = x
	out := make([][]float64, len(x))
	parallelFor(len(x), func(i int) {
		row := x[i]
		if len(row) != d.in {
			panic(fmt.Sprintf("nn: dense expects width %d, got %d", d.in, len(row)))
		}
		o := make([]float64, d.out)
		copy(o, d.b.W)
		for j, v := range row {
			if v == 0 {
				continue
			}
			w := d.w.W[j*d.out : (j+1)*d.out]
			for k := range o {
				o[k] += v * w[k]
			}
		}
		out[i] = o
	})
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad [][]float64) [][]float64 {
	out := make([][]float64, len(grad))
	// dX can be computed per row in parallel; dW/dB accumulate serially
	// afterward to stay deterministic.
	parallelFor(len(grad), func(i int) {
		g := grad[i]
		dx := make([]float64, d.in)
		for j := range dx {
			w := d.w.W[j*d.out : (j+1)*d.out]
			var s float64
			for k := range g {
				s += g[k] * w[k]
			}
			dx[j] = s
		}
		out[i] = dx
	})
	for i, g := range grad {
		x := d.lastX[i]
		for j, v := range x {
			if v == 0 {
				continue
			}
			gw := d.w.G[j*d.out : (j+1)*d.out]
			for k := range g {
				gw[k] += v * g[k]
			}
		}
		for k := range g {
			d.b.G[k] += g[k]
		}
	}
	return out
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// OutDim implements Layer.
func (d *Dense) OutDim(int) int { return d.out }

// ReLU is the rectified linear activation.
type ReLU struct {
	mask [][]bool
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	r.mask = make([][]bool, len(x))
	for i, row := range x {
		o := make([]float64, len(row))
		m := make([]bool, len(row))
		for j, v := range row {
			if v > 0 {
				o[j] = v
				m[j] = true
			}
		}
		out[i] = o
		r.mask[i] = m
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad [][]float64) [][]float64 {
	out := make([][]float64, len(grad))
	for i, g := range grad {
		o := make([]float64, len(g))
		for j := range g {
			if r.mask[i][j] {
				o[j] = g[j]
			}
		}
		out[i] = o
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// OutDim implements Layer.
func (r *ReLU) OutDim(in int) int { return in }

// Conv is a valid-padding, stride-1 convolution over a (C, D, H, W)
// volume; D == 1 with KD == 1 yields the 2-D case. Rows are flattened in
// C-major, then D, H, W order.
type Conv struct {
	inC, outC  int
	d, h, w    int // input spatial dims
	kd, kh, kw int
	od, oh, ow int
	weight     *Param // [outC][inC][kd][kh][kw]
	bias       *Param
	lastX      [][]float64
}

// NewConv2D builds a 2-D convolution over an h x w single-plane input.
func NewConv2D(inC, outC, h, w, k int, rng *rand.Rand) *Conv {
	return newConv(inC, outC, 1, h, w, 1, k, k, rng)
}

// NewConv3D builds a 3-D convolution over a d x h x w volume.
func NewConv3D(inC, outC, d, h, w, k int, rng *rand.Rand) *Conv {
	return newConv(inC, outC, d, h, w, k, k, k, rng)
}

func newConv(inC, outC, d, h, w, kd, kh, kw int, rng *rand.Rand) *Conv {
	od, oh, ow := d-kd+1, h-kh+1, w-kw+1
	if od < 1 || oh < 1 || ow < 1 {
		panic(fmt.Sprintf("nn: conv kernel %dx%dx%d larger than input %dx%dx%d", kd, kh, kw, d, h, w))
	}
	c := &Conv{
		inC: inC, outC: outC, d: d, h: h, w: w,
		kd: kd, kh: kh, kw: kw, od: od, oh: oh, ow: ow,
		weight: newParam(outC * inC * kd * kh * kw),
		bias:   newParam(outC),
	}
	heInit(c.weight.W, inC*kd*kh*kw, rng)
	return c
}

func (c *Conv) inIdx(ch, z, y, x int) int {
	return ((ch*c.d+z)*c.h+y)*c.w + x
}

func (c *Conv) outIdx(ch, z, y, x int) int {
	return ((ch*c.od+z)*c.oh+y)*c.ow + x
}

func (c *Conv) wIdx(oc, ic, kz, ky, kx int) int {
	return (((oc*c.inC+ic)*c.kd+kz)*c.kh+ky)*c.kw + kx
}

// Forward implements Layer.
func (c *Conv) Forward(x [][]float64) [][]float64 {
	c.lastX = x
	want := c.inC * c.d * c.h * c.w
	out := make([][]float64, len(x))
	parallelFor(len(x), func(i int) {
		row := x[i]
		if len(row) != want {
			panic(fmt.Sprintf("nn: conv expects width %d, got %d", want, len(row)))
		}
		o := make([]float64, c.outC*c.od*c.oh*c.ow)
		for oc := 0; oc < c.outC; oc++ {
			for z := 0; z < c.od; z++ {
				for y := 0; y < c.oh; y++ {
					for xx := 0; xx < c.ow; xx++ {
						acc := c.bias.W[oc]
						for ic := 0; ic < c.inC; ic++ {
							for kz := 0; kz < c.kd; kz++ {
								for ky := 0; ky < c.kh; ky++ {
									for kx := 0; kx < c.kw; kx++ {
										acc += row[c.inIdx(ic, z+kz, y+ky, xx+kx)] *
											c.weight.W[c.wIdx(oc, ic, kz, ky, kx)]
									}
								}
							}
						}
						o[c.outIdx(oc, z, y, xx)] = acc
					}
				}
			}
		}
		out[i] = o
	})
	return out
}

// Backward implements Layer.
func (c *Conv) Backward(grad [][]float64) [][]float64 {
	out := make([][]float64, len(grad))
	parallelFor(len(grad), func(i int) {
		g := grad[i]
		dx := make([]float64, c.inC*c.d*c.h*c.w)
		for oc := 0; oc < c.outC; oc++ {
			for z := 0; z < c.od; z++ {
				for y := 0; y < c.oh; y++ {
					for xx := 0; xx < c.ow; xx++ {
						gv := g[c.outIdx(oc, z, y, xx)]
						if gv == 0 {
							continue
						}
						for ic := 0; ic < c.inC; ic++ {
							for kz := 0; kz < c.kd; kz++ {
								for ky := 0; ky < c.kh; ky++ {
									for kx := 0; kx < c.kw; kx++ {
										dx[c.inIdx(ic, z+kz, y+ky, xx+kx)] +=
											gv * c.weight.W[c.wIdx(oc, ic, kz, ky, kx)]
									}
								}
							}
						}
					}
				}
			}
		}
		out[i] = dx
	})
	// Weight/bias gradients accumulate serially for determinism.
	for i, g := range grad {
		row := c.lastX[i]
		for oc := 0; oc < c.outC; oc++ {
			for z := 0; z < c.od; z++ {
				for y := 0; y < c.oh; y++ {
					for xx := 0; xx < c.ow; xx++ {
						gv := g[c.outIdx(oc, z, y, xx)]
						if gv == 0 {
							continue
						}
						c.bias.G[oc] += gv
						for ic := 0; ic < c.inC; ic++ {
							for kz := 0; kz < c.kd; kz++ {
								for ky := 0; ky < c.kh; ky++ {
									for kx := 0; kx < c.kw; kx++ {
										c.weight.G[c.wIdx(oc, ic, kz, ky, kx)] +=
											gv * row[c.inIdx(ic, z+kz, y+ky, xx+kx)]
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Params implements Layer.
func (c *Conv) Params() []*Param { return []*Param{c.weight, c.bias} }

// OutDim implements Layer.
func (c *Conv) OutDim(int) int { return c.outC * c.od * c.oh * c.ow }
