package nn

import (
	"fmt"
	"math/rand"

	"stencilmart/internal/linalg"
)

// Dense is a fully connected layer: out = x*W + b, one GEMM per
// direction. The weight block is viewed as an (in x out) matrix; the
// backward pass computes input gradients with GemmNT and accumulates
// weight gradients with GemmTNAcc — both bitwise deterministic at any
// worker count.
type Dense struct {
	in, out int
	w, b    *Param
	lastX   *linalg.Matrix
	act, dx *linalg.Matrix // reusable output / input-gradient scratch
}

// NewDense builds a dense layer with He initialization.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{in: in, out: out, w: newParam(in * out), b: newParam(out)}
	heInit(d.w.W, in, rng)
	return d
}

// wMat views the weight block as an (in x out) matrix.
func (d *Dense) wMat() *linalg.Matrix {
	return &linalg.Matrix{Rows: d.in, Cols: d.out, Data: d.w.W}
}

// wGradMat views the weight gradient as an (in x out) matrix.
func (d *Dense) wGradMat() *linalg.Matrix {
	return &linalg.Matrix{Rows: d.in, Cols: d.out, Data: d.w.G}
}

// Forward implements Layer.
func (d *Dense) Forward(x *linalg.Matrix) *linalg.Matrix {
	if x.Cols != d.in {
		panic(fmt.Sprintf("nn: dense expects width %d, got %d", d.in, x.Cols))
	}
	d.lastX = x
	d.act = linalg.Resize(d.act, x.Rows, d.out)
	linalg.Gemm(d.act, x, d.wMat(), 0)
	parallelFor(x.Rows, func(i int) {
		o := d.act.Row(i)
		for k, b := range d.b.W {
			o[k] += b
		}
	})
	return d.act
}

// Backward implements Layer.
func (d *Dense) Backward(grad *linalg.Matrix) *linalg.Matrix {
	if grad.Cols != d.out {
		panic(fmt.Sprintf("nn: dense gradient width %d, want %d", grad.Cols, d.out))
	}
	d.dx = linalg.Resize(d.dx, grad.Rows, d.in)
	linalg.GemmNT(d.dx, grad, d.wMat(), 0)
	linalg.GemmTNAcc(d.wGradMat(), d.lastX, grad, 0)
	linalg.AddColSums(d.b.G, grad, 0)
	return d.dx
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// OutDim implements Layer.
func (d *Dense) OutDim(int) int { return d.out }

// ReLU is the rectified linear activation. Its mask and output buffers
// persist across steps.
type ReLU struct {
	mask    []bool
	act, dx *linalg.Matrix
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *linalg.Matrix) *linalg.Matrix {
	n := len(x.Data)
	r.act = linalg.Resize(r.act, x.Rows, x.Cols)
	if cap(r.mask) < n {
		r.mask = make([]bool, n)
	}
	r.mask = r.mask[:n]
	parallelFor(x.Rows, func(i int) {
		lo, hi := i*x.Cols, (i+1)*x.Cols
		src, dst, mask := x.Data[lo:hi], r.act.Data[lo:hi], r.mask[lo:hi]
		for j, v := range src {
			if v > 0 {
				dst[j], mask[j] = v, true
			} else {
				dst[j], mask[j] = 0, false
			}
		}
	})
	return r.act
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *linalg.Matrix) *linalg.Matrix {
	r.dx = linalg.Resize(r.dx, grad.Rows, grad.Cols)
	parallelFor(grad.Rows, func(i int) {
		lo, hi := i*grad.Cols, (i+1)*grad.Cols
		src, dst, mask := grad.Data[lo:hi], r.dx.Data[lo:hi], r.mask[lo:hi]
		for j, v := range src {
			if mask[j] {
				dst[j] = v
			} else {
				dst[j] = 0
			}
		}
	})
	return r.dx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// OutDim implements Layer.
func (r *ReLU) OutDim(in int) int { return in }

// Conv is a valid-padding, stride-1 convolution over a (C, D, H, W)
// volume; D == 1 with KD == 1 yields the 2-D case. Rows are flattened in
// C-major, then D, H, W order. The layer runs as im2col + GEMM: Forward
// lowers the whole batch into one patch matrix (kept for the backward
// pass) and multiplies it against the weight matrix; Backward recovers
// input gradients through one GEMM plus col2im and weight gradients
// through a single GemmTNAcc over the saved patch matrix.
type Conv struct {
	inC, outC  int
	shape      linalg.ConvShape
	od, oh, ow int
	m, k       int    // output points per channel / patch width
	weight     *Param // [outC][inC][kd][kh][kw]
	bias       *Param

	col     *linalg.Matrix // (n*m x k) patch matrix from the last Forward
	prod    *linalg.Matrix // (n*m x outC) forward GEMM product
	act     *linalg.Matrix // (n x outC*m) channel-major activations
	gcols   *linalg.Matrix // (n*m x outC) transposed output gradients
	colGrad *linalg.Matrix // (n*m x k) patch-space input gradients
	dx      *linalg.Matrix // (n x inLen) input gradients
}

// NewConv2D builds a 2-D convolution over an h x w single-plane input.
func NewConv2D(inC, outC, h, w, k int, rng *rand.Rand) *Conv {
	return newConv(inC, outC, 1, h, w, 1, k, k, rng)
}

// NewConv3D builds a 3-D convolution over a d x h x w volume.
func NewConv3D(inC, outC, d, h, w, k int, rng *rand.Rand) *Conv {
	return newConv(inC, outC, d, h, w, k, k, k, rng)
}

func newConv(inC, outC, d, h, w, kd, kh, kw int, rng *rand.Rand) *Conv {
	shape := linalg.ConvShape{InC: inC, D: d, H: h, W: w, KD: kd, KH: kh, KW: kw}
	if err := shape.Validate(); err != nil {
		panic(fmt.Sprintf("nn: conv kernel %dx%dx%d larger than input %dx%dx%d", kd, kh, kw, d, h, w))
	}
	od, oh, ow := shape.OutDims()
	c := &Conv{
		inC: inC, outC: outC, shape: shape,
		od: od, oh: oh, ow: ow,
		m: shape.OutSpatial(), k: shape.KernelLen(),
		weight: newParam(outC * shape.KernelLen()),
		bias:   newParam(outC),
	}
	heInit(c.weight.W, shape.KernelLen(), rng)
	return c
}

func (c *Conv) inIdx(ch, z, y, x int) int {
	return ((ch*c.shape.D+z)*c.shape.H+y)*c.shape.W + x
}

func (c *Conv) outIdx(ch, z, y, x int) int {
	return ((ch*c.od+z)*c.oh+y)*c.ow + x
}

func (c *Conv) wIdx(oc, ic, kz, ky, kx int) int {
	return (((oc*c.inC+ic)*c.shape.KD+kz)*c.shape.KH+ky)*c.shape.KW + kx
}

// wMat views the weight block as an (outC x patch) matrix — the same
// column order Im2col produces.
func (c *Conv) wMat() *linalg.Matrix {
	return &linalg.Matrix{Rows: c.outC, Cols: c.k, Data: c.weight.W}
}

// wGradMat views the weight gradient as an (outC x patch) matrix.
func (c *Conv) wGradMat() *linalg.Matrix {
	return &linalg.Matrix{Rows: c.outC, Cols: c.k, Data: c.weight.G}
}

// Forward implements Layer.
func (c *Conv) Forward(x *linalg.Matrix) *linalg.Matrix {
	if x.Cols != c.shape.InLen() {
		panic(fmt.Sprintf("nn: conv expects width %d, got %d", c.shape.InLen(), x.Cols))
	}
	n := x.Rows
	c.col = linalg.Resize(c.col, n*c.m, c.k)
	parallelFor(n, func(i int) {
		c.shape.Im2col(x.Row(i), c.col, i*c.m)
	})
	c.prod = linalg.Resize(c.prod, n*c.m, c.outC)
	linalg.GemmNT(c.prod, c.col, c.wMat(), 0)
	// Transpose each sample's (m x outC) product block to the
	// channel-major activation layout, adding the bias.
	c.act = linalg.Resize(c.act, n, c.outC*c.m)
	parallelFor(n, func(i int) {
		o := c.act.Row(i)
		block := c.prod.Data[i*c.m*c.outC : (i+1)*c.m*c.outC]
		for oc := 0; oc < c.outC; oc++ {
			b := c.bias.W[oc]
			dst := o[oc*c.m : (oc+1)*c.m]
			for m := range dst {
				dst[m] = block[m*c.outC+oc] + b
			}
		}
	})
	return c.act
}

// Backward implements Layer.
func (c *Conv) Backward(grad *linalg.Matrix) *linalg.Matrix {
	if grad.Cols != c.outC*c.m {
		panic(fmt.Sprintf("nn: conv gradient width %d, want %d", grad.Cols, c.outC*c.m))
	}
	n := grad.Rows
	// Transpose gradients to (n*m x outC) — the layout every GEMM below
	// consumes.
	c.gcols = linalg.Resize(c.gcols, n*c.m, c.outC)
	parallelFor(n, func(i int) {
		g := grad.Row(i)
		block := c.gcols.Data[i*c.m*c.outC : (i+1)*c.m*c.outC]
		for oc := 0; oc < c.outC; oc++ {
			src := g[oc*c.m : (oc+1)*c.m]
			for m, v := range src {
				block[m*c.outC+oc] = v
			}
		}
	})
	// Input gradients: patch-space gradients in one GEMM, scattered back
	// per sample by the im2col adjoint.
	c.colGrad = linalg.Resize(c.colGrad, n*c.m, c.k)
	linalg.Gemm(c.colGrad, c.gcols, c.wMat(), 0)
	c.dx = linalg.Resize(c.dx, n, c.shape.InLen())
	parallelFor(n, func(i int) {
		dxi := c.dx.Row(i)
		for j := range dxi {
			dxi[j] = 0
		}
		c.shape.Col2im(c.colGrad, i*c.m, dxi)
	})
	// Parameter gradients: one GEMM over the saved patch matrix plus a
	// column-sum reduction, both accumulating deterministically.
	linalg.GemmTNAcc(c.wGradMat(), c.gcols, c.col, 0)
	linalg.AddColSums(c.bias.G, c.gcols, 0)
	return c.dx
}

// Params implements Layer.
func (c *Conv) Params() []*Param { return []*Param{c.weight, c.bias} }

// OutDim implements Layer.
func (c *Conv) OutDim(int) int { return c.outC * c.m }
