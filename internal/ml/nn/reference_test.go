package nn

import (
	"math"
	"math/rand"
	"testing"

	"stencilmart/internal/linalg"
	"stencilmart/internal/testutil"
)

// convCases covers every geometry convStack instantiates (both layers,
// 2-D and 3-D) plus randomized small shapes.
type convCase struct {
	name                           string
	inC, outC, d, h, w, kd, kh, kw int
}

func convCases(rng *rand.Rand) []convCase {
	cases := []convCase{
		{"2d-conv1", 1, 8, 1, 9, 9, 1, 3, 3},
		{"2d-conv2", 8, 16, 1, 7, 7, 1, 3, 3},
		{"3d-conv1", 1, 8, 9, 9, 9, 3, 3, 3},
		{"3d-conv2", 8, 16, 7, 7, 7, 3, 3, 3},
	}
	for i := 0; i < 6; i++ {
		kd, kh, kw := 1+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(3)
		c := convCase{
			name: "rand",
			inC:  1 + rng.Intn(3), outC: 1 + rng.Intn(5),
			d: kd + rng.Intn(4), h: kh + rng.Intn(4), w: kw + rng.Intn(4),
			kd: kd, kh: kh, kw: kw,
		}
		cases = append(cases, c)
	}
	return cases
}

func randMatrix(rows, cols int, rng *rand.Rand) *linalg.Matrix {
	m := linalg.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func maxAbsDiff(a, b []float64) float64 {
	var worst float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestConvMatchesReference checks the im2col+GEMM convolution against the
// direct 7-loop reference on every convStack geometry and randomized
// shapes: activations, input gradients, and parameter gradients all
// within 1e-9.
func TestConvMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const tol = 1e-9
	for _, tc := range convCases(rng) {
		c := newConv(tc.inC, tc.outC, tc.d, tc.h, tc.w, tc.kd, tc.kh, tc.kw, rng)
		n := 1 + rng.Intn(5)
		x := randMatrix(n, c.shape.InLen(), rng)
		// Mix in exact zeros to exercise the zero-skip fast paths.
		for i := range x.Data {
			if rng.Intn(3) == 0 {
				x.Data[i] = 0
			}
		}
		out := c.Forward(x)
		grad := randMatrix(n, c.OutDim(0), rng)
		dx := c.Backward(grad)

		wantW := make([]float64, len(c.weight.G))
		wantB := make([]float64, len(c.bias.G))
		for i := 0; i < n; i++ {
			wantOut := referenceConvForward(c, x.Row(i))
			if d := maxAbsDiff(out.Row(i), wantOut); d > tol {
				t.Errorf("%s: forward row %d off by %g", tc.name, i, d)
			}
			wantDx := referenceConvBackward(c, x.Row(i), grad.Row(i), wantW, wantB)
			if d := maxAbsDiff(dx.Row(i), wantDx); d > tol {
				t.Errorf("%s: input grad row %d off by %g", tc.name, i, d)
			}
		}
		if d := maxAbsDiff(c.weight.G, wantW); d > tol {
			t.Errorf("%s: weight grads off by %g", tc.name, d)
		}
		if d := maxAbsDiff(c.bias.G, wantB); d > tol {
			t.Errorf("%s: bias grads off by %g", tc.name, d)
		}
		c.weight.zeroGrad()
		c.bias.zeroGrad()
	}
}

// TestDenseMatchesReference checks the GEMM dense layer against the
// per-row reference on randomized shapes.
func TestDenseMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const tol = 1e-9
	for trial := 0; trial < 8; trial++ {
		in, out := 1+rng.Intn(40), 1+rng.Intn(20)
		d := NewDense(in, out, rng)
		n := 1 + rng.Intn(6)
		x := randMatrix(n, in, rng)
		for i := range x.Data {
			if rng.Intn(4) == 0 {
				x.Data[i] = 0
			}
		}
		act := d.Forward(x)
		grad := randMatrix(n, out, rng)
		dx := d.Backward(grad)

		wantW := make([]float64, len(d.w.G))
		wantB := make([]float64, len(d.b.G))
		for i := 0; i < n; i++ {
			wantAct := referenceDenseForward(d, x.Row(i))
			if diff := maxAbsDiff(act.Row(i), wantAct); diff > tol {
				t.Errorf("trial %d: forward row %d off by %g", trial, i, diff)
			}
			wantDx := referenceDenseBackward(d, x.Row(i), grad.Row(i), wantW, wantB)
			if diff := maxAbsDiff(dx.Row(i), wantDx); diff > tol {
				t.Errorf("trial %d: input grad row %d off by %g", trial, i, diff)
			}
		}
		if diff := maxAbsDiff(d.w.G, wantW); diff > tol {
			t.Errorf("trial %d: weight grads off by %g", trial, diff)
		}
		if diff := maxAbsDiff(d.b.G, wantB); diff > tol {
			t.Errorf("trial %d: bias grads off by %g", trial, diff)
		}
	}
}

// trainSmallConvMLP trains a small ConvMLP and returns its flattened
// weights, for the cross-GOMAXPROCS determinism check.
func trainSmallConvMLP(t *testing.T) []float64 {
	t.Helper()
	reg, err := NewConvMLP(2, 5, TrainConfig{Epochs: 2, Batch: 8, LR: 1e-3, Seed: 13}, 17)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	inDim := reg.Net.layers[0].(*TwoBranch).splitAt + 5
	var x [][]float64
	var y []float64
	for i := 0; i < 32; i++ {
		row := make([]float64, inDim)
		for j := range row {
			if rng.Intn(2) == 0 {
				row[j] = rng.Float64()
			}
		}
		x = append(x, row)
		y = append(y, rng.NormFloat64())
	}
	if err := reg.FitRegressor(x, y); err != nil {
		t.Fatal(err)
	}
	var flat []float64
	for _, p := range reg.Net.Params() {
		flat = append(flat, p.W...)
	}
	return flat
}

// TestTrainingBitwiseDeterministicAcrossGOMAXPROCS trains the same
// ConvMLP end to end at GOMAXPROCS 1, 2, and 8 and requires bitwise
// identical weights — the whole-stack determinism guarantee (GEMM tiles,
// im2col, transposes, Adam blocks).
func TestTrainingBitwiseDeterministicAcrossGOMAXPROCS(t *testing.T) {
	var base []float64
	testutil.WithGOMAXPROCS(t, 1, func() {
		base = trainSmallConvMLP(t)
	})
	for _, procs := range []int{2, 8} {
		var got []float64
		testutil.WithGOMAXPROCS(t, procs, func() {
			got = trainSmallConvMLP(t)
		})
		if len(got) != len(base) {
			t.Fatalf("GOMAXPROCS=%d: %d weights, want %d", procs, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("GOMAXPROCS=%d: weight %d = %v, want %v (not bitwise identical)",
					procs, i, got[i], base[i])
			}
		}
	}
}
