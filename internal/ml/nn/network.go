package nn

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"stencilmart/internal/linalg"
	"stencilmart/internal/par"
)

// Adam is the Adam optimizer over a set of parameter blocks.
type Adam struct {
	lr, beta1, beta2, eps float64
	m, v                  [][]float64
	t                     int
	params                []*Param
}

// NewAdam prepares Adam state for the given parameters. lr <= 0 defaults
// to 1e-3.
func NewAdam(params []*Param, lr float64) *Adam {
	if lr <= 0 {
		lr = 1e-3
	}
	a := &Adam{lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, params: params}
	for _, p := range params {
		a.m = append(a.m, make([]float64, len(p.W)))
		a.v = append(a.v, make([]float64, len(p.W)))
	}
	return a
}

// Step applies one Adam update from the accumulated gradients, then
// clears them. Parameter blocks update independently — each block is
// touched by exactly one worker — so the update fans out on the shared
// pool and stays deterministic by construction.
func (a *Adam) Step() {
	a.t++
	c1 := 1 - math.Pow(a.beta1, float64(a.t))
	c2 := 1 - math.Pow(a.beta2, float64(a.t))
	// The closure never fails and the context is never cancelled, so the
	// pool error is structurally nil.
	_ = par.ForEach(context.Background(), len(a.params), 0, func(pi int) error {
		p := a.params[pi]
		m, v := a.m[pi], a.v[pi]
		for i := range p.W {
			g := p.G[i]
			m[i] = a.beta1*m[i] + (1-a.beta1)*g
			v[i] = a.beta2*v[i] + (1-a.beta2)*g*g
			p.W[i] -= a.lr * (m[i] / c1) / (math.Sqrt(v[i]/c2) + a.eps)
		}
		p.zeroGrad()
		return nil
	})
}

// Network is a sequential layer stack.
type Network struct {
	layers []Layer
}

// NewNetwork builds a sequential network.
func NewNetwork(layers ...Layer) *Network { return &Network{layers: layers} }

// Forward runs the batch through every layer. The result is scratch
// owned by the final layer (or x itself for an empty network).
func (n *Network) Forward(x *linalg.Matrix) *linalg.Matrix {
	for _, l := range n.layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates output gradients through every layer.
func (n *Network) Backward(grad *linalg.Matrix) *linalg.Matrix {
	for i := len(n.layers) - 1; i >= 0; i-- {
		grad = n.layers[i].Backward(grad)
	}
	return grad
}

// Params collects all trainable parameters.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.layers {
		out = append(out, l.Params()...)
	}
	return out
}

// NumParams returns the total trainable scalar count.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.W)
	}
	return total
}

// TrainConfig controls minibatch training.
type TrainConfig struct {
	// Epochs is the number of full passes; 0 means 30.
	Epochs int
	// Batch is the minibatch size; 0 means 50.
	Batch int
	// LR is the Adam learning rate; 0 means 1e-3.
	LR float64
	// Seed shuffles minibatches deterministically.
	Seed int64
}

func (c *TrainConfig) setDefaults() {
	if c.Epochs == 0 {
		c.Epochs = 30
	}
	if c.Batch == 0 {
		c.Batch = 50
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
}

// softmaxInto writes softmax probabilities for one score row into dst.
func softmaxInto(dst, scores []float64) {
	maxv := scores[0]
	for _, s := range scores[1:] {
		if s > maxv {
			maxv = s
		}
	}
	var sum float64
	for i, s := range scores {
		dst[i] = math.Exp(s - maxv)
		sum += dst[i]
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// softmaxRow returns softmax probabilities for one score row.
func softmaxRow(scores []float64) []float64 {
	out := make([]float64, len(scores))
	softmaxInto(out, scores)
	return out
}

// trainLoop is the shared minibatch loop; lossGrad writes the output
// gradients for a batch of outputs and target indices into grad. The
// batch and gradient matrices are reused across steps, so once every
// layer's scratch is warm a step performs no batch-sized allocations.
func trainLoop(net *Network, x [][]float64, cfg TrainConfig,
	lossGrad func(out *linalg.Matrix, batchIdx []int, grad *linalg.Matrix)) {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	adam := NewAdam(net.Params(), cfg.LR)
	n := len(x)
	width := len(x[0])
	var batch, grad *linalg.Matrix
	for e := 0; e < cfg.Epochs; e++ {
		perm := rng.Perm(n)
		for lo := 0; lo < n; lo += cfg.Batch {
			hi := lo + cfg.Batch
			if hi > n {
				hi = n
			}
			idx := perm[lo:hi]
			batch = packRows(batch, x, idx, width)
			out := net.Forward(batch)
			grad = linalg.Resize(grad, out.Rows, out.Cols)
			lossGrad(out, idx, grad)
			net.Backward(grad)
			adam.Step()
		}
	}
}

// Classifier wraps a network with a softmax cross-entropy head; it
// implements ml.Classifier and ml.BatchClassifier. One Classifier must
// not be used from multiple goroutines concurrently (forward scratch is
// shared); distinct instances are independent.
type Classifier struct {
	Net     *Network
	Cfg     TrainConfig
	classes int
	in      *linalg.Matrix // reusable inference input
}

// FitClassifier implements ml.Classifier.
func (c *Classifier) FitClassifier(x [][]float64, y []int, numClasses int) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("nn: classifier fit with %d rows, %d labels", len(x), len(y))
	}
	if numClasses < 2 {
		return fmt.Errorf("nn: classifier needs >= 2 classes, got %d", numClasses)
	}
	c.classes = numClasses
	trainLoop(c.Net, x, c.Cfg, func(out *linalg.Matrix, idx []int, grad *linalg.Matrix) {
		scale := 1 / float64(out.Rows)
		for i := 0; i < out.Rows; i++ {
			g := grad.Row(i)
			softmaxInto(g, out.Row(i))
			for k := range g {
				g[k] *= scale
			}
			g[y[idx[i]]] -= scale
		}
	})
	return nil
}

// PredictProbaBatch implements ml.BatchClassifier: one forward pass for
// the whole row set.
func (c *Classifier) PredictProbaBatch(rows [][]float64) [][]float64 {
	if len(rows) == 0 {
		return nil
	}
	c.in = packAll(c.in, rows)
	out := c.Net.Forward(c.in)
	probs := make([][]float64, out.Rows)
	for i := range probs {
		probs[i] = softmaxRow(out.Row(i))
	}
	return probs
}

// PredictProba implements ml.Classifier.
func (c *Classifier) PredictProba(row []float64) []float64 {
	return c.PredictProbaBatch([][]float64{row})[0]
}

// PredictClass implements ml.Classifier.
func (c *Classifier) PredictClass(row []float64) int {
	p := c.PredictProba(row)
	best := 0
	for k := range p {
		if p[k] > p[best] {
			best = k
		}
	}
	return best
}

// Regressor wraps a network with an MSE head; the final layer must output
// one value. It implements ml.Regressor and ml.BatchRegressor. Like
// Classifier, one instance is not safe for concurrent use.
type Regressor struct {
	Net *Network
	Cfg TrainConfig
	in  *linalg.Matrix // reusable inference input
}

// FitRegressor implements ml.Regressor.
func (r *Regressor) FitRegressor(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("nn: regressor fit with %d rows, %d targets", len(x), len(y))
	}
	trainLoop(r.Net, x, r.Cfg, func(out *linalg.Matrix, idx []int, grad *linalg.Matrix) {
		scale := 2 / float64(out.Rows)
		for i := 0; i < out.Rows; i++ {
			grad.Row(i)[0] = (out.Row(i)[0] - y[idx[i]]) * scale
		}
	})
	return nil
}

// PredictValueBatch implements ml.BatchRegressor: one forward pass for
// the whole row set.
func (r *Regressor) PredictValueBatch(rows [][]float64) []float64 {
	if len(rows) == 0 {
		return nil
	}
	r.in = packAll(r.in, rows)
	out := r.Net.Forward(r.in)
	vals := make([]float64, out.Rows)
	for i := range vals {
		vals[i] = out.Row(i)[0]
	}
	return vals
}

// PredictValue implements ml.Regressor.
func (r *Regressor) PredictValue(row []float64) float64 {
	return r.PredictValueBatch([][]float64{row})[0]
}
