package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Adam is the Adam optimizer over a set of parameter blocks.
type Adam struct {
	lr, beta1, beta2, eps float64
	m, v                  [][]float64
	t                     int
	params                []*Param
}

// NewAdam prepares Adam state for the given parameters. lr <= 0 defaults
// to 1e-3.
func NewAdam(params []*Param, lr float64) *Adam {
	if lr <= 0 {
		lr = 1e-3
	}
	a := &Adam{lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, params: params}
	for _, p := range params {
		a.m = append(a.m, make([]float64, len(p.W)))
		a.v = append(a.v, make([]float64, len(p.W)))
	}
	return a
}

// Step applies one Adam update from the accumulated gradients, then
// clears them.
func (a *Adam) Step() {
	a.t++
	c1 := 1 - math.Pow(a.beta1, float64(a.t))
	c2 := 1 - math.Pow(a.beta2, float64(a.t))
	for pi, p := range a.params {
		m, v := a.m[pi], a.v[pi]
		for i := range p.W {
			g := p.G[i]
			m[i] = a.beta1*m[i] + (1-a.beta1)*g
			v[i] = a.beta2*v[i] + (1-a.beta2)*g*g
			p.W[i] -= a.lr * (m[i] / c1) / (math.Sqrt(v[i]/c2) + a.eps)
		}
		p.zeroGrad()
	}
}

// Network is a sequential layer stack.
type Network struct {
	layers []Layer
}

// NewNetwork builds a sequential network.
func NewNetwork(layers ...Layer) *Network { return &Network{layers: layers} }

// Forward runs the batch through every layer.
func (n *Network) Forward(x [][]float64) [][]float64 {
	for _, l := range n.layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates output gradients through every layer.
func (n *Network) Backward(grad [][]float64) [][]float64 {
	for i := len(n.layers) - 1; i >= 0; i-- {
		grad = n.layers[i].Backward(grad)
	}
	return grad
}

// Params collects all trainable parameters.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.layers {
		out = append(out, l.Params()...)
	}
	return out
}

// NumParams returns the total trainable scalar count.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.W)
	}
	return total
}

// TrainConfig controls minibatch training.
type TrainConfig struct {
	// Epochs is the number of full passes; 0 means 30.
	Epochs int
	// Batch is the minibatch size; 0 means 50.
	Batch int
	// LR is the Adam learning rate; 0 means 1e-3.
	LR float64
	// Seed shuffles minibatches deterministically.
	Seed int64
}

func (c *TrainConfig) setDefaults() {
	if c.Epochs == 0 {
		c.Epochs = 30
	}
	if c.Batch == 0 {
		c.Batch = 50
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
}

// softmaxRow returns softmax probabilities for one score row.
func softmaxRow(scores []float64) []float64 {
	out := make([]float64, len(scores))
	maxv := scores[0]
	for _, s := range scores[1:] {
		if s > maxv {
			maxv = s
		}
	}
	var sum float64
	for i, s := range scores {
		out[i] = math.Exp(s - maxv)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// trainLoop is the shared minibatch loop; lossGrad maps a batch of
// outputs and target indices to output gradients.
func trainLoop(net *Network, x [][]float64, cfg TrainConfig,
	lossGrad func(out [][]float64, batchIdx []int) [][]float64) {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	adam := NewAdam(net.Params(), cfg.LR)
	n := len(x)
	for e := 0; e < cfg.Epochs; e++ {
		perm := rng.Perm(n)
		for lo := 0; lo < n; lo += cfg.Batch {
			hi := lo + cfg.Batch
			if hi > n {
				hi = n
			}
			idx := perm[lo:hi]
			batch := make([][]float64, len(idx))
			for i, p := range idx {
				batch[i] = x[p]
			}
			out := net.Forward(batch)
			net.Backward(lossGrad(out, idx))
			adam.Step()
		}
	}
}

// Classifier wraps a network with a softmax cross-entropy head; it
// implements ml.Classifier.
type Classifier struct {
	Net     *Network
	Cfg     TrainConfig
	classes int
}

// FitClassifier implements ml.Classifier.
func (c *Classifier) FitClassifier(x [][]float64, y []int, numClasses int) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("nn: classifier fit with %d rows, %d labels", len(x), len(y))
	}
	if numClasses < 2 {
		return fmt.Errorf("nn: classifier needs >= 2 classes, got %d", numClasses)
	}
	c.classes = numClasses
	trainLoop(c.Net, x, c.Cfg, func(out [][]float64, idx []int) [][]float64 {
		grads := make([][]float64, len(out))
		scale := 1 / float64(len(out))
		for i, row := range out {
			p := softmaxRow(row)
			g := make([]float64, len(p))
			for k := range p {
				g[k] = p[k] * scale
			}
			g[y[idx[i]]] -= scale
			grads[i] = g
		}
		return grads
	})
	return nil
}

// PredictProba implements ml.Classifier.
func (c *Classifier) PredictProba(row []float64) []float64 {
	out := c.Net.Forward([][]float64{row})
	return softmaxRow(out[0])
}

// PredictClass implements ml.Classifier.
func (c *Classifier) PredictClass(row []float64) int {
	p := c.PredictProba(row)
	best := 0
	for k := range p {
		if p[k] > p[best] {
			best = k
		}
	}
	return best
}

// Regressor wraps a network with an MSE head; the final layer must output
// one value. It implements ml.Regressor.
type Regressor struct {
	Net *Network
	Cfg TrainConfig
}

// FitRegressor implements ml.Regressor.
func (r *Regressor) FitRegressor(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("nn: regressor fit with %d rows, %d targets", len(x), len(y))
	}
	trainLoop(r.Net, x, r.Cfg, func(out [][]float64, idx []int) [][]float64 {
		grads := make([][]float64, len(out))
		scale := 2 / float64(len(out))
		for i, row := range out {
			grads[i] = []float64{(row[0] - y[idx[i]]) * scale}
		}
		return grads
	})
	return nil
}

// PredictValue implements ml.Regressor.
func (r *Regressor) PredictValue(row []float64) float64 {
	return r.Net.Forward([][]float64{row})[0][0]
}
