package nn

import "fmt"

// WeightSnapshot returns a deep copy of every trainable parameter block's
// weights, in the network's canonical layer order. Together with the
// builder arguments that shaped the network (recorded by the caller's
// checkpoint), this is the full trained state: rebuilding the same
// architecture and loading the snapshot reproduces predictions bitwise.
func (n *Network) WeightSnapshot() [][]float64 {
	params := n.Params()
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = append([]float64(nil), p.W...)
	}
	return out
}

// LoadWeights copies the snapshot into the network's parameter blocks.
// The block count and every block length must match the architecture
// exactly; a payload whose layer shapes disagree with the declared
// schema fails here, never producing a silently-wrong predictor.
func (n *Network) LoadWeights(ws [][]float64) error {
	params := n.Params()
	if len(ws) != len(params) {
		return fmt.Errorf("nn: snapshot has %d parameter blocks, network has %d", len(ws), len(params))
	}
	for i, p := range params {
		if len(ws[i]) != len(p.W) {
			return fmt.Errorf("nn: parameter block %d has %d weights, network layer expects %d", i, len(ws[i]), len(p.W))
		}
	}
	for i, p := range params {
		copy(p.W, ws[i])
	}
	return nil
}

// SetClasses restores the fitted class count on a rehydrated classifier
// (FitClassifier normally records it).
func (c *Classifier) SetClasses(n int) { c.classes = n }

// Classes returns the fitted class count.
func (c *Classifier) Classes() int { return c.classes }
