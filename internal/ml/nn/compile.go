package nn

import (
	"fmt"
	"math"

	"stencilmart/internal/linalg"
)

// This file is the float32 inference lane of the neural networks: a
// trained Classifier/Regressor compiles once (at checkpoint load /
// registry publish time) into forward-only layers over float32 weight
// snapshots, scoring batches through the serial f32 GEMM kernels into
// caller-provided buffers. Quantization happens exactly once, at compile
// time: every weight and bias rounds to the nearest float32; rows arrive
// already converted by the caller. Each compiled layer owns grow-only
// scratch reused across batches, so a warm forward pass allocates
// nothing. Compiled models share nothing with their float64 source and,
// like it, are not safe for concurrent use on one instance.

// compiledLayer is one forward-only f32 layer. forward returns
// layer-owned scratch valid until the next call.
type compiledLayer interface {
	forward(x *linalg.MatrixF32) *linalg.MatrixF32
}

// compiledNetwork is a sequential compiledLayer stack.
type compiledNetwork struct {
	layers []compiledLayer
}

func (n *compiledNetwork) forward(x *linalg.MatrixF32) *linalg.MatrixF32 {
	for _, l := range n.layers {
		x = l.forward(x)
	}
	return x
}

// compiledDense mirrors Dense.Forward: one GEMM plus a bias add.
type compiledDense struct {
	in, out int
	w       *linalg.MatrixF32 // (in x out)
	b       []float32
	act     *linalg.MatrixF32
}

func (d *compiledDense) forward(x *linalg.MatrixF32) *linalg.MatrixF32 {
	if x.Cols != d.in {
		panic(fmt.Sprintf("nn: dense expects width %d, got %d", d.in, x.Cols))
	}
	d.act = linalg.ResizeF32(d.act, x.Rows, d.out)
	linalg.GemmF32(d.act, x, d.w)
	for i := 0; i < x.Rows; i++ {
		o := d.act.Row(i)
		for k, b := range d.b {
			o[k] += b
		}
	}
	return d.act
}

// compiledReLU mirrors ReLU.Forward without the backward mask.
type compiledReLU struct {
	act *linalg.MatrixF32
}

func (r *compiledReLU) forward(x *linalg.MatrixF32) *linalg.MatrixF32 {
	r.act = linalg.ResizeF32(r.act, x.Rows, x.Cols)
	for j, v := range x.Data {
		if v > 0 {
			r.act.Data[j] = v
		} else {
			r.act.Data[j] = 0
		}
	}
	return r.act
}

// compiledConv mirrors Conv.Forward: im2col, one GEMM against the
// (outC x patch) weight matrix, then the per-sample transpose to
// channel-major activations with the bias added.
type compiledConv struct {
	outC  int
	shape linalg.ConvShape
	m, k  int
	w     *linalg.MatrixF32 // (outC x k)
	b     []float32

	col, prod, act *linalg.MatrixF32
}

func (c *compiledConv) forward(x *linalg.MatrixF32) *linalg.MatrixF32 {
	if x.Cols != c.shape.InLen() {
		panic(fmt.Sprintf("nn: conv expects width %d, got %d", c.shape.InLen(), x.Cols))
	}
	n := x.Rows
	c.col = linalg.ResizeF32(c.col, n*c.m, c.k)
	for i := 0; i < n; i++ {
		c.shape.Im2colF32(x.Row(i), c.col, i*c.m)
	}
	c.prod = linalg.ResizeF32(c.prod, n*c.m, c.outC)
	linalg.GemmNTF32(c.prod, c.col, c.w)
	c.act = linalg.ResizeF32(c.act, n, c.outC*c.m)
	for i := 0; i < n; i++ {
		o := c.act.Row(i)
		block := c.prod.Data[i*c.m*c.outC : (i+1)*c.m*c.outC]
		for oc := 0; oc < c.outC; oc++ {
			b := c.b[oc]
			dst := o[oc*c.m : (oc+1)*c.m]
			for m := range dst {
				dst[m] = block[m*c.outC+oc] + b
			}
		}
	}
	return c.act
}

// compiledTwoBranch mirrors TwoBranch.Forward: split, both branches,
// concatenate.
type compiledTwoBranch struct {
	splitAt int
	a, b    *compiledNetwork

	xa, xb, act *linalg.MatrixF32
}

func (t *compiledTwoBranch) forward(x *linalg.MatrixF32) *linalg.MatrixF32 {
	if x.Cols < t.splitAt {
		panic(fmt.Sprintf("nn: two-branch expects >= %d features, got %d", t.splitAt, x.Cols))
	}
	n := x.Rows
	t.xa = linalg.ResizeF32(t.xa, n, t.splitAt)
	t.xb = linalg.ResizeF32(t.xb, n, x.Cols-t.splitAt)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		copy(t.xa.Row(i), row[:t.splitAt])
		copy(t.xb.Row(i), row[t.splitAt:])
	}
	oa := t.a.forward(t.xa)
	ob := t.b.forward(t.xb)
	t.act = linalg.ResizeF32(t.act, n, oa.Cols+ob.Cols)
	for i := 0; i < n; i++ {
		o := t.act.Row(i)
		copy(o, oa.Row(i))
		copy(o[oa.Cols:], ob.Row(i))
	}
	return t.act
}

// quantize converts one float64 weight block to a fresh float32 slice.
func quantize(w []float64) []float32 {
	out := make([]float32, len(w))
	for i, v := range w {
		out[i] = float32(v)
	}
	return out
}

// compileLayer snapshots one trained layer into its forward-only f32
// form.
func compileLayer(l Layer) (compiledLayer, error) {
	switch t := l.(type) {
	case *Dense:
		return &compiledDense{
			in: t.in, out: t.out,
			w: &linalg.MatrixF32{Rows: t.in, Cols: t.out, Data: quantize(t.w.W)},
			b: quantize(t.b.W),
		}, nil
	case *ReLU:
		return &compiledReLU{}, nil
	case *Conv:
		return &compiledConv{
			outC: t.outC, shape: t.shape, m: t.m, k: t.k,
			w: &linalg.MatrixF32{Rows: t.outC, Cols: t.k, Data: quantize(t.weight.W)},
			b: quantize(t.bias.W),
		}, nil
	case *TwoBranch:
		a, err := compileNetwork(t.a)
		if err != nil {
			return nil, err
		}
		b, err := compileNetwork(t.b)
		if err != nil {
			return nil, err
		}
		return &compiledTwoBranch{splitAt: t.splitAt, a: a, b: b}, nil
	default:
		return nil, fmt.Errorf("nn: cannot compile layer %T for the f32 lane", l)
	}
}

func compileNetwork(n *Network) (*compiledNetwork, error) {
	out := &compiledNetwork{layers: make([]compiledLayer, 0, len(n.layers))}
	for _, l := range n.layers {
		cl, err := compileLayer(l)
		if err != nil {
			return nil, err
		}
		out.layers = append(out.layers, cl)
	}
	return out, nil
}

// packAllF32 packs rows into the reusable input matrix.
func packAllF32(m *linalg.MatrixF32, rows [][]float32) *linalg.MatrixF32 {
	m = linalg.ResizeF32(m, len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("nn: f32 row %d width %d, want %d", i, len(r), m.Cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// CompiledClassifier is the float32 inference form of a trained
// Classifier; it implements ml.ClassifierF32.
type CompiledClassifier struct {
	net     *compiledNetwork
	classes int
	in      *linalg.MatrixF32
}

// CompileF32 snapshots the trained classifier's weights into a compiled
// f32 forward pass. The receiver is unchanged and stays the float64
// reference lane.
func (c *Classifier) CompileF32() (*CompiledClassifier, error) {
	if c.classes < 2 {
		return nil, fmt.Errorf("nn: compile of classifier with %d classes", c.classes)
	}
	net, err := compileNetwork(c.Net)
	if err != nil {
		return nil, err
	}
	return &CompiledClassifier{net: net, classes: c.classes}, nil
}

// Classes implements ml.ClassifierF32.
func (c *CompiledClassifier) Classes() int { return c.classes }

// PredictProbaBatchF32 implements ml.ClassifierF32: one forward pass for
// the whole row set, softmax per row into the flat
// (len(rows) x Classes()) out buffer. Warm calls allocate nothing.
func (c *CompiledClassifier) PredictProbaBatchF32(rows [][]float32, out []float32) {
	if len(out) != len(rows)*c.classes {
		panic(fmt.Sprintf("nn: f32 proba out %d, want %d", len(out), len(rows)*c.classes))
	}
	if len(rows) == 0 {
		return
	}
	c.in = packAllF32(c.in, rows)
	scores := c.net.forward(c.in)
	if scores.Cols != c.classes {
		panic(fmt.Sprintf("nn: f32 classifier emits %d scores for %d classes", scores.Cols, c.classes))
	}
	for i := range rows {
		softmaxF32Into(out[i*c.classes:(i+1)*c.classes], scores.Row(i))
	}
}

// softmaxF32Into is softmaxInto's operation sequence in float32; the
// exponential is evaluated in float64 (no f32 math.Exp in the stdlib)
// and rounded once on the way back.
func softmaxF32Into(dst, scores []float32) {
	maxv := scores[0]
	for _, s := range scores[1:] {
		if s > maxv {
			maxv = s
		}
	}
	var sum float32
	for i, s := range scores {
		dst[i] = float32(math.Exp(float64(s - maxv)))
		sum += dst[i]
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// CompiledRegressor is the float32 inference form of a trained Regressor;
// it implements ml.RegressorF32.
type CompiledRegressor struct {
	net *compiledNetwork
	in  *linalg.MatrixF32
}

// CompileF32 snapshots the trained regressor's weights into a compiled
// f32 forward pass. The receiver is unchanged and stays the float64
// reference lane.
func (r *Regressor) CompileF32() (*CompiledRegressor, error) {
	net, err := compileNetwork(r.Net)
	if err != nil {
		return nil, err
	}
	return &CompiledRegressor{net: net}, nil
}

// PredictValueBatchF32 implements ml.RegressorF32: one forward pass, the
// scalar head copied per row into out (len(rows)). Warm calls allocate
// nothing.
func (r *CompiledRegressor) PredictValueBatchF32(rows [][]float32, out []float32) {
	if len(out) != len(rows) {
		panic(fmt.Sprintf("nn: f32 regression out %d, want %d", len(out), len(rows)))
	}
	if len(rows) == 0 {
		return
	}
	r.in = packAllF32(r.in, rows)
	vals := r.net.forward(r.in)
	for i := range rows {
		out[i] = vals.Row(i)[0]
	}
}
