package nn

import (
	"math"
	"testing"

	"stencilmart/internal/tensor"
)

func rowsToF32(rows [][]float64) [][]float32 {
	out := make([][]float32, len(rows))
	for i, r := range rows {
		f := make([]float32, len(r))
		for j, v := range r {
			f[j] = float32(v)
		}
		out[i] = f
	}
	return out
}

// TestCompiledClassifierMatchesF64 holds the differential contract for
// every classifier architecture the framework trains: decisions
// identical away from f64 decision ties, probabilities close
// everywhere. The ConvNet case covers conv + two-branch-free stacks;
// FcNet covers the pure dense stack.
func TestCompiledClassifierMatchesF64(t *testing.T) {
	const classes = 4
	cfg := TrainConfig{Epochs: 4, Batch: 16, LR: 2e-3, Seed: 1}

	build := map[string]func() (*Classifier, [][]float64){
		"convnet2d": func() (*Classifier, [][]float64) {
			x, y := benchClassData(48, tensor.Side*tensor.Side, classes, 31)
			cls, err := NewConvNet(2, classes, cfg, 1)
			if err != nil {
				t.Fatal(err)
			}
			if err := cls.FitClassifier(x, y, classes); err != nil {
				t.Fatal(err)
			}
			return cls, x
		},
		"fcnet": func() (*Classifier, [][]float64) {
			width := tensor.Side*tensor.Side + tensor.NumFeatures
			x, y := benchClassData(48, width, classes, 32)
			cls, err := NewFcNet(width, classes, 2, 32, cfg, 2)
			if err != nil {
				t.Fatal(err)
			}
			if err := cls.FitClassifier(x, y, classes); err != nil {
				t.Fatal(err)
			}
			return cls, x
		},
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			cls, x := mk()
			c, err := cls.CompileF32()
			if err != nil {
				t.Fatal(err)
			}
			if c.Classes() != classes {
				t.Fatalf("compiled classes = %d, want %d", c.Classes(), classes)
			}
			want := cls.PredictProbaBatch(x)
			rows := rowsToF32(x)
			out := make([]float32, len(rows)*classes)
			c.PredictProbaBatchF32(rows, out)
			const tieEps = 1e-6
			for i, p64 := range want {
				p32 := out[i*classes : (i+1)*classes]
				best, gap := 0, math.Inf(1)
				for k := range p64 {
					if p64[k] > p64[best] {
						best = k
					}
					if d := math.Abs(float64(p32[k]) - p64[k]); d > 2e-3 {
						t.Fatalf("row %d class %d: f32 proba %g vs f64 %g", i, k, p32[k], p64[k])
					}
				}
				for k := range p64 {
					if k != best && p64[best]-p64[k] < gap {
						gap = p64[best] - p64[k]
					}
				}
				if gap < tieEps {
					continue
				}
				got := 0
				for k := range p32 {
					if p32[k] > p32[got] {
						got = k
					}
				}
				if got != best {
					t.Fatalf("row %d: f32 decision %d vs f64 %d (gap %g)", i, got, best, gap)
				}
			}
		})
	}
}

// TestCompiledRegressorMatchesF64 covers the regression architectures:
// MLP (dense-only) and ConvMLP (two-branch conv + dense).
func TestCompiledRegressorMatchesF64(t *testing.T) {
	cfg := TrainConfig{Epochs: 3, Batch: 32, LR: 1e-3, Seed: 1}

	build := map[string]func() (*Regressor, [][]float64){
		"mlp": func() (*Regressor, [][]float64) {
			x, y := benchRegData(64, 40, 41)
			reg, err := NewMLP(40, 3, 32, cfg, 3)
			if err != nil {
				t.Fatal(err)
			}
			if err := reg.FitRegressor(x, y); err != nil {
				t.Fatal(err)
			}
			return reg, x
		},
		"convmlp2d": func() (*Regressor, [][]float64) {
			const featDim = 28
			x, y := benchRegData(48, tensor.Side*tensor.Side+featDim, 42)
			reg, err := NewConvMLP(2, featDim, cfg, 4)
			if err != nil {
				t.Fatal(err)
			}
			if err := reg.FitRegressor(x, y); err != nil {
				t.Fatal(err)
			}
			return reg, x
		},
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			reg, x := mk()
			c, err := reg.CompileF32()
			if err != nil {
				t.Fatal(err)
			}
			want := reg.PredictValueBatch(x)
			rows := rowsToF32(x)
			out := make([]float32, len(rows))
			c.PredictValueBatchF32(rows, out)
			for i := range want {
				diff := math.Abs(float64(out[i]) - want[i])
				if diff > 5e-3*math.Max(1, math.Abs(want[i])) {
					t.Fatalf("row %d: f32 %g vs f64 %g (diff %g)", i, out[i], want[i], diff)
				}
			}
		})
	}
}

// TestCompiledBatchInvariance pins row independence of the compiled
// forward: a row scores bitwise the same alone and inside a batch (the
// property the serving lane's dedup and GOMAXPROCS stability rely on).
func TestCompiledBatchInvariance(t *testing.T) {
	const classes = 4
	x, y := benchClassData(24, tensor.Side*tensor.Side, classes, 33)
	cls, err := NewConvNet(2, classes, TrainConfig{Epochs: 2, Batch: 8, LR: 2e-3, Seed: 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := cls.FitClassifier(x, y, classes); err != nil {
		t.Fatal(err)
	}
	c, err := cls.CompileF32()
	if err != nil {
		t.Fatal(err)
	}
	rows := rowsToF32(x)
	batch := make([]float32, len(rows)*classes)
	c.PredictProbaBatchF32(rows, batch)
	single := make([]float32, classes)
	for i := range rows {
		c.PredictProbaBatchF32(rows[i:i+1], single)
		for k := range single {
			if single[k] != batch[i*classes+k] {
				t.Fatalf("row %d class %d: alone %g vs batched %g", i, k, single[k], batch[i*classes+k])
			}
		}
	}
}

// TestAllocGateNNF32 pins the zero-allocation contract of the compiled
// forward passes once layer scratch is warm.
func TestAllocGateNNF32(t *testing.T) {
	const classes = 4
	x, y := benchClassData(32, tensor.Side*tensor.Side, classes, 34)
	cls, err := NewConvNet(2, classes, TrainConfig{Epochs: 2, Batch: 16, LR: 2e-3, Seed: 1}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := cls.FitClassifier(x, y, classes); err != nil {
		t.Fatal(err)
	}
	cc, err := cls.CompileF32()
	if err != nil {
		t.Fatal(err)
	}
	rows := rowsToF32(x)
	out := make([]float32, len(rows)*classes)
	cc.PredictProbaBatchF32(rows, out) // warm the layer scratch
	if n := testing.AllocsPerRun(10, func() { cc.PredictProbaBatchF32(rows, out) }); n != 0 {
		t.Errorf("CompiledClassifier allocs/op = %g, want 0", n)
	}

	const featDim = 28
	xr, yr := benchRegData(32, tensor.Side*tensor.Side+featDim, 35)
	reg, err := NewConvMLP(2, featDim, TrainConfig{Epochs: 2, Batch: 16, LR: 1e-3, Seed: 1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.FitRegressor(xr, yr); err != nil {
		t.Fatal(err)
	}
	cr, err := reg.CompileF32()
	if err != nil {
		t.Fatal(err)
	}
	rrows := rowsToF32(xr)
	vout := make([]float32, len(rrows))
	cr.PredictValueBatchF32(rrows, vout) // warm the layer scratch
	if n := testing.AllocsPerRun(10, func() { cr.PredictValueBatchF32(rrows, vout) }); n != 0 {
		t.Errorf("CompiledRegressor allocs/op = %g, want 0", n)
	}
}

// BenchmarkLaneNNScore compares the float64 reference networks against
// their compiled f32 forms on a serving-sized batch — the
// `make bench-lanes` microbenchmark pair for the network side.
func BenchmarkLaneNNScore(b *testing.B) {
	const classes = 4
	x, y := benchClassData(32, tensor.Side*tensor.Side*tensor.Side, classes, 36)
	cls, err := NewConvNet(3, classes, TrainConfig{Epochs: 1, Batch: 16, LR: 2e-3, Seed: 1}, 8)
	if err != nil {
		b.Fatal(err)
	}
	if err := cls.FitClassifier(x, y, classes); err != nil {
		b.Fatal(err)
	}
	cc, err := cls.CompileF32()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("convnet3d/f64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = cls.PredictProbaBatch(x)
		}
	})
	b.Run("convnet3d/f32", func(b *testing.B) {
		b.ReportAllocs()
		rows := rowsToF32(x)
		out := make([]float32, len(rows)*classes)
		cc.PredictProbaBatchF32(rows, out)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cc.PredictProbaBatchF32(rows, out)
		}
	})

	const featDim = 28
	xr, yr := benchRegData(32, tensor.Side*tensor.Side*tensor.Side+featDim, 37)
	reg, err := NewConvMLP(3, featDim, TrainConfig{Epochs: 1, Batch: 16, LR: 1e-3, Seed: 1}, 9)
	if err != nil {
		b.Fatal(err)
	}
	if err := reg.FitRegressor(xr, yr); err != nil {
		b.Fatal(err)
	}
	cr, err := reg.CompileF32()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("convmlp3d/f64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = reg.PredictValueBatch(xr)
		}
	})
	b.Run("convmlp3d/f32", func(b *testing.B) {
		b.ReportAllocs()
		rows := rowsToF32(xr)
		out := make([]float32, len(rows))
		cr.PredictValueBatchF32(rows, out)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cr.PredictValueBatchF32(rows, out)
		}
	})
}
