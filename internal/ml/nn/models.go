package nn

import (
	"fmt"
	"math/rand"

	"stencilmart/internal/linalg"
	"stencilmart/internal/tensor"
)

// TwoBranch routes the first splitAt features through branch A (e.g. a
// convolutional stack over the assigned tensor) and the remainder through
// branch B (e.g. identity over the parameter/hardware features), then
// concatenates the outputs — the ConvMLP merge of Fig. 8. Split and
// concat buffers are layer scratch, reused across steps.
type TwoBranch struct {
	splitAt int
	a, b    *Network
	aOut    int

	xa, xb  *linalg.Matrix // branch inputs
	ga, gb  *linalg.Matrix // branch output gradients
	act, dx *linalg.Matrix // concatenated output / input gradient
}

// NewTwoBranch builds the layer; aOut is branch A's flat output width.
func NewTwoBranch(splitAt int, a, b *Network, aOut int) *TwoBranch {
	return &TwoBranch{splitAt: splitAt, a: a, b: b, aOut: aOut}
}

// Forward implements Layer.
func (t *TwoBranch) Forward(x *linalg.Matrix) *linalg.Matrix {
	if x.Cols < t.splitAt {
		panic(fmt.Sprintf("nn: two-branch expects >= %d features, got %d", t.splitAt, x.Cols))
	}
	n := x.Rows
	t.xa = linalg.Resize(t.xa, n, t.splitAt)
	t.xb = linalg.Resize(t.xb, n, x.Cols-t.splitAt)
	parallelFor(n, func(i int) {
		row := x.Row(i)
		copy(t.xa.Row(i), row[:t.splitAt])
		copy(t.xb.Row(i), row[t.splitAt:])
	})
	oa := t.a.Forward(t.xa)
	ob := t.b.Forward(t.xb)
	t.act = linalg.Resize(t.act, n, oa.Cols+ob.Cols)
	parallelFor(n, func(i int) {
		o := t.act.Row(i)
		copy(o, oa.Row(i))
		copy(o[oa.Cols:], ob.Row(i))
	})
	return t.act
}

// Backward implements Layer.
func (t *TwoBranch) Backward(grad *linalg.Matrix) *linalg.Matrix {
	n := grad.Rows
	t.ga = linalg.Resize(t.ga, n, t.aOut)
	t.gb = linalg.Resize(t.gb, n, grad.Cols-t.aOut)
	parallelFor(n, func(i int) {
		g := grad.Row(i)
		copy(t.ga.Row(i), g[:t.aOut])
		copy(t.gb.Row(i), g[t.aOut:])
	})
	da := t.a.Backward(t.ga)
	db := t.b.Backward(t.gb)
	t.dx = linalg.Resize(t.dx, n, da.Cols+db.Cols)
	parallelFor(n, func(i int) {
		o := t.dx.Row(i)
		copy(o, da.Row(i))
		copy(o[da.Cols:], db.Row(i))
	})
	return t.dx
}

// Params implements Layer.
func (t *TwoBranch) Params() []*Param {
	return append(t.a.Params(), t.b.Params()...)
}

// OutDim implements Layer.
func (t *TwoBranch) OutDim(in int) int {
	return t.aOut + (in - t.splitAt) // identity-width branch B by default
}

// convStack builds the two-convolution feature extractor over the
// assigned tensor (Figs. 7 and 8): 3^d kernels, 8 then 16 filters.
func convStack(dims int, rng *rand.Rand) (*Network, int) {
	side := tensor.Side
	if dims == 2 {
		c1 := NewConv2D(1, 8, side, side, 3, rng)
		c2 := NewConv2D(8, 16, side-2, side-2, 3, rng)
		out := c2.OutDim(0)
		return NewNetwork(c1, NewReLU(), c2, NewReLU()), out
	}
	c1 := NewConv3D(1, 8, side, side, side, 3, rng)
	c2 := NewConv3D(8, 16, side-2, side-2, side-2, 3, rng)
	out := c2.OutDim(0)
	return NewNetwork(c1, NewReLU(), c2, NewReLU()), out
}

// NewConvNet builds the paper's ConvNet classifier (Fig. 7): two
// convolutional layers over the binary tensor followed by fully connected
// layers emitting per-OC-class scores.
func NewConvNet(dims, classes int, cfg TrainConfig, seed int64) (*Classifier, error) {
	if dims != 2 && dims != 3 {
		return nil, fmt.Errorf("nn: ConvNet dims must be 2 or 3, got %d", dims)
	}
	if classes < 2 {
		return nil, fmt.Errorf("nn: ConvNet needs >= 2 classes")
	}
	rng := rand.New(rand.NewSource(seed))
	conv, convOut := convStack(dims, rng)
	layers := append([]Layer{}, conv.layers...)
	layers = append(layers,
		NewDense(convOut, 64, rng), NewReLU(),
		NewDense(64, classes, rng),
	)
	return &Classifier{Net: NewNetwork(layers...), Cfg: cfg}, nil
}

// NewFcNet builds the paper's FcNet classifier: fully connected layers
// only, consuming the flattened tensor plus feature vector.
func NewFcNet(inDim, classes, hiddenLayers, width int, cfg TrainConfig, seed int64) (*Classifier, error) {
	if inDim < 1 || classes < 2 || hiddenLayers < 1 || width < 1 {
		return nil, fmt.Errorf("nn: invalid FcNet shape in=%d classes=%d layers=%d width=%d",
			inDim, classes, hiddenLayers, width)
	}
	rng := rand.New(rand.NewSource(seed))
	var layers []Layer
	prev := inDim
	for i := 0; i < hiddenLayers; i++ {
		layers = append(layers, NewDense(prev, width, rng), NewReLU())
		prev = width
	}
	layers = append(layers, NewDense(prev, classes, rng))
	return &Classifier{Net: NewNetwork(layers...), Cfg: cfg}, nil
}

// NewMLP builds the paper's MLP regressor (Sec. IV-E): an input layer,
// hiddenLayers hidden layers of the given width, and a scalar output.
func NewMLP(inDim, hiddenLayers, width int, cfg TrainConfig, seed int64) (*Regressor, error) {
	if inDim < 1 || hiddenLayers < 1 || width < 1 {
		return nil, fmt.Errorf("nn: invalid MLP shape in=%d layers=%d width=%d", inDim, hiddenLayers, width)
	}
	rng := rand.New(rand.NewSource(seed))
	var layers []Layer
	prev := inDim
	for i := 0; i < hiddenLayers; i++ {
		layers = append(layers, NewDense(prev, width, rng), NewReLU())
		prev = width
	}
	layers = append(layers, NewDense(prev, 1, rng))
	return &Regressor{Net: NewNetwork(layers...), Cfg: cfg}, nil
}

// NewConvMLP builds the paper's ConvMLP regressor (Fig. 8): a CNN over
// the assigned tensor merged with an MLP over the parameter-setting and
// hardware features, joined by fully connected layers into a scalar
// prediction. featDim is the width of the non-tensor feature tail.
func NewConvMLP(dims, featDim int, cfg TrainConfig, seed int64) (*Regressor, error) {
	if dims != 2 && dims != 3 {
		return nil, fmt.Errorf("nn: ConvMLP dims must be 2 or 3, got %d", dims)
	}
	if featDim < 1 {
		return nil, fmt.Errorf("nn: ConvMLP needs a non-empty feature tail")
	}
	rng := rand.New(rand.NewSource(seed))
	tensorDim := tensor.Side * tensor.Side
	if dims == 3 {
		tensorDim *= tensor.Side
	}
	conv, convOut := convStack(dims, rng)
	featNet := NewNetwork(NewDense(featDim, 32, rng), NewReLU())
	branch := NewTwoBranch(tensorDim, conv, featNet, convOut)
	head := []Layer{
		branch,
		NewDense(convOut+32, 64, rng), NewReLU(),
		NewDense(64, 1, rng),
	}
	return &Regressor{Net: NewNetwork(head...), Cfg: cfg}, nil
}
