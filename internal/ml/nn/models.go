package nn

import (
	"fmt"
	"math/rand"

	"stencilmart/internal/tensor"
)

// TwoBranch routes the first splitAt features through branch A (e.g. a
// convolutional stack over the assigned tensor) and the remainder through
// branch B (e.g. identity over the parameter/hardware features), then
// concatenates the outputs — the ConvMLP merge of Fig. 8.
type TwoBranch struct {
	splitAt int
	a, b    *Network
	aOut    int
}

// NewTwoBranch builds the layer; aOut is branch A's flat output width.
func NewTwoBranch(splitAt int, a, b *Network, aOut int) *TwoBranch {
	return &TwoBranch{splitAt: splitAt, a: a, b: b, aOut: aOut}
}

// Forward implements Layer.
func (t *TwoBranch) Forward(x [][]float64) [][]float64 {
	xa := make([][]float64, len(x))
	xb := make([][]float64, len(x))
	for i, row := range x {
		if len(row) < t.splitAt {
			panic(fmt.Sprintf("nn: two-branch expects >= %d features, got %d", t.splitAt, len(row)))
		}
		xa[i] = row[:t.splitAt]
		xb[i] = row[t.splitAt:]
	}
	oa := t.a.Forward(xa)
	ob := t.b.Forward(xb)
	out := make([][]float64, len(x))
	for i := range out {
		row := make([]float64, len(oa[i])+len(ob[i]))
		copy(row, oa[i])
		copy(row[len(oa[i]):], ob[i])
		out[i] = row
	}
	return out
}

// Backward implements Layer.
func (t *TwoBranch) Backward(grad [][]float64) [][]float64 {
	ga := make([][]float64, len(grad))
	gb := make([][]float64, len(grad))
	for i, g := range grad {
		ga[i] = g[:t.aOut]
		gb[i] = g[t.aOut:]
	}
	da := t.a.Backward(ga)
	db := t.b.Backward(gb)
	out := make([][]float64, len(grad))
	for i := range out {
		row := make([]float64, len(da[i])+len(db[i]))
		copy(row, da[i])
		copy(row[len(da[i]):], db[i])
		out[i] = row
	}
	return out
}

// Params implements Layer.
func (t *TwoBranch) Params() []*Param {
	return append(t.a.Params(), t.b.Params()...)
}

// OutDim implements Layer.
func (t *TwoBranch) OutDim(in int) int {
	return t.aOut + (in - t.splitAt) // identity-width branch B by default
}

// convStack builds the two-convolution feature extractor over the
// assigned tensor (Figs. 7 and 8): 3^d kernels, 8 then 16 filters.
func convStack(dims int, rng *rand.Rand) (*Network, int) {
	side := tensor.Side
	if dims == 2 {
		c1 := NewConv2D(1, 8, side, side, 3, rng)
		c2 := NewConv2D(8, 16, side-2, side-2, 3, rng)
		out := c2.OutDim(0)
		return NewNetwork(c1, NewReLU(), c2, NewReLU()), out
	}
	c1 := NewConv3D(1, 8, side, side, side, 3, rng)
	c2 := NewConv3D(8, 16, side-2, side-2, side-2, 3, rng)
	out := c2.OutDim(0)
	return NewNetwork(c1, NewReLU(), c2, NewReLU()), out
}

// NewConvNet builds the paper's ConvNet classifier (Fig. 7): two
// convolutional layers over the binary tensor followed by fully connected
// layers emitting per-OC-class scores.
func NewConvNet(dims, classes int, cfg TrainConfig, seed int64) (*Classifier, error) {
	if dims != 2 && dims != 3 {
		return nil, fmt.Errorf("nn: ConvNet dims must be 2 or 3, got %d", dims)
	}
	if classes < 2 {
		return nil, fmt.Errorf("nn: ConvNet needs >= 2 classes")
	}
	rng := rand.New(rand.NewSource(seed))
	conv, convOut := convStack(dims, rng)
	layers := append([]Layer{}, conv.layers...)
	layers = append(layers,
		NewDense(convOut, 64, rng), NewReLU(),
		NewDense(64, classes, rng),
	)
	return &Classifier{Net: NewNetwork(layers...), Cfg: cfg}, nil
}

// NewFcNet builds the paper's FcNet classifier: fully connected layers
// only, consuming the flattened tensor plus feature vector.
func NewFcNet(inDim, classes, hiddenLayers, width int, cfg TrainConfig, seed int64) (*Classifier, error) {
	if inDim < 1 || classes < 2 || hiddenLayers < 1 || width < 1 {
		return nil, fmt.Errorf("nn: invalid FcNet shape in=%d classes=%d layers=%d width=%d",
			inDim, classes, hiddenLayers, width)
	}
	rng := rand.New(rand.NewSource(seed))
	var layers []Layer
	prev := inDim
	for i := 0; i < hiddenLayers; i++ {
		layers = append(layers, NewDense(prev, width, rng), NewReLU())
		prev = width
	}
	layers = append(layers, NewDense(prev, classes, rng))
	return &Classifier{Net: NewNetwork(layers...), Cfg: cfg}, nil
}

// NewMLP builds the paper's MLP regressor (Sec. IV-E): an input layer,
// hiddenLayers hidden layers of the given width, and a scalar output.
func NewMLP(inDim, hiddenLayers, width int, cfg TrainConfig, seed int64) (*Regressor, error) {
	if inDim < 1 || hiddenLayers < 1 || width < 1 {
		return nil, fmt.Errorf("nn: invalid MLP shape in=%d layers=%d width=%d", inDim, hiddenLayers, width)
	}
	rng := rand.New(rand.NewSource(seed))
	var layers []Layer
	prev := inDim
	for i := 0; i < hiddenLayers; i++ {
		layers = append(layers, NewDense(prev, width, rng), NewReLU())
		prev = width
	}
	layers = append(layers, NewDense(prev, 1, rng))
	return &Regressor{Net: NewNetwork(layers...), Cfg: cfg}, nil
}

// NewConvMLP builds the paper's ConvMLP regressor (Fig. 8): a CNN over
// the assigned tensor merged with an MLP over the parameter-setting and
// hardware features, joined by fully connected layers into a scalar
// prediction. featDim is the width of the non-tensor feature tail.
func NewConvMLP(dims, featDim int, cfg TrainConfig, seed int64) (*Regressor, error) {
	if dims != 2 && dims != 3 {
		return nil, fmt.Errorf("nn: ConvMLP dims must be 2 or 3, got %d", dims)
	}
	if featDim < 1 {
		return nil, fmt.Errorf("nn: ConvMLP needs a non-empty feature tail")
	}
	rng := rand.New(rand.NewSource(seed))
	tensorDim := tensor.Side * tensor.Side
	if dims == 3 {
		tensorDim *= tensor.Side
	}
	conv, convOut := convStack(dims, rng)
	featNet := NewNetwork(NewDense(featDim, 32, rng), NewReLU())
	branch := NewTwoBranch(tensorDim, conv, featNet, convOut)
	head := []Layer{
		branch,
		NewDense(convOut+32, 64, rng), NewReLU(),
		NewDense(64, 1, rng),
	}
	return &Regressor{Net: NewNetwork(head...), Cfg: cfg}, nil
}
