// Package nn is a from-scratch minibatch neural-network framework — the
// stdlib-only stand-in for the TensorFlow models in the paper. It provides
// dense and 2-D/3-D convolutional layers, ReLU, softmax cross-entropy and
// MSE losses, the Adam optimizer, and builders for the paper's four
// architectures: ConvNet and FcNet (classification, Sec. IV-D), MLP and
// ConvMLP (regression, Sec. IV-E).
//
// Batches are flat row-major linalg.Matrix values and the heavy layers
// (Dense, Conv) lower onto the internal/linalg GEMM kernels: convolutions
// run as im2col + GEMM and every layer reuses per-layer scratch buffers
// across steps, so a training step allocates nothing proportional to the
// batch once buffers are warm. All parallelism — GEMM tiles, per-row
// transforms, Adam parameter blocks — preserves the pipeline's bitwise
// determinism contract: each output element is produced by exactly one
// worker with a fixed accumulation order. A trained model's Forward /
// Predict paths share those scratch buffers, so one model must not be
// called from multiple goroutines concurrently (distinct models are
// independent, which is how the CV folds parallelize).
package nn

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"stencilmart/internal/linalg"
)

// Param is one trainable parameter block with its gradient accumulator.
type Param struct {
	W []float64
	G []float64
}

func newParam(n int) *Param {
	return &Param{W: make([]float64, n), G: make([]float64, n)}
}

// zeroGrad clears the gradient accumulator.
func (p *Param) zeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// Layer is one differentiable network stage operating on flat batch
// matrices (one row per sample). Returned matrices are layer-owned
// scratch, valid until the next call on the same layer.
type Layer interface {
	// Forward consumes a batch and returns the activations, caching
	// whatever Backward needs.
	Forward(x *linalg.Matrix) *linalg.Matrix
	// Backward consumes dLoss/dOut, accumulates parameter gradients, and
	// returns dLoss/dIn.
	Backward(grad *linalg.Matrix) *linalg.Matrix
	// Params returns the trainable parameters (nil for stateless layers).
	Params() []*Param
	// OutDim returns the flat output width given the input width.
	OutDim(in int) int
}

// heInit fills a weight slice with He-normal values for fanIn inputs.
func heInit(w []float64, fanIn int, rng *rand.Rand) {
	std := 1.0
	if fanIn > 0 {
		std = math.Sqrt(2.0 / float64(fanIn))
	}
	for i := range w {
		w[i] = rng.NormFloat64() * std
	}
}

// packRows copies the selected corpus rows into the reusable batch
// matrix, validating widths.
func packRows(dst *linalg.Matrix, x [][]float64, idx []int, width int) *linalg.Matrix {
	dst = linalg.Resize(dst, len(idx), width)
	for i, p := range idx {
		if len(x[p]) != width {
			panic(fmt.Sprintf("nn: row %d width %d, want %d", p, len(x[p]), width))
		}
		copy(dst.Row(i), x[p])
	}
	return dst
}

// packAll copies every row into the reusable batch matrix.
func packAll(dst *linalg.Matrix, rows [][]float64) *linalg.Matrix {
	dst = linalg.Resize(dst, len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != dst.Cols {
			panic(fmt.Sprintf("nn: row %d width %d, want %d", i, len(r), dst.Cols))
		}
		copy(dst.Row(i), r)
	}
	return dst
}

// parallelFor runs f over [0, n) split across GOMAXPROCS goroutines; it
// falls back to a serial loop for small n. Each index is processed by
// exactly one goroutine, so writes partitioned by index stay
// deterministic.
func parallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if n < 4 || workers < 2 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		go func(lo int) {
			defer wg.Done()
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				f(i)
			}
		}(w * chunk)
	}
	wg.Wait()
}
