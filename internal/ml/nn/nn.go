// Package nn is a from-scratch minibatch neural-network framework — the
// stdlib-only stand-in for the TensorFlow models in the paper. It provides
// dense and 2-D/3-D convolutional layers, ReLU, softmax cross-entropy and
// MSE losses, the Adam optimizer, and builders for the paper's four
// architectures: ConvNet and FcNet (classification, Sec. IV-D), MLP and
// ConvMLP (regression, Sec. IV-E).
package nn

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Param is one trainable parameter block with its gradient accumulator.
type Param struct {
	W []float64
	G []float64
}

func newParam(n int) *Param {
	return &Param{W: make([]float64, n), G: make([]float64, n)}
}

// zeroGrad clears the gradient accumulator.
func (p *Param) zeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// Layer is one differentiable network stage operating on batches of flat
// rows.
type Layer interface {
	// Forward consumes a batch and returns the activations, caching
	// whatever Backward needs.
	Forward(x [][]float64) [][]float64
	// Backward consumes dLoss/dOut, accumulates parameter gradients, and
	// returns dLoss/dIn.
	Backward(grad [][]float64) [][]float64
	// Params returns the trainable parameters (nil for stateless layers).
	Params() []*Param
	// OutDim returns the flat output width given the input width.
	OutDim(in int) int
}

// heInit fills a weight slice with He-normal values for fanIn inputs.
func heInit(w []float64, fanIn int, rng *rand.Rand) {
	std := 1.0
	if fanIn > 0 {
		std = math.Sqrt(2.0 / float64(fanIn))
	}
	for i := range w {
		w[i] = rng.NormFloat64() * std
	}
}

// parallelFor runs f over [0, n) split across GOMAXPROCS goroutines; it
// falls back to a serial loop for small n.
func parallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if n < 4 || workers < 2 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		go func(lo int) {
			defer wg.Done()
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				f(i)
			}
		}(w * chunk)
	}
	wg.Wait()
}
