package nn

import (
	"math/rand"
	"testing"

	"stencilmart/internal/tensor"
)

// Training benchmarks sized like one CV fold of the bench preset: the
// tensor side is the real 9 (2*MaxOrder+1), the epoch counts are small
// fixed numbers so before/after comparisons divide out to per-epoch cost.

func benchClassData(n, width, classes int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		row := make([]float64, width)
		for j := 0; j < width/8; j++ {
			row[rng.Intn(width)] = 1
		}
		x[i] = row
		y[i] = i % classes
	}
	return x, y
}

func benchRegData(n, width int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, width)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
		y[i] = rng.Float64()
	}
	return x, y
}

// BenchmarkConvNetTrain2D trains the paper's 2-D ConvNet classifier for 5
// epochs on 48 tensors — the end-to-end unit the Fig. 9 CV folds repeat.
func BenchmarkConvNetTrain2D(b *testing.B) {
	x, y := benchClassData(48, tensor.Side*tensor.Side, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cls, err := NewConvNet(2, 4, TrainConfig{Epochs: 5, Batch: 16, LR: 2e-3, Seed: 1}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := cls.FitClassifier(x, y, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvNetTrain3D is the 3-D variant — the dominant cost of the
// network benchmarks (side^3 = 729 inputs through two 3^3 convolutions).
func BenchmarkConvNetTrain3D(b *testing.B) {
	x, y := benchClassData(48, tensor.Side*tensor.Side*tensor.Side, 4, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cls, err := NewConvNet(3, 4, TrainConfig{Epochs: 5, Batch: 16, LR: 2e-3, Seed: 1}, 2)
		if err != nil {
			b.Fatal(err)
		}
		if err := cls.FitClassifier(x, y, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvMLPTrain3D trains the two-branch ConvMLP regressor for 2
// epochs on 64 instances — the per-epoch unit that bounds the Fig. 12
// ConvMLP budget.
func BenchmarkConvMLPTrain3D(b *testing.B) {
	const featDim = 24
	x, y := benchRegData(64, tensor.Side*tensor.Side*tensor.Side+featDim, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg, err := NewConvMLP(3, featDim, TrainConfig{Epochs: 2, Batch: 64, LR: 1e-3, Seed: 1}, 3)
		if err != nil {
			b.Fatal(err)
		}
		if err := reg.FitRegressor(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// benchConvForward benchmarks one batched forward pass through a conv
// layer, optionally through the naive direct-loop reference instead of
// the im2col+GEMM path.
func benchConvForward(b *testing.B, dims, batch int, naive bool) {
	rng := rand.New(rand.NewSource(5))
	var c *Conv
	if dims == 2 {
		c = NewConv2D(1, 8, tensor.Side, tensor.Side, 3, rng)
	} else {
		c = NewConv3D(1, 8, tensor.Side, tensor.Side, tensor.Side, 3, rng)
	}
	x := randMatrix(batch, c.shape.InLen(), rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if naive {
			for r := 0; r < batch; r++ {
				referenceConvForward(c, x.Row(r))
			}
		} else {
			c.Forward(x)
		}
	}
}

// BenchmarkConvForward2D measures the im2col+GEMM 2-D convolution on a
// 16-sample batch of 9x9 tensors (convStack layer 1).
func BenchmarkConvForward2D(b *testing.B) { benchConvForward(b, 2, 16, false) }

// BenchmarkConvForward2DNaive is the retired direct-loop path, kept as
// the speedup baseline.
func BenchmarkConvForward2DNaive(b *testing.B) { benchConvForward(b, 2, 16, true) }

// BenchmarkConvForward3D measures the im2col+GEMM 3-D convolution on a
// 16-sample batch of 9x9x9 tensors.
func BenchmarkConvForward3D(b *testing.B) { benchConvForward(b, 3, 16, false) }

// BenchmarkConvForward3DNaive is the retired direct-loop 3-D path.
func BenchmarkConvForward3DNaive(b *testing.B) { benchConvForward(b, 3, 16, true) }

// BenchmarkDenseTrain trains a pure fully connected stack (the FcNet/MLP
// shape) — isolates the dense-layer path.
func BenchmarkDenseTrain(b *testing.B) {
	x, y := benchRegData(256, 64, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg, err := NewMLP(64, 4, 64, TrainConfig{Epochs: 5, Batch: 64, LR: 1e-3, Seed: 1}, 4)
		if err != nil {
			b.Fatal(err)
		}
		if err := reg.FitRegressor(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
