package nn

// The pre-GEMM layer implementations, kept verbatim as unexported
// reference oracles: the direct 7-deep convolution loops and the per-row
// dense products the im2col+GEMM path replaced. The differential suite
// (reference_test.go) asserts the production kernels match these within
// 1e-9 on randomized shapes, and the naive benchmarks measure the
// speedup the lowering buys.

// referenceConvForward computes one sample's direct convolution.
func referenceConvForward(c *Conv, row []float64) []float64 {
	o := make([]float64, c.outC*c.od*c.oh*c.ow)
	for oc := 0; oc < c.outC; oc++ {
		for z := 0; z < c.od; z++ {
			for y := 0; y < c.oh; y++ {
				for xx := 0; xx < c.ow; xx++ {
					acc := c.bias.W[oc]
					for ic := 0; ic < c.inC; ic++ {
						for kz := 0; kz < c.shape.KD; kz++ {
							for ky := 0; ky < c.shape.KH; ky++ {
								for kx := 0; kx < c.shape.KW; kx++ {
									acc += row[c.inIdx(ic, z+kz, y+ky, xx+kx)] *
										c.weight.W[c.wIdx(oc, ic, kz, ky, kx)]
								}
							}
						}
					}
					o[c.outIdx(oc, z, y, xx)] = acc
				}
			}
		}
	}
	return o
}

// referenceConvBackward computes one sample's direct input gradient and
// accumulates the weight/bias gradients into wGrad and bGrad.
func referenceConvBackward(c *Conv, row, g []float64, wGrad, bGrad []float64) []float64 {
	dx := make([]float64, c.shape.InLen())
	for oc := 0; oc < c.outC; oc++ {
		for z := 0; z < c.od; z++ {
			for y := 0; y < c.oh; y++ {
				for xx := 0; xx < c.ow; xx++ {
					gv := g[c.outIdx(oc, z, y, xx)]
					if gv == 0 {
						continue
					}
					bGrad[oc] += gv
					for ic := 0; ic < c.inC; ic++ {
						for kz := 0; kz < c.shape.KD; kz++ {
							for ky := 0; ky < c.shape.KH; ky++ {
								for kx := 0; kx < c.shape.KW; kx++ {
									dx[c.inIdx(ic, z+kz, y+ky, xx+kx)] +=
										gv * c.weight.W[c.wIdx(oc, ic, kz, ky, kx)]
									wGrad[c.wIdx(oc, ic, kz, ky, kx)] +=
										gv * row[c.inIdx(ic, z+kz, y+ky, xx+kx)]
								}
							}
						}
					}
				}
			}
		}
	}
	return dx
}

// referenceDenseForward computes one sample's dense product row*W + b.
func referenceDenseForward(d *Dense, row []float64) []float64 {
	o := make([]float64, d.out)
	copy(o, d.b.W)
	for j, v := range row {
		if v == 0 {
			continue
		}
		w := d.w.W[j*d.out : (j+1)*d.out]
		for k := range o {
			o[k] += v * w[k]
		}
	}
	return o
}

// referenceDenseBackward computes one sample's dense input gradient and
// accumulates the weight/bias gradients into wGrad and bGrad.
func referenceDenseBackward(d *Dense, row, g []float64, wGrad, bGrad []float64) []float64 {
	dx := make([]float64, d.in)
	for j := range dx {
		w := d.w.W[j*d.out : (j+1)*d.out]
		var s float64
		for k := range g {
			s += g[k] * w[k]
		}
		dx[j] = s
	}
	for j, v := range row {
		if v == 0 {
			continue
		}
		gw := wGrad[j*d.out : (j+1)*d.out]
		for k := range g {
			gw[k] += v * g[k]
		}
	}
	for k := range g {
		bGrad[k] += g[k]
	}
	return dx
}
