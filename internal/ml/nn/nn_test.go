package nn

import (
	"math"
	"math/rand"
	"testing"

	"stencilmart/internal/linalg"
	"stencilmart/internal/tensor"
)

// row1 wraps a single sample as a 1-row batch matrix.
func row1(x []float64) *linalg.Matrix {
	return linalg.FromRows([][]float64{x})
}

// numericGradCheck compares analytic input gradients against central
// finite differences for a scalar loss L = sum(out^2)/2.
func numericGradCheck(t *testing.T, layer Layer, in []float64, tol float64) {
	t.Helper()
	forward := func(x []float64) float64 {
		out := layer.Forward(row1(x)).Row(0)
		var s float64
		for _, v := range out {
			s += v * v / 2
		}
		return s
	}
	out := layer.Forward(row1(in)).Row(0)
	grad := make([]float64, len(out))
	copy(grad, out) // dL/dout = out
	analytic := append([]float64(nil), layer.Backward(row1(grad)).Row(0)...)

	const eps = 1e-5
	for j := range in {
		orig := in[j]
		x := append([]float64(nil), in...)
		x[j] = orig + eps
		up := forward(x)
		x[j] = orig - eps
		down := forward(x)
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-analytic[j]) > tol*(1+math.Abs(numeric)) {
			t.Fatalf("input grad %d: analytic %g vs numeric %g", j, analytic[j], numeric)
		}
	}
}

func TestDenseGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(5, 3, rng)
	in := make([]float64, 5)
	for i := range in {
		in[i] = rng.NormFloat64()
	}
	numericGradCheck(t, d, in, 1e-4)
}

func TestConv2DGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewConv2D(1, 2, 5, 5, 3, rng)
	in := make([]float64, 25)
	for i := range in {
		in[i] = rng.NormFloat64()
	}
	numericGradCheck(t, c, in, 1e-4)
}

func TestConv3DGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewConv3D(1, 2, 4, 4, 4, 3, rng)
	in := make([]float64, 64)
	for i := range in {
		in[i] = rng.NormFloat64()
	}
	numericGradCheck(t, c, in, 1e-4)
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU()
	out := r.Forward(row1([]float64{-1, 0, 2}))
	if out.At(0, 0) != 0 || out.At(0, 1) != 0 || out.At(0, 2) != 2 {
		t.Errorf("ReLU forward = %v", out.Row(0))
	}
	g := r.Backward(row1([]float64{5, 5, 5}))
	if g.At(0, 0) != 0 || g.At(0, 1) != 0 || g.At(0, 2) != 5 {
		t.Errorf("ReLU backward = %v", g.Row(0))
	}
}

func TestDenseWeightGradients(t *testing.T) {
	// One row, identity-like check: for out = x*W + b,
	// dW[j][k] = x[j] * g[k] and db = g.
	rng := rand.New(rand.NewSource(4))
	d := NewDense(2, 2, rng)
	x := []float64{3, -2}
	d.Forward(row1(x))
	d.Backward(row1([]float64{1, 10}))
	wantW := []float64{3, 30, -2, -20}
	for i, w := range wantW {
		if math.Abs(d.w.G[i]-w) > 1e-12 {
			t.Errorf("dW[%d] = %g, want %g", i, d.w.G[i], w)
		}
	}
	if d.b.G[0] != 1 || d.b.G[1] != 10 {
		t.Errorf("db = %v", d.b.G)
	}
}

func TestAdamReducesQuadratic(t *testing.T) {
	p := newParam(1)
	p.W[0] = 5
	a := NewAdam([]*Param{p}, 0.1)
	for i := 0; i < 500; i++ {
		p.G[0] = 2 * p.W[0] // d/dw of w^2
		a.Step()
	}
	if math.Abs(p.W[0]) > 0.05 {
		t.Errorf("Adam failed to minimize: w = %g", p.W[0])
	}
}

func TestClassifierLearnsBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []int
	centers := [][]float64{{0, 0}, {3, 0}, {0, 3}}
	for i := 0; i < 240; i++ {
		k := i % 3
		x = append(x, []float64{
			centers[k][0] + rng.NormFloat64()*0.4,
			centers[k][1] + rng.NormFloat64()*0.4,
		})
		y = append(y, k)
	}
	cls, err := NewFcNet(2, 3, 2, 16, TrainConfig{Epochs: 60, Batch: 32, LR: 5e-3, Seed: 1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := cls.FitClassifier(x, y, 3); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := range x {
		if cls.PredictClass(x[i]) == y[i] {
			hits++
		}
	}
	if acc := float64(hits) / float64(len(x)); acc < 0.95 {
		t.Errorf("FcNet blob accuracy %.3f < 0.95", acc)
	}
	p := cls.PredictProba(x[0])
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %g", sum)
	}
}

func TestBatchPredictionsMatchSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var x [][]float64
	var yc []int
	var yr []float64
	for i := 0; i < 60; i++ {
		x = append(x, []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()})
		yc = append(yc, i%2)
		yr = append(yr, rng.NormFloat64())
	}
	cls, err := NewFcNet(3, 2, 1, 8, TrainConfig{Epochs: 5, Batch: 16, Seed: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := cls.FitClassifier(x, yc, 2); err != nil {
		t.Fatal(err)
	}
	batch := cls.PredictProbaBatch(x)
	for i := range x {
		single := cls.PredictProba(x[i])
		for k := range single {
			if batch[i][k] != single[k] {
				t.Fatalf("proba[%d][%d]: batch %g vs single %g", i, k, batch[i][k], single[k])
			}
		}
	}
	reg, err := NewMLP(3, 1, 8, TrainConfig{Epochs: 5, Batch: 16, Seed: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.FitRegressor(x, yr); err != nil {
		t.Fatal(err)
	}
	vals := reg.PredictValueBatch(x)
	for i := range x {
		if single := reg.PredictValue(x[i]); vals[i] != single {
			t.Fatalf("value[%d]: batch %g vs single %g", i, vals[i], single)
		}
	}
	if got := cls.PredictProbaBatch(nil); got != nil {
		t.Errorf("empty batch probas = %v", got)
	}
	if got := reg.PredictValueBatch(nil); got != nil {
		t.Errorf("empty batch values = %v", got)
	}
}

func TestMLPRegressionLearnsLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var x [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		row := []float64{rng.Float64(), rng.Float64()}
		x = append(x, row)
		y = append(y, 2*row[0]-3*row[1]+1)
	}
	mlp, err := NewMLP(2, 2, 16, TrainConfig{Epochs: 120, Batch: 32, LR: 5e-3, Seed: 2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := mlp.FitRegressor(x, y); err != nil {
		t.Fatal(err)
	}
	var mse float64
	for i := range x {
		d := mlp.PredictValue(x[i]) - y[i]
		mse += d * d
	}
	mse /= float64(len(x))
	if mse > 0.02 {
		t.Errorf("MLP MSE %.4f > 0.02", mse)
	}
}

func TestConvNetShapeAndTraining(t *testing.T) {
	cls, err := NewConvNet(2, 4, TrainConfig{Epochs: 5, Batch: 16, LR: 2e-3, Seed: 3}, 9)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.Side * tensor.Side
	rng := rand.New(rand.NewSource(7))
	var x [][]float64
	var y []int
	for i := 0; i < 40; i++ {
		row := make([]float64, in)
		k := i % 4
		// Put a class-dependent blob in a corner so the task is learnable.
		row[k] = 1
		for j := 0; j < 8; j++ {
			row[rng.Intn(in)] = 1
		}
		x = append(x, row)
		y = append(y, k)
	}
	if err := cls.FitClassifier(x, y, 4); err != nil {
		t.Fatal(err)
	}
	if got := cls.PredictClass(x[0]); got < 0 || got > 3 {
		t.Errorf("class %d out of range", got)
	}
}

func TestConvMLPForwardBackward(t *testing.T) {
	reg, err := NewConvMLP(2, 6, TrainConfig{Epochs: 2, Batch: 8, LR: 1e-3, Seed: 4}, 10)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.Side*tensor.Side + 6
	rng := rand.New(rand.NewSource(8))
	var x [][]float64
	var y []float64
	for i := 0; i < 24; i++ {
		row := make([]float64, in)
		for j := range row {
			row[j] = rng.Float64()
		}
		x = append(x, row)
		y = append(y, rng.Float64())
	}
	if err := reg.FitRegressor(x, y); err != nil {
		t.Fatal(err)
	}
	v := reg.PredictValue(x[0])
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("ConvMLP prediction %g", v)
	}
}

func TestTwoBranchSplitsAndConcats(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := NewNetwork(NewDense(2, 3, rng))
	b := NewNetwork() // identity
	tb := NewTwoBranch(2, a, b, 3)
	out := tb.Forward(row1([]float64{1, 2, 9, 8}))
	if out.Cols != 5 {
		t.Fatalf("two-branch output width %d, want 5", out.Cols)
	}
	if out.At(0, 3) != 9 || out.At(0, 4) != 8 {
		t.Errorf("identity tail mangled: %v", out.Row(0))
	}
	grads := tb.Backward(row1([]float64{1, 1, 1, 7, 6}))
	if grads.Cols != 4 {
		t.Fatalf("two-branch input grad width %d, want 4", grads.Cols)
	}
	if grads.At(0, 2) != 7 || grads.At(0, 3) != 6 {
		t.Errorf("identity grads mangled: %v", grads.Row(0))
	}
}

func TestBuilderValidation(t *testing.T) {
	if _, err := NewConvNet(4, 5, TrainConfig{}, 1); err == nil {
		t.Error("ConvNet dims=4 accepted")
	}
	if _, err := NewConvNet(2, 1, TrainConfig{}, 1); err == nil {
		t.Error("ConvNet 1 class accepted")
	}
	if _, err := NewFcNet(0, 2, 1, 8, TrainConfig{}, 1); err == nil {
		t.Error("FcNet inDim=0 accepted")
	}
	if _, err := NewMLP(3, 0, 8, TrainConfig{}, 1); err == nil {
		t.Error("MLP 0 layers accepted")
	}
	if _, err := NewConvMLP(2, 0, TrainConfig{}, 1); err == nil {
		t.Error("ConvMLP featDim=0 accepted")
	}
}

func TestNetworkNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := NewNetwork(NewDense(4, 8, rng), NewReLU(), NewDense(8, 2, rng))
	want := (4*8 + 8) + (8*2 + 2)
	if got := n.NumParams(); got != want {
		t.Errorf("NumParams = %d, want %d", got, want)
	}
}

func TestFitValidation(t *testing.T) {
	cls, _ := NewFcNet(2, 2, 1, 4, TrainConfig{}, 1)
	if err := cls.FitClassifier(nil, nil, 2); err == nil {
		t.Error("empty classifier fit accepted")
	}
	if err := cls.FitClassifier([][]float64{{1, 2}}, []int{0}, 1); err == nil {
		t.Error("single-class fit accepted")
	}
	mlp, _ := NewMLP(2, 1, 4, TrainConfig{}, 1)
	if err := mlp.FitRegressor([][]float64{{1, 2}}, nil); err == nil {
		t.Error("mismatched regressor fit accepted")
	}
}
