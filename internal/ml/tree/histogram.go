package tree

import (
	"context"
	"math"
	"sort"

	"stencilmart/internal/par"
)

// histParallelMin is the work floor (rows x features touched) below
// which histogram building runs serially; pool dispatch overhead
// dominates under it. Either path accumulates each feature's bins in row
// order and reduces split candidates in ascending feature order, so the
// threshold never changes the fitted tree — only how fast it fits.
const histParallelMin = 1 << 13

// histIndex is the per-fit binned form of a feature matrix: every
// (row, feature) cell quantized to a uint8 quantile-bin code, plus the
// split threshold between each pair of adjacent bins. Building it costs
// one sort per feature; afterwards every node's split search is an
// O(bins) histogram scan instead of an O(n log n) re-sort. The index
// depends only on x, so a boosting ensemble builds it once and shares it
// across every round and class.
type histIndex struct {
	n, nf   int
	nbins   []int       // bins per feature (<= maxHistBins)
	offsets []int       // histogram offset per feature (prefix sums of nbins)
	total   int         // sum of nbins
	thr     [][]float64 // thr[f][b]: threshold separating bin b from b+1
	codes   []uint8     // column-major: codes[f*n+i] is row i's bin on feature f
}

// buildHistIndex bins every feature of x into at most maxBins quantile
// bins. Features bin independently (each owns its codes column and thr
// slice), so large matrices fan the per-feature sorts out on the shared
// pool without affecting the result.
func buildHistIndex(x [][]float64, maxBins int) *histIndex {
	n, nf := len(x), len(x[0])
	hi := &histIndex{
		n: n, nf: nf,
		nbins:   make([]int, nf),
		offsets: make([]int, nf),
		thr:     make([][]float64, nf),
		codes:   make([]uint8, n*nf),
	}
	bin := func(f int) {
		col := make([]float64, n)
		for i, row := range x {
			col[i] = row[f]
		}
		sort.Float64s(col)
		uppers, thr := binEdges(col, maxBins)
		hi.nbins[f] = len(uppers)
		hi.thr[f] = thr
		codes := hi.codes[f*n : (f+1)*n]
		for i, row := range x {
			codes[i] = uint8(sort.SearchFloat64s(uppers, row[f]))
		}
	}
	if n*nf >= histParallelMin {
		par.ForEach(context.Background(), nf, 0, func(f int) error { bin(f); return nil })
	} else {
		for f := 0; f < nf; f++ {
			bin(f)
		}
	}
	for f := 0; f < nf; f++ {
		hi.offsets[f] = hi.total
		hi.total += hi.nbins[f]
	}
	return hi
}

// binEdges derives bin upper bounds and inter-bin thresholds from one
// sorted feature column. When the column has at most maxBins distinct
// values every value gets its own bin — the histogram then considers
// exactly the boundaries exact greedy would. Otherwise bins cut at
// equal-population quantiles, deduplicated so a heavily repeated value
// occupies a single bin. Thresholds sit midway between a bin's upper
// bound and the next value actually present, mirroring exact greedy's
// between-values cuts.
func binEdges(col []float64, maxBins int) (uppers, thr []float64) {
	n := len(col)
	distinct := 1
	for i := 1; i < n; i++ {
		if col[i] != col[i-1] {
			distinct++
		}
	}
	if distinct <= maxBins {
		uppers = make([]float64, 0, distinct)
		uppers = append(uppers, col[0])
		for i := 1; i < n; i++ {
			if col[i] != col[i-1] {
				uppers = append(uppers, col[i])
			}
		}
	} else {
		uppers = make([]float64, 0, maxBins)
		for k := 1; k < maxBins; k++ {
			v := col[k*n/maxBins]
			if len(uppers) == 0 || v > uppers[len(uppers)-1] {
				uppers = append(uppers, v)
			}
		}
		if last := col[n-1]; len(uppers) == 0 || last > uppers[len(uppers)-1] {
			uppers = append(uppers, last)
		}
	}
	thr = make([]float64, len(uppers)-1)
	for b := range thr {
		next := col[sort.SearchFloat64s(col, math.Nextafter(uppers[b], math.Inf(1)))]
		thr[b] = (uppers[b] + next) / 2
	}
	return uppers, thr
}

// nodeHist is one node's per-(feature, bin) gradient/hessian/count
// histogram, flat across features at histIndex offsets. Released
// histograms chain through next for reuse by later nodes, so a whole
// tree allocates only as many histograms as its deepest
// parent-plus-sibling chain.
type nodeHist struct {
	g, h []float64
	cnt  []int32
	next *nodeHist
}

// subtract turns nh into (nh - o) elementwise — the sibling-subtraction
// trick: a child's histogram is its parent's minus its sibling's.
func (nh *nodeHist) subtract(o *nodeHist) {
	for i := range nh.g {
		nh.g[i] -= o.g[i]
		nh.h[i] -= o.h[i]
		nh.cnt[i] -= o.cnt[i]
	}
}

// histCand is one feature's best split candidate within a node.
type histCand struct {
	gain float64
	bin  int
	ok   bool
}

// histBuilder grows one tree on a prebuilt histIndex. The node's row set
// lives in rows, partitioned in place per node with scratch staging the
// right-going rows — the same reusable-segment scheme as exactBuilder,
// so no per-node index slices are grown.
type histBuilder struct {
	hi      *histIndex
	y, h    []float64
	cfg     TreeConfig
	rows    []int32
	scratch []int32
	cand    []histCand
	pool    *nodeHist
}

// fitHistogram grows a tree over the idx rows using histogram splits.
func fitHistogram(hi *histIndex, y, h []float64, idx []int, cfg TreeConfig) *node {
	hb := &histBuilder{
		hi: hi, y: y, h: h, cfg: cfg,
		rows:    make([]int32, len(idx)),
		scratch: make([]int32, 0, len(idx)),
		cand:    make([]histCand, hi.nf),
	}
	for i, v := range idx {
		hb.rows[i] = int32(v)
	}
	return hb.build(0, len(idx), 0, nil)
}

func (hb *histBuilder) alloc() *nodeHist {
	if nh := hb.pool; nh != nil {
		hb.pool = nh.next
		for i := range nh.g {
			nh.g[i], nh.h[i], nh.cnt[i] = 0, 0, 0
		}
		return nh
	}
	return &nodeHist{
		g:   make([]float64, hb.hi.total),
		h:   make([]float64, hb.hi.total),
		cnt: make([]int32, hb.hi.total),
	}
}

func (hb *histBuilder) release(nh *nodeHist) {
	if nh == nil {
		return
	}
	nh.next = hb.pool
	hb.pool = nh
}

func (hb *histBuilder) leafValue(seg []int32) float64 {
	var sg, sh float64
	for _, i := range seg {
		sg += hb.y[i]
		if hb.h != nil {
			sh += hb.h[i]
		} else {
			sh++
		}
	}
	return sg / (sh + 1e-9)
}

// accumulate fills nh with seg's per-bin gradient/hessian/count sums.
// Each feature owns the disjoint [offsets[f], offsets[f]+nbins[f])
// region and accumulates rows in seg order, so fanning features out on
// the pool is bitwise identical to the serial loop at any GOMAXPROCS.
func (hb *histBuilder) accumulate(nh *nodeHist, seg []int32) {
	if len(seg)*hb.hi.nf >= histParallelMin {
		par.ForEach(context.Background(), hb.hi.nf, 0, func(f int) error {
			hb.accumFeature(nh, seg, f)
			return nil
		})
		return
	}
	for f := 0; f < hb.hi.nf; f++ {
		hb.accumFeature(nh, seg, f)
	}
}

func (hb *histBuilder) accumFeature(nh *nodeHist, seg []int32, f int) {
	off := hb.hi.offsets[f]
	codes := hb.hi.codes[f*hb.hi.n : (f+1)*hb.hi.n]
	if hb.h != nil {
		for _, i := range seg {
			b := off + int(codes[i])
			nh.g[b] += hb.y[i]
			nh.h[b] += hb.h[i]
			nh.cnt[b]++
		}
	} else {
		for _, i := range seg {
			b := off + int(codes[i])
			nh.g[b] += hb.y[i]
			nh.h[b]++
			nh.cnt[b]++
		}
	}
}

// bestSplit scans every feature's histogram for the gain-maximizing bin
// boundary. Features scan independently into their own cand slot and a
// serial ascending-feature reduction picks the winner (strict >, so ties
// break to the lowest feature and bin), making the chosen split a pure
// function of the histogram regardless of worker count.
func (hb *histBuilder) bestSplit(nh *nodeHist, nRows int) (feat, bin int, thr, gain float64, ok bool) {
	var totG, totH float64
	off0 := hb.hi.offsets[0]
	for b := 0; b < hb.hi.nbins[0]; b++ {
		totG += nh.g[off0+b]
		totH += nh.h[off0+b]
	}
	parent := gainTerm(totG, totH)
	scan := func(f int) {
		off, nb := hb.hi.offsets[f], hb.hi.nbins[f]
		c := histCand{gain: 1e-12}
		var lg, lh float64
		ln := 0
		for b := 0; b < nb-1; b++ {
			lg += nh.g[off+b]
			lh += nh.h[off+b]
			ln += int(nh.cnt[off+b])
			// An empty bin repeats the previous boundary's partition.
			if nh.cnt[off+b] == 0 {
				continue
			}
			if ln < hb.cfg.MinLeaf || nRows-ln < hb.cfg.MinLeaf {
				continue
			}
			if g := gainTerm(lg, lh) + gainTerm(totG-lg, totH-lh) - parent; g > c.gain {
				c.gain, c.bin, c.ok = g, b, true
			}
		}
		hb.cand[f] = c
	}
	if hb.hi.total >= histParallelMin/4 {
		par.ForEach(context.Background(), hb.hi.nf, 0, func(f int) error { scan(f); return nil })
	} else {
		for f := 0; f < hb.hi.nf; f++ {
			scan(f)
		}
	}
	for f, c := range hb.cand {
		if c.ok && (!ok || c.gain > gain) {
			feat, bin, gain, ok = f, c.bin, c.gain, true
		}
	}
	if ok {
		thr = hb.hi.thr[feat][bin]
	}
	return feat, bin, thr, gain, ok
}

// partition stably splits rows[lo:hi] around the bin boundary: rows with
// codes <= bin compact to the front in place, the rest stage through
// scratch. Stability keeps child row order equal to parent row order,
// which is what makes every downstream accumulation order-deterministic.
func (hb *histBuilder) partition(lo, hi, feat, bin int) int {
	codes := hb.hi.codes[feat*hb.hi.n : (feat+1)*hb.hi.n]
	left := hb.rows[lo:lo]
	rest := hb.scratch[:0]
	for _, i := range hb.rows[lo:hi] {
		if int(codes[i]) <= bin {
			left = append(left, i)
		} else {
			rest = append(rest, i)
		}
	}
	hb.scratch = rest
	copy(hb.rows[lo+len(left):hi], rest)
	return lo + len(left)
}

func (hb *histBuilder) build(lo, hi, depth int, nh *nodeHist) *node {
	seg := hb.rows[lo:hi]
	if depth >= hb.cfg.MaxDepth || len(seg) < 2*hb.cfg.MinLeaf {
		hb.release(nh)
		return &node{feature: -1, value: hb.leafValue(seg)}
	}
	if nh == nil {
		nh = hb.alloc()
		hb.accumulate(nh, seg)
	}
	feat, bin, thr, gain, ok := hb.bestSplit(nh, len(seg))
	if !ok {
		hb.release(nh)
		return &node{feature: -1, value: hb.leafValue(seg)}
	}
	mid := hb.partition(lo, hi, feat, bin)
	needL := depth+1 < hb.cfg.MaxDepth && mid-lo >= 2*hb.cfg.MinLeaf
	needR := depth+1 < hb.cfg.MaxDepth && hi-mid >= 2*hb.cfg.MinLeaf
	var lh, rh *nodeHist
	if needL || needR {
		// Sibling subtraction: accumulate the smaller child directly and
		// derive the larger as parent − smaller, reusing the parent's
		// arrays — O(small + bins) instead of O(small + large).
		if mid-lo <= hi-mid {
			lh = hb.alloc()
			hb.accumulate(lh, hb.rows[lo:mid])
			nh.subtract(lh)
			rh = nh
		} else {
			rh = hb.alloc()
			hb.accumulate(rh, hb.rows[mid:hi])
			nh.subtract(rh)
			lh = nh
		}
		if !needL {
			hb.release(lh)
			lh = nil
		}
		if !needR {
			hb.release(rh)
			rh = nil
		}
	} else {
		hb.release(nh)
	}
	nd := &node{feature: feat, threshold: thr, gain: gain}
	nd.left = hb.build(lo, mid, depth+1, lh)
	nd.right = hb.build(mid, hi, depth+1, rh)
	return nd
}
