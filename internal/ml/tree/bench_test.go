package tree

import (
	"math"
	"math/rand"
	"testing"
)

// benchData builds the fixed corpus shared by the training benchmarks:
// continuous features (every column overflows the bin budget, so the
// histogram path does real quantile binning) with a smooth regression
// target and a label derived from a feature mix.
func benchData(rows, feats, classes int) (x [][]float64, yv []float64, yc []int) {
	rng := rand.New(rand.NewSource(42))
	x = make([][]float64, rows)
	yv = make([]float64, rows)
	yc = make([]int, rows)
	for i := range x {
		x[i] = make([]float64, feats)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
		}
		yv[i] = 3*x[i][0] - 2*x[i][1]*x[i][1] + x[i][2]*x[i][3] + 0.1*rng.NormFloat64()
		yc[i] = int(math.Abs(x[i][0]+2*x[i][1]+x[i][2])*2) % classes
	}
	return x, yv, yc
}

func benchModes(b *testing.B, run func(b *testing.B, mode SplitMode)) {
	for _, mode := range []SplitMode{SplitExact, SplitHistogram} {
		b.Run(mode.String(), func(b *testing.B) { run(b, mode) })
	}
}

func BenchmarkGBDTTrain(b *testing.B) {
	x, _, yc := benchData(1500, 12, 5)
	benchModes(b, func(b *testing.B, mode SplitMode) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g := NewGBDT(BoostConfig{Rounds: 15, Seed: 7, Tree: TreeConfig{MaxDepth: 6, Mode: mode}})
			if err := g.FitClassifier(x, yc, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkGBRegressorTrain(b *testing.B) {
	x, yv, _ := benchData(1500, 12, 5)
	benchModes(b, func(b *testing.B, mode SplitMode) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g := NewGBRegressor(BoostConfig{Rounds: 40, Seed: 7, Tree: TreeConfig{MaxDepth: 6, MinLeaf: 3, Mode: mode}})
			if err := g.FitRegressor(x, yv); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkTreePredictBatch(b *testing.B) {
	x, yv, yc := benchData(4096, 12, 5)
	tr, err := FitTree(x, yv, nil, allIdx(len(x)), TreeConfig{MaxDepth: 6})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("tree/row-at-a-time", func(b *testing.B) {
		b.ReportAllocs()
		var sink float64
		for i := 0; i < b.N; i++ {
			for _, row := range x {
				sink += tr.Predict(row)
			}
		}
		_ = sink
	})
	b.Run("tree/batched", func(b *testing.B) {
		b.ReportAllocs()
		out := make([]float64, len(x))
		for i := 0; i < b.N; i++ {
			out = tr.PredictBatch(x, out)
		}
		_ = out
	})

	// The ensemble paths are where batching pays: one score/softmax
	// buffer per batch instead of per row, and every tree's node array
	// streamed over all rows while hot.
	g := NewGBDT(BoostConfig{Rounds: 15, Seed: 7, Tree: TreeConfig{MaxDepth: 6}})
	if err := g.FitClassifier(x, yc, 5); err != nil {
		b.Fatal(err)
	}
	b.Run("gbdt/row-at-a-time", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, row := range x {
				_ = g.PredictProba(row)
			}
		}
	})
	b.Run("gbdt/batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = g.PredictProbaBatch(x)
		}
	})
}
