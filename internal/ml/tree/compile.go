package tree

import (
	"fmt"
	"math"
)

// This file is the float32 inference lane of the tree ensembles: fitted
// GBDT/GBRegressor models compile once (at checkpoint load / registry
// publish time) into structure-of-arrays node storage — separate feature,
// threshold and child slices instead of per-node structs — and score
// batches into caller-provided buffers with zero heap allocations.
// Quantization happens exactly once, at compile time: every threshold and
// leaf value (plus the prior and learning rate) is rounded to the nearest
// float32. Traversal then compares float32 features against float32
// thresholds with the same `<= goes left` rule as the float64 lane, so a
// row can only route differently when a feature lands within half a
// float32 ULP of a threshold — the tie band the serving-lane differential
// suite bounds with its epsilon policy.

// soaForest holds the concatenated flat nodes of many trees in
// structure-of-arrays form. Child indices are absolute into the shared
// arrays, so descent is plain index arithmetic over four dense slices —
// no pointer chasing, and the two-destination step below compiles to a
// conditional move on amd64.
type soaForest struct {
	feature []int32 // split feature; < 0 for leaves
	left    []int32
	right   []int32
	thr     []float32
	leaf    []float32
	roots   []int32 // root node index of each tree, in append order
}

// addTree appends one fitted tree's preorder flat nodes, rebasing child
// indices onto the shared arrays.
func (f *soaForest) addTree(t *Tree) {
	base := int32(len(f.feature))
	f.roots = append(f.roots, base)
	for _, n := range t.flat.nodes {
		l, r := n.left, n.right
		if l >= 0 {
			l += base
		}
		if r >= 0 {
			r += base
		}
		f.feature = append(f.feature, n.feature)
		f.left = append(f.left, l)
		f.right = append(f.right, r)
		f.thr = append(f.thr, float32(n.thr))
		f.leaf = append(f.leaf, float32(n.value))
	}
}

// leafValue descends one row from the given tree's root. The branch-free
// select (`pick left, overwrite with right`) keeps the hot loop's only
// unpredictable branch out of the instruction stream.
func (f *soaForest) leafValue(tree int, row []float32) float32 {
	p := f.roots[tree]
	for {
		ft := f.feature[p]
		if ft < 0 {
			return f.leaf[p]
		}
		next := f.left[p]
		if row[ft] > f.thr[p] {
			next = f.right[p]
		}
		p = next
	}
}

func (f *soaForest) numTrees() int { return len(f.roots) }

// CompiledEnsemble is the float32 inference form of a fitted GBRegressor.
type CompiledEnsemble struct {
	forest soaForest
	base   float32
	lr     float32
}

// Compile quantizes the fitted ensemble into its float32 SoA inference
// form. The receiver is unchanged and stays the float64 reference lane.
func (g *GBRegressor) Compile() (*CompiledEnsemble, error) {
	if len(g.trees) == 0 {
		return nil, fmt.Errorf("tree: compile of unfitted GBRegressor")
	}
	c := &CompiledEnsemble{base: float32(g.base), lr: float32(g.cfg.LearningRate)}
	for _, t := range g.trees {
		c.forest.addTree(t)
	}
	return c, nil
}

// NumTrees returns the compiled ensemble size.
func (c *CompiledEnsemble) NumTrees() int { return c.forest.numTrees() }

// PredictValueBatchF32 implements ml.RegressorF32: out[i] accumulates
// base plus lr-scaled leaf values tree by tree in ascending order — the
// float64 PredictBatch schedule evaluated in float32. It allocates
// nothing.
func (c *CompiledEnsemble) PredictValueBatchF32(rows [][]float32, out []float32) {
	if len(out) != len(rows) {
		panic(fmt.Sprintf("tree: f32 regression out %d, want %d", len(out), len(rows)))
	}
	for i := range out {
		out[i] = c.base
	}
	for t := 0; t < c.forest.numTrees(); t++ {
		for i, row := range rows {
			out[i] += c.lr * c.forest.leafValue(t, row)
		}
	}
}

// CompiledGBDT is the float32 inference form of a fitted GBDT. Trees are
// stored flat in (round ascending, class ascending) order, replicating
// the float64 accumulation schedule.
type CompiledGBDT struct {
	forest  soaForest
	classes int
	prior   []float32
	lr      float32
}

// Compile quantizes the fitted classifier into its float32 SoA inference
// form. The receiver is unchanged and stays the float64 reference lane.
func (g *GBDT) Compile() (*CompiledGBDT, error) {
	if len(g.trees) == 0 || g.classes < 2 {
		return nil, fmt.Errorf("tree: compile of unfitted GBDT")
	}
	c := &CompiledGBDT{classes: g.classes, lr: float32(g.cfg.LearningRate)}
	c.prior = make([]float32, g.classes)
	for k, v := range g.prior {
		c.prior[k] = float32(v)
	}
	for _, round := range g.trees {
		if len(round) != g.classes {
			return nil, fmt.Errorf("tree: round has %d trees for %d classes", len(round), g.classes)
		}
		for _, t := range round {
			c.forest.addTree(t)
		}
	}
	return c, nil
}

// Classes implements ml.ClassifierF32.
func (c *CompiledGBDT) Classes() int { return c.classes }

// PredictProbaBatchF32 implements ml.ClassifierF32: scores start at the
// quantized prior, every (round, class) tree adds its lr-scaled leaf in
// the float64 lane's order, and each row finishes with an in-place
// softmax. out is flat row-major len(rows)*Classes(). It allocates
// nothing.
func (c *CompiledGBDT) PredictProbaBatchF32(rows [][]float32, out []float32) {
	if len(out) != len(rows)*c.classes {
		panic(fmt.Sprintf("tree: f32 proba out %d, want %d", len(out), len(rows)*c.classes))
	}
	for i := range rows {
		copy(out[i*c.classes:(i+1)*c.classes], c.prior)
	}
	for t := 0; t < c.forest.numTrees(); t++ {
		k := t % c.classes
		for i, row := range rows {
			out[i*c.classes+k] += c.lr * c.forest.leafValue(t, row)
		}
	}
	for i := range rows {
		softmaxF32InPlace(out[i*c.classes : (i+1)*c.classes])
	}
}

// softmaxF32InPlace is softmaxInPlace's operation sequence in float32;
// the exponential itself is evaluated in float64 (math.Exp has no f32
// counterpart in the stdlib) and rounded once on the way back.
func softmaxF32InPlace(scores []float32) {
	maxv := scores[0]
	for _, s := range scores[1:] {
		if s > maxv {
			maxv = s
		}
	}
	var sum float32
	for i, s := range scores {
		scores[i] = float32(math.Exp(float64(s - maxv)))
		sum += scores[i]
	}
	for i := range scores {
		scores[i] /= sum
	}
}
