package tree

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func allIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func TestFitTreeStepFunction(t *testing.T) {
	// y = 1 when x0 > 0.5 else 0: a single split recovers it exactly.
	var x [][]float64
	var y []float64
	for i := 0; i < 40; i++ {
		v := float64(i) / 40
		x = append(x, []float64{v, 0.5})
		if v > 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	tr, err := FitTree(x, y, nil, allIdx(len(x)), TreeConfig{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{0.1, 0.5}); math.Abs(got) > 1e-9 {
		t.Errorf("low side = %g, want 0", got)
	}
	if got := tr.Predict([]float64{0.9, 0.5}); math.Abs(got-1) > 1e-9 {
		t.Errorf("high side = %g, want 1", got)
	}
	if tr.Depth() < 1 || tr.NumLeaves() < 2 {
		t.Errorf("degenerate tree: depth=%d leaves=%d", tr.Depth(), tr.NumLeaves())
	}
}

func TestFitTreeConstantTarget(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{7, 7, 7, 7}
	tr, err := FitTree(x, y, nil, allIdx(4), TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 1 {
		t.Errorf("constant target grew %d leaves", tr.NumLeaves())
	}
	if got := tr.Predict([]float64{2.5}); math.Abs(got-7) > 1e-6 {
		t.Errorf("predict = %g, want 7", got)
	}
}

func TestFitTreeErrors(t *testing.T) {
	if _, err := FitTree(nil, nil, nil, nil, TreeConfig{}); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := FitTree([][]float64{{1}}, []float64{1, 2}, nil, []int{0}, TreeConfig{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FitTree([][]float64{{1}}, []float64{1}, []float64{1, 2}, []int{0}, TreeConfig{}); err == nil {
		t.Error("hessian mismatch accepted")
	}
	if _, err := FitTree([][]float64{{1}}, []float64{1}, nil, nil, TreeConfig{}); err == nil {
		t.Error("empty index set accepted")
	}
}

func TestTreeRespectsMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		row := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		x = append(x, row)
		y = append(y, rng.NormFloat64())
	}
	for _, d := range []int{1, 2, 3, 5} {
		tr, err := FitTree(x, y, nil, allIdx(len(x)), TreeConfig{MaxDepth: d, MinLeaf: 1})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Depth() > d {
			t.Errorf("depth %d exceeds max %d", tr.Depth(), d)
		}
	}
}

func TestGBRegressorFitsSmoothFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []float64
	f := func(r []float64) float64 { return 3*r[0] - 2*r[1]*r[1] + r[0]*r[1] }
	for i := 0; i < 400; i++ {
		row := []float64{rng.Float64() * 2, rng.Float64() * 2}
		x = append(x, row)
		y = append(y, f(row))
	}
	g := NewGBRegressor(BoostConfig{Rounds: 80, Tree: TreeConfig{MaxDepth: 4}})
	if err := g.FitRegressor(x, y); err != nil {
		t.Fatal(err)
	}
	if g.NumTrees() != 80 {
		t.Errorf("ensemble size %d, want 80", g.NumTrees())
	}
	var sse, sst, mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	for i, row := range x {
		d := g.PredictValue(row) - y[i]
		sse += d * d
		sst += (y[i] - mean) * (y[i] - mean)
	}
	r2 := 1 - sse/sst
	if r2 < 0.95 {
		t.Errorf("training R^2 = %.3f, want >= 0.95", r2)
	}
}

func TestGBRegressorErrors(t *testing.T) {
	g := NewGBRegressor(BoostConfig{})
	if err := g.FitRegressor(nil, nil); err == nil {
		t.Error("empty fit accepted")
	}
	if err := g.FitRegressor([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched fit accepted")
	}
}

func TestGBDTSeparableClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	var y []int
	// Three Gaussian blobs.
	centers := [][]float64{{0, 0}, {4, 0}, {2, 4}}
	for i := 0; i < 300; i++ {
		k := i % 3
		x = append(x, []float64{
			centers[k][0] + rng.NormFloat64()*0.5,
			centers[k][1] + rng.NormFloat64()*0.5,
		})
		y = append(y, k)
	}
	g := NewGBDT(BoostConfig{Rounds: 30, Tree: TreeConfig{MaxDepth: 3}})
	if err := g.FitClassifier(x, y, 3); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i, row := range x {
		if g.PredictClass(row) == y[i] {
			hits++
		}
	}
	if acc := float64(hits) / float64(len(x)); acc < 0.95 {
		t.Errorf("training accuracy %.3f, want >= 0.95", acc)
	}
	p := g.PredictProba(x[0])
	var sum float64
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Errorf("probability %g outside [0,1]", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %g", sum)
	}
	if g.NumClasses() != 3 {
		t.Errorf("NumClasses = %d", g.NumClasses())
	}
}

func TestGBDTErrors(t *testing.T) {
	g := NewGBDT(BoostConfig{})
	if err := g.FitClassifier(nil, nil, 2); err == nil {
		t.Error("empty fit accepted")
	}
	if err := g.FitClassifier([][]float64{{1}}, []int{0}, 1); err == nil {
		t.Error("single class accepted")
	}
	if err := g.FitClassifier([][]float64{{1}}, []int{5}, 2); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestSoftmaxStable(t *testing.T) {
	p := softmax([]float64{1000, 1001, 999})
	var sum float64
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflow: %v", p)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("softmax sums to %g", sum)
	}
	if p[1] < p[0] || p[1] < p[2] {
		t.Errorf("softmax ordering wrong: %v", p)
	}
}

// Property: tree predictions are always one of the leaf values — i.e.
// bounded by [min(y), max(y)] for unweighted fits.
func TestQuickTreePredictionBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		x := make([][]float64, n)
		y := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range x {
			x[i] = []float64{rng.Float64(), rng.Float64()}
			y[i] = rng.NormFloat64()
			lo = math.Min(lo, y[i])
			hi = math.Max(hi, y[i])
		}
		tr, err := FitTree(x, y, nil, allIdx(n), TreeConfig{MaxDepth: 5, MinLeaf: 1})
		if err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			p := tr.Predict([]float64{rng.Float64() * 2, rng.Float64() * 2})
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFitTreeRejectsNonFinite(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}}
	y := []float64{1, 2}
	cases := []struct {
		name string
		x    [][]float64
		y, h []float64
	}{
		{"nan feature", [][]float64{{1, math.NaN()}, {3, 4}}, y, nil},
		{"inf feature", [][]float64{{1, 2}, {math.Inf(1), 4}}, y, nil},
		{"nan target", x, []float64{1, math.NaN()}, nil},
		{"inf target", x, []float64{math.Inf(-1), 2}, nil},
		{"nan hessian", x, y, []float64{1, math.NaN()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := FitTree(tc.x, tc.y, tc.h, allIdx(2), TreeConfig{})
			if !errors.Is(err, ErrNonFinite) {
				t.Fatalf("err = %v, want ErrNonFinite", err)
			}
		})
	}
}

func TestFitTreeRejectsRaggedRows(t *testing.T) {
	_, err := FitTree([][]float64{{1, 2}, {3}}, []float64{1, 2}, nil, allIdx(2), TreeConfig{})
	if err == nil || errors.Is(err, ErrNonFinite) {
		t.Fatalf("ragged rows: err = %v, want shape error", err)
	}
}

func TestGBRegressorRejectsNonFinite(t *testing.T) {
	g := NewGBRegressor(BoostConfig{Rounds: 2})
	if err := g.FitRegressor([][]float64{{1}, {math.NaN()}}, []float64{1, 2}); !errors.Is(err, ErrNonFinite) {
		t.Errorf("NaN feature: err = %v, want ErrNonFinite", err)
	}
	if err := g.FitRegressor([][]float64{{1}, {2}}, []float64{1, math.Inf(1)}); !errors.Is(err, ErrNonFinite) {
		t.Errorf("Inf target: err = %v, want ErrNonFinite", err)
	}
}

func TestGBDTRejectsNonFinite(t *testing.T) {
	g := NewGBDT(BoostConfig{Rounds: 2})
	err := g.FitClassifier([][]float64{{1}, {math.Inf(1)}, {2}, {3}}, []int{0, 1, 0, 1}, 2)
	if !errors.Is(err, ErrNonFinite) {
		t.Errorf("Inf feature: err = %v, want ErrNonFinite", err)
	}
}

// randMatrix builds a deterministic feature matrix plus targets/labels
// shared by the batch-equality tests.
func randMatrix(seed int64, rows, cols int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, rows)
	for i := range x {
		x[i] = make([]float64, cols)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
		}
	}
	return x
}

func TestTreePredictBatchMatchesPredict(t *testing.T) {
	for _, mode := range []SplitMode{SplitHistogram, SplitExact} {
		t.Run(mode.String(), func(t *testing.T) {
			x := randMatrix(11, 300, 5)
			y := make([]float64, len(x))
			for i := range y {
				y[i] = x[i][0]*2 - x[i][1]*x[i][2]
			}
			tr, err := FitTree(x, y, nil, allIdx(len(x)), TreeConfig{MaxDepth: 6, MinLeaf: 1, Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			q := randMatrix(12, 100, 5)
			got := tr.PredictBatch(q, nil)
			for i, row := range q {
				if math.Float64bits(got[i]) != math.Float64bits(tr.Predict(row)) {
					t.Fatalf("row %d: batch %v != single %v", i, got[i], tr.Predict(row))
				}
			}
			// out reuse: a slice with capacity is reused, not reallocated.
			buf := make([]float64, 0, len(q))
			out := tr.PredictBatch(q, buf)
			if &out[0] != &buf[:1][0] {
				t.Error("PredictBatch did not reuse out's backing array")
			}
		})
	}
}

func TestGBDTBatchMatchesSingle(t *testing.T) {
	const classes = 4
	x, y := synthClassData(250, 6, classes)
	g := NewGBDT(BoostConfig{Rounds: 10, Seed: 5, Tree: TreeConfig{MaxDepth: 4}})
	if err := g.FitClassifier(x, y, classes); err != nil {
		t.Fatal(err)
	}
	batch := g.PredictProbaBatch(x)
	for i, row := range x {
		single := g.PredictProba(row)
		for k := range single {
			if math.Float64bits(batch[i][k]) != math.Float64bits(single[k]) {
				t.Fatalf("row %d class %d: batch %v != single %v", i, k, batch[i][k], single[k])
			}
		}
	}
	if g.PredictProbaBatch(nil) != nil {
		t.Error("empty batch should return nil")
	}
}

func TestGBRegressorBatchMatchesSingle(t *testing.T) {
	x := randMatrix(21, 300, 4)
	y := make([]float64, len(x))
	for i := range y {
		y[i] = 3*x[i][0] - x[i][1]*x[i][1]
	}
	g := NewGBRegressor(BoostConfig{Rounds: 25, Seed: 6})
	if err := g.FitRegressor(x, y); err != nil {
		t.Fatal(err)
	}
	batch := g.PredictBatch(x)
	for i, row := range x {
		if math.Float64bits(batch[i]) != math.Float64bits(g.PredictValue(row)) {
			t.Fatalf("row %d: batch %v != single %v", i, batch[i], g.PredictValue(row))
		}
	}
	if g.PredictBatch(nil) != nil {
		t.Error("empty batch should return nil")
	}
	vb := g.PredictValueBatch(x[:7])
	for i := range vb {
		if math.Float64bits(vb[i]) != math.Float64bits(batch[i]) {
			t.Fatalf("PredictValueBatch row %d differs from PredictBatch", i)
		}
	}
}
