package tree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"stencilmart/internal/ml"
)

// The batch entry points must satisfy the ml batch interfaces so core's
// CV and serving paths pick them up automatically.
var (
	_ ml.BatchClassifier = (*GBDT)(nil)
	_ ml.BatchRegressor  = (*GBRegressor)(nil)
)

func TestSplitModeString(t *testing.T) {
	if SplitHistogram.String() != "histogram" || SplitExact.String() != "exact" {
		t.Errorf("mode names: %q, %q", SplitHistogram, SplitExact)
	}
	if s := SplitMode(9).String(); s != "SplitMode(9)" {
		t.Errorf("unknown mode = %q", s)
	}
}

// quantizedData builds features with few distinct values per column, so
// every feature fits in the bin budget and the histogram considers
// exactly the split boundaries exact greedy does.
func quantizedData(seed int64, rows, cols, levels int) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, rows)
	y := make([]float64, rows)
	for i := range x {
		x[i] = make([]float64, cols)
		for j := range x[i] {
			x[i][j] = float64(rng.Intn(levels)) / float64(levels)
		}
		y[i] = 2*x[i][0] - x[i][1] + x[i][2]*x[i][0] + 0.01*rng.NormFloat64()
	}
	return x, y
}

// TestHistogramMatchesExactOnQuantizedData: when every feature has fewer
// distinct values than MaxBins, each value gets its own bin and the
// candidate split partitions coincide with exact greedy's, so both modes
// route every training row to a leaf holding the same row set. Training
// predictions must then agree. (Held-out rows may still route
// differently: deep nodes place their thresholds between node-local
// values in exact mode but between global bin edges in histogram mode —
// same partition of the node's rows, different cut point in the gap.)
func TestHistogramMatchesExactOnQuantizedData(t *testing.T) {
	x, y := quantizedData(31, 500, 4, 12)
	idx := allIdx(len(x))
	cfg := TreeConfig{MaxDepth: 5, MinLeaf: 2}
	cfgE := cfg
	cfgE.Mode = SplitExact
	th, err := FitTree(x, y, nil, idx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	te, err := FitTree(x, y, nil, idx, cfgE)
	if err != nil {
		t.Fatal(err)
	}
	if th.NumLeaves() != te.NumLeaves() {
		t.Fatalf("leaf counts differ: histogram %d, exact %d", th.NumLeaves(), te.NumLeaves())
	}
	for i, row := range x {
		ph, pe := th.Predict(row), te.Predict(row)
		if math.Abs(ph-pe) > 1e-9 {
			t.Fatalf("row %d: histogram %v != exact %v", i, ph, pe)
		}
	}
}

func TestBuildHistIndexProperties(t *testing.T) {
	x := randMatrix(41, 600, 5)
	const maxBins = 32
	hi := buildHistIndex(x, maxBins)
	if hi.n != 600 || hi.nf != 5 {
		t.Fatalf("index shape %dx%d", hi.n, hi.nf)
	}
	for f := 0; f < hi.nf; f++ {
		if hi.nbins[f] < 1 || hi.nbins[f] > maxBins {
			t.Errorf("feature %d has %d bins, budget %d", f, hi.nbins[f], maxBins)
		}
		if len(hi.thr[f]) != hi.nbins[f]-1 {
			t.Errorf("feature %d: %d thresholds for %d bins", f, len(hi.thr[f]), hi.nbins[f])
		}
		if !sort.Float64sAreSorted(hi.thr[f]) {
			t.Errorf("feature %d thresholds not ascending", f)
		}
		codes := hi.codes[f*hi.n : (f+1)*hi.n]
		for i, c := range codes {
			if int(c) >= hi.nbins[f] {
				t.Fatalf("feature %d row %d: code %d out of %d bins", f, i, c, hi.nbins[f])
			}
			// Codes must agree with the thresholds: value <= thr[b] iff
			// code <= b, which is what routing at predict time relies on.
			v := x[i][f]
			for b, thr := range hi.thr[f] {
				if (v <= thr) != (int(c) <= b) {
					t.Fatalf("feature %d row %d: value %v code %d inconsistent with thr[%d]=%v", f, i, v, c, b, thr)
				}
			}
		}
	}
}

func TestBuildHistIndexConstantFeature(t *testing.T) {
	x := [][]float64{{1, 7}, {2, 7}, {3, 7}}
	hi := buildHistIndex(x, 8)
	if hi.nbins[1] != 1 || len(hi.thr[1]) != 0 {
		t.Errorf("constant feature: %d bins, %d thresholds", hi.nbins[1], len(hi.thr[1]))
	}
}

func TestHistogramRespectsSubsampleIndex(t *testing.T) {
	// Fitting on a subset must only depend on the subset's rows: two
	// matrices agreeing on the subset rows give identical trees.
	x1 := randMatrix(51, 200, 3)
	y := make([]float64, len(x1))
	for i := range y {
		y[i] = x1[i][0] + x1[i][1]
	}
	idx := make([]int, 0, 100)
	for i := 0; i < 200; i += 2 {
		idx = append(idx, i)
	}
	t1, err := FitTree(x1, y, nil, idx, TreeConfig{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := randMatrix(52, 50, 3)
	preds := t1.PredictBatch(q, nil)
	// Leaf values must average only subset rows: all predictions are
	// bounded by the subset's target range.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, i := range idx {
		lo, hi = math.Min(lo, y[i]), math.Max(hi, y[i])
	}
	for i, p := range preds {
		if p < lo-1e-9 || p > hi+1e-9 {
			t.Fatalf("row %d: prediction %v outside subset target range [%v,%v]", i, p, lo, hi)
		}
	}
}

// cvAccuracy runs a deterministic 2-fold split and returns held-out
// accuracy for a GBDT under the given mode.
func cvAccuracy(t *testing.T, x [][]float64, y []int, classes int, mode SplitMode) float64 {
	t.Helper()
	half := len(x) / 2
	hits, total := 0, 0
	for fold := 0; fold < 2; fold++ {
		trX, trY := x[:half], y[:half]
		teX, teY := x[half:], y[half:]
		if fold == 1 {
			trX, trY, teX, teY = teX, teY, trX, trY
		}
		g := NewGBDT(BoostConfig{Rounds: 20, Seed: 13, Tree: TreeConfig{MaxDepth: 4, Mode: mode}})
		if err := g.FitClassifier(trX, trY, classes); err != nil {
			t.Fatal(err)
		}
		probs := g.PredictProbaBatch(teX)
		for i := range teX {
			if ml.ArgMax(probs[i]) == teY[i] {
				hits++
			}
			total++
		}
	}
	return float64(hits) / float64(total)
}

// cvMAPE is the regression analogue: held-out MAPE under the given mode.
func cvMAPE(t *testing.T, x [][]float64, y []float64, mode SplitMode) float64 {
	t.Helper()
	half := len(x) / 2
	var sum float64
	n := 0
	for fold := 0; fold < 2; fold++ {
		trX, trY := x[:half], y[:half]
		teX, teY := x[half:], y[half:]
		if fold == 1 {
			trX, trY, teX, teY = teX, teY, trX, trY
		}
		g := NewGBRegressor(BoostConfig{Rounds: 40, Seed: 13, Tree: TreeConfig{MaxDepth: 5, MinLeaf: 3, Mode: mode}})
		if err := g.FitRegressor(trX, trY); err != nil {
			t.Fatal(err)
		}
		preds := g.PredictBatch(teX)
		for i := range teX {
			sum += math.Abs(preds[i]-teY[i]) / math.Abs(teY[i])
			n++
		}
	}
	return sum / float64(n)
}

// TestHistogramCVNoWorseThanExact is the differential acceptance check:
// on held-out data the histogram path's accuracy/MAPE must be
// statistically no worse than the exact-greedy oracle's (within a small
// slack that absorbs binning noise).
func TestHistogramCVNoWorseThanExact(t *testing.T) {
	if testing.Short() {
		t.Skip("differential CV is slow")
	}
	// Gaussian blobs with noise features: learnable enough that both
	// modes land well above chance, so "no worse" is a real comparison.
	const classes = 5
	rng := rand.New(rand.NewSource(62))
	x := make([][]float64, 600)
	y := make([]int, len(x))
	for i := range x {
		k := i % classes
		x[i] = make([]float64, 8)
		x[i][0] = 3*math.Cos(2*math.Pi*float64(k)/classes) + rng.NormFloat64()
		x[i][1] = 3*math.Sin(2*math.Pi*float64(k)/classes) + rng.NormFloat64()
		for j := 2; j < 8; j++ {
			x[i][j] = rng.NormFloat64()
		}
		y[i] = k
	}
	accH := cvAccuracy(t, x, y, classes, SplitHistogram)
	accE := cvAccuracy(t, x, y, classes, SplitExact)
	if accH < 0.6 {
		t.Errorf("histogram CV accuracy %.4f on separable blobs, want >= 0.6", accH)
	}
	t.Logf("CV accuracy: histogram %.4f, exact %.4f", accH, accE)
	if accH < accE-0.05 {
		t.Errorf("histogram CV accuracy %.4f more than 0.05 below exact %.4f", accH, accE)
	}

	xr := randMatrix(61, 600, 6)
	yr := make([]float64, len(xr))
	for i := range yr {
		// Targets bounded away from zero keep MAPE well defined.
		yr[i] = 20 + 2*xr[i][0] - xr[i][1]*xr[i][2] + 0.1*xr[i][3]
	}
	mapeH := cvMAPE(t, xr, yr, SplitHistogram)
	mapeE := cvMAPE(t, xr, yr, SplitExact)
	t.Logf("CV MAPE: histogram %.4f, exact %.4f", mapeH, mapeE)
	if mapeH > 0.5 {
		t.Errorf("histogram CV MAPE %.4f on a smooth target, want <= 0.5", mapeH)
	}
	if mapeH > mapeE+0.05 {
		t.Errorf("histogram CV MAPE %.4f more than 0.05 above exact %.4f", mapeH, mapeE)
	}
}

// TestFeatureImportanceOrdering: targets built from a known feature
// hierarchy (feature 0 dominant, feature 1 secondary, rest noise) must
// come back in that order from gain-based importance — the same check
// the paper's Table II feature ranking rests on.
func TestFeatureImportanceOrdering(t *testing.T) {
	for _, mode := range []SplitMode{SplitHistogram, SplitExact} {
		t.Run(mode.String(), func(t *testing.T) {
			x := randMatrix(71, 500, 5)
			y := make([]float64, len(x))
			for i := range y {
				y[i] = 10*x[i][0] + 2*x[i][1] + 0.01*x[i][2]
			}
			g := NewGBRegressor(BoostConfig{Rounds: 30, Seed: 8, Tree: TreeConfig{MaxDepth: 4, Mode: mode}})
			if err := g.FitRegressor(x, y); err != nil {
				t.Fatal(err)
			}
			imp := g.FeatureImportance()
			if len(imp) == 0 {
				t.Fatal("no importance from fitted ensemble")
			}
			var total float64
			for _, v := range imp {
				if v < 0 {
					t.Fatalf("negative importance %v", v)
				}
				total += v
			}
			if math.Abs(total-1) > 1e-9 {
				t.Errorf("importance sums to %v, want 1", total)
			}
			if imp[0] < imp[1] || (len(imp) > 2 && imp[1] < imp[2]) {
				t.Errorf("importance ordering wrong: %v", imp)
			}
			if imp[0] < 0.5 {
				t.Errorf("dominant feature importance %.3f, want > 0.5", imp[0])
			}
		})
	}
}

func TestFeatureImportanceGBDT(t *testing.T) {
	// Labels derive only from the signs of features 0 and 1; features 2-4
	// are pure noise, so gain-based importance must concentrate on the
	// label-driving pair.
	const classes = 3
	x := randMatrix(91, 300, 5)
	y := make([]int, len(x))
	for i := range y {
		k := 0
		if x[i][0] > 0 {
			k++
		}
		if x[i][1] > 0 {
			k++
		}
		y[i] = k
	}
	g := NewGBDT(BoostConfig{Rounds: 10, Seed: 3, Tree: TreeConfig{MaxDepth: 3}})
	if err := g.FitClassifier(x, y, classes); err != nil {
		t.Fatal(err)
	}
	imp := g.FeatureImportance()
	if len(imp) == 0 {
		t.Fatal("no importance from fitted classifier")
	}
	var total float64
	for _, v := range imp {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("importance sums to %v, want 1", total)
	}
	if imp[0]+imp[1] < 0.6 {
		t.Errorf("label-driving features hold %.3f of gain, want > 0.6 (%v)", imp[0]+imp[1], imp)
	}
	var unfit GBDT
	if got := unfit.FeatureImportance(); got != nil {
		t.Errorf("unfitted importance = %v, want nil", got)
	}
}

func TestMaxBinsClamped(t *testing.T) {
	cfg := TreeConfig{MaxBins: 1000}
	cfg.setDefaults()
	if cfg.MaxBins != maxHistBins {
		t.Errorf("MaxBins 1000 clamped to %d, want %d", cfg.MaxBins, maxHistBins)
	}
	cfg = TreeConfig{MaxBins: 1}
	cfg.setDefaults()
	if cfg.MaxBins != 2 {
		t.Errorf("MaxBins 1 clamped to %d, want 2", cfg.MaxBins)
	}
	// A tiny bin budget still fits a usable (if coarse) tree.
	x, y := quantizedData(81, 100, 3, 20)
	tr, err := FitTree(x, y, nil, allIdx(len(x)), TreeConfig{MaxDepth: 3, MaxBins: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() < 1 {
		t.Error("2-bin tree grew no splits")
	}
}
