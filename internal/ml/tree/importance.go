package tree

// addGains accumulates each internal node's split gain into the slot of
// its split feature, growing gains as needed, and returns the (possibly
// reallocated) slice.
func (t *Tree) addGains(gains []float64) []float64 {
	for _, nd := range t.flat.nodes {
		if nd.feature < 0 {
			continue
		}
		for int(nd.feature) >= len(gains) {
			gains = append(gains, 0)
		}
		gains[nd.feature] += nd.gain
	}
	return gains
}

// normalizeGains scales gains to sum to 1 (left untouched when the total
// gain is zero, e.g. an all-leaf ensemble).
func normalizeGains(gains []float64) []float64 {
	var total float64
	for _, g := range gains {
		total += g
	}
	if total > 0 {
		for i := range gains {
			gains[i] /= total
		}
	}
	return gains
}

// FeatureImportance returns the normalized total split gain per feature
// across every tree in the ensemble — the gain-based importance XGBoost
// reports. Index i is feature i's share of the total gain; the slice is
// as long as the highest feature any tree split on, plus one. Returns
// nil for an unfitted ensemble.
func (g *GBRegressor) FeatureImportance() []float64 {
	var gains []float64
	for _, t := range g.trees {
		gains = t.addGains(gains)
	}
	return normalizeGains(gains)
}

// FeatureImportance returns the normalized total split gain per feature
// across every (round, class) tree. See GBRegressor.FeatureImportance.
func (g *GBDT) FeatureImportance() []float64 {
	var gains []float64
	for _, round := range g.trees {
		for _, t := range round {
			gains = t.addGains(gains)
		}
	}
	return normalizeGains(gains)
}
