package tree

import "fmt"

// FlatNode is one serialized tree node. Nodes flatten in preorder into an
// array; Left and Right index that array and are -1 for leaves. The flat
// form keeps checkpoints free of pointer cycles and lets reconstruction
// validate structure (bounds, acyclicity, full coverage) before any
// prediction runs.
type FlatNode struct {
	// Feature is the split feature index, or -1 for a leaf.
	Feature int `json:"f"`
	// Threshold is the split threshold (unused for leaves).
	Threshold float64 `json:"t"`
	// Value is the leaf prediction (unused for internal nodes).
	Value float64 `json:"v"`
	// Gain is the split gain at internal nodes (feeds FeatureImportance);
	// omitted from JSON when zero, so checkpoints written before the field
	// existed load unchanged and the format version stays 1.
	Gain float64 `json:"g,omitempty"`
	// Left and Right index the node array; -1 for leaves.
	Left  int `json:"l"`
	Right int `json:"r"`
}

// Flatten serializes the tree into preorder flat nodes.
func (t *Tree) Flatten() []FlatNode {
	var out []FlatNode
	var walk func(n *node) int
	walk = func(n *node) int {
		at := len(out)
		out = append(out, FlatNode{Feature: n.feature, Threshold: n.threshold, Value: n.value, Gain: n.gain, Left: -1, Right: -1})
		if n.feature >= 0 {
			out[at].Left = walk(n.left)
			out[at].Right = walk(n.right)
		}
		return at
	}
	walk(t.root)
	return out
}

// TreeFromFlat rebuilds a tree from flat nodes, validating structure:
// child indices must stay in bounds, every node must be referenced at
// most once (no sharing, no cycles), and internal nodes need both
// children. A corrupt node array fails here rather than mispredicting.
func TreeFromFlat(nodes []FlatNode) (*Tree, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("tree: empty node array")
	}
	used := make([]bool, len(nodes))
	var build func(i int) (*node, error)
	build = func(i int) (*node, error) {
		if i < 0 || i >= len(nodes) {
			return nil, fmt.Errorf("tree: node index %d outside [0,%d)", i, len(nodes))
		}
		if used[i] {
			return nil, fmt.Errorf("tree: node %d referenced twice", i)
		}
		used[i] = true
		fn := nodes[i]
		n := &node{feature: fn.Feature, threshold: fn.Threshold, value: fn.Value, gain: fn.Gain}
		if fn.Feature < 0 {
			if fn.Left != -1 || fn.Right != -1 {
				return nil, fmt.Errorf("tree: leaf %d has children", i)
			}
			return n, nil
		}
		var err error
		if n.left, err = build(fn.Left); err != nil {
			return nil, err
		}
		if n.right, err = build(fn.Right); err != nil {
			return nil, err
		}
		return n, nil
	}
	root, err := build(0)
	if err != nil {
		return nil, err
	}
	for i, u := range used {
		if !u {
			return nil, fmt.Errorf("tree: node %d unreachable from root", i)
		}
	}
	t := &Tree{root: root}
	t.finalize()
	return t, nil
}

// GBRegressorState is the serializable form of a fitted GBRegressor.
type GBRegressorState struct {
	Config BoostConfig  `json:"config"`
	Base   float64      `json:"base"`
	Trees  [][]FlatNode `json:"trees"`
}

// State snapshots a fitted regressor.
func (g *GBRegressor) State() GBRegressorState {
	st := GBRegressorState{Config: g.cfg, Base: g.base}
	for _, t := range g.trees {
		st.Trees = append(st.Trees, t.Flatten())
	}
	return st
}

// GBRegressorFromState rehydrates a regressor, validating every tree.
// The stored config is used verbatim (it was normalized at fit time), so
// predictions are bitwise identical to the snapshotted model's.
func GBRegressorFromState(st GBRegressorState) (*GBRegressor, error) {
	g := &GBRegressor{cfg: st.Config, base: st.Base}
	for i, fn := range st.Trees {
		t, err := TreeFromFlat(fn)
		if err != nil {
			return nil, fmt.Errorf("tree: GBRegressor tree %d: %w", i, err)
		}
		g.trees = append(g.trees, t)
	}
	return g, nil
}

// GBDTState is the serializable form of a fitted GBDT classifier.
type GBDTState struct {
	Config  BoostConfig    `json:"config"`
	Classes int            `json:"classes"`
	Prior   []float64      `json:"prior"`
	Trees   [][][]FlatNode `json:"trees"` // [round][class]
}

// State snapshots a fitted classifier.
func (g *GBDT) State() GBDTState {
	st := GBDTState{Config: g.cfg, Classes: g.classes, Prior: g.prior}
	for _, round := range g.trees {
		var r [][]FlatNode
		for _, t := range round {
			r = append(r, t.Flatten())
		}
		st.Trees = append(st.Trees, r)
	}
	return st
}

// GBDTFromState rehydrates a classifier, validating the class/prior/tree
// shape agreement so a payload whose ensemble disagrees with its declared
// class count errors instead of mispredicting.
func GBDTFromState(st GBDTState) (*GBDT, error) {
	if st.Classes < 2 {
		return nil, fmt.Errorf("tree: GBDT state with %d classes", st.Classes)
	}
	if len(st.Prior) != st.Classes {
		return nil, fmt.Errorf("tree: GBDT state has %d priors for %d classes", len(st.Prior), st.Classes)
	}
	g := &GBDT{cfg: st.Config, classes: st.Classes, prior: st.Prior}
	for ri, round := range st.Trees {
		if len(round) != st.Classes {
			return nil, fmt.Errorf("tree: GBDT round %d has %d trees for %d classes", ri, len(round), st.Classes)
		}
		var r []*Tree
		for ci, fn := range round {
			t, err := TreeFromFlat(fn)
			if err != nil {
				return nil, fmt.Errorf("tree: GBDT round %d class %d: %w", ri, ci, err)
			}
			r = append(r, t)
		}
		g.trees = append(g.trees, r)
	}
	return g, nil
}
