package tree

import (
	"encoding/json"
	"math"
	"testing"
)

// TestGBDTStateRoundTripBatch round-trips a histogram-trained classifier
// through its JSON state and proves the rehydrated model's batched
// predictions are bitwise identical — the PR 3 differential bar extended
// to the batched entry points.
func TestGBDTStateRoundTripBatch(t *testing.T) {
	const classes = 4
	x, y := synthClassData(200, 5, classes)
	g := NewGBDT(BoostConfig{Rounds: 6, Seed: 2, Tree: TreeConfig{MaxDepth: 3}})
	if err := g.FitClassifier(x, y, classes); err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(g.State())
	if err != nil {
		t.Fatal(err)
	}
	var st GBDTState
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	g2, err := GBDTFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	want := g.PredictProbaBatch(x)
	got := g2.PredictProbaBatch(x)
	for i := range want {
		for k := range want[i] {
			if math.Float64bits(want[i][k]) != math.Float64bits(got[i][k]) {
				t.Fatalf("row %d class %d: %v != %v after round trip", i, k, want[i][k], got[i][k])
			}
		}
	}
	impW, impG := g.FeatureImportance(), g2.FeatureImportance()
	if len(impW) != len(impG) {
		t.Fatalf("importance length %d != %d after round trip", len(impW), len(impG))
	}
	for f := range impW {
		if math.Float64bits(impW[f]) != math.Float64bits(impG[f]) {
			t.Fatalf("feature %d importance %v != %v after round trip", f, impW[f], impG[f])
		}
	}
}

// TestGBRegressorStateRoundTripBatch is the regression analogue.
func TestGBRegressorStateRoundTripBatch(t *testing.T) {
	x := randMatrix(33, 200, 4)
	y := make([]float64, len(x))
	for i := range y {
		y[i] = 2*x[i][0] - x[i][1]*x[i][2]
	}
	g := NewGBRegressor(BoostConfig{Rounds: 12, Seed: 2})
	if err := g.FitRegressor(x, y); err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(g.State())
	if err != nil {
		t.Fatal(err)
	}
	var st GBRegressorState
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	g2, err := GBRegressorFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	want := g.PredictBatch(x)
	got := g2.PredictBatch(x)
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("row %d: %v != %v after round trip", i, want[i], got[i])
		}
	}
	impW, impG := g.FeatureImportance(), g2.FeatureImportance()
	for f := range impW {
		if math.Float64bits(impW[f]) != math.Float64bits(impG[f]) {
			t.Fatalf("feature %d importance %v != %v after round trip", f, impW[f], impG[f])
		}
	}
}

// TestFlatNodeGainBackwardCompat: node arrays written before the Gain
// field existed (no "g" key) must still load, with zero gains.
func TestFlatNodeGainBackwardCompat(t *testing.T) {
	blob := []byte(`[{"f":0,"t":0.5,"v":0,"l":1,"r":2},{"f":-1,"t":0,"v":1,"l":-1,"r":-1},{"f":-1,"t":0,"v":2,"l":-1,"r":-1}]`)
	var nodes []FlatNode
	if err := json.Unmarshal(blob, &nodes); err != nil {
		t.Fatal(err)
	}
	tr, err := TreeFromFlat(nodes)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{0.2}); got != 1 {
		t.Errorf("left leaf = %v, want 1", got)
	}
	if got := tr.Predict([]float64{0.9}); got != 2 {
		t.Errorf("right leaf = %v, want 2", got)
	}
	out := tr.PredictBatch([][]float64{{0.2}, {0.9}}, nil)
	if out[0] != 1 || out[1] != 2 {
		t.Errorf("batch after legacy load = %v, want [1 2]", out)
	}
}
