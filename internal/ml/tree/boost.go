package tree

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"stencilmart/internal/par"
)

// parRowThreshold is the row count below which per-row prediction
// updates run serially; pool dispatch overhead dominates under it.
// Either path writes each row's slot independently, so the choice never
// changes the fitted model.
const parRowThreshold = 256

// BoostConfig controls gradient boosting for both the classifier and the
// regressor.
type BoostConfig struct {
	// Rounds is the number of boosting iterations; 0 means 60.
	Rounds int
	// LearningRate is the shrinkage; 0 means 0.1.
	LearningRate float64
	// Subsample is the per-round row-sampling fraction; 0 means 0.8.
	Subsample float64
	// Tree configures the base learners.
	Tree TreeConfig
	// Seed drives row subsampling.
	Seed int64
}

func (c *BoostConfig) setDefaults() {
	if c.Rounds == 0 {
		c.Rounds = 60
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.1
	}
	if c.Subsample == 0 {
		c.Subsample = 0.8
	}
	c.Tree.setDefaults()
}

// sampleRows draws a subsample of row indices without replacement.
func sampleRows(n int, frac float64, rng *rand.Rand) []int {
	k := int(frac * float64(n))
	if k < 2 {
		k = n
	}
	perm := rng.Perm(n)
	idx := perm[:k]
	return idx
}

// GBRegressor is a gradient-boosted regression ensemble with squared
// loss — the stand-in for the paper's XGBoost GBRegressor.
type GBRegressor struct {
	cfg   BoostConfig
	base  float64
	trees []*Tree
}

// NewGBRegressor returns an unfitted regressor.
func NewGBRegressor(cfg BoostConfig) *GBRegressor {
	cfg.setDefaults()
	return &GBRegressor{cfg: cfg}
}

// FitRegressor implements ml.Regressor.
func (g *GBRegressor) FitRegressor(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("tree: GBRegressor fit with %d rows, %d targets", len(x), len(y))
	}
	rng := rand.New(rand.NewSource(g.cfg.Seed + 1))
	g.base = 0
	for _, v := range y {
		g.base += v
	}
	g.base /= float64(len(y))

	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = g.base
	}
	resid := make([]float64, len(y))
	g.trees = g.trees[:0]
	for round := 0; round < g.cfg.Rounds; round++ {
		for i := range y {
			resid[i] = y[i] - pred[i]
		}
		idx := sampleRows(len(y), g.cfg.Subsample, rng)
		t, err := FitTree(x, resid, nil, idx, g.cfg.Tree)
		if err != nil {
			return err
		}
		g.trees = append(g.trees, t)
		applyTree(pred, x, t, g.cfg.LearningRate)
	}
	return nil
}

// applyTree adds lr * t.Predict(x[i]) to pred[i] for every row, in
// parallel for large batches. Each row writes only its own slot, so the
// result is identical to the serial loop under any GOMAXPROCS.
func applyTree(pred []float64, x [][]float64, t *Tree, lr float64) {
	if len(pred) < parRowThreshold {
		for i := range pred {
			pred[i] += lr * t.Predict(x[i])
		}
		return
	}
	par.ForEach(context.Background(), len(pred), 0, func(i int) error {
		pred[i] += lr * t.Predict(x[i])
		return nil
	})
}

// PredictValue implements ml.Regressor.
func (g *GBRegressor) PredictValue(row []float64) float64 {
	out := g.base
	for _, t := range g.trees {
		out += g.cfg.LearningRate * t.Predict(row)
	}
	return out
}

// NumTrees returns the fitted ensemble size.
func (g *GBRegressor) NumTrees() int { return len(g.trees) }

// GBDT is a gradient-boosted multiclass classifier with softmax loss —
// the stand-in for the paper's XGBoost GBDT. Each round fits one tree per
// class to the softmax gradient with Newton leaf values.
type GBDT struct {
	cfg     BoostConfig
	classes int
	prior   []float64
	trees   [][]*Tree // [round][class]
}

// NewGBDT returns an unfitted classifier.
func NewGBDT(cfg BoostConfig) *GBDT {
	cfg.setDefaults()
	return &GBDT{cfg: cfg}
}

// FitClassifier implements ml.Classifier.
func (g *GBDT) FitClassifier(x [][]float64, y []int, numClasses int) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("tree: GBDT fit with %d rows, %d labels", len(x), len(y))
	}
	if numClasses < 2 {
		return fmt.Errorf("tree: GBDT needs >= 2 classes, got %d", numClasses)
	}
	for i, l := range y {
		if l < 0 || l >= numClasses {
			return fmt.Errorf("tree: label %d at row %d outside [0,%d)", l, i, numClasses)
		}
	}
	rng := rand.New(rand.NewSource(g.cfg.Seed + 2))
	g.classes = numClasses

	// Log-prior initialization.
	counts := make([]float64, numClasses)
	for _, l := range y {
		counts[l]++
	}
	g.prior = make([]float64, numClasses)
	for k := range g.prior {
		g.prior[k] = math.Log((counts[k] + 1) / float64(len(y)+numClasses))
	}

	n := len(x)
	scores := make([][]float64, n)
	for i := range scores {
		scores[i] = append([]float64(nil), g.prior...)
	}
	g.trees = g.trees[:0]
	kf := float64(numClasses-1) / float64(numClasses)

	for round := 0; round < g.cfg.Rounds; round++ {
		roundTrees := make([]*Tree, numClasses)
		probs := make([][]float64, n)
		for i := range scores {
			probs[i] = softmax(scores[i])
		}
		idx := sampleRows(n, g.cfg.Subsample, rng)
		// Per-class trees fit in parallel: grad/hess derive from the
		// round-start probs snapshot, each class owns its buffers and its
		// roundTrees slot, and the score update touches only column k, so
		// the fitted ensemble is identical to the serial class loop.
		if err := par.ForEach(context.Background(), numClasses, 0, func(k int) error {
			grad := make([]float64, n)
			hess := make([]float64, n)
			for i := range x {
				yk := 0.0
				if y[i] == k {
					yk = 1
				}
				p := probs[i][k]
				grad[i] = (yk - p) * kf
				hess[i] = p * (1 - p) * kf
			}
			t, err := FitTree(x, grad, hess, idx, g.cfg.Tree)
			if err != nil {
				return err
			}
			roundTrees[k] = t
			for i := range scores {
				scores[i][k] += g.cfg.LearningRate * t.Predict(x[i])
			}
			return nil
		}); err != nil {
			var errs par.Errors
			if errors.As(err, &errs) {
				return errs.First()
			}
			return err
		}
		g.trees = append(g.trees, roundTrees)
	}
	return nil
}

// PredictProba implements ml.Classifier.
func (g *GBDT) PredictProba(row []float64) []float64 {
	scores := append([]float64(nil), g.prior...)
	for _, round := range g.trees {
		for k, t := range round {
			scores[k] += g.cfg.LearningRate * t.Predict(row)
		}
	}
	return softmax(scores)
}

// PredictClass implements ml.Classifier.
func (g *GBDT) PredictClass(row []float64) int {
	p := g.PredictProba(row)
	best := 0
	for k := range p {
		if p[k] > p[best] {
			best = k
		}
	}
	return best
}

// NumClasses returns the number of classes fitted.
func (g *GBDT) NumClasses() int { return g.classes }

func softmax(scores []float64) []float64 {
	out := make([]float64, len(scores))
	maxv := scores[0]
	for _, s := range scores[1:] {
		if s > maxv {
			maxv = s
		}
	}
	var sum float64
	for i, s := range scores {
		out[i] = math.Exp(s - maxv)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
