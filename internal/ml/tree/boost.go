package tree

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"stencilmart/internal/par"
)

// parRowThreshold is the row count below which per-row prediction
// updates run serially; pool dispatch overhead dominates under it.
// Either path writes each row's slot independently, so the choice never
// changes the fitted model.
const parRowThreshold = 256

// batchChunk is the rows-per-job granularity for parallel batched
// prediction updates: chunks own disjoint sub-slices of the prediction
// and routing-scratch arrays.
const batchChunk = 512

// BoostConfig controls gradient boosting for both the classifier and the
// regressor.
type BoostConfig struct {
	// Rounds is the number of boosting iterations; 0 means 60.
	Rounds int
	// LearningRate is the shrinkage; 0 means 0.1.
	LearningRate float64
	// Subsample is the per-round row-sampling fraction; 0 means 0.8.
	Subsample float64
	// Tree configures the base learners.
	Tree TreeConfig
	// Seed drives row subsampling.
	Seed int64
}

func (c *BoostConfig) setDefaults() {
	if c.Rounds == 0 {
		c.Rounds = 60
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.1
	}
	if c.Subsample == 0 {
		c.Subsample = 0.8
	}
	c.Tree.setDefaults()
}

// sampleRows draws a subsample of row indices without replacement.
func sampleRows(n int, frac float64, rng *rand.Rand) []int {
	k := int(frac * float64(n))
	if k < 2 {
		k = n
	}
	perm := rng.Perm(n)
	idx := perm[:k]
	return idx
}

// ensembleHistIndex builds the shared histogram index for an ensemble
// fit, or nil in exact mode. Bins depend only on x — not on gradients or
// the per-round subsample — so one index serves every round and class.
func ensembleHistIndex(x [][]float64, cfg TreeConfig) *histIndex {
	if cfg.Mode != SplitHistogram {
		return nil
	}
	return buildHistIndex(x, cfg.MaxBins)
}

// GBRegressor is a gradient-boosted regression ensemble with squared
// loss — the stand-in for the paper's XGBoost GBRegressor.
type GBRegressor struct {
	cfg   BoostConfig
	base  float64
	trees []*Tree
}

// NewGBRegressor returns an unfitted regressor.
func NewGBRegressor(cfg BoostConfig) *GBRegressor {
	cfg.setDefaults()
	return &GBRegressor{cfg: cfg}
}

// FitRegressor implements ml.Regressor. Inputs containing NaN or ±Inf
// are rejected with an error wrapping ErrNonFinite.
func (g *GBRegressor) FitRegressor(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("tree: GBRegressor fit with %d rows, %d targets", len(x), len(y))
	}
	if err := checkFeatures(x); err != nil {
		return err
	}
	if err := checkFinite("target", y); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(g.cfg.Seed + 1))
	g.base = 0
	for _, v := range y {
		g.base += v
	}
	g.base /= float64(len(y))

	hi := ensembleHistIndex(x, g.cfg.Tree)
	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = g.base
	}
	resid := make([]float64, len(y))
	g.trees = g.trees[:0]
	for round := 0; round < g.cfg.Rounds; round++ {
		for i := range y {
			resid[i] = y[i] - pred[i]
		}
		idx := sampleRows(len(y), g.cfg.Subsample, rng)
		t, err := fitTree(x, resid, nil, idx, g.cfg.Tree, hi)
		if err != nil {
			return err
		}
		g.trees = append(g.trees, t)
		applyTree(pred, x, t, g.cfg.LearningRate)
	}
	return nil
}

// applyTree adds lr * t(x[i]) to pred[i] for every row via the batched
// flat-tree traversal, in parallel chunks for large batches. Each chunk
// owns a disjoint sub-slice of pred, so the result is identical to the
// serial loop under any GOMAXPROCS.
func applyTree(pred []float64, x [][]float64, t *Tree, lr float64) {
	if len(pred) < parRowThreshold {
		t.accumBatch(x, pred, lr)
		return
	}
	chunks := (len(pred) + batchChunk - 1) / batchChunk
	par.ForEach(context.Background(), chunks, 0, func(c int) error {
		lo := c * batchChunk
		hi := lo + batchChunk
		if hi > len(pred) {
			hi = len(pred)
		}
		t.accumBatch(x[lo:hi], pred[lo:hi], lr)
		return nil
	})
}

// PredictValue implements ml.Regressor.
func (g *GBRegressor) PredictValue(row []float64) float64 {
	out := g.base
	for _, t := range g.trees {
		out += g.cfg.LearningRate * t.Predict(row)
	}
	return out
}

// PredictBatch evaluates every row in one pass per tree, reusing one
// routing-scratch slice across the ensemble. Each row's result is
// bitwise identical to PredictValue on that row: trees accumulate in the
// same ascending order with the same per-row operations.
func (g *GBRegressor) PredictBatch(rows [][]float64) []float64 {
	if len(rows) == 0 {
		return nil
	}
	out := make([]float64, len(rows))
	for i := range out {
		out[i] = g.base
	}
	for _, t := range g.trees {
		t.accumBatch(rows, out, g.cfg.LearningRate)
	}
	return out
}

// PredictValueBatch implements ml.BatchRegressor.
func (g *GBRegressor) PredictValueBatch(rows [][]float64) []float64 {
	return g.PredictBatch(rows)
}

// NumTrees returns the fitted ensemble size.
func (g *GBRegressor) NumTrees() int { return len(g.trees) }

// GBDT is a gradient-boosted multiclass classifier with softmax loss —
// the stand-in for the paper's XGBoost GBDT. Each round fits one tree per
// class to the softmax gradient with Newton leaf values.
type GBDT struct {
	cfg     BoostConfig
	classes int
	prior   []float64
	trees   [][]*Tree // [round][class]
}

// NewGBDT returns an unfitted classifier.
func NewGBDT(cfg BoostConfig) *GBDT {
	cfg.setDefaults()
	return &GBDT{cfg: cfg}
}

// FitClassifier implements ml.Classifier. Feature matrices containing
// NaN or ±Inf are rejected with an error wrapping ErrNonFinite.
func (g *GBDT) FitClassifier(x [][]float64, y []int, numClasses int) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("tree: GBDT fit with %d rows, %d labels", len(x), len(y))
	}
	if numClasses < 2 {
		return fmt.Errorf("tree: GBDT needs >= 2 classes, got %d", numClasses)
	}
	for i, l := range y {
		if l < 0 || l >= numClasses {
			return fmt.Errorf("tree: label %d at row %d outside [0,%d)", l, i, numClasses)
		}
	}
	if err := checkFeatures(x); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(g.cfg.Seed + 2))
	g.classes = numClasses

	// Log-prior initialization.
	counts := make([]float64, numClasses)
	for _, l := range y {
		counts[l]++
	}
	g.prior = make([]float64, numClasses)
	for k := range g.prior {
		g.prior[k] = math.Log((counts[k] + 1) / float64(len(y)+numClasses))
	}

	hi := ensembleHistIndex(x, g.cfg.Tree)
	n := len(x)
	scores := make([][]float64, n)
	for i := range scores {
		scores[i] = append([]float64(nil), g.prior...)
	}
	g.trees = g.trees[:0]
	kf := float64(numClasses-1) / float64(numClasses)

	for round := 0; round < g.cfg.Rounds; round++ {
		roundTrees := make([]*Tree, numClasses)
		probs := make([][]float64, n)
		for i := range scores {
			probs[i] = softmax(scores[i])
		}
		idx := sampleRows(n, g.cfg.Subsample, rng)
		// Per-class trees fit in parallel: grad/hess derive from the
		// round-start probs snapshot, each class owns its buffers and its
		// roundTrees slot, and the score update touches only column k, so
		// the fitted ensemble is identical to the serial class loop.
		if err := par.ForEach(context.Background(), numClasses, 0, func(k int) error {
			grad := make([]float64, n)
			hess := make([]float64, n)
			for i := range x {
				yk := 0.0
				if y[i] == k {
					yk = 1
				}
				p := probs[i][k]
				grad[i] = (yk - p) * kf
				hess[i] = p * (1 - p) * kf
			}
			t, err := fitTree(x, grad, hess, idx, g.cfg.Tree, hi)
			if err != nil {
				return err
			}
			roundTrees[k] = t
			col := make([]float64, n)
			t.predictInto(x, col)
			for i := range scores {
				scores[i][k] += g.cfg.LearningRate * col[i]
			}
			return nil
		}); err != nil {
			var errs par.Errors
			if errors.As(err, &errs) {
				return errs.First()
			}
			return err
		}
		g.trees = append(g.trees, roundTrees)
	}
	return nil
}

// PredictProba implements ml.Classifier.
func (g *GBDT) PredictProba(row []float64) []float64 {
	scores := append([]float64(nil), g.prior...)
	for _, round := range g.trees {
		for k, t := range round {
			scores[k] += g.cfg.LearningRate * t.Predict(row)
		}
	}
	return softmax(scores)
}

// PredictProbaBatch implements ml.BatchClassifier: one level-order pass
// per (round, class) tree over the whole batch. Each row's probabilities
// are bitwise identical to PredictProba on that row — trees accumulate
// in the same (round ascending, class ascending) order and
// softmaxInPlace performs the same operations as softmax.
func (g *GBDT) PredictProbaBatch(rows [][]float64) [][]float64 {
	if len(rows) == 0 {
		return nil
	}
	out := make([][]float64, len(rows))
	for i := range out {
		out[i] = append([]float64(nil), g.prior...)
	}
	col := make([]float64, len(rows))
	for _, round := range g.trees {
		for k, t := range round {
			t.predictInto(rows, col)
			for i := range out {
				out[i][k] += g.cfg.LearningRate * col[i]
			}
		}
	}
	for i := range out {
		softmaxInPlace(out[i])
	}
	return out
}

// PredictClass implements ml.Classifier.
func (g *GBDT) PredictClass(row []float64) int {
	p := g.PredictProba(row)
	best := 0
	for k := range p {
		if p[k] > p[best] {
			best = k
		}
	}
	return best
}

// NumClasses returns the number of classes fitted.
func (g *GBDT) NumClasses() int { return g.classes }

func softmax(scores []float64) []float64 {
	out := make([]float64, len(scores))
	maxv := scores[0]
	for _, s := range scores[1:] {
		if s > maxv {
			maxv = s
		}
	}
	var sum float64
	for i, s := range scores {
		out[i] = math.Exp(s - maxv)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// softmaxInPlace overwrites scores with softmax(scores), performing the
// exact operation sequence of softmax so results are bitwise identical.
func softmaxInPlace(scores []float64) {
	maxv := scores[0]
	for _, s := range scores[1:] {
		if s > maxv {
			maxv = s
		}
	}
	var sum float64
	for i, s := range scores {
		scores[i] = math.Exp(s - maxv)
		sum += scores[i]
	}
	for i := range scores {
		scores[i] /= sum
	}
}
