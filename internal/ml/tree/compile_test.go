package tree

import (
	"math"
	"testing"
)

// rowsToF32 converts a float64 corpus to the f32 rows the compiled lane
// scores.
func rowsToF32(rows [][]float64) [][]float32 {
	out := make([][]float32, len(rows))
	for i, r := range rows {
		f := make([]float32, len(r))
		for j, v := range r {
			f[j] = float32(v)
		}
		out[i] = f
	}
	return out
}

// TestCompiledEnsembleMatchesF64 holds the differential contract of the
// regression lane: the quantized SoA traversal must reproduce the
// float64 ensemble within a tight relative tolerance — the only error
// sources are one f32 rounding per threshold/leaf/input and the f32
// accumulation order.
func TestCompiledEnsembleMatchesF64(t *testing.T) {
	x, yv, _ := benchData(600, 12, 5)
	g := NewGBRegressor(BoostConfig{Rounds: 30, Seed: 7, Tree: TreeConfig{MaxDepth: 6, MinLeaf: 3}})
	if err := g.FitRegressor(x, yv); err != nil {
		t.Fatal(err)
	}
	c, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.NumTrees() != g.NumTrees() {
		t.Fatalf("compiled %d trees, fitted %d", c.NumTrees(), g.NumTrees())
	}
	want := g.PredictValueBatch(x)
	rows := rowsToF32(x)
	got := make([]float32, len(rows))
	c.PredictValueBatchF32(rows, got)
	for i := range want {
		diff := math.Abs(float64(got[i]) - want[i])
		if diff > 1e-3*math.Max(1, math.Abs(want[i])) {
			t.Fatalf("row %d: f32 %g vs f64 %g (diff %g)", i, got[i], want[i], diff)
		}
	}
}

// TestCompiledGBDTMatchesF64 holds the classification contract: class
// decisions identical wherever the float64 lane is not itself sitting on
// a tie (top-2 probability gap below the serving epsilon), and
// probabilities close everywhere.
func TestCompiledGBDTMatchesF64(t *testing.T) {
	const classes = 5
	x, _, yc := benchData(600, 12, classes)
	g := NewGBDT(BoostConfig{Rounds: 15, Seed: 7, Tree: TreeConfig{MaxDepth: 6}})
	if err := g.FitClassifier(x, yc, classes); err != nil {
		t.Fatal(err)
	}
	c, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.Classes() != classes {
		t.Fatalf("compiled classes = %d, want %d", c.Classes(), classes)
	}
	want := g.PredictProbaBatch(x)
	rows := rowsToF32(x)
	out := make([]float32, len(rows)*classes)
	c.PredictProbaBatchF32(rows, out)
	const tieEps = 1e-6
	ties := 0
	for i, p64 := range want {
		p32 := out[i*classes : (i+1)*classes]
		for k := range p64 {
			if d := math.Abs(float64(p32[k]) - p64[k]); d > 1e-3 {
				t.Fatalf("row %d class %d: f32 proba %g vs f64 %g", i, k, p32[k], p64[k])
			}
		}
		best, second := argTop2(p64)
		if p64[best]-p64[second] < tieEps {
			ties++
			continue // f64 lane is on a knife edge; either decision is fine
		}
		got := 0
		for k := range p32 {
			if p32[k] > p32[got] {
				got = k
			}
		}
		if got != best {
			t.Fatalf("row %d: f32 decision %d vs f64 %d (gap %g)", i, got, best, p64[best]-p64[second])
		}
	}
	if ties > len(x)/10 {
		t.Fatalf("%d/%d rows on decision ties — corpus too degenerate to test", ties, len(x))
	}
}

func argTop2(p []float64) (best, second int) {
	if p[1] > p[0] {
		best, second = 1, 0
	} else {
		best, second = 0, 1
	}
	for k := 2; k < len(p); k++ {
		switch {
		case p[k] > p[best]:
			best, second = k, best
		case p[k] > p[second]:
			second = k
		}
	}
	return best, second
}

func TestCompileUnfittedFails(t *testing.T) {
	if _, err := NewGBRegressor(BoostConfig{}).Compile(); err == nil {
		t.Error("Compile of unfitted GBRegressor should fail")
	}
	if _, err := NewGBDT(BoostConfig{}).Compile(); err == nil {
		t.Error("Compile of unfitted GBDT should fail")
	}
}

// TestAllocGateTreeF32 pins the zero-allocation contract of the compiled
// scoring paths.
func TestAllocGateTreeF32(t *testing.T) {
	const classes = 5
	x, yv, yc := benchData(256, 12, classes)
	rows := rowsToF32(x)

	g := NewGBRegressor(BoostConfig{Rounds: 20, Seed: 7, Tree: TreeConfig{MaxDepth: 6, MinLeaf: 3}})
	if err := g.FitRegressor(x, yv); err != nil {
		t.Fatal(err)
	}
	ce, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float32, len(rows))
	if n := testing.AllocsPerRun(10, func() { ce.PredictValueBatchF32(rows, out) }); n != 0 {
		t.Errorf("CompiledEnsemble allocs/op = %g, want 0", n)
	}

	d := NewGBDT(BoostConfig{Rounds: 10, Seed: 7, Tree: TreeConfig{MaxDepth: 6}})
	if err := d.FitClassifier(x, yc, classes); err != nil {
		t.Fatal(err)
	}
	cd, err := d.Compile()
	if err != nil {
		t.Fatal(err)
	}
	proba := make([]float32, len(rows)*classes)
	if n := testing.AllocsPerRun(10, func() { cd.PredictProbaBatchF32(rows, proba) }); n != 0 {
		t.Errorf("CompiledGBDT allocs/op = %g, want 0", n)
	}
}

// BenchmarkLaneTreeScore compares the float64 reference ensembles
// against their compiled SoA f32 forms on a serving-sized batch — the
// `make bench-lanes` microbenchmark pair for the tree side.
func BenchmarkLaneTreeScore(b *testing.B) {
	const classes = 5
	x, yv, yc := benchData(1024, 12, classes)
	rows := rowsToF32(x)

	g := NewGBRegressor(BoostConfig{Rounds: 40, Seed: 7, Tree: TreeConfig{MaxDepth: 6, MinLeaf: 3}})
	if err := g.FitRegressor(x, yv); err != nil {
		b.Fatal(err)
	}
	ce, err := g.Compile()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("regressor/f64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = g.PredictValueBatch(x)
		}
	})
	b.Run("regressor/f32", func(b *testing.B) {
		b.ReportAllocs()
		out := make([]float32, len(rows))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ce.PredictValueBatchF32(rows, out)
		}
	})

	d := NewGBDT(BoostConfig{Rounds: 15, Seed: 7, Tree: TreeConfig{MaxDepth: 6}})
	if err := d.FitClassifier(x, yc, classes); err != nil {
		b.Fatal(err)
	}
	cd, err := d.Compile()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("gbdt/f64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = d.PredictProbaBatch(x)
		}
	})
	b.Run("gbdt/f32", func(b *testing.B) {
		b.ReportAllocs()
		out := make([]float32, len(rows)*classes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cd.PredictProbaBatchF32(rows, out)
		}
	})
}
