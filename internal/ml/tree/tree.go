// Package tree implements CART regression trees and gradient boosting:
// GBDT for multiclass OC selection and GBRegressor for execution-time
// regression — the from-scratch stand-ins for the paper's XGBoost models.
//
// Tree induction has two selectable backbones (TreeConfig.Mode): the
// default LightGBM-style histogram splitter (histogram.go) bins every
// feature once per fit into quantile bins and finds splits by scanning
// per-bin gradient histograms, and the exact-greedy splitter below
// re-sorts the node's rows per feature per node — kept as the reference
// oracle the differential suite compares the histogram path against.
package tree

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// node is one regression-tree node; leaves have feature == -1.
type node struct {
	feature     int
	threshold   float64
	value       float64
	gain        float64 // split gain at internal nodes; feeds FeatureImportance
	left, right *node
}

// Tree is a fitted CART regression tree. Alongside the pointer form it
// carries a flat preorder node array (built once at fit/load time) that
// the batched traversal in predict.go descends without pointer chasing.
type Tree struct {
	root *node
	flat flatTree
}

// SplitMode selects the split-finding backbone.
type SplitMode int

const (
	// SplitHistogram (the zero value, hence the default) bins each
	// feature once per fit into at most MaxBins quantile bins and scans
	// per-bin gradient/hessian histograms with sibling subtraction —
	// O(bins) per (node, feature) after the one-time binning sort.
	SplitHistogram SplitMode = iota
	// SplitExact is the reference oracle: it re-sorts the node's rows per
	// feature per node and considers every distinct-value boundary.
	SplitExact
)

// String names the mode.
func (m SplitMode) String() string {
	switch m {
	case SplitHistogram:
		return "histogram"
	case SplitExact:
		return "exact"
	default:
		return fmt.Sprintf("SplitMode(%d)", int(m))
	}
}

// maxHistBins is the hard per-feature bin cap: bin codes are uint8.
const maxHistBins = 256

// TreeConfig controls tree induction.
type TreeConfig struct {
	// MaxDepth bounds the tree depth; 0 means 4.
	MaxDepth int
	// MinLeaf is the minimum samples per leaf; 0 means 2.
	MinLeaf int
	// Mode selects the split backbone; the zero value is SplitHistogram.
	Mode SplitMode
	// MaxBins bounds histogram bins per feature (histogram mode only);
	// 0 means 256, and values clamp to [2, 256].
	MaxBins int
}

func (c *TreeConfig) setDefaults() {
	if c.MaxDepth == 0 {
		c.MaxDepth = 4
	}
	if c.MinLeaf == 0 {
		c.MinLeaf = 2
	}
	if c.MaxBins <= 0 || c.MaxBins > maxHistBins {
		c.MaxBins = maxHistBins
	}
	if c.MaxBins < 2 {
		c.MaxBins = 2
	}
}

// ErrNonFinite tags NaN/Inf inputs rejected by the fitting entry points.
// A NaN feature would silently misroute its row at every `<=` comparison
// (NaN compares false, so the row always goes right), so fits fail loudly
// instead.
var ErrNonFinite = errors.New("non-finite input")

// checkFeatures rejects NaN/Inf feature values and ragged rows.
func checkFeatures(x [][]float64) error {
	if len(x) == 0 {
		return nil
	}
	nf := len(x[0])
	for i, row := range x {
		if len(row) != nf {
			return fmt.Errorf("tree: row %d has %d features, row 0 has %d", i, len(row), nf)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("tree: %w: feature %d of row %d is %v", ErrNonFinite, j, i, v)
			}
		}
	}
	return nil
}

// checkFinite rejects NaN/Inf entries in a target or hessian vector.
func checkFinite(name string, v []float64) error {
	for i, f := range v {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("tree: %w: %s %d is %v", ErrNonFinite, name, i, f)
		}
	}
	return nil
}

// FitTree builds a regression tree on rows x (selected by idx) against
// target values y, minimizing squared error. The optional hessian
// weights h (nil = unweighted) make the leaf values Newton steps, as
// gradient-boosted classification requires. Inputs containing NaN or
// ±Inf are rejected with an error wrapping ErrNonFinite. In histogram
// mode the feature binning is built per call; the boosting ensembles use
// the internal entry point that bins once per ensemble fit.
func FitTree(x [][]float64, y, h []float64, idx []int, cfg TreeConfig) (*Tree, error) {
	if err := checkFeatures(x); err != nil {
		return nil, err
	}
	if err := checkFinite("target", y); err != nil {
		return nil, err
	}
	if err := checkFinite("hessian", h); err != nil {
		return nil, err
	}
	cfg.setDefaults()
	return fitTree(x, y, h, idx, cfg, nil)
}

// fitTree is the unvalidated core of FitTree: cfg must be normalized and
// x/y/h finite. The ensembles validate once up front and pass a prebuilt
// histogram index so the per-feature binning sort is paid once per
// ensemble fit instead of once per tree.
func fitTree(x [][]float64, y, h []float64, idx []int, cfg TreeConfig, hi *histIndex) (*Tree, error) {
	if len(x) == 0 || len(y) != len(x) {
		return nil, fmt.Errorf("tree: %d rows, %d targets", len(x), len(y))
	}
	if h != nil && len(h) != len(x) {
		return nil, fmt.Errorf("tree: %d rows, %d hessians", len(x), len(h))
	}
	if len(idx) == 0 {
		return nil, fmt.Errorf("tree: empty index set")
	}
	var root *node
	if cfg.Mode == SplitHistogram {
		if hi == nil {
			hi = buildHistIndex(x, cfg.MaxBins)
		}
		root = fitHistogram(hi, y, h, idx, cfg)
	} else {
		b := &exactBuilder{x: x, y: y, h: h, cfg: cfg}
		root = b.fit(idx)
	}
	t := &Tree{root: root}
	t.finalize()
	return t, nil
}

// exactBuilder grows a tree with exact-greedy splits: every node
// re-sorts its rows per feature and considers every distinct-value
// boundary. The row index set lives in one array partitioned in place
// per node (rows), with ord as per-node sort scratch and tmp as
// partition scratch — no per-node append-grown slices.
type exactBuilder struct {
	x    [][]float64
	y, h []float64
	cfg  TreeConfig
	rows []int
	ord  []int
	tmp  []int
}

func (b *exactBuilder) fit(idx []int) *node {
	b.rows = append([]int(nil), idx...)
	b.ord = make([]int, len(idx))
	b.tmp = make([]int, 0, len(idx))
	return b.build(0, len(idx), 0)
}

// leafValue returns sum(g)/sum(h) (Newton step) or the mean when
// unweighted. A small ridge term keeps the division stable.
func (b *exactBuilder) leafValue(seg []int) float64 {
	var sg, sh float64
	for _, i := range seg {
		sg += b.y[i]
		if b.h != nil {
			sh += b.h[i]
		} else {
			sh++
		}
	}
	return sg / (sh + 1e-9)
}

// impurity is the weighted sum of squares proxy: -(sum g)^2 / sum h.
func gainTerm(sg, sh float64) float64 { return sg * sg / (sh + 1e-9) }

func (b *exactBuilder) build(lo, hi, depth int) *node {
	seg := b.rows[lo:hi]
	if depth >= b.cfg.MaxDepth || len(seg) < 2*b.cfg.MinLeaf {
		return &node{feature: -1, value: b.leafValue(seg)}
	}
	feat, thr, gain, ok := b.bestSplit(seg)
	if !ok {
		return &node{feature: -1, value: b.leafValue(seg)}
	}
	mid := b.partition(lo, hi, feat, thr)
	return &node{
		feature:   feat,
		threshold: thr,
		gain:      gain,
		left:      b.build(lo, mid, depth+1),
		right:     b.build(mid, hi, depth+1),
	}
}

// partition stably splits rows[lo:hi] around the threshold: rows going
// left compact to the front in place, the rest stage through tmp.
func (b *exactBuilder) partition(lo, hi, feat int, thr float64) int {
	left := b.rows[lo:lo]
	rest := b.tmp[:0]
	for _, i := range b.rows[lo:hi] {
		if b.x[i][feat] <= thr {
			left = append(left, i)
		} else {
			rest = append(rest, i)
		}
	}
	b.tmp = rest
	copy(b.rows[lo+len(left):hi], rest)
	return lo + len(left)
}

// bestSplit scans every feature for the split maximizing gain.
func (b *exactBuilder) bestSplit(seg []int) (feat int, thr, gain float64, ok bool) {
	var totG, totH float64
	for _, i := range seg {
		totG += b.y[i]
		totH += b.weight(i)
	}
	parent := gainTerm(totG, totH)
	gain = 1e-12
	nf := len(b.x[seg[0]])
	order := b.ord[:len(seg)]
	copy(order, seg)
	for f := 0; f < nf; f++ {
		sort.Slice(order, func(a, c int) bool { return b.x[order[a]][f] < b.x[order[c]][f] })
		var lg, lh float64
		ln := 0
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			lg += b.y[i]
			lh += b.weight(i)
			ln++
			// Only split between distinct feature values.
			if b.x[order[k]][f] == b.x[order[k+1]][f] {
				continue
			}
			if ln < b.cfg.MinLeaf || len(order)-ln < b.cfg.MinLeaf {
				continue
			}
			g := gainTerm(lg, lh) + gainTerm(totG-lg, totH-lh) - parent
			if g > gain {
				gain = g
				feat = f
				thr = (b.x[order[k]][f] + b.x[order[k+1]][f]) / 2
				ok = true
			}
		}
	}
	return feat, thr, gain, ok
}

func (b *exactBuilder) weight(i int) float64 {
	if b.h != nil {
		return b.h[i]
	}
	return 1
}

// Predict evaluates the tree on one row.
func (t *Tree) Predict(row []float64) float64 {
	n := t.root
	for n.feature >= 0 {
		if row[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Depth returns the tree depth (leaf-only tree has depth 0).
func (t *Tree) Depth() int { return depth(t.root) }

func depth(n *node) int {
	if n == nil || n.feature < 0 {
		return 0
	}
	l, r := depth(n.left), depth(n.right)
	return 1 + int(math.Max(float64(l), float64(r)))
}

// NumLeaves returns the number of leaves.
func (t *Tree) NumLeaves() int { return leaves(t.root) }

func leaves(n *node) int {
	if n == nil {
		return 0
	}
	if n.feature < 0 {
		return 1
	}
	return leaves(n.left) + leaves(n.right)
}
