// Package tree implements CART regression trees and gradient boosting:
// GBDT for multiclass OC selection and GBRegressor for execution-time
// regression — the from-scratch stand-ins for the paper's XGBoost models.
package tree

import (
	"fmt"
	"math"
	"sort"
)

// node is one regression-tree node; leaves have feature == -1.
type node struct {
	feature     int
	threshold   float64
	value       float64
	left, right *node
}

// Tree is a fitted CART regression tree.
type Tree struct {
	root *node
}

// TreeConfig controls tree induction.
type TreeConfig struct {
	// MaxDepth bounds the tree depth; 0 means 4.
	MaxDepth int
	// MinLeaf is the minimum samples per leaf; 0 means 2.
	MinLeaf int
}

func (c *TreeConfig) setDefaults() {
	if c.MaxDepth == 0 {
		c.MaxDepth = 4
	}
	if c.MinLeaf == 0 {
		c.MinLeaf = 2
	}
}

// FitTree builds a regression tree on rows x (selected by idx) against
// target values y, minimizing squared error with exact greedy splits. The
// optional hessian weights h (nil = unweighted) make the leaf values
// Newton steps, as gradient-boosted classification requires.
func FitTree(x [][]float64, y, h []float64, idx []int, cfg TreeConfig) (*Tree, error) {
	if len(x) == 0 || len(y) != len(x) {
		return nil, fmt.Errorf("tree: %d rows, %d targets", len(x), len(y))
	}
	if h != nil && len(h) != len(x) {
		return nil, fmt.Errorf("tree: %d rows, %d hessians", len(x), len(h))
	}
	if len(idx) == 0 {
		return nil, fmt.Errorf("tree: empty index set")
	}
	cfg.setDefaults()
	b := &builder{x: x, y: y, h: h, cfg: cfg}
	return &Tree{root: b.build(append([]int(nil), idx...), 0)}, nil
}

type builder struct {
	x   [][]float64
	y   []float64
	h   []float64
	cfg TreeConfig
}

// leafValue returns sum(g)/sum(h) (Newton step) or the mean when
// unweighted. A small ridge term keeps the division stable.
func (b *builder) leafValue(idx []int) float64 {
	var sg, sh float64
	for _, i := range idx {
		sg += b.y[i]
		if b.h != nil {
			sh += b.h[i]
		} else {
			sh++
		}
	}
	return sg / (sh + 1e-9)
}

// impurity is the weighted sum of squares proxy: -(sum g)^2 / sum h.
func gainTerm(sg, sh float64) float64 { return sg * sg / (sh + 1e-9) }

func (b *builder) build(idx []int, depth int) *node {
	if depth >= b.cfg.MaxDepth || len(idx) < 2*b.cfg.MinLeaf {
		return &node{feature: -1, value: b.leafValue(idx)}
	}
	feat, thr, ok := b.bestSplit(idx)
	if !ok {
		return &node{feature: -1, value: b.leafValue(idx)}
	}
	var left, right []int
	for _, i := range idx {
		if b.x[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return &node{
		feature:   feat,
		threshold: thr,
		left:      b.build(left, depth+1),
		right:     b.build(right, depth+1),
	}
}

// bestSplit scans every feature for the split maximizing gain.
func (b *builder) bestSplit(idx []int) (feat int, thr float64, ok bool) {
	var totG, totH float64
	for _, i := range idx {
		totG += b.y[i]
		totH += b.weight(i)
	}
	parent := gainTerm(totG, totH)
	bestGain := 1e-12
	nf := len(b.x[idx[0]])
	order := append([]int(nil), idx...)
	for f := 0; f < nf; f++ {
		sort.Slice(order, func(a, c int) bool { return b.x[order[a]][f] < b.x[order[c]][f] })
		var lg, lh float64
		ln := 0
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			lg += b.y[i]
			lh += b.weight(i)
			ln++
			// Only split between distinct feature values.
			if b.x[order[k]][f] == b.x[order[k+1]][f] {
				continue
			}
			if ln < b.cfg.MinLeaf || len(order)-ln < b.cfg.MinLeaf {
				continue
			}
			gain := gainTerm(lg, lh) + gainTerm(totG-lg, totH-lh) - parent
			if gain > bestGain {
				bestGain = gain
				feat = f
				thr = (b.x[order[k]][f] + b.x[order[k+1]][f]) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

func (b *builder) weight(i int) float64 {
	if b.h != nil {
		return b.h[i]
	}
	return 1
}

// Predict evaluates the tree on one row.
func (t *Tree) Predict(row []float64) float64 {
	n := t.root
	for n.feature >= 0 {
		if row[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Depth returns the tree depth (leaf-only tree has depth 0).
func (t *Tree) Depth() int { return depth(t.root) }

func depth(n *node) int {
	if n == nil || n.feature < 0 {
		return 0
	}
	l, r := depth(n.left), depth(n.right)
	return 1 + int(math.Max(float64(l), float64(r)))
}

// NumLeaves returns the number of leaves.
func (t *Tree) NumLeaves() int { return leaves(t.root) }

func leaves(n *node) int {
	if n == nil {
		return 0
	}
	if n.feature < 0 {
		return 1
	}
	return leaves(n.left) + leaves(n.right)
}
