package tree

// fnode is one node of the flat tree form: the whole node — split
// feature, children, threshold, value — packs into one contiguous
// struct, so a descent step touches a single cache line instead of the
// pointer form's scattered heap nodes.
type fnode struct {
	feature     int32 // split feature; < 0 for leaves
	left, right int32 // child indices into the node array
	thr         float64
	value       float64
	gain        float64
}

// flatTree is the array form of a fitted tree, laid out in preorder.
// Batched prediction descends it per row with plain index arithmetic;
// running a whole batch through one tree keeps the (small) node array
// resident in cache for every row after the first.
type flatTree struct {
	nodes []fnode
}

// finalize (re)builds the flat form from the pointer form. Called once
// at fit time and once when a tree is deserialized.
func (t *Tree) finalize() {
	t.flat.nodes = make([]fnode, 0, countNodes(t.root))
	t.flat.push(t.root)
}

func countNodes(n *node) int {
	if n == nil {
		return 0
	}
	return 1 + countNodes(n.left) + countNodes(n.right)
}

// push appends nd and its subtree in preorder, returning nd's index.
func (f *flatTree) push(nd *node) int32 {
	at := int32(len(f.nodes))
	f.nodes = append(f.nodes, fnode{
		feature: int32(nd.feature),
		left:    -1,
		right:   -1,
		thr:     nd.threshold,
		value:   nd.value,
		gain:    nd.gain,
	})
	if nd.feature >= 0 {
		f.nodes[at].left = f.push(nd.left)
		f.nodes[at].right = f.push(nd.right)
	}
	return at
}

// leafValue descends one row to its leaf and returns the leaf value,
// performing exactly the comparisons Predict performs on the pointer
// form — results are bitwise identical.
func (f *flatTree) leafValue(row []float64) float64 {
	nodes := f.nodes
	p := int32(0)
	for {
		n := &nodes[p]
		if n.feature < 0 {
			return n.value
		}
		if row[n.feature] <= n.thr {
			p = n.left
		} else {
			p = n.right
		}
	}
}

// PredictBatch evaluates the tree on every row, returning one value per
// row. out is reused when it has capacity, following the same contract
// as the nn batch predictors. Each row's result is bitwise identical to
// Predict on that row.
func (t *Tree) PredictBatch(rows [][]float64, out []float64) []float64 {
	if cap(out) >= len(rows) {
		out = out[:len(rows)]
	} else {
		out = make([]float64, len(rows))
	}
	t.predictInto(rows, out)
	return out
}

// predictInto writes per-row predictions into out (len(rows)).
func (t *Tree) predictInto(rows [][]float64, out []float64) {
	for i, row := range rows {
		out[i] = t.flat.leafValue(row)
	}
}

// accumBatch adds lr * prediction to out for every row — the boosting
// accumulation step, batched.
func (t *Tree) accumBatch(rows [][]float64, out []float64, lr float64) {
	for i, row := range rows {
		out[i] += lr * t.flat.leafValue(row)
	}
}
