package tree

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"stencilmart/internal/testutil"
)

// synthClassData builds a deterministic multiclass dataset with enough
// rows to exercise the parallel row-update path.
func synthClassData(rows, cols, classes int) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(99))
	x := make([][]float64, rows)
	y := make([]int, rows)
	for i := range x {
		x[i] = make([]float64, cols)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
		}
		y[i] = int(math.Abs(x[i][0]+x[i][1])*3) % classes
	}
	return x, y
}

// fitGBDT trains one classifier and snapshots its probability outputs.
func fitGBDT(t *testing.T, x [][]float64, y []int, classes int) [][]float64 {
	t.Helper()
	g := NewGBDT(BoostConfig{Rounds: 15, Seed: 4})
	if err := g.FitClassifier(x, y, classes); err != nil {
		t.Fatal(err)
	}
	out := make([][]float64, len(x))
	for i := range x {
		out[i] = g.PredictProba(x[i])
	}
	return out
}

// TestGBDTDeterministicUnderGOMAXPROCS is the differential check for the
// parallel per-class boosting: the fitted ensemble's probabilities must be
// bit-identical whether training ran on one proc or all of them.
func TestGBDTDeterministicUnderGOMAXPROCS(t *testing.T) {
	const classes = 5
	x, y := synthClassData(400, 6, classes)
	var serial, parallel [][]float64
	testutil.WithGOMAXPROCS(t, 1, func() { serial = fitGBDT(t, x, y, classes) })
	testutil.WithGOMAXPROCS(t, runtime.NumCPU(), func() { parallel = fitGBDT(t, x, y, classes) })
	for i := range serial {
		for k := range serial[i] {
			if math.Float64bits(serial[i][k]) != math.Float64bits(parallel[i][k]) {
				t.Fatalf("row %d class %d: serial proba %v != parallel %v", i, k, serial[i][k], parallel[i][k])
			}
		}
	}
}

// TestGBRegressorDeterministicUnderGOMAXPROCS does the same for the
// regressor's parallel prediction updates (rows > parRowThreshold).
func TestGBRegressorDeterministicUnderGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	rows := parRowThreshold * 2
	x := make([][]float64, rows)
	y := make([]float64, rows)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y[i] = x[i][0]*2 - x[i][1] + 0.1*rng.NormFloat64()
	}
	fit := func() []float64 {
		g := NewGBRegressor(BoostConfig{Rounds: 20, Seed: 9})
		if err := g.FitRegressor(x, y); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, rows)
		for i := range x {
			out[i] = g.PredictValue(x[i])
		}
		return out
	}
	var serial, parallel []float64
	testutil.WithGOMAXPROCS(t, 1, func() { serial = fit() })
	testutil.WithGOMAXPROCS(t, runtime.NumCPU(), func() { parallel = fit() })
	for i := range serial {
		if math.Float64bits(serial[i]) != math.Float64bits(parallel[i]) {
			t.Fatalf("row %d: serial %v != parallel %v", i, serial[i], parallel[i])
		}
	}
}

// TestHistogramFitDeterministicUnderGOMAXPROCS targets the tree-level
// parallelism directly: the dataset is large enough that binning,
// histogram accumulation, and the split scan all cross their parallel
// gates (rows*features >= histParallelMin and total bins >=
// histParallelMin/4), and the fitted tree's predictions must be bitwise
// identical between one proc and all of them.
func TestHistogramFitDeterministicUnderGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const rows, cols = 1000, 12
	x := make([][]float64, rows)
	y := make([]float64, rows)
	h := make([]float64, rows)
	for i := range x {
		x[i] = make([]float64, cols)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
		}
		y[i] = x[i][0] - x[i][1]*x[i][2] + 0.1*rng.NormFloat64()
		h[i] = 0.5 + rng.Float64()
	}
	if rows*cols < histParallelMin {
		t.Fatalf("dataset too small to cross the parallel gate: %d < %d", rows*cols, histParallelMin)
	}
	idx := make([]int, 0, rows)
	for i := 0; i < rows; i++ {
		idx = append(idx, i)
	}
	fit := func() []float64 {
		tr, err := FitTree(x, y, h, idx, TreeConfig{MaxDepth: 7, MinLeaf: 2})
		if err != nil {
			t.Fatal(err)
		}
		return tr.PredictBatch(x, nil)
	}
	var serial, parallel []float64
	testutil.WithGOMAXPROCS(t, 1, func() { serial = fit() })
	testutil.WithGOMAXPROCS(t, runtime.NumCPU(), func() { parallel = fit() })
	for i := range serial {
		if math.Float64bits(serial[i]) != math.Float64bits(parallel[i]) {
			t.Fatalf("row %d: serial %v != parallel %v", i, serial[i], parallel[i])
		}
	}
}

// TestEnsembleDeterministicPerMode re-runs the ensemble invariance check
// under each split backbone explicitly, so neither mode regresses when
// the default flips.
func TestEnsembleDeterministicPerMode(t *testing.T) {
	const classes = 4
	x, y := synthClassData(300, 5, classes)
	for _, mode := range []SplitMode{SplitHistogram, SplitExact} {
		t.Run(mode.String(), func(t *testing.T) {
			fit := func() [][]float64 {
				g := NewGBDT(BoostConfig{Rounds: 8, Seed: 4, Tree: TreeConfig{MaxDepth: 3, Mode: mode}})
				if err := g.FitClassifier(x, y, classes); err != nil {
					t.Fatal(err)
				}
				return g.PredictProbaBatch(x)
			}
			var serial, parallel [][]float64
			testutil.WithGOMAXPROCS(t, 1, func() { serial = fit() })
			testutil.WithGOMAXPROCS(t, runtime.NumCPU(), func() { parallel = fit() })
			for i := range serial {
				for k := range serial[i] {
					if math.Float64bits(serial[i][k]) != math.Float64bits(parallel[i][k]) {
						t.Fatalf("row %d class %d: serial %v != parallel %v", i, k, serial[i][k], parallel[i][k])
					}
				}
			}
		})
	}
}
