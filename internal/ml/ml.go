// Package ml defines the model interfaces shared by the gradient-boosting
// (internal/ml/tree) and neural-network (internal/ml/nn) implementations
// the framework trains for OC selection and performance prediction.
package ml

// Classifier predicts a class label from a feature vector.
type Classifier interface {
	// FitClassifier trains on rows X with integer labels y in
	// [0, numClasses).
	FitClassifier(x [][]float64, y []int, numClasses int) error
	// PredictClass returns the most probable class for one row.
	PredictClass(row []float64) int
	// PredictProba returns the per-class probabilities for one row.
	PredictProba(row []float64) []float64
}

// Regressor predicts a scalar from a feature vector.
type Regressor interface {
	// FitRegressor trains on rows X with targets y.
	FitRegressor(x [][]float64, y []float64) error
	// PredictValue returns the prediction for one row.
	PredictValue(row []float64) float64
}

// BatchClassifier is implemented by classifiers that can score many rows
// in one pass: the nn models run the whole set through a single batched
// forward, and the tree ensembles stream every row through each tree's
// flat node array while it is cache-hot. Callers should go through
// PredictProbaAll, which falls back to row-at-a-time prediction for
// models without the fast path.
type BatchClassifier interface {
	Classifier
	// PredictProbaBatch returns per-class probabilities for every row.
	PredictProbaBatch(rows [][]float64) [][]float64
}

// BatchRegressor is the regression analogue of BatchClassifier.
type BatchRegressor interface {
	Regressor
	// PredictValueBatch returns the prediction for every row.
	PredictValueBatch(rows [][]float64) []float64
}

// ClassifierF32 is the inference-only float32 lane of a classifier: a
// compiled, forward-only model scoring arena-backed rows into a
// caller-provided flat output, allocating nothing once warm. Training
// stays on the float64 Classifier; compiled models are built from
// trained checkpoints (tree ensemble quantization, nn weight snapshots).
type ClassifierF32 interface {
	// Classes returns the number of classes scored per row.
	Classes() int
	// PredictProbaBatchF32 writes per-class probabilities for every row
	// into out, flat row-major (len(rows) * Classes()).
	PredictProbaBatchF32(rows [][]float32, out []float32)
}

// RegressorF32 is the inference-only float32 lane of a regressor.
type RegressorF32 interface {
	// PredictValueBatchF32 writes one prediction per row into out
	// (len(rows)).
	PredictValueBatchF32(rows [][]float32, out []float32)
}

// ArgMaxF32 is ArgMax over a float32 probability row (first wins ties).
func ArgMaxF32(p []float32) int {
	best := 0
	for k := range p {
		if p[k] > p[best] {
			best = k
		}
	}
	return best
}

// PredictProbaAll scores every row, using the batched path when the
// classifier provides one.
func PredictProbaAll(c Classifier, rows [][]float64) [][]float64 {
	if len(rows) == 0 {
		return nil
	}
	if bc, ok := c.(BatchClassifier); ok {
		return bc.PredictProbaBatch(rows)
	}
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = c.PredictProba(r)
	}
	return out
}

// PredictValueAll evaluates every row, using the batched path when the
// regressor provides one.
func PredictValueAll(r Regressor, rows [][]float64) []float64 {
	if len(rows) == 0 {
		return nil
	}
	if br, ok := r.(BatchRegressor); ok {
		return br.PredictValueBatch(rows)
	}
	out := make([]float64, len(rows))
	for i, row := range rows {
		out[i] = r.PredictValue(row)
	}
	return out
}

// ArgMax returns the index of the largest probability (first wins ties),
// matching the tie-break every PredictClass implementation uses.
func ArgMax(p []float64) int {
	best := 0
	for k := range p {
		if p[k] > p[best] {
			best = k
		}
	}
	return best
}
