// Package ml defines the model interfaces shared by the gradient-boosting
// (internal/ml/tree) and neural-network (internal/ml/nn) implementations
// the framework trains for OC selection and performance prediction.
package ml

// Classifier predicts a class label from a feature vector.
type Classifier interface {
	// FitClassifier trains on rows X with integer labels y in
	// [0, numClasses).
	FitClassifier(x [][]float64, y []int, numClasses int) error
	// PredictClass returns the most probable class for one row.
	PredictClass(row []float64) int
	// PredictProba returns the per-class probabilities for one row.
	PredictProba(row []float64) []float64
}

// Regressor predicts a scalar from a feature vector.
type Regressor interface {
	// FitRegressor trains on rows X with targets y.
	FitRegressor(x [][]float64, y []float64) error
	// PredictValue returns the prediction for one row.
	PredictValue(row []float64) float64
}
