// Package tuner implements parameter-setting search strategies for a
// fixed optimization combination: the random search the paper's pipeline
// uses, and a genetic algorithm in the spirit of csTuner (Sun et al.,
// CLUSTER'21 — the paper's reference [25]), with tournament selection,
// field-wise crossover, mutation by resampling, and elitism, all under a
// hard evaluation budget so strategies are comparable.
package tuner

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/sim"
)

// Result is a tuning outcome.
type Result struct {
	// Time is the best execution time found (seconds).
	Time float64
	// Params is the winning setting.
	Params opt.Params
	// Evaluations is the number of simulator runs consumed.
	Evaluations int
}

// Tuner searches one OC's parameter space for one workload.
type Tuner interface {
	// Name identifies the strategy.
	Name() string
	// Tune returns the best setting found within the evaluation budget.
	Tune(m *sim.Model, w sim.Workload, oc opt.Opt, arch gpu.Arch, budget int, seed int64) (Result, error)
}

// Random is the paper's random parameter search.
type Random struct{}

// Name implements Tuner.
func (Random) Name() string { return "random" }

// Tune implements Tuner.
func (Random) Tune(m *sim.Model, w sim.Workload, oc opt.Opt, arch gpu.Arch, budget int, seed int64) (Result, error) {
	if budget < 1 {
		return Result{}, fmt.Errorf("tuner: random budget %d < 1", budget)
	}
	rng := rand.New(rand.NewSource(seed))
	eval := m.CellFn(w, arch)
	best := Result{Time: math.Inf(1)}
	for i := 0; i < budget; i++ {
		p := opt.Sample(oc, w.S.Dims, rng)
		r, err := eval(oc, p)
		best.Evaluations++
		if err != nil {
			continue
		}
		if r.Time < best.Time {
			best.Time = r.Time
			best.Params = p
		}
	}
	if math.IsInf(best.Time, 1) {
		return Result{}, fmt.Errorf("tuner: no runnable setting for %s on %s", oc, arch.Name)
	}
	return best, nil
}

// Genetic is the csTuner-style GA.
type Genetic struct {
	// Population is the per-generation size; 0 means 8.
	Population int
	// MutationRate is the per-field resampling probability; 0 means 0.25.
	MutationRate float64
	// Elite is the number of top settings carried over; 0 means 2.
	Elite int
}

// Name implements Tuner.
func (Genetic) Name() string { return "genetic" }

type individual struct {
	p    opt.Params
	time float64 // +Inf when the setting cannot run
}

// Tune implements Tuner.
func (g Genetic) Tune(m *sim.Model, w sim.Workload, oc opt.Opt, arch gpu.Arch, budget int, seed int64) (Result, error) {
	if budget < 1 {
		return Result{}, fmt.Errorf("tuner: genetic budget %d < 1", budget)
	}
	if g.MutationRate < 0 {
		return Result{}, fmt.Errorf("tuner: negative mutation rate %v", g.MutationRate)
	}
	pop := g.Population
	if pop == 0 {
		pop = 8
	}
	if pop > budget {
		pop = budget
	}
	mut := g.MutationRate
	if mut == 0 {
		mut = 0.25
	}
	elite := g.Elite
	if elite == 0 {
		elite = 2
	}
	if elite < 0 {
		elite = 0
	}
	// Elites are carried over without re-evaluation, so a generation must
	// leave at least one slot for a fresh evaluation: with elite >= pop the
	// loop below would copy the whole population forever while evals never
	// advances toward the budget.
	if elite >= pop {
		elite = pop - 1
	}
	rng := rand.New(rand.NewSource(seed))

	evals := 0
	eval := m.CellFn(w, arch)
	evaluate := func(p opt.Params) individual {
		r, err := eval(oc, p)
		evals++
		if err != nil {
			return individual{p: p, time: math.Inf(1)}
		}
		return individual{p: p, time: r.Time}
	}

	// Seed generation.
	cur := make([]individual, 0, pop)
	for i := 0; i < pop && evals < budget; i++ {
		cur = append(cur, evaluate(opt.Sample(oc, w.S.Dims, rng)))
	}
	sortPop(cur)

	for evals < budget {
		next := make([]individual, 0, pop)
		next = append(next, cur[:minInt(elite, len(cur))]...)
		for len(next) < pop && evals < budget {
			a := tournament(cur, rng)
			b := tournament(cur, rng)
			child := crossover(a.p, b.p, rng)
			child = mutate(child, oc, w.S.Dims, mut, rng)
			if err := child.Validate(oc, w.S.Dims); err != nil {
				// Repair by resampling; still costs an evaluation slot
				// only when simulated.
				child = opt.Sample(oc, w.S.Dims, rng)
			}
			next = append(next, evaluate(child))
		}
		sortPop(next)
		cur = next
	}

	sortPop(cur)
	if len(cur) == 0 || math.IsInf(cur[0].time, 1) {
		return Result{}, fmt.Errorf("tuner: no runnable setting for %s on %s", oc, arch.Name)
	}
	return Result{Time: cur[0].time, Params: cur[0].p, Evaluations: evals}, nil
}

func sortPop(pop []individual) {
	sort.SliceStable(pop, func(i, j int) bool { return pop[i].time < pop[j].time })
}

// tournament picks the better of two random individuals.
func tournament(pop []individual, rng *rand.Rand) individual {
	a := pop[rng.Intn(len(pop))]
	b := pop[rng.Intn(len(pop))]
	if a.time <= b.time {
		return a
	}
	return b
}

// crossover mixes fields of two settings uniformly.
func crossover(a, b opt.Params, rng *rand.Rand) opt.Params {
	pick := func(x, y int) int {
		if rng.Intn(2) == 0 {
			return x
		}
		return y
	}
	out := a
	out.BlockX = pick(a.BlockX, b.BlockX)
	out.BlockY = pick(a.BlockY, b.BlockY)
	out.Merge = pick(a.Merge, b.Merge)
	out.MergeDim = pick(a.MergeDim, b.MergeDim)
	out.StreamTile = pick(a.StreamTile, b.StreamTile)
	out.StreamDim = pick(a.StreamDim, b.StreamDim)
	out.Unroll = pick(a.Unroll, b.Unroll)
	out.TBDepth = pick(a.TBDepth, b.TBDepth)
	out.PrefetchDepth = pick(a.PrefetchDepth, b.PrefetchDepth)
	if rng.Intn(2) == 0 {
		out.UseSmem = b.UseSmem
	}
	return out
}

// mutate resamples a fresh setting and copies random fields from it.
func mutate(p opt.Params, oc opt.Opt, dims int, rate float64, rng *rand.Rand) opt.Params {
	fresh := opt.Sample(oc, dims, rng)
	maybe := func(cur, alt int) int {
		if rng.Float64() < rate {
			return alt
		}
		return cur
	}
	p.BlockX = maybe(p.BlockX, fresh.BlockX)
	p.BlockY = maybe(p.BlockY, fresh.BlockY)
	p.Merge = maybe(p.Merge, fresh.Merge)
	p.MergeDim = maybe(p.MergeDim, fresh.MergeDim)
	p.StreamTile = maybe(p.StreamTile, fresh.StreamTile)
	p.StreamDim = maybe(p.StreamDim, fresh.StreamDim)
	p.Unroll = maybe(p.Unroll, fresh.Unroll)
	p.TBDepth = maybe(p.TBDepth, fresh.TBDepth)
	p.PrefetchDepth = maybe(p.PrefetchDepth, fresh.PrefetchDepth)
	if rng.Float64() < rate {
		p.UseSmem = fresh.UseSmem
	}
	return p
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
