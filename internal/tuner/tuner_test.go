package tuner

import (
	"math"
	"testing"
	"time"

	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/sim"
	"stencilmart/internal/stencil"
)

func setup(t *testing.T) (*sim.Model, sim.Workload, gpu.Arch) {
	t.Helper()
	arch, err := gpu.ByName("V100")
	if err != nil {
		t.Fatal(err)
	}
	return sim.New(), sim.DefaultWorkload(stencil.Box(3, 2)), arch
}

func TestRandomRespectsBudget(t *testing.T) {
	m, w, arch := setup(t)
	res, err := (Random{}).Tune(m, w, opt.ST, arch, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 20 {
		t.Errorf("evaluations = %d, want 20", res.Evaluations)
	}
	if res.Time <= 0 || math.IsInf(res.Time, 0) {
		t.Errorf("time %g", res.Time)
	}
	if err := res.Params.Validate(opt.ST, 3); err != nil {
		t.Errorf("winning params invalid: %v", err)
	}
}

func TestGeneticRespectsBudget(t *testing.T) {
	m, w, arch := setup(t)
	res, err := (Genetic{}).Tune(m, w, opt.ST|opt.TB, arch, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations > 40 {
		t.Errorf("evaluations %d exceed budget 40", res.Evaluations)
	}
	if err := res.Params.Validate(opt.ST|opt.TB, 3); err != nil {
		t.Errorf("winning params invalid: %v", err)
	}
}

// TestGeneticCompetitiveWithRandom checks the csTuner claim: on a
// parameter-sensitive OC, the GA should not lose to random search at
// equal budgets (averaged across seeds).
func TestGeneticCompetitiveWithRandom(t *testing.T) {
	m, w, arch := setup(t)
	oc := opt.ST | opt.TB | opt.CM | opt.PR
	var gaBetter int
	const trials = 10
	for seed := int64(0); seed < trials; seed++ {
		ga, err1 := (Genetic{}).Tune(m, w, oc, arch, 48, seed)
		rd, err2 := (Random{}).Tune(m, w, oc, arch, 48, seed+100)
		if err1 != nil || err2 != nil {
			continue
		}
		if ga.Time <= rd.Time*1.02 { // within 2% counts as no-loss
			gaBetter++
		}
	}
	if gaBetter < trials/2 {
		t.Errorf("GA competitive in only %d/%d trials", gaBetter, trials)
	}
}

func TestTunerErrors(t *testing.T) {
	m, w, arch := setup(t)
	if _, err := (Random{}).Tune(m, w, opt.ST, arch, 0, 1); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := (Genetic{}).Tune(m, w, opt.ST, arch, 0, 1); err == nil {
		t.Error("zero budget accepted")
	}
	// An OC that crashes for this stencil must return an error: TB
	// without ST on a 3-D order-4 stencil.
	w4 := sim.DefaultWorkload(stencil.Star(3, 4))
	if _, err := (Random{}).Tune(m, w4, opt.TB, arch, 16, 1); err == nil {
		t.Error("crashing OC produced a result (random)")
	}
	if _, err := (Genetic{}).Tune(m, w4, opt.TB, arch, 16, 1); err == nil {
		t.Error("crashing OC produced a result (genetic)")
	}
}

func TestCrossoverMutatePreserveValidity(t *testing.T) {
	m, w, arch := setup(t)
	_ = m
	_ = arch
	// Crossover of two valid settings stays structurally valid for the
	// same OC often enough that the repair path is rare; here we just
	// require the tuner end-to-end to emit valid params, already covered
	// above, and verify names.
	if (Random{}).Name() != "random" || (Genetic{}).Name() != "genetic" {
		t.Error("tuner names wrong")
	}
	_ = w
}

// TestGeneticSmallPopulationTerminates is the regression test for the
// elite >= population hang: with Population 2 and the default elite of 2,
// every generation used to carry over only elites, never evaluating, so
// the budget loop spun forever. The tune must finish well within the
// timeout and within its budget.
func TestGeneticSmallPopulationTerminates(t *testing.T) {
	m, w, arch := setup(t)
	type outcome struct {
		res Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := (Genetic{Population: 2}).Tune(m, w, opt.ST, arch, 20, 3)
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.res.Evaluations > 20 {
			t.Errorf("evaluations %d exceed budget 20", o.res.Evaluations)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Genetic{Population: 2} did not terminate: elite carry-over starves the evaluation budget")
	}
}

// TestGeneticPopulationOneTerminates covers the degenerate single-slot
// population, where the clamp leaves no elites at all.
func TestGeneticPopulationOneTerminates(t *testing.T) {
	m, w, arch := setup(t)
	done := make(chan error, 1)
	go func() {
		_, err := (Genetic{Population: 1, Elite: 5}).Tune(m, w, opt.ST, arch, 8, 4)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Genetic{Population: 1} did not terminate")
	}
}

func TestGeneticRejectsNegativeMutationRate(t *testing.T) {
	m, w, arch := setup(t)
	if _, err := (Genetic{MutationRate: -0.5}).Tune(m, w, opt.ST, arch, 10, 5); err == nil {
		t.Fatal("negative mutation rate accepted")
	}
}
