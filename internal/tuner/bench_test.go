package tuner

import (
	"testing"

	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/sim"
	"stencilmart/internal/stencil"
)

// BenchmarkTuners measures the cost of one 48-evaluation tuning run per
// strategy (the csTuner-style GA vs the paper's random search).
func BenchmarkTuners(b *testing.B) {
	m := sim.New()
	w := sim.DefaultWorkload(stencil.Box(3, 2))
	arch, err := gpu.ByName("V100")
	if err != nil {
		b.Fatal(err)
	}
	for _, tn := range []Tuner{Random{}, Genetic{}} {
		b.Run(tn.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tn.Tune(m, w, opt.ST|opt.TB, arch, 48, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
