package tuner

import (
	"math"
	"math/rand"
	"testing"

	"stencilmart/internal/gpu"
	"stencilmart/internal/opt"
	"stencilmart/internal/sim"
	"stencilmart/internal/stencil"
)

// referenceRandomTune is the pre-rewrite Random.Tune, evaluated on the
// pre-rewrite substrate: same rng consumption, same skip-on-error loop,
// with every sample priced by sim.Reference instead of the compiled
// evaluator.
func referenceRandomTune(ref *sim.Reference, w sim.Workload, oc opt.Opt, arch gpu.Arch, budget int, seed int64) (Result, bool) {
	rng := rand.New(rand.NewSource(seed))
	best := Result{Time: math.Inf(1)}
	for i := 0; i < budget; i++ {
		p := opt.Sample(oc, w.S.Dims, rng)
		r, err := ref.Run(w, oc, p, arch)
		best.Evaluations++
		if err != nil {
			continue
		}
		if r.Time < best.Time {
			best.Time = r.Time
			best.Params = p
		}
	}
	return best, !math.IsInf(best.Time, 1)
}

// TestRandomTuneMatchesReference: tuning through the compiled evaluator
// returns bitwise-identical winners to the pre-rewrite search — the
// serve-path tuner (core.ServePredict drives tuner.Random) cannot drift.
func TestRandomTuneMatchesReference(t *testing.T) {
	m := sim.New()
	ref := sim.NewReference()
	for _, s := range []stencil.Stencil{stencil.Star(2, 2), stencil.Box(3, 1), stencil.Star(3, 4)} {
		w := sim.DefaultWorkload(s)
		for _, arch := range gpu.Catalog() {
			for _, oc := range []opt.Opt{0, opt.ST, opt.ST | opt.TB, opt.BM | opt.TB, opt.ST | opt.RT | opt.PR} {
				seed := int64(1000*int(oc) + len(s.Name))
				got, err := (Random{}).Tune(m, w, oc, arch, 24, seed)
				want, ok := referenceRandomTune(ref, w, oc, arch, 24, seed)
				if (err == nil) != ok {
					t.Fatalf("%s %s on %s: outcome disagreement: err=%v ok=%v", s.Name, oc, arch.Name, err, ok)
				}
				if !ok {
					continue
				}
				if math.Float64bits(got.Time) != math.Float64bits(want.Time) || got.Params != want.Params || got.Evaluations != want.Evaluations {
					t.Fatalf("%s %s on %s: tuned result differs:\n compiled  %+v\n reference %+v", s.Name, oc, arch.Name, got, want)
				}
			}
		}
	}
}
