package experiments

import (
	"context"
	"fmt"

	"stencilmart/internal/core"
)

// scaleFractions are the corpus-size steps of the scale study.
var scaleFractions = []float64{0.5, 0.75, 1.0}

// Scale records how prediction quality grows with profiled corpus size
// — the question the distributed campaign subsystem exists to answer:
// profiling is the expensive step, so the curve says what another wall
// of campaign workers buys. Each step re-profiles a scaled corpus from
// the same seed and reports GBDT OC-selection accuracy (averaged over
// the catalog) and GBRegressor performance-prediction MAPE. Unlike the
// figure experiments, it is excluded from "all": it profiles several
// corpora end to end.
func (r *Runner) Scale() error {
	fmt.Fprintln(r.Out, "== Scale: prediction quality vs profiled corpus size ==")
	for _, f := range scaleFractions {
		cfg := r.Cfg
		// Cross-validated accuracy needs at least 5 stencils per
		// dimensionality (one per fold), so the smallest step clamps.
		cfg.Corpus2D = max(5, int(float64(r.Cfg.Corpus2D)*f))
		cfg.Corpus3D = max(5, int(float64(r.Cfg.Corpus3D)*f))
		fw, err := core.Build(context.Background(), cfg)
		if err != nil {
			return fmt.Errorf("scale %.0f%%: %w", f*100, err)
		}
		fmt.Fprintf(r.Out, "%3.0f%% corpus (%d stencils, %d instances):",
			f*100, len(fw.Dataset.Stencils), len(fw.Dataset.Instances))
		for _, dims := range []int{2, 3} {
			var sum float64
			names := sortedArchNames()
			for _, name := range names {
				acc, err := fw.ClassifierAccuracy(core.ClassGBDT, name, dims)
				if err != nil {
					return fmt.Errorf("scale %.0f%%: accuracy %dD %s: %w", f*100, dims, name, err)
				}
				sum += acc
			}
			fmt.Fprintf(r.Out, "  acc%dD=%.1f%%", dims, sum/float64(len(names))*100)
		}
		for _, dims := range []int{2, 3} {
			_, overall, err := fw.RegressorMAPE(core.RegGB, dims)
			if err != nil {
				return fmt.Errorf("scale %.0f%%: MAPE %dD: %w", f*100, dims, err)
			}
			fmt.Fprintf(r.Out, "  mape%dD=%.1f%%", dims, overall*100)
		}
		fmt.Fprintln(r.Out)
	}
	fmt.Fprintln(r.Out, "larger profiled corpora are what `stencilmart campaign` parallelizes")
	fmt.Fprintln(r.Out)
	return nil
}
