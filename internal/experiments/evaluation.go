package experiments

import (
	"context"
	"fmt"
	"math"

	"stencilmart/internal/baseline"
	"stencilmart/internal/core"
	"stencilmart/internal/par"
)

// Fig9 reproduces the classification-accuracy comparison (paper: ConvNet
// ~84.4%/83.0% for 2-D/3-D, GBDT ~81.7%/80.8%, FcNet worst).
func (r *Runner) Fig9() error {
	fmt.Fprintln(r.Out, "== Fig. 9: OC-selection accuracy per mechanism and GPU ==")
	fw, err := r.framework()
	if err != nil {
		return err
	}
	for _, kind := range core.ClassifierKinds {
		for _, dims := range []int{2, 3} {
			// Architectures evaluate concurrently (each trains its own
			// models); printing happens afterwards in catalog order, so
			// output is identical to the serial loop.
			names := sortedArchNames()
			accs, err := par.Map(context.Background(), len(names), 0, func(i int) (float64, error) {
				return fw.ClassifierAccuracy(kind, names[i], dims)
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(r.Out, "%-8s %dD:", kind, dims)
			var sum float64
			for i, name := range names {
				sum += accs[i]
				fmt.Fprintf(r.Out, "  %s=%.1f%%", name, accs[i]*100)
			}
			fmt.Fprintf(r.Out, "  avg=%.1f%%\n", sum/float64(len(accs))*100)
		}
	}
	fmt.Fprintln(r.Out, "paper: ConvNet 84.4%/83.0%, GBDT 81.7%/80.8% (2-D/3-D), FcNet worst")
	fmt.Fprintln(r.Out)
	return nil
}

// speedupFigure renders Fig. 10 or Fig. 11.
func (r *Runner) speedupFigure(title string, strat baseline.Strategy, paperNote string) error {
	fmt.Fprintln(r.Out, title)
	fw, err := r.framework()
	if err != nil {
		return err
	}
	for _, kind := range []core.ClassifierKind{core.ClassConvNet, core.ClassGBDT} {
		for _, dims := range []int{2, 3} {
			names := sortedArchNames()
			all, err := par.Map(context.Background(), len(names), 0, func(i int) (float64, error) {
				return fw.SpeedupVsBaseline(kind, names[i], dims, strat)
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(r.Out, "%-8s %dD:", kind, dims)
			var prod float64 = 1
			for i, name := range names {
				prod *= all[i]
				fmt.Fprintf(r.Out, "  %s=%.2fx", name, all[i])
			}
			fmt.Fprintf(r.Out, "  avg=%.2fx\n", math.Pow(prod, 1/float64(len(all))))
		}
	}
	fmt.Fprintln(r.Out, paperNote)
	fmt.Fprintln(r.Out)
	return nil
}

// Fig10 reproduces the speedup over Artemis (paper: ConvNet 1.30x/1.32x
// for 2-D/3-D).
func (r *Runner) Fig10() error {
	return r.speedupFigure(
		"== Fig. 10: speedup of predicted OC over Artemis ==",
		baseline.Artemis{},
		"paper: ConvNet 1.30x (2-D) / 1.32x (3-D) over Artemis; GBDT slightly lower")
}

// Fig11 reproduces the speedup over AN5D (paper: ConvNet 1.33x/1.09x).
func (r *Runner) Fig11() error {
	return r.speedupFigure(
		"== Fig. 11: speedup of predicted OC over AN5D ==",
		baseline.AN5D{},
		"paper: ConvNet 1.33x (2-D) / 1.09x (3-D) over AN5D; GBDT slightly lower")
}

// Fig12 reproduces the regression-error comparison (paper: MLP best at
// 6.2%/5.3% MAPE; GBRegressor 9.5%/6.3%; ConvMLP 13.4%/11.6%).
func (r *Runner) Fig12() error {
	fmt.Fprintln(r.Out, "== Fig. 12: performance-prediction test error (MAPE) ==")
	fw, err := r.framework()
	if err != nil {
		return err
	}
	for _, kind := range core.RegressorKinds {
		for _, dims := range []int{2, 3} {
			per, overall, err := fw.RegressorMAPE(kind, dims)
			if err != nil {
				return err
			}
			fmt.Fprintf(r.Out, "%-12s %dD:", kind, dims)
			for _, name := range sortedArchNames() {
				if v, ok := per[name]; ok {
					fmt.Fprintf(r.Out, "  %s=%.1f%%", name, v*100)
				}
			}
			fmt.Fprintf(r.Out, "  overall=%.1f%%\n", overall*100)
		}
	}
	fmt.Fprintln(r.Out, "paper: MLP 6.2%/5.3%, GBRegressor 9.5%/6.3%, ConvMLP 13.4%/11.6% (2-D/3-D)")
	fmt.Fprintln(r.Out)
	return nil
}

// Fig13 reproduces the MLP sensitivity sweep over hidden-layer count and
// width (paper: deeper/wider is better with diminishing returns past 7
// layers). Widths are scaled down from the paper's 2^4..2^10 to keep
// pure-Go training tractable; the trend is the reproduction target.
func (r *Runner) Fig13() error {
	fmt.Fprintln(r.Out, "== Fig. 13: MLP test error vs hidden layers and layer size ==")
	fw, err := r.framework()
	if err != nil {
		return err
	}
	layers := []int{4, 7, 10}
	widths := []int{16, 32, 64}
	for _, dims := range []int{2, 3} {
		points, err := fw.MLPSweep(dims, layers, widths)
		if err != nil {
			return err
		}
		fmt.Fprintf(r.Out, "%d-D stencils:\n", dims)
		fmt.Fprintf(r.Out, "%8s", "width")
		for _, w := range widths {
			fmt.Fprintf(r.Out, "%8d", w)
		}
		fmt.Fprintln(r.Out)
		for _, l := range layers {
			fmt.Fprintf(r.Out, "%2d layers", l)
			for _, w := range widths {
				for _, p := range points {
					if p.Layers == l && p.Width == w {
						fmt.Fprintf(r.Out, "%7.1f%%", p.MAPE*100)
					}
				}
			}
			fmt.Fprintln(r.Out)
		}
	}
	fmt.Fprintln(r.Out, "paper: error falls with depth/width; ~7 layers is the knee")
	fmt.Fprintln(r.Out)
	return nil
}

// rentFigure renders Fig. 14 or Fig. 15.
func (r *Runner) rentFigure(title string, costBased bool, paperNote string) error {
	fmt.Fprintln(r.Out, title)
	fw, err := r.framework()
	if err != nil {
		return err
	}
	for _, dims := range []int{2, 3} {
		rep, err := fw.RentStudy(core.RegGB, dims, costBased, 12)
		if err != nil {
			return err
		}
		fmt.Fprintf(r.Out, "%dD (n=%d):", dims, rep.Instances)
		for i, name := range rep.ArchNames {
			acc := "-"
			if !math.IsNaN(rep.Accuracy[i]) {
				acc = fmt.Sprintf("%.0f%%", rep.Accuracy[i]*100)
			}
			fmt.Fprintf(r.Out, "  %s share=%.1f%% acc=%s", name, rep.Share[i]*100, acc)
		}
		fmt.Fprintf(r.Out, "  overall acc=%.1f%%\n", rep.Overall*100)
	}
	fmt.Fprintln(r.Out, paperNote)
	fmt.Fprintln(r.Out)
	return nil
}

// Fig14 reproduces the pure-performance GPU ground truth and prediction
// accuracy (paper: 2-D shares 20.2/17.8/40.2/21.8% for
// 2080Ti/P100/V100/A100; overall accuracy 96.7%/97.3%).
func (r *Runner) Fig14() error {
	return r.rentFigure(
		"== Fig. 14: best GPU per stencil instance (pure performance) ==",
		false,
		"paper 2-D shares: 2080Ti 20.2%, P100 17.8%, V100 40.2%, A100 21.8%; 3-D: A100 36.9% largest")
}

// Fig15 reproduces the cost-efficiency ground truth and prediction
// accuracy (paper: P100 wins 61.0%/56.7% of 2-D/3-D instances; overall
// accuracy 97.3%/96.1%).
func (r *Runner) Fig15() error {
	return r.rentFigure(
		"== Fig. 15: most cost-efficient cloud GPU per stencil instance ==",
		true,
		"paper shares: P100 61.0%/56.7%, V100 22.7%/20.6%, A100 16.3%/22.7% (2-D/3-D)")
}
