// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. III motivation and Sec. V results) against the
// simulation substrate, printing the same rows/series the paper reports.
// Each experiment is addressable by the paper's artifact id ("table1",
// "fig9", ...); see DESIGN.md section 4 for the full index.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"stencilmart/internal/core"
	"stencilmart/internal/gpu"
	"stencilmart/internal/merge"
	"stencilmart/internal/opt"
	"stencilmart/internal/profile"
	"stencilmart/internal/stats"
	"stencilmart/internal/stencil"
)

// Runner executes paper experiments against a built framework. Building
// the framework (profiling the random corpus) happens lazily on first use
// so cheap experiments (table1-3, fig1, fig4) stay cheap.
type Runner struct {
	Cfg core.Config
	Out io.Writer

	fw *Framework
}

// Framework aliases core.Framework for the runner's lazy cache.
type Framework = core.Framework

// New returns a runner writing to out.
func New(cfg core.Config, out io.Writer) *Runner {
	return &Runner{Cfg: cfg, Out: out}
}

// framework builds (once) the profiled corpus + grouping.
func (r *Runner) framework() (*Framework, error) {
	if r.fw == nil {
		fw, err := core.Build(context.Background(), r.Cfg)
		if err != nil {
			return nil, err
		}
		r.fw = fw
	}
	return r.fw, nil
}

// IDs lists every experiment id in paper order. The extra "scale" study
// (prediction quality vs corpus size) is addressable by id but excluded
// here — and so from RunAll — because it re-profiles several corpora.
var IDs = []string{
	"table1", "table2", "table3",
	"fig1", "fig2", "fig3", "fig4",
	"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
}

// Run executes one experiment by id.
func (r *Runner) Run(id string) error {
	switch id {
	case "table1":
		return r.Table1()
	case "table2":
		return r.Table2()
	case "table3":
		return r.Table3()
	case "fig1":
		return r.Fig1()
	case "fig2":
		return r.Fig2()
	case "fig3":
		return r.Fig3()
	case "fig4":
		return r.Fig4()
	case "fig9":
		return r.Fig9()
	case "fig10":
		return r.Fig10()
	case "fig11":
		return r.Fig11()
	case "fig12":
		return r.Fig12()
	case "fig13":
		return r.Fig13()
	case "fig14":
		return r.Fig14()
	case "fig15":
		return r.Fig15()
	case "scale":
		return r.Scale()
	default:
		return fmt.Errorf("experiments: unknown id %q (known: %v, scale)", id, IDs)
	}
}

// RunAll executes every experiment in paper order.
func (r *Runner) RunAll() error {
	for _, id := range IDs {
		if err := r.Run(id); err != nil {
			return fmt.Errorf("experiments: %s: %w", id, err)
		}
	}
	return nil
}

// Table1 prints the optimization constraint table.
func (r *Runner) Table1() error {
	fmt.Fprintln(r.Out, "== Table I: optimizations of stencil computation on GPUs ==")
	rows := []struct {
		name, abbr, constraint string
	}{
		{"Streaming", "ST", "-"},
		{"Block Merging", "BM", "Not valid when CM enabled."},
		{"Cyclic Merging", "CM", "Not valid when BM enabled."},
		{"Retiming", "RT", "Only valid when ST enabled."},
		{"Prefetching", "PR", "Only valid when ST enabled."},
		{"Temporal Blocking", "TB", "-"},
	}
	for i, row := range rows {
		fmt.Fprintf(r.Out, "%d  %-18s %-4s %s\n", i+1, row.name, row.abbr, row.constraint)
	}
	fmt.Fprintf(r.Out, "valid optimization combinations: %d\n\n", len(opt.Combinations()))
	return nil
}

// Table2 prints the candidate feature set for an example stencil.
func (r *Runner) Table2() error {
	fmt.Fprintln(r.Out, "== Table II: candidate feature set (example: star2d2r) ==")
	s := stencil.Star(2, 2)
	f := Features(s)
	for i, name := range FeatureNames() {
		fmt.Fprintf(r.Out, "%-18s %.4f\n", name, f[i])
	}
	fmt.Fprintln(r.Out)
	return nil
}

// Table3 prints the GPU catalog.
func (r *Runner) Table3() error {
	fmt.Fprintln(r.Out, "== Table III: the GPUs used for evaluation ==")
	fmt.Fprintf(r.Out, "%-8s %-8s %6s %10s %5s %7s %9s\n",
		"GPU", "Gen", "Mem", "MemBW", "SMs", "TFLOPS", "Rental")
	for _, a := range gpu.Catalog() {
		rental := "-"
		if a.HasRental() {
			rental = fmt.Sprintf("$%.2f/hr", a.RentalPerHour)
		}
		fmt.Fprintf(r.Out, "%-8s %-8s %4.0fGB %7.0fGB/s %5d %7.2f %9s\n",
			a.Name, a.Generation, a.MemGB, a.MemBWGBs, a.SMs, a.TFLOPS, rental)
	}
	fmt.Fprintln(r.Out)
	return nil
}

// sortedArchNames returns catalog names in Table III order.
func sortedArchNames() []string {
	var out []string
	for _, a := range gpu.Catalog() {
		out = append(out, a.Name)
	}
	return out
}

// ocName formats an OC index.
func ocName(idx int) string { return opt.Combinations()[idx].String() }

// topCounts renders the highest best-OC counts for Fig. 2.
func topCounts(counts []int, k int) string {
	type pair struct {
		idx, n int
	}
	var ps []pair
	for i, n := range counts {
		if n > 0 {
			ps = append(ps, pair{i, n})
		}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].n > ps[b].n })
	if k > len(ps) {
		k = len(ps)
	}
	out := ""
	for _, p := range ps[:k] {
		out += fmt.Sprintf(" %s=%d", ocName(p.idx), p.n)
	}
	return out
}

// Features and FeatureNames re-export the Table II extraction for the
// runner's printout without importing tensor everywhere.
func Features(s stencil.Stencil) []float64 { return featuresImpl(s) }

// FeatureNames lists the Table II feature names.
func FeatureNames() []string { return featureNamesImpl() }

// quartileLine renders the Fig. 3 value distribution summary.
func quartileLine(vals []float64) (string, error) {
	qs, err := stats.Quantiles(vals, 0, 0.25, 0.5, 0.75, 1)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f", qs[0], qs[1], qs[2], qs[3], qs[4]), nil
}

// matrices collects per-arch best-time matrices of a dataset.
func matrices(d *profile.Dataset) [][][]float64 {
	out := make([][][]float64, len(d.Archs))
	for ai := range d.Archs {
		out[ai] = d.BestTimeMatrix(ai)
	}
	return out
}

var _ = merge.TopPairs // used by figure files
