package experiments

import (
	"bytes"
	"strings"
	"testing"

	"stencilmart/internal/core"
)

func TestCheapExperiments(t *testing.T) {
	var buf bytes.Buffer
	r := New(core.DefaultConfig(), &buf)
	for _, id := range []string{"table1", "table2", "table3", "fig1", "fig4"} {
		if err := r.Run(id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	out := buf.String()
	for _, want := range []string{"Table I", "Table II", "Table III", "Fig. 1", "Fig. 4", "average gap"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if err := r.Run("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
}
