package experiments

import (
	"context"
	"fmt"
	"math"

	"stencilmart/internal/gpu"
	"stencilmart/internal/merge"
	"stencilmart/internal/opt"
	"stencilmart/internal/profile"
	"stencilmart/internal/stats"
	"stencilmart/internal/stencil"
	"stencilmart/internal/tensor"
)

func featuresImpl(s stencil.Stencil) []float64 { return tensor.Features(s) }
func featureNamesImpl() []string               { return tensor.FeatureNames }

// representativeDataset profiles the classic motivation-study stencils
// (star/box/cross, orders 1-4, 2-D and 3-D) on every GPU.
func (r *Runner) representativeDataset() (*profile.Dataset, error) {
	p := profile.NewProfiler(r.Cfg.SamplesPerOC, r.Cfg.Seed+5000)
	return p.Collect(context.Background(), stencil.RepresentativeAll(), gpu.Catalog())
}

// Fig1 reproduces the best-vs-worst OC gap on V100 (paper: average 9.95x,
// larger gaps at higher order/dimensionality, some OCs crash).
func (r *Runner) Fig1() error {
	fmt.Fprintln(r.Out, "== Fig. 1: best OC normalized to worst OC per stencil (V100) ==")
	d, err := r.representativeDataset()
	if err != nil {
		return err
	}
	ai, err := d.ArchIndex("V100")
	if err != nil {
		return err
	}
	m := d.BestTimeMatrix(ai)
	var gaps []float64
	for si, s := range d.Stencils {
		best, worst := math.Inf(1), 0.0
		crashes := 0
		for ci := range m {
			t := m[ci][si]
			if math.IsNaN(t) {
				crashes++
				continue
			}
			if t < best {
				best = t
			}
			if t > worst {
				worst = t
			}
		}
		gap := worst / best
		gaps = append(gaps, gap)
		fmt.Fprintf(r.Out, "%-10s gap=%6.2fx  best=%8.3fms  crashedOCs=%d\n",
			s.Name, gap, best*1e3, crashes)
	}
	gm, err := stats.GeoMean(gaps)
	if err != nil {
		return err
	}
	fmt.Fprintf(r.Out, "average gap: %.2fx (arithmetic %.2fx); paper reports 9.95x\n\n",
		gm, stats.Mean(gaps))
	return nil
}

// Fig2 reproduces the distribution of best OCs per GPU (paper: streaming
// OCs dominate; TB without ST never best; distribution relatively even).
func (r *Runner) Fig2() error {
	fmt.Fprintln(r.Out, "== Fig. 2: number of stencils each OC wins, per GPU ==")
	fw, err := r.framework()
	if err != nil {
		return err
	}
	for ai, a := range fw.Dataset.Archs {
		counts := merge.BestCounts(fw.Dataset.BestTimeMatrix(ai))
		stWins, tbNoSTWins := 0, 0
		for ci, c := range counts {
			oc := opt.Combinations()[ci]
			if oc.Has(opt.ST) {
				stWins += c
			}
			if oc.Has(opt.TB) && !oc.Has(opt.ST) {
				tbNoSTWins += c
			}
		}
		fmt.Fprintf(r.Out, "%-7s top:%s | ST-enabled wins %d/%d, TB-without-ST wins %d\n",
			a.Name, topCounts(counts, 6), stWins, len(fw.Dataset.Stencils), tbNoSTWins)
	}
	fmt.Fprintln(r.Out, "paper: ST-enabled OCs win most stencils; TB/TB_BM/TB_CM never best")
	fmt.Fprintln(r.Out)
	return nil
}

// Fig3 reproduces the top-100 pairwise-OC PCC distribution and the
// cross-architecture intersection (paper: 28% of the top pairs shared).
func (r *Runner) Fig3() error {
	fmt.Fprintln(r.Out, "== Fig. 3: top-100 pairwise-OC PCCs per GPU ==")
	fw, err := r.framework()
	if err != nil {
		return err
	}
	ms := matrices(fw.Dataset)
	for ai, a := range fw.Dataset.Archs {
		pairs := merge.TopPairs(merge.PCCMatrix(ms[ai]), 100)
		var vals []float64
		for _, p := range pairs {
			vals = append(vals, p.PCC)
		}
		line, err := quartileLine(vals)
		if err != nil {
			return err
		}
		fmt.Fprintf(r.Out, "%-7s %s (n=%d)\n", a.Name, line, len(vals))
	}
	frac, err := merge.IntersectionFraction(ms, 100)
	if err != nil {
		return err
	}
	fmt.Fprintf(r.Out, "intersection of top-100 pairs across all GPUs: %.0f%% (paper: 28%%)\n\n", frac*100)
	return nil
}

// Fig4 reproduces the cross-architecture best-performance comparison
// normalized to the 2080 Ti (paper: performance not proportional to
// compute resources; A100 not always best).
func (r *Runner) Fig4() error {
	fmt.Fprintln(r.Out, "== Fig. 4: best performance per GPU normalized to 2080Ti ==")
	d, err := r.representativeDataset()
	if err != nil {
		return err
	}
	ti, err := d.ArchIndex("2080Ti")
	if err != nil {
		return err
	}
	names := sortedArchNames()
	fmt.Fprintf(r.Out, "%-10s", "stencil")
	for _, n := range names {
		fmt.Fprintf(r.Out, "%9s", n)
	}
	fmt.Fprintln(r.Out, "   (higher = faster than 2080Ti)")
	perArchWins := map[string]int{}
	for si, s := range d.Stencils {
		ref := d.Profiles[ti][si].BestTime
		fmt.Fprintf(r.Out, "%-10s", s.Name)
		bestArch, bestVal := "", 0.0
		for ai, a := range d.Archs {
			speedup := ref / d.Profiles[ai][si].BestTime
			fmt.Fprintf(r.Out, "%9.2f", speedup)
			if speedup > bestVal {
				bestVal, bestArch = speedup, a.Name
			}
		}
		perArchWins[bestArch]++
		fmt.Fprintln(r.Out)
	}
	fmt.Fprintf(r.Out, "best-GPU counts: %v; paper: A100 not always best (e.g. box3d3r/box3d4r fastest on V100)\n\n", perArchWins)
	return nil
}
