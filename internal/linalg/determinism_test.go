package linalg

import (
	"math/rand"
	"testing"
)

// The GEMM kernels promise bitwise-identical output at any worker count:
// every output element is produced by exactly one tile job with a fixed
// ascending k-accumulation order, so scheduling cannot reassociate any
// floating-point sum. These tests pin that contract at workers 1/2/8,
// mirroring the serial-vs-parallel suites in internal/*/determinism_test.go.

var workerCounts = []int{1, 2, 8}

func bitwiseEqual(t *testing.T, name string, want, got *Matrix, workers int) {
	t.Helper()
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("%s workers=%d: element %d differs: %v vs %v (serial)",
				name, workers, i, got.Data[i], want.Data[i])
		}
	}
}

func TestGemmWorkerCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, sh := range [][3]int{{5, 9, 4}, {67, 300, 33}, {128, 64, 96}} {
		a := randomMatrix(sh[0], sh[1], rng)
		b := randomMatrix(sh[1], sh[2], rng)
		want := New(sh[0], sh[2])
		Gemm(want, a, b, 1)
		for _, w := range workerCounts {
			got := New(sh[0], sh[2])
			Gemm(got, a, b, w)
			bitwiseEqual(t, "Gemm", want, got, w)
		}
	}
}

func TestGemmNTWorkerCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, sh := range [][3]int{{5, 9, 4}, {67, 300, 33}} {
		a := randomMatrix(sh[0], sh[1], rng)
		b := randomMatrix(sh[2], sh[1], rng)
		want := New(sh[0], sh[2])
		GemmNT(want, a, b, 1)
		for _, w := range workerCounts {
			got := New(sh[0], sh[2])
			GemmNT(got, a, b, w)
			bitwiseEqual(t, "GemmNT", want, got, w)
		}
	}
}

func TestGemmTNAccWorkerCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, sh := range [][3]int{{9, 5, 4}, {300, 67, 33}} {
		a := randomMatrix(sh[0], sh[1], rng)
		b := randomMatrix(sh[0], sh[2], rng)
		init := randomMatrix(sh[1], sh[2], rng)
		want := init.Clone()
		GemmTNAcc(want, a, b, 1)
		for _, w := range workerCounts {
			got := init.Clone()
			GemmTNAcc(got, a, b, w)
			bitwiseEqual(t, "GemmTNAcc", want, got, w)
		}
	}
}

func TestAddColSumsWorkerCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	m := randomMatrix(129, 65, rng)
	want := make([]float64, m.Cols)
	AddColSums(want, m, 1)
	for _, w := range workerCounts {
		got := make([]float64, m.Cols)
		AddColSums(got, m, w)
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("AddColSums workers=%d: col %d differs: %v vs %v", w, j, got[j], want[j])
			}
		}
	}
}
