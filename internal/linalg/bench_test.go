package linalg

import (
	"math/rand"
	"testing"
)

// BenchmarkGemm measures the blocked kernel at the batch-GEMM shape the
// 3-D conv stack produces (batch 64 x 125 output points, K = 216,
// outC = 16 — the second ConvMLP convolution).
func BenchmarkGemm(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(64*125, 216, rng)
	w := randomMatrix(216, 16, rng)
	c := New(64*125, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(c, a, w, 0)
	}
}

// BenchmarkGemmNT is the forward-pass shape: patch matrix times the
// transposed weight matrix.
func BenchmarkGemmNT(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	col := randomMatrix(64*125, 216, rng)
	w := randomMatrix(16, 216, rng)
	c := New(64*125, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmNT(c, col, w, 0)
	}
}

// BenchmarkGemmTNAcc is the weight-gradient shape.
func BenchmarkGemmTNAcc(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := randomMatrix(64*125, 16, rng)
	col := randomMatrix(64*125, 216, rng)
	c := New(16, 216)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmTNAcc(c, g, col, 0)
	}
}

// BenchmarkIm2col3D measures the lowering cost for the first 3-D conv.
func BenchmarkIm2col3D(b *testing.B) {
	s := ConvShape{InC: 1, D: 9, H: 9, W: 9, KD: 3, KH: 3, KW: 3}
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, s.InLen())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	col := New(s.OutSpatial(), s.KernelLen())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Im2col(x, col, 0)
	}
}
