package linalg

import "fmt"

// MatrixF32 is the float32 mirror of Matrix: a dense rows x cols matrix
// backed by one flat row-major slice. It exists for the inference-only
// f32 lane — training stays on float64 — so the kernels below are
// forward-pass only, serial, and allocation-free: inference batches are
// small (a serving flush is tens of rows), a single fixed accumulation
// order keeps the lane bitwise reproducible at any GOMAXPROCS without
// coordinating tiles, and reusing caller-owned buffers keeps the warm
// scoring path at zero heap allocations.
type MatrixF32 struct {
	Rows, Cols int
	Data       []float32
}

// NewF32 allocates a zeroed rows x cols float32 matrix.
func NewF32(rows, cols int) *MatrixF32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative shape %dx%d", rows, cols))
	}
	return &MatrixF32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// ResizeF32 returns m reshaped to rows x cols, reusing its backing slice
// when capacity allows; m may be nil. The returned contents are
// unspecified — callers overwrite or Zero them.
func ResizeF32(m *MatrixF32, rows, cols int) *MatrixF32 {
	n := rows * cols
	if m == nil {
		return NewF32(rows, cols)
	}
	if cap(m.Data) < n {
		m.Data = make([]float32, n)
	}
	m.Data = m.Data[:n]
	m.Rows, m.Cols = rows, cols
	return m
}

// Row returns the i-th row as a subslice of the backing array.
func (m *MatrixF32) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Zero clears every element.
func (m *MatrixF32) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// GemmF32 computes c = a·b for a (m x k), b (k x n), c (m x n) with the
// same k-panelled, zero-skipping, ascending-k accumulation the float64
// Gemm uses — the only difference is the element type, so the f32 lane's
// rounding is exactly "float64 algorithm evaluated in float32".
func GemmF32(c, a, b *MatrixF32) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: gemm shape (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	for i := 0; i < c.Rows; i++ {
		ci := c.Row(i)
		for j := range ci {
			ci[j] = 0
		}
	}
	for k0 := 0; k0 < a.Cols; k0 += kBlock {
		k1 := k0 + kBlock
		if k1 > a.Cols {
			k1 = a.Cols
		}
		for i := 0; i < c.Rows; i++ {
			ci := c.Row(i)
			ai := a.Row(i)
			for k := k0; k < k1; k++ {
				aik := ai[k]
				if aik == 0 {
					continue
				}
				bk := b.Row(k)
				for j, v := range bk {
					ci[j] += aik * v
				}
			}
		}
	}
}

// GemmNTF32 computes c = a·bᵀ for a (m x k), b (n x k), c (m x n): every
// output element is a dot product of two contiguous rows, accumulated in
// ascending k order.
func GemmNTF32(c, a, b *MatrixF32) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: gemmNT shape (%dx%d)·(%dx%d)ᵀ->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	for i := 0; i < c.Rows; i++ {
		ci := c.Row(i)
		ai := a.Row(i)
		for j := range ci {
			bj := b.Row(j)
			var s float32
			for k, v := range ai {
				s += v * bj[k]
			}
			ci[j] = s
		}
	}
}

// Im2colF32 writes one sample's patch matrix into rows
// [rowOff, rowOff+OutSpatial) of col, exactly like Im2col but over
// float32 data.
func (s ConvShape) Im2colF32(x []float32, col *MatrixF32, rowOff int) {
	if len(x) != s.InLen() {
		panic(fmt.Sprintf("linalg: im2col input %d, want %d", len(x), s.InLen()))
	}
	if col.Cols != s.KernelLen() {
		panic(fmt.Sprintf("linalg: im2col buffer %d columns, want %d", col.Cols, s.KernelLen()))
	}
	od, oh, ow := s.OutDims()
	m := rowOff
	for z := 0; z < od; z++ {
		for y := 0; y < oh; y++ {
			for xx := 0; xx < ow; xx++ {
				dst := col.Row(m)
				m++
				k := 0
				for ic := 0; ic < s.InC; ic++ {
					for kz := 0; kz < s.KD; kz++ {
						for ky := 0; ky < s.KH; ky++ {
							src := ((ic*s.D+z+kz)*s.H+y+ky)*s.W + xx
							copy(dst[k:k+s.KW], x[src:src+s.KW])
							k += s.KW
						}
					}
				}
			}
		}
	}
}
