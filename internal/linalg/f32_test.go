package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func randomMatrixF32(rows, cols int, rng *rand.Rand) *MatrixF32 {
	m := NewF32(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
		if rng.Intn(5) == 0 {
			m.Data[i] = 0 // exercise the zero-skip path
		}
	}
	return m
}

// naiveGemmF32 is the textbook triple loop in float32, accumulating in
// the kernels' ascending-k order so exact equality is checkable.
func naiveGemmF32(a, b *MatrixF32) *MatrixF32 {
	c := NewF32(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float32
			for k := 0; k < a.Cols; k++ {
				s += a.Data[i*a.Cols+k] * b.Data[k*b.Cols+j]
			}
			c.Data[i*c.Cols+j] = s
		}
	}
	return c
}

func maxAbsDiffF32(a, b *MatrixF32) float64 {
	worst := 0.0
	for i := range a.Data {
		if d := math.Abs(float64(a.Data[i] - b.Data[i])); d > worst {
			worst = d
		}
	}
	return worst
}

func TestGemmF32MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Shapes straddle the kBlock boundary and hit degenerate sizes.
	for _, sh := range [][3]int{{1, 1, 1}, {3, 5, 2}, {31, 7, 33}, {32, 300, 17}, {70, 257, 40}} {
		a := randomMatrixF32(sh[0], sh[1], rng)
		b := randomMatrixF32(sh[1], sh[2], rng)
		c := NewF32(sh[0], sh[2])
		// Pre-fill c with garbage: GemmF32 overwrites.
		for i := range c.Data {
			c.Data[i] = 99
		}
		GemmF32(c, a, b)
		want := naiveGemmF32(a, b)
		// Both sides accumulate in ascending-k float32 order, so the
		// kernel's only freedom is the kBlock panelling — still the same
		// addition sequence per output element.
		if d := maxAbsDiffF32(c, want); d != 0 {
			t.Errorf("GemmF32 %v: max diff %g", sh, d)
		}
	}
}

func TestGemmNTF32MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, sh := range [][3]int{{1, 1, 1}, {5, 3, 4}, {33, 40, 31}, {64, 257, 9}} {
		a := randomMatrixF32(sh[0], sh[1], rng)
		bt := randomMatrixF32(sh[2], sh[1], rng) // b transposed: (n x k)
		c := NewF32(sh[0], sh[2])
		GemmNTF32(c, a, bt)
		b := NewF32(sh[1], sh[2])
		for i := 0; i < sh[2]; i++ {
			for k := 0; k < sh[1]; k++ {
				b.Data[k*sh[2]+i] = bt.Data[i*sh[1]+k]
			}
		}
		if d := maxAbsDiffF32(c, naiveGemmF32(a, b)); d != 0 {
			t.Errorf("GemmNTF32 %v: max diff %g", sh, d)
		}
	}
}

// TestIm2colF32MatchesF64 lowers the same input through both lanes: the
// f32 column matrix must equal the f64 one element for element (inputs
// are exactly representable, so the comparison is exact).
func TestIm2colF32MatchesF64(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, shape := range []ConvShape{
		{InC: 1, D: 1, H: 9, W: 9, KD: 1, KH: 3, KW: 3},
		{InC: 4, D: 1, H: 7, W: 7, KD: 1, KH: 3, KW: 3},
		{InC: 2, D: 5, H: 5, W: 5, KD: 3, KH: 3, KW: 3},
	} {
		if err := shape.Validate(); err != nil {
			t.Fatal(err)
		}
		x64 := make([]float64, shape.InLen())
		x32 := make([]float32, shape.InLen())
		for i := range x64 {
			v := float64(rng.Intn(64)) / 8 // exactly representable in f32
			x64[i] = v
			x32[i] = float32(v)
		}
		m := shape.OutSpatial()
		col64 := New(m, shape.KernelLen())
		col32 := NewF32(m, shape.KernelLen())
		shape.Im2col(x64, col64, 0)
		shape.Im2colF32(x32, col32, 0)
		for i := range col64.Data {
			if float64(col32.Data[i]) != col64.Data[i] {
				t.Fatalf("shape %+v: col[%d] f32 %g vs f64 %g", shape, i, col32.Data[i], col64.Data[i])
			}
		}
	}
}

func TestResizeF32Reuse(t *testing.T) {
	m := NewF32(4, 8)
	data := &m.Data[0]
	m2 := ResizeF32(m, 2, 6)
	if m2 != m || &m2.Data[0] != data {
		t.Error("ResizeF32 should reuse capacity for a smaller shape")
	}
	if m2.Rows != 2 || m2.Cols != 6 || len(m2.Data) != 12 {
		t.Errorf("ResizeF32 shape = %dx%d len %d", m2.Rows, m2.Cols, len(m2.Data))
	}
	m3 := ResizeF32(m2, 10, 10)
	if len(m3.Data) != 100 {
		t.Errorf("ResizeF32 grow len = %d", len(m3.Data))
	}
	var nilM *MatrixF32
	if m4 := ResizeF32(nilM, 3, 3); m4 == nil || len(m4.Data) != 9 {
		t.Error("ResizeF32(nil) should allocate")
	}
}

// TestAllocGateLinalgF32 pins the zero-allocation contract of the f32
// kernels: once output buffers exist, GemmF32 / GemmNTF32 / Im2colF32
// must not touch the heap.
func TestAllocGateLinalgF32(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randomMatrixF32(16, 300, rng)
	b := randomMatrixF32(300, 24, rng)
	bt := randomMatrixF32(24, 300, rng)
	c := NewF32(16, 24)
	if n := testing.AllocsPerRun(20, func() { GemmF32(c, a, b) }); n != 0 {
		t.Errorf("GemmF32 allocs/op = %g, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() { GemmNTF32(c, a, bt) }); n != 0 {
		t.Errorf("GemmNTF32 allocs/op = %g, want 0", n)
	}
	shape := ConvShape{InC: 1, D: 1, H: 9, W: 9, KD: 1, KH: 3, KW: 3}
	x := make([]float32, shape.InLen())
	col := NewF32(shape.OutSpatial(), shape.KernelLen())
	if n := testing.AllocsPerRun(20, func() { shape.Im2colF32(x, col, 0) }); n != 0 {
		t.Errorf("Im2colF32 allocs/op = %g, want 0", n)
	}
}

// BenchmarkLaneGemm compares the f64 serving-shape GEMM against the f32
// lane on the dense shapes the compiled networks hit (small batch, wide
// k) — the `make bench-lanes` microbenchmark pair.
func BenchmarkLaneGemm(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	const m, k, n = 32, 729, 64
	a64 := randomMatrix(m, k, rng)
	b64 := randomMatrix(k, n, rng)
	c64 := New(m, n)
	b.Run("f64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Gemm(c64, a64, b64, 1)
		}
	})
	a32 := randomMatrixF32(m, k, rng)
	b32 := randomMatrixF32(k, n, rng)
	c32 := NewF32(m, n)
	b.Run("f32", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			GemmF32(c32, a32, b32)
		}
	})
}
