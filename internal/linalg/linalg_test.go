package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func randomMatrix(rows, cols int, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
		if rng.Intn(5) == 0 {
			m.Data[i] = 0 // exercise the zero-skip path
		}
	}
	return m
}

// naiveGemm is the textbook triple loop the kernels are checked against.
func naiveGemm(a, b *Matrix) *Matrix {
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Data[i*c.Cols+j] = s
		}
	}
	return c
}

func maxAbsDiff(a, b *Matrix) float64 {
	worst := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func transpose(m *Matrix) *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.At(i, j)
		}
	}
	return t
}

func TestGemmMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Shapes straddle the rowTile and kBlock boundaries.
	for _, sh := range [][3]int{{1, 1, 1}, {3, 5, 2}, {31, 7, 33}, {32, 300, 17}, {70, 257, 40}} {
		a := randomMatrix(sh[0], sh[1], rng)
		b := randomMatrix(sh[1], sh[2], rng)
		c := New(sh[0], sh[2])
		// Pre-fill c with garbage: Gemm overwrites.
		for i := range c.Data {
			c.Data[i] = 99
		}
		Gemm(c, a, b, 0)
		if d := maxAbsDiff(c, naiveGemm(a, b)); d > 1e-12 {
			t.Errorf("Gemm %v: max diff %g", sh, d)
		}
	}
}

func TestGemmNTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, sh := range [][3]int{{1, 1, 1}, {5, 3, 4}, {33, 40, 31}, {64, 257, 9}} {
		a := randomMatrix(sh[0], sh[1], rng)
		b := randomMatrix(sh[2], sh[1], rng)
		c := New(sh[0], sh[2])
		GemmNT(c, a, b, 0)
		if d := maxAbsDiff(c, naiveGemm(a, transpose(b))); d > 1e-12 {
			t.Errorf("GemmNT %v: max diff %g", sh, d)
		}
	}
}

func TestGemmTNAccMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, sh := range [][3]int{{1, 1, 1}, {4, 5, 3}, {40, 33, 31}, {300, 20, 9}} {
		a := randomMatrix(sh[0], sh[1], rng)
		b := randomMatrix(sh[0], sh[2], rng)
		c := randomMatrix(sh[1], sh[2], rng)
		want := naiveGemm(transpose(a), b)
		for i := range want.Data {
			want.Data[i] += c.Data[i] // accumulate semantics
		}
		GemmTNAcc(c, a, b, 0)
		if d := maxAbsDiff(c, want); d > 1e-12 {
			t.Errorf("GemmTNAcc %v: max diff %g", sh, d)
		}
	}
}

func TestAddColSums(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomMatrix(37, 41, rng)
	dst := make([]float64, 41)
	dst[0] = 2 // accumulate semantics
	AddColSums(dst, m, 0)
	for j := 0; j < m.Cols; j++ {
		want := 0.0
		if j == 0 {
			want = 2
		}
		for i := 0; i < m.Rows; i++ {
			want += m.At(i, j)
		}
		if math.Abs(dst[j]-want) > 1e-12 {
			t.Fatalf("col %d: got %g want %g", j, dst[j], want)
		}
	}
}

func TestResizeReusesBacking(t *testing.T) {
	m := New(8, 8)
	p := &m.Data[0]
	m = Resize(m, 4, 6)
	if m.Rows != 4 || m.Cols != 6 || len(m.Data) != 24 {
		t.Fatalf("resize shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	if &m.Data[0] != p {
		t.Error("shrinking resize reallocated")
	}
	m = Resize(m, 20, 20)
	if len(m.Data) != 400 {
		t.Fatalf("growing resize len %d", len(m.Data))
	}
	if got := Resize(nil, 2, 3); got.Rows != 2 || got.Cols != 3 {
		t.Fatalf("nil resize %dx%d", got.Rows, got.Cols)
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 || m.At(2, 1) != 6 {
		t.Fatalf("FromRows = %+v", m)
	}
	if z := FromRows(nil); z.Rows != 0 {
		t.Fatalf("empty FromRows rows %d", z.Rows)
	}
}

// convShapes are the geometries the nn conv stack actually uses (side 9,
// two layers, 2-D and 3-D) plus randomized small shapes.
func convShapes(rng *rand.Rand) []ConvShape {
	shapes := []ConvShape{
		{InC: 1, D: 1, H: 9, W: 9, KD: 1, KH: 3, KW: 3},
		{InC: 8, D: 1, H: 7, W: 7, KD: 1, KH: 3, KW: 3},
		{InC: 1, D: 9, H: 9, W: 9, KD: 3, KH: 3, KW: 3},
		{InC: 8, D: 7, H: 7, W: 7, KD: 3, KH: 3, KW: 3},
	}
	for i := 0; i < 6; i++ {
		d, h, w := 1+rng.Intn(4), 2+rng.Intn(4), 2+rng.Intn(4)
		kd, kh, kw := 1+rng.Intn(d), 1+rng.Intn(h), 1+rng.Intn(w)
		shapes = append(shapes, ConvShape{
			InC: 1 + rng.Intn(3), D: d, H: h, W: w, KD: kd, KH: kh, KW: kw,
		})
	}
	return shapes
}

func TestIm2colGemmMatchesDirectConv(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, s := range convShapes(rng) {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		outC := 1 + rng.Intn(4)
		x := make([]float64, s.InLen())
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		w := randomMatrix(outC, s.KernelLen(), rng)
		col := New(s.OutSpatial(), s.KernelLen())
		s.Im2col(x, col, 0)
		got := New(s.OutSpatial(), outC)
		GemmNT(got, col, w, 0)

		od, oh, ow := s.OutDims()
		for oc := 0; oc < outC; oc++ {
			m := 0
			for z := 0; z < od; z++ {
				for y := 0; y < oh; y++ {
					for xx := 0; xx < ow; xx++ {
						var want float64
						for ic := 0; ic < s.InC; ic++ {
							for kz := 0; kz < s.KD; kz++ {
								for ky := 0; ky < s.KH; ky++ {
									for kx := 0; kx < s.KW; kx++ {
										wi := ((ic*s.KD+kz)*s.KH+ky)*s.KW + kx
										xi := ((ic*s.D+z+kz)*s.H+y+ky)*s.W + xx + kx
										want += x[xi] * w.At(oc, wi)
									}
								}
							}
						}
						if math.Abs(got.At(m, oc)-want) > 1e-9 {
							t.Fatalf("shape %+v oc %d m %d: got %g want %g", s, oc, m, got.At(m, oc), want)
						}
						m++
					}
				}
			}
		}
	}
}

// TestCol2imIsAdjointOfIm2col checks <im2col(x), g> == <x, col2im(g)> —
// the defining property that makes Col2im the correct backward pass.
func TestCol2imIsAdjointOfIm2col(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, s := range convShapes(rng) {
		x := make([]float64, s.InLen())
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		g := randomMatrix(s.OutSpatial(), s.KernelLen(), rng)
		col := New(s.OutSpatial(), s.KernelLen())
		s.Im2col(x, col, 0)
		var lhs float64
		for i := range col.Data {
			lhs += col.Data[i] * g.Data[i]
		}
		dx := make([]float64, s.InLen())
		s.Col2im(g, 0, dx)
		var rhs float64
		for i := range x {
			rhs += x[i] * dx[i]
		}
		if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
			t.Fatalf("shape %+v: <im2col(x),g>=%g but <x,col2im(g)>=%g", s, lhs, rhs)
		}
	}
}

func TestConvShapeValidate(t *testing.T) {
	if err := (ConvShape{InC: 1, D: 1, H: 3, W: 3, KD: 1, KH: 5, KW: 3}).Validate(); err == nil {
		t.Error("oversized kernel accepted")
	}
	if err := (ConvShape{InC: 0, D: 1, H: 3, W: 3, KD: 1, KH: 1, KW: 1}).Validate(); err == nil {
		t.Error("zero channels accepted")
	}
}
