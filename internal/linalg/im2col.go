package linalg

import "fmt"

// ConvShape describes one valid-padding, stride-1 convolution geometry
// over a (InC, D, H, W) volume; D == KD == 1 is the 2-D case. Kernel
// columns are ordered (ic, kz, ky, kx) — the same layout a weight matrix
// row [outC x KernelLen] uses, so lowered convolutions are plain GEMMs.
type ConvShape struct {
	InC, D, H, W int
	KD, KH, KW   int
}

// Validate checks the geometry admits at least one output point.
func (s ConvShape) Validate() error {
	if s.InC < 1 || s.D < 1 || s.H < 1 || s.W < 1 || s.KD < 1 || s.KH < 1 || s.KW < 1 {
		return fmt.Errorf("linalg: conv shape %+v has a non-positive dimension", s)
	}
	if s.KD > s.D || s.KH > s.H || s.KW > s.W {
		return fmt.Errorf("linalg: conv kernel %dx%dx%d larger than input %dx%dx%d",
			s.KD, s.KH, s.KW, s.D, s.H, s.W)
	}
	return nil
}

// OutDims returns the output spatial extents.
func (s ConvShape) OutDims() (od, oh, ow int) {
	return s.D - s.KD + 1, s.H - s.KH + 1, s.W - s.KW + 1
}

// InLen is the flat input width: InC*D*H*W.
func (s ConvShape) InLen() int { return s.InC * s.D * s.H * s.W }

// OutSpatial is the number of output points per channel (the M of the
// lowered GEMM).
func (s ConvShape) OutSpatial() int {
	od, oh, ow := s.OutDims()
	return od * oh * ow
}

// KernelLen is the patch width InC*KD*KH*KW (the K of the lowered GEMM).
func (s ConvShape) KernelLen() int { return s.InC * s.KD * s.KH * s.KW }

// Im2col writes one sample's patch matrix into rows
// [rowOff, rowOff+OutSpatial) of col (which must have KernelLen
// columns): row m holds the input patch under output point m, so
// output = weights · colᵀ. The innermost kx run is a contiguous copy
// from the input row.
func (s ConvShape) Im2col(x []float64, col *Matrix, rowOff int) {
	if len(x) != s.InLen() {
		panic(fmt.Sprintf("linalg: im2col input %d, want %d", len(x), s.InLen()))
	}
	if col.Cols != s.KernelLen() {
		panic(fmt.Sprintf("linalg: im2col buffer %d columns, want %d", col.Cols, s.KernelLen()))
	}
	od, oh, ow := s.OutDims()
	m := rowOff
	for z := 0; z < od; z++ {
		for y := 0; y < oh; y++ {
			for xx := 0; xx < ow; xx++ {
				dst := col.Row(m)
				m++
				k := 0
				for ic := 0; ic < s.InC; ic++ {
					for kz := 0; kz < s.KD; kz++ {
						for ky := 0; ky < s.KH; ky++ {
							src := ((ic*s.D+z+kz)*s.H+y+ky)*s.W + xx
							copy(dst[k:k+s.KW], x[src:src+s.KW])
							k += s.KW
						}
					}
				}
			}
		}
	}
}

// Col2im scatter-adds one sample's patch-gradient rows
// [rowOff, rowOff+OutSpatial) of col back onto the flat input gradient
// dx (len InLen), which the caller must have zeroed. It is the exact
// adjoint of Im2col.
func (s ConvShape) Col2im(col *Matrix, rowOff int, dx []float64) {
	if len(dx) != s.InLen() {
		panic(fmt.Sprintf("linalg: col2im output %d, want %d", len(dx), s.InLen()))
	}
	if col.Cols != s.KernelLen() {
		panic(fmt.Sprintf("linalg: col2im buffer %d columns, want %d", col.Cols, s.KernelLen()))
	}
	od, oh, ow := s.OutDims()
	m := rowOff
	for z := 0; z < od; z++ {
		for y := 0; y < oh; y++ {
			for xx := 0; xx < ow; xx++ {
				src := col.Row(m)
				m++
				k := 0
				for ic := 0; ic < s.InC; ic++ {
					for kz := 0; kz < s.KD; kz++ {
						for ky := 0; ky < s.KH; ky++ {
							dst := ((ic*s.D+z+kz)*s.H+y+ky)*s.W + xx
							for kx := 0; kx < s.KW; kx++ {
								dx[dst+kx] += src[k+kx]
							}
							k += s.KW
						}
					}
				}
			}
		}
	}
}
