// Package linalg is the GEMM compute backbone of the neural-network
// stack: a flat row-major Matrix type and cache-blocked matrix-multiply
// kernels parallelized over output row tiles on the shared internal/par
// pool. Every output element is produced by exactly one worker with a
// fixed ascending k-accumulation order, so results are bitwise identical
// at any worker count — the same determinism contract the rest of the
// parallel pipeline holds. Im2col/Col2im lower 2-D and 3-D valid-padding
// convolutions onto these kernels.
package linalg

import (
	"context"
	"fmt"

	"stencilmart/internal/par"
)

// Matrix is a dense rows x cols matrix backed by one flat row-major
// slice: element (i, j) lives at Data[i*Cols+j].
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New allocates a zeroed rows x cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows packs a slice of equal-width rows into a new matrix.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: row %d width %d, want %d", i, len(r), m.Cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Resize returns m reshaped to rows x cols, reusing its backing slice
// when capacity allows; m may be nil. The returned contents are
// unspecified — callers overwrite or Zero them.
func Resize(m *Matrix, rows, cols int) *Matrix {
	n := rows * cols
	if m == nil {
		return New(rows, cols)
	}
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Data = m.Data[:n]
	m.Rows, m.Cols = rows, cols
	return m
}

// Row returns the i-th row as a subslice of the backing array.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Zero clears every element.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Kernel tiling constants. rowTile is the unit of parallel work — it is a
// fixed constant (never derived from the worker count) so the assignment
// of output elements to accumulation loops cannot depend on scheduling.
// kBlock panels the shared operand so a tile's working set stays
// cache-resident while every element still accumulates in ascending k
// order (panels advance in order and each element is owned by one tile).
const (
	rowTile = 32
	kBlock  = 256
)

func tiles(rows int) int { return (rows + rowTile - 1) / rowTile }

func tileBounds(t, rows int) (lo, hi int) {
	lo = t * rowTile
	hi = lo + rowTile
	if hi > rows {
		hi = rows
	}
	return lo, hi
}

// runTiles dispatches the row tiles of an output matrix onto the shared
// pool. workers <= 0 means GOMAXPROCS (par.Workers semantics).
func runTiles(rows, workers int, fn func(lo, hi int)) {
	// fn never fails and the context is never cancelled, so ForEach's
	// error is structurally nil.
	_ = par.ForEach(context.Background(), tiles(rows), workers, func(t int) error {
		lo, hi := tileBounds(t, rows)
		fn(lo, hi)
		return nil
	})
}

// Gemm computes c = a·b for a (m x k), b (k x n), c (m x n). Zero
// entries of a are skipped — binary stencil tensors make the first
// network layer's input genuinely sparse — which is exact, not
// approximate: the skipped term contributes +0.0.
func Gemm(c, a, b *Matrix, workers int) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: gemm shape (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	runTiles(c.Rows, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c.Row(i)
			for j := range ci {
				ci[j] = 0
			}
		}
		for k0 := 0; k0 < a.Cols; k0 += kBlock {
			k1 := k0 + kBlock
			if k1 > a.Cols {
				k1 = a.Cols
			}
			for i := lo; i < hi; i++ {
				ci := c.Row(i)
				ai := a.Row(i)
				for k := k0; k < k1; k++ {
					aik := ai[k]
					if aik == 0 {
						continue
					}
					bk := b.Row(k)
					for j, v := range bk {
						ci[j] += aik * v
					}
				}
			}
		}
	})
}

// GemmNT computes c = a·bᵀ for a (m x k), b (n x k), c (m x n): every
// output element is a dot product of an a-row and a b-row, both
// contiguous, accumulated in ascending k order.
func GemmNT(c, a, b *Matrix, workers int) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: gemmNT shape (%dx%d)·(%dx%d)ᵀ->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	runTiles(c.Rows, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c.Row(i)
			ai := a.Row(i)
			for j := range ci {
				bj := b.Row(j)
				var s float64
				for k, v := range ai {
					s += v * bj[k]
				}
				ci[j] = s
			}
		}
	})
}

// GemmTNAcc computes c += aᵀ·b for a (n x m), b (n x p), c (m x p) — the
// weight-gradient shape, accumulating into the existing gradient buffer.
// Each c-row (one a-column) is owned by one tile and sums ascending over
// a's rows, so gradient accumulation is deterministic by construction.
func GemmTNAcc(c, a, b *Matrix, workers int) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: gemmTN shape (%dx%d)ᵀ·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	runTiles(c.Rows, workers, func(lo, hi int) {
		for r := 0; r < a.Rows; r++ {
			ar := a.Row(r)
			br := b.Row(r)
			for i := lo; i < hi; i++ {
				ari := ar[i]
				if ari == 0 {
					continue
				}
				ci := c.Row(i)
				for j, v := range br {
					ci[j] += ari * v
				}
			}
		}
	})
}

// AddColSums accumulates the column sums of m into dst (len m.Cols) —
// the bias-gradient reduction. Each column is owned by one tile and sums
// ascending over rows.
func AddColSums(dst []float64, m *Matrix, workers int) {
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("linalg: colsums dst %d, want %d", len(dst), m.Cols))
	}
	runTiles(m.Cols, workers, func(lo, hi int) {
		for r := 0; r < m.Rows; r++ {
			row := m.Row(r)
			for j := lo; j < hi; j++ {
				dst[j] += row[j]
			}
		}
	})
}
