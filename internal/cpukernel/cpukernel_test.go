package cpukernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stencilmart/internal/stencil"
)

// randomGrid fills a grid deterministically.
func randomGrid(nx, ny, nz int, seed int64) *stencil.Grid {
	g := stencil.NewGrid(nx, ny, nz)
	rng := rand.New(rand.NewSource(seed))
	for i := range g.Data {
		g.Data[i] = rng.Float64()*2 - 1
	}
	return g
}

// randomCoeffs draws signed weights.
func randomCoeffs(s stencil.Stencil, seed int64) stencil.Coefficients {
	rng := rand.New(rand.NewSource(seed))
	c := make(stencil.Coefficients, s.NumPoints())
	for i := range c {
		c[i] = rng.Float64() - 0.5
	}
	return c
}

// assertSame requires exact equality: the transformations reorder loops,
// not arithmetic, so results must be bit-identical.
func assertSame(t *testing.T, name string, want, got *stencil.Grid) {
	t.Helper()
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("%s: diverged at %d: %g vs %g", name, i, want.Data[i], got.Data[i])
		}
	}
}

// assertClose allows only fp-reassociation-free equality with tolerance
// for the temporal variant, which recomputes identical expressions.
func assertClose(t *testing.T, name string, want, got *stencil.Grid) {
	t.Helper()
	for i := range want.Data {
		if math.Abs(want.Data[i]-got.Data[i]) > 1e-12 {
			t.Fatalf("%s: diverged at %d: %g vs %g", name, i, want.Data[i], got.Data[i])
		}
	}
}

func suite() []stencil.Stencil {
	return []stencil.Stencil{
		stencil.Star(2, 1), stencil.Box(2, 2), stencil.Cross(2, 3),
		stencil.Star(3, 2), stencil.Box(3, 1),
	}
}

func TestSpatialVariantsMatchNaive(t *testing.T) {
	for _, s := range suite() {
		nx, ny, nz := 25, 21, 1
		if s.Dims == 3 {
			nz = 13
		}
		in := randomGrid(nx, ny, nz, 1)
		coeffs := randomCoeffs(s, 2)
		want, err := Run(VariantNaive, s, coeffs, in, 3, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range []Variant{VariantTiled, VariantBlockMerged, VariantCyclicMerged, VariantStreaming} {
			got, err := Run(v, s, coeffs, in, 3, Options{TileX: 8, TileY: 8, Merge: 3})
			if err != nil {
				t.Fatalf("%s/%s: %v", s.Name, v, err)
			}
			assertSame(t, s.Name+"/"+v.String(), want, got)
		}
	}
}

func TestTemporalBlockingMatchesNaive(t *testing.T) {
	for _, s := range suite() {
		nx, ny, nz := 30, 26, 1
		if s.Dims == 3 {
			nz = 15
		}
		in := randomGrid(nx, ny, nz, 3)
		coeffs := randomCoeffs(s, 4)
		for _, steps := range []int{1, 2, 4, 5} {
			want, err := Run(VariantNaive, s, coeffs, in, steps, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, tb := range []int{2, 3} {
				got, err := Run(VariantTemporal, s, coeffs, in, steps,
					Options{TileX: 10, TileY: 7, TBDepth: tb})
				if err != nil {
					t.Fatalf("%s tb=%d: %v", s.Name, tb, err)
				}
				assertClose(t, s.Name, want, got)
			}
		}
	}
}

func TestTemporalHaloPreserved(t *testing.T) {
	// The halo ring must keep its original values through fused steps,
	// exactly as the reference executor leaves it.
	s := stencil.Box(2, 2)
	in := randomGrid(20, 20, 1, 5)
	got, err := Run(VariantTemporal, s, randomCoeffs(s, 6), in, 4, Options{TileX: 6, TileY: 6, TBDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Order()
	for y := 0; y < r; y++ {
		for x := 0; x < in.Nx; x++ {
			if got.At(x, y, 0) != in.At(x, y, 0) {
				t.Fatalf("halo (%d,%d) modified", x, y)
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	s := stencil.Star(2, 1)
	in := randomGrid(10, 10, 1, 7)
	if _, err := Run(VariantNaive, s, stencil.UniformCoefficients(s), in, 0, Options{}); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := Run(Variant(99), s, stencil.UniformCoefficients(s), in, 1, Options{}); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestVariantNames(t *testing.T) {
	for v, want := range map[Variant]string{
		VariantNaive: "naive", VariantTiled: "tiled", VariantBlockMerged: "block-merged",
		VariantCyclicMerged: "cyclic-merged", VariantStreaming: "streaming", VariantTemporal: "temporal",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q", v, v.String())
		}
	}
}

// Property: for random small grids, tile shapes and merge factors, every
// spatial variant equals naive after a random number of steps.
func TestQuickVariantEquivalence(t *testing.T) {
	f := func(seed int64, tileRaw, mergeRaw uint8) bool {
		s := stencil.Star(2, 2)
		in := randomGrid(18, 16, 1, seed)
		coeffs := randomCoeffs(s, seed+1)
		opts := Options{
			TileX: 3 + int(tileRaw%10),
			TileY: 3 + int(tileRaw/10%10),
			Merge: 1 + int(mergeRaw%5),
		}
		want, err := Run(VariantNaive, s, coeffs, in, 2, Options{})
		if err != nil {
			return false
		}
		for _, v := range []Variant{VariantTiled, VariantBlockMerged, VariantCyclicMerged} {
			got, err := Run(v, s, coeffs, in, 2, opts)
			if err != nil {
				return false
			}
			for i := range want.Data {
				if want.Data[i] != got.Data[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
