package cpukernel

import (
	"testing"

	"stencilmart/internal/stencil"
)

// BenchmarkVariants compares the CPU throughput of the executable
// optimization schemes on one 2-D sweep set.
func BenchmarkVariants(b *testing.B) {
	s := stencil.Star(2, 2)
	in := randomGrid(256, 256, 1, 1)
	coeffs := stencil.UniformCoefficients(s)
	for _, v := range []Variant{VariantNaive, VariantTiled, VariantBlockMerged, VariantStreaming, VariantTemporal} {
		b.Run(v.String(), func(b *testing.B) {
			b.SetBytes(int64(in.Len() * 8))
			for i := 0; i < b.N; i++ {
				if _, err := Run(v, s, coeffs, in, 2, Options{TBDepth: 2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
