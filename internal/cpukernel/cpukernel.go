// Package cpukernel implements the paper's optimization families as
// CPU-executable loop transformations over the reference grid: spatial
// tiling, block and cyclic merging, plane streaming, and overlapped
// temporal blocking. The GPU substrate (internal/sim) models the *cost*
// of these transformations; this package executes their *semantics*, and
// its tests prove each variant computes bit-identical results to the
// naive executor — the correctness half of the optimization story.
package cpukernel

import (
	"fmt"

	"stencilmart/internal/stencil"
)

// Variant identifies an executable optimization scheme.
type Variant int

// The executable variants.
const (
	// VariantNaive is one thread of straightforward sweeps.
	VariantNaive Variant = iota
	// VariantTiled sweeps in cache-sized spatial tiles.
	VariantTiled
	// VariantBlockMerged processes merge-sized runs of adjacent points
	// per inner iteration (BM).
	VariantBlockMerged
	// VariantCyclicMerged processes points strided by the grid extent
	// over merge passes (CM).
	VariantCyclicMerged
	// VariantStreaming marches planes along the outermost dimension,
	// reusing the loaded working set (ST).
	VariantStreaming
	// VariantTemporal fuses several time steps per tile with overlapped
	// halos (TB).
	VariantTemporal
)

// String returns the variant name.
func (v Variant) String() string {
	switch v {
	case VariantNaive:
		return "naive"
	case VariantTiled:
		return "tiled"
	case VariantBlockMerged:
		return "block-merged"
	case VariantCyclicMerged:
		return "cyclic-merged"
	case VariantStreaming:
		return "streaming"
	case VariantTemporal:
		return "temporal"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Options tunes the transformed loops.
type Options struct {
	// TileX and TileY are spatial tile extents; 0 means 32.
	TileX, TileY int
	// Merge is the merging factor for the merged variants; 0 means 4.
	Merge int
	// TBDepth is the fused step count for VariantTemporal; 0 means 2.
	TBDepth int
}

func (o *Options) setDefaults() {
	if o.TileX == 0 {
		o.TileX = 32
	}
	if o.TileY == 0 {
		o.TileY = 32
	}
	if o.Merge == 0 {
		o.Merge = 4
	}
	if o.TBDepth == 0 {
		o.TBDepth = 2
	}
}

// Run executes steps sweeps of the stencil with the chosen variant,
// returning the resulting grid. All variants implement exactly the
// semantics of stencil.ApplySteps (interior update, halo ring copied).
func Run(v Variant, s stencil.Stencil, coeffs stencil.Coefficients, in *stencil.Grid, steps int, opts Options) (*stencil.Grid, error) {
	opts.setDefaults()
	if steps < 1 {
		return nil, fmt.Errorf("cpukernel: steps %d < 1", steps)
	}
	switch v {
	case VariantNaive:
		return stencil.ApplySteps(s, coeffs, in, steps, false)
	case VariantTemporal:
		return temporalBlocked(s, coeffs, in, steps, opts)
	default:
		cur := in.Clone()
		next := stencil.NewGrid(in.Nx, in.Ny, in.Nz)
		for t := 0; t < steps; t++ {
			var err error
			switch v {
			case VariantTiled:
				err = sweepTiled(s, coeffs, cur, next, opts)
			case VariantBlockMerged:
				err = sweepBlockMerged(s, coeffs, cur, next, opts)
			case VariantCyclicMerged:
				err = sweepCyclicMerged(s, coeffs, cur, next, opts)
			case VariantStreaming:
				err = sweepStreaming(s, coeffs, cur, next)
			default:
				return nil, fmt.Errorf("cpukernel: unknown variant %d", int(v))
			}
			if err != nil {
				return nil, err
			}
			cur, next = next, cur
		}
		return cur, nil
	}
}

// point updates one output point from in.
func point(s stencil.Stencil, coeffs stencil.Coefficients, in *stencil.Grid, x, y, z int) float64 {
	acc := 0.0
	nx, ny := in.Nx, in.Ny
	for i, p := range s.Points {
		acc += coeffs[i] * in.Data[((z+p.Dz)*ny+(y+p.Dy))*nx+(x+p.Dx)]
	}
	return acc
}

// bounds mirrors the reference executor's interior region.
func bounds(s stencil.Stencil, g *stencil.Grid) (r, z0, z1 int) {
	r = s.Order()
	if s.Dims == 2 {
		return r, 0, g.Nz
	}
	return r, r, g.Nz - r
}

// sweepTiled is one interior sweep in TileX x TileY spatial tiles.
func sweepTiled(s stencil.Stencil, coeffs stencil.Coefficients, in, out *stencil.Grid, opts Options) error {
	copy(out.Data, in.Data)
	r, z0, z1 := bounds(s, in)
	for z := z0; z < z1; z++ {
		for ty := r; ty < in.Ny-r; ty += opts.TileY {
			yEnd := minInt(ty+opts.TileY, in.Ny-r)
			for tx := r; tx < in.Nx-r; tx += opts.TileX {
				xEnd := minInt(tx+opts.TileX, in.Nx-r)
				for y := ty; y < yEnd; y++ {
					for x := tx; x < xEnd; x++ {
						out.Set(x, y, z, point(s, coeffs, in, x, y, z))
					}
				}
			}
		}
	}
	return nil
}

// sweepBlockMerged processes Merge adjacent x-points per inner step.
func sweepBlockMerged(s stencil.Stencil, coeffs stencil.Coefficients, in, out *stencil.Grid, opts Options) error {
	copy(out.Data, in.Data)
	r, z0, z1 := bounds(s, in)
	m := opts.Merge
	for z := z0; z < z1; z++ {
		for y := r; y < in.Ny-r; y++ {
			for x := r; x < in.Nx-r; x += m {
				end := minInt(x+m, in.Nx-r)
				for xx := x; xx < end; xx++ {
					out.Set(xx, y, z, point(s, coeffs, in, xx, y, z))
				}
			}
		}
	}
	return nil
}

// sweepCyclicMerged covers the x-range in Merge strided passes.
func sweepCyclicMerged(s stencil.Stencil, coeffs stencil.Coefficients, in, out *stencil.Grid, opts Options) error {
	copy(out.Data, in.Data)
	r, z0, z1 := bounds(s, in)
	m := opts.Merge
	for z := z0; z < z1; z++ {
		for y := r; y < in.Ny-r; y++ {
			for phase := 0; phase < m; phase++ {
				for x := r + phase; x < in.Nx-r; x += m {
					out.Set(x, y, z, point(s, coeffs, in, x, y, z))
				}
			}
		}
	}
	return nil
}

// sweepStreaming marches the outermost dimension plane by plane (the
// 2.5-D schedule: for 3-D grids the z planes, for 2-D the rows).
func sweepStreaming(s stencil.Stencil, coeffs stencil.Coefficients, in, out *stencil.Grid) error {
	copy(out.Data, in.Data)
	r, z0, z1 := bounds(s, in)
	if s.Dims == 3 {
		for z := z0; z < z1; z++ { // streamed dimension
			for y := r; y < in.Ny-r; y++ {
				for x := r; x < in.Nx-r; x++ {
					out.Set(x, y, z, point(s, coeffs, in, x, y, z))
				}
			}
		}
		return nil
	}
	for y := r; y < in.Ny-r; y++ { // streamed rows
		for x := r; x < in.Nx-r; x++ {
			out.Set(x, y, 0, point(s, coeffs, in, x, y, 0))
		}
	}
	return nil
}

// temporalBlocked fuses TBDepth steps per tile pass using overlapped
// halos: each tile's working buffer is expanded by TBDepth*order and
// recomputed locally, so tile interiors equal TBDepth naive sweeps.
// Remaining steps (steps % TBDepth) run naively.
func temporalBlocked(s stencil.Stencil, coeffs stencil.Coefficients, in *stencil.Grid, steps int, opts Options) (*stencil.Grid, error) {
	r := s.Order()
	cur := in.Clone()
	for steps > 0 {
		tb := minInt(opts.TBDepth, steps)
		next, err := fusedSweep(s, coeffs, cur, tb, opts, r)
		if err != nil {
			return nil, err
		}
		cur = next
		steps -= tb
	}
	return cur, nil
}

// fusedSweep advances the whole grid by tb steps using overlapped tiles.
func fusedSweep(s stencil.Stencil, coeffs stencil.Coefficients, in *stencil.Grid, tb int, opts Options, r int) (*stencil.Grid, error) {
	out := in.Clone()
	halo := tb * r
	for tz := 0; tz < in.Nz; tz += depthTile(s, in) {
		zEnd := minInt(tz+depthTile(s, in), in.Nz)
		for ty := 0; ty < in.Ny; ty += opts.TileY {
			yEnd := minInt(ty+opts.TileY, in.Ny)
			for tx := 0; tx < in.Nx; tx += opts.TileX {
				xEnd := minInt(tx+opts.TileX, in.Nx)
				// Working buffer covering the tile plus tb*r halo,
				// clipped to the grid.
				bx0, bx1 := maxInt(tx-halo, 0), minInt(xEnd+halo, in.Nx)
				by0, by1 := maxInt(ty-halo, 0), minInt(yEnd+halo, in.Ny)
				bz0, bz1 := maxInt(tz-halo, 0), minInt(zEnd+halo, in.Nz)
				if s.Dims == 2 {
					bz0, bz1 = 0, 1
				}
				buf := extract(in, bx0, bx1, by0, by1, bz0, bz1)
				tmp := stencil.NewGrid(buf.Nx, buf.Ny, buf.Nz)
				for t := 0; t < tb; t++ {
					// Apply one step inside the buffer with the same
					// global-interior predicate the reference uses.
					step(s, coeffs, buf, tmp, bx0, by0, bz0, in)
					buf, tmp = tmp, buf
				}
				// Write back only the tile core (valid after tb steps).
				for z := tz; z < zEnd; z++ {
					bz := z - bz0
					if s.Dims == 2 {
						bz = 0
					}
					for y := ty; y < yEnd; y++ {
						for x := tx; x < xEnd; x++ {
							out.Set(x, y, z, buf.At(x-bx0, y-by0, bz))
						}
					}
				}
			}
		}
	}
	return out, nil
}

// depthTile returns the z tile extent (full depth for 2-D grids).
func depthTile(s stencil.Stencil, g *stencil.Grid) int {
	if s.Dims == 2 {
		return 1
	}
	return 16
}

// extract copies a clipped box into a standalone buffer.
func extract(g *stencil.Grid, x0, x1, y0, y1, z0, z1 int) *stencil.Grid {
	out := stencil.NewGrid(x1-x0, y1-y0, z1-z0)
	for z := z0; z < z1; z++ {
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				out.Set(x-x0, y-y0, z-z0, g.At(x, y, z))
			}
		}
	}
	return out
}

// step applies one reference-semantics step inside a buffer whose origin
// in global coordinates is (gx0, gy0, gz0); points whose global position
// is in the halo ring (or whose neighbors fall outside the buffer) are
// copied unchanged.
func step(s stencil.Stencil, coeffs stencil.Coefficients, in, out *stencil.Grid, gx0, gy0, gz0 int, global *stencil.Grid) {
	r := s.Order()
	copy(out.Data, in.Data)
	z0, z1 := 0, in.Nz
	if s.Dims == 3 {
		z0, z1 = maxInt(0, r-gz0), in.Nz
	}
	for z := z0; z < z1; z++ {
		gz := gz0 + z
		if s.Dims == 3 && (gz < r || gz >= global.Nz-r) {
			continue
		}
		if s.Dims == 3 && (z < r || z >= in.Nz-r) {
			continue // neighbors outside the buffer; value is stale halo
		}
		for y := 0; y < in.Ny; y++ {
			gy := gy0 + y
			if gy < r || gy >= global.Ny-r || y < r || y >= in.Ny-r {
				continue
			}
			for x := 0; x < in.Nx; x++ {
				gx := gx0 + x
				if gx < r || gx >= global.Nx-r || x < r || x >= in.Nx-r {
					continue
				}
				out.Set(x, y, z, point(s, coeffs, in, x, y, z))
			}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
