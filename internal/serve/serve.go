// Package serve exposes a trained StencilMART framework as an HTTP
// prediction service: POST a stencil and a target GPU, get back the
// predicted optimization class, a tuned parameter setting, predicted
// times on every catalog GPU, and the rent-advisor verdict. The server
// is the deploy-side half of the train-once/predict-cheaply contract —
// it never trains or profiles; it serves checkpoints.
//
// Two mechanisms replace the global model mutex of earlier revisions:
// concurrent /predict requests coalesce into batches scored through one
// core.ServePredictBatch call (internal/serve/batch), and models live in
// a versioned registry (internal/serve/registry) whose refcounted handles
// let checkpoints hot-swap under load — publish a new version, drain the
// old one, zero failed requests.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"stencilmart/internal/core"
	"stencilmart/internal/serve/batch"
	"stencilmart/internal/serve/registry"
	"stencilmart/internal/stencil"
)

// DefaultTimeout bounds one request's prediction work.
const DefaultTimeout = 30 * time.Second

// DefaultMaxInFlight bounds concurrently admitted /predict requests;
// excess load is shed with 503 instead of queueing without bound. With
// coalescing, admitted requests wait in batches rather than on a mutex
// convoy, so the cap sits well above the old serialized default.
const DefaultMaxInFlight = 64

// DefaultBatchWindow is how long the coalescer waits for batchmates
// after the first request of a batch arrives.
const DefaultBatchWindow = 500 * time.Microsecond

// DefaultBatchSize caps a coalesced batch.
const DefaultBatchSize = 32

// MaxRequestBytes bounds a /predict body; larger requests get 413.
const MaxRequestBytes = 1 << 20

// Lane selects which numeric inference path scores a request: the
// float64 reference pipeline or the compiled float32 hot path (quantized
// SoA tree traversal / f32 GEMM over arena scratch). Decisions agree
// away from documented ties; see DESIGN.md §11 for the tolerance
// contract.
type Lane string

const (
	// LaneF64 is the float64 reference pipeline — the default.
	LaneF64 Lane = "f64"
	// LaneF32 is the compiled float32 inference lane.
	LaneF32 Lane = "f32"
)

// ParseLane validates a lane name ("" selects the default f64 lane).
func ParseLane(s string) (Lane, error) {
	switch Lane(s) {
	case "":
		return LaneF64, nil
	case LaneF64, LaneF32:
		return Lane(s), nil
	default:
		return "", fmt.Errorf("unknown lane %q (f32, f64)", s)
	}
}

// Options tunes the hardened server; zero values select the defaults.
type Options struct {
	// Timeout bounds one request's prediction work (DefaultTimeout if 0).
	Timeout time.Duration
	// MaxInFlight bounds admitted /predict requests (DefaultMaxInFlight
	// if 0); requests beyond it are shed with 503 + Retry-After.
	MaxInFlight int
	// BatchWindow is the coalescing window (DefaultBatchWindow if 0,
	// negative for no waiting: a batch is whatever is queued).
	BatchWindow time.Duration
	// BatchSize caps a coalesced batch (DefaultBatchSize if 0); 1 scores
	// requests one at a time through the same serialized lane — the
	// baseline the bench harness compares against.
	BatchSize int
	// Clock drives the coalescing window; nil uses real time. Tests
	// inject a fake to flush batches deterministically.
	Clock batch.Clock
	// Lane is the default inference lane for requests that don't pin one
	// with ?lane= (LaneF64 if empty).
	Lane Lane
	// BreakerThreshold is how many consecutive scoring failures trip a
	// (version, lane) breaker (DefaultBreakerThreshold if 0).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before a
	// half-open probe (DefaultBreakerCooldown if 0).
	BreakerCooldown time.Duration
	// ScoreFaults, when non-nil, is consulted before every primary
	// scoring call; a true answer panics the call. The chaos harness
	// (fault.HTTPInjector) plugs in here to drill breakers
	// deterministically.
	ScoreFaults ScorePanicker
	// Middleware, when non-nil, wraps the fully assembled handler as the
	// outermost layer — outside panic recovery, so connection-level chaos
	// (http.ErrAbortHandler) reaches net/http instead of being converted
	// to a 500.
	Middleware func(http.Handler) http.Handler
}

// ScorePanicker injects scoring-path faults: site names a (lane, version)
// scoring call, and a true return makes that call panic. Implemented by
// fault.HTTPInjector; nil means no injection.
type ScorePanicker interface {
	ScorePanic(site string) bool
}

// endpointStats aggregates per-endpoint counters with atomics so the
// stats page never contends with request handling.
type endpointStats struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	totalNS  atomic.Int64
	hist     latencyHist
	// deadlineExpired counts requests answered 504 because their deadline
	// (client-propagated or server timeout) expired before or during
	// scoring.
	deadlineExpired atomic.Uint64
}

func (s *endpointStats) observe(d time.Duration, failed bool) {
	s.requests.Add(1)
	s.totalNS.Add(d.Nanoseconds())
	s.hist.observe(d)
	if failed {
		s.errors.Add(1)
	}
}

// EndpointSnapshot is one endpoint's counters in /statsz. The latency
// quantiles come from a fixed-bucket exponential histogram, so tail
// behavior (a p999 hiding behind a healthy mean) is visible.
type EndpointSnapshot struct {
	Requests  uint64  `json:"requests"`
	Errors    uint64  `json:"errors"`
	AvgMillis float64 `json:"avg_millis"`
	P50Millis float64 `json:"p50_millis"`
	P99Millis float64 `json:"p99_millis"`
	// P999Millis is the 99.9th percentile latency in milliseconds.
	P999Millis float64 `json:"p999_millis"`
	// DeadlineExpired counts requests rejected with 504 because their
	// deadline expired before they could be served.
	DeadlineExpired uint64 `json:"deadline_expired"`
}

func (s *endpointStats) snapshot() EndpointSnapshot {
	n := s.requests.Load()
	out := EndpointSnapshot{Requests: n, Errors: s.errors.Load(), DeadlineExpired: s.deadlineExpired.Load()}
	if n > 0 {
		out.AvgMillis = float64(s.totalNS.Load()) / float64(n) / 1e6
		out.P50Millis = s.hist.quantileMillis(0.50)
		out.P99Millis = s.hist.quantileMillis(0.99)
		out.P999Millis = s.hist.quantileMillis(0.999)
	}
	return out
}

// predictJob is one /predict request inside the coalescer: the model
// lease it acquired at admission, the request itself, and the request's
// context (carrying the propagated deadline into batch scoring). The
// lease is released exactly once — by scoreBatch after scoring, or by
// the coalescer's drop hook if the job never reaches a batch.
type predictJob struct {
	h    *registry.Handle
	req  core.ServeRequest
	lane Lane
	ctx  context.Context
}

// predictResult is what a scored job hands back to its waiting handler:
// the prediction plus where it actually came from — under breaker
// degradation the serving lane/version differ from what the request
// asked for, and the handler surfaces that in response headers without
// touching the body.
type predictResult struct {
	pred     *core.ServePrediction
	lane     Lane
	version  string
	degraded bool
}

// predictBatchFn scores one batch of requests against one framework.
// Tests substitute doubles that block or panic; the default is the
// method expression for core.(*Framework).ServePredictBatch, hence the
// receiver-first shape.
type predictBatchFn func(fw *core.Framework, ctx context.Context, reqs []core.ServeRequest) []core.ServeOutcome

// Server serves predictions from a versioned registry of trained
// frameworks through a request-coalescing lane.
type Server struct {
	fw      *core.Framework // the initially published framework (stats fallback)
	reg     *registry.Registry
	co      *batch.Coalescer[predictJob, predictResult]
	timeout time.Duration
	started time.Time
	lane    Lane // default lane for requests without ?lane=

	// breakers guards every (version, lane) scoring path; scoreFaults is
	// the chaos harness's scoring-panic hook (nil in production);
	// middleware is the optional outermost handler wrapper.
	breakers    *breakerSet
	scoreFaults ScorePanicker
	middleware  func(http.Handler) http.Handler

	// arena is the f32 lane's per-batch scratch. The coalescer scores
	// batches through a single serialized lane, so one server-owned
	// arena is reused across every flush without synchronization.
	arena *core.ServeArena

	// laneF64/laneF32 count /predict requests scored per lane.
	laneF64 atomic.Uint64
	laneF32 atomic.Uint64

	healthz endpointStats
	statsz  endpointStats
	predict endpointStats
	modelz  endpointStats

	// inflight is the /predict admission semaphore; fault counters feed
	// the /statsz fault snapshot.
	inflight chan struct{}
	panics   atomic.Uint64
	shed     atomic.Uint64
	oversize atomic.Uint64
	// degraded counts requests answered through a breaker fallback
	// (different lane or version than requested).
	degraded atomic.Uint64

	// predictFn is the batch prediction step, swapped atomically because
	// the scorer goroutine reads it while tests replace it.
	predictFn atomic.Pointer[predictBatchFn]
}

// New wraps a trained framework in a server with default hardening. The
// framework must already hold trained models (TrainAll or a loaded
// checkpoint).
func New(fw *core.Framework, timeout time.Duration) (*Server, error) {
	return NewWithOptions(fw, Options{Timeout: timeout})
}

// NewWithOptions is New with explicit hardening knobs: the framework is
// published as v1 of a fresh registry.
func NewWithOptions(fw *core.Framework, opts Options) (*Server, error) {
	reg := registry.New()
	if _, err := reg.Publish(fw); err != nil {
		return nil, fmt.Errorf("serve: framework has no trained models (train or load a checkpoint first)")
	}
	return NewWithRegistry(reg, opts)
}

// NewWithRegistry serves an externally managed registry, which must
// already hold a current version.
func NewWithRegistry(reg *registry.Registry, opts Options) (*Server, error) {
	h, err := reg.Acquire("")
	if err != nil {
		return nil, fmt.Errorf("serve: registry has no current model: %w", err)
	}
	fw := h.Framework()
	h.Release()

	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = DefaultMaxInFlight
	}
	if opts.BatchWindow == 0 {
		opts.BatchWindow = DefaultBatchWindow
	}
	if opts.BatchSize == 0 {
		opts.BatchSize = DefaultBatchSize
	}
	lane, err := ParseLane(string(opts.Lane))
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Server{
		fw:          fw,
		reg:         reg,
		timeout:     opts.Timeout,
		started:     time.Now(),
		lane:        lane,
		arena:       core.NewServeArena(),
		inflight:    make(chan struct{}, opts.MaxInFlight),
		breakers:    newBreakerSet(opts.BreakerThreshold, opts.BreakerCooldown, nil),
		scoreFaults: opts.ScoreFaults,
		middleware:  opts.Middleware,
	}
	s.setPredict(nil)
	s.co = batch.New(batch.Options[predictJob]{
		Window:   opts.BatchWindow,
		MaxBatch: opts.BatchSize,
		Clock:    opts.Clock,
		// A job dropped before scoring still holds its model lease.
		OnDrop: func(j predictJob) { j.h.Release() },
	}, s.scoreBatch)
	return s, nil
}

// setPredict swaps the batch prediction function; nil restores the real
// model path.
func (s *Server) setPredict(fn predictBatchFn) {
	if fn == nil {
		fn = (*core.Framework).ServePredictBatch
	}
	s.predictFn.Store(&fn)
}

// Registry exposes the server's model registry for out-of-band rollout
// (tests, admin tooling).
func (s *Server) Registry() *registry.Registry { return s.reg }

// Close drains the coalescing lane: queued requests fail with 503 and
// the scorer goroutines exit. The HTTP handler stays mounted but sheds
// everything; use it at process shutdown.
func (s *Server) Close() { s.co.Close() }

// errBreakerOpen is the terminal failure when a breaker reroutes a group
// but no healthy fallback exists.
var errBreakerOpen = errors.New("service degraded: scoring lane unavailable and no healthy fallback")

// scoreBatch is the coalescer's score function. Jobs whose context
// already expired while queueing are rejected with the context error —
// their handlers answer 504 without a scoring call. The survivors group
// by leased (version, lane) pair (a batch spanning a hot-swap scores
// each version's requests against its own models; mixed-lane batches
// score each lane through its own pipeline), every group scores through
// one batched model call under a context carrying the earliest deadline
// among the batch's requests, and all leases release on the way out —
// panics included.
func (s *Server) scoreBatch(jobs []predictJob) []batch.Outcome[predictResult] {
	outs := make([]batch.Outcome[predictResult], len(jobs))
	byGroup := make(map[breakerKey][]int)
	var order []breakerKey
	var earliest time.Time
	haveDeadline := false
	for i, j := range jobs {
		if err := j.ctx.Err(); err != nil {
			outs[i] = batch.Outcome[predictResult]{Err: err}
			j.h.Release()
			continue
		}
		if d, ok := j.ctx.Deadline(); ok && (!haveDeadline || d.Before(earliest)) {
			earliest, haveDeadline = d, true
		}
		key := breakerKey{version: j.h.Version(), lane: j.lane}
		if _, seen := byGroup[key]; !seen {
			order = append(order, key)
		}
		byGroup[key] = append(byGroup[key], i)
	}
	ctx := context.Background()
	if haveDeadline {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, earliest)
		defer cancel()
	}
	for _, key := range order {
		s.scoreGroup(ctx, key, byGroup[key], jobs, outs)
	}
	return outs
}

// scoreGroup scores one same-(version, lane) slice of a batch, routed
// through the group's circuit breaker. The healthy path scores via
// scoreVia; a scoring fault (panic or mis-shaped result) feeds the
// breaker and the group rescores through a fallback — f32 falls back to
// the same version's f64 reference lane, f64 to the newest previous
// healthy version — so a sick lane degrades service instead of failing
// it. Once open, the breaker short-circuits straight to the fallback
// until a cooldown elapses and a half-open probe retries the primary.
// Context errors never feed the breaker: a slow batch is not a sick
// lane. The deferred releases keep the registry drainable.
func (s *Server) scoreGroup(ctx context.Context, key breakerKey, idxs []int, jobs []predictJob, outs []batch.Outcome[predictResult]) {
	defer func() {
		for _, i := range idxs {
			jobs[i].h.Release()
		}
	}()
	fw := jobs[idxs[0]].h.Framework()
	reqs := make([]core.ServeRequest, len(idxs))
	for k, i := range idxs {
		reqs[k] = jobs[i].req
	}

	fill := func(res []core.ServeOutcome, lane Lane, version string, degraded bool) {
		for k, i := range idxs {
			outs[i] = batch.Outcome[predictResult]{
				Value: predictResult{pred: res[k].Prediction, lane: lane, version: version, degraded: degraded},
				Err:   res[k].Err,
			}
		}
	}
	failAll := func(err error) {
		for _, i := range idxs {
			outs[i] = batch.Outcome[predictResult]{Err: err}
		}
	}

	allow, probe := s.breakers.route(key)
	var primaryErr error
	if allow {
		res, err := s.scoreVia(ctx, fw, key.lane, key.version, reqs)
		if err == nil {
			s.breakers.result(key, probe, false)
			fill(res, key.lane, key.version, false)
			return
		}
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			// The batch ran out of time; the lane is fine.
			failAll(err)
			return
		}
		s.breakers.result(key, probe, true)
		primaryErr = err
	}

	fbFw, fbHandle, fbKey, ok := s.fallbackFor(fw, key)
	if !ok {
		if primaryErr != nil {
			failAll(primaryErr)
		} else {
			failAll(errBreakerOpen)
		}
		return
	}
	if fbHandle != nil {
		defer fbHandle.Release()
	}
	res, err := s.scoreVia(ctx, fbFw, fbKey.lane, fbKey.version, reqs)
	if err != nil {
		if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			s.breakers.result(fbKey, false, true)
			if primaryErr != nil {
				err = primaryErr
			}
		}
		failAll(err)
		return
	}
	s.breakers.result(fbKey, false, false)
	s.breakers.markFallback(key, len(idxs))
	s.degraded.Add(uint64(len(idxs)))
	fill(res, fbKey.lane, fbKey.version, true)
}

// scoreVia runs one batched scoring call on (fw, lane), converting a
// panic or mis-shaped result into an error the caller feeds the breaker.
// The f32 lane scores through the compiled models over the server's
// arena; the f64 lane goes through predictFn (which tests substitute —
// test doubles only ever intercept the reference lane). The chaos
// harness's ScoreFaults hook fires inside the recovery scope, so
// injected scoring panics travel the exact path real ones do.
func (s *Server) scoreVia(ctx context.Context, fw *core.Framework, lane Lane, version string, reqs []core.ServeRequest) (res []core.ServeOutcome, err error) {
	defer func() {
		if v := recover(); v != nil {
			s.panics.Add(1)
			res, err = nil, fmt.Errorf("internal error: predict panicked: %v", v)
		}
	}()
	if s.scoreFaults != nil && s.scoreFaults.ScorePanic(string(lane)+"/"+version) {
		panic("injected scoring fault")
	}
	if lane == LaneF32 {
		s.laneF32.Add(uint64(len(reqs)))
		res = fw.ServePredictBatchF32(ctx, reqs, s.arena)
	} else {
		s.laneF64.Add(uint64(len(reqs)))
		res = (*s.predictFn.Load())(fw, ctx, reqs)
	}
	if len(res) != len(reqs) {
		return nil, fmt.Errorf("internal error: predict returned %d outcomes for %d requests", len(res), len(reqs))
	}
	// A batch that dies on its deadline reports context errors on its
	// live items; surface that as one group error so the caller can tell
	// "out of time" from "sick lane".
	for _, o := range res {
		if e := o.Err; e != nil && (errors.Is(e, context.DeadlineExceeded) || errors.Is(e, context.Canceled)) {
			return nil, e
		}
	}
	return res, nil
}

// fallbackFor picks the degraded path for a rerouted (version, lane)
// group: the same version's f64 reference lane when the f32 lane is
// sick, otherwise the newest other version whose f64 breaker is closed.
// Fallback versions are leased from the registry for the duration of the
// scoring call (the returned handle, when non-nil, must be released);
// versions mid-retire simply fail to lease and the walk continues — a
// fallback can never resurrect a retired framework.
func (s *Server) fallbackFor(fw *core.Framework, key breakerKey) (*core.Framework, *registry.Handle, breakerKey, bool) {
	if key.lane == LaneF32 {
		fb := breakerKey{version: key.version, lane: LaneF64}
		if s.breakers.healthy(fb) {
			return fw, nil, fb, true
		}
	}
	vs := s.reg.Versions()
	for i := len(vs) - 1; i >= 0; i-- {
		v := vs[i].Version
		if v == key.version {
			continue
		}
		fb := breakerKey{version: v, lane: LaneF64}
		if !s.breakers.healthy(fb) {
			continue
		}
		h, err := s.reg.Acquire(v)
		if err != nil {
			continue
		}
		return h.Framework(), h, fb, true
	}
	return nil, nil, breakerKey{}, false
}

// Handler returns the service's HTTP handler: panic recovery around
// everything, request timeouts on the prediction endpoint, and the
// optional chaos middleware outermost (outside recovery, so injected
// connection aborts behave like real ones).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.HandleFunc("/modelz", s.handleModelz)
	timeout := http.TimeoutHandler(http.HandlerFunc(s.handlePredict), s.timeout, `{"error":"prediction timed out"}`)
	// TimeoutHandler writes its timeout body without a Content-Type, so
	// Go's sniffer would serve the JSON error as text/plain. It preserves
	// headers already set on the real writer, so pre-setting the type
	// covers the timeout path; the non-timeout path overwrites headers
	// wholesale and is unaffected.
	mux.Handle("/predict", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		timeout.ServeHTTP(w, r)
	}))
	h := s.recoverPanics(mux)
	if s.middleware != nil {
		h = s.middleware(h)
	}
	return h
}

// recoverPanics converts a panicking handler into a 500 JSON error and a
// counted fault instead of a closed connection — one poisoned request
// must not look like a server crash to every other client.
// http.TimeoutHandler re-raises handler panics on the serving goroutine,
// so panics under the timeout wrapper land here too.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.panics.Add(1)
				writeJSON(w, http.StatusInternalServerError, errorBody{Error: fmt.Sprintf("internal error: %v", v)})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// Run serves on addr until ctx is cancelled, then shuts down gracefully
// (in-flight requests drain). Pass an ":0" addr to bind a random port;
// the bound address is printed as "serving on http://ADDR" so callers
// (and the smoke script) can discover it.
func (s *Server) Run(ctx context.Context, addr string, logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	logf("serving on http://%s", ln.Addr())

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case err := <-done:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		logf("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return err
		}
		<-done // Serve has returned ErrServerClosed
		return nil
	}
}

// writeJSON writes a JSON response body with the given status.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// errorBody is the uniform error response shape.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.healthz.observe(time.Since(start), false) }()
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.started).Seconds(),
	})
}

// StatsResponse is the /statsz body: the sim memo-cache counters,
// per-endpoint latency aggregates, coalescing behavior, and the model
// registry's live versions.
type StatsResponse struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	SimCache      SimCacheSnapshot            `json:"sim_cache"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
	Faults        FaultSnapshot               `json:"faults"`
	Batch         batch.Stats                 `json:"batch"`
	Lanes         LaneSnapshot                `json:"lanes"`
	Models        []registry.VersionInfo      `json:"models"`
	// Breakers lists every (version, lane) circuit breaker that has
	// carried traffic.
	Breakers []BreakerSnapshot `json:"breakers"`
}

// LaneSnapshot reports how /predict traffic split across the inference
// lanes (the per-version f32 compile times live in the Models listing).
type LaneSnapshot struct {
	// DefaultLane is the lane requests without ?lane= ride.
	DefaultLane Lane `json:"default_lane"`
	// F32Requests counts requests scored through the compiled f32 lane.
	F32Requests uint64 `json:"f32_requests"`
	// F64Requests counts requests scored through the f64 reference lane.
	F64Requests uint64 `json:"f64_requests"`
}

// FaultSnapshot reports the hardening counters: every time the server
// absorbed a fault instead of failing.
type FaultSnapshot struct {
	// PanicsRecovered counts handler panics converted to 500 responses.
	PanicsRecovered uint64 `json:"panics_recovered"`
	// LoadShed counts /predict requests refused with 503 at capacity.
	LoadShed uint64 `json:"load_shed"`
	// OversizeRequests counts bodies refused with 413.
	OversizeRequests uint64 `json:"oversize_requests"`
	// DegradedRequests counts requests answered through a breaker
	// fallback lane or version.
	DegradedRequests uint64 `json:"degraded_requests"`
}

// SimCacheSnapshot reports the simulator memoization counters.
type SimCacheSnapshot struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	Entries   int     `json:"entries"`
	HitRate   float64 `json:"hit_rate"`
}

// statsFramework picks the framework whose sim-cache counters /statsz
// reports: the current registry version, falling back to the framework
// the server was built with.
func (s *Server) statsFramework() *core.Framework {
	if h, err := s.reg.Acquire(""); err == nil {
		defer h.Release()
		return h.Framework()
	}
	return s.fw
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.statsz.observe(time.Since(start), false) }()
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	cs := s.statsFramework().Model.CacheStats()
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		SimCache: SimCacheSnapshot{
			Hits: cs.Hits, Misses: cs.Misses, Evictions: cs.Evictions,
			Entries: cs.Entries, HitRate: cs.HitRate(),
		},
		Endpoints: map[string]EndpointSnapshot{
			"healthz": s.healthz.snapshot(),
			"statsz":  s.statsz.snapshot(),
			"predict": s.predict.snapshot(),
			"modelz":  s.modelz.snapshot(),
		},
		Faults: FaultSnapshot{
			PanicsRecovered:  s.panics.Load(),
			LoadShed:         s.shed.Load(),
			OversizeRequests: s.oversize.Load(),
			DegradedRequests: s.degraded.Load(),
		},
		Batch: s.co.Stats(),
		Lanes: LaneSnapshot{
			DefaultLane: s.lane,
			F32Requests: s.laneF32.Load(),
			F64Requests: s.laneF64.Load(),
		},
		Models:   s.reg.Versions(),
		Breakers: s.breakers.snapshot(),
	})
}

// ModelzRequest is the POST /modelz body: publish the checkpoint at Path
// as the next version; with RetireOld the previous current version is
// drained and removed once its in-flight batches finish.
type ModelzRequest struct {
	Path      string `json:"path"`
	RetireOld bool   `json:"retire_old,omitempty"`
}

// handleModelz lists model versions (GET) and rolls out checkpoints
// (POST). A publish failure leaves the serving set untouched, so a bad
// checkpoint on disk can never take down a healthy server.
func (s *Server) handleModelz(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	failed := true
	defer func() { s.modelz.observe(time.Since(start), failed) }()
	switch r.Method {
	case http.MethodGet:
		failed = false
		writeJSON(w, http.StatusOK, map[string]any{
			"current":  s.reg.CurrentVersion(),
			"versions": s.reg.Versions(),
			"breakers": s.breakers.snapshot(),
		})
	case http.MethodPost:
		var req ModelzRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
			return
		}
		if req.Path == "" {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "missing path"})
			return
		}
		prev := s.reg.CurrentVersion()
		v, err := s.reg.PublishFile(req.Path)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "publish failed: " + err.Error()})
			return
		}
		retired := ""
		if req.RetireOld && prev != "" {
			// Blocks until the old version's in-flight batches drain —
			// that is the rollout contract, not a hazard: new requests
			// already lease v.
			if err := s.reg.Retire(prev); err == nil {
				retired = prev
			}
		}
		failed = false
		writeJSON(w, http.StatusOK, map[string]any{
			"published": v,
			"current":   s.reg.CurrentVersion(),
			"retired":   retired,
		})
	default:
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET or POST only"})
	}
}

// PredictRequest is the /predict body. A stencil is named (classic
// "star3d2r"-style names) or spelled as raw offsets; exactly one form
// must be used.
type PredictRequest struct {
	// Stencil is a classic stencil name, e.g. "star3d2r".
	Stencil string `json:"stencil,omitempty"`
	// Name, Dims, and Points spell a custom stencil from raw offsets
	// ([dx,dy,dz] triples; dz must be 0 for 2-D).
	Name   string  `json:"name,omitempty"`
	Dims   int     `json:"dims,omitempty"`
	Points [][]int `json:"points,omitempty"`
	// GPU is the target architecture name (P100, V100, 2080Ti, A100).
	GPU string `json:"gpu"`
}

// stencilFromRequest resolves the request's stencil form.
func stencilFromRequest(req PredictRequest) (stencil.Stencil, error) {
	named := req.Stencil != ""
	raw := len(req.Points) > 0
	switch {
	case named && raw:
		return stencil.Stencil{}, fmt.Errorf("give either a stencil name or raw points, not both")
	case named:
		return stencil.ByName(req.Stencil)
	case raw:
		name := req.Name
		if name == "" {
			name = "custom"
		}
		pts := make([]stencil.Point, len(req.Points))
		for i, p := range req.Points {
			if len(p) != 3 {
				return stencil.Stencil{}, fmt.Errorf("point %d has %d coordinates, want [dx,dy,dz]", i, len(p))
			}
			pts[i] = stencil.Point{Dx: p[0], Dy: p[1], Dz: p[2]}
		}
		return stencil.New(name, req.Dims, pts)
	default:
		return stencil.Stencil{}, fmt.Errorf("request names no stencil")
	}
}

// predictStatus maps a prediction error to its HTTP status.
func predictStatus(err error) int {
	switch {
	case errors.Is(err, batch.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		// The request's propagated deadline expired before scoring
		// finished. When the server's own timeout middleware caused the
		// expiry it has already answered 503 and this status is for
		// accounting only; a client-propagated deadline gets the 504.
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.Is(err, errBreakerOpen):
		return http.StatusServiceUnavailable
	case strings.HasPrefix(err.Error(), "internal error"):
		return http.StatusInternalServerError
	case strings.Contains(err.Error(), "unknown"),
		strings.Contains(err.Error(), "not in dataset"),
		strings.Contains(err.Error(), "no trained"):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	failed := true
	defer func() { s.predict.observe(time.Since(start), failed) }()

	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}

	// Deadline propagation: X-Deadline-Millis declares how much of the
	// client's time budget remains. A request that arrives with its
	// budget already spent is rejected 504 here — before the admission
	// semaphore, a batch slot, or a model lease. The resulting context
	// travels with the job into batch scoring. The server's own timeout
	// (the TimeoutHandler wrapping this handler) already put its deadline
	// on r.Context(), so a tighter client budget only narrows it.
	ctx := r.Context()
	if hdr := r.Header.Get("X-Deadline-Millis"); hdr != "" {
		ms, err := strconv.ParseInt(hdr, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad X-Deadline-Millis: " + err.Error()})
			return
		}
		if ms <= 0 {
			s.predict.deadlineExpired.Add(1)
			writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: "deadline already expired"})
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		defer cancel()
	}

	// Admission control: shed load beyond the in-flight cap instead of
	// queueing unboundedly behind the scoring lane.
	select {
	case s.inflight <- struct{}{}:
		defer func() { <-s.inflight }()
	default:
		s.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "server at capacity, retry later"})
		return
	}

	var req PredictRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.oversize.Add(1)
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	if req.GPU == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "missing gpu"})
		return
	}
	st, err := stencilFromRequest(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	// ?lane=f32|f64 overrides the server's default inference lane.
	lane := s.lane
	if q := r.URL.Query().Get("lane"); q != "" {
		lane, err = ParseLane(q)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
	}

	// Lease a model version: ?model=vN pins one, otherwise the request
	// follows the registry's current pointer. The lease travels with the
	// job through the coalescer and is released after scoring, so a
	// hot-swap can never free a version out from under an in-flight
	// batch.
	h, err := s.reg.Acquire(r.URL.Query().Get("model"))
	if err != nil {
		status := http.StatusServiceUnavailable
		if errors.Is(err, registry.ErrUnknownVersion) || errors.Is(err, registry.ErrRetiring) {
			status = http.StatusNotFound
		}
		writeJSON(w, status, errorBody{Error: err.Error()})
		return
	}

	// An expired context here (budget spent during decode) must not
	// consume a batch slot; the coalescer would reject it anyway, but
	// checking first keeps the 504 ahead of the admission path.
	if err := ctx.Err(); err != nil {
		h.Release()
		s.predict.deadlineExpired.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: "deadline already expired"})
		return
	}

	job := predictJob{h: h, req: core.ServeRequest{GPU: req.GPU, Stencil: st}, lane: lane, ctx: ctx}
	res, err := s.co.Do(ctx, job)
	if err != nil {
		status := predictStatus(err)
		if status == http.StatusGatewayTimeout {
			s.predict.deadlineExpired.Add(1)
		}
		writeJSON(w, status, errorBody{Error: err.Error()})
		return
	}
	failed = false
	// Surface where the prediction actually came from; under breaker
	// degradation these differ from what the request asked for. The body
	// is untouched — degraded responses stay bitwise-comparable.
	w.Header().Set("X-Serve-Lane", string(res.lane))
	w.Header().Set("X-Serve-Model", res.version)
	if res.degraded {
		w.Header().Set("X-Serve-Degraded", "true")
	}
	writeJSON(w, http.StatusOK, res.pred)
}
